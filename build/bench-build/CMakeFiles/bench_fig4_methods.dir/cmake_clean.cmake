file(REMOVE_RECURSE
  "../bench/bench_fig4_methods"
  "../bench/bench_fig4_methods.pdb"
  "CMakeFiles/bench_fig4_methods.dir/bench_fig4_methods.cpp.o"
  "CMakeFiles/bench_fig4_methods.dir/bench_fig4_methods.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
