#include "kernels/block_driver.hpp"
#include "kernels/detail.hpp"
#include "kernels/kernels.hpp"

namespace hbc::kernels {

using graph::CSRGraph;

namespace detail {

// Jia et al. strategies: coarse-grained parallelism assigns each root to a
// thread block (one block per SM); within the block the per-level
// primitive is either the vertex-parallel or the edge-parallel O(n^2+m)
// level-check traversal. No explicit queue exists, so termination is
// detected by the "nothing discovered" flag after a full scan — that last
// futile scan is charged, exactly as on hardware.
RunResult run_levelcheck_kernel(const CSRGraph& g, const RunConfig& config, Mode mode) {
  DriverLayout layout;
  layout.label = mode == Mode::EdgeParallel ? "edge-parallel" : "vertex-parallel";
  layout.needs_edge_sources = mode == Mode::EdgeParallel;
  layout.per_block.push_back(
      {BCWorkspace::jia_bytes(g.num_vertices(), g.num_directed_edges()),
       "jia.block_locals"});
  BlockDriver driver(g, config, layout);

  driver.run([&](BlockDriver::RootTask& task) {
    BCWorkspace& ws = task.ws;
    gpusim::BlockContext& ctx = task.ctx;
    ws.init_root(task.root, ctx);

    // Forward: scan every level until a scan discovers nothing.
    std::uint64_t frontier = 1;  // |{v : d[v] == depth}|
    std::uint32_t depth = 0;
    {
      SimSpan stage(task.trace, ctx, "shortest-path", trace::kPhase);
      for (;; ++depth) {
        const std::uint64_t before = ctx.cycles();
        const BCWorkspace::LevelStats level =
            mode == Mode::EdgeParallel
                ? ws.ep_forward_level(ctx, depth, /*maintain_queue=*/false)
                : ws.vp_forward_level(ctx, depth);
        if (task.stats) {
          task.stats->iterations.push_back(
              {depth, frontier, level.edge_frontier, ctx.cycles() - before, mode});
        }
        trace_level(task.trace, ctx, depth, frontier, level.edge_frontier, mode,
                    ctx.cycles() - before);
        if (level.discovered == 0) break;
        frontier = level.discovered;
      }
    }
    const std::uint32_t max_depth = depth;  // deepest populated level
    if (task.stats) task.stats->max_depth = max_depth;
    if (mode == Mode::EdgeParallel) task.ep_levels += max_depth + 1;

    // Backward: vertices at max_depth have no successors (delta = 0), so
    // start one level closer to the root.
    {
      SimSpan stage(task.trace, ctx, "dependency", trace::kPhase);
      for (std::uint32_t dep = max_depth; dep-- > 1;) {
        if (mode == Mode::EdgeParallel) {
          ws.ep_backward_level(ctx, dep);
        } else {
          ws.vp_backward_level(ctx, dep);
        }
      }
    }

    ws.accumulate_bc(task.bc, task.root, /*use_queue=*/false, ctx);
  });

  return driver.finish();
}

}  // namespace detail

RunResult run_edge_parallel(const CSRGraph& g, const RunConfig& config) {
  return detail::run_levelcheck_kernel(g, config, Mode::EdgeParallel);
}

}  // namespace hbc::kernels
