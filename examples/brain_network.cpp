// Biological-network analysis — the domain that motivated GPU-FAN
// (Shi & Zhang analyzed protein-communication and genetic-interaction
// networks) and one the paper's introduction cites via brain connectomics
// (Bullmore & Sporns). Connectomes are small-world: dense local modules
// (high clustering) bridged by a few long-range hub connections, and BC
// is the standard measure for locating those hubs.
//
// The demo builds a synthetic modular connectome (cortical modules as
// dense clusters, sparse inter-module fibers), verifies the small-world
// signature, finds hub regions with exact BC, cross-checks with the
// Brandes–Pich and Bader et al. approximations, and shows what module
// isolation (lesioning the top hub) does to the network.

#include <algorithm>
#include <cstdio>

#include "hbc.hpp"

namespace {

using namespace hbc;
using graph::VertexId;

struct Connectome {
  graph::CSRGraph graph;
  std::vector<VertexId> hubs;  // designated inter-module relay regions
};

/// `modules` dense modules of `module_size` regions; each module elects a
/// hub wired to every other module's hub (the long-range fiber tract).
Connectome synthetic_connectome(std::uint32_t modules, std::uint32_t module_size,
                                double p_local, std::uint64_t seed) {
  const VertexId n = modules * module_size;
  util::Xoshiro256 rng(seed);
  graph::GraphBuilder builder(n);
  Connectome out;

  for (std::uint32_t m = 0; m < modules; ++m) {
    const VertexId base = m * module_size;
    for (VertexId a = 0; a < module_size; ++a) {
      for (VertexId b = a + 1; b < module_size; ++b) {
        if (rng.next_bool(p_local)) builder.add_edge(base + a, base + b);
      }
    }
    out.hubs.push_back(base);  // first region of each module is its hub
  }
  for (std::uint32_t a = 0; a < modules; ++a) {
    for (std::uint32_t b = a + 1; b < modules; ++b) {
      builder.add_edge(out.hubs[a], out.hubs[b]);
    }
  }
  out.graph = builder.build();
  return out;
}

}  // namespace

int main() {
  const std::uint32_t modules = 8, module_size = 40;
  Connectome c = synthetic_connectome(modules, module_size, 0.35, 2026);
  std::printf("synthetic connectome: %s\n", c.graph.summary().c_str());

  // Small-world verification: high clustering, low diameter.
  const double cc = graph::clustering_coefficient(c.graph);
  const auto diameter = graph::pseudo_diameter(c.graph);
  std::printf("clustering coefficient %.3f, pseudo-diameter %u "
              "(small-world: clustered AND shallow)\n\n",
              cc, diameter);

  // Exact BC; the sampling strategy will classify this as small-world.
  core::Options options;
  options.strategy = core::Strategy::Sampling;
  const auto exact = core::compute(c.graph, options);
  std::fputs(core::format_report(c.graph, exact, {.top_k = 8}).c_str(), stdout);

  // The designated hubs must dominate the ranking.
  const auto top = core::top_k(exact.scores, modules);
  std::uint32_t hubs_found = 0;
  for (const auto& [v, score] : top) {
    if (std::find(c.hubs.begin(), c.hubs.end(), v) != c.hubs.end()) ++hubs_found;
  }
  std::printf("\n%u of the top %u regions are designated inter-module hubs\n",
              hubs_found, modules);

  // Approximation cross-checks (the estimators the paper cites).
  const auto uniform = cpu::approximate_bc(c.graph, {.num_pivots = 64, .seed = 5});
  const VertexId top_hub = top[0].first;
  std::printf("Brandes-Pich (64 pivots): top hub estimate %.0f vs exact %.0f\n",
              uniform.bc[top_hub], exact.scores[top_hub]);
  const auto adaptive = cpu::adaptive_bc(c.graph, top_hub, {.c = 5.0, .seed = 5});
  std::printf("Bader adaptive: %.0f after %u pivots (threshold %s)\n",
              adaptive.bc_estimate, adaptive.pivots_used,
              adaptive.threshold_hit ? "hit" : "not hit");

  // Lesion study: removing the busiest hub disconnects nothing (other
  // fibers remain) but stretches paths — quantify it.
  graph::EdgeList remaining;
  for (VertexId u = 0; u < c.graph.num_vertices(); ++u) {
    if (u == top_hub) continue;
    for (VertexId v : c.graph.neighbors(u)) {
      if (v != top_hub && u < v) remaining.push_back({u, v});
    }
  }
  const auto lesioned = graph::build_csr(c.graph.num_vertices(), remaining);
  const auto cc_after = graph::connected_components(lesioned);
  std::printf("\nlesion of region %u: %u components (largest %llu),"
              " pseudo-diameter %u -> %u\n",
              top_hub, cc_after.num_components,
              static_cast<unsigned long long>(cc_after.largest_size), diameter,
              graph::pseudo_diameter(lesioned));
  return 0;
}
