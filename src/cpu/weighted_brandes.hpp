#pragma once

// Weighted betweenness centrality: Brandes's algorithm with Dijkstra
// shortest paths (Brandes 2001 handles arbitrary positive weights; the
// paper restricts its GPU kernels to the unweighted O(mn) case and cites
// weighted traversal as the SSSP direction of future work, §VI). This CPU
// engine completes the library for weighted inputs and serves as the
// oracle if a GPU-model weighted kernel is added later.
//
// Weights are carried in a parallel array over the CSR's directed edge
// slots; an undirected graph must assign the same weight to both
// directions (make_symmetric_weights enforces this).

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace hbc::cpu {

using WeightArray = std::vector<double>;

/// Uniform-random weights in [lo, hi), mirrored across edge directions
/// for undirected graphs. Deterministic in seed.
WeightArray random_symmetric_weights(const graph::CSRGraph& g, double lo, double hi,
                                     std::uint64_t seed);

/// Force w(u->v) == w(v->u) by averaging the two slots (no-op when
/// already symmetric). Returns false if the graph is directed.
bool make_symmetric_weights(const graph::CSRGraph& g, WeightArray& weights);

struct WeightedBrandesOptions {
  std::vector<graph::VertexId> sources;  // empty = all vertices
};

struct WeightedBrandesResult {
  std::vector<double> bc;
  std::uint64_t roots_processed = 0;
};

/// Exact weighted BC. Throws std::invalid_argument on a non-positive
/// weight or a weight array of the wrong length.
WeightedBrandesResult weighted_brandes(const graph::CSRGraph& g,
                                       std::span<const double> weights,
                                       const WeightedBrandesOptions& options = {});

/// Single-source distances + path counts under weights (Dijkstra),
/// exposed for tests.
struct WeightedPaths {
  std::vector<double> distance;  // +inf when unreached
  std::vector<double> sigma;
};
WeightedPaths weighted_count_paths(const graph::CSRGraph& g,
                                   std::span<const double> weights, graph::VertexId s);

}  // namespace hbc::cpu
