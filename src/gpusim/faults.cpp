#include "gpusim/faults.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace hbc::gpusim {

namespace {

// splitmix64: the same stand-alone mixer the synthetic generators use.
// One evaluation per (seed, spec, root) triple; no sequential state, so
// targeting decisions are independent of visit order.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double unit_hash(std::uint64_t seed, std::uint64_t spec, std::uint64_t root) noexcept {
  const std::uint64_t h = mix64(seed ^ mix64(spec + 1) ^ mix64(root ^ 0x5bc1u));
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
}

constexpr std::uint64_t kDefaultTimeoutCycles = 1'000'000;
constexpr std::uint64_t kDefaultEccCycles = 10'000;

bool is_execution_kind(FaultKind k) noexcept {
  return k == FaultKind::EccError || k == FaultKind::Timeout;
}

std::uint64_t effective_after(const FaultSpec& s) noexcept {
  if (s.after_cycles != 0) return s.after_cycles;
  return s.kind == FaultKind::Timeout ? kDefaultTimeoutCycles : kDefaultEccCycles;
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::KernelLaunch: return "launch";
    case FaultKind::DeviceAlloc: return "alloc";
    case FaultKind::EccError: return "ecc";
    case FaultKind::Timeout: return "timeout";
  }
  return "unknown";
}

DeviceFault::DeviceFault(FaultKind kind, std::uint32_t root, std::uint32_t block,
                         bool transient)
    : std::runtime_error([&] {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "simulated device fault: %s (%s) at root %u on block %u",
                      to_string(kind), transient ? "transient" : "persistent",
                      root, block);
        return std::string(buf);
      }()),
      kind_(kind),
      root_(root),
      block_(block),
      transient_(transient) {}

bool FaultReport::all_failures_transient() const noexcept {
  if (failed_roots.empty()) return false;
  return std::all_of(failed_roots.begin(), failed_roots.end(),
                     [](const RootFailure& f) { return f.transient; });
}

FaultReport& FaultReport::operator+=(const FaultReport& other) {
  faults_injected += other.faults_injected;
  retries += other.retries;
  rescued_roots += other.rescued_roots;
  failed_roots.insert(failed_roots.end(), other.failed_roots.begin(),
                      other.failed_roots.end());
  std::sort(failed_roots.begin(), failed_roots.end(),
            [](const RootFailure& a, const RootFailure& b) { return a.root < b.root; });
  return *this;
}

void FaultPlan::add(FaultSpec spec) {
  if (spec.rate < 0.0 || spec.rate > 1.0)
    throw std::invalid_argument("FaultSpec rate must be in [0, 1]");
  if (spec.fail_attempts == 0) spec.fail_attempts = 1;
  std::sort(spec.roots.begin(), spec.roots.end());
  spec.roots.erase(std::unique(spec.roots.begin(), spec.roots.end()),
                   spec.roots.end());
  specs_.push_back(std::move(spec));
}

bool FaultPlan::spec_hits(std::size_t spec_index, std::uint32_t root) const noexcept {
  const FaultSpec& s = specs_[spec_index];
  if (std::binary_search(s.roots.begin(), s.roots.end(), root)) return true;
  return s.rate > 0.0 && unit_hash(seed_, spec_index, root) < s.rate;
}

bool FaultPlan::targets_root(std::uint32_t root) const noexcept {
  for (std::size_t i = 0; i < specs_.size(); ++i)
    if (spec_hits(i, root)) return true;
  return false;
}

std::optional<FaultPlan::Launch> FaultPlan::launch_fault(
    std::uint32_t root, std::uint32_t attempt) const noexcept {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& s = specs_[i];
    if (is_execution_kind(s.kind)) continue;
    if (!spec_hits(i, root)) continue;
    if (s.transient && attempt >= s.fail_attempts) continue;  // cleared
    return Launch{s.kind, s.transient};
  }
  return std::nullopt;
}

std::optional<FaultPlan::Execution> FaultPlan::execution_fault(
    std::uint32_t root, std::uint32_t attempt) const noexcept {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& s = specs_[i];
    if (!is_execution_kind(s.kind)) continue;
    if (!spec_hits(i, root)) continue;
    if (s.transient && attempt >= s.fail_attempts) continue;
    return Execution{s.kind, s.transient, effective_after(s)};
  }
  return std::nullopt;
}

std::string FaultPlan::signature() const {
  std::string out = "seed=" + std::to_string(seed_);
  for (const FaultSpec& s : specs_) {
    out += ';';
    out += to_string(s.kind);
    if (s.rate > 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), ",rate=%.17g", s.rate);
      out += buf;
    }
    if (!s.roots.empty()) {
      out += ",roots=";
      for (std::size_t i = 0; i < s.roots.size(); ++i) {
        if (i) out += ':';
        out += std::to_string(s.roots[i]);
      }
    }
    out += s.transient ? ",transient" : ",persistent";
    if (s.transient && s.fail_attempts != 1)
      out += ",attempts=" + std::to_string(s.fail_attempts);
    if (s.after_cycles != 0) out += ",after=" + std::to_string(s.after_cycles);
  }
  return out;
}

namespace {

[[noreturn]] void bad_spec(std::string_view what, std::string_view token) {
  throw std::invalid_argument("bad fault spec: " + std::string(what) + " in '" +
                              std::string(token) + "'");
}

std::uint64_t parse_u64(std::string_view text, std::string_view token) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size())
    bad_spec("expected integer", token);
  return value;
}

double parse_rate(std::string_view text, std::string_view token) {
  // std::from_chars<double> is spotty across libstdc++ versions; strtod on a
  // bounded copy is portable and the strings are tiny.
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || !(value >= 0.0) || value > 1.0)
    bad_spec("rate must be a number in [0, 1]", token);
  return value;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::string_view rest = spec;
  bool any = false;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    std::string_view clause = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (clause.empty()) continue;

    if (clause.rfind("seed=", 0) == 0) {
      plan.seed_ = parse_u64(clause.substr(5), clause);
      continue;
    }

    FaultSpec s;
    std::size_t comma = clause.find(',');
    const std::string_view kind = clause.substr(0, comma);
    if (kind == "launch") s.kind = FaultKind::KernelLaunch;
    else if (kind == "alloc") s.kind = FaultKind::DeviceAlloc;
    else if (kind == "ecc") s.kind = FaultKind::EccError;
    else if (kind == "timeout") s.kind = FaultKind::Timeout;
    else bad_spec("unknown fault kind", kind);

    std::string_view opts = comma == std::string_view::npos
                                ? std::string_view{}
                                : clause.substr(comma + 1);
    while (!opts.empty()) {
      comma = opts.find(',');
      const std::string_view opt = opts.substr(0, comma);
      opts = comma == std::string_view::npos ? std::string_view{}
                                             : opts.substr(comma + 1);
      if (opt == "transient") s.transient = true;
      else if (opt == "persistent") s.transient = false;
      else if (opt.rfind("rate=", 0) == 0) s.rate = parse_rate(opt.substr(5), opt);
      else if (opt.rfind("attempts=", 0) == 0)
        s.fail_attempts = static_cast<std::uint32_t>(parse_u64(opt.substr(9), opt));
      else if (opt.rfind("after=", 0) == 0) s.after_cycles = parse_u64(opt.substr(6), opt);
      else if (opt.rfind("roots=", 0) == 0) {
        std::string_view list = opt.substr(6);
        if (list.empty()) bad_spec("empty roots list", opt);
        while (!list.empty()) {
          const std::size_t colon = list.find(':');
          s.roots.push_back(static_cast<std::uint32_t>(
              parse_u64(list.substr(0, colon), opt)));
          list = colon == std::string_view::npos ? std::string_view{}
                                                 : list.substr(colon + 1);
        }
      } else {
        bad_spec("unknown option", opt);
      }
    }
    if (s.rate == 0.0 && s.roots.empty())
      bad_spec("spec targets nothing (need rate= or roots=)", clause);
    plan.add(std::move(s));
    any = true;
  }
  if (!any) throw std::invalid_argument("fault spec has no fault clauses: '" + spec + "'");
  return plan;
}

std::shared_ptr<const FaultPlan> FaultPlan::parse_shared(const std::string& spec) {
  return std::make_shared<const FaultPlan>(parse(spec));
}

}  // namespace hbc::gpusim
