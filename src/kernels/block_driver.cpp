#include "kernels/block_driver.hpp"

#include <algorithm>
#include <numeric>
#include <thread>
#include <utility>

#include "util/thread_pool.hpp"

namespace hbc::kernels {

using graph::CSRGraph;
using graph::VertexId;

namespace {

std::vector<VertexId> resolve_roots(const CSRGraph& g, const RunConfig& config) {
  if (!config.roots.empty()) return config.roots;
  std::vector<VertexId> roots(g.num_vertices());
  std::iota(roots.begin(), roots.end(), VertexId{0});
  return roots;
}

}  // namespace

BlockDriver::BlockDriver(const CSRGraph& g, const RunConfig& config,
                         const DriverLayout& layout)
    : g_(&g), config_(&config), device_(config.device) {
  num_blocks_ = layout.num_blocks != 0 ? layout.num_blocks : config.device.num_sms;
  num_blocks_ = std::max<std::uint32_t>(num_blocks_, 1);

  // Device-memory layout: the replicated graph arrays, then each block's
  // local structures — the same ledger order as the serial drivers, so
  // high-water marks (and OOM behaviour) are unchanged.
  auto& mem = device_.memory();
  mem.allocate((static_cast<std::uint64_t>(g.num_vertices()) + 1) *
                   sizeof(graph::EdgeOffset),
               "csr.row_offsets");
  mem.allocate(g.num_directed_edges() * sizeof(VertexId), "csr.col_indices");
  if (layout.needs_edge_sources) {
    mem.allocate(g.num_directed_edges() * sizeof(VertexId), "csr.edge_sources");
  }
  mem.allocate(static_cast<std::uint64_t>(g.num_vertices()) * sizeof(double),
               "bc.global");
  for (std::uint32_t b = 0; b < num_blocks_; ++b) {
    for (const PerBlockAllocation& alloc : layout.per_block) {
      mem.allocate(alloc.bytes, alloc.label);
    }
  }
  device_.begin_run(num_blocks_);

  roots_ = resolve_roots(g, config);

  workspaces_.reserve(num_blocks_);
  partial_bc_.reserve(num_blocks_);
  for (std::uint32_t b = 0; b < num_blocks_; ++b) {
    workspaces_.push_back(std::make_unique<BCWorkspace>(g));
    partial_bc_.emplace_back(g.num_vertices(), 0.0);
  }
  we_levels_.assign(num_blocks_, 0);
  ep_levels_.assign(num_blocks_, 0);
  if (config.collect_per_root_stats) per_root_.resize(roots_.size());
  if (config.collect_root_cycles) per_root_cycles_.assign(roots_.size(), 0);

  const std::size_t requested =
      config.cpu_threads != 0
          ? config.cpu_threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  host_threads_ = std::clamp<std::size_t>(requested, 1, num_blocks_);
}

BlockDriver::~BlockDriver() = default;

void BlockDriver::process_block(std::uint32_t block, std::size_t begin,
                                std::size_t end, const RootFn& fn) {
  gpusim::BlockContext ctx = device_.block(block);
  BCWorkspace& ws = *workspaces_[block];
  // This block owns every global index ≡ block (mod B) — the serial
  // round-robin deal, so the schedule is identical for any thread count.
  const std::size_t phase = begin % num_blocks_;
  std::size_t i = begin + (block + num_blocks_ - phase) % num_blocks_;
  for (; i < end; i += num_blocks_) {
    RootTask task{ws,
                  ctx,
                  roots_[i],
                  i,
                  block,
                  std::span<double>(partial_bc_[block]),
                  we_levels_[block],
                  ep_levels_[block],
                  nullptr};
    if (config_->collect_per_root_stats) {
      per_root_[i].root = roots_[i];
      task.stats = &per_root_[i];
    }
    const std::uint64_t root_start_cycles = ctx.cycles();
    fn(task);
    ++ctx.counters().roots_processed;
    if (config_->collect_root_cycles) {
      per_root_cycles_[i] = ctx.cycles() - root_start_cycles;
    }
  }
}

void BlockDriver::run_phase(std::size_t count, const RootFn& fn) {
  const std::size_t begin = next_index_;
  const std::size_t end =
      count == npos ? roots_.size() : std::min(roots_.size(), begin + count);
  next_index_ = end;
  if (begin >= end) return;

  if (host_threads_ <= 1) {
    for (std::uint32_t b = 0; b < num_blocks_; ++b) {
      process_block(b, begin, end, fn);
    }
    return;
  }
  // One task per simulated block; blocks share no mutable state, so the
  // pool may interleave them freely. parallel_for blocks until all are
  // done — the phase barrier every strategy's serial loop had implicitly.
  util::ThreadPool pool(host_threads_);
  pool.parallel_for(num_blocks_, [&](std::size_t b) {
    process_block(static_cast<std::uint32_t>(b), begin, end, fn);
  });
}

RunResult BlockDriver::finish() {
  RunResult result;
  result.bc.assign(g_->num_vertices(), 0.0);
  // Fixed ascending block order: the per-vertex sum is associated the same
  // way for every host-thread count, keeping scores bitwise-deterministic.
  for (std::uint32_t b = 0; b < num_blocks_; ++b) {
    const std::vector<double>& part = partial_bc_[b];
    for (std::size_t v = 0; v < part.size(); ++v) result.bc[v] += part[v];
    result.metrics.we_levels += we_levels_[b];
    result.metrics.ep_levels += ep_levels_[b];
  }
  if (config_->collect_per_root_stats) result.per_root = std::move(per_root_);
  if (config_->collect_root_cycles) {
    result.metrics.per_root_cycles = std::move(per_root_cycles_);
  }
  result.metrics.counters = device_.counters();
  result.metrics.elapsed_cycles = device_.elapsed_cycles();
  result.metrics.sim_seconds = device_.elapsed_seconds();
  result.metrics.wall_seconds = wall_.elapsed_seconds();
  result.metrics.device_memory_high_water = device_.memory().high_water_mark();
  return result;
}

}  // namespace hbc::kernels
