// Table III reproduction: MTEPS (Equation 4) of the edge-parallel
// baseline vs the sampling method on the eight-graph suite, with the
// per-graph speedup and the geometric-mean speedup (paper: 2.71x).
//
// Absolute MTEPS depends on the device model's calibration; the shape to
// reproduce is: sampling delivers roughly uniform MTEPS across classes
// (the paper sees ~40+ MTEPS everywhere at its scales) while
// edge-parallel collapses on high-diameter graphs (af_shell 18, luxem
// 4.7 MTEPS) — futile inspections drown useful traversals.
//
// A second axis sweeps the storage backings (docs/storage.md): each graph
// is additionally run from an mmap'd .hbcg, a varint-compressed heap
// buffer, and an mmap'd .hbcgz, reporting cold/warm open times, the
// sampling MTEPS per backing (identical simulated time — the backings
// change where bytes live, not the work), and the compressed-vs-raw
// adjacency footprint.
//
// HBC_BENCH_JSON=<path> additionally writes one JSON record per
// (graph, backing) cell for the tracking dashboards.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/teps.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/storage/compressed.hpp"
#include "kernels/kernels.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace hbc;

std::vector<std::string> g_json_records;

void record_json(const std::string& graph, const char* backing, double open_cold_ms,
                 double open_warm_ms, double mteps, std::size_t adjacency_bytes,
                 std::size_t file_bytes) {
  std::ostringstream r;
  r << "{\"bench\":\"table3_storage\",\"graph\":\"" << graph << "\",\"backing\":\""
    << backing << "\",\"open_cold_ms\":" << open_cold_ms
    << ",\"open_warm_ms\":" << open_warm_ms << ",\"mteps\":" << mteps
    << ",\"adjacency_bytes\":" << adjacency_bytes << ",\"file_bytes\":" << file_bytes
    << "}";
  g_json_records.push_back(r.str());
}

void emit_json() {
  const char* path = std::getenv("HBC_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < g_json_records.size(); ++i) {
    out << "  " << g_json_records[i] << (i + 1 < g_json_records.size() ? ",\n" : "\n");
  }
  out << "]\n";
  std::ofstream f(path);
  f << out.str();
  std::printf("\nwrote %zu records to %s\n", g_json_records.size(), path);
}

struct StorageRow {
  std::string graph;
  const char* backing;
  double open_cold_ms;
  double open_warm_ms;
  double mteps;
  std::size_t adjacency_bytes;
  std::size_t file_bytes;
};

double sampling_mteps(const graph::CSRGraph& g, const kernels::RunConfig& config) {
  const auto r = kernels::run_sampling(g, config);
  return core::as_mteps(
      core::teps_bc(g, r.metrics.counters.roots_processed, r.metrics.sim_seconds));
}

}  // namespace

int main() {
  const std::uint32_t scale_override = bench::env_u32("HBC_BENCH_SCALE", 0);
  const std::uint32_t roots_override = bench::env_u32("HBC_BENCH_ROOTS", 0);

  bench::print_header(
      "Table III — MTEPS, edge-parallel vs sampling",
      "TEPS_BC = m*n/t (Eq. 4), extrapolated from the processed root subset;\n"
      "GTX Titan model");
  std::printf("%-20s %14s %14s %10s\n", "Graph", "Edge-par MTEPS", "Sampling MTEPS",
              "Speedup");
  bench::print_rule();

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "hbc_bench_storage";
  std::filesystem::create_directories(dir);

  std::vector<double> speedups;
  std::vector<StorageRow> storage_rows;
  for (const auto& family : graph::gen::table3_family()) {
    const std::uint32_t scale = scale_override ? scale_override : family.default_scale;
    const std::uint32_t num_roots = roots_override ? roots_override : family.default_roots;
    const graph::CSRGraph g = family.make(scale, /*seed=*/1);

    kernels::RunConfig config;
    config.device = gpusim::gtx_titan();
    config.roots = bench::first_roots(g, num_roots);
    config.sampling.n_samps = std::max<std::uint32_t>(2, num_roots / 16);

    const auto ep = kernels::run_edge_parallel(g, config);
    const auto sa = kernels::run_sampling(g, config);

    const double ep_mteps = core::as_mteps(core::teps_bc(
        g, ep.metrics.counters.roots_processed, ep.metrics.sim_seconds));
    const double sa_mteps = core::as_mteps(core::teps_bc(
        g, sa.metrics.counters.roots_processed, sa.metrics.sim_seconds));
    const double speedup = ep.metrics.sim_seconds / sa.metrics.sim_seconds;
    speedups.push_back(speedup);

    std::printf("%-20s %14.2f %14.2f %9.2fx\n", family.name.c_str(), ep_mteps, sa_mteps,
                speedup);

    // Storage-backing axis: same sampling run from each backing. Cold
    // open includes full validation + fingerprint recomputation; warm
    // open re-maps a file the page cache already holds.
    const std::string raw = (dir / (family.name + ".hbcg")).string();
    const std::string comp = (dir / (family.name + ".hbcgz")).string();
    graph::io::save_binary_v2(g, raw, /*compress=*/false);
    graph::io::save_binary_v2(g, comp, /*compress=*/true);
    const std::size_t raw_adj = g.storage()->adjacency_bytes();

    storage_rows.push_back(
        {family.name, "heap", 0.0, 0.0, sa_mteps, raw_adj, 0});

    for (const bool compressed : {false, true}) {
      const std::string& path = compressed ? comp : raw;
      util::Timer cold;
      graph::CSRGraph mapped = graph::io::open_mapped(path);
      const double cold_ms = cold.elapsed_seconds() * 1e3;
      util::Timer warm;
      mapped = graph::io::open_mapped(path);
      const double warm_ms = warm.elapsed_seconds() * 1e3;
      storage_rows.push_back({family.name,
                              compressed ? "compressed-mapped" : "mapped", cold_ms,
                              warm_ms, sampling_mteps(mapped, config),
                              mapped.storage()->adjacency_bytes(),
                              mapped.storage()->file_bytes()});
    }

    const graph::CSRGraph comp_heap(graph::storage::CompressedStorage::compress(
        g.row_offsets(), g.col_indices(), g.undirected()));
    storage_rows.push_back({family.name, "compressed-heap", 0.0, 0.0,
                            sampling_mteps(comp_heap, config),
                            comp_heap.storage()->adjacency_bytes(), 0});
  }

  bench::print_rule();
  std::printf("%-20s %14s %14s %9.2fx   geometric mean\n", "Average", "", "",
              util::geometric_mean(speedups));
  std::printf("\npaper: speedups 13.31x (af_shell9), 10.23x (delaunay_n20),\n"
              "8.31x (luxembourg.osm), 1.0-1.6x on scale-free/small-world;\n"
              "geometric mean 2.71x.\n");

  std::printf("\nStorage backings — sampling per backing (docs/storage.md)\n");
  std::printf("%-20s %-18s %9s %9s %10s %12s %7s\n", "Graph", "Backing", "Cold ms",
              "Warm ms", "MTEPS", "Adj bytes", "Ratio");
  bench::print_rule();
  for (const StorageRow& row : storage_rows) {
    // Ratio: stored adjacency relative to the raw m*4 array.
    double raw_bytes = 0;
    for (const StorageRow& other : storage_rows) {
      if (other.graph == row.graph && std::string(other.backing) == "heap") {
        raw_bytes = static_cast<double>(other.adjacency_bytes);
      }
    }
    std::printf("%-20s %-18s %9.2f %9.2f %10.2f %12zu %6.2fx\n", row.graph.c_str(),
                row.backing, row.open_cold_ms, row.open_warm_ms, row.mteps,
                row.adjacency_bytes,
                raw_bytes > 0 ? raw_bytes / static_cast<double>(row.adjacency_bytes)
                              : 1.0);
    record_json(row.graph, row.backing, row.open_cold_ms, row.open_warm_ms, row.mteps,
                row.adjacency_bytes, row.file_bytes);
  }
  std::printf("\nMTEPS is simulated-device time and must be identical across\n"
              "backings (the ledger charges decoded bytes); the columns that\n"
              "move are open cost and the adjacency footprint.\n");

  emit_json();
  return 0;
}
