// Graph transforms: BC must be invariant under relabeling, the largest-
// component extraction must preserve in-component scores, and score
// projection must round-trip.

#include <gtest/gtest.h>

#include <numeric>

#include "cpu/brandes.hpp"
#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"

namespace {

using namespace hbc;
using graph::CSRGraph;
using graph::Edge;
using graph::VertexId;

TEST(Transforms, BfsRelabelPreservesStructure) {
  const CSRGraph g = graph::gen::scale_free({.num_vertices = 200, .attach = 2, .seed = 3});
  const auto relabeled = graph::bfs_relabel(g, 5);
  EXPECT_EQ(relabeled.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(relabeled.graph.num_undirected_edges(), g.num_undirected_edges());

  // Degree sequence preserved per mapped vertex.
  for (VertexId new_id = 0; new_id < relabeled.graph.num_vertices(); ++new_id) {
    EXPECT_EQ(relabeled.graph.degree(new_id), g.degree(relabeled.new_to_old[new_id]));
  }
}

TEST(Transforms, BfsRelabelOrdersByDepth) {
  const CSRGraph g = graph::gen::delaunay_mesh({.scale = 8, .seed = 1});
  const auto relabeled = graph::bfs_relabel(g, 0);
  const auto dist = graph::bfs(g, 0).distance;
  for (VertexId new_id = 0; new_id + 1 < relabeled.graph.num_vertices(); ++new_id) {
    const auto da = dist[relabeled.new_to_old[new_id]];
    const auto db = dist[relabeled.new_to_old[new_id + 1]];
    if (da != graph::kInfDistance && db != graph::kInfDistance) {
      EXPECT_LE(da, db);
    }
  }
}

TEST(Transforms, RelabelingLeavesBCInvariant) {
  const CSRGraph g = graph::gen::small_world({.num_vertices = 150, .k = 3, .seed = 2});
  const auto exact = cpu::brandes(g).bc;
  for (const auto& relabeled :
       {graph::bfs_relabel(g, 7), graph::degree_sort_relabel(g)}) {
    const auto bc_new = cpu::brandes(relabeled.graph).bc;
    const auto projected = relabeled.project_back(bc_new, g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_NEAR(projected[v], exact[v], 1e-7) << "vertex " << v;
    }
  }
}

TEST(Transforms, DegreeSortIsMonotone) {
  const CSRGraph g = graph::gen::scale_free({.num_vertices = 128, .attach = 3, .seed = 1});
  const auto relabeled = graph::degree_sort_relabel(g);
  for (VertexId v = 0; v + 1 < relabeled.graph.num_vertices(); ++v) {
    EXPECT_GE(relabeled.graph.degree(v), relabeled.graph.degree(v + 1));
  }
}

TEST(Transforms, LargestComponentExtractsBiggest) {
  // 3-path + 5-cycle + isolated vertex: the cycle wins.
  graph::EdgeList edges{{0, 1}, {1, 2}};
  for (VertexId v = 3; v < 8; ++v) {
    edges.push_back({v, static_cast<VertexId>(v == 7 ? 3 : v + 1)});
  }
  const CSRGraph g = graph::build_csr(9, edges);
  const auto lcc = graph::largest_component(g);
  EXPECT_EQ(lcc.graph.num_vertices(), 5u);
  EXPECT_EQ(lcc.graph.num_undirected_edges(), 5u);
  EXPECT_TRUE(graph::is_connected(lcc.graph));
  for (VertexId old_id : lcc.new_to_old) {
    EXPECT_GE(old_id, 3u);
    EXPECT_LE(old_id, 7u);
  }
}

TEST(Transforms, LargestComponentBCMatchesFullGraph) {
  // BC of vertices inside a component is unaffected by other components.
  const CSRGraph g = graph::build_csr(
      8, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {5, 6}});
  const auto full = cpu::brandes(g).bc;
  const auto lcc = graph::largest_component(g);
  const auto sub = cpu::brandes(lcc.graph).bc;
  const auto projected = lcc.project_back(sub, g.num_vertices());
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_NEAR(projected[v], full[v], 1e-9) << "vertex " << v;
  }
}

TEST(Transforms, InducedSubgraphKeepsOnlyInternalEdges) {
  const CSRGraph g = graph::gen::figure1_graph();
  const auto sub = graph::induced_subgraph(g, {0, 1, 2, 3});
  EXPECT_EQ(sub.graph.num_vertices(), 4u);
  // Edges among paper vertices 1..4: 1-2, 2-3, 1-4, 3-4.
  EXPECT_EQ(sub.graph.num_undirected_edges(), 4u);
}

TEST(Transforms, InducedSubgraphIgnoresDuplicatesAndOutOfRange) {
  const CSRGraph g = graph::gen::figure1_graph();
  const auto sub = graph::induced_subgraph(g, {2, 2, 3, 100, 3});
  EXPECT_EQ(sub.graph.num_vertices(), 2u);
  EXPECT_EQ(sub.new_to_old, (std::vector<VertexId>{2, 3}));
  EXPECT_EQ(sub.graph.num_undirected_edges(), 1u);  // 3-4 in paper ids
}

TEST(Transforms, ProjectBackFillsMissingWithZero) {
  const CSRGraph g = graph::gen::figure1_graph();
  const auto sub = graph::induced_subgraph(g, {4, 6});
  const auto projected = sub.project_back({1.5, 2.5}, g.num_vertices());
  ASSERT_EQ(projected.size(), g.num_vertices());
  EXPECT_DOUBLE_EQ(projected[4], 1.5);
  EXPECT_DOUBLE_EQ(projected[6], 2.5);
  double total = std::accumulate(projected.begin(), projected.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 4.0);
}

}  // namespace
