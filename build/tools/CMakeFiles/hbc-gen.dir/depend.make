# Empty dependencies file for hbc-gen.
# This may be replaced when dependencies are built.
