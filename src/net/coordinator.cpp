#include "net/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>

#include "core/teps.hpp"
#include "net/shard.hpp"
#include "util/timer.hpp"

namespace hbc::net {

using Clock = std::chrono::steady_clock;
using service::QueryStatus;

namespace {

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer — enough spread for ring placement.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

std::uint32_t remaining_ms(const Clock::time_point& deadline, bool has_deadline) {
  if (!has_deadline) return 0;
  const auto left = deadline - Clock::now();
  if (left <= Clock::duration::zero()) return 1;  // expired: smallest budget
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(left).count();
  return static_cast<std::uint32_t>(std::min<long long>(ms + 1, 0xffffffffll));
}

std::vector<wire::WireUpdate> to_wire(const std::vector<dyn::EdgeUpdate>& updates) {
  std::vector<wire::WireUpdate> out;
  out.reserve(updates.size());
  for (const dyn::EdgeUpdate& e : updates) {
    out.push_back({e.u, e.v, static_cast<std::uint8_t>(e.insert ? 1 : 0)});
  }
  return out;
}

}  // namespace

Coordinator::Coordinator(CoordinatorConfig config)
    : cfg_(std::move(config)),
      listener_(listen_on(cfg_.listen)),
      cache_(cfg_.cache_bytes),
      approx_cache_(cfg_.cache_bytes) {
  cfg_.max_shard_attempts = std::max<std::uint32_t>(cfg_.max_shard_attempts, 1);
  restore_from_snapshot();
}

Coordinator::~Coordinator() = default;

trace::Sink* Coordinator::sink() const {
  return cfg_.tracer ? cfg_.tracer->thread_sink("coordinator") : nullptr;
}

void Coordinator::trace_instant(const char* name, std::uint64_t req,
                                std::initializer_list<trace::Arg> extra) const {
  trace::Sink* s = sink();
  if (!s || !s->wants(trace::kService)) return;
  // One fixed slot for the request id plus the caller's args.
  switch (extra.size()) {
    case 0:
      s->instant(name, trace::kService, cfg_.tracer->now_ns(), {{"req", req}});
      break;
    default: {
      std::initializer_list<trace::Arg> all = extra;
      trace::Arg args[trace::Event::kMaxArgs];
      std::size_t n = 0;
      args[n++] = {"req", req};
      for (const trace::Arg& a : all) {
        if (n >= trace::Event::kMaxArgs) break;
        args[n++] = a;
      }
      // Sink::instant takes an initializer_list; re-emit via the widest
      // fixed arity we use (req + up to 3 extras).
      if (n == 2) {
        s->instant(name, trace::kService, cfg_.tracer->now_ns(), {args[0], args[1]});
      } else if (n == 3) {
        s->instant(name, trace::kService, cfg_.tracer->now_ns(),
                   {args[0], args[1], args[2]});
      } else {
        s->instant(name, trace::kService, cfg_.tracer->now_ns(),
                   {args[0], args[1], args[2], args[3]});
      }
      break;
    }
  }
}

std::size_t Coordinator::worker_count() const {
  std::size_t n = 0;
  for (const auto& [slot, w] : workers_) {
    if (w.ready) ++n;
  }
  return n;
}

std::size_t Coordinator::wait_for_workers(std::size_t count,
                                          std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  while (worker_count() < count && Clock::now() < deadline) {
    pump(20);
  }
  return worker_count();
}

std::vector<std::uint32_t> Coordinator::owners(const std::string& id) const {
  std::vector<std::uint32_t> ready;
  for (const auto& [slot, w] : workers_) {
    if (w.ready) ready.push_back(slot);
  }
  const std::uint32_t r = cfg_.replication;
  if (r == 0 || r >= ready.size()) return ready;

  std::map<std::uint64_t, std::uint32_t> ring;
  for (const std::uint32_t slot : ready) {
    for (std::uint32_t v = 0; v < std::max<std::uint32_t>(cfg_.virtual_nodes, 1); ++v) {
      ring.emplace(mix64((static_cast<std::uint64_t>(slot) << 32) | v), slot);
    }
  }
  const std::uint64_t h = mix64(std::hash<std::string>{}(id));
  std::vector<std::uint32_t> out;
  auto it = ring.lower_bound(h);
  while (out.size() < r) {
    if (it == ring.end()) it = ring.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Coordinator::send_graph_to(WorkerState& w, const std::string& id,
                                const GraphEntry& e) {
  wire::LoadGraphMsg m;
  m.graph_id = id;
  m.spec = e.spec;
  m.fingerprint = e.base_fingerprint;
  m.updates = e.history;
  m.fingerprint_after = e.fingerprint;
  w.conn->send(wire::encode(m, next_request_id_++));
}

std::size_t Coordinator::load_graph(const std::string& id, graph::CSRGraph g,
                                    std::string spec) {
  return load_graph(id, std::make_shared<const graph::CSRGraph>(std::move(g)),
                    std::move(spec));
}

std::size_t Coordinator::load_graph(const std::string& id,
                                    std::shared_ptr<const graph::CSRGraph> g,
                                    std::string spec) {
  GraphEntry e;
  e.graph = std::move(g);
  e.fingerprint = service::graph_fingerprint(*e.graph);
  e.base_fingerprint = e.fingerprint;
  e.spec = std::move(spec);
  graphs_[id] = e;
  persist_snapshot();

  const std::vector<std::uint32_t> owner_slots = owners(id);
  if (owner_slots.empty()) return 0;

  control_.emplace();
  control_->request_id = next_request_id_++;
  for (const std::uint32_t slot : owner_slots) {
    auto it = workers_.find(slot);
    if (it == workers_.end()) continue;
    send_graph_to(it->second, id, graphs_[id]);
    control_->waiting.insert(slot);
  }
  const auto deadline = Clock::now() + cfg_.control_timeout;
  while (!control_->waiting.empty() && Clock::now() < deadline) {
    pump(20);
  }
  const std::size_t confirmed = control_->confirmed;
  control_.reset();
  return confirmed;
}

std::uint64_t Coordinator::graph_fingerprint(const std::string& id) const {
  auto it = graphs_.find(id);
  return it == graphs_.end() ? 0 : it->second.fingerprint;
}

service::MutationResult Coordinator::mutate_graph(const std::string& id,
                                                  const dyn::UpdateBatch& batch) {
  auto it = graphs_.find(id);
  if (it == graphs_.end()) {
    throw std::invalid_argument("net::Coordinator::mutate_graph: unknown graph id '" +
                                id + "'");
  }
  GraphEntry& e = it->second;
  if (!e.versioned) {
    // Throws std::invalid_argument for directed graphs, like the service.
    e.versioned = std::make_shared<dyn::VersionedGraph>(e.graph, cfg_.tracer);
  }
  const dyn::CommitResult cr = e.versioned->apply(batch);
  e.graph = cr.after.graph;
  e.fingerprint = cr.after.fingerprint;
  e.epoch = cr.after.id;
  const std::vector<wire::WireUpdate> applied = to_wire(cr.applied);
  e.history.insert(e.history.end(), applied.begin(), applied.end());

  service::MutationResult out;
  out.epoch = cr.after.id;
  out.fingerprint_before = cr.before.fingerprint;
  out.fingerprint_after = cr.after.fingerprint;
  out.applied = cr.applied.size();
  out.noops = cr.noops;

  ++stats_.mutations;
  if (cr.applied.empty()) return out;  // no-op batch: nothing changed anywhere

  // The old epoch's cache entries can never serve the new fingerprint —
  // their keys carry it — so dropping them only reclaims bytes.
  const std::string old_prefix = service::fingerprint_prefix(cr.before.fingerprint);
  out.cache_invalidated = cache_.erase_if([&](const std::string& key) {
    return key.rfind(old_prefix, 0) == 0;
  });
  // Partial folds cannot be patched forward across epochs: invalidate the
  // refinable estimates too, and drop their queued refinements so a stale
  // estimate is never advanced or re-served (the never-resurrect rule).
  out.approx_invalidated = approx_cache_.invalidate_prefix(old_prefix);
  std::erase_if(refine_queue_, [&](const PendingRefine& r) {
    std::lock_guard<std::mutex> lock(r.entry->mu);
    if (!r.entry->invalidated) return false;
    ++stats_.refine_dropped;
    return true;
  });

  // Broadcast to every worker that holds the graph; fingerprint agreement
  // is checked on each ack (a disagreeing worker is cut loose).
  wire::MutateMsg m;
  m.graph_id = id;
  m.updates = applied;
  m.fingerprint_after = e.fingerprint;
  control_.emplace();
  control_->request_id = next_request_id_++;
  const std::vector<std::uint8_t> frame = wire::encode(m, control_->request_id);
  for (auto& [slot, w] : workers_) {
    if (!w.ready || w.graphs.count(id) == 0) continue;
    w.conn->send(frame);
    control_->waiting.insert(slot);
  }
  const auto deadline = Clock::now() + cfg_.control_timeout;
  while (!control_->waiting.empty() && Clock::now() < deadline) {
    pump(20);
  }
  control_.reset();
  persist_snapshot();  // new epoch + history durable (after cache invalidation)
  return out;
}

// --- the event pump ------------------------------------------------------

void Coordinator::pump(int timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<std::uint32_t> slots;
  fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
  bool chaos_held = false;
  for (auto& [slot, w] : workers_) {
    // Chaos-delayed frames whose hold time has passed enter the write
    // buffer before we decide whether to poll for POLLOUT.
    w.conn->pump_chaos();
    if (w.conn->chaos_pending()) chaos_held = true;
    short events = POLLIN;
    if (w.conn->wants_write()) events |= POLLOUT;
    fds.push_back(pollfd{w.conn->fd(), events, 0});
    slots.push_back(slot);
  }
  // Held frames need the loop to come back promptly even when the fleet
  // is otherwise idle.
  if (chaos_held) timeout_ms = std::min(timeout_ms, 5);
  poll_wait(fds, timeout_ms);

  if (fds[0].revents & POLLIN) {
    for (;;) {
      Socket s = accept_on(listener_);
      if (!s.valid()) break;
      const std::uint32_t slot = next_slot_++;
      WorkerState w;
      w.slot = slot;
      w.conn = std::make_unique<Conn>(std::move(s), "worker#" + std::to_string(slot));
      if (cfg_.chaos) w.conn->arm_chaos(cfg_.chaos, slot);
      w.conn->set_frame_deadline(cfg_.frame_deadline);
      workers_.emplace(slot, std::move(w));
    }
  }

  std::vector<std::uint32_t> dead;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const std::uint32_t slot = slots[i];
    auto it = workers_.find(slot);
    if (it == workers_.end()) continue;
    WorkerState& w = *&it->second;
    const short revents = fds[i + 1].revents;
    bool failed = false;
    if (revents & (POLLIN | POLLHUP | POLLERR)) {
      const Conn::Io io = w.conn->pump_read();
      // Handle buffered frames even when the peer already closed — a
      // drained worker's final results and Goodbye arrive exactly so.
      wire::Frame frame;
      for (;;) {
        const wire::DecodeStatus s = w.conn->next_frame(frame);
        if (s == wire::DecodeStatus::Ok) {
          handle_frame(w, frame);
          continue;
        }
        if (s != wire::DecodeStatus::NeedMore) failed = true;  // poisoned stream
        break;
      }
      if (io != Conn::Io::Ok) failed = true;
    }
    if (!failed && w.conn->frame_overdue()) {
      // Slow-loris: a frame has been incomplete at the head of this
      // worker's stream past the deadline. Cull it — one dribbling peer
      // must not pin a slot (its shards reassign like any dead worker's).
      ++stats_.slow_peer_drops;
      trace_instant("slow-peer-drop", 0, {{"worker", std::uint64_t{slot}}});
      failed = true;
    }
    if (!failed && (revents & POLLOUT)) {
      if (w.conn->pump_write() != Conn::Io::Ok) failed = true;
    }
    if (!failed && w.conn->wants_write()) {
      // Opportunistic flush of replies queued by handle_frame.
      if (w.conn->pump_write() != Conn::Io::Ok) failed = true;
    }
    if (failed) dead.push_back(slot);
  }
  for (const std::uint32_t slot : dead) worker_dead(slot);

  detect_failures();
}

void Coordinator::handle_frame(WorkerState& w, const wire::Frame& frame) {
  // Any frame is proof of life. A quarantined worker that speaks again
  // moves to probation; `probation_heartbeats` heartbeats there earn
  // readmission (a heartbeat that triggers the probation transition also
  // counts as the first one).
  w.last_seen = Clock::now();
  if (w.health == wire::HealthState::Quarantined) {
    set_health(w, wire::HealthState::Probation, "heard from after quarantine");
    w.probation_seen = 0;
  }
  if (w.health == wire::HealthState::Probation &&
      frame.type == wire::MsgType::Heartbeat) {
    if (++w.probation_seen >= cfg_.probation_heartbeats) {
      ++stats_.readmissions;
      set_health(w, wire::HealthState::Healthy, "readmitted");
    }
  }
  switch (frame.type) {
    case wire::MsgType::Hello: {
      wire::HelloMsg m;
      if (wire::decode(frame, m) != wire::DecodeStatus::Ok) return;
      w.name = m.worker_name;
      w.shard_slots = std::max<std::uint32_t>(m.shard_slots, 1);
      // Negotiate down to what both sides speak; a v1 worker stays on
      // exact-only shards (dispatch_pending filters budgeted work).
      w.protocol = std::min<std::uint16_t>(
          std::max(m.protocol, wire::kMinProtocolVersion), wire::kProtocolVersion);
      w.ready = true;
      wire::HelloAckMsg ack;
      ack.worker_slot = w.slot;
      ack.coordinator_name = cfg_.name;
      w.conn->send(wire::encode(ack, frame.request_id));
      // Late joiner: hand it every graph it now owns (history included, so
      // a mutated graph catches up to the current epoch in one message).
      for (const auto& [id, entry] : graphs_) {
        const std::vector<std::uint32_t> own = owners(id);
        if (std::find(own.begin(), own.end(), w.slot) != own.end()) {
          send_graph_to(w, id, entry);
        }
      }
      return;
    }
    case wire::MsgType::GraphLoaded: {
      wire::GraphLoadedMsg m;
      if (wire::decode(frame, m) != wire::DecodeStatus::Ok) return;
      auto git = graphs_.find(m.graph_id);
      const bool agrees = git != graphs_.end() && m.ok != 0 &&
                          m.fingerprint == git->second.fingerprint;
      if (agrees) {
        w.graphs.insert(m.graph_id);
        if (control_ && control_->waiting.erase(w.slot) != 0) ++control_->confirmed;
      } else {
        // Fingerprint disagreement means this worker would compute (and
        // cache) answers for a different graph under our key: cut it loose.
        if (control_ && control_->waiting.erase(w.slot) != 0) {
          control_->errors.push_back("worker " + std::to_string(w.slot) + " (" +
                                     w.name + "): " +
                                     (m.error.empty() ? "fingerprint mismatch"
                                                      : m.error));
        }
        trace_instant("graph-load-refused", frame.request_id,
                      {{"worker", std::uint64_t{w.slot}}});
        worker_dead(w.slot);
      }
      return;
    }
    case wire::MsgType::ShardResult: {
      wire::ShardResultMsg m;
      if (wire::decode(frame, m) != wire::DecodeStatus::Ok) return;
      if (w.inflight > 0) --w.inflight;
      if (!active_ || active_->id != frame.request_id) return;  // stale
      ActiveQuery& q = *active_;
      if (m.shard_index >= q.shards.size()) return;
      Shard& s = q.shards[m.shard_index];
      auto dit = std::find(s.dispatched_to.begin(), s.dispatched_to.end(), w.slot);
      if (dit != s.dispatched_to.end()) s.dispatched_to.erase(dit);
      if (s.state == Shard::State::Done || s.state == Shard::State::Abandoned) {
        return;  // straggler duplicate: first result won
      }
      const bool partial_mode = s.msg.mode == wire::ShardMode::Partial;
      const bool usable =
          m.ok != 0 && (!partial_mode || m.degraded == 0) &&
          m.scores.size() == q.graph->num_vertices();
      if (!usable) {
        ++stats_.shard_retries;
        trace_instant("shard-failed", q.id,
                      {{"shard", std::uint64_t{m.shard_index}},
                       {"worker", std::uint64_t{w.slot}}});
        if (s.dispatched_to.empty()) {
          s.state = Shard::State::Pending;
          // Pace the re-dispatch: an immediately-failing shard should not
          // hammer the fleet in a tight loop.
          s.not_before = Clock::now() + s.backoff.next();
        }
        return;
      }
      s.partial = std::move(m.scores);
      s.roots_processed = m.roots_processed;
      s.compute_ms = m.compute_ms;
      s.degraded = m.degraded;
      s.has_estimate = m.has_estimate;
      s.est_roots_used = m.est_roots_used;
      s.est_stderr = m.est_stderr;
      s.est_rung = m.est_rung;
      s.est_refining = m.est_refining;
      s.state = Shard::State::Done;
      --q.remaining;
      ++stats_.shards_completed;
      trace_instant("shard-done", q.id,
                    {{"shard", std::uint64_t{m.shard_index}},
                     {"worker", std::uint64_t{w.slot}}});
      return;
    }
    case wire::MsgType::MutateDone: {
      wire::MutateDoneMsg m;
      if (wire::decode(frame, m) != wire::DecodeStatus::Ok) return;
      auto git = graphs_.find(m.graph_id);
      const bool agrees = git != graphs_.end() && m.ok != 0 &&
                          m.fingerprint == git->second.fingerprint;
      if (agrees) {
        if (control_ && control_->waiting.erase(w.slot) != 0) ++control_->confirmed;
      } else {
        if (control_ && control_->waiting.erase(w.slot) != 0) {
          control_->errors.push_back(
              "worker " + std::to_string(w.slot) + " mutate: " +
              (m.error.empty() ? "fingerprint mismatch" : m.error));
        }
        worker_dead(w.slot);
      }
      return;
    }
    case wire::MsgType::Heartbeat: {
      wire::HeartbeatMsg m;
      if (wire::decode(frame, m) != wire::DecodeStatus::Ok) return;
      wire::HeartbeatAckMsg ack;
      ack.seq = m.seq;
      w.conn->send(wire::encode(ack, frame.request_id));
      return;
    }
    case wire::MsgType::Goodbye: {
      w.goodbye = true;
      return;
    }
    case wire::MsgType::Error: {
      wire::ErrorMsg m;
      if (wire::decode(frame, m) != wire::DecodeStatus::Ok) return;
      if (control_ && control_->waiting.erase(w.slot) != 0) {
        control_->errors.push_back("worker " + std::to_string(w.slot) + ": " +
                                   m.message);
      }
      return;
    }
    default:
      // Coordinator-bound streams should not carry coordinator->worker
      // message types; ignore rather than kill (forward compatibility).
      return;
  }
}

void Coordinator::worker_dead(std::uint32_t slot) {
  auto it = workers_.find(slot);
  if (it == workers_.end()) return;
  WorkerState& w = it->second;
  if (w.ready && !w.goodbye) {
    ++stats_.worker_deaths;
    trace_instant("worker-dead", 0, {{"worker", std::uint64_t{slot}}});
  }
  if (control_) {
    if (control_->waiting.erase(slot) != 0) {
      control_->errors.push_back("worker " + std::to_string(slot) + " disconnected");
    }
  }
  if (active_) {
    // Root-range reassignment: every shard this worker still owed goes
    // back to Pending; the dispatch loop finds it a new home (or the
    // local-fallback lane computes it — bit-identical either way).
    for (Shard& s : active_->shards) {
      auto dit = std::find(s.dispatched_to.begin(), s.dispatched_to.end(), slot);
      if (dit == s.dispatched_to.end()) continue;
      s.dispatched_to.erase(dit);
      if (s.state == Shard::State::Dispatched && s.dispatched_to.empty()) {
        s.state = Shard::State::Pending;
        trace_instant("shard-reassign", active_->id,
                      {{"shard", std::uint64_t{s.index}},
                       {"worker", std::uint64_t{slot}}});
      }
    }
  }
  workers_.erase(it);
}

// --- failure detection ---------------------------------------------------

void Coordinator::set_health(WorkerState& w, wire::HealthState state,
                             const std::string& reason) {
  if (w.health == state) return;
  w.health = state;
  wire::QuarantineMsg m;
  m.state = state;
  m.reason = reason;
  w.conn->send(wire::encode(m, next_request_id_++));
  trace_instant("worker-health", 0,
                {{"worker", std::uint64_t{w.slot}},
                 {"state", std::uint64_t{static_cast<std::uint8_t>(state)}}});
}

void Coordinator::reassign_dispatched(std::uint32_t slot) {
  if (!active_) return;
  for (Shard& s : active_->shards) {
    auto dit = std::find(s.dispatched_to.begin(), s.dispatched_to.end(), slot);
    if (dit == s.dispatched_to.end()) continue;
    s.dispatched_to.erase(dit);
    if (s.state == Shard::State::Dispatched && s.dispatched_to.empty()) {
      s.state = Shard::State::Pending;
      ++stats_.shard_retries;
      trace_instant("shard-reassign", active_->id,
                    {{"shard", std::uint64_t{s.index}},
                     {"worker", std::uint64_t{slot}}});
    }
  }
}

void Coordinator::detect_failures() {
  if (cfg_.heartbeat_timeout.count() <= 0) return;
  const auto now = Clock::now();
  for (auto& [slot, w] : workers_) {
    if (!w.ready || w.health != wire::HealthState::Healthy) continue;
    if (now - w.last_seen <= cfg_.heartbeat_timeout) continue;
    // Silent past the deadline: quarantine. The connection stays open —
    // the worker may only be partitioned, and keeping the conn is what
    // lets it talk its way back in — but its outstanding shards are
    // reassigned NOW instead of waiting for a dispatch error.
    ++stats_.heartbeat_misses;
    ++stats_.quarantines;
    set_health(w, wire::HealthState::Quarantined, "missed heartbeat deadline");
    w.inflight = 0;
    reassign_dispatched(slot);
  }
}

std::optional<wire::HealthState> Coordinator::worker_health(std::uint32_t slot) const {
  auto it = workers_.find(slot);
  if (it == workers_.end()) return std::nullopt;
  return it->second.health;
}

void Coordinator::run_for(std::chrono::milliseconds duration) {
  const auto deadline = Clock::now() + duration;
  while (Clock::now() < deadline) {
    pump(10);
    // Idle time is refinement time: advance pending upgrades one stratum
    // per pass so foreground calls interleave at stratum granularity.
    refine_step();
  }
}

// --- durable warm restart ------------------------------------------------

void Coordinator::save_snapshot() {
  if (cfg_.snapshot_dir.empty()) return;
  Snapshot snap;
  for (const auto& [id, e] : graphs_) {
    SnapshotGraph g;
    g.id = id;
    g.spec = e.spec;
    g.base_fingerprint = e.base_fingerprint;
    g.fingerprint = e.fingerprint;
    g.epoch = e.epoch;
    g.history = e.history;
    g.graph = e.graph;
    snap.graphs.push_back(std::move(g));
  }
  // Drain the cache into the manifest (MRU first, extract_if's order) and
  // reinsert LRU-first so put()'s MRU promotion restores the original
  // recency order.
  auto entries = cache_.extract_if([](const std::string&) { return true; });
  for (const auto& [key, value] : entries) {
    SnapshotCacheEntry e;
    e.key = key;
    e.scores = value->result.scores;
    e.strategy = static_cast<std::uint8_t>(value->result.strategy);
    e.roots_processed = value->result.roots_processed;
    e.approximate = value->result.approximate ? 1 : 0;
    e.time_seconds = value->result.time_seconds;
    e.wall_seconds = value->result.wall_seconds;
    e.teps = value->result.teps;
    snap.cache.push_back(std::move(e));
  }
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    cache_.put(it->first, it->second);
  }
  net::save_snapshot(cfg_.snapshot_dir, snap);
  ++stats_.snapshot_saves;
  trace_instant("snapshot-save", 0,
                {{"graphs", static_cast<std::uint64_t>(snap.graphs.size())},
                 {"cache", static_cast<std::uint64_t>(snap.cache.size())}});
}

void Coordinator::persist_snapshot() noexcept {
  if (cfg_.snapshot_dir.empty()) return;
  try {
    save_snapshot();
  } catch (const std::exception& ex) {
    // Durability is best-effort on the hot paths: a failing disk must not
    // take queries down with it. The error is visible via snapshot_info().
    snapshot_info_.error = ex.what();
    trace_instant("snapshot-save-failed", 0);
  }
}

void Coordinator::restore_from_snapshot() {
  if (cfg_.snapshot_dir.empty() || !snapshot_exists(cfg_.snapshot_dir)) return;
  snapshot_info_.attempted = true;
  try {
    Snapshot snap = load_snapshot(cfg_.snapshot_dir);
    for (SnapshotGraph& g : snap.graphs) {
      // Belt and braces: the container verified its own fingerprint, but
      // the *registry* entry must match too, or workers would verify
      // against a stamp the graph no longer carries.
      if (service::graph_fingerprint(*g.graph) != g.fingerprint) {
        throw SnapshotError("snapshot: graph '" + g.id +
                            "' fingerprint does not match its manifest entry");
      }
      GraphEntry e;
      e.graph = g.graph;
      e.fingerprint = g.fingerprint;
      e.base_fingerprint = g.base_fingerprint;
      e.spec = g.spec;
      e.epoch = g.epoch;
      e.history = std::move(g.history);
      graphs_[g.id] = std::move(e);
    }
    for (const SnapshotCacheEntry& e : snap.cache) {
      if (e.strategy > static_cast<std::uint8_t>(core::Strategy::DirectionOptimized)) {
        continue;  // unknown strategy tag: skip the entry, keep the rest
      }
      auto cached = std::make_shared<service::CachedResult>();
      cached->result.scores = e.scores;
      cached->result.strategy = static_cast<core::Strategy>(e.strategy);
      cached->result.roots_processed = e.roots_processed;
      cached->result.approximate = e.approximate != 0;
      cached->result.time_seconds = e.time_seconds;
      cached->result.wall_seconds = e.wall_seconds;
      cached->result.teps = e.teps;
      cached->bytes = service::estimate_result_bytes(cached->result);
      cached->refreshable = false;
      cache_.put(e.key, cached);
    }
    // Entries were saved MRU-first; the loop above put() them in that
    // order, inverting recency — walk the keys once more, LRU to MRU, to
    // restore it.
    for (auto it = snap.cache.rbegin(); it != snap.cache.rend(); ++it) {
      (void)cache_.get(it->key);
    }
    snapshot_info_.ok = true;
    snapshot_info_.graphs = snap.graphs.size();
    snapshot_info_.cache_entries = snap.cache.size();
  } catch (const std::exception& ex) {
    // A corrupt snapshot is a typed, reported condition — the coordinator
    // starts fresh rather than serving doubtful state.
    snapshot_info_.ok = false;
    snapshot_info_.error = ex.what();
    graphs_.clear();
  }
}

std::string Coordinator::metrics_report() const {
  char buf[2048];
  const ChaosStats cs = cfg_.chaos ? cfg_.chaos->stats() : ChaosStats{};
  int n = std::snprintf(
      buf, sizeof(buf),
      "coordinator %s\n"
      "  queries %llu (cache hits %llu, whole %llu, degraded %llu)\n"
      "  approx: budgeted %llu refine-strata %llu refine-dropped %llu "
      "entries %zu\n"
      "  shards: dispatched %llu completed %llu retries %llu stragglers %llu "
      "local %llu\n"
      "  fleet: workers %zu deaths %llu heartbeat-misses %llu quarantines "
      "%llu readmissions %llu slow-peer-drops %llu\n"
      "  durability: snapshot saves %llu restored %s\n"
      "  chaos: frames %llu injected %llu (drop %llu delay %llu dup %llu "
      "trunc %llu flip %llu partition %llu)\n",
      cfg_.name.c_str(), static_cast<unsigned long long>(stats_.queries),
      static_cast<unsigned long long>(stats_.cache_hits),
      static_cast<unsigned long long>(stats_.whole_queries),
      static_cast<unsigned long long>(stats_.degraded),
      static_cast<unsigned long long>(stats_.budgeted_queries),
      static_cast<unsigned long long>(stats_.refine_strata),
      static_cast<unsigned long long>(stats_.refine_dropped),
      approx_cache_.size(),
      static_cast<unsigned long long>(stats_.shards_dispatched),
      static_cast<unsigned long long>(stats_.shards_completed),
      static_cast<unsigned long long>(stats_.shard_retries),
      static_cast<unsigned long long>(stats_.straggler_redispatches),
      static_cast<unsigned long long>(stats_.local_fallbacks),
      worker_count(), static_cast<unsigned long long>(stats_.worker_deaths),
      static_cast<unsigned long long>(stats_.heartbeat_misses),
      static_cast<unsigned long long>(stats_.quarantines),
      static_cast<unsigned long long>(stats_.readmissions),
      static_cast<unsigned long long>(stats_.slow_peer_drops),
      static_cast<unsigned long long>(stats_.snapshot_saves),
      snapshot_info_.attempted ? (snapshot_info_.ok ? "yes" : "failed") : "no",
      static_cast<unsigned long long>(cs.frames),
      static_cast<unsigned long long>(cs.injected()),
      static_cast<unsigned long long>(cs.dropped),
      static_cast<unsigned long long>(cs.delayed),
      static_cast<unsigned long long>(cs.duplicated),
      static_cast<unsigned long long>(cs.truncated),
      static_cast<unsigned long long>(cs.flipped),
      static_cast<unsigned long long>(cs.partitioned));
  std::string out(buf, n > 0 ? std::min<std::size_t>(static_cast<std::size_t>(n),
                                                     sizeof(buf) - 1)
                             : 0);
  for (const auto& [slot, w] : workers_) {
    if (!w.ready) continue;
    out += "  worker#" + std::to_string(slot) + " (" + w.name +
           "): " + wire::to_string(w.health) + ", inflight " +
           std::to_string(w.inflight) + "\n";
  }
  return out;
}

// --- query path ----------------------------------------------------------

void Coordinator::finish_shard_local(ActiveQuery& q, Shard& s) {
  try {
    // Same message → same options → same bits as a remote worker. The
    // shard runs on the coordinator thread; this is the last rung, used
    // only when the fleet cannot serve the shard.
    util::Timer t;
    core::BCResult r = core::compute(*q.graph, options_from_shard(s.msg));
    s.partial = std::move(r.scores);
    s.roots_processed = r.roots_processed;
    s.compute_ms = t.elapsed_seconds() * 1e3;
    s.degraded = 0;
    s.state = Shard::State::Done;
    --q.remaining;
    ++stats_.local_fallbacks;
    trace_instant("shard-local", q.id, {{"shard", std::uint64_t{s.index}}});
  } catch (const std::invalid_argument& ex) {
    q.failed = true;
    q.fail_status = QueryStatus::BadRequest;
    q.fail_error = ex.what();
  } catch (const std::exception& ex) {
    q.failed = true;
    q.fail_status = QueryStatus::Failed;
    q.fail_error = ex.what();
  }
}

void Coordinator::escalate(ActiveQuery& q, Shard& s) {
  if (cfg_.local_fallback) {
    finish_shard_local(q, s);
    return;
  }
  // Degradation: serve what completed (marked degraded, never cached) —
  // unless nothing can complete at all.
  s.state = Shard::State::Abandoned;
  --q.remaining;
  ++q.abandoned;
  trace_instant("shard-abandoned", q.id, {{"shard", std::uint64_t{s.index}}});
  if (q.abandoned == q.shards.size()) {
    q.failed = true;
    q.fail_status = QueryStatus::Failed;
    q.fail_error = "no worker could serve any shard (local fallback disabled)";
  }
}

void Coordinator::dispatch_pending(ActiveQuery& q) {
  const auto now = Clock::now();
  for (Shard& s : q.shards) {
    if (q.failed) return;
    if (s.state != Shard::State::Pending) continue;
    if (s.attempts >= cfg_.max_shard_attempts) {
      escalate(q, s);
      continue;
    }
    // Backoff window after a failed attempt: leave the shard Pending.
    if (s.attempts > 0 && now < s.not_before) continue;
    // Candidates: *healthy* ready owners of the graph, preferring ones
    // this shard has not tried, then least in-flight (load balance).
    WorkerState* best = nullptr;
    bool best_untried = false;
    for (auto& [slot, w] : workers_) {
      if (!w.ready || w.health != wire::HealthState::Healthy ||
          w.graphs.count(q.graph_id) == 0) {
        continue;
      }
      // Budgeted shards only travel to workers that negotiated v2 — a v1
      // worker would silently run the query exact (no budget on the wire).
      if (s.msg.has_budget != 0 && w.protocol < 2) continue;
      const bool untried = s.tried.count(slot) == 0;
      if (best == nullptr || (untried && !best_untried) ||
          (untried == best_untried && w.inflight < best->inflight)) {
        best = &w;
        best_untried = untried;
      }
    }
    if (best == nullptr) {
      escalate(q, s);
      continue;
    }
    s.msg.deadline_ms = remaining_ms(q.deadline, q.has_deadline);
    best->conn->send(wire::encode(s.msg, q.id, best->protocol));
    ++best->inflight;
    s.state = Shard::State::Dispatched;
    ++s.attempts;
    if (s.attempts > 1) ++stats_.shard_retries;
    s.dispatched_to.push_back(best->slot);
    s.tried.insert(best->slot);
    s.last_dispatch = Clock::now();
    ++stats_.shards_dispatched;
    trace_instant("shard-dispatch", q.id,
                  {{"shard", std::uint64_t{s.index}},
                   {"worker", std::uint64_t{best->slot}}});
  }
}

void Coordinator::check_stragglers(ActiveQuery& q) {
  if (cfg_.straggler_timeout.count() <= 0) return;
  const auto now = Clock::now();
  for (Shard& s : q.shards) {
    if (s.state != Shard::State::Dispatched) continue;
    if (now - s.last_dispatch < cfg_.straggler_timeout) continue;
    if (s.attempts >= cfg_.max_shard_attempts) {
      // Out of remote attempts and still no result. Under chaos the
      // outstanding request or reply may simply be gone, and a
      // deadline-less query must not wait forever for a frame that will
      // never arrive — escalate now. If a straggler result does land
      // later, the Done/Abandoned guard in handle_frame discards it.
      escalate(q, s);
      continue;
    }
    // Second opinion: dispatch to an untried healthy worker, first
    // result wins.
    WorkerState* best = nullptr;
    for (auto& [slot, w] : workers_) {
      if (!w.ready || w.health != wire::HealthState::Healthy ||
          w.graphs.count(q.graph_id) == 0) {
        continue;
      }
      if (s.msg.has_budget != 0 && w.protocol < 2) continue;
      if (s.tried.count(slot) != 0) continue;
      if (best == nullptr || w.inflight < best->inflight) best = &w;
    }
    if (best == nullptr) {
      // Nobody new to ask: every eligible worker has already been tried
      // and the timeout passed anyway. Same liveness argument as above —
      // waiting can only help if one of the outstanding frames is merely
      // slow, but it hangs forever if they were dropped.
      escalate(q, s);
      continue;
    }
    s.msg.deadline_ms = remaining_ms(q.deadline, q.has_deadline);
    best->conn->send(wire::encode(s.msg, q.id, best->protocol));
    ++best->inflight;
    ++s.attempts;
    s.dispatched_to.push_back(best->slot);
    s.tried.insert(best->slot);
    s.last_dispatch = now;
    ++stats_.shards_dispatched;
    ++stats_.straggler_redispatches;
    trace_instant("shard-straggler", q.id,
                  {{"shard", std::uint64_t{s.index}},
                   {"worker", std::uint64_t{best->slot}}});
  }
}

service::Response Coordinator::query(service::Request request) {
  const auto t0 = Clock::now();
  ++stats_.queries;
  service::Response resp;

  if (drained_) {
    resp.status = QueryStatus::ServiceStopped;
    resp.error = "coordinator drained";
    resp.total_ms = ms_between(t0, Clock::now());
    return resp;
  }
  auto git = graphs_.find(request.graph_id);
  if (git == graphs_.end()) {
    resp.status = QueryStatus::GraphNotFound;
    resp.error = "graph '" + request.graph_id + "' is not registered";
    resp.total_ms = ms_between(t0, Clock::now());
    return resp;
  }
  const GraphEntry& entry = git->second;
  const graph::VertexId n = entry.graph->num_vertices();

  // Same validation core::compute applies, surfaced as BadRequest (the
  // service contract) instead of a thrown invalid_argument.
  {
    std::vector<bool> seen(n, false);
    for (const graph::VertexId r : request.options.roots) {
      if (r >= n || seen[r]) {
        resp.status = QueryStatus::BadRequest;
        resp.error = r >= n ? "root " + std::to_string(r) + " out of range"
                            : "duplicate root " + std::to_string(r);
        resp.total_ms = ms_between(t0, Clock::now());
        return resp;
      }
      seen[r] = true;
    }
  }

  if (request.budget.active()) return query_budgeted(std::move(request), t0);

  const std::string key = service::fingerprint_prefix(entry.fingerprint) +
                          core::options_signature(request.options);
  if (std::shared_ptr<const service::CachedResult> hit = cache_.get(key)) {
    ++stats_.cache_hits;
    resp.status = QueryStatus::Ok;
    resp.from_cache = true;
    resp.result = std::shared_ptr<const core::BCResult>(hit, &hit->result);
    if (request.top_k > 0) resp.top = core::top_k(resp.result->scores, request.top_k);
    resp.total_ms = ms_between(t0, Clock::now());
    trace_instant("dist-cache-hit", 0);
    return resp;
  }

  const core::Options& o = request.options;
  const core::Strategy strategy = o.strategy;
  // Block-shardable: every GPU-model strategy except Sampling (its probe
  // phase ranks the whole root list — only correct on one node).
  const bool whole =
      !core::uses_gpu_model(strategy) || strategy == core::Strategy::Sampling;

  auto q = std::make_unique<ActiveQuery>();
  q->id = next_request_id_++;
  q->graph_id = request.graph_id;
  q->graph = entry.graph;
  q->options = o;
  q->whole = whole;
  q->has_deadline = request.timeout.count() > 0;
  q->deadline = t0 + request.timeout;

  // Template shard message: everything except mode/index/roots.
  wire::SubmitShardMsg base;
  base.graph_id = request.graph_id;
  base.fingerprint = entry.fingerprint;
  base.strategy = static_cast<std::uint8_t>(strategy);
  base.grid_blocks = o.grid_blocks;
  base.seed = o.seed;
  base.cpu_threads = static_cast<std::uint32_t>(o.cpu_threads);
  base.max_root_attempts = o.resilience.max_root_attempts;
  base.device_num_sms = o.device.num_sms;
  base.hybrid_alpha = o.hybrid.alpha;
  base.hybrid_beta = o.hybrid.beta;
  base.sampling_n_samps = o.sampling.n_samps;
  base.sampling_gamma = o.sampling.gamma;
  base.sampling_min_frontier = o.sampling.min_frontier;

  if (whole) {
    ++stats_.whole_queries;
    Shard s;
    s.index = 0;
    s.msg = base;
    s.msg.mode = wire::ShardMode::Whole;
    s.msg.halve_undirected = o.halve_undirected ? 1 : 0;
    s.msg.normalize = o.normalize ? 1 : 0;
    s.msg.sample_roots = o.sample_roots;
    s.msg.roots = o.roots;
    q->approximate = o.roots.empty() && o.sample_roots > 0 && o.sample_roots < n;
    q->resolved_roots = !o.roots.empty()        ? o.roots.size()
                        : q->approximate        ? o.sample_roots
                                                : static_cast<std::size_t>(n);
    q->shards.push_back(std::move(s));
  } else {
    // Resolve the root list exactly as core::compute would, then deal
    // global index i to block i mod B — kernels::BlockDriver's schedule.
    std::vector<graph::VertexId> roots = o.roots;
    q->approximate = roots.empty() && o.sample_roots > 0 && o.sample_roots < n;
    if (q->approximate) {
      roots = core::sample_roots(n, o.sample_roots, o.seed);
    } else if (roots.empty()) {
      roots.resize(n);
      for (graph::VertexId v = 0; v < n; ++v) roots[v] = v;
    }
    q->resolved_roots = roots.size();
    std::uint32_t blocks = strategy == core::Strategy::GpuFan ? 1
                           : o.grid_blocks != 0               ? o.grid_blocks
                                                              : o.device.num_sms;
    blocks = std::max<std::uint32_t>(blocks, 1);
    for (std::uint32_t b = 0; b < blocks; ++b) {
      Shard s;
      s.index = b;
      for (std::size_t i = b; i < roots.size(); i += blocks) {
        s.msg.roots.push_back(roots[i]);
      }
      if (s.msg.roots.empty()) continue;  // k < B: zero partial, zero fold
      wire::SubmitShardMsg m = base;
      m.shard_index = b;
      m.mode = wire::ShardMode::Partial;
      m.grid_blocks = 1;  // one block == one shard == one raw partial
      m.sample_roots = 0;
      m.halve_undirected = 0;
      m.normalize = 0;
      m.roots = std::move(s.msg.roots);
      s.msg = std::move(m);
      q->shards.push_back(std::move(s));
    }
  }
  q->remaining = q->shards.size();
  for (Shard& s : q->shards) {
    // Per-shard deterministic jitter stream: same query, same schedule.
    util::BackoffConfig bc = cfg_.redispatch_backoff;
    bc.seed = mix64(bc.seed ^ (q->id << 16) ^ s.index);
    s.backoff = util::Backoff(bc);
  }

  trace::Sink* s = sink();
  trace::ScopedSpan span(s, cfg_.tracer, "dist-request", trace::kService,
                         {{"req", q->id},
                          {"shards", static_cast<std::uint64_t>(q->shards.size())},
                          {"workers", static_cast<std::uint64_t>(worker_count())}});

  active_ = std::move(q);
  ActiveQuery& aq = *active_;
  while (!aq.failed && aq.remaining > 0) {
    if (aq.has_deadline && Clock::now() >= aq.deadline) {
      aq.failed = true;
      aq.fail_status = QueryStatus::DeadlineExceeded;
      aq.fail_error = "deadline exceeded with " + std::to_string(aq.remaining) +
                      " shard(s) outstanding";
      break;
    }
    dispatch_pending(aq);
    if (aq.failed || aq.remaining == 0) break;
    check_stragglers(aq);
    int wait_ms = 20;
    if (aq.has_deadline) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            aq.deadline - Clock::now())
                            .count();
      wait_ms = static_cast<int>(std::clamp<long long>(left, 0, wait_ms));
    }
    pump(wait_ms);
  }

  resp = assemble(aq, request.top_k, t0);
  active_.reset();
  return resp;
}

service::Response Coordinator::assemble(ActiveQuery& q, std::size_t top_k,
                                        Clock::time_point t0) {
  service::Response resp;
  if (q.failed) {
    resp.status = q.fail_status;
    resp.error = q.fail_error;
    resp.total_ms = ms_between(t0, Clock::now());
    return resp;
  }

  const graph::VertexId n = q.graph->num_vertices();
  auto result = std::make_shared<core::BCResult>();
  result->strategy = q.options.strategy;
  double compute_ms = 0.0;

  if (q.whole) {
    Shard& s = q.shards.front();
    result->scores = std::move(s.partial);
    result->roots_processed = s.roots_processed;
    result->approximate = s.has_estimate != 0
                              ? s.est_roots_used < n
                              : q.approximate || (q.resolved_roots < n);
    resp.degraded = s.degraded != 0;
    compute_ms = s.compute_ms;
  } else {
    // The paper's MPI_Reduce, made bitwise-deterministic: fold partials in
    // ascending block order (the exact association BlockDriver::finish
    // uses), then finalize exactly as core::compute does.
    result->scores.assign(n, 0.0);
    for (const Shard& s : q.shards) {
      if (s.state != Shard::State::Done) continue;  // abandoned (degraded)
      for (std::size_t v = 0; v < s.partial.size(); ++v) {
        result->scores[v] += s.partial[v];
      }
      result->roots_processed += s.roots_processed;
      compute_ms = std::max(compute_ms, s.compute_ms);
    }
    resp.degraded = q.abandoned > 0;
    if (q.approximate && result->roots_processed > 0) {
      const double scale = static_cast<double>(n) /
                           static_cast<double>(result->roots_processed);
      for (double& x : result->scores) x *= scale;
    }
    if (q.options.halve_undirected) {
      for (double& x : result->scores) x *= 0.5;
    }
    if (q.options.normalize) {
      result->scores = core::normalized(result->scores);
    }
    result->approximate = q.approximate || (q.resolved_roots < n);
  }

  result->time_seconds = compute_ms / 1e3;
  result->wall_seconds = ms_between(t0, Clock::now()) / 1e3;
  result->teps = core::teps_bc(*q.graph, result->roots_processed, result->time_seconds);

  resp.status = QueryStatus::Ok;
  resp.compute_ms = compute_ms;
  resp.total_ms = ms_between(t0, Clock::now());
  if (resp.degraded) {
    ++stats_.degraded;
  } else if (!q.budgeted && cache_.budget_bytes() > 0) {
    // Budgeted results are estimates: under the exact options signature
    // they would be served to later exact queries. Never cached here —
    // the refinable ApproxCache (or the worker's) is their home.
    // Single-threaded: the graph cannot have mutated since query() looked
    // the entry up, so its fingerprint is still the one we sharded under.
    auto git = graphs_.find(q.graph_id);
    const std::uint64_t fp = git != graphs_.end() ? git->second.fingerprint
                                                  : service::graph_fingerprint(*q.graph);
    const std::string key =
        service::fingerprint_prefix(fp) + core::options_signature(q.options);
    auto cached = std::make_shared<service::CachedResult>();
    cached->result = *result;
    cached->bytes = service::estimate_result_bytes(cached->result);
    cached->refreshable = false;
    cache_.put(key, cached);
  }
  resp.result = std::move(result);
  if (top_k > 0) resp.top = core::top_k(resp.result->scores, top_k);
  return resp;
}

// --- accuracy contracts --------------------------------------------------

namespace {

/// Rebuild an entry's published result + estimate from its fold state
/// (caller holds entry.mu). Mirrors the in-process service's publish.
void publish_entry_locked(service::ApproxEntry& e, const core::Options& o) {
  auto result = std::make_shared<core::BCResult>();
  result->strategy = o.strategy;
  result->scores = e.est.scores(o.halve_undirected, o.normalize);
  result->roots_processed = e.est.roots_used();
  result->approximate = !e.est.saturated();
  result->time_seconds = e.accum_seconds;
  result->wall_seconds = e.accum_seconds;
  e.published = std::move(result);
  e.info.roots_used = e.est.roots_used();
  e.info.stderr_est = e.est.reported_error();
  e.info.rung = e.est.rung();
  e.info.refining = false;
}

}  // namespace

bool Coordinator::fold_stratum_via_query(
    const std::string& graph_id,
    const std::shared_ptr<service::ApproxEntry>& entry,
    const core::Options& options) {
  std::vector<graph::VertexId> roots;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->invalidated || entry->est.saturated()) return false;
    roots = entry->est.next_stratum_roots();
  }
  if (roots.empty()) return false;
  // The stratum is an ordinary exact explicit-root query: Partial-sharded
  // across the fleet and folded in block order, so its raw sums are
  // bitwise-identical to the stratum a standalone service would compute.
  service::Request sub;
  sub.graph_id = graph_id;
  sub.options = options;
  sub.options.roots = std::move(roots);
  sub.options.sample_roots = 0;
  sub.options.halve_undirected = false;
  sub.options.normalize = false;
  const std::size_t stratum_size = sub.options.roots.size();
  service::Response r = query(std::move(sub));
  if (!r.ok() || r.degraded || !r.result) return false;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (r.result->scores.size() != entry->est.num_vertices()) return false;
    entry->est.fold(r.result->scores, stratum_size);
    entry->accum_seconds += r.result->time_seconds;
  }
  approx_cache_.note_growth(entry);
  return true;
}

bool Coordinator::refine_step() {
  if (drained_ || refine_queue_.empty()) return false;
  PendingRefine job = refine_queue_.front();
  const auto finish = [&] {
    refine_queue_.pop_front();
    std::lock_guard<std::mutex> lock(job.entry->mu);
    if (job.entry->refine_pending > 0) --job.entry->refine_pending;
  };
  bool drop = false;
  bool met = false;
  std::uint32_t rung_before = 0;
  {
    std::lock_guard<std::mutex> lock(job.entry->mu);
    if (job.entry->invalidated) {
      // Never-resurrect: a mutation/eviction beat this refinement.
      ++stats_.refine_dropped;
      drop = true;
    } else {
      service::Estimate now;
      now.roots_used = job.entry->est.roots_used();
      now.stderr_est = job.entry->est.reported_error();
      now.rung = job.entry->est.rung();
      rung_before = now.rung;
      met = service::contract_met(now, job.budget,
                                  job.entry->est.num_vertices());
    }
  }
  if (drop || met) {
    finish();
    return true;
  }
  if (!fold_stratum_via_query(job.graph_id, job.entry, job.options)) {
    // Best-effort: a failed stratum drops the refinement, not the entry.
    finish();
    return true;
  }
  ++stats_.refine_strata;
  std::uint32_t rung_after = 0;
  bool met_now = false;
  {
    std::lock_guard<std::mutex> lock(job.entry->mu);
    publish_entry_locked(*job.entry, job.options);
    rung_after = job.entry->est.rung();
    service::Estimate now;
    now.roots_used = job.entry->est.roots_used();
    now.stderr_est = job.entry->est.reported_error();
    met_now = service::contract_met(now, job.budget,
                                    job.entry->est.num_vertices());
  }
  // Retire a completed contract now so Estimate::refining drops the
  // moment the last stratum lands, not one refine_step later.
  if (met_now) finish();
  if (rung_after > rung_before) {
    trace_instant("refine-rung", 0, {{"rung", rung_after}});
  }
  return true;
}

service::Response Coordinator::query_budgeted(service::Request request,
                                              const Clock::time_point t0) {
  service::Response resp;
  if (!request.options.roots.empty()) {
    resp.status = QueryStatus::BadRequest;
    resp.error = "budgeted query must not carry explicit roots";
    resp.total_ms = ms_between(t0, Clock::now());
    return resp;
  }
  request.options.sample_roots = 0;  // the budget owns the sampling plan
  auto git = graphs_.find(request.graph_id);
  const GraphEntry& entry = git->second;  // caller verified existence
  const graph::VertexId n = entry.graph->num_vertices();
  ++stats_.budgeted_queries;
  if (request.budget.deadline.count() > 0) request.timeout = request.budget.deadline;

  const core::Strategy strategy = request.options.strategy;
  const bool whole =
      !core::uses_gpu_model(strategy) || strategy == core::Strategy::Sampling;

  if (whole) {
    // CPU engines and the sampling kernel are not block-shardable: hand
    // the whole budgeted query to one v2 worker, whose local progressive
    // controller computes (and caches) the estimate.
    ++stats_.whole_queries;
    const core::Options& o = request.options;
    auto q = std::make_unique<ActiveQuery>();
    q->id = next_request_id_++;
    q->graph_id = request.graph_id;
    q->graph = entry.graph;
    q->options = o;
    q->whole = true;
    q->budgeted = true;
    q->has_deadline = request.timeout.count() > 0;
    q->deadline = t0 + request.timeout;
    q->approximate = true;
    q->resolved_roots = n;
    Shard s;
    s.index = 0;
    s.msg.graph_id = request.graph_id;
    s.msg.fingerprint = entry.fingerprint;
    s.msg.mode = wire::ShardMode::Whole;
    s.msg.strategy = static_cast<std::uint8_t>(strategy);
    s.msg.halve_undirected = o.halve_undirected ? 1 : 0;
    s.msg.normalize = o.normalize ? 1 : 0;
    s.msg.grid_blocks = o.grid_blocks;
    s.msg.sample_roots = 0;
    s.msg.seed = o.seed;
    s.msg.cpu_threads = static_cast<std::uint32_t>(o.cpu_threads);
    s.msg.max_root_attempts = o.resilience.max_root_attempts;
    s.msg.device_num_sms = o.device.num_sms;
    s.msg.hybrid_alpha = o.hybrid.alpha;
    s.msg.hybrid_beta = o.hybrid.beta;
    s.msg.sampling_n_samps = o.sampling.n_samps;
    s.msg.sampling_gamma = o.sampling.gamma;
    s.msg.sampling_min_frontier = o.sampling.min_frontier;
    s.msg.has_budget = 1;
    s.msg.accuracy_target = request.budget.accuracy_target;
    s.msg.budget_max_roots = request.budget.max_roots;
    s.msg.allow_refinement = request.budget.allow_refinement ? 1 : 0;
    util::BackoffConfig bc = cfg_.redispatch_backoff;
    bc.seed = mix64(bc.seed ^ (q->id << 16));
    s.backoff = util::Backoff(bc);
    q->shards.push_back(std::move(s));
    q->remaining = 1;

    trace::ScopedSpan span(sink(), cfg_.tracer, "dist-budgeted", trace::kService,
                           {{"req", q->id}, {"whole", 1}});
    active_ = std::move(q);
    ActiveQuery& aq = *active_;
    while (!aq.failed && aq.remaining > 0) {
      if (aq.has_deadline && Clock::now() >= aq.deadline) {
        aq.failed = true;
        aq.fail_status = QueryStatus::DeadlineExceeded;
        aq.fail_error = "deadline exceeded with the budgeted query outstanding";
        break;
      }
      dispatch_pending(aq);
      if (aq.failed || aq.remaining == 0) break;
      check_stragglers(aq);
      pump(20);
    }
    service::Estimate est;
    bool have_est = false;
    if (!aq.failed && !aq.shards.empty() &&
        aq.shards.front().state == Shard::State::Done) {
      const Shard& sh = aq.shards.front();
      if (sh.has_estimate != 0) {
        est.roots_used = sh.est_roots_used;
        est.stderr_est = sh.est_stderr;
        est.rung = sh.est_rung;
        est.refining = sh.est_refining != 0;
        have_est = true;
      } else {
        // Local fallback (or a fleet with no v2 worker after all): the
        // query ran exact, so the "estimate" is the saturated truth.
        est.roots_used = sh.roots_processed;
        est.stderr_est = 0.0;
        est.rung = 0;
        est.refining = false;
        have_est = true;
      }
    }
    resp = assemble(aq, request.top_k, t0);
    active_.reset();
    if (resp.ok() && have_est) resp.estimate = est;
    return resp;
  }

  // Block-shardable GPU-model strategy: run the stratified controller
  // here, each stratum an exact explicit-root sub-query through query().
  core::StratumPlan plan;
  const std::string akey = service::fingerprint_prefix(entry.fingerprint) +
                           core::approx_signature(request.options, plan);
  bool created = false;
  const std::shared_ptr<service::ApproxEntry> e = approx_cache_.get_or_create(
      akey, n, plan, request.options.seed, entry.fingerprint, created);
  const std::uint32_t rung0_strata = std::min(
      plan.base_strata,
      std::max<std::uint32_t>(core::total_strata(n, plan), 1));
  const bool has_deadline = request.timeout.count() > 0;
  const auto deadline = t0 + request.timeout;

  trace::ScopedSpan span(sink(), cfg_.tracer, "dist-budgeted", trace::kService,
                         {{"whole", 0}});
  bool computed_any = false;
  bool queue_refine = false;
  for (;;) {
    service::Estimate now;
    bool rung0_done = false;
    {
      std::lock_guard<std::mutex> lock(e->mu);
      now.roots_used = e->est.roots_used();
      now.stderr_est = e->est.reported_error();
      now.rung = e->est.rung();
      rung0_done = e->est.strata_folded() >= rung0_strata || e->est.saturated();
    }
    const bool met = service::contract_met(now, request.budget, n);
    const bool pause =
        !met && rung0_done && request.budget.allow_refinement;
    if (met || pause) {
      queue_refine = pause;
      break;
    }
    if (has_deadline && Clock::now() >= deadline) {
      if (rung0_done) {
        // Serve the best published rung; the contract keeps refining in
        // the background if the caller allowed it.
        queue_refine = request.budget.allow_refinement;
        break;
      }
      resp.status = QueryStatus::DeadlineExceeded;
      resp.error = "deadline exceeded before the first publishable rung";
      resp.total_ms = ms_between(t0, Clock::now());
      return resp;
    }
    if (!fold_stratum_via_query(request.graph_id, e, request.options)) {
      resp.status = QueryStatus::Failed;
      resp.error = "budgeted query: stratum sub-query failed";
      resp.total_ms = ms_between(t0, Clock::now());
      return resp;
    }
    computed_any = true;
  }

  service::Estimate info;
  {
    std::lock_guard<std::mutex> lock(e->mu);
    if (!e->published || e->info.roots_used != e->est.roots_used()) {
      publish_entry_locked(*e, request.options);
    }
    resp.result = e->published;
    info = e->info;
    if (queue_refine) ++e->refine_pending;
    if (queue_refine || e->refine_pending > 0) info.refining = true;
  }
  if (queue_refine) {
    refine_queue_.push_back(
        PendingRefine{request.graph_id, e, request.options, request.budget});
  }
  resp.estimate = info;
  resp.status = QueryStatus::Ok;
  resp.from_cache = !computed_any;
  resp.total_ms = ms_between(t0, Clock::now());
  if (request.top_k > 0) resp.top = core::top_k(resp.result->scores, request.top_k);
  return resp;
}

void Coordinator::drain() {
  if (drained_) return;
  // Finish (or drop) pending refinements while the fleet can still serve
  // strata; each step is bounded by the contract it refines toward.
  while (refine_step()) {
  }
  drained_ = true;
  persist_snapshot();  // final state durable before the fleet disbands
  const std::vector<std::uint8_t> frame =
      wire::encode(wire::DrainMsg{}, next_request_id_++);
  for (auto& [slot, w] : workers_) {
    if (w.ready) w.conn->send(frame);
  }
  const auto deadline = Clock::now() + cfg_.control_timeout;
  while (!workers_.empty() && Clock::now() < deadline) {
    pump(20);
    // A worker that said goodbye and whose socket has drained can go.
    std::vector<std::uint32_t> done;
    for (auto& [slot, w] : workers_) {
      if (w.goodbye && !w.conn->wants_write()) done.push_back(slot);
    }
    for (const std::uint32_t slot : done) worker_dead(slot);
  }
  workers_.clear();
}

}  // namespace hbc::net
