#include "util/mmap_file.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define HBC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define HBC_HAVE_MMAP 0
#include <cstdio>
#endif

namespace hbc::util {

namespace {

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw std::runtime_error("MmapFile: " + std::string(what) + " '" + path +
                           "': " + std::strerror(errno));
}

}  // namespace

#if HBC_HAVE_MMAP

MmapFile::MmapFile(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path, "cannot open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail(path, "cannot stat");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd, 0);
    if (p == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      size_ = 0;
      fail(path, "cannot mmap");
    }
    data_ = static_cast<const std::uint8_t*>(p);
  }
  // The mapping keeps the file alive; the descriptor is no longer needed.
  ::close(fd);
}

void MmapFile::reset() noexcept {
  if (data_ != nullptr && size_ > 0) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
}

void MmapFile::advise_sequential() const noexcept {
  if (data_ != nullptr && size_ > 0) {
    (void)::madvise(const_cast<std::uint8_t*>(data_), size_, MADV_SEQUENTIAL);
  }
}

void MmapFile::advise_random() const noexcept {
  if (data_ != nullptr && size_ > 0) {
    (void)::madvise(const_cast<std::uint8_t*>(data_), size_, MADV_RANDOM);
  }
}

#else  // !HBC_HAVE_MMAP — read the whole file into a heap buffer. Loses
       // page-cache sharing but keeps the API and zero external deps.

MmapFile::MmapFile(const std::string& path) : path_(path), heap_fallback_(true) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail(path, "cannot open");
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (end < 0) {
    std::fclose(f);
    fail(path, "cannot stat");
  }
  size_ = static_cast<std::size_t>(end);
  if (size_ > 0) {
    auto* buf = new std::uint8_t[size_];
    const std::size_t got = std::fread(buf, 1, size_, f);
    std::fclose(f);
    if (got != size_) {
      delete[] buf;
      size_ = 0;
      fail(path, "short read from");
    }
    data_ = buf;
  } else {
    std::fclose(f);
  }
}

void MmapFile::reset() noexcept {
  if (heap_fallback_) delete[] data_;
  data_ = nullptr;
  size_ = 0;
}

void MmapFile::advise_sequential() const noexcept {}
void MmapFile::advise_random() const noexcept {}

#endif  // HBC_HAVE_MMAP

MmapFile::~MmapFile() { reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      path_(std::move(other.path_)),
      heap_fallback_(other.heap_fallback_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = other.data_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    heap_fallback_ = other.heap_fallback_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

}  // namespace hbc::util
