#include "cpu/brandes.hpp"

#include "cpu/brandes_impl.hpp"
#include "graph/storage/compressed.hpp"
#include "graph/types.hpp"

namespace hbc::cpu {

using graph::CSRGraph;
using graph::VertexId;

namespace {

// Dispatch on the backing: compressed storages get the streaming decode
// instantiation (no adjacency materialization on the CPU path); raw
// backings get the contiguous-span instantiation. Both produce
// bitwise-identical scores — see brandes_impl.hpp.
const graph::storage::CompressedStorage* compressed_backing(const CSRGraph& g) {
  if (!graph::storage::is_compressed(g.residency())) return nullptr;
  return dynamic_cast<const graph::storage::CompressedStorage*>(g.storage().get());
}

}  // namespace

void brandes_single_source(const CSRGraph& g, VertexId s, std::span<double> bc,
                           BrandesResult* stats) {
  if (const auto* cs = compressed_backing(g)) {
    detail::brandes_single_source_impl(cs->stream_view(), s, bc, stats);
  } else {
    detail::brandes_single_source_impl(g, s, bc, stats);
  }
}

std::vector<double> single_source_dependencies(const CSRGraph& g, VertexId s) {
  if (const auto* cs = compressed_backing(g)) {
    return detail::single_source_dependencies_impl(cs->stream_view(), s);
  }
  return detail::single_source_dependencies_impl(g, s);
}

BrandesResult brandes(const CSRGraph& g, const BrandesOptions& options) {
  const VertexId n = g.num_vertices();
  BrandesResult result;
  result.bc.assign(n, 0.0);

  if (options.sources.empty()) {
    for (VertexId s = 0; s < n; ++s) {
      options.cancel.check();
      brandes_single_source(g, s, result.bc, &result);
      ++result.roots_processed;
    }
  } else {
    for (VertexId s : options.sources) {
      if (s >= n) continue;
      options.cancel.check();
      brandes_single_source(g, s, result.bc, &result);
      ++result.roots_processed;
    }
  }
  return result;
}

}  // namespace hbc::cpu
