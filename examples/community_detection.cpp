// Community detection via Girvan–Newman — one of the application domains
// the paper's introduction motivates (community detection [35]): the
// edge with the highest betweenness is repeatedly removed; components
// that split off are communities.
//
// The demo builds a planted-partition graph (four dense communities with
// sparse inter-community bridges) and recovers the planted structure.

#include <cstdio>
#include <map>

#include "hbc.hpp"

namespace {

using namespace hbc;
using graph::VertexId;

/// Planted-partition graph: `groups` cliques of `group_size` vertices with
/// intra-group edge probability p_in and inter-group probability p_out.
graph::CSRGraph planted_partition(std::uint32_t groups, std::uint32_t group_size,
                                  double p_in, double p_out, std::uint64_t seed) {
  const VertexId n = groups * group_size;
  util::Xoshiro256 rng(seed);
  graph::GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      const bool same = (u / group_size) == (v / group_size);
      if (rng.next_bool(same ? p_in : p_out)) builder.add_edge(u, v);
    }
  }
  return builder.build();
}

}  // namespace

int main() {
  const std::uint32_t groups = 4, group_size = 24;
  graph::CSRGraph g = planted_partition(groups, group_size, 0.5, 0.01, 7);
  std::printf("planted-partition graph: %s (%u groups of %u)\n", g.summary().c_str(),
              groups, group_size);

  // Girvan–Newman: remove the max-edge-BC edge until the graph splits
  // into the target number of communities. Edge BC is recomputed after
  // each removal (scores change as paths reroute).
  graph::EdgeList remaining;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) remaining.push_back({u, v});
    }
  }

  std::uint32_t removals = 0;
  while (true) {
    const auto cc = graph::connected_components(g);
    if (cc.num_components >= groups) {
      // Report the discovered communities against the planted ones.
      std::printf("\nsplit into %u components after %u edge removals\n",
                  cc.num_components, removals);
      std::map<VertexId, std::map<VertexId, std::uint32_t>> confusion;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        ++confusion[cc.component[v]][v / group_size];
      }
      std::uint32_t pure = 0;
      for (const auto& [component, counts] : confusion) {
        VertexId best_group = 0;
        std::uint32_t best = 0, total = 0;
        for (const auto& [planted, count] : counts) {
          total += count;
          if (count > best) {
            best = count;
            best_group = planted;
          }
        }
        std::printf("  component %u: %3u vertices, %5.1f%% from planted group %u\n",
                    component, total, 100.0 * best / total, best_group);
        if (best == total) ++pure;
      }
      std::printf("%u of %u components are pure planted communities\n", pure,
                  cc.num_components);
      break;
    }

    const auto r = cpu::edge_betweenness(g);
    double best_score = -1.0;
    graph::Edge best_edge{0, 0};
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v : g.neighbors(u)) {
        if (u >= v) continue;
        const double score = r.edge_bc[cpu::find_edge_slot(g, u, v)];
        if (score > best_score) {
          best_score = score;
          best_edge = {u, v};
        }
      }
    }

    ++removals;
    if (removals <= 8 || removals % 4 == 0) {
      std::printf("removal %3u: edge (%u, %u) with edge-BC %.1f\n", removals,
                  best_edge.u, best_edge.v, best_score);
    }

    std::erase(remaining, best_edge);
    g = graph::build_csr(g.num_vertices(), remaining);
  }
  return 0;
}
