// Table III reproduction: MTEPS (Equation 4) of the edge-parallel
// baseline vs the sampling method on the eight-graph suite, with the
// per-graph speedup and the geometric-mean speedup (paper: 2.71x).
//
// Absolute MTEPS depends on the device model's calibration; the shape to
// reproduce is: sampling delivers roughly uniform MTEPS across classes
// (the paper sees ~40+ MTEPS everywhere at its scales) while
// edge-parallel collapses on high-diameter graphs (af_shell 18, luxem
// 4.7 MTEPS) — futile inspections drown useful traversals.

#include <cstdio>

#include "bench/common.hpp"
#include "core/teps.hpp"
#include "graph/generators.hpp"
#include "kernels/kernels.hpp"
#include "util/stats.hpp"

int main() {
  using namespace hbc;

  const std::uint32_t scale_override = bench::env_u32("HBC_BENCH_SCALE", 0);
  const std::uint32_t roots_override = bench::env_u32("HBC_BENCH_ROOTS", 0);

  bench::print_header(
      "Table III — MTEPS, edge-parallel vs sampling",
      "TEPS_BC = m*n/t (Eq. 4), extrapolated from the processed root subset;\n"
      "GTX Titan model");
  std::printf("%-20s %14s %14s %10s\n", "Graph", "Edge-par MTEPS", "Sampling MTEPS",
              "Speedup");
  bench::print_rule();

  std::vector<double> speedups;
  for (const auto& family : graph::gen::table3_family()) {
    const std::uint32_t scale = scale_override ? scale_override : family.default_scale;
    const std::uint32_t num_roots = roots_override ? roots_override : family.default_roots;
    const graph::CSRGraph g = family.make(scale, /*seed=*/1);

    kernels::RunConfig config;
    config.device = gpusim::gtx_titan();
    config.roots = bench::first_roots(g, num_roots);
    config.sampling.n_samps = std::max<std::uint32_t>(2, num_roots / 16);

    const auto ep = kernels::run_edge_parallel(g, config);
    const auto sa = kernels::run_sampling(g, config);

    const double ep_mteps = core::as_mteps(core::teps_bc(
        g, ep.metrics.counters.roots_processed, ep.metrics.sim_seconds));
    const double sa_mteps = core::as_mteps(core::teps_bc(
        g, sa.metrics.counters.roots_processed, sa.metrics.sim_seconds));
    const double speedup = ep.metrics.sim_seconds / sa.metrics.sim_seconds;
    speedups.push_back(speedup);

    std::printf("%-20s %14.2f %14.2f %9.2fx\n", family.name.c_str(), ep_mteps, sa_mteps,
                speedup);
  }

  bench::print_rule();
  std::printf("%-20s %14s %14s %9.2fx   geometric mean\n", "Average", "", "",
              util::geometric_mean(speedups));
  std::printf("\npaper: speedups 13.31x (af_shell9), 10.23x (delaunay_n20),\n"
              "8.31x (luxembourg.osm), 1.0-1.6x on scale-free/small-world;\n"
              "geometric mean 2.71x.\n");
  return 0;
}
