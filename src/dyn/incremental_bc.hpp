#pragma once

// dyn::IncrementalBC — batched incremental betweenness centrality.
//
// Generalizes cpu::DynamicBC from one edge at a time to a whole
// UpdateBatch per epoch transition. The affected-source decomposition is
// the same family (paper reference [27], McLaughlin & Bader IPDPSW'14 —
// the dynamic-analytics workload class), extended to batches:
//
//   A source s is provably unaffected by the transition before -> after
//   when EVERY applied edge {u,v} is a same-level edge w.r.t. s in BOTH
//   graphs: d_before(s,u) == d_before(s,v) and d_after(s,u) == d_after(s,v).
//   Then no shortest path from s uses an inserted edge (every edge on a
//   shortest path connects adjacent levels) and none used a removed one,
//   so the whole shortest-path DAG — distances, sigma, delta — is
//   identical and s's contribution to BC carries over unchanged.
//
//   Identification costs one BFS pass per applied-edge endpoint per graph
//   (O(|batch| * (n + m))), run on the util::ThreadPool. Each affected
//   source then pays two single-source Brandes stages (old dependencies
//   subtracted on `before`, new ones added on `after`).
//
// Determinism: affected sources are recomputed in fixed ascending order
// inside a fixed number of reduction stripes (config.reduce_stripes,
// util::ThreadPool::parallel_chunks) and stripe partials merge in
// ascending stripe order — so refreshed scores are bitwise-identical at
// every thread count, the same guarantee kernels::BlockDriver gives the
// GPU-model strategies. The churn fallback reuses the identical striped
// path over all sources, so it inherits the guarantee.
//
// Churn threshold: when the affected fraction exceeds
// config.churn_threshold the incremental path would do near-full work
// twice (old + new dependencies); the engine recomputes from scratch on
// `after` instead — the accuracy-vs-work trade the GPU BC comparison
// literature frames for approximate variants (arXiv:1409.7764), applied
// here as a work cliff guard. Worst-case batches (a bridge insert) thus
// degrade to ~1x full recompute, never ~2x.
//
// docs/dynamic.md walks through the model; tests/test_dyn.cpp pins
// batch-vs-sequential score equality and the determinism sweep.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "dyn/versioned_graph.hpp"
#include "graph/csr.hpp"
#include "trace/trace.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

namespace hbc::dyn {

struct IncrementalConfig {
  /// Worker threads for identification and recompute; 0 = hardware
  /// concurrency. Results are bitwise-identical for every value.
  std::size_t threads = 0;
  /// Affected fraction above which the batch falls back to a full
  /// from-scratch recompute on the new snapshot. 1.0 never falls back;
  /// 0.0 always recomputes fully. Values outside [0,1] throw.
  double churn_threshold = 0.25;
  /// Fixed partial-reduction stripe count (NOT a thread count): part of
  /// the deterministic accumulation order, so changing it changes the
  /// floating-point bit pattern the way reordering roots would. Minimum 1.
  std::size_t reduce_stripes = 32;
  /// Non-owning trace destination (kDyn batch/affected-set/fallback
  /// events, kCompute recompute spans); nullptr = off.
  trace::Tracer* tracer = nullptr;
  /// Polled at BFS and source boundaries; throws util::Cancelled from the
  /// calling thread, leaving the engine's scores UNCHANGED (the batch can
  /// be re-applied).
  util::CancelToken cancel;
};

/// What one batch cost. `sources_recomputed + sources_skipped == n`
/// except for pure-no-op batches (all zero then).
struct BatchStats {
  std::uint64_t epoch = 0;            // epoch id after the commit
  std::uint64_t batch_updates = 0;    // updates submitted
  std::uint64_t applied_updates = 0;  // updates that changed the graph
  std::uint64_t noop_updates = 0;
  std::uint64_t affected_sources = 0;  // identified by the level test
  std::uint64_t sources_recomputed = 0;
  std::uint64_t sources_skipped = 0;
  double affected_fraction = 0.0;  // affected_sources / n
  bool full_recompute = false;     // churn threshold tripped
  double identify_ms = 0.0;        // BFS identification wall time
  double recompute_ms = 0.0;       // dependency recompute wall time
};

/// Exact BC of `g` computed with the striped deterministic reduction
/// (bitwise-identical at every thread count for a fixed stripe count).
/// This is what the churn fallback and IncrementalBC's constructor run.
std::vector<double> exact_scores(const graph::CSRGraph& g, util::ThreadPool& pool,
                                 std::size_t reduce_stripes,
                                 const util::CancelToken& cancel = {});

/// Core one-shot form: advance `scores` — which must hold the exact BC of
/// `before` — to the exact BC of `after`, where `after` differs from
/// `before` by exactly the normalized `applied` updates (the
/// CommitResult::applied set). On util::Cancelled, `scores` is left
/// unchanged. The service's background refresher calls this directly on
/// cached score vectors; IncrementalBC wraps it with a VersionedGraph.
BatchStats refresh_scores(const graph::CSRGraph& before, const graph::CSRGraph& after,
                          std::span<const EdgeUpdate> applied,
                          std::vector<double>& scores, util::ThreadPool& pool,
                          const IncrementalConfig& config);

/// Stateful engine: a VersionedGraph plus exact BC scores maintained
/// across batched epoch transitions. The batched analogue of
/// cpu::DynamicBC (which remains the one-edge reference implementation).
class IncrementalBC {
 public:
  /// Builds epoch-0 scores with a full (striped, deterministic) Brandes
  /// sweep. Throws std::invalid_argument for directed graphs.
  explicit IncrementalBC(graph::CSRGraph initial, IncrementalConfig config = {});
  explicit IncrementalBC(std::shared_ptr<const graph::CSRGraph> initial,
                         IncrementalConfig config = {});
  ~IncrementalBC();

  IncrementalBC(const IncrementalBC&) = delete;
  IncrementalBC& operator=(const IncrementalBC&) = delete;

  /// Commit the batch and refresh the scores. Serialized internally;
  /// throws std::out_of_range on bad vertex ids (state unchanged) and
  /// util::Cancelled on cancellation (epoch NOT advanced, scores intact).
  BatchStats apply(const UpdateBatch& batch);

  /// Current epoch / graph / scores. scores() and graph() are stable
  /// between apply() calls; do not read them concurrently with apply().
  Epoch epoch() const { return versioned_.current(); }
  const graph::CSRGraph& graph() const { return *snapshot_; }
  const std::vector<double>& scores() const noexcept { return bc_; }

  /// Accumulated counters across all batches (cpu::DynamicBC's
  /// UpdateStats, batch-aware).
  struct Totals {
    std::uint64_t batches = 0;
    std::uint64_t applied_updates = 0;
    std::uint64_t noop_updates = 0;
    std::uint64_t sources_recomputed = 0;
    std::uint64_t sources_skipped = 0;
    std::uint64_t full_recomputes = 0;
  };
  const Totals& totals() const noexcept { return totals_; }

 private:
  IncrementalConfig cfg_;
  VersionedGraph versioned_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::shared_ptr<const graph::CSRGraph> snapshot_;  // current epoch's graph
  std::vector<double> bc_;
  Totals totals_;
  std::mutex apply_mu_;  // serializes apply(); readers are documented out
};

}  // namespace hbc::dyn
