#include "graph/storage/heap.hpp"

namespace hbc::graph::storage {

HeapStorage::HeapStorage(std::vector<EdgeOffset> row_offsets,
                         std::vector<VertexId> col_indices, bool undirected)
    : Storage(undirected, Residency::kHeap),
      rows_store_(std::move(row_offsets)),
      cols_(std::move(col_indices)) {
  // Error strings keep the historical "CSRGraph:" prefix — this is the
  // validation path behind the public CSRGraph array constructor.
  validate_csr(rows_store_, cols_, "CSRGraph", /*as_format_error=*/false);
  rows_ = rows_store_;
  m_ = static_cast<EdgeOffset>(cols_.size());
}

std::uint64_t HeapStorage::compute_fingerprint() const {
  std::uint64_t h = fingerprint_prefix();
  fnv_mix(h, cols_.data(), cols_.size() * sizeof(VertexId));
  return h;
}

}  // namespace hbc::graph::storage
