#pragma once

// Deterministic, seedable PRNGs used by every generator and sampler in the
// library. We avoid std::mt19937 on hot paths: xoshiro256** is ~4x faster
// and its state is trivially splittable for parallel streams.
//
// All generators in hbc are *reproducible*: the same (seed, parameters)
// always yields the same graph on every platform, which the test suite
// relies on.

#include <cstdint>

namespace hbc::util {

/// SplitMix64 — used to expand a single 64-bit seed into full generator
/// state (reference: Steele, Lea, Flood; public-domain constants).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna, public domain).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // 128-bit multiply; rejection keeps the distribution exactly uniform.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  constexpr bool next_bool(double p) noexcept { return next_double() < p; }

  /// Derive an independent stream (for per-thread / per-partition use).
  constexpr Xoshiro256 split() noexcept {
    return Xoshiro256(next() ^ 0xd1b54a32d192ed03ULL);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace hbc::util
