#pragma once

// Shared shard-message ↔ core::Options translation. The worker uses it to
// execute a SubmitShard; the coordinator uses the SAME function for its
// local-fallback path — one translation, so a shard computed locally is
// bit-identical to the same shard computed remotely by construction.

#include "core/bc.hpp"
#include "net/wire.hpp"

namespace hbc::net {

inline core::Options options_from_shard(const wire::SubmitShardMsg& m) {
  core::Options o;
  o.strategy = static_cast<core::Strategy>(m.strategy);
  o.roots.assign(m.roots.begin(), m.roots.end());
  o.sample_roots = m.sample_roots;
  o.seed = m.seed;
  o.halve_undirected = m.halve_undirected != 0;
  o.normalize = m.normalize != 0;
  o.grid_blocks = m.grid_blocks;
  o.cpu_threads = m.cpu_threads;
  o.resilience.max_root_attempts = m.max_root_attempts;
  // 0 = "use the worker's default device"; the tuning params are copied
  // verbatim (the coordinator always fills them from the request, and they
  // steer score-affecting decisions like the hybrid's mode switches).
  if (m.device_num_sms != 0) o.device.num_sms = m.device_num_sms;
  o.hybrid.alpha = m.hybrid_alpha;
  o.hybrid.beta = m.hybrid_beta;
  o.sampling.n_samps = m.sampling_n_samps;
  o.sampling.gamma = m.sampling_gamma;
  o.sampling.min_frontier = m.sampling_min_frontier;
  return o;
}

}  // namespace hbc::net
