// hbc-gen — write a synthetic Table II stand-in graph to a file.
//
//   hbc-gen <family> <scale> <output-file> [seed] [--format metis|edgelist|binary]
//
// Families: rgg delaunay kron road smallworld scalefree web mesh2d.
// The extension picks the default format: .graph/.metis -> METIS,
// .hbc -> binary CSR, anything else -> SNAP edge list.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "cli_common.hpp"

int main(int argc, char** argv) {
  using namespace hbc;

  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <family> <scale> <output-file> [seed]"
                 " [--format metis|edgelist|binary]\n",
                 argv[0]);
    return 2;
  }

  try {
    const std::string family = argv[1];
    const std::uint32_t scale = cli::parse_u32("<scale>", argv[2]);
    const std::string path = argv[3];
    std::uint64_t seed = 1;
    std::string format;

    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
        format = argv[++i];
      } else {
        seed = cli::parse_u64("[seed]", argv[i]);
      }
    }
    if (format.empty()) {
      const bool metis_ext = path.size() >= 6 && (path.rfind(".graph") == path.size() - 6 ||
                                                  path.rfind(".metis") == path.size() - 6);
      const bool binary_ext = path.size() >= 4 && path.rfind(".hbc") == path.size() - 4;
      format = metis_ext ? "metis" : binary_ext ? "binary" : "edgelist";
    }

    const graph::CSRGraph g = graph::gen::family_by_name(family).make(scale, seed);
    std::ofstream out(path, format == "binary" ? std::ios::binary : std::ios::out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    if (format == "metis") {
      graph::io::write_metis(g, out);
    } else if (format == "edgelist") {
      graph::io::write_edge_list(g, out);
    } else if (format == "binary") {
      graph::io::write_binary(g, out);
    } else {
      std::fprintf(stderr, "unknown format: %s\n", format.c_str());
      return 2;
    }
    std::printf("wrote %s (%s) as %s to %s\n", family.c_str(), g.summary().c_str(),
                format.c_str(), path.c_str());
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
