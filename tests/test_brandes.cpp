// Correctness of the CPU oracles: serial Brandes vs the definition-level
// naive path-counting BC, exact values on the paper's Figure 1 graph, and
// the parallel Brandes reduction.

#include <gtest/gtest.h>

#include <cmath>

#include "cpu/brandes.hpp"
#include "cpu/naive.hpp"
#include "cpu/fine_grained.hpp"
#include "cpu/parallel_brandes.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace hbc;
using graph::CSRGraph;
using graph::Edge;
using graph::VertexId;

void expect_vectors_near(const std::vector<double>& a, const std::vector<double>& b,
                         double tol = 1e-9) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "index " << i;
  }
}

TEST(Brandes, MatchesNaiveOnFigure1) {
  const CSRGraph g = graph::gen::figure1_graph();
  expect_vectors_near(cpu::brandes(g).bc, cpu::naive_bc(g));
}

TEST(Brandes, Figure1QualitativeProperties) {
  // The claims the paper makes about its Figure 1 (paper ids in comments;
  // ours are paper-1).
  const CSRGraph g = graph::gen::figure1_graph();
  const auto bc = cpu::brandes(g).bc;

  EXPECT_NEAR(bc[8], 0.0, 1e-12);  // paper vertex 9: leaf, BC = 0
  EXPECT_NEAR(bc[7], 0.0, 1e-12);  // paper vertex 8: only non-shortest paths
  EXPECT_NEAR(bc[5], 0.0, 1e-12);  // paper vertex 6: leaf off the bridge
  // Paper vertex 4 bridges the halves: strictly the largest score.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v != 3) {
      EXPECT_GT(bc[3], bc[v]) << "vertex " << v;
    }
  }
}

TEST(Brandes, Figure1ExactBridgeScore) {
  // Vertex 4 (ours: 3) carries: every right{1,2,3} x left{5..9} pair
  // (3*5 = 15 unordered), every pair between leaf 6 and the rest of the
  // left side {5,7,8,9} (4 unordered), and half of the two equal-length
  // 1-2-3 / 1-4-3 paths between vertices 1 and 3 (0.5). Both directions:
  // 2 * (15 + 4 + 0.5) = 39.
  const CSRGraph g = graph::gen::figure1_graph();
  const auto bc = cpu::brandes(g).bc;
  EXPECT_NEAR(bc[3], 39.0, 1e-12);
}

TEST(Brandes, PathGraphClosedForm) {
  // On a path 0-1-2-3-4, interior vertex v lies on all ordered pairs
  // (left, right): BC(v) = 2 * (v)(n-1-v).
  const int n = 5;
  graph::EdgeList edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.push_back({v, static_cast<VertexId>(v + 1)});
  const CSRGraph g = graph::build_csr(n, edges);
  const auto bc = cpu::brandes(g).bc;
  for (int v = 0; v < n; ++v) {
    EXPECT_NEAR(bc[v], 2.0 * v * (n - 1 - v), 1e-12) << "vertex " << v;
  }
}

TEST(Brandes, StarGraphCenter) {
  // Star with c leaves: center lies on all leaf pairs; leaves have 0.
  const int leaves = 7;
  graph::EdgeList edges;
  for (VertexId v = 1; v <= leaves; ++v) edges.push_back({0, v});
  const CSRGraph g = graph::build_csr(leaves + 1, edges);
  const auto bc = cpu::brandes(g).bc;
  EXPECT_NEAR(bc[0], static_cast<double>(leaves * (leaves - 1)), 1e-12);
  for (int v = 1; v <= leaves; ++v) EXPECT_NEAR(bc[v], 0.0, 1e-12);
}

TEST(Brandes, CompleteGraphAllZero) {
  // Every pair is adjacent: no intermediate vertices on shortest paths.
  graph::EdgeList edges;
  const int n = 6;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  const CSRGraph g = graph::build_csr(n, edges);
  for (double s : cpu::brandes(g).bc) EXPECT_NEAR(s, 0.0, 1e-12);
}

TEST(Brandes, CycleGraphUniform) {
  // Even cycle n=6: all vertices equivalent by symmetry.
  graph::EdgeList edges;
  const int n = 6;
  for (VertexId v = 0; v < n; ++v) {
    edges.push_back({v, static_cast<VertexId>((v + 1) % n)});
  }
  const CSRGraph g = graph::build_csr(n, edges);
  const auto bc = cpu::brandes(g).bc;
  for (int v = 1; v < n; ++v) EXPECT_NEAR(bc[v], bc[0], 1e-12);
  expect_vectors_near(bc, cpu::naive_bc(g));
}

TEST(Brandes, EquivalentPathsSplitCredit) {
  // Diamond: 0-1, 0-2, 1-3, 2-3. Pair (0,3) splits across 1 and 2; pair
  // (1,2) splits across 0 and 3. Every vertex gets 0.5 per direction:
  // BC = 1 for all four — equal-length paths share credit.
  const CSRGraph g =
      graph::build_csr(4, std::vector<Edge>{{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const auto bc = cpu::brandes(g).bc;
  for (int v = 0; v < 4; ++v) EXPECT_NEAR(bc[v], 1.0, 1e-12) << v;
  expect_vectors_near(bc, cpu::naive_bc(g));
}

TEST(Brandes, DisconnectedComponentsIndependent) {
  // Two disjoint paths; scores must match the per-component values.
  const CSRGraph g = graph::build_csr(
      6, std::vector<Edge>{{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const auto bc = cpu::brandes(g).bc;
  EXPECT_NEAR(bc[1], 2.0, 1e-12);
  EXPECT_NEAR(bc[4], 2.0, 1e-12);
  EXPECT_NEAR(bc[0], 0.0, 1e-12);
  expect_vectors_near(bc, cpu::naive_bc(g));
}

TEST(Brandes, MatchesNaiveOnRandomGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const CSRGraph g =
        graph::gen::scale_free({.num_vertices = 60, .attach = 2, .seed = seed});
    expect_vectors_near(cpu::brandes(g).bc, cpu::naive_bc(g), 1e-7);
  }
}

TEST(Brandes, MatchesNaiveOnSparseRandomWithIsolated) {
  // kron-style graphs have isolated vertices; the oracle pair must agree.
  const CSRGraph g = graph::gen::kronecker({.scale = 6, .edge_factor = 2, .seed = 5});
  expect_vectors_near(cpu::brandes(g).bc, cpu::naive_bc(g), 1e-7);
}

TEST(Brandes, SourceSubsetAccumulatesPartialScores) {
  const CSRGraph g = graph::gen::figure1_graph();
  const auto full = cpu::brandes(g).bc;
  // Summing per-source contributions over all sources equals the full run.
  std::vector<double> acc(g.num_vertices(), 0.0);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    cpu::BrandesResult r = cpu::brandes(g, {.sources = {s}});
    ASSERT_EQ(r.roots_processed, 1u);
    for (VertexId v = 0; v < g.num_vertices(); ++v) acc[v] += r.bc[v];
  }
  expect_vectors_near(acc, full);
}

TEST(Brandes, IgnoresOutOfRangeSources) {
  const CSRGraph g = graph::gen::figure1_graph();
  cpu::BrandesResult r = cpu::brandes(g, {.sources = {0, 100, 3}});
  EXPECT_EQ(r.roots_processed, 2u);
}

TEST(Brandes, ReportsTraversalStats) {
  const CSRGraph g = graph::gen::figure1_graph();
  cpu::BrandesResult r = cpu::brandes(g);
  EXPECT_EQ(r.roots_processed, g.num_vertices());
  // Connected graph: every root traverses all 2m directed edges.
  EXPECT_EQ(r.edges_traversed, g.num_directed_edges() * g.num_vertices());
  EXPECT_GE(r.max_depth_seen, 3u);
}

TEST(ParallelBrandes, MatchesSerial) {
  const auto g = graph::gen::small_world({.num_vertices = 300, .k = 3, .seed = 9});
  const auto serial = cpu::brandes(g).bc;
  for (std::size_t threads : {1u, 2u, 4u}) {
    const auto par = cpu::parallel_brandes(g, {.sources = {}, .num_threads = threads});
    EXPECT_EQ(par.roots_processed, g.num_vertices());
    expect_vectors_near(par.bc, serial, 1e-7);
  }
}

TEST(ParallelBrandes, SourceSubsetMatchesSerialSubset) {
  const auto g = graph::gen::scale_free({.num_vertices = 200, .attach = 2, .seed = 3});
  const std::vector<VertexId> subset{0, 5, 9, 100, 199};
  const auto serial = cpu::brandes(g, {.sources = subset});
  const auto par = cpu::parallel_brandes(g, {.sources = subset, .num_threads = 3});
  expect_vectors_near(par.bc, serial.bc, 1e-9);
  EXPECT_EQ(par.roots_processed, subset.size());
}

TEST(FineGrainedBrandes, MatchesSerialAcrossThreadCounts) {
  const auto g = graph::gen::kronecker({.scale = 8, .edge_factor = 8, .seed = 4});
  const auto serial = cpu::brandes(g).bc;
  for (std::size_t threads : {1u, 2u, 4u}) {
    const auto fine = cpu::fine_grained_brandes(g, {.sources = {}, .num_threads = threads});
    EXPECT_EQ(fine.roots_processed, g.num_vertices());
    expect_vectors_near(fine.bc, serial, 1e-7);
  }
}

TEST(FineGrainedBrandes, SourceSubsetAndStats) {
  const auto g = graph::gen::road({.scale = 10, .seed = 2});
  const std::vector<VertexId> subset{0, 7, 99};
  const auto serial = cpu::brandes(g, {.sources = subset});
  const auto fine = cpu::fine_grained_brandes(g, {.sources = subset, .num_threads = 2});
  expect_vectors_near(fine.bc, serial.bc, 1e-9);
  EXPECT_EQ(fine.roots_processed, 3u);
  EXPECT_EQ(fine.edges_traversed, serial.edges_traversed);
  EXPECT_EQ(fine.max_depth_seen, serial.max_depth_seen);
}

TEST(FineGrainedBrandes, IsolatedRootIsSafe) {
  const CSRGraph g = graph::build_csr(4, std::vector<Edge>{{0, 1}});
  const auto fine = cpu::fine_grained_brandes(g, {.sources = {3}, .num_threads = 2});
  for (double x : fine.bc) EXPECT_EQ(x, 0.0);
}

TEST(FineGrainedBrandes, DeterministicScores) {
  const auto g = graph::gen::small_world({.num_vertices = 256, .k = 4, .seed = 6});
  const auto a = cpu::fine_grained_brandes(g, {.sources = {}, .num_threads = 4});
  const auto b = cpu::fine_grained_brandes(g, {.sources = {}, .num_threads = 4});
  expect_vectors_near(a.bc, b.bc, 0.0);
}

TEST(NaiveOracle, PathCountsOnDiamond) {
  const CSRGraph g =
      graph::build_csr(4, std::vector<Edge>{{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const auto pc = cpu::count_paths(g, 0);
  EXPECT_DOUBLE_EQ(pc.sigma[0], 1.0);
  EXPECT_DOUBLE_EQ(pc.sigma[1], 1.0);
  EXPECT_DOUBLE_EQ(pc.sigma[2], 1.0);
  EXPECT_DOUBLE_EQ(pc.sigma[3], 2.0);  // two shortest paths 0->3
  EXPECT_EQ(pc.distance[3], 2u);
}

}  // namespace
