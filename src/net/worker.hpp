#pragma once

// net::Worker — one member of a sharded BC fleet.
//
// A worker is a thin wire adapter around hbc::service::BcService: it
// connects to the coordinator (with exponential backoff, since fleets
// start in any order), introduces itself, materializes the graphs it is
// told to hold — verifying each fingerprint against the coordinator's, so
// a divergent load is refused rather than silently wrong — and serves
// SubmitShard messages by forwarding them to the service and streaming
// results back as they complete. Shard execution is asynchronous: the
// poll loop keeps reading new shards while earlier ones compute, so one
// worker can overlap as many shards as its service has worker threads.
//
// Determinism contract: a Partial-mode shard the local service answered
// *degraded* (strategy substituted by the resilience ladder) is refused —
// sent back as an error — because substituted bits would corrupt the
// coordinator's bitwise reduction. The coordinator retries elsewhere or
// computes the shard itself; either path produces the exact bits.
//
// Lifecycle: Drain finishes in-flight shards, says Goodbye, and returns.
// `die_after_shards` is the chaos hook for the distributed kill tests:
// the worker drops the connection the instant the Nth shard ARRIVES —
// before replying — so the coordinator sees a death with work
// outstanding, exactly the failure the reassignment path exists for.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "graph/csr.hpp"
#include "net/socket.hpp"
#include "service/service.hpp"
#include "trace/trace.hpp"

namespace hbc::net {

struct WorkerConfig {
  /// Coordinator endpoint to connect to.
  Endpoint connect;
  std::string name = "worker";
  /// Configuration for the wrapped BcService.
  service::ServiceConfig service;
  /// Materialize a graph from the coordinator's spec (a path, or
  /// "gen:family:scale[:seed]"). Default handles both; tests override it
  /// to return in-memory graphs.
  std::function<graph::CSRGraph(const std::string& spec)> graph_loader;
  /// Connection attempts before giving up (NetError propagates out of
  /// run()); backoff doubles from `connect_backoff` up to `max_backoff`.
  std::uint32_t max_connect_attempts = 60;
  std::chrono::milliseconds connect_backoff{50};
  std::chrono::milliseconds max_backoff{2000};
  /// Heartbeat cadence; 0 disables.
  std::chrono::milliseconds heartbeat_interval{1000};
  /// Chaos hook: abruptly close the connection when the Nth SubmitShard
  /// arrives (1-based), before computing or replying. 0 = never.
  std::uint32_t die_after_shards = 0;
  /// Non-owning; may be null.
  trace::Tracer* tracer = nullptr;
};

struct WorkerStats {
  std::uint64_t shards_received = 0;
  std::uint64_t shards_served = 0;
  std::uint64_t shards_refused = 0;  // degraded partials sent back as errors
  std::uint64_t graphs_loaded = 0;
  std::uint64_t mutations = 0;
  std::uint64_t heartbeats = 0;
};

class Worker {
 public:
  explicit Worker(WorkerConfig config);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Connect (with backoff) and serve until drained, told to die, stopped,
  /// or the coordinator goes away. Throws NetError when every connection
  /// attempt fails.
  void run();

  /// Ask run() to return at its next loop iteration (thread-safe; the
  /// in-process tests run workers on std::thread).
  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  const WorkerStats& stats() const noexcept { return stats_; }

 private:
  struct PendingShard {
    std::uint64_t request_id = 0;
    std::uint32_t shard_index = 0;
    std::uint8_t mode = 0;  // wire::ShardMode
    service::Ticket ticket;
  };

  Socket connect_with_backoff();
  void handle_frame(Conn& conn, const wire::Frame& frame, bool& draining, bool& done);
  void poll_tickets(Conn& conn);
  void trace_instant(const char* name, std::uint64_t req, std::uint64_t shard) const;

  WorkerConfig cfg_;
  service::BcService svc_;
  WorkerStats stats_;
  std::vector<PendingShard> pending_;
  std::atomic<bool> stop_{false};
  std::uint32_t shards_seen_ = 0;  // for die_after_shards
};

}  // namespace hbc::net
