#pragma once

// net::ChaosPlan / ChaosInjector — deterministic, seeded network fault
// injection for the fleet transport, the wire-level sibling of
// gpusim::FaultPlan (docs/resilience.md has the grammar table).
//
// A ChaosPlan describes which outbound *frames* suffer which fate. Frame
// selection is a pure hash of (seed, spec index, stream id, frame
// ordinal), so the same plan mangles the same frames no matter how the
// event loops interleave — every network failure mode is reproducible in
// tests, and the chaos-driven end-to-end tests can assert distributed
// scores stay memcmp-identical to a standalone run under any schedule.
//
// Six fates model the link failures a real fleet sees:
//
//   drop      — the frame never leaves (lossy link). The receiver only
//               notices through timeouts: straggler re-dispatch, the
//               heartbeat detector, or control-plane deadlines.
//   delay     — the frame (and, to preserve stream order, everything
//               behind it) is held for `ms` before entering the socket
//               buffer; models latency spikes and queueing.
//   dup       — the frame is sent twice (retransmit storms). Receivers
//               must be idempotent — duplicate ShardResults hit the
//               straggler "first result wins" path.
//   trunc     — only a strict prefix of the frame is sent. The receiver's
//               byte stream is now poisoned: the next extract_frame sees
//               garbage and surfaces a typed DecodeStatus, dropping the
//               connection (never UB — the property test_net_codec fuzzes).
//   flip      — one bit of the frame *header's* magic/version region is
//               inverted, guaranteeing a typed BadMagic/BadVersion at the
//               receiver rather than silently altered payload bits (which
//               would break the bitwise reduction the protocol promises;
//               payload-level hostility is test_net_codec's fuzz domain).
//   partition — every frame with ordinal in [after, after+for) is dropped:
//               a one-sided link partition with a deterministic window,
//               the input that drives the coordinator's quarantine →
//               probation → readmission detector in tests.
//
// An *inert* injector costs one null-pointer test per send (the
// bench_service_throughput chaos axis asserts < 2% overhead).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace hbc::net {

enum class ChaosKind : std::uint8_t {
  Drop,
  Delay,
  Duplicate,
  Truncate,
  Flip,
  Partition,
};

const char* to_string(ChaosKind kind) noexcept;

/// One injection rule. A frame is targeted when the seeded hash admits it
/// under `rate`, when its ordinal is listed in `frames`, or — for
/// Partition — when its ordinal falls in the window.
struct ChaosSpec {
  ChaosKind kind = ChaosKind::Drop;
  /// Fraction of frames hit by the seeded hash, in [0, 1].
  double rate = 0.0;
  /// Explicit target frame ordinals (unioned with the rate-selected set).
  std::vector<std::uint64_t> frames;
  /// Delay only: how long a held frame waits before entering the socket.
  std::chrono::milliseconds delay_ms{20};
  /// Partition only: window start ordinal ...
  std::uint64_t after = 0;
  /// ... and width in frames (0 = to the end of the stream).
  std::uint64_t window = 0;
};

/// Fleet-wide injection counters (the plan is shared across connections
/// and threads, so these are atomics; stats() snapshots them).
struct ChaosStats {
  std::uint64_t frames = 0;  // outbound frames that consulted the plan
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t truncated = 0;
  std::uint64_t flipped = 0;
  std::uint64_t partitioned = 0;

  std::uint64_t injected() const noexcept {
    return dropped + delayed + duplicated + truncated + flipped + partitioned;
  }
};

class ChaosPlan {
 public:
  ChaosPlan() = default;
  explicit ChaosPlan(std::uint64_t seed) : seed_(seed) {}

  /// Movable so parse() can return by value; the atomic counters restart
  /// at zero in the destination (a plan is moved before it is armed).
  ChaosPlan(ChaosPlan&& other) noexcept
      : seed_(other.seed_), specs_(std::move(other.specs_)) {}
  ChaosPlan& operator=(ChaosPlan&& other) noexcept {
    seed_ = other.seed_;
    specs_ = std::move(other.specs_);
    return *this;
  }

  /// Validates and appends one rule (throws std::invalid_argument on a
  /// rate outside [0, 1]).
  void add(ChaosSpec spec);

  std::uint64_t seed() const noexcept { return seed_; }
  bool empty() const noexcept { return specs_.empty(); }
  const std::vector<ChaosSpec>& specs() const noexcept { return specs_; }

  /// The fate of frame `ordinal` on `stream_id`, or nullopt (frame passes
  /// clean). First matching spec wins. Pure: same inputs, same fate.
  struct Fate {
    ChaosKind kind;
    std::chrono::milliseconds delay{0};  // Delay only
  };
  std::optional<Fate> fate(std::uint64_t stream_id, std::uint64_t ordinal) const noexcept;

  /// Canonical serialization: parse(signature()) round-trips, and equal
  /// signatures mean identical injection behaviour.
  std::string signature() const;

  /// Parse the CLI grammar (mirrors gpusim::FaultPlan::parse):
  ///   spec   := clause (';' clause)*
  ///   clause := 'seed=' N | kind (',' opt)*
  ///   kind   := 'drop' | 'delay' | 'dup' | 'trunc' | 'flip' | 'partition'
  ///   opt    := 'rate=' F | 'frames=' N (':' N)* | 'ms=' N
  ///           | 'after=' N | 'for=' N
  /// e.g. "seed=11;drop,rate=0.05;partition,after=40,for=20".
  /// Throws std::invalid_argument on malformed input.
  static ChaosPlan parse(const std::string& spec);

  /// parse() boxed for CoordinatorConfig / WorkerConfig.
  static std::shared_ptr<const ChaosPlan> parse_shared(const std::string& spec);

  /// Snapshot of the fleet-wide injection counters.
  ChaosStats stats() const noexcept;

 private:
  friend class ChaosInjector;
  bool spec_hits(std::size_t spec_index, std::uint64_t stream_id,
                 std::uint64_t ordinal) const noexcept;

  struct Counters {
    std::atomic<std::uint64_t> frames{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> delayed{0};
    std::atomic<std::uint64_t> duplicated{0};
    std::atomic<std::uint64_t> truncated{0};
    std::atomic<std::uint64_t> flipped{0};
    std::atomic<std::uint64_t> partitioned{0};
  };

  std::uint64_t seed_ = 1;
  std::vector<ChaosSpec> specs_;
  mutable Counters counters_;
};

/// Per-connection injector: owns the outbound frame ordinal and the
/// delay-hold queue for one stream. Conn::send routes every frame through
/// on_send when armed; the event loops call release_due each pass so held
/// frames eventually enter the write buffer (in their original order —
/// a delayed frame blocks everything queued behind it, modelling added
/// latency rather than reordering).
class ChaosInjector {
 public:
  ChaosInjector(std::shared_ptr<const ChaosPlan> plan, std::uint64_t stream_id)
      : plan_(std::move(plan)), stream_(stream_id) {}

  /// Apply the next fate to `frame`; bytes to send now are appended to
  /// `out`, delayed bytes are held.
  void on_send(std::span<const std::uint8_t> frame, std::vector<std::uint8_t>& out);

  /// Move every held frame whose release time has passed into `out`.
  void release_due(std::vector<std::uint8_t>& out);

  bool holding() const noexcept { return !held_.empty(); }
  std::uint64_t ordinal() const noexcept { return ordinal_; }
  const std::shared_ptr<const ChaosPlan>& plan() const noexcept { return plan_; }

 private:
  struct Held {
    std::chrono::steady_clock::time_point release;
    std::vector<std::uint8_t> bytes;
  };

  void hold(std::chrono::steady_clock::time_point release,
            std::vector<std::uint8_t> bytes);

  std::shared_ptr<const ChaosPlan> plan_;
  std::uint64_t stream_ = 0;
  std::uint64_t ordinal_ = 0;
  std::deque<Held> held_;
};

}  // namespace hbc::net
