#pragma once

// Fixed-size thread pool with a parallel_for convenience wrapper.
//
// Used by cpu::parallel_brandes (coarse-grained parallelism over BC roots —
// the CPU analogue of the paper's one-root-per-SM mapping) and by the dist
// communicator when running ranks concurrently. Degrades gracefully to
// inline execution when constructed with 0 or 1 threads.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hbc::util {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run fn(i) for i in [0, n) across the pool, blocking until done.
  /// Iterations are chunked to amortize dispatch overhead.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Static-partition variant: fn(thread_id, begin, end). Exactly
  /// thread_count() contiguous ranges, matching the "subset of roots per
  /// GPU" distribution in the paper's multi-GPU section.
  void parallel_ranges(std::size_t n,
                       const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Fixed-chunk-count partition: fn(chunk_id, begin, end) for exactly
  /// `num_chunks` contiguous chunks of [0, n), independent of the pool's
  /// thread count. This is the CPU analogue of kernels::BlockDriver's
  /// block decomposition: callers that accumulate one partial per chunk
  /// and reduce the partials in ascending chunk order get bitwise-
  /// identical results at every thread count (dyn::IncrementalBC relies
  /// on this). Chunks beyond n are skipped; num_chunks == 0 is an error.
  void parallel_chunks(std::size_t n, std::size_t num_chunks,
                       const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace hbc::util
