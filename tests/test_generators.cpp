// Structural properties of the graph generators: each family must carry
// the signature (degree profile, diameter class, connectivity) of the
// paper dataset it stands in for (Table II).

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace hbc::graph;
using namespace hbc::graph::gen;

TEST(Rgg, DeterministicInSeed) {
  const auto a = rgg({.scale = 10, .seed = 3});
  const auto b = rgg({.scale = 10, .seed = 3});
  const auto c = rgg({.scale = 10, .seed = 4});
  EXPECT_EQ(a.num_directed_edges(), b.num_directed_edges());
  ASSERT_EQ(a.col_indices().size(), b.col_indices().size());
  for (std::size_t i = 0; i < a.col_indices().size(); ++i) {
    ASSERT_EQ(a.col_indices()[i], b.col_indices()[i]);
  }
  EXPECT_NE(a.num_directed_edges(), c.num_directed_edges());
}

TEST(Rgg, HitsTargetAverageDegree) {
  const auto g = rgg({.scale = 12, .target_avg_degree = 13.0, .seed = 1});
  EXPECT_EQ(g.num_vertices(), 1u << 12);
  // Boundary effects lower the realized mean a little.
  EXPECT_GT(g.average_degree(), 8.0);
  EXPECT_LT(g.average_degree(), 16.0);
}

TEST(Rgg, IsHighDiameter) {
  const auto g = rgg({.scale = 12, .seed = 1});
  // Geometric structure: diameter scales like sqrt(n)/r — far beyond
  // log2(n) = 12.
  EXPECT_GT(pseudo_diameter(g), 30u);
}

TEST(Rgg, LowDegreeSkew) {
  const auto s = degree_stats(rgg({.scale = 12, .seed = 1}));
  EXPECT_LT(s.skew, 0.6);
}

TEST(DelaunayMesh, AverageDegreeNearSix) {
  const auto g = delaunay_mesh({.scale = 12, .seed = 1});
  EXPECT_GT(g.average_degree(), 4.5);
  EXPECT_LT(g.average_degree(), 6.5);
}

TEST(DelaunayMesh, ConnectedAndHighDiameter) {
  const auto g = delaunay_mesh({.scale = 12, .seed = 1});
  EXPECT_TRUE(is_connected(g));
  EXPECT_GT(pseudo_diameter(g), 30u);  // ~sqrt(n) = 64 for a 64x64 grid
}

TEST(Mesh2d, UniformHighDegree) {
  const auto g = mesh2d({.scale = 12, .halo = 2});
  const auto s = degree_stats(g);
  // Interior degree is 24 for halo=2; boundary trims the mean.
  EXPECT_GT(s.mean_degree, 18.0);
  EXPECT_LE(s.max_degree, 24u);
  EXPECT_LT(s.skew, 0.3);
  EXPECT_TRUE(is_connected(g));
}

TEST(Kronecker, HasIsolatedVerticesLikeGraph500) {
  const auto g = kronecker({.scale = 12, .edge_factor = 16, .seed = 1});
  const auto cc = connected_components(g);
  // §V.D: kron graphs carry a sizable share of isolated vertices, but
  // over 75% of vertices are not isolated.
  EXPECT_GT(cc.isolated_vertices, 0u);
  EXPECT_LT(cc.isolated_vertices, g.num_vertices() / 4);
}

TEST(Kronecker, TinyDiameterAndSkewedDegrees) {
  const auto g = kronecker({.scale = 12, .edge_factor = 16, .seed = 1});
  EXPECT_LE(pseudo_diameter(g), 8u);
  const auto s = degree_stats(g);
  EXPECT_GT(s.skew, 1.0);
  EXPECT_GT(s.max_degree, 100u);
}

TEST(Kronecker, RejectsBadProbabilities) {
  EXPECT_THROW(kronecker({.scale = 4, .a = 0.9, .b = 0.2, .c = 0.2}),
               std::invalid_argument);
}

TEST(Road, LuxembourgProfile) {
  const auto g = road({.scale = 12, .seed = 1});
  EXPECT_TRUE(is_connected(g));  // spanning structure by construction
  EXPECT_LT(g.average_degree(), 3.0);  // luxembourg: ~2.1
  EXPECT_LE(degree_stats(g).max_degree, 4u);
  // Diameter far beyond the sqrt(n)=64 grid side (maze carving).
  EXPECT_GT(pseudo_diameter(g), 100u);
}

TEST(SmallWorld, DegreeAndDiameter) {
  const auto g = small_world({.num_vertices = 4096, .k = 5, .rewire_p = 0.1, .seed = 1});
  // Degree 2k = 10 before dedup of rewired collisions.
  EXPECT_GT(g.average_degree(), 9.0);
  EXPECT_LE(g.average_degree(), 10.0);
  EXPECT_LE(pseudo_diameter(g), 12u);  // small world: ~log n
  EXPECT_TRUE(is_connected(g));
}

TEST(SmallWorld, ZeroRewireIsRingLattice) {
  const auto g = small_world({.num_vertices = 64, .k = 2, .rewire_p = 0.0, .seed = 1});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.degree(v), 4u);
  }
  EXPECT_EQ(pseudo_diameter(g), 16u);  // n / (2k)
}

TEST(SmallWorld, RejectsTooSmall) {
  EXPECT_THROW(small_world({.num_vertices = 4, .k = 2}), std::invalid_argument);
}

TEST(ScaleFree, PowerLawTail) {
  const auto g = scale_free({.num_vertices = 4096, .attach = 3, .seed = 1});
  const auto s = degree_stats(g);
  EXPECT_GT(s.skew, 1.0);
  EXPECT_GT(s.max_degree, 50u);
  EXPECT_TRUE(is_connected(g));  // preferential attachment grows connected
  EXPECT_LE(pseudo_diameter(g), 10u);
}

TEST(ScaleFree, EdgeCountMatchesAttachment) {
  const std::uint32_t n = 1000, attach = 3;
  const auto g = scale_free({.num_vertices = n, .attach = attach, .seed = 2});
  // Seed clique (attach+1 choose 2) + attach per subsequent vertex.
  const std::uint64_t expected = attach * (attach + 1) / 2 +
                                 static_cast<std::uint64_t>(n - attach - 1) * attach;
  EXPECT_EQ(g.num_undirected_edges(), expected);
}

TEST(ScaleFree, RejectsDegenerate) {
  EXPECT_THROW(scale_free({.num_vertices = 3, .attach = 3}), std::invalid_argument);
}

TEST(WebCrawl, HubsAndClusters) {
  const auto g = web_crawl({.num_vertices = 4096, .out_links = 8, .seed = 1});
  const auto s = degree_stats(g);
  EXPECT_GT(s.skew, 1.0);       // copying concentrates links
  EXPECT_GT(s.max_degree, 80u); // hubs
  EXPECT_LE(pseudo_diameter(g), 12u);
}

TEST(WebCrawl, RejectsDegenerate) {
  EXPECT_THROW(web_crawl({.num_vertices = 4, .out_links = 8}), std::invalid_argument);
}

TEST(ErdosRenyi, ExactEdgeCount) {
  const auto g = erdos_renyi({.num_vertices = 500, .num_edges = 2000, .seed = 3});
  EXPECT_EQ(g.num_vertices(), 500u);
  EXPECT_EQ(g.num_undirected_edges(), 2000u);
}

TEST(ErdosRenyi, DeterministicInSeed) {
  const auto a = erdos_renyi({.num_vertices = 200, .num_edges = 600, .seed = 9});
  const auto b = erdos_renyi({.num_vertices = 200, .num_edges = 600, .seed = 9});
  ASSERT_EQ(a.col_indices().size(), b.col_indices().size());
  for (std::size_t i = 0; i < a.col_indices().size(); ++i) {
    ASSERT_EQ(a.col_indices()[i], b.col_indices()[i]);
  }
}

TEST(ErdosRenyi, RejectsImpossibleRequests) {
  EXPECT_THROW(erdos_renyi({.num_vertices = 1, .num_edges = 1}), std::invalid_argument);
  EXPECT_THROW(erdos_renyi({.num_vertices = 4, .num_edges = 7}), std::invalid_argument);
}

TEST(ErdosRenyi, LowClusteringControl) {
  // ER graphs have clustering ~ 2m / n^2 — far below Watts-Strogatz at
  // the same density (the small-world contrast).
  const auto er = erdos_renyi({.num_vertices = 2000, .num_edges = 10000, .seed = 1});
  const auto sw = small_world({.num_vertices = 2000, .k = 5, .rewire_p = 0.1, .seed = 1});
  EXPECT_LT(clustering_coefficient(er), 0.05);
  EXPECT_GT(clustering_coefficient(sw), 0.3);
}

TEST(Clustering, TriangleIsFullyClustered) {
  const auto g = build_csr(3, std::vector<Edge>{{0, 1}, {1, 2}, {2, 0}});
  EXPECT_DOUBLE_EQ(clustering_coefficient(g), 1.0);
}

TEST(Clustering, StarHasZero) {
  EdgeList edges;
  for (VertexId v = 1; v < 8; ++v) edges.push_back({0, v});
  EXPECT_DOUBLE_EQ(clustering_coefficient(build_csr(8, edges)), 0.0);
}

TEST(Clustering, SampledTracksExact) {
  const auto g = small_world({.num_vertices = 1024, .k = 4, .rewire_p = 0.2, .seed = 2});
  const double exact = clustering_coefficient(g);
  const double sampled = clustering_coefficient(g, 256);
  EXPECT_NEAR(sampled, exact, 0.1);
}

TEST(Registry, Figure3FamilyHasFiveClasses) {
  const auto fams = figure3_family();
  ASSERT_EQ(fams.size(), 5u);
  for (const auto& f : fams) {
    const auto g = f.make(8, 1);
    EXPECT_GT(g.num_vertices(), 0u) << f.name;
    EXPECT_GT(g.num_directed_edges(), 0u) << f.name;
  }
}

TEST(Registry, Table3FamilyHasEightGraphs) {
  const auto fams = table3_family();
  ASSERT_EQ(fams.size(), 8u);
  for (const auto& f : fams) {
    const auto g = f.make(8, 1);
    EXPECT_GT(g.num_vertices(), 0u) << f.name;
  }
}

TEST(Registry, FamilyByNameThrowsOnUnknown) {
  EXPECT_THROW(family_by_name("nope"), std::invalid_argument);
  EXPECT_NO_THROW(family_by_name("rgg"));
  EXPECT_NO_THROW(family_by_name("mesh2d"));
}

TEST(Figure1, StructureMatchesPaper) {
  const auto g = figure1_graph();
  EXPECT_EQ(g.num_vertices(), 9u);
  EXPECT_EQ(g.num_undirected_edges(), 10u);
  // Fig 2: BFS from paper vertex 4 (ours 3) reaches {1,3,5,6} (ours
  // {0,2,4,5}) in the second iteration.
  const auto r = bfs(g, 3);
  EXPECT_EQ(r.frontiers[0], 1u);
  EXPECT_EQ(r.frontiers[1], 4u);
  EXPECT_EQ(r.distance[0], 1u);
  EXPECT_EQ(r.distance[2], 1u);
  EXPECT_EQ(r.distance[4], 1u);
  EXPECT_EQ(r.distance[5], 1u);
  // Paper vertex 9 (ours 8) is two hops past 7 (ours 6).
  EXPECT_EQ(r.distance[8], 3u);
}

}  // namespace
