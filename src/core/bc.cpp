#include "core/bc.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>

#include "core/teps.hpp"
#include "cpu/brandes.hpp"
#include "cpu/fine_grained.hpp"
#include "cpu/parallel_brandes.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace hbc::core {

using graph::VertexId;

const char* to_string(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::CpuSerial: return "cpu-serial";
    case Strategy::CpuParallel: return "cpu-parallel";
    case Strategy::CpuFineGrained: return "cpu-fine-grained";
    case Strategy::VertexParallel: return "vertex-parallel";
    case Strategy::EdgeParallel: return "edge-parallel";
    case Strategy::GpuFan: return "gpu-fan";
    case Strategy::WorkEfficient: return "work-efficient";
    case Strategy::Hybrid: return "hybrid";
    case Strategy::Sampling: return "sampling";
    case Strategy::DirectionOptimized: return "direction-optimized";
  }
  return "?";
}

Strategy strategy_from_string(const std::string& name) {
  if (name == "cpu" || name == "cpu-serial") return Strategy::CpuSerial;
  if (name == "cpu-parallel") return Strategy::CpuParallel;
  if (name == "cpu-fine-grained" || name == "cpu-fine") return Strategy::CpuFineGrained;
  if (name == "vertex" || name == "vertex-parallel") return Strategy::VertexParallel;
  if (name == "edge" || name == "edge-parallel") return Strategy::EdgeParallel;
  if (name == "gpufan" || name == "gpu-fan") return Strategy::GpuFan;
  if (name == "we" || name == "work-efficient") return Strategy::WorkEfficient;
  if (name == "hybrid") return Strategy::Hybrid;
  if (name == "sampling") return Strategy::Sampling;
  if (name == "diropt" || name == "direction-optimized") return Strategy::DirectionOptimized;
  throw std::invalid_argument("unknown strategy name: " + name);
}

bool uses_gpu_model(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::CpuSerial:
    case Strategy::CpuParallel:
    case Strategy::CpuFineGrained:
      return false;
    default:
      return true;
  }
}

std::vector<VertexId> sample_roots(VertexId n, std::uint32_t k, std::uint64_t seed) {
  // Partial Fisher–Yates over a dense id vector.
  std::vector<VertexId> ids(n);
  for (VertexId v = 0; v < n; ++v) ids[v] = v;
  util::Xoshiro256 rng(seed);
  const std::uint32_t take = std::min<std::uint32_t>(k, n);
  for (std::uint32_t i = 0; i < take; ++i) {
    const std::uint64_t j = i + rng.next_below(n - i);
    std::swap(ids[i], ids[j]);
  }
  ids.resize(take);
  return ids;
}

std::string options_signature(const Options& o) {
  std::ostringstream s;
  s << "strategy=" << to_string(o.strategy);
  s << ";sample_roots=" << o.sample_roots << ";seed=" << o.seed;
  s << ";halve=" << (o.halve_undirected ? 1 : 0)
    << ";normalize=" << (o.normalize ? 1 : 0);
  if (o.strategy == Strategy::CpuParallel || o.strategy == Strategy::CpuFineGrained) {
    s << ";cpu_threads=" << o.cpu_threads;
  }
  const gpusim::DeviceConfig& d = o.device;
  const gpusim::CostModel& c = d.cost;
  s << ";device=" << d.name << ',' << d.num_sms << ',' << d.threads_per_block << ','
    << d.warp_size << ',' << d.clock_ghz << ',' << d.memory_bytes << ',' << d.time_scale;
  s << ";cost=" << c.scan_seq << ',' << c.process_seq << ',' << c.process_rand << ','
    << c.stream_threshold << ',' << c.queue_vertex << ',' << c.queue_insert << ','
    << c.atomic_extra << ',' << c.thread_ilp << ',' << c.block_barrier << ','
    << c.hybrid_decision << ',' << c.sampling_guard << ',' << c.grid_relaunch;
  s << ";hybrid=" << o.hybrid.alpha << ',' << o.hybrid.beta;
  s << ";sampling=" << o.sampling.n_samps << ',' << o.sampling.gamma << ','
    << o.sampling.min_frontier;
  // grid_blocks is appended only when set so the signature bytes of every
  // pre-existing Options value are unchanged (cache keys stay compatible).
  if (o.grid_blocks != 0 && uses_gpu_model(o.strategy)) {
    s << ";grid_blocks=" << o.grid_blocks;
  }
  s << ";roots=";
  for (const VertexId v : o.roots) s << v << ',';
  // A fully-recovered fault-injected run is bitwise-identical to a clean
  // one, but runs that can FAIL roots are not interchangeable with clean
  // runs — so any armed plan (and the retry budget that shapes which roots
  // survive) conservatively fragments the key. cancel/fault_retry_epoch
  // are excluded: they never change the scores of a result that completes.
  // Options::trace is excluded entirely — capture is pure diagnostics.
  if (o.resilience.fault_plan && !o.resilience.fault_plan->empty()) {
    s << ";faults=" << o.resilience.fault_plan->signature()
      << ";max_attempts=" << o.resilience.max_root_attempts;
  }
  return s.str();
}

namespace {

std::atomic<std::uint64_t> g_compute_invocations{0};

// Out-of-range roots would index past the CSR arrays; duplicate roots
// silently double-count their sigma/delta contributions into the scores.
// Both are caller bugs — reject them before any work happens.
void validate_roots(const graph::CSRGraph& g, std::span<const VertexId> roots) {
  std::vector<bool> seen(g.num_vertices(), false);
  for (const VertexId r : roots) {
    if (r >= g.num_vertices()) {
      throw std::invalid_argument(
          "core::compute: root " + std::to_string(r) + " out of range for graph with " +
          std::to_string(g.num_vertices()) + " vertices");
    }
    if (seen[r]) {
      throw std::invalid_argument(
          "core::compute: duplicate root " + std::to_string(r) +
          " (duplicates double-count its contribution to every score)");
    }
    seen[r] = true;
  }
}

kernels::Strategy to_kernel_strategy(Strategy s) {
  switch (s) {
    case Strategy::VertexParallel: return kernels::Strategy::VertexParallel;
    case Strategy::EdgeParallel: return kernels::Strategy::EdgeParallel;
    case Strategy::GpuFan: return kernels::Strategy::GpuFan;
    case Strategy::WorkEfficient: return kernels::Strategy::WorkEfficient;
    case Strategy::Hybrid: return kernels::Strategy::Hybrid;
    case Strategy::Sampling: return kernels::Strategy::Sampling;
    case Strategy::DirectionOptimized: return kernels::Strategy::DirectionOptimized;
    default: throw std::invalid_argument("not a kernel strategy");
  }
}

}  // namespace

std::uint64_t compute_invocations() noexcept {
  return g_compute_invocations.load(std::memory_order_relaxed);
}

BCResult compute(const graph::CSRGraph& g, const Options& options) {
  validate_roots(g, options.roots);
  g_compute_invocations.fetch_add(1, std::memory_order_relaxed);
  BCResult result;
  result.strategy = options.strategy;

  std::vector<VertexId> roots = options.roots;
  const bool approximate =
      roots.empty() && options.sample_roots > 0 && options.sample_roots < g.num_vertices();
  if (approximate) {
    roots = sample_roots(g.num_vertices(), options.sample_roots, options.seed);
  }
  result.approximate = approximate || (!roots.empty() && roots.size() < g.num_vertices());

  // CPU engines get a wall-clock compute span on a host sink. GPU-model
  // strategies deliberately get NO wall-clock events — their traces are
  // stamped purely from the simulated cycle ledger so captures stay
  // bitwise-identical at every host-thread count.
  trace::Tracer* tracer = options.trace.tracer;
  trace::Sink* host_sink =
      tracer && !uses_gpu_model(options.strategy) ? tracer->thread_sink() : nullptr;
  trace::ScopedSpan compute_span(host_sink, tracer, to_string(options.strategy),
                                 trace::kCompute,
                                 {{"roots", static_cast<std::uint64_t>(
                                                roots.empty() ? g.num_vertices()
                                                              : roots.size())}});

  util::Timer wall;
  switch (options.strategy) {
    case Strategy::CpuSerial: {
      cpu::BrandesResult r =
          cpu::brandes(g, {.sources = roots, .cancel = options.resilience.cancel});
      result.scores = std::move(r.bc);
      result.roots_processed = r.roots_processed;
      result.time_seconds = wall.elapsed_seconds();
      break;
    }
    case Strategy::CpuParallel: {
      cpu::BrandesResult r = cpu::parallel_brandes(
          g, {.sources = roots, .num_threads = options.cpu_threads,
              .cancel = options.resilience.cancel});
      result.scores = std::move(r.bc);
      result.roots_processed = r.roots_processed;
      result.time_seconds = wall.elapsed_seconds();
      break;
    }
    case Strategy::CpuFineGrained: {
      cpu::BrandesResult r = cpu::fine_grained_brandes(
          g, {.sources = roots, .num_threads = options.cpu_threads,
              .cancel = options.resilience.cancel});
      result.scores = std::move(r.bc);
      result.roots_processed = r.roots_processed;
      result.time_seconds = wall.elapsed_seconds();
      break;
    }
    default: {
      kernels::RunConfig rc;
      rc.roots = roots;
      rc.device = options.device;
      rc.hybrid = options.hybrid;
      rc.sampling = options.sampling;
      rc.collect_per_root_stats = options.collect_per_root_stats;
      rc.cpu_threads = options.cpu_threads;
      rc.grid_blocks = options.grid_blocks;
      rc.fault_plan = options.resilience.fault_plan;
      rc.cancel = options.resilience.cancel;
      rc.max_root_attempts = options.resilience.max_root_attempts;
      rc.fault_retry_epoch = options.resilience.fault_retry_epoch;
      rc.tracer = tracer;
      kernels::RunResult r =
          kernels::run_strategy(to_kernel_strategy(options.strategy), g, rc);
      result.scores = std::move(r.bc);
      result.roots_processed = r.metrics.counters.roots_processed;
      result.time_seconds = r.metrics.sim_seconds;
      result.kernel_metrics = std::move(r.metrics);
      result.per_root = std::move(r.per_root);
      result.faults = std::move(r.faults);
      break;
    }
  }
  result.wall_seconds = wall.elapsed_seconds();

  // Approximation: unbiased scale-up of the sampled-root partial sums.
  if (approximate && result.roots_processed > 0) {
    const double scale = static_cast<double>(g.num_vertices()) /
                         static_cast<double>(result.roots_processed);
    for (double& s : result.scores) s *= scale;
  }

  if (options.halve_undirected) {
    for (double& s : result.scores) s *= 0.5;
  }
  if (options.normalize) {
    result.scores = normalized(result.scores);
  }

  result.teps = teps_bc(g, result.roots_processed, result.time_seconds);
  return result;
}

std::vector<double> normalized(std::span<const double> scores) {
  const double n = static_cast<double>(scores.size());
  std::vector<double> out(scores.begin(), scores.end());
  if (n < 3) {
    std::fill(out.begin(), out.end(), 0.0);
    return out;
  }
  const double scale = 1.0 / ((n - 1.0) * (n - 2.0));
  for (double& s : out) s *= scale;
  return out;
}

std::vector<std::pair<VertexId, double>> top_k(std::span<const double> scores,
                                               std::size_t k) {
  std::vector<std::pair<VertexId, double>> pairs;
  pairs.reserve(scores.size());
  for (std::size_t v = 0; v < scores.size(); ++v) {
    pairs.emplace_back(static_cast<VertexId>(v), scores[v]);
  }
  const std::size_t take = std::min(k, pairs.size());
  std::partial_sort(pairs.begin(), pairs.begin() + static_cast<std::ptrdiff_t>(take),
                    pairs.end(), [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  pairs.resize(take);
  return pairs;
}

}  // namespace hbc::core
