#include "cpu/parallel_brandes.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "util/thread_pool.hpp"

namespace hbc::cpu {

using graph::CSRGraph;
using graph::VertexId;

BrandesResult parallel_brandes(const CSRGraph& g, const ParallelBrandesOptions& options) {
  const VertexId n = g.num_vertices();

  std::vector<VertexId> sources = options.sources;
  if (sources.empty()) {
    sources.resize(n);
    std::iota(sources.begin(), sources.end(), VertexId{0});
  }

  util::ThreadPool pool(options.num_threads);
  const std::size_t workers = pool.thread_count();

  std::vector<BrandesResult> partials(workers);
  for (auto& p : partials) p.bc.assign(n, 0.0);

  pool.parallel_ranges(sources.size(), [&](std::size_t tid, std::size_t begin, std::size_t end) {
    BrandesResult& local = partials[tid];
    for (std::size_t i = begin; i < end; ++i) {
      // Pool tasks must not throw; bail at the root boundary and let the
      // calling thread raise Cancelled after the join below.
      if (options.cancel.cancelled()) return;
      const VertexId s = sources[i];
      if (s >= n) continue;
      brandes_single_source(g, s, local.bc, &local);
      ++local.roots_processed;
    }
  });
  options.cancel.check();

  BrandesResult result;
  result.bc.assign(n, 0.0);
  for (const auto& p : partials) {
    for (VertexId v = 0; v < n; ++v) result.bc[v] += p.bc[v];
    result.roots_processed += p.roots_processed;
    result.edges_traversed += p.edges_traversed;
    result.max_depth_seen = std::max(result.max_depth_seen, p.max_depth_seen);
  }
  return result;
}

}  // namespace hbc::cpu
