#pragma once

// Internal helpers shared by the kernel drivers. Not part of the public
// API (tests include it to probe internals; nothing else should).

#include <numeric>
#include <vector>

#include "gpusim/device.hpp"
#include "kernels/bc_state.hpp"
#include "util/timer.hpp"

namespace hbc::kernels::detail {

/// Roots to process: the explicit list, or every vertex.
inline std::vector<graph::VertexId> resolve_roots(const graph::CSRGraph& g,
                                                  const RunConfig& config) {
  if (!config.roots.empty()) return config.roots;
  std::vector<graph::VertexId> roots(g.num_vertices());
  std::iota(roots.begin(), roots.end(), graph::VertexId{0});
  return roots;
}

/// Register the replicated graph arrays on the device ledger. Edge-
/// parallel kernels additionally keep the per-edge source lookup.
inline void allocate_graph(gpusim::Device& device, const graph::CSRGraph& g,
                           bool needs_edge_sources) {
  auto& mem = device.memory();
  mem.allocate((static_cast<std::uint64_t>(g.num_vertices()) + 1) * sizeof(graph::EdgeOffset),
               "csr.row_offsets");
  mem.allocate(g.num_directed_edges() * sizeof(graph::VertexId), "csr.col_indices");
  if (needs_edge_sources) {
    mem.allocate(g.num_directed_edges() * sizeof(graph::VertexId), "csr.edge_sources");
  }
  mem.allocate(static_cast<std::uint64_t>(g.num_vertices()) * sizeof(double), "bc.global");
}

/// Finalize the metrics block after the run loop.
inline void finalize_metrics(RunResult& result, gpusim::Device& device,
                             const util::Timer& wall) {
  result.metrics.counters = device.counters();
  result.metrics.elapsed_cycles = device.elapsed_cycles();
  result.metrics.sim_seconds = device.elapsed_seconds();
  result.metrics.wall_seconds = wall.elapsed_seconds();
  result.metrics.device_memory_high_water = device.memory().high_water_mark();
}

/// Shared driver for the Jia et al. level-check kernels (vertex- and
/// edge-parallel differ only in the per-level primitive). Implemented in
/// edge_parallel.cpp.
RunResult run_levelcheck_kernel(const graph::CSRGraph& g, const RunConfig& config,
                                Mode mode);

}  // namespace hbc::kernels::detail
