// Extension bench (paper §VI future work): the work-efficiency vs
// parallelism trade-off projected onto weighted BC. Bellman-Ford
// edge-parallel scans every edge per relaxation round (the weighted
// analogue of the Jia et al. level-check traversal); the Davidson et al.
// near-far method keeps an explicit worklist (the analogue of the paper's
// work-efficient queues). The unweighted story repeats: near-far wins on
// high-diameter graphs by orders of magnitude of avoided edge
// inspections, while dense low-diameter graphs narrow the gap.

#include <cstdio>

#include "bench/common.hpp"
#include "cpu/weighted_brandes.hpp"
#include "graph/generators.hpp"
#include "kernels/weighted.hpp"

int main() {
  using namespace hbc;

  const std::uint32_t scale_override = bench::env_u32("HBC_BENCH_SCALE", 0);
  const std::uint32_t roots_override = bench::env_u32("HBC_BENCH_ROOTS", 0);

  bench::print_header(
      "Weighted BC (extension, paper §VI): Bellman-Ford vs near-far",
      "uniform random weights in [1, 4); GTX Titan model; same roots per graph");
  std::printf("%-20s %12s %12s %12s | %14s %14s\n", "Graph", "BF-EP (s)",
              "near-far(s)", "sampling(s)", "BF inspected", "NF inspected");
  bench::print_rule();

  for (const auto& family : graph::gen::table3_family()) {
    const std::uint32_t scale = scale_override ? scale_override : family.default_scale;
    const std::uint32_t num_roots =
        roots_override ? roots_override : std::max(4u, family.default_roots / 4);
    const graph::CSRGraph g = family.make(scale, /*seed=*/1);
    const auto weights = cpu::random_symmetric_weights(g, 1.0, 4.0, 7);

    kernels::WeightedConfig config;
    config.base.device = gpusim::gtx_titan();
    config.base.roots = bench::first_roots(g, num_roots);

    config.strategy = kernels::WeightedStrategy::BellmanFordEdgeParallel;
    const auto bf = kernels::run_weighted_bc(g, weights, config);
    config.strategy = kernels::WeightedStrategy::NearFarWorkEfficient;
    const auto nf = kernels::run_weighted_bc(g, weights, config);
    config.strategy = kernels::WeightedStrategy::Sampling;
    config.base.sampling.n_samps = std::max(2u, num_roots / 8);
    const auto sa = kernels::run_weighted_bc(g, weights, config);

    std::printf("%-20s %12.5f %12.5f %9.5f %s | %14llu %14llu\n", family.name.c_str(),
                bf.metrics.sim_seconds, nf.metrics.sim_seconds, sa.metrics.sim_seconds,
                sa.sampling_chose_bellman_ford ? "BF" : "NF",
                static_cast<unsigned long long>(bf.metrics.counters.edges_inspected),
                static_cast<unsigned long long>(nf.metrics.counters.edges_inspected));
  }

  bench::print_rule();
  std::printf("the unweighted dichotomy (Fig 4) carries over to SSSP-based BC, and the\n"
              "Algorithm 5 probe picks the right engine per structure class —\n"
              "confirming the paper's conjecture that its hybridization ideas\n"
              "apply to the Davidson et al. problem setting.\n");
  return 0;
}
