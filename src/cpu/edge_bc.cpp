#include "cpu/edge_bc.hpp"

#include <algorithm>

#include "graph/types.hpp"

namespace hbc::cpu {

using graph::CSRGraph;
using graph::EdgeOffset;
using graph::kInfDistance;
using graph::VertexId;

EdgeBCResult edge_betweenness(const CSRGraph& g, const std::vector<VertexId>& sources) {
  const VertexId n = g.num_vertices();
  EdgeBCResult result;
  result.edge_bc.assign(g.num_directed_edges(), 0.0);
  result.vertex_bc.assign(n, 0.0);

  std::vector<std::uint32_t> d(n);
  std::vector<double> sigma(n);
  std::vector<double> delta(n);
  std::vector<VertexId> order;
  order.reserve(n);

  auto run_source = [&](VertexId s) {
    std::fill(d.begin(), d.end(), kInfDistance);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();

    d[s] = 0;
    sigma[s] = 1.0;
    order.push_back(s);
    std::size_t head = 0;
    while (head < order.size()) {
      const VertexId v = order[head++];
      for (VertexId w : g.neighbors(v)) {
        if (d[w] == kInfDistance) {
          d[w] = d[v] + 1;
          order.push_back(w);
        }
        if (d[w] == d[v] + 1) sigma[w] += sigma[v];
      }
    }

    const auto offsets = g.row_offsets();
    const auto cols = g.col_indices();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const VertexId w = *it;
      double dsw = 0.0;
      for (EdgeOffset e = offsets[w]; e < offsets[w + 1]; ++e) {
        const VertexId v = cols[e];
        if (d[v] == d[w] + 1) {
          const double contribution = (sigma[w] / sigma[v]) * (1.0 + delta[v]);
          dsw += contribution;
          // Edge (w -> v) carries this much s-dependency.
          result.edge_bc[e] += contribution;
        }
      }
      delta[w] = dsw;
      if (w != s) result.vertex_bc[w] += dsw;
    }
  };

  if (sources.empty()) {
    for (VertexId s = 0; s < n; ++s) run_source(s);
  } else {
    for (VertexId s : sources) {
      if (s < n) run_source(s);
    }
  }

  // Undirected graphs: the score of {u,v} accumulated on slot (u->v) for
  // sources on u's side and on (v->u) for the other side; mirror the sum
  // so both slots report the full undirected edge score.
  if (g.undirected()) {
    const auto offsets = g.row_offsets();
    const auto cols = g.col_indices();
    std::vector<double> mirrored = result.edge_bc;
    for (VertexId u = 0; u < n; ++u) {
      for (EdgeOffset e = offsets[u]; e < offsets[u + 1]; ++e) {
        const VertexId v = cols[e];
        const EdgeOffset back = find_edge_slot(g, v, u);
        if (back < g.num_directed_edges()) {
          mirrored[e] = result.edge_bc[e] + result.edge_bc[back];
        }
      }
    }
    result.edge_bc = std::move(mirrored);
  }
  return result;
}

EdgeOffset find_edge_slot(const CSRGraph& g, VertexId u, VertexId v) {
  const auto offsets = g.row_offsets();
  const auto cols = g.col_indices();
  const auto begin = cols.begin() + static_cast<std::ptrdiff_t>(offsets[u]);
  const auto end = cols.begin() + static_cast<std::ptrdiff_t>(offsets[u + 1]);
  // Builder sorts adjacency lists; fall back to linear scan otherwise.
  auto it = std::lower_bound(begin, end, v);
  if (it != end && *it == v) {
    return static_cast<EdgeOffset>(it - cols.begin());
  }
  it = std::find(begin, end, v);
  if (it != end) return static_cast<EdgeOffset>(it - cols.begin());
  return g.num_directed_edges();
}

}  // namespace hbc::cpu
