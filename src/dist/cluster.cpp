#include "dist/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dist/comm.hpp"

namespace hbc::dist {

using graph::VertexId;

double InterconnectModel::reduce_seconds(std::uint64_t bytes, std::uint32_t nodes) const
    noexcept {
  if (nodes <= 1) return 0.0;
  const double steps = std::ceil(std::log2(static_cast<double>(nodes)));
  return steps * (latency_seconds +
                  static_cast<double>(bytes) / bandwidth_bytes_per_s);
}

double InterconnectModel::node_accumulate_seconds(std::uint64_t bytes,
                                                  std::uint32_t gpus) const noexcept {
  if (gpus <= 1) return 0.0;
  return static_cast<double>(gpus) *
         (static_cast<double>(bytes) / pcie_bandwidth_bytes_per_s);
}

namespace {

struct GpuOutcome {
  std::vector<double> bc;
  double seconds = 0.0;
  gpusim::Counters counters;
  std::uint64_t roots = 0;
};

GpuOutcome run_one_gpu(const graph::CSRGraph& g, const ClusterConfig& config,
                       std::vector<VertexId> roots) {
  kernels::RunConfig rc;
  rc.roots = std::move(roots);
  rc.device = config.device;
  rc.hybrid = config.hybrid;
  rc.sampling = config.sampling;

  kernels::RunResult r = kernels::run_strategy(config.strategy, g, rc);
  GpuOutcome out;
  out.bc = std::move(r.bc);
  out.seconds = r.metrics.sim_seconds;
  out.counters = r.metrics.counters;
  out.roots = r.metrics.counters.roots_processed;
  return out;
}

}  // namespace

ClusterResult run_cluster_bc(const graph::CSRGraph& g, const ClusterConfig& config,
                             const std::vector<VertexId>& roots_in) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> roots = roots_in;
  if (roots.empty()) {
    roots.resize(n);
    std::iota(roots.begin(), roots.end(), VertexId{0});
  }

  const std::uint32_t total_gpus = config.nodes * config.gpus_per_node;
  ClusterResult result;
  result.total_gpus = total_gpus;
  result.bc.assign(n, 0.0);
  result.per_gpu_seconds.assign(total_gpus, 0.0);

  // Static partition of roots over GPUs — "we extend the algorithm by
  // distributing a subset of roots to each GPU".
  auto gpu_roots = [&](std::uint32_t gpu) {
    std::vector<VertexId> mine;
    if (config.distribution == RootDistribution::RoundRobin) {
      for (std::size_t i = gpu; i < roots.size(); i += total_gpus) {
        mine.push_back(roots[i]);
      }
    } else {
      const std::size_t per = roots.size() / total_gpus;
      const std::size_t extra = roots.size() % total_gpus;
      const std::size_t begin = gpu * per + std::min<std::size_t>(gpu, extra);
      const std::size_t len = per + (gpu < extra ? 1 : 0);
      mine.assign(roots.begin() + static_cast<std::ptrdiff_t>(begin),
                  roots.begin() + static_cast<std::ptrdiff_t>(begin + len));
    }
    return mine;
  };

  const std::uint64_t bc_bytes = static_cast<std::uint64_t>(n) * sizeof(double);
  std::vector<double> node_seconds(config.nodes, 0.0);

  auto node_body = [&](std::uint32_t node, std::vector<double>& node_bc) {
    double node_compute = 0.0;
    for (std::uint32_t local = 0; local < config.gpus_per_node; ++local) {
      const std::uint32_t gpu = node * config.gpus_per_node + local;
      GpuOutcome out = run_one_gpu(g, config, gpu_roots(gpu));
      for (VertexId v = 0; v < n; ++v) node_bc[v] += out.bc[v];
      result.per_gpu_seconds[gpu] = out.seconds;
      node_compute = std::max(node_compute, out.seconds);
      {
        // Counters and roots are aggregated; guarded by the caller when
        // threaded (see below).
        result.counters += out.counters;
        result.roots_processed += out.roots;
      }
    }
    node_seconds[node] =
        node_compute +
        config.interconnect.node_accumulate_seconds(bc_bytes, config.gpus_per_node);
  };

  if (config.use_threads && config.nodes > 1) {
    // SPMD over node ranks through the message-passing substrate; the
    // final combine is a genuine reduce.
    World world(static_cast<int>(config.nodes));
    std::mutex agg_mutex;
    std::vector<double> reduced(n, 0.0);
    // Counter aggregation inside node_body is not thread-safe; serialize
    // the whole node body per rank (compute results are deterministic
    // regardless, and the modelled time uses per-node maxima).
    world.run([&](Communicator& comm) {
      std::vector<double> node_bc(n, 0.0);
      {
        std::lock_guard<std::mutex> lock(agg_mutex);
        node_body(static_cast<std::uint32_t>(comm.rank()), node_bc);
      }
      comm.reduce_sum(node_bc, reduced, /*root=*/0);
    });
    result.bc = std::move(reduced);
  } else {
    for (std::uint32_t node = 0; node < config.nodes; ++node) {
      std::vector<double> node_bc(n, 0.0);
      node_body(node, node_bc);
      for (VertexId v = 0; v < n; ++v) result.bc[v] += node_bc[v];
    }
  }

  result.compute_seconds =
      result.per_gpu_seconds.empty()
          ? 0.0
          : *std::max_element(result.per_gpu_seconds.begin(), result.per_gpu_seconds.end());
  result.reduce_seconds = config.interconnect.reduce_seconds(bc_bytes, config.nodes);
  const double slowest_node =
      node_seconds.empty() ? 0.0
                           : *std::max_element(node_seconds.begin(), node_seconds.end());
  result.sim_seconds = slowest_node + result.reduce_seconds;
  return result;
}

ClusterTimeBreakdown model_cluster_time(std::span<const std::uint64_t> root_cycles,
                                        const ClusterConfig& config,
                                        graph::VertexId num_vertices) {
  ClusterTimeBreakdown out;
  const std::uint32_t total_gpus = config.nodes * config.gpus_per_node;
  if (total_gpus == 0 || root_cycles.empty()) return out;

  const std::uint64_t bc_bytes = static_cast<std::uint64_t>(num_vertices) * sizeof(double);
  const std::uint32_t blocks = std::max<std::uint32_t>(1, config.device.num_sms);

  std::vector<double> node_seconds(config.nodes, 0.0);
  const std::size_t per = root_cycles.size() / total_gpus;
  const std::size_t extra = root_cycles.size() % total_gpus;
  std::size_t cursor = 0;
  for (std::uint32_t node = 0; node < config.nodes; ++node) {
    double node_compute = 0.0;
    for (std::uint32_t local = 0; local < config.gpus_per_node; ++local) {
      const std::uint32_t gpu = node * config.gpus_per_node + local;
      // Round-robin the GPU's roots over its SM blocks; GPU time is the
      // slowest block (mirrors Device::elapsed_cycles()).
      std::vector<std::uint64_t> block_cycles(blocks, 0);
      if (config.distribution == RootDistribution::RoundRobin) {
        std::size_t slot = 0;
        for (std::size_t i = gpu; i < root_cycles.size(); i += total_gpus, ++slot) {
          block_cycles[slot % blocks] += root_cycles[i];
        }
      } else {
        const std::size_t len = per + (gpu < extra ? 1 : 0);
        for (std::size_t i = 0; i < len; ++i) {
          block_cycles[i % blocks] += root_cycles[cursor + i];
        }
        cursor += len;
      }
      const std::uint64_t gpu_cycles =
          *std::max_element(block_cycles.begin(), block_cycles.end());
      node_compute = std::max(
          node_compute, config.device.seconds_from_cycles(static_cast<double>(gpu_cycles)));
    }
    node_seconds[node] =
        node_compute +
        config.interconnect.node_accumulate_seconds(bc_bytes, config.gpus_per_node);
    out.compute_seconds = std::max(out.compute_seconds, node_compute);
  }
  out.reduce_seconds = config.interconnect.reduce_seconds(bc_bytes, config.nodes);
  out.sim_seconds =
      *std::max_element(node_seconds.begin(), node_seconds.end()) + out.reduce_seconds;
  return out;
}

}  // namespace hbc::dist
