#pragma once

// Storage-generic core of the Brandes stages (the tentpole of the
// storage-policy refactor): the traversal is written once against a
// minimal graph concept —
//
//   VertexId num_vertices() const;
//   <forward range of VertexId> neighbors(VertexId v) const;
//
// — and instantiated over both the span-backed CSRGraph facade and
// storage::CompressedStorage's streaming per-vertex decode view, so the
// compressed backing never materializes the adjacency on the CPU path.
// Neighbor iteration order is identical across instantiations, which
// keeps the floating-point accumulation order — and therefore the BC
// scores — bitwise-identical per backing.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "cpu/brandes.hpp"
#include "graph/types.hpp"

namespace hbc::cpu::detail {

template <class G>
void brandes_single_source_impl(const G& g, graph::VertexId s, std::span<double> bc,
                                BrandesResult* stats) {
  using graph::kInfDistance;
  using graph::VertexId;
  const VertexId n = g.num_vertices();

  // Per-source working set; allocation cost is irrelevant for the oracle
  // (kernels manage reuse explicitly — see kernels/bc_state.hpp).
  std::vector<std::uint32_t> d(n, kInfDistance);
  std::vector<double> sigma(n, 0.0);
  std::vector<double> delta(n, 0.0);
  std::vector<VertexId> order;  // BFS visit order (the stack S)
  order.reserve(n);

  d[s] = 0;
  sigma[s] = 1.0;
  order.push_back(s);

  // Forward: BFS with path counting.
  std::size_t head = 0;
  std::uint64_t traversed = 0;
  while (head < order.size()) {
    const VertexId v = order[head++];
    const std::uint32_t dv = d[v];
    for (const VertexId w : g.neighbors(v)) {
      ++traversed;
      if (d[w] == kInfDistance) {
        d[w] = dv + 1;
        order.push_back(w);
      }
      if (d[w] == dv + 1) {
        sigma[w] += sigma[v];
      }
    }
  }

  // Backward: successor-form dependency accumulation in reverse BFS order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const VertexId w = *it;
    const std::uint32_t dw = d[w];
    double dsw = 0.0;
    for (const VertexId v : g.neighbors(w)) {
      if (d[v] == dw + 1) {
        dsw += (sigma[w] / sigma[v]) * (1.0 + delta[v]);
      }
    }
    delta[w] = dsw;
    if (w != s) bc[w] += dsw;
  }

  if (stats != nullptr) {
    stats->edges_traversed += traversed;
    const std::uint32_t depth = order.empty() ? 0 : d[order.back()];
    stats->max_depth_seen = std::max(stats->max_depth_seen, depth);
  }
}

template <class G>
std::vector<double> single_source_dependencies_impl(const G& g, graph::VertexId s) {
  using graph::kInfDistance;
  using graph::VertexId;
  const VertexId n = g.num_vertices();
  std::vector<std::uint32_t> d(n, kInfDistance);
  std::vector<double> sigma(n, 0.0);
  std::vector<double> delta(n, 0.0);
  std::vector<VertexId> order;
  order.reserve(n);

  d[s] = 0;
  sigma[s] = 1.0;
  order.push_back(s);
  std::size_t head = 0;
  while (head < order.size()) {
    const VertexId v = order[head++];
    for (const VertexId w : g.neighbors(v)) {
      if (d[w] == kInfDistance) {
        d[w] = d[v] + 1;
        order.push_back(w);
      }
      if (d[w] == d[v] + 1) sigma[w] += sigma[v];
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const VertexId w = *it;
    double dsw = 0.0;
    for (const VertexId v : g.neighbors(w)) {
      if (d[v] == d[w] + 1) dsw += (sigma[w] / sigma[v]) * (1.0 + delta[v]);
    }
    delta[w] = dsw;
  }
  return delta;
}

}  // namespace hbc::cpu::detail
