# Empty dependencies file for bench_table3_mteps.
# This may be replaced when dependencies are built.
