#include "graph/transforms.hpp"

#include <algorithm>
#include <numeric>

#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/types.hpp"

namespace hbc::graph {

std::vector<double> RelabeledGraph::project_back(std::vector<double> scores,
                                                 VertexId original_n) const {
  std::vector<double> out(original_n, 0.0);
  const std::size_t limit = std::min(scores.size(), new_to_old.size());
  for (std::size_t new_id = 0; new_id < limit; ++new_id) {
    if (new_to_old[new_id] < original_n) {
      out[new_to_old[new_id]] = scores[new_id];
    }
  }
  return out;
}

namespace {

/// Build the relabeled graph given a full new->old ordering (a
/// permutation or a subset, in new-id order).
RelabeledGraph rebuild(const CSRGraph& g, std::vector<VertexId> new_to_old) {
  std::vector<VertexId> old_to_new(g.num_vertices(), kInvalidVertex);
  for (std::size_t new_id = 0; new_id < new_to_old.size(); ++new_id) {
    old_to_new[new_to_old[new_id]] = static_cast<VertexId>(new_id);
  }

  GraphBuilder builder(static_cast<VertexId>(new_to_old.size()),
                       BuildOptions{.symmetrize = g.undirected()});
  for (std::size_t new_id = 0; new_id < new_to_old.size(); ++new_id) {
    const VertexId old_u = new_to_old[new_id];
    for (VertexId old_v : g.neighbors(old_u)) {
      const VertexId new_v = old_to_new[old_v];
      if (new_v == kInvalidVertex) continue;  // endpoint dropped
      // Each undirected edge appears in both adjacencies; add it once.
      if (!g.undirected() || new_id <= new_v) {
        builder.add_edge(static_cast<VertexId>(new_id), new_v);
      }
    }
  }
  return {builder.build(), std::move(new_to_old)};
}

}  // namespace

RelabeledGraph induced_subgraph(const CSRGraph& g, const std::vector<VertexId>& keep) {
  std::vector<bool> seen(g.num_vertices(), false);
  std::vector<VertexId> new_to_old;
  new_to_old.reserve(keep.size());
  for (VertexId v : keep) {
    if (v < g.num_vertices() && !seen[v]) {
      seen[v] = true;
      new_to_old.push_back(v);
    }
  }
  return rebuild(g, std::move(new_to_old));
}

RelabeledGraph largest_component(const CSRGraph& g) {
  const ComponentsResult cc = connected_components(g);
  VertexId best = 0;
  for (VertexId c = 0; c < cc.num_components; ++c) {
    if (cc.sizes[c] > cc.sizes[best]) best = c;
  }
  std::vector<VertexId> keep;
  keep.reserve(cc.largest_size);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (cc.component[v] == best) keep.push_back(v);
  }
  return rebuild(g, std::move(keep));
}

RelabeledGraph bfs_relabel(const CSRGraph& g, VertexId source) {
  if (g.num_vertices() == 0) return {CSRGraph({0}, {}, g.undirected()), {}};
  const BFSResult r = bfs(g, std::min<VertexId>(source, g.num_vertices() - 1));

  // Reached vertices in BFS order first, then the rest in old order.
  std::vector<VertexId> new_to_old;
  new_to_old.reserve(g.num_vertices());
  std::vector<std::pair<std::uint32_t, VertexId>> reached;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (r.distance[v] != kInfDistance) reached.emplace_back(r.distance[v], v);
  }
  std::stable_sort(reached.begin(), reached.end());
  for (const auto& [depth, v] : reached) new_to_old.push_back(v);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (r.distance[v] == kInfDistance) new_to_old.push_back(v);
  }
  return rebuild(g, std::move(new_to_old));
}

RelabeledGraph degree_sort_relabel(const CSRGraph& g) {
  std::vector<VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return g.degree(a) > g.degree(b);
  });
  return rebuild(g, std::move(order));
}

}  // namespace hbc::graph
