#include "kernels/block_driver.hpp"
#include "kernels/kernels.hpp"

namespace hbc::kernels {

using graph::CSRGraph;
using graph::EdgeOffset;
using graph::VertexId;

// Direction-optimizing BC (extension; Beamer et al. appear in the paper's
// related work, §VI). Levels run top-down (the work-efficient queue
// expansion) until the classic Beamer heuristic fires:
//
//   switch to bottom-up when   edge_frontier > unexplored_edges / alpha
//   switch back to top-down when vertex_frontier < n / beta
//
// with the standard alpha = 14, beta = 24. Bottom-up levels scan every
// unvisited vertex's full adjacency (path counting forbids the early-exit
// that plain BFS bottom-up enjoys) but eliminate atomics and frontier
// queue pressure — a win exactly on the huge middle levels of small-world
// and kron graphs. The dependency stage is unchanged (Algorithm 3).
RunResult run_direction_optimized(const CSRGraph& g, const RunConfig& config) {
  DriverLayout layout;
  layout.label = "direction-optimized";
  layout.per_block.push_back(
      {BCWorkspace::work_efficient_bytes(g.num_vertices()), "diropt.block_locals"});
  BlockDriver driver(g, config, layout);

  const EdgeOffset m = g.num_directed_edges();
  const std::uint64_t n = g.num_vertices();
  constexpr std::uint64_t kAlpha = 14;  // Beamer's tuned constants
  constexpr std::uint64_t kBeta = 24;

  driver.run([&](BlockDriver::RootTask& task) {
    BCWorkspace& ws = task.ws;
    gpusim::BlockContext& ctx = task.ctx;
    ws.init_root(task.root, ctx);

    Mode mode = Mode::WorkEfficient;  // top-down
    std::uint64_t explored_edges = 0;
    {
      SimSpan stage(task.trace, ctx, "shortest-path", trace::kPhase);
      for (;;) {
        const std::uint64_t before = ctx.cycles();
        const BCWorkspace::LevelStats level =
            mode == Mode::BottomUp ? ws.bu_forward_level(ctx, ws.current_depth())
                                   : ws.we_forward_level(ctx);
        if (mode == Mode::BottomUp) {
          ++task.ep_levels;  // reported as "non-queue" levels
        } else {
          ++task.we_levels;
        }
        if (task.stats) {
          task.stats->iterations.push_back({ws.current_depth(), level.vertex_frontier,
                                            level.edge_frontier, ctx.cycles() - before,
                                            mode});
        }
        trace_level(task.trace, ctx, ws.current_depth(), level.vertex_frontier,
                    level.edge_frontier, mode, ctx.cycles() - before);
        explored_edges += level.edge_frontier;

        // Beamer switch for the NEXT level. The heuristic needs the next
        // level's edge count; a real kernel folds this degree sum into
        // queue generation — charge one streaming op per element.
        const std::uint64_t next_frontier = ws.q_next_len();
        std::uint64_t next_edges = 0;
        for (const VertexId w : ws.next_queue()) next_edges += g.degree(w);
        ctx.charge_uniform_round(next_frontier, ctx.cost().scan_seq);
        const std::uint64_t unexplored = m > explored_edges ? m - explored_edges : 0;
        // Bottom-up requires BOTH a heavy edge frontier relative to the
        // unexplored edges AND a large vertex frontier; otherwise the tail
        // of a high-diameter search (tiny frontier, little left unexplored)
        // would flap between directions every level.
        Mode next_mode = mode;
        if (mode == Mode::WorkEfficient && next_edges > unexplored / kAlpha &&
            next_frontier >= n / kBeta) {
          next_mode = Mode::BottomUp;
        } else if (mode == Mode::BottomUp && next_frontier < n / kBeta) {
          next_mode = Mode::WorkEfficient;
        }
        if (next_mode != mode && task.trace &&
            task.trace->wants(trace::kDecision)) {
          task.trace->instant("direction-switch", trace::kDecision, ctx.sim_ns(),
                              {{"from", to_string(mode)},
                               {"to", to_string(next_mode)},
                               {"next_edges", next_edges},
                               {"unexplored", unexplored},
                               {"next_frontier", next_frontier}});
        }
        mode = next_mode;

        if (ws.q_next_len() == 0) break;
        ws.finish_level(ctx);
      }
    }
    const std::uint32_t max_depth = ws.max_depth();
    if (task.stats) task.stats->max_depth = max_depth;

    {
      SimSpan stage(task.trace, ctx, "dependency", trace::kPhase);
      for (std::uint32_t dep = max_depth; dep-- > 1;) {
        ws.we_backward_level(ctx, dep);
      }
    }

    ws.accumulate_bc(task.bc, task.root, /*use_queue=*/true, ctx);
  });

  return driver.finish();
}

}  // namespace hbc::kernels
