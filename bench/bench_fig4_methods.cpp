// Figure 4 reproduction: speedup of the work-efficient, hybrid, and
// sampling methods over the edge-parallel baseline (Jia et al.) on the
// eight-graph benchmark suite.
//
// Paper findings this bench must reproduce:
//   * roads/meshes (af_shell, del20, luxem): all three methods beat
//     edge-parallel by ~10x, pure work-efficient slightly ahead of
//     hybrid/sampling (the "cost of generality");
//   * scale-free/small-world graphs: work-efficient alone is somewhat
//     slower than edge-parallel; hybrid and sampling match or beat it.

#include <cstdio>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "kernels/kernels.hpp"
#include "util/stats.hpp"

int main() {
  using namespace hbc;

  const std::uint32_t scale_override = bench::env_u32("HBC_BENCH_SCALE", 0);
  const std::uint32_t roots_override = bench::env_u32("HBC_BENCH_ROOTS", 0);

  bench::print_header(
      "Figure 4 — speedup over edge-parallel (Jia et al.)",
      "GTX Titan model; simulated seconds; identical root sets per graph");
  std::printf("%-20s %12s | %9s %9s %9s\n", "Graph", "edge-par(s)", "work-eff",
              "hybrid", "sampling");
  bench::print_rule();

  std::vector<double> we_speedups, hy_speedups, sa_speedups;
  for (const auto& family : graph::gen::table3_family()) {
    const std::uint32_t scale = scale_override ? scale_override : family.default_scale;
    const std::uint32_t num_roots = roots_override ? roots_override : family.default_roots;
    const graph::CSRGraph g = family.make(scale, /*seed=*/1);

    kernels::RunConfig config;
    config.device = gpusim::gtx_titan();
    config.roots = bench::first_roots(g, num_roots);
    // Scale the probe count with the root budget so phase 2 exists.
    config.sampling.n_samps = std::max<std::uint32_t>(2, num_roots / 16);

    const double ep = kernels::run_edge_parallel(g, config).metrics.sim_seconds;
    const double we = kernels::run_work_efficient(g, config).metrics.sim_seconds;
    const double hy = kernels::run_hybrid(g, config).metrics.sim_seconds;
    const double sa = kernels::run_sampling(g, config).metrics.sim_seconds;

    std::printf("%-20s %12.4f | %8.2fx %8.2fx %8.2fx\n", family.name.c_str(), ep,
                ep / we, ep / hy, ep / sa);
    we_speedups.push_back(ep / we);
    hy_speedups.push_back(ep / hy);
    sa_speedups.push_back(ep / sa);
  }

  bench::print_rule();
  std::printf("%-20s %12s | %8.2fx %8.2fx %8.2fx   (geometric mean)\n", "geomean", "",
              util::geometric_mean(we_speedups), util::geometric_mean(hy_speedups),
              util::geometric_mean(sa_speedups));
  std::printf("\npaper: ~10x on af_shell/del20/luxem for all three methods;\n"
              "work-efficient < 1x on scale-free/small-world where hybrid and\n"
              "sampling stay >= 1x; sampling best overall (2.71x geomean, Table III).\n");
  return 0;
}
