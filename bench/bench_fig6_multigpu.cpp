// Figure 6 + Table IV reproduction: multi-GPU strong scaling on the KIDS
// cluster model (three Tesla M2090 per node, Infiniband QDR) for
// delaunay, rgg, and kron at several scales, with node counts 1..64.
//
// The kernels run once per (graph, scale) collecting per-root simulated
// cycles; every cluster configuration is then evaluated through the same
// partition + interconnect model that dist::run_cluster_bc applies — so
// the sweep over node counts costs no kernel re-execution.
//
// Paper findings:
//   * near-linear speedup once every GPU has enough roots (Fig 6);
//   * small scales flatten out at high node counts;
//   * Table IV: 63.2-63.8x speedup at 64 nodes, with kron's GTEPS
//     inflated by isolated vertices (adjusted value reported too).

#include <cstdio>

#include "bench/common.hpp"
#include "core/teps.hpp"
#include "dist/cluster.hpp"
#include "graph/generators.hpp"
#include "kernels/kernels.hpp"

int main() {
  using namespace hbc;

  const std::uint32_t max_scale = bench::env_u32("HBC_BENCH_SCALE", 16);
  const std::uint32_t num_roots = bench::env_u32("HBC_BENCH_ROOTS", 48);
  const std::uint32_t node_counts[] = {1, 2, 4, 8, 16, 32, 64};

  bench::print_header(
      "Figure 6 / Table IV — multi-GPU scaling (3x Tesla M2090 per node)",
      "sampling strategy; per-root cycles measured once, cluster model swept");

  dist::ClusterConfig cluster;
  cluster.device = gpusim::tesla_m2090();

  for (const char* fam : {"delaunay", "rgg", "kron"}) {
    const auto family = graph::gen::family_by_name(fam);
    std::printf("\n%s:\n%7s %10s |", fam, "scale", "roots");
    for (auto nodes : node_counts) std::printf(" %7u", nodes);
    std::printf("   (speedup over 1 node)\n");

    double top_scale_gteps = 0.0, top_scale_speedup = 0.0, top_scale_gteps_adj = 0.0;
    for (std::uint32_t scale = max_scale >= 4 ? max_scale - 4 : 8; scale <= max_scale;
         scale += 2) {
      const graph::CSRGraph g = family.make(scale, /*seed=*/1);

      kernels::RunConfig config;
      config.device = cluster.device;
      config.roots = bench::first_roots(g, num_roots);
      config.collect_root_cycles = true;
      config.sampling.n_samps = std::max<std::uint32_t>(4, num_roots / 16);
      const auto run = kernels::run_sampling(g, config);

      // The paper's Figure 6 measures the FULL exact computation (all n
      // roots). Per-root cost is uniform on these graphs (§IV.C), so
      // tile the measured sample out to n roots for the cluster model.
      const auto& sample = run.metrics.per_root_cycles;
      std::vector<std::uint64_t> full_roots(g.num_vertices());
      for (std::size_t i = 0; i < full_roots.size(); ++i) {
        full_roots[i] = sample[i % sample.size()];
      }

      std::printf("%7u %10zu |", scale, full_roots.size());
      double t1 = 0.0;
      for (auto nodes : node_counts) {
        cluster.nodes = nodes;
        const auto model =
            dist::model_cluster_time(full_roots, cluster, g.num_vertices());
        if (nodes == 1) t1 = model.sim_seconds;
        const double speedup = model.sim_seconds > 0 ? t1 / model.sim_seconds : 0.0;
        std::printf(" %6.1fx", speedup);
        if (scale == max_scale && nodes == 64) {
          top_scale_gteps = core::as_gteps(
              core::teps_bc(g, full_roots.size(), model.sim_seconds));
          top_scale_gteps_adj = core::as_gteps(
              core::teps_bc_adjusted(g, full_roots.size(), model.sim_seconds));
          top_scale_speedup = speedup;
        }
      }
      std::fputc('\n', stdout);
    }

    std::printf("  Table IV row (%s, scale %u, 64 nodes): %.2f GTEPS"
                " (%.2f adjusted for isolated vertices), %.2fx over 1 node\n",
                fam, max_scale, top_scale_gteps, top_scale_gteps_adj, top_scale_speedup);
  }

  bench::print_rule();
  std::printf("paper Table IV (n=2^20): rgg 8.25 GTEPS / 63.34x; delaunay 9.37 / 63.24x;\n"
              "kron 24.13 / 63.75x (~18 GTEPS adjusted). Larger graphs scale closer to\n"
              "linear; small scales starve GPUs of roots and flatten (Fig 6).\n");
  return 0;
}
