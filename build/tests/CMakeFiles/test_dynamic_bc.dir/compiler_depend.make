# Empty compiler generated dependencies file for test_dynamic_bc.
# This may be replaced when dependencies are built.
