#pragma once

// Device global-memory accounting. Kernels declare every allocation a real
// GPU port would make (graph arrays, per-block local structures,
// predecessor lists); the ledger enforces the configured capacity and
// throws DeviceOutOfMemory exactly where the paper's baselines die — e.g.
// GPU-FAN's O(n^2) predecessor list at scale (Figure 5's dotted lines).
//
// Allocations are bookkeeping only (no backing host buffer); kernels keep
// their working data in ordinary std::vectors and register the byte counts
// here.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace hbc::gpusim {

class DeviceOutOfMemory : public std::runtime_error {
 public:
  DeviceOutOfMemory(const std::string& label, std::uint64_t requested,
                    std::uint64_t available);

  std::uint64_t requested_bytes() const noexcept { return requested_; }
  std::uint64_t available_bytes() const noexcept { return available_; }

 private:
  std::uint64_t requested_;
  std::uint64_t available_;
};

class GlobalMemory {
 public:
  explicit GlobalMemory(std::uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// Reserve `bytes` under `label`; throws DeviceOutOfMemory on overflow.
  /// Returns an allocation id for release().
  std::size_t allocate(std::uint64_t bytes, std::string label);

  /// Release a previous allocation (idempotent per id).
  void release(std::size_t id) noexcept;

  /// Drop every allocation (between independent kernel runs).
  void release_all() noexcept;

  std::uint64_t capacity() const noexcept { return capacity_; }
  std::uint64_t used() const noexcept { return used_; }
  std::uint64_t available() const noexcept { return capacity_ - used_; }
  std::uint64_t high_water_mark() const noexcept { return high_water_; }

  /// Allocation table snapshot (label, live bytes) for diagnostics.
  std::vector<std::pair<std::string, std::uint64_t>> live_allocations() const;

 private:
  struct Allocation {
    std::string label;
    std::uint64_t bytes = 0;
    bool live = false;
  };

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t high_water_ = 0;
  std::vector<Allocation> allocations_;
};

/// RAII wrapper: releases on destruction.
class ScopedAllocation {
 public:
  ScopedAllocation() = default;
  ScopedAllocation(GlobalMemory& mem, std::uint64_t bytes, std::string label)
      : mem_(&mem), id_(mem.allocate(bytes, std::move(label))) {}

  ScopedAllocation(const ScopedAllocation&) = delete;
  ScopedAllocation& operator=(const ScopedAllocation&) = delete;

  ScopedAllocation(ScopedAllocation&& other) noexcept
      : mem_(other.mem_), id_(other.id_) {
    other.mem_ = nullptr;
  }
  ScopedAllocation& operator=(ScopedAllocation&& other) noexcept {
    if (this != &other) {
      reset();
      mem_ = other.mem_;
      id_ = other.id_;
      other.mem_ = nullptr;
    }
    return *this;
  }

  ~ScopedAllocation() { reset(); }

  void reset() noexcept {
    if (mem_ != nullptr) {
      mem_->release(id_);
      mem_ = nullptr;
    }
  }

 private:
  GlobalMemory* mem_ = nullptr;
  std::size_t id_ = 0;
};

}  // namespace hbc::gpusim
