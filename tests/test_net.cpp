// hbc::net integration tests: a real coordinator and real workers over
// Unix-domain sockets (worker loops on std::thread, so one process but N
// independent BcService instances speaking the actual wire protocol).
//
// The load-bearing property is satellite (d) of the distributed design:
// a query sharded across 2..4 workers must be BITWISE identical to the
// standalone core::compute answer — including when a worker is killed
// mid-run and its root range is reassigned. Comparisons use memcmp on the
// raw double arrays: "close" is not a pass.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/bc.hpp"
#include "dyn/versioned_graph.hpp"
#include "graph/generators.hpp"
#include "net/coordinator.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "net/worker.hpp"
#include "service/service.hpp"

using namespace hbc;
namespace wire = hbc::net::wire;

namespace {

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// A socket path under /tmp: build trees routinely exceed sockaddr_un's
// 108-byte limit, the system tmpdir does not.
class SocketDir {
 public:
  SocketDir() {
    char tmpl[] = "/tmp/hbc-net-XXXXXX";
    dir_ = ::mkdtemp(tmpl);
  }
  ~SocketDir() {
    if (!dir_.empty()) {
      std::remove((dir_ + "/c.sock").c_str());
      ::rmdir(dir_.c_str());
    }
  }
  std::string sock() const { return "unix:" + dir_ + "/c.sock"; }

 private:
  std::string dir_;
};

graph::CSRGraph test_graph() {
  // Small-world at scale 8: 256 vertices, plenty of distinct BC values.
  return graph::gen::family_by_name("smallworld").make(8, 1);
}

/// Coordinator + N in-process workers, wired up and torn down safely.
class Fleet {
 public:
  explicit Fleet(std::size_t n_workers, net::CoordinatorConfig cfg = {},
                 std::vector<net::WorkerConfig> worker_cfgs = {}) {
    cfg.listen = net::Endpoint::parse(dir_.sock());
    coordinator = std::make_unique<net::Coordinator>(std::move(cfg));
    for (std::size_t i = 0; i < n_workers; ++i) {
      net::WorkerConfig wc =
          i < worker_cfgs.size() ? std::move(worker_cfgs[i]) : net::WorkerConfig{};
      wc.connect = net::Endpoint::parse(dir_.sock());
      if (wc.name == "worker") wc.name = "worker-" + std::to_string(i);
      if (wc.service.workers == 0) wc.service.workers = 2;
      workers.push_back(std::make_unique<net::Worker>(std::move(wc)));
    }
    for (auto& w : workers) {
      threads.emplace_back([worker = w.get()] { worker->run(); });
    }
    coordinator->wait_for_workers(n_workers, std::chrono::seconds(20));
  }

  ~Fleet() {
    for (auto& w : workers) w->request_stop();
    if (coordinator) coordinator->drain();
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
  }

  SocketDir dir_;
  std::unique_ptr<net::Coordinator> coordinator;
  std::vector<std::unique_ptr<net::Worker>> workers;
  std::vector<std::thread> threads;
};

net::WorkerConfig in_memory_worker(std::shared_ptr<const graph::CSRGraph> g) {
  net::WorkerConfig wc;
  wc.graph_loader = [g](const std::string&) { return *g; };
  return wc;
}

std::vector<net::WorkerConfig> in_memory_workers(
    std::size_t n, std::shared_ptr<const graph::CSRGraph> g) {
  std::vector<net::WorkerConfig> v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(in_memory_worker(g));
  return v;
}

}  // namespace

// --- endpoint parsing and setup errors (satellite c's library half) ------

TEST(NetEndpoint, ParsesUnixAndTcp) {
  const net::Endpoint u = net::Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(u.kind, net::Endpoint::Kind::Unix);
  EXPECT_EQ(u.path, "/tmp/x.sock");
  EXPECT_EQ(u.str(), "unix:/tmp/x.sock");

  const net::Endpoint t = net::Endpoint::parse("tcp:127.0.0.1:9090");
  EXPECT_EQ(t.kind, net::Endpoint::Kind::Tcp);
  EXPECT_EQ(t.host, "127.0.0.1");
  EXPECT_EQ(t.port, 9090);
}

TEST(NetEndpoint, RejectsMalformedSpecs) {
  EXPECT_THROW(net::Endpoint::parse("unix:"), net::NetError);
  EXPECT_THROW(net::Endpoint::parse("tcp:no-port"), net::NetError);
  EXPECT_THROW(net::Endpoint::parse("tcp:host:not-a-number"), net::NetError);
  EXPECT_THROW(net::Endpoint::parse("tcp:host:70000"), net::NetError);
  EXPECT_THROW(net::Endpoint::parse("http://nope"), net::NetError);
  EXPECT_THROW(net::Endpoint::parse("unix:" + std::string(200, 'a')), net::NetError);
}

TEST(NetEndpoint, BindFailureThrowsWithContext) {
  net::CoordinatorConfig cfg;
  cfg.listen = net::Endpoint::parse("unix:/nonexistent-dir-hbc/x.sock");
  try {
    net::Coordinator c(std::move(cfg));
    FAIL() << "bind into a nonexistent directory must throw";
  } catch (const net::NetError& e) {
    EXPECT_NE(std::string(e.what()).find("bind"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("/nonexistent-dir-hbc/x.sock"),
              std::string::npos);
  }
}

TEST(NetEndpoint, ConnectFailureThrowsAfterBackoff) {
  net::WorkerConfig wc;
  wc.connect = net::Endpoint::parse("unix:/tmp/hbc-no-such-coordinator.sock");
  wc.max_connect_attempts = 2;
  wc.connect_backoff = std::chrono::milliseconds(1);
  net::Worker w(std::move(wc));
  EXPECT_THROW(w.run(), net::NetError);
}

// --- distributed determinism (satellite d) --------------------------------

TEST(NetDistributed, ShardedQueryBitwiseEqualsStandaloneAtEveryWorkerCount) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  for (const core::Strategy strategy :
       {core::Strategy::WorkEfficient, core::Strategy::VertexParallel,
        core::Strategy::Hybrid}) {
    core::Options opt;
    opt.strategy = strategy;
    const core::BCResult standalone = core::compute(*g, opt);

    for (const std::size_t n_workers : {2u, 3u, 4u}) {
      Fleet fleet(n_workers, {}, in_memory_workers(n_workers, g));
      ASSERT_EQ(fleet.coordinator->worker_count(), n_workers);
      ASSERT_EQ(fleet.coordinator->load_graph("g0", g, ""), n_workers);

      service::Request req;
      req.graph_id = "g0";
      req.options = opt;
      const service::Response resp = fleet.coordinator->query(req);
      ASSERT_TRUE(resp.ok()) << resp.error;
      ASSERT_NE(resp.result, nullptr);
      EXPECT_TRUE(bitwise_equal(resp.result->scores, standalone.scores))
          << core::to_string(strategy) << " @ " << n_workers << " workers";
      EXPECT_EQ(resp.result->roots_processed, standalone.roots_processed);
      EXPECT_FALSE(resp.degraded);
      // Shards actually crossed the wire — this was not a local fallback.
      EXPECT_GT(fleet.coordinator->stats().shards_completed, 0u);
      EXPECT_EQ(fleet.coordinator->stats().local_fallbacks, 0u);
    }
  }
}

TEST(NetDistributed, FinalizationFlagsAndSampledRootsStayBitwise) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  core::Options opt;
  opt.strategy = core::Strategy::WorkEfficient;
  opt.halve_undirected = true;
  opt.normalize = true;
  opt.sample_roots = 64;  // approximate path: scale-up then halve+normalize
  opt.seed = 7;
  const core::BCResult standalone = core::compute(*g, opt);

  Fleet fleet(3, {}, in_memory_workers(3, g));
  ASSERT_EQ(fleet.coordinator->load_graph("g0", g, ""), 3u);
  service::Request req;
  req.graph_id = "g0";
  req.options = opt;
  const service::Response resp = fleet.coordinator->query(req);
  ASSERT_TRUE(resp.ok()) << resp.error;
  EXPECT_TRUE(bitwise_equal(resp.result->scores, standalone.scores));
  EXPECT_TRUE(resp.result->approximate);
}

TEST(NetDistributed, ExplicitRootSubsetStaysBitwise) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  core::Options opt;
  opt.strategy = core::Strategy::WorkEfficient;
  opt.roots = {0, 3, 9, 27, 81, 243};
  const core::BCResult standalone = core::compute(*g, opt);

  Fleet fleet(2, {}, in_memory_workers(2, g));
  ASSERT_EQ(fleet.coordinator->load_graph("g0", g, ""), 2u);
  service::Request req;
  req.graph_id = "g0";
  req.options = opt;
  const service::Response resp = fleet.coordinator->query(req);
  ASSERT_TRUE(resp.ok()) << resp.error;
  EXPECT_TRUE(bitwise_equal(resp.result->scores, standalone.scores));
  EXPECT_TRUE(resp.result->approximate);  // strict subset of roots
}

TEST(NetDistributed, WorkerKilledMidRunStillBitwiseIdentical) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  core::Options opt;
  opt.strategy = core::Strategy::WorkEfficient;
  const core::BCResult standalone = core::compute(*g, opt);

  // Worker 0 vanishes the moment its second shard arrives — before
  // replying — so the coordinator holds dispatched shards to a dead peer.
  std::vector<net::WorkerConfig> cfgs = in_memory_workers(2, g);
  cfgs[0].die_after_shards = 2;
  Fleet fleet(2, {}, std::move(cfgs));
  ASSERT_EQ(fleet.coordinator->load_graph("g0", g, ""), 2u);

  service::Request req;
  req.graph_id = "g0";
  req.options = opt;
  const service::Response resp = fleet.coordinator->query(req);
  ASSERT_TRUE(resp.ok()) << resp.error;
  EXPECT_TRUE(bitwise_equal(resp.result->scores, standalone.scores));
  EXPECT_FALSE(resp.degraded);
  EXPECT_GE(fleet.coordinator->stats().worker_deaths, 1u);
  EXPECT_GE(fleet.coordinator->stats().shard_retries, 1u);
}

TEST(NetDistributed, GpuFanSingleBlockAndWholeModeRouting) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  Fleet fleet(2, {}, in_memory_workers(2, g));
  ASSERT_EQ(fleet.coordinator->load_graph("g0", g, ""), 2u);

  // GPU-FAN forces one block, so the query is one Partial shard.
  {
    core::Options opt;
    opt.strategy = core::Strategy::GpuFan;
    const core::BCResult standalone = core::compute(*g, opt);
    service::Request req;
    req.graph_id = "g0";
    req.options = opt;
    const service::Response resp = fleet.coordinator->query(req);
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_TRUE(bitwise_equal(resp.result->scores, standalone.scores));
  }
  // CPU and sampling strategies are not block-shardable: routed Whole.
  for (const core::Strategy strategy :
       {core::Strategy::CpuSerial, core::Strategy::Sampling}) {
    core::Options opt;
    opt.strategy = strategy;
    opt.sample_roots = strategy == core::Strategy::Sampling ? 32 : 0;
    const core::BCResult standalone = core::compute(*g, opt);
    service::Request req;
    req.graph_id = "g0";
    req.options = opt;
    const service::Response resp = fleet.coordinator->query(req);
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_TRUE(bitwise_equal(resp.result->scores, standalone.scores))
        << core::to_string(strategy);
  }
  EXPECT_GE(fleet.coordinator->stats().whole_queries, 2u);
}

TEST(NetDistributed, LocalFallbackServesWithNoWorkersBitwise) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  core::Options opt;
  opt.strategy = core::Strategy::WorkEfficient;
  const core::BCResult standalone = core::compute(*g, opt);

  SocketDir dir;
  net::CoordinatorConfig cfg;
  cfg.listen = net::Endpoint::parse(dir.sock());
  net::Coordinator coordinator(std::move(cfg));
  coordinator.load_graph("g0", g, "");  // zero confirmations: nobody home

  service::Request req;
  req.graph_id = "g0";
  req.options = opt;
  const service::Response resp = coordinator.query(req);
  ASSERT_TRUE(resp.ok()) << resp.error;
  EXPECT_TRUE(bitwise_equal(resp.result->scores, standalone.scores));
  EXPECT_GT(coordinator.stats().local_fallbacks, 0u);
}

TEST(NetDistributed, NoWorkersAndNoFallbackFailsCleanly) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  SocketDir dir;
  net::CoordinatorConfig cfg;
  cfg.listen = net::Endpoint::parse(dir.sock());
  cfg.local_fallback = false;
  net::Coordinator coordinator(std::move(cfg));
  coordinator.load_graph("g0", g, "");

  service::Request req;
  req.graph_id = "g0";
  req.options.strategy = core::Strategy::WorkEfficient;
  const service::Response resp = coordinator.query(req);
  EXPECT_EQ(resp.status, service::QueryStatus::Failed);
  EXPECT_FALSE(resp.error.empty());
}

// --- service semantics over the wire -------------------------------------

TEST(NetDistributed, CacheHitOnRepeatAndGraphNotFound) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  Fleet fleet(2, {}, in_memory_workers(2, g));
  ASSERT_EQ(fleet.coordinator->load_graph("g0", g, ""), 2u);

  service::Request req;
  req.graph_id = "g0";
  req.options.strategy = core::Strategy::WorkEfficient;
  const service::Response first = fleet.coordinator->query(req);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.from_cache);
  const service::Response second = fleet.coordinator->query(req);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.from_cache);
  EXPECT_TRUE(bitwise_equal(first.result->scores, second.result->scores));
  EXPECT_EQ(fleet.coordinator->stats().cache_hits, 1u);

  service::Request missing;
  missing.graph_id = "nope";
  missing.options.strategy = core::Strategy::WorkEfficient;
  EXPECT_EQ(fleet.coordinator->query(missing).status,
            service::QueryStatus::GraphNotFound);
}

TEST(NetDistributed, BadRootsAreBadRequest) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  Fleet fleet(2, {}, in_memory_workers(2, g));
  ASSERT_EQ(fleet.coordinator->load_graph("g0", g, ""), 2u);

  service::Request req;
  req.graph_id = "g0";
  req.options.strategy = core::Strategy::WorkEfficient;
  req.options.roots = {1, 1};  // duplicate
  EXPECT_EQ(fleet.coordinator->query(req).status, service::QueryStatus::BadRequest);
  req.options.roots = {100000};  // out of range
  EXPECT_EQ(fleet.coordinator->query(req).status, service::QueryStatus::BadRequest);
}

TEST(NetDistributed, DeadlineExceededWithShardsOutstanding) {
  // Big enough that 14 shards cannot complete within 5ms.
  const auto g = std::make_shared<const graph::CSRGraph>(
      graph::gen::family_by_name("smallworld").make(10, 1));
  Fleet fleet(1, {}, in_memory_workers(1, g));
  ASSERT_EQ(fleet.coordinator->load_graph("g0", g, ""), 1u);

  service::Request req;
  req.graph_id = "g0";
  req.options.strategy = core::Strategy::WorkEfficient;
  req.timeout = std::chrono::milliseconds(5);
  const service::Response resp = fleet.coordinator->query(req);
  EXPECT_EQ(resp.status, service::QueryStatus::DeadlineExceeded);
}

TEST(NetDistributed, MutationPropagatesAndStaysBitwise) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  Fleet fleet(2, {}, in_memory_workers(2, g));
  ASSERT_EQ(fleet.coordinator->load_graph("g0", g, ""), 2u);

  core::Options opt;
  opt.strategy = core::Strategy::WorkEfficient;
  service::Request req;
  req.graph_id = "g0";
  req.options = opt;
  const service::Response before = fleet.coordinator->query(req);
  ASSERT_TRUE(before.ok());

  dyn::UpdateBatch batch;
  batch.insert(0, 100).insert(5, 200).remove(0, 1);
  const service::MutationResult mr = fleet.coordinator->mutate_graph("g0", batch);
  EXPECT_NE(mr.fingerprint_before, mr.fingerprint_after);
  EXPECT_GT(mr.applied, 0u);
  EXPECT_EQ(fleet.coordinator->graph_fingerprint("g0"), mr.fingerprint_after);

  const service::Response after = fleet.coordinator->query(req);
  ASSERT_TRUE(after.ok()) << after.error;
  EXPECT_FALSE(after.from_cache);  // old-epoch cache entries invalidated
  EXPECT_FALSE(bitwise_equal(after.result->scores, before.result->scores));

  // Reference: apply the same batch to a standalone copy and compare bits.
  dyn::VersionedGraph vg(g);
  vg.apply(batch);
  const core::BCResult standalone = core::compute(*vg.current().graph, opt);
  EXPECT_TRUE(bitwise_equal(after.result->scores, standalone.scores));
}

TEST(NetDistributed, LateJoinerCatchesUpViaUpdateReplay) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  Fleet fleet(1, {}, in_memory_workers(1, g));
  ASSERT_EQ(fleet.coordinator->load_graph("g0", g, ""), 1u);

  dyn::UpdateBatch batch;
  batch.insert(2, 50).insert(7, 99);
  fleet.coordinator->mutate_graph("g0", batch);

  // A worker that joins AFTER the mutation must replay the history and
  // land on the current fingerprint, or it would be refused.
  net::WorkerConfig wc = in_memory_worker(g);  // loads the EPOCH-0 graph
  wc.connect = net::Endpoint::parse(fleet.dir_.sock());
  wc.name = "late";
  auto late = std::make_unique<net::Worker>(std::move(wc));
  std::thread t([&] { late->run(); });
  fleet.coordinator->wait_for_workers(2, std::chrono::seconds(20));
  // Give the load/replay handshake a moment to complete, then verify the
  // late worker serves shards for the mutated graph.
  core::Options opt;
  opt.strategy = core::Strategy::WorkEfficient;
  service::Request req;
  req.graph_id = "g0";
  req.options = opt;
  const service::Response resp = fleet.coordinator->query(req);
  ASSERT_TRUE(resp.ok()) << resp.error;

  dyn::VersionedGraph vg(g);
  vg.apply(batch);
  const core::BCResult standalone = core::compute(*vg.current().graph, opt);
  EXPECT_TRUE(bitwise_equal(resp.result->scores, standalone.scores));

  late->request_stop();
  t.join();
  fleet.workers.push_back(std::move(late));  // keep alive through teardown
}

TEST(NetDistributed, FingerprintMismatchRefusesLoadAndCutsWorker) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  const auto wrong = std::make_shared<const graph::CSRGraph>(
      graph::gen::family_by_name("smallworld").make(8, 2));  // different seed
  std::vector<net::WorkerConfig> cfgs = {in_memory_worker(wrong)};
  Fleet fleet(1, {}, std::move(cfgs));
  ASSERT_EQ(fleet.coordinator->worker_count(), 1u);

  // The worker materializes a DIFFERENT graph for the same spec: zero
  // confirmations, and the disagreeing worker is disconnected.
  EXPECT_EQ(fleet.coordinator->load_graph("g0", g, "whatever"), 0u);
  EXPECT_EQ(fleet.coordinator->wait_for_workers(1, std::chrono::milliseconds(200)),
            0u);
}

TEST(NetDistributed, DrainStopsQueriesAndReleasesWorkers) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  Fleet fleet(2, {}, in_memory_workers(2, g));
  ASSERT_EQ(fleet.coordinator->load_graph("g0", g, ""), 2u);

  fleet.coordinator->drain();
  EXPECT_EQ(fleet.coordinator->worker_count(), 0u);

  service::Request req;
  req.graph_id = "g0";
  req.options.strategy = core::Strategy::WorkEfficient;
  EXPECT_EQ(fleet.coordinator->query(req).status,
            service::QueryStatus::ServiceStopped);
  // Workers exited their run() loops on Drain; joining must not hang.
  for (auto& t : fleet.threads) {
    if (t.joinable()) t.join();
  }
}

// --- slow-writer culling (fleet self-healing) -----------------------------

TEST(NetDistributed, SlowLorisWriterIsCulledByFrameDeadline) {
  SocketDir dir;
  net::CoordinatorConfig cfg;
  cfg.listen = net::Endpoint::parse(dir.sock());
  cfg.frame_deadline = std::chrono::milliseconds(30);
  net::Coordinator coordinator(std::move(cfg));

  // A client that sends half a Hello frame and then stalls forever: it
  // must be culled by the frame deadline, not allowed to pin the loop's
  // read state while contributing nothing.
  net::Socket raw = net::connect_to(net::Endpoint::parse(dir.sock()));
  ASSERT_TRUE(raw.valid());
  coordinator.run_for(std::chrono::milliseconds(10));  // let accept() land
  const std::vector<std::uint8_t> hello = wire::encode(wire::HelloMsg{}, 1);
  const std::size_t half = hello.size() / 2;
  ASSERT_GT(half, 0u);
  ASSERT_EQ(::send(raw.fd(), hello.data(), half, 0),
            static_cast<ssize_t>(half));
  coordinator.run_for(std::chrono::milliseconds(200));
  EXPECT_GE(coordinator.stats().slow_peer_drops, 1u);
  EXPECT_EQ(coordinator.worker_count(), 0u);
}

TEST(NetDistributed, FrameDeadlineLeavesHealthyWorkersAlone) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  core::Options opt;
  opt.strategy = core::Strategy::WorkEfficient;
  const core::BCResult standalone = core::compute(*g, opt);

  net::CoordinatorConfig cfg;
  cfg.frame_deadline = std::chrono::milliseconds(2000);
  Fleet fleet(2, std::move(cfg), in_memory_workers(2, g));
  ASSERT_EQ(fleet.coordinator->load_graph("g0", g, ""), 2u);
  service::Request req;
  req.graph_id = "g0";
  req.options = opt;
  const service::Response resp = fleet.coordinator->query(req);
  ASSERT_TRUE(resp.ok()) << resp.error;
  EXPECT_TRUE(bitwise_equal(resp.result->scores, standalone.scores));
  EXPECT_EQ(fleet.coordinator->stats().slow_peer_drops, 0u);
}

TEST(NetDistributed, ReplicationPlacesGraphOnSubsetAndStillAnswers) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  core::Options opt;
  opt.strategy = core::Strategy::WorkEfficient;
  const core::BCResult standalone = core::compute(*g, opt);

  net::CoordinatorConfig cfg;
  cfg.replication = 1;  // consistent-hash ring picks ONE owner
  Fleet fleet(3, std::move(cfg), in_memory_workers(3, g));
  ASSERT_EQ(fleet.coordinator->worker_count(), 3u);
  EXPECT_EQ(fleet.coordinator->load_graph("g0", g, ""), 1u);

  service::Request req;
  req.graph_id = "g0";
  req.options = opt;
  const service::Response resp = fleet.coordinator->query(req);
  ASSERT_TRUE(resp.ok()) << resp.error;
  EXPECT_TRUE(bitwise_equal(resp.result->scores, standalone.scores));
  EXPECT_EQ(fleet.coordinator->stats().local_fallbacks, 0u);
}

// --- accuracy-contract queries through the fleet --------------------------

namespace {

// 1024 vertices: four 128-root strata short of nothing — room for a
// 256 -> 512 -> 768 refinement ladder before saturation.
graph::CSRGraph big_graph() {
  return graph::gen::family_by_name("smallworld").make(10, 1);
}

service::Request budgeted_request(std::uint32_t max_roots,
                                  core::Strategy strategy =
                                      core::Strategy::WorkEfficient) {
  service::Request r;
  r.graph_id = "g0";
  r.options.strategy = strategy;
  r.budget.max_roots = max_roots;
  return r;
}

}  // namespace

// The ISSUE's headline acceptance criterion, fleet half: a cached
// 256-root estimate upgraded to 512 through a 2-worker fleet must be
// memcmp-identical to the standalone service's budgeted answers (which
// test_progressive pins to a fresh single-shot 512-root run).
TEST(NetDistributed, BudgetedUpgradeThroughFleetIsBitwiseIdenticalToStandalone) {
  const auto g = std::make_shared<const graph::CSRGraph>(big_graph());

  service::BcService svc({.workers = 2});
  svc.load_graph("g0", *g);
  const service::Response s256 = svc.query(budgeted_request(256));
  const service::Response s512 = svc.query(budgeted_request(512));  // upgrade
  ASSERT_TRUE(s256.ok() && s512.ok());

  // And a from-scratch 512 with no 256 warm-up, to close the triangle.
  service::BcService fresh_svc({.workers = 2});
  fresh_svc.load_graph("g0", *g);
  const service::Response s512_fresh = fresh_svc.query(budgeted_request(512));
  ASSERT_TRUE(s512_fresh.ok());

  Fleet fleet(2, {}, in_memory_workers(2, g));
  ASSERT_EQ(fleet.coordinator->load_graph("g0", g, ""), 2u);

  const service::Response f256 = fleet.coordinator->query(budgeted_request(256));
  ASSERT_TRUE(f256.ok()) << f256.error;
  ASSERT_TRUE(f256.estimate.has_value());
  EXPECT_EQ(f256.estimate->roots_used, 256u);
  EXPECT_TRUE(f256.result->approximate);
  EXPECT_TRUE(bitwise_equal(f256.result->scores, s256.result->scores));

  const service::Response f512 = fleet.coordinator->query(budgeted_request(512));
  ASSERT_TRUE(f512.ok()) << f512.error;
  ASSERT_TRUE(f512.estimate.has_value());
  EXPECT_EQ(f512.estimate->roots_used, 512u);
  EXPECT_LE(f512.estimate->stderr_est, f256.estimate->stderr_est);
  EXPECT_TRUE(bitwise_equal(f512.result->scores, s512.result->scores));
  EXPECT_TRUE(bitwise_equal(f512.result->scores, s512_fresh.result->scores));

  EXPECT_EQ(fleet.coordinator->stats().budgeted_queries, 2u);
  EXPECT_EQ(fleet.coordinator->stats().local_fallbacks, 0u);
}

// CPU strategies route whole: the budget rides the v2 SubmitShard frame
// to one worker, whose BcService runs the stratified controller and
// ships the estimate back in the v2 ShardResult.
TEST(NetDistributed, BudgetedWholeDelegationCarriesEstimate) {
  const auto g = std::make_shared<const graph::CSRGraph>(big_graph());

  service::BcService svc({.workers = 2});
  svc.load_graph("g0", *g);
  const service::Response standalone =
      svc.query(budgeted_request(256, core::Strategy::CpuSerial));
  ASSERT_TRUE(standalone.ok());

  Fleet fleet(2, {}, in_memory_workers(2, g));
  fleet.coordinator->load_graph("g0", g, "");
  const service::Response resp =
      fleet.coordinator->query(budgeted_request(256, core::Strategy::CpuSerial));
  ASSERT_TRUE(resp.ok()) << resp.error;
  ASSERT_TRUE(resp.estimate.has_value());
  EXPECT_EQ(resp.estimate->roots_used, 256u);
  EXPECT_GE(resp.estimate->stderr_est, 0.0);
  EXPECT_TRUE(bitwise_equal(resp.result->scores, standalone.result->scores));
  EXPECT_EQ(fleet.coordinator->stats().budgeted_queries, 1u);
  EXPECT_GE(fleet.coordinator->stats().whole_queries, 1u);
}

// allow_refinement: the coordinator answers at rung 0 and run_for()
// folds the remaining strata in the background; a later identical query
// is served the refined roots from the coordinator's ApproxCache.
TEST(NetDistributed, CoordinatorRefinementUpgradesCachedEstimate) {
  const auto g = std::make_shared<const graph::CSRGraph>(big_graph());
  Fleet fleet(2, {}, in_memory_workers(2, g));
  fleet.coordinator->load_graph("g0", g, "");

  service::Request req = budgeted_request(768);  // 6 strata; rung 0 is 2
  req.budget.allow_refinement = true;
  const service::Response first = fleet.coordinator->query(req);
  ASSERT_TRUE(first.ok()) << first.error;
  ASSERT_TRUE(first.estimate.has_value());
  EXPECT_EQ(first.estimate->roots_used, 256u);
  EXPECT_TRUE(first.estimate->refining);

  for (int i = 0; i < 200 && fleet.coordinator->stats().refine_strata < 4; ++i) {
    fleet.coordinator->run_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(fleet.coordinator->stats().refine_strata, 4u);

  const service::Response again = fleet.coordinator->query(req);
  ASSERT_TRUE(again.ok()) << again.error;
  ASSERT_TRUE(again.estimate.has_value());
  EXPECT_EQ(again.estimate->roots_used, 768u);
  EXPECT_FALSE(again.estimate->refining);
  EXPECT_TRUE(again.from_cache);

  // The refined answer is the same bits a synchronous 768-root budgeted
  // query would have produced.
  service::BcService svc({.workers = 2});
  svc.load_graph("g0", *g);
  const service::Response s768 = svc.query(budgeted_request(768));
  ASSERT_TRUE(s768.ok());
  EXPECT_TRUE(bitwise_equal(again.result->scores, s768.result->scores));
}

// A mutation between the rung-0 answer and the background fold must
// invalidate the cached estimate and drop the queued refinement — stale
// pre-mutation strata are never folded into a post-mutation answer.
TEST(NetDistributed, MutationPurgesPendingRefinement) {
  const auto g = std::make_shared<const graph::CSRGraph>(big_graph());
  Fleet fleet(2, {}, in_memory_workers(2, g));
  fleet.coordinator->load_graph("g0", g, "");

  service::Request req = budgeted_request(768);
  req.budget.allow_refinement = true;
  const service::Response first = fleet.coordinator->query(req);
  ASSERT_TRUE(first.ok()) << first.error;

  dyn::UpdateBatch batch;
  batch.insert(0, 511);
  const service::MutationResult mr = fleet.coordinator->mutate_graph("g0", batch);
  EXPECT_GE(mr.approx_invalidated, 1u);

  for (int i = 0; i < 100 && fleet.coordinator->stats().refine_dropped == 0; ++i) {
    fleet.coordinator->run_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(fleet.coordinator->stats().refine_dropped, 1u);
  EXPECT_EQ(fleet.coordinator->stats().refine_strata, 0u);

  // The re-query starts a fresh rung 0 on the new epoch, never serving
  // pre-mutation bits.
  const service::Response again = fleet.coordinator->query(req);
  ASSERT_TRUE(again.ok()) << again.error;
  ASSERT_TRUE(again.estimate.has_value());
  EXPECT_EQ(again.estimate->roots_used, 256u);
  EXPECT_FALSE(again.from_cache);
}
