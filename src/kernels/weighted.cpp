#include "kernels/weighted.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "kernels/detail.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace hbc::kernels {

using graph::CSRGraph;
using graph::EdgeOffset;
using graph::VertexId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTieEps = 1e-12;

bool same_distance(double a, double b) {
  if (!std::isfinite(a) || !std::isfinite(b)) return a == b;
  return std::abs(a - b) <= kTieEps * std::max({1.0, std::abs(a), std::abs(b)});
}

/// Per-block working set for weighted BC.
struct WeightedWorkspace {
  explicit WeightedWorkspace(VertexId n)
      : dist(n, kInf), sigma(n, 0.0), delta(n, 0.0) {
    order.reserve(n);
  }

  void reset(VertexId s) {
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();
    dist[s] = 0.0;
  }

  std::vector<double> dist;
  std::vector<double> sigma;
  std::vector<double> delta;
  std::vector<VertexId> order;  // reached vertices sorted by distance
};

/// Device bytes for one block's weighted working set: dist/sigma/delta
/// (f64) plus the distance-sorted order and two near/far worklists.
std::uint64_t weighted_block_bytes(VertexId n) {
  return static_cast<std::uint64_t>(n) * (8 + 8 + 8 + 4 + 4 + 4);
}

/// Bellman-Ford SSSP: full edge scans until a round relaxes nothing.
/// Returns the number of rounds. Every round charges an m-element
/// streaming scan; successful relaxations charge process_seq (they read
/// dist[src] coalesced-ish in edge order, write dist[dst] scattered).
std::uint64_t sssp_bellman_ford(const CSRGraph& g, std::span<const double> weights,
                                WeightedWorkspace& ws, gpusim::BlockContext& ctx) {
  const auto sources = g.edge_sources();
  const auto cols = g.col_indices();
  const EdgeOffset m = g.num_directed_edges();
  const auto& cost = ctx.cost();
  auto& counters = ctx.counters();

  std::uint64_t rounds = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    ++rounds;
    ctx.charge_uniform_round(m, cost.scan_seq);
    counters.edges_inspected += m;
    std::uint64_t relaxed = 0;
    for (EdgeOffset e = 0; e < m; ++e) {
      const double du = ws.dist[sources[e]];
      if (du == kInf) continue;
      const double cand = du + weights[e];
      if (cand < ws.dist[cols[e]] && !same_distance(cand, ws.dist[cols[e]])) {
        ws.dist[cols[e]] = cand;  // atomicMin on hardware
        ++relaxed;
        ++counters.atomic_ops;
        ++counters.edges_traversed;
        changed = true;
      }
    }
    ctx.charge_uniform_round(relaxed, cost.process_seq);
    ctx.charge_barrier();
  }
  return rounds;
}

/// Davidson et al. near-far SSSP. The near pile holds vertices with
/// tentative distance below the moving threshold; each phase drains it
/// work-efficiently, parking out-of-band relaxations in the far pile.
/// Returns the number of near-pile phases.
std::uint64_t sssp_near_far(const CSRGraph& g, std::span<const double> weights,
                            WeightedWorkspace& ws, VertexId s, double delta,
                            gpusim::BlockContext& ctx) {
  const auto offsets = g.row_offsets();
  const auto cols = g.col_indices();
  const auto& cost = ctx.cost();
  auto& counters = ctx.counters();

  std::vector<VertexId> near{s};
  std::vector<VertexId> far;
  double threshold = delta;
  std::uint64_t phases = 0;

  while (!near.empty() || !far.empty()) {
    if (near.empty()) {
      // Advance the threshold and re-split the far pile. On the device
      // this is a compaction pass over the far pile.
      ++phases;
      ctx.charge_uniform_round(far.size(), 2 * cost.scan_seq);
      threshold += delta;
      std::vector<VertexId> still_far;
      for (const VertexId v : far) {
        if (ws.dist[v] < threshold) {
          near.push_back(v);
        } else if (ws.dist[v] < kInf) {
          still_far.push_back(v);
        }
      }
      far.swap(still_far);
      ctx.charge_barrier();
      continue;
    }

    ++phases;
    std::vector<VertexId> next_near;
    auto round = ctx.make_round();
    for (const VertexId v : near) {
      // Stale-entry check (the pile may hold superseded tentative
      // distances; hardware re-checks before expanding).
      std::uint64_t item_cycles = cost.queue_vertex;
      const double dv = ws.dist[v];
      if (dv < threshold) {
        std::uint32_t walked = 0;
        for (EdgeOffset e = offsets[v]; e < offsets[v + 1]; ++e) {
          ++counters.edges_inspected;
          item_cycles += (walked++ < cost.stream_threshold) ? cost.process_rand
                                                            : cost.process_seq;
          const double cand = dv + weights[e];
          const VertexId w = cols[e];
          if (cand < ws.dist[w] && !same_distance(cand, ws.dist[w])) {
            ws.dist[w] = cand;
            ++counters.atomic_ops;
            ++counters.edges_traversed;
            ++counters.queue_inserts;
            item_cycles += cost.queue_insert;
            (cand < threshold ? next_near : far).push_back(w);
          }
        }
      }
      round.add_item(item_cycles);
    }
    ctx.charge_imbalanced_round(round);
    ctx.charge_barrier();
    near.swap(next_near);
  }
  return phases;
}

/// Distance-ordered sigma/delta sweeps shared by both engines.
void accumulate_weighted(const CSRGraph& g, std::span<const double> weights,
                         WeightedWorkspace& ws, VertexId s, std::vector<double>& bc,
                         gpusim::BlockContext& ctx) {
  const auto offsets = g.row_offsets();
  const auto cols = g.col_indices();
  const VertexId n = g.num_vertices();
  const auto& cost = ctx.cost();
  auto& counters = ctx.counters();

  // Collect reached vertices and sort by distance (device radix/merge
  // sort: ~log2(n) streaming passes).
  ws.order.clear();
  for (VertexId v = 0; v < n; ++v) {
    if (ws.dist[v] < kInf) ws.order.push_back(v);
  }
  std::sort(ws.order.begin(), ws.order.end(), [&](VertexId a, VertexId b) {
    if (ws.dist[a] != ws.dist[b]) return ws.dist[a] < ws.dist[b];
    return a < b;
  });
  const double log_n =
      std::max(1.0, std::log2(static_cast<double>(std::max<std::size_t>(2, ws.order.size()))));
  ctx.charge_uniform_round(
      static_cast<std::uint64_t>(static_cast<double>(ws.order.size()) * log_n),
      cost.scan_seq);

  // Forward sweep: path counting in non-decreasing distance order.
  ws.sigma[s] = 1.0;
  auto fwd = ctx.make_round();
  for (const VertexId v : ws.order) {
    std::uint64_t item_cycles = cost.queue_vertex;
    const double dv = ws.dist[v];
    std::uint32_t walked = 0;
    for (EdgeOffset e = offsets[v]; e < offsets[v + 1]; ++e) {
      ++counters.edges_inspected;
      ++counters.edges_traversed;
      item_cycles += (walked++ < cost.stream_threshold) ? cost.process_rand
                                                        : cost.process_seq;
      const VertexId w = cols[e];
      if (same_distance(dv + weights[e], ws.dist[w])) {
        ws.sigma[w] += ws.sigma[v];
        ++counters.atomic_ops;
      }
    }
    fwd.add_item(item_cycles);
  }
  ctx.charge_imbalanced_round(fwd);
  ctx.charge_barrier();

  // Backward sweep: successor-form dependencies in reverse order.
  auto bwd = ctx.make_round();
  for (auto it = ws.order.rbegin(); it != ws.order.rend(); ++it) {
    const VertexId w = *it;
    std::uint64_t item_cycles = cost.queue_vertex;
    double dsw = 0.0;
    std::uint32_t walked = 0;
    for (EdgeOffset e = offsets[w]; e < offsets[w + 1]; ++e) {
      ++counters.edges_inspected;
      ++counters.edges_traversed;
      item_cycles += (walked++ < cost.stream_threshold) ? cost.process_rand
                                                        : cost.process_seq;
      const VertexId v = cols[e];
      if (ws.dist[v] < kInf && same_distance(ws.dist[w] + weights[e], ws.dist[v])) {
        dsw += (ws.sigma[w] / ws.sigma[v]) * (1.0 + ws.delta[v]);
      }
    }
    ws.delta[w] = dsw;
    bwd.add_item(item_cycles);
  }
  ctx.charge_imbalanced_round(bwd);

  ctx.charge_uniform_round(ws.order.size(), cost.process_seq);
  for (const VertexId v : ws.order) {
    if (v != s) {
      bc[v] += ws.delta[v];
      ++counters.atomic_ops;
    }
  }
  ctx.charge_barrier();
}

}  // namespace

const char* to_string(WeightedStrategy strategy) noexcept {
  switch (strategy) {
    case WeightedStrategy::BellmanFordEdgeParallel: return "bellman-ford-edge-parallel";
    case WeightedStrategy::NearFarWorkEfficient: return "near-far-work-efficient";
    case WeightedStrategy::Sampling: return "weighted-sampling";
  }
  return "?";
}

WeightedRunResult run_weighted_bc(const CSRGraph& g, std::span<const double> weights,
                                  const WeightedConfig& config) {
  if (weights.size() != g.num_directed_edges()) {
    throw std::invalid_argument("run_weighted_bc: weight array size mismatch");
  }
  for (double w : weights) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument("run_weighted_bc: weights must be positive finite");
    }
  }

  util::Timer wall;
  gpusim::Device device(config.base.device);
  const std::uint32_t num_blocks = config.base.device.num_sms;

  // Sampling may fall back to Bellman-Ford mid-run, so it keeps the
  // edge-source table available like the pure edge-parallel engine.
  const bool edge_parallel =
      config.strategy != WeightedStrategy::NearFarWorkEfficient;
  detail::allocate_graph(device, g, /*needs_edge_sources=*/edge_parallel);
  device.memory().allocate(g.num_directed_edges() * sizeof(double), "weights");
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    device.memory().allocate(weighted_block_bytes(g.num_vertices()),
                             "weighted.block_locals");
  }
  device.begin_run(num_blocks);

  double delta = config.near_far_delta;
  if (delta <= 0.0) {
    // Davidson et al. pick delta as a small multiple of the mean edge
    // weight: wide enough to amortize per-phase overheads, narrow enough
    // to bound wasted re-relaxations. 4x mean works well across the
    // Table II stand-ins (see the delta sweep in test_weighted_kernels).
    delta = 4.0 * std::accumulate(weights.begin(), weights.end(), 0.0) /
            static_cast<double>(weights.size());
  }

  const std::vector<VertexId> roots = detail::resolve_roots(g, config.base);
  WeightedRunResult result;
  result.bc.assign(g.num_vertices(), 0.0);

  std::vector<std::unique_ptr<WeightedWorkspace>> workspaces;
  workspaces.reserve(num_blocks);
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    workspaces.push_back(std::make_unique<WeightedWorkspace>(g.num_vertices()));
  }

  // Sampling probe bookkeeping (Algorithm 5 transplanted to SSSP).
  const bool sampling = config.strategy == WeightedStrategy::Sampling;
  const std::size_t n_samps =
      sampling ? std::min<std::size_t>(config.base.sampling.n_samps, roots.size())
               : 0;
  std::vector<double> probe_phases;
  bool use_bellman_ford = config.strategy == WeightedStrategy::BellmanFordEdgeParallel;

  for (std::size_t i = 0; i < roots.size(); ++i) {
    const VertexId root = roots[i];
    const std::uint32_t block_id = static_cast<std::uint32_t>(i % num_blocks);
    auto ctx = device.block(block_id);
    WeightedWorkspace& ws = *workspaces[block_id];

    if (sampling && i == n_samps) {
      // Decision point: small median phase count => low-diameter graph
      // => the m-edge scans of Bellman-Ford are mostly useful work.
      const double median = util::median_lower(probe_phases);
      const double threshold = config.base.sampling.gamma *
                               std::log2(std::max<double>(2.0, g.num_vertices()));
      use_bellman_ford = !probe_phases.empty() && median < threshold;
      result.sampling_chose_bellman_ford = use_bellman_ford;
      result.sampling_median_phases = median;
    }

    ws.reset(root);
    ctx.charge_uniform_round(g.num_vertices(), ctx.cost().scan_seq);

    const bool bf_now = sampling ? (i >= n_samps && use_bellman_ford)
                                 : use_bellman_ford;
    const std::uint64_t rounds = bf_now
                                     ? sssp_bellman_ford(g, weights, ws, ctx)
                                     : sssp_near_far(g, weights, ws, root, delta, ctx);
    result.sssp_rounds += rounds;
    if (sampling && i < n_samps) probe_phases.push_back(static_cast<double>(rounds));

    accumulate_weighted(g, weights, ws, root, result.bc, ctx);
    ++ctx.counters().roots_processed;
  }
  if (sampling && roots.size() <= n_samps && !probe_phases.empty()) {
    result.sampling_median_phases = util::median_lower(probe_phases);
  }

  result.metrics.counters = device.counters();
  result.metrics.elapsed_cycles = device.elapsed_cycles();
  result.metrics.sim_seconds = device.elapsed_seconds();
  result.metrics.wall_seconds = wall.elapsed_seconds();
  result.metrics.device_memory_high_water = device.memory().high_water_mark();
  return result;
}

}  // namespace hbc::kernels
