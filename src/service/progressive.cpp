#include "service/progressive.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace hbc::service {

std::size_t effective_root_cap(const QueryBudget& budget, std::size_t n) {
  if (budget.max_roots == 0) return n;
  return std::min<std::size_t>(budget.max_roots, n);
}

bool contract_met(const Estimate& estimate, const QueryBudget& budget,
                  std::size_t n) {
  if (estimate.roots_used >= n) return true;  // saturated: exact
  if (estimate.roots_used >= effective_root_cap(budget, n)) return true;
  return budget.accuracy_target > 0.0 &&
         estimate.stderr_est <= budget.accuracy_target;
}

std::string budget_suffix(const QueryBudget& budget) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), ";target=%.17g;cap=%u;refine=%d",
                budget.accuracy_target, budget.max_roots,
                budget.allow_refinement ? 1 : 0);
  return buf;
}

std::size_t ApproxCache::entry_bytes(ApproxEntry& e) {
  std::lock_guard<std::mutex> lock(e.mu);
  std::size_t b = sizeof(ApproxEntry) + e.key.capacity() + e.est.bytes();
  if (e.published) b += e.published->scores.capacity() * sizeof(double);
  return b;
}

std::shared_ptr<ApproxEntry> ApproxCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  return *it->second;
}

std::shared_ptr<ApproxEntry> ApproxCache::get_or_create(
    const std::string& key, std::size_t n, const core::StratumPlan& plan,
    std::uint64_t seed, std::uint64_t fingerprint, bool& created) {
  created = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return *it->second;
    }
  }
  auto entry = std::make_shared<ApproxEntry>();
  entry->key = key;
  entry->fingerprint = fingerprint;
  entry->est = core::RefinableEstimate(n, plan, seed);
  created = true;
  if (budget_ == 0) return entry;  // detached: computed but never retained
  const std::size_t b = entry_bytes(*entry);
  std::lock_guard<std::mutex> lock(mu_);
  // Lost a creation race: serve the incumbent so both requests refine
  // one fold (the loser's fresh estimate is dropped untouched).
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    created = false;
    return *it->second;
  }
  entry->accounted_bytes = b;
  bytes_ += b;
  lru_.push_front(entry);
  index_[key] = lru_.begin();
  evict_over_budget_locked(entry);
  return entry;
}

void ApproxCache::note_growth(const std::shared_ptr<ApproxEntry>& keep) {
  if (budget_ == 0 || !keep) return;
  const std::size_t b = entry_bytes(*keep);
  std::lock_guard<std::mutex> lock(mu_);
  // Identity check, not just key presence: an invalidated entry's key may
  // have been re-created by a fresh entry, and growth of the detached one
  // must not be charged to the cache.
  const auto it = index_.find(keep->key);
  if (it == index_.end() || it->second->get() != keep.get()) return;
  bytes_ -= keep->accounted_bytes;
  keep->accounted_bytes = b;
  bytes_ += b;
  evict_over_budget_locked(keep);
}

void ApproxCache::evict_over_budget_locked(const std::shared_ptr<ApproxEntry>& keep) {
  while (bytes_ > budget_ && !lru_.empty()) {
    const std::shared_ptr<ApproxEntry> victim = lru_.back();
    if (victim == keep) break;  // never evict the entry being served
    lru_.pop_back();
    index_.erase(victim->key);
    bytes_ -= victim->accounted_bytes;
    victim->accounted_bytes = 0;
    ++evictions_;
    std::lock_guard<std::mutex> entry_lock(victim->mu);
    victim->invalidated = true;
  }
}

std::size_t ApproxCache::invalidate_prefix(const std::string& prefix) {
  std::vector<std::shared_ptr<ApproxEntry>> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = index_.begin(); it != index_.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        dropped.push_back(*it->second);
        bytes_ -= (*it->second)->accounted_bytes;
        (*it->second)->accounted_bytes = 0;
        lru_.erase(it->second);
        it = index_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& e : dropped) {
    std::lock_guard<std::mutex> lock(e->mu);
    e->invalidated = true;
  }
  return dropped.size();
}

std::size_t ApproxCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

std::size_t ApproxCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::uint64_t ApproxCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace hbc::service
