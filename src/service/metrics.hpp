#pragma once

// Service observability: request/cache/admission counters, a log-bucketed
// latency histogram with interpolated quantiles, and a plain-text report.
//
// The histogram trades exactness for O(1) memory: 64 geometric buckets
// spanning 1 µs .. ~100 s of milliseconds-denominated latency, quantiles
// linearly interpolated inside the winning bucket and clamped to the
// observed min/max (tracked exactly by util::RunningStats). That keeps
// p50/p95/p99 within one bucket ratio (~35%) of truth at any load, which
// is the standard serving-metrics trade (cf. HDR-histogram style buckets).

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "util/stats.hpp"

namespace hbc::service {

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(double ms) noexcept;

  /// Interpolated quantile in milliseconds, q in [0, 1]. 0 when empty.
  double quantile(double q) const noexcept;

  std::uint64_t count() const noexcept { return stats_.count(); }
  double mean_ms() const noexcept { return stats_.mean(); }
  double min_ms() const noexcept { return stats_.min(); }
  double max_ms() const noexcept { return stats_.max(); }

 private:
  static double bucket_upper(std::size_t i) noexcept;
  static std::size_t bucket_of(double ms) noexcept;

  std::array<std::uint64_t, kBuckets> counts_{};
  util::RunningStats stats_;
};

/// Point-in-time copy of every service metric, assembled by
/// BcService::metrics() from the counters here plus cache and queue state.
struct MetricsSnapshot {
  // Requests by outcome.
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   // futures satisfied with status Ok
  std::uint64_t computed = 0;    // actual core::compute runs
  std::uint64_t cache_hits = 0;  // answered from the result cache
  std::uint64_t coalesced = 0;   // attached to an identical in-flight request
  std::uint64_t shed = 0;        // admitted with a downgraded configuration
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_deadline = 0;  // deadline passed while blocked on admission
  std::uint64_t deadline_dropped = 0;   // deadline passed while queued
  std::uint64_t graph_not_found = 0;
  std::uint64_t errors = 0;

  // Cache.
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
  std::size_t cache_budget_bytes = 0;

  // Queue.
  std::size_t queue_depth = 0;
  std::size_t queue_peak_depth = 0;
  std::size_t workers = 0;

  // Resilience (docs/resilience.md).
  std::uint64_t device_faults = 0;    // simulated DeviceFaults observed
  std::uint64_t compute_retries = 0;  // whole-run retries after transient failure
  std::uint64_t fallbacks = 0;        // degradation-ladder descents
  std::uint64_t degraded = 0;         // responses served degraded
  std::uint64_t cancellations = 0;    // in-flight computes cancelled
                                      // (deadline mid-compute or stop())
  // Cancel request -> compute actually stopped (one root boundary).
  double time_to_cancel_mean_ms = 0.0;
  double time_to_cancel_max_ms = 0.0;

  // Network (populated when the service backs a net::Worker).
  std::uint64_t net_reconnects = 0;       // fleet rejoin sessions entered
  std::uint64_t net_heartbeat_misses = 0; // heartbeats sent while prior unacked

  // Progressive approximation (docs/serving.md § Accuracy contracts).
  std::uint64_t approx_served = 0;   // budgeted responses (fresh or cached)
  std::uint64_t approx_strata = 0;   // root strata computed (fore+background)
  std::uint64_t refine_jobs = 0;     // background refinement jobs queued
  std::uint64_t refine_rungs = 0;    // rungs completed in the background
  std::uint64_t refine_dropped = 0;  // refinements dropped: entry invalidated
  std::size_t approx_entries = 0;    // refinable-cache state (assembled by
  std::size_t approx_bytes = 0;      // BcService::metrics())
  std::uint64_t approx_evictions = 0;

  // Dynamic graphs (docs/dynamic.md).
  std::uint64_t mutations = 0;           // committed batches that changed a graph
  std::uint64_t mutation_updates = 0;    // edge updates applied across batches
  std::uint64_t mutation_noops = 0;      // submitted updates dropped as no-ops
  std::uint64_t refresh_patched = 0;     // cache entries incrementally patched
  std::uint64_t refresh_invalidated = 0; // cache entries dropped on mutation
  // Affected-source fraction of incremental patches (dyn level test).
  double affected_fraction_mean = 0.0;
  double affected_fraction_max = 0.0;

  // Latency (end-to-end submit -> response, milliseconds).
  double latency_p50_ms = 0.0;
  double latency_p90_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
  double latency_max_ms = 0.0;
  // Compute-only latency of cache-miss requests.
  double compute_mean_ms = 0.0;

  double uptime_seconds = 0.0;
  double qps = 0.0;  // completed / uptime

  double cache_hit_rate() const noexcept {
    const double denom = static_cast<double>(cache_hits + cache_misses);
    return denom > 0.0 ? static_cast<double>(cache_hits) / denom : 0.0;
  }
};

/// Multi-line human-readable report (the `hbc-serve` output format).
std::string format_report(const MetricsSnapshot& snapshot);

/// Thread-safe counter/histogram sink the service records into.
class ServiceMetrics {
 public:
  ServiceMetrics() : start_(std::chrono::steady_clock::now()) {}

  void on_submitted();
  void on_cache_hit(double latency_ms);
  /// A request became the leader of a fresh computation (request-level
  /// miss; coalesced twins count as neither hit nor miss).
  void on_cache_miss();
  void on_coalesced();
  void on_shed();
  void on_rejected_full();
  void on_rejected_deadline();
  void on_deadline_dropped();
  void on_graph_not_found();
  void on_error();
  /// A computed (cache-miss) request finished OK.
  void on_computed(double compute_ms, double total_ms);
  /// `n` simulated device faults surfaced from one compute run.
  void on_faults(std::uint64_t n);
  /// A whole-run retry was scheduled after a transient failure.
  void on_compute_retry();
  /// The degradation ladder descended one rung.
  void on_fallback();
  /// A response was served degraded (substitute or partial result).
  void on_degraded();
  /// An in-flight compute was cancelled; `time_to_cancel_ms` measures
  /// cancel request -> the run actually unwinding (root-boundary latency).
  void on_cancelled(double time_to_cancel_ms);
  /// A mutation batch committed a new epoch (`applied` effective updates,
  /// `noops` dropped).
  void on_mutation(std::uint64_t applied, std::uint64_t noops);
  /// The refresher patched one cache entry across an epoch transition.
  void on_refresh_patched(double affected_fraction);
  /// `n` cache entries were dropped by a mutation instead of patched.
  void on_refresh_invalidated(std::uint64_t n);
  /// The hosting net::Worker entered a rejoin session after losing the
  /// coordinator.
  void on_reconnect();
  /// The hosting net::Worker sent a heartbeat while the previous one was
  /// still unacked (its half of the failure detector).
  void on_heartbeat_miss();
  /// A budgeted (progressive) response was served.
  void on_approx_served();
  /// One root stratum was computed (foreground or background).
  void on_approx_stratum();
  /// A background refinement job was queued.
  void on_refine_queued();
  /// Background refinement completed one rung.
  void on_refine_rung();
  /// A queued refinement was dropped because its entry was invalidated
  /// (mutation/eviction) — the never-resurrect guarantee in action.
  void on_refine_dropped();

  /// Counters + latency fields; cache/queue fields are the caller's job.
  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point start_;
  MetricsSnapshot counts_;  // only the counter fields are maintained here
  LatencyHistogram latency_;
  util::RunningStats compute_ms_;
  util::RunningStats time_to_cancel_ms_;
  util::RunningStats affected_fraction_;
};

}  // namespace hbc::service
