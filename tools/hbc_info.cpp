// hbc-info — print the Table II row for a graph: vertex/edge counts,
// max degree, pseudo-diameter, component structure, degree skew, and the
// parallelization strategy Algorithm 5's heuristic would choose for it.

#include <cmath>
#include <cstdio>
#include <string>

#include "cli_common.hpp"

int main(int argc, char** argv) {
  using namespace hbc;

  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <graph-file | gen:<family>:<scale>[:<seed>]>\n",
                 argv[0]);
    return 2;
  }

  try {
    const graph::CSRGraph g = cli::load_graph_spec(argv[1]);

    const auto stats = graph::degree_stats(g);
    const auto cc = graph::connected_components(g);
    const auto diameter = graph::pseudo_diameter(g);

    std::printf("vertices          %u\n", g.num_vertices());
    std::printf("edges             %llu undirected (%llu directed slots)\n",
                static_cast<unsigned long long>(g.num_undirected_edges()),
                static_cast<unsigned long long>(g.num_directed_edges()));
    std::printf("max degree        %u\n", stats.max_degree);
    std::printf("mean degree       %.2f (skew %.2f)\n", stats.mean_degree, stats.skew);
    std::printf("pseudo-diameter   %u\n", diameter);
    std::printf("clustering coeff  %.3f (sampled)\n",
                graph::clustering_coefficient(g, std::min<graph::VertexId>(
                                                     2048, g.num_vertices())));
    std::printf("components        %u (largest %llu, %llu isolated vertices)\n",
                cc.num_components, static_cast<unsigned long long>(cc.largest_size),
                static_cast<unsigned long long>(cc.isolated_vertices));
    std::printf("CSR storage       %.1f MiB host\n",
                static_cast<double>(g.storage_bytes()) / (1024.0 * 1024.0));

    // Algorithm 5's decision on a quick probe.
    if (g.num_vertices() > 1 && g.num_directed_edges() > 0) {
      kernels::RunConfig config;
      config.device = gpusim::gtx_titan();
      const std::uint32_t probes = std::min<std::uint32_t>(64, g.num_vertices());
      config.roots.resize(probes);
      for (std::uint32_t i = 0; i < probes; ++i) {
        config.roots[i] = static_cast<graph::VertexId>(
            (static_cast<std::uint64_t>(i) * g.num_vertices()) / probes);
      }
      config.sampling.n_samps = probes;
      const auto r = kernels::run_sampling(g, config);
      std::printf("Algorithm 5       median BFS depth %.0f vs threshold %.1f -> %s\n",
                  r.metrics.sampling_median_depth,
                  4.0 * std::log2(static_cast<double>(g.num_vertices())),
                  r.metrics.sampling_chose_edge_parallel
                      ? "edge-parallel (small-world/scale-free)"
                      : "work-efficient (high diameter)");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
