#pragma once

// Weighted betweenness centrality on the GPU model — the paper's stated
// future-work direction (§VI): "Davidson et al. provide a GPU
// implementation to solve the Single-Source Shortest Path problem and
// also show a tradeoff between work-efficiency and available parallelism
// [13]. We consider the application of hybrid approaches such as the ones
// presented in this paper to this problem to be an interesting direction
// of future work."
//
// Two SSSP engines drive the shortest-path stage, mirroring the
// unweighted dichotomy:
//
//   * BellmanFordEdgeParallel — scan every edge per relaxation round
//     (the traditional GPU approach; maximal parallelism, O(rounds * m)
//     work);
//   * NearFarWorkEfficient — Davidson et al.'s near-far pile method:
//     a worklist of "near" vertices (distance below a moving threshold)
//     is processed work-efficiently; relaxations past the threshold park
//     in the "far" pile until the threshold advances by delta.
//
// After distances converge, path counts (sigma) are accumulated in a
// distance-ordered forward sweep and dependencies (delta) in the reverse
// sweep — the weighted analogue of the paper's S/ends level walk, with
// the vertex order coming from a device sort instead of BFS levels.

#include <span>

#include "kernels/bc_state.hpp"

namespace hbc::kernels {

enum class WeightedStrategy {
  BellmanFordEdgeParallel,
  NearFarWorkEfficient,
  /// Algorithm 5's idea applied to SSSP (the paper's §VI conjecture):
  /// probe n_samps roots with the near-far method, record each SSSP's
  /// phase count (the weighted analogue of max BFS depth), and switch
  /// the remaining roots to Bellman-Ford when the median is small
  /// (low-diameter graph -> edge scans win).
  Sampling,
};

const char* to_string(WeightedStrategy strategy) noexcept;

struct WeightedRunResult {
  std::vector<double> bc;
  RunMetrics metrics;
  /// Total SSSP relaxation rounds (Bellman-Ford) or near-pile phases
  /// (near-far) across all roots — the work-efficiency signal.
  std::uint64_t sssp_rounds = 0;
  /// Sampling strategy only: did the probe choose Bellman-Ford?
  bool sampling_chose_bellman_ford = false;
  double sampling_median_phases = 0.0;
};

/// Exact weighted BC over config.roots (empty = all vertices). Weights
/// must be positive and sized to the directed edge count; throws
/// std::invalid_argument otherwise. The `delta` of the near-far method
/// defaults to the mean edge weight when config leaves it unset (0).
struct WeightedConfig {
  RunConfig base;
  WeightedStrategy strategy = WeightedStrategy::NearFarWorkEfficient;
  double near_far_delta = 0.0;  // 0 selects 4x the mean edge weight
};

WeightedRunResult run_weighted_bc(const graph::CSRGraph& g,
                                  std::span<const double> weights,
                                  const WeightedConfig& config);

}  // namespace hbc::kernels
