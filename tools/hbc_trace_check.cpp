// hbc-trace-check — validate a Chrome trace_event JSON capture.
//
//   hbc-trace-check <trace.json> [<trace.json> ...]
//
// Checks each file against the invariants hbc::trace guarantees on
// export: well-formed JSON, a top-level {"traceEvents": [...]}, required
// fields per event, properly nested B/E span pairs per (pid, tid) row,
// and non-decreasing timestamps per row. Prints one summary line per
// file; exit 0 when every file validates, 1 otherwise. CI runs this over
// the capture produced by `hbc --trace`.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cli_common.hpp"

int main(int argc, char** argv) {
  using namespace hbc;

  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.json> [<trace.json> ...]\n", argv[0]);
    return 2;
  }

  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "%s: cannot read\n", path.c_str());
      all_ok = false;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string json = buf.str();

    const trace::CheckResult r = trace::validate_chrome_trace(json);
    if (r.ok) {
      std::printf("%s: OK — %zu events (%zu span pairs, %zu instants, "
                  "%zu counters, %zu metadata)\n",
                  path.c_str(), r.total_events, r.span_pairs, r.instants,
                  r.counters, r.metadata);
    } else {
      all_ok = false;
      std::printf("%s: INVALID\n%s", path.c_str(), r.error_text().c_str());
    }
  }
  return all_ok ? 0 : 1;
}
