#pragma once

// Compressed Sparse Row graph — the structure all kernels traverse.
//
// Since the storage-policy refactor (ROADMAP item 2) CSRGraph is a thin
// facade over an immutable, shareable storage::Storage: the same
// traversal code runs over heap vectors, an mmap'd .hbcg used zero-copy
// in place, or a varint-compressed adjacency, and produces bitwise-
// identical BC scores on each (see docs/storage.md). Copying a CSRGraph
// copies a shared_ptr, not the arrays.
//
// Undirected graphs (everything in the paper's evaluation) are stored
// symmetrized: each undirected edge {u,v} appears as both (u,v) and (v,u)
// in the adjacency, so num_directed_edges() == 2 * undirected edge count.
// The paper's TEPS formula counts undirected edges (its m), exposed here
// as num_undirected_edges().

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/storage/storage.hpp"
#include "graph/types.hpp"

namespace hbc::graph {

class CSRGraph {
 public:
  /// Empty graph (0 vertices, 0 edges, undirected, heap-backed).
  CSRGraph();

  /// Takes ownership of prebuilt CSR arrays (heap backing). `row_offsets`
  /// must have exactly num_vertices+1 monotonically non-decreasing entries
  /// with row_offsets.front()==0 and row_offsets.back()==col_indices.size();
  /// violations throw std::invalid_argument.
  CSRGraph(std::vector<EdgeOffset> row_offsets, std::vector<VertexId> col_indices,
           bool undirected);

  /// Wrap an existing storage (mmap'd file, compressed adjacency, or a
  /// shared heap CSR). The storage is immutable and shared by copies.
  explicit CSRGraph(std::shared_ptr<const storage::Storage> storage);

  CSRGraph(const CSRGraph& other);
  CSRGraph& operator=(const CSRGraph& other);
  CSRGraph(CSRGraph&& other) noexcept;
  CSRGraph& operator=(CSRGraph&& other) noexcept;

  VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(rows_.empty() ? 0 : rows_.size() - 1);
  }
  EdgeOffset num_directed_edges() const noexcept { return m_; }

  /// Count of undirected edges (m in the paper). For a graph flagged
  /// directed this is simply the directed edge count.
  EdgeOffset num_undirected_edges() const noexcept {
    return undirected_ ? num_directed_edges() / 2 : num_directed_edges();
  }

  bool undirected() const noexcept { return undirected_; }

  /// Where the adjacency bytes live (heap / mapped / compressed…).
  storage::Residency residency() const noexcept { return storage_->residency(); }

  /// The backing policy object itself, shareable across graphs.
  const std::shared_ptr<const storage::Storage>& storage() const noexcept {
    return storage_;
  }

  /// Contiguous neighbor span. For compressed backings the first call
  /// materializes the full adjacency once (the simulated-device upload);
  /// engines that want to stay streaming should dispatch on residency()
  /// and use storage::CompressedStorage::neighbors() instead (the CPU
  /// engines in src/cpu do exactly that).
  std::span<const VertexId> neighbors(VertexId v) const {
    const VertexId* cols = cols_data();
    return {cols + rows_[v], cols + rows_[v + 1]};
  }

  EdgeOffset degree(VertexId v) const noexcept { return rows_[v + 1] - rows_[v]; }

  std::span<const EdgeOffset> row_offsets() const noexcept { return rows_; }
  std::span<const VertexId> col_indices() const { return storage_->col_indices(); }

  /// Source vertex of each directed edge index — the lookup table the
  /// edge-parallel kernels need to map a thread (edge id) to its tail.
  /// Built lazily (thread-safe, once) from the row offsets: only the
  /// edge-parallel family pays the O(m) memory.
  std::span<const VertexId> edge_sources() const { return storage_->edge_sources(); }

  VertexId max_degree() const noexcept;
  double average_degree() const noexcept;

  /// Decoded memory footprint of the CSR arrays in bytes (what
  /// replicating the graph onto a simulated device costs) — independent
  /// of the backing. See storage() for actual resident/mapped bytes.
  std::size_t storage_bytes() const noexcept;

  /// Human-readable one-line summary for logs and bench headers.
  std::string summary() const;

  /// 64-bit FNV-1a over the CSR structure plus vertex/edge counts and
  /// the undirected flag: two graphs fingerprint equal iff their CSR
  /// structure is identical, whatever the backing. Computed once per
  /// storage and cached. This is the identity the service keys its
  /// result cache on, the stamp dyn::VersionedGraph gives every epoch,
  /// and the value embedded in .hbcg file headers.
  std::uint64_t fingerprint() const { return storage_->fingerprint(); }

 private:
  const VertexId* cols_data() const {
    const VertexId* cols = cols_.load(std::memory_order_acquire);
    return cols != nullptr ? cols : cols_data_slow();
  }
  const VertexId* cols_data_slow() const;
  void init_from_storage() noexcept;

  std::shared_ptr<const storage::Storage> storage_;
  std::span<const EdgeOffset> rows_;
  // Cached pointer to the (possibly lazily materialized) column array.
  // Starts null for compressed backings; the benign race in
  // cols_data_slow() always publishes the same value.
  mutable std::atomic<const VertexId*> cols_{nullptr};
  EdgeOffset m_ = 0;
  bool undirected_ = true;
};

}  // namespace hbc::graph
