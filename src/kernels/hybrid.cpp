#include <cstdlib>
#include <memory>

#include "kernels/detail.hpp"
#include "kernels/kernels.hpp"

namespace hbc::kernels {

using graph::CSRGraph;
using graph::VertexId;

// Algorithm 4: per-iteration selection between the work-efficient and
// edge-parallel primitives. The strategy is reconsidered only when the
// vertex frontier changes size by more than alpha between consecutive
// levels; the new strategy is edge-parallel iff the next frontier exceeds
// beta. Processing always starts work-efficiently (the initial frontier
// is the root alone, and a wrong work-efficient choice costs at most
// ~2.2x while a wrong edge-parallel choice can cost >10x, §IV.B).
//
// Edge-parallel levels keep maintaining the queue/S/ends bookkeeping so
// frontier sizes stay observable and the dependency stage can still jump
// directly to each level's S-slice.
RunResult run_hybrid(const CSRGraph& g, const RunConfig& config) {
  util::Timer wall;
  gpusim::Device device(config.device);
  const std::uint32_t num_blocks = config.device.num_sms;

  detail::allocate_graph(device, g, /*needs_edge_sources=*/true);
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    device.memory().allocate(BCWorkspace::work_efficient_bytes(g.num_vertices()),
                             "hybrid.block_locals");
  }
  device.begin_run(num_blocks);

  const std::vector<VertexId> roots = detail::resolve_roots(g, config);
  RunResult result;
  result.bc.assign(g.num_vertices(), 0.0);

  std::vector<std::unique_ptr<BCWorkspace>> workspaces;
  workspaces.reserve(num_blocks);
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    workspaces.push_back(std::make_unique<BCWorkspace>(g));
  }

  const std::int64_t alpha = config.hybrid.alpha;
  const std::int64_t beta = config.hybrid.beta;

  std::vector<Mode> level_modes;  // forward mode per depth, reused backward
  for (std::size_t i = 0; i < roots.size(); ++i) {
    const VertexId root = roots[i];
    const std::uint32_t block_id = static_cast<std::uint32_t>(i % num_blocks);
    auto ctx = device.block(block_id);
    BCWorkspace& ws = *workspaces[block_id];
    const std::uint64_t root_start_cycles = ctx.cycles();

    PerRootStats stats;
    stats.root = root;

    ws.init_root(root, ctx);
    level_modes.clear();

    Mode mode = Mode::WorkEfficient;
    for (;;) {
      const std::uint64_t before = ctx.cycles();
      const BCWorkspace::LevelStats level =
          mode == Mode::WorkEfficient
              ? ws.we_forward_level(ctx)
              : ws.ep_forward_level(ctx, ws.current_depth(), /*maintain_queue=*/true);
      level_modes.push_back(mode);
      if (mode == Mode::WorkEfficient) {
        ++result.metrics.we_levels;
      } else {
        ++result.metrics.ep_levels;
      }
      if (config.collect_per_root_stats) {
        stats.iterations.push_back({ws.current_depth(), level.vertex_frontier,
                                    level.edge_frontier, ctx.cycles() - before, mode});
      }

      // Algorithm 4: reconsider only when the frontier moved by > alpha.
      ctx.charge_cycles(ctx.cost().hybrid_decision);
      const std::int64_t q_change =
          std::llabs(static_cast<std::int64_t>(ws.q_next_len()) -
                     static_cast<std::int64_t>(ws.q_curr_len()));
      if (q_change > alpha) {
        mode = static_cast<std::int64_t>(ws.q_next_len()) > beta ? Mode::EdgeParallel
                                                                 : Mode::WorkEfficient;
      }

      if (ws.q_next_len() == 0) break;
      ws.finish_level(ctx);
    }
    const std::uint32_t max_depth = ws.max_depth();
    stats.max_depth = max_depth;

    // Dependency stage mirrors the per-level strategy chosen forward.
    for (std::uint32_t dep = max_depth; dep-- > 1;) {
      if (dep < level_modes.size() && level_modes[dep] == Mode::EdgeParallel) {
        ws.ep_backward_level(ctx, dep);
      } else {
        ws.we_backward_level(ctx, dep);
      }
    }

    ws.accumulate_bc(result.bc, root, /*use_queue=*/true, ctx);
    ++device.counters().roots_processed;
    if (config.collect_root_cycles) {
      result.metrics.per_root_cycles.push_back(ctx.cycles() - root_start_cycles);
    }
    if (config.collect_per_root_stats) result.per_root.push_back(std::move(stats));
  }

  detail::finalize_metrics(result, device, wall);
  return result;
}

}  // namespace hbc::kernels
