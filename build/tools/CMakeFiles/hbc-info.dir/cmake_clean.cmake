file(REMOVE_RECURSE
  "CMakeFiles/hbc-info.dir/hbc_info.cpp.o"
  "CMakeFiles/hbc-info.dir/hbc_info.cpp.o.d"
  "hbc-info"
  "hbc-info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbc-info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
