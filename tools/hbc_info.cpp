// hbc-info — print the Table II row for a graph: vertex/edge counts,
// max degree, pseudo-diameter, component structure, degree skew, and the
// parallelization strategy Algorithm 5's heuristic would choose for it.
//
// With --fingerprint, print only the structural fingerprint (the 64-bit
// hex value hbc::net uses to verify that every worker in a fleet
// materialized the same graph from a spec) and exit. Useful for checking
// whether two files or specs will be accepted as the same graph.
//
// With --validate, load the graph with every check on (for .hbcg/.hbcgz:
// header bounds, CSR structure, varint stream, and the embedded
// fingerprint recomputed from the mapped bytes), report verdict and
// exit — 0 for a clean file, 1 with the typed error message otherwise.
// Truncated or corrupt files always fail cleanly; they can never UB.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "cli_common.hpp"

int main(int argc, char** argv) {
  using namespace hbc;

  bool fingerprint_only = false;
  bool validate_only = false;
  const char* spec = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fingerprint") == 0) {
      fingerprint_only = true;
    } else if (std::strcmp(argv[i], "--validate") == 0) {
      validate_only = true;
    } else if (spec == nullptr) {
      spec = argv[i];
    } else {
      spec = nullptr;  // too many positionals -> usage
      break;
    }
  }
  if (spec == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [--fingerprint] [--validate] "
                 "<graph-file | gen:<family>:<scale>[:<seed>]>\n",
                 argv[0]);
    return 2;
  }

  if (validate_only) {
    // load_graph_spec runs the full defensive open (open_mapped validates
    // structure and re-derives the fingerprint for v2 containers); any
    // corruption surfaces as a typed exception caught below.
    try {
      const graph::CSRGraph g = cli::load_graph_spec(spec);
      // summary() already names the residency, so no separate column here.
      std::printf("valid: %s fingerprint %016llx\n", g.summary().c_str(),
                  static_cast<unsigned long long>(g.fingerprint()));
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "invalid: %s\n", e.what());
      return 1;
    }
  }

  try {
    const graph::CSRGraph g = cli::load_graph_spec(spec);

    if (fingerprint_only) {
      std::printf("%016llx\n",
                  static_cast<unsigned long long>(service::graph_fingerprint(g)));
      return 0;
    }

    const auto stats = graph::degree_stats(g);
    const auto cc = graph::connected_components(g);
    const auto diameter = graph::pseudo_diameter(g);

    std::printf("vertices          %u\n", g.num_vertices());
    std::printf("edges             %llu undirected (%llu directed slots)\n",
                static_cast<unsigned long long>(g.num_undirected_edges()),
                static_cast<unsigned long long>(g.num_directed_edges()));
    std::printf("max degree        %u\n", stats.max_degree);
    std::printf("mean degree       %.2f (skew %.2f)\n", stats.mean_degree, stats.skew);
    std::printf("pseudo-diameter   %u\n", diameter);
    std::printf("clustering coeff  %.3f (sampled)\n",
                graph::clustering_coefficient(g, std::min<graph::VertexId>(
                                                     2048, g.num_vertices())));
    std::printf("components        %u (largest %llu, %llu isolated vertices)\n",
                cc.num_components, static_cast<unsigned long long>(cc.largest_size),
                static_cast<unsigned long long>(cc.isolated_vertices));
    std::printf("CSR storage       %.1f MiB decoded\n",
                static_cast<double>(g.storage_bytes()) / (1024.0 * 1024.0));

    // Storage-policy section: where the bytes live and what the backing
    // costs relative to the raw arrays (docs/storage.md).
    {
      const auto& storage = *g.storage();
      const double mib = 1024.0 * 1024.0;
      std::printf("storage kind      %s\n", graph::storage::to_string(storage.residency()));
      if (storage.file_bytes() > 0) {
        std::printf("on-disk size      %.1f MiB (%zu bytes)\n",
                    static_cast<double>(storage.file_bytes()) / mib,
                    storage.file_bytes());
      }
      const std::size_t raw = storage.decoded_adjacency_bytes();
      const std::size_t stored = storage.adjacency_bytes();
      if (graph::storage::is_compressed(storage.residency()) && raw > 0) {
        std::printf("adjacency bytes   %zu compressed vs %zu raw (%.2fx, %.2f B/edge)\n",
                    stored, raw, static_cast<double>(raw) / static_cast<double>(stored),
                    static_cast<double>(stored) /
                        static_cast<double>(g.num_directed_edges()));
      } else {
        std::printf("adjacency bytes   %zu raw\n", stored);
      }
      std::printf("resident heap     %.1f MiB, mapped %.1f MiB\n",
                  static_cast<double>(storage.resident_bytes()) / mib,
                  static_cast<double>(storage.mapped_bytes()) / mib);
    }

    std::printf("fingerprint       %016llx\n",
                static_cast<unsigned long long>(service::graph_fingerprint(g)));

    // Algorithm 5's decision on a quick probe.
    if (g.num_vertices() > 1 && g.num_directed_edges() > 0) {
      kernels::RunConfig config;
      config.device = gpusim::gtx_titan();
      const std::uint32_t probes = std::min<std::uint32_t>(64, g.num_vertices());
      config.roots.resize(probes);
      for (std::uint32_t i = 0; i < probes; ++i) {
        config.roots[i] = static_cast<graph::VertexId>(
            (static_cast<std::uint64_t>(i) * g.num_vertices()) / probes);
      }
      config.sampling.n_samps = probes;
      const auto r = kernels::run_sampling(g, config);
      std::printf("Algorithm 5       median BFS depth %.0f vs threshold %.1f -> %s\n",
                  r.metrics.sampling_median_depth,
                  4.0 * std::log2(static_cast<double>(g.num_vertices())),
                  r.metrics.sampling_chose_edge_parallel
                      ? "edge-parallel (small-world/scale-free)"
                      : "work-efficient (high diameter)");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
