#pragma once

// net::Coordinator — the front of a sharded multi-process BC fleet.
//
// The coordinator fronts the hbc::service request/response surface
// (service::Request in, service::Response out) while farming the actual
// computation out to net::Worker processes over the wire protocol
// (net/wire.hpp). It shards work two ways, echoing ROADMAP item 2:
//
//  * **By root range within one query** — at simulated-*block*
//    granularity, which is what makes the distributed reduction
//    bitwise-deterministic. kernels::BlockDriver deals global root index
//    i to block i mod B (B = the grid size the standalone run would use)
//    and folds per-block partial BC vectors in ascending block order.
//    The coordinator therefore builds shard b from exactly the roots
//    block b would own, has a worker compute it as a single-block run
//    (Options::grid_blocks = 1 — bit-identical to that block's partial),
//    and folds the shards in ascending block order, then applies the
//    same finalization core::compute would (sampling scale-up → halve →
//    normalize, all elementwise). The reassembled scores equal a
//    standalone run bit for bit at ANY worker count — the paper's
//    MPI_Reduce shape, made reproducible. The sampling kernel (whose
//    probe phase inspects the whole root list) and the CPU engines
//    (flat left-fold over roots) are not block-shardable and route to
//    one worker as a Whole query instead.
//
//  * **By graph across the fleet** — consistent hashing over a ring of
//    worker vnodes places each named graph on `replication` workers
//    (0 = every worker, the right call for hot graphs); queries for a
//    graph only dispatch to its owners.
//
// Resilience reuses the PR 4 machinery's shape at the fleet level: a dead
// worker's outstanding shards are reassigned (the root-range reassignment
// path), stragglers are re-dispatched after a timeout (first result
// wins), a shard that exhausts its attempts falls back to a
// coordinator-local compute of the same sub-run (bit-identical, since it
// executes the identical single-block options), and with local fallback
// disabled the query degrades to the completed shards (degraded results
// are never cached) or fails. Request deadlines bound the whole exchange.
//
// Results are cached in the same ResultCache the in-process service uses,
// keyed (graph fingerprint, options signature) — the fingerprint is
// verified against every worker at load/mutate time, so the cross-process
// cache key cannot diverge. Mutations (dyn::UpdateBatch) commit locally
// through dyn::VersionedGraph, invalidate the old epoch's entries, and
// broadcast to owning workers with fingerprint agreement checked on ack.
//
// Threading: the coordinator is single-threaded by design — every public
// call pumps the poll loop itself until its condition is met. One query
// is in flight at a time (shard-level parallelism across the fleet is
// where the concurrency lives); hbc-serve's coordinator role replays
// workloads through it sequentially.

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/approx.hpp"
#include "dyn/versioned_graph.hpp"
#include "graph/csr.hpp"
#include "net/chaos.hpp"
#include "net/snapshot.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "service/cache.hpp"
#include "service/progressive.hpp"
#include "service/service.hpp"
#include "trace/trace.hpp"
#include "util/backoff.hpp"

namespace hbc::net {

struct CoordinatorConfig {
  /// Endpoint to bind ("unix:/path" default shape, "tcp:host:port" opt-in).
  Endpoint listen;
  std::string name = "coordinator";
  /// Result-cache budget (same semantics as ServiceConfig::cache_bytes).
  std::size_t cache_bytes = 64ull << 20;
  /// Workers each graph is placed on; 0 = replicate to every worker.
  std::uint32_t replication = 0;
  /// Vnodes per worker on the consistent-hash ring.
  std::uint32_t virtual_nodes = 16;
  /// Re-dispatch a shard still unanswered after this long to a second
  /// worker (first result wins). 0 = off.
  std::chrono::milliseconds straggler_timeout{0};
  /// Dispatch attempts per shard before escalating to local fallback (or
  /// degradation). Minimum 1.
  std::uint32_t max_shard_attempts = 3;
  /// Compute shards locally when no worker can serve them (bit-identical:
  /// the same single-block sub-run). Off = degrade/fail instead.
  bool local_fallback = true;
  /// Budget for control handshakes (graph load acks, mutate acks, drain).
  std::chrono::milliseconds control_timeout{10'000};
  /// Request-lifecycle tracing; spans/instants carry the propagated
  /// request id so per-process captures stitch. Non-owning; may be null.
  trace::Tracer* tracer = nullptr;

  // --- fleet self-healing --------------------------------------------------

  /// Heartbeat failure detection: a ready worker silent (no frame of any
  /// kind) this long is Quarantined — its dispatched shards are
  /// proactively reassigned and it gets no new work until it earns
  /// readmission (docs/resilience.md has the state machine). 0 = off.
  std::chrono::milliseconds heartbeat_timeout{0};
  /// Heartbeats a quarantined-then-heard-from worker must deliver on
  /// probation before it is readmitted to the dispatch pool.
  std::uint32_t probation_heartbeats = 2;
  /// Slow-writer cull: a worker that keeps a frame incomplete at the head
  /// of its stream this long (e.g. dribbling one byte per tick) is
  /// disconnected with a typed drop, not allowed to pin the loop. 0 = off.
  std::chrono::milliseconds frame_deadline{0};
  /// Seeded fault injection armed on every accepted connection
  /// (stream_id = worker slot). Null = inert (one pointer test per send).
  std::shared_ptr<const ChaosPlan> chaos;
  /// Delay policy for re-dispatching a failed shard (util::Backoff; the
  /// per-shard seed mixes the query id and shard index so a fleet of
  /// retries de-synchronizes deterministically). Defaults are small —
  /// shard retries race a request deadline, not a reconnect.
  util::BackoffConfig redispatch_backoff{std::chrono::milliseconds(2),
                                         std::chrono::milliseconds(250)};
  /// Durable warm restart: when set, the named-graph registry (specs,
  /// fingerprints, mutation history, graph structure) and the result-cache
  /// index are snapshotted here on every registry change, and a new
  /// Coordinator restores from it before accepting workers. Empty = off.
  std::string snapshot_dir;
};

struct DistStats {
  std::uint64_t queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t shards_dispatched = 0;
  std::uint64_t shards_completed = 0;  // completed remotely
  std::uint64_t shard_retries = 0;     // failure/death reassignments
  std::uint64_t straggler_redispatches = 0;
  std::uint64_t worker_deaths = 0;
  std::uint64_t local_fallbacks = 0;  // shards computed on the coordinator
  std::uint64_t whole_queries = 0;    // routed unsharded (CPU / sampling)
  std::uint64_t degraded = 0;
  std::uint64_t mutations = 0;
  std::uint64_t budgeted_queries = 0;  // accuracy-contract queries served
  std::uint64_t refine_strata = 0;     // background strata folded fleet-wide
  std::uint64_t refine_dropped = 0;    // refinements dropped (invalidated)
  std::uint64_t heartbeat_misses = 0;  // detector deadline expiries
  std::uint64_t quarantines = 0;
  std::uint64_t readmissions = 0;
  std::uint64_t slow_peer_drops = 0;  // frame-deadline culls
  std::uint64_t snapshot_saves = 0;
};

/// Outcome of the constructor's snapshot restore attempt (queryable so
/// hbc-serve and tests can tell a warm restart from a fresh start).
struct SnapshotInfo {
  bool attempted = false;
  bool ok = false;
  std::string error;  // restore failure (coordinator started fresh)
  std::size_t graphs = 0;
  std::size_t cache_entries = 0;
};

class Coordinator {
 public:
  /// Binds and listens immediately; throws NetError with syscall +
  /// endpoint context on failure (hbc-serve turns that into a clean
  /// nonzero exit).
  explicit Coordinator(CoordinatorConfig config);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Pump until at least `count` workers have completed the handshake (or
  /// the timeout passes). Returns the ready-worker count.
  std::size_t wait_for_workers(std::size_t count, std::chrono::milliseconds timeout);

  std::size_t worker_count() const;

  /// Register a graph and broadcast it to its ring owners. `spec` is how
  /// workers materialize it (a path or gen: spec; workers verify the
  /// fingerprint, so a divergent load is refused, not silently wrong).
  /// Returns the number of workers that confirmed the load; a worker that
  /// *disagrees on the fingerprint* is disconnected — better one worker
  /// down than a fleet serving two different graphs under one cache key.
  std::size_t load_graph(const std::string& id, graph::CSRGraph g, std::string spec);
  std::size_t load_graph(const std::string& id,
                         std::shared_ptr<const graph::CSRGraph> g, std::string spec);

  std::uint64_t graph_fingerprint(const std::string& id) const;

  /// Apply an edge-update batch: commit locally (dyn::VersionedGraph),
  /// invalidate the old epoch's cache entries, broadcast to every worker
  /// holding the graph, and verify fingerprint agreement on each ack.
  /// Throws like BcService::mutate_graph for unknown ids / bad updates.
  service::MutationResult mutate_graph(const std::string& id,
                                       const dyn::UpdateBatch& batch);

  /// The service surface: shard, dispatch, reduce, finalize. Synchronous;
  /// respects request.timeout end to end. Response::result is
  /// bitwise-identical to standalone hbc::service for the same request.
  service::Response query(service::Request request);

  /// Graceful shutdown: ask every worker to drain, wait for goodbyes (or
  /// the control timeout), close everything. Idempotent.
  void drain();

  const DistStats& stats() const noexcept { return stats_; }
  const Endpoint& endpoint() const noexcept { return cfg_.listen; }

  /// Detector state of a connected worker (nullopt for unknown slots).
  /// Tests drive the quarantine -> probation -> readmission machine
  /// through this.
  std::optional<wire::HealthState> worker_health(std::uint32_t slot) const;

  /// Pump the event loop (accepts, heartbeats, detector) for `duration`
  /// with no query in flight — how tests and idle serving loops let the
  /// failure detector observe the fleet. Also advances the background
  /// refinement queue one stratum at a time.
  void run_for(std::chrono::milliseconds duration);

  /// Refinement jobs still queued. The coordinator has no background
  /// thread: callers loop run_for() until this reaches zero to let
  /// allow_refinement contracts finish.
  std::size_t refine_backlog() const { return refine_queue_.size(); }

  /// Snapshot the registry + cache to CoordinatorConfig::snapshot_dir now.
  /// Throws SnapshotError (no-op without a snapshot_dir). The registry-
  /// changing paths (load_graph, mutate_graph, drain) already snapshot
  /// automatically, best-effort.
  void save_snapshot();

  /// The constructor's restore outcome.
  const SnapshotInfo& snapshot_info() const noexcept { return snapshot_info_; }

  /// Human-readable fleet health: DistStats counters, chaos injection
  /// counts when armed, and one line per worker with its detector state.
  std::string metrics_report() const;

 private:
  struct WorkerState {
    std::unique_ptr<Conn> conn;
    std::uint32_t slot = 0;
    std::string name;
    std::uint32_t shard_slots = 1;
    /// Negotiated wire version: min(worker's Hello.protocol, ours). v1
    /// workers never receive budgeted (v2) shards.
    std::uint16_t protocol = wire::kProtocolVersion;
    bool ready = false;
    bool goodbye = false;
    std::uint32_t inflight = 0;  // load-balance hint, clamped at 0
    /// Graph ids confirmed loaded at the coordinator's fingerprint.
    std::set<std::string> graphs;
    /// Failure-detector state; only Healthy workers receive dispatches.
    wire::HealthState health = wire::HealthState::Healthy;
    /// Last frame of any kind (heartbeats included), from when the worker
    /// became ready. The detector compares this against heartbeat_timeout.
    std::chrono::steady_clock::time_point last_seen{};
    /// Heartbeats delivered since entering probation.
    std::uint32_t probation_seen = 0;
  };

  struct GraphEntry {
    std::shared_ptr<const graph::CSRGraph> graph;
    std::uint64_t fingerprint = 0;       // current epoch
    std::uint64_t base_fingerprint = 0;  // epoch 0 (what `spec` loads)
    std::string spec;
    std::uint64_t epoch = 0;
    std::shared_ptr<dyn::VersionedGraph> versioned;  // lazy, first mutate
    /// Applied updates since epoch 0, replayed to late-joining workers.
    std::vector<wire::WireUpdate> history;
  };

  struct Shard {
    std::uint32_t index = 0;  // block id in the standalone grid
    enum class State : std::uint8_t { Pending, Dispatched, Done, Abandoned };
    State state = State::Pending;
    std::uint32_t attempts = 0;
    wire::SubmitShardMsg msg;  // built once; local fallback replays it
    std::vector<std::uint32_t> dispatched_to;  // slots still expected
    std::set<std::uint32_t> tried;
    std::chrono::steady_clock::time_point last_dispatch{};
    std::vector<double> partial;
    std::uint64_t roots_processed = 0;
    double compute_ms = 0.0;
    std::uint8_t degraded = 0;
    /// v2 estimate block echoed by a budgeted Whole worker (see wire.hpp).
    std::uint8_t has_estimate = 0;
    std::uint64_t est_roots_used = 0;
    double est_stderr = 0.0;
    std::uint32_t est_rung = 0;
    std::uint8_t est_refining = 0;
    /// Re-dispatch pacing after a failure: the shard stays Pending but is
    /// not offered to a worker before this instant.
    std::chrono::steady_clock::time_point not_before{};
    util::Backoff backoff;  // seeded per (query, shard) in query()
  };

  struct ActiveQuery {
    std::uint64_t id = 0;
    std::string graph_id;
    std::shared_ptr<const graph::CSRGraph> graph;
    core::Options options;  // as requested (finalization mirrors these)
    bool whole = false;
    /// Accuracy-contract Whole delegation: the result is an estimate and
    /// must never land in the exact-signature result cache.
    bool budgeted = false;
    bool approximate = false;      // sampled-roots scale-up applies
    std::size_t resolved_roots = 0;  // |resolved root list|
    std::vector<Shard> shards;
    std::size_t remaining = 0;
    std::size_t abandoned = 0;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    bool failed = false;
    service::QueryStatus fail_status = service::QueryStatus::Failed;
    std::string fail_error;
  };

  /// One poll-loop pass: accept, read, dispatch frames, flush writes,
  /// then run the failure detector.
  void pump(int timeout_ms);
  void handle_frame(WorkerState& w, const wire::Frame& frame);
  void worker_dead(std::uint32_t slot);
  void send_graph_to(WorkerState& w, const std::string& id, const GraphEntry& e);

  /// Timeout-based heartbeat failure detection: quarantine silent
  /// workers, reassigning their dispatched shards proactively.
  void detect_failures();
  /// Transition `w` to `state`, notify it with a QuarantineMsg, trace.
  void set_health(WorkerState& w, wire::HealthState state, const std::string& reason);
  /// Reassign every shard dispatched to `slot` without touching the
  /// connection (quarantine: suspected, not dead).
  void reassign_dispatched(std::uint32_t slot);

  /// Best-effort snapshot after a registry change (records the error in
  /// snapshot_info_ instead of throwing).
  void persist_snapshot() noexcept;
  void restore_from_snapshot();

  /// Ring owners of `id` among ready workers (ascending slot for
  /// replication 0 / >= fleet; ring walk otherwise).
  std::vector<std::uint32_t> owners(const std::string& id) const;

  /// Accuracy-contract queries (request.budget active). GPU-model
  /// block-shardable strategies run the stratified controller HERE —
  /// each stratum is an explicit-root Partial-sharded sub-query through
  /// query(), so every stratum (and therefore the folded estimate) is
  /// bitwise-identical to a standalone budgeted run. CPU/Sampling
  /// strategies delegate the whole budgeted query to one v2 worker.
  service::Response query_budgeted(service::Request request,
                                   std::chrono::steady_clock::time_point t0);
  /// Advance the oldest pending background refinement by one stratum.
  /// Returns false when there is nothing to do. Called from run_for()
  /// between pump passes and drained fully by drain().
  bool refine_step();
  /// One stratum as a Partial-sharded exact sub-query; folds the scores
  /// into `entry`. Returns false (entry untouched) on any failure.
  bool fold_stratum_via_query(const std::string& graph_id,
                              const std::shared_ptr<service::ApproxEntry>& entry,
                              const core::Options& options);

  void dispatch_pending(ActiveQuery& q);
  void check_stragglers(ActiveQuery& q);
  /// Escalation for a shard out of remote options: local fallback
  /// (bit-identical) or abandon/fail.
  void escalate(ActiveQuery& q, Shard& s);
  void finish_shard_local(ActiveQuery& q, Shard& s);
  service::Response assemble(ActiveQuery& q, std::size_t top_k,
                             std::chrono::steady_clock::time_point t0);

  trace::Sink* sink() const;
  void trace_instant(const char* name, std::uint64_t req,
                     std::initializer_list<trace::Arg> extra = {}) const;

  CoordinatorConfig cfg_;
  Socket listener_;
  service::ResultCache cache_;
  /// Refinable estimates for locally-stratified budgeted queries (same
  /// byte budget as the exact cache).
  service::ApproxCache approx_cache_;
  /// Deferred refinement toward stricter contracts; single-threaded —
  /// advanced stratum-at-a-time by run_for() / drained by drain().
  struct PendingRefine {
    std::string graph_id;
    std::shared_ptr<service::ApproxEntry> entry;
    core::Options options;
    service::QueryBudget budget;
  };
  std::deque<PendingRefine> refine_queue_;
  DistStats stats_;

  std::map<std::uint32_t, WorkerState> workers_;  // slot -> state
  std::uint32_t next_slot_ = 1;
  std::uint64_t next_request_id_ = 1;

  std::map<std::string, GraphEntry> graphs_;

  std::unique_ptr<ActiveQuery> active_;

  /// Control-plane ack bookkeeping (one control op in flight at a time).
  struct PendingControl {
    std::uint64_t request_id = 0;
    std::set<std::uint32_t> waiting;  // slots yet to ack
    std::size_t confirmed = 0;
    std::vector<std::string> errors;
  };
  std::optional<PendingControl> control_;

  bool drained_ = false;
  SnapshotInfo snapshot_info_;
};

}  // namespace hbc::net
