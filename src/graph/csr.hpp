#pragma once

// Compressed Sparse Row graph — the storage format used by all kernels.
//
// Undirected graphs (everything in the paper's evaluation) are stored
// symmetrized: each undirected edge {u,v} appears as both (u,v) and (v,u)
// in the adjacency, so num_directed_edges() == 2 * undirected edge count.
// The paper's TEPS formula counts undirected edges (its m), exposed here
// as num_undirected_edges().

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace hbc::graph {

class CSRGraph {
 public:
  CSRGraph() = default;

  /// Takes ownership of prebuilt CSR arrays. `row_offsets` must have
  /// exactly num_vertices+1 monotonically non-decreasing entries with
  /// row_offsets.front()==0 and row_offsets.back()==col_indices.size();
  /// violations throw std::invalid_argument.
  CSRGraph(std::vector<EdgeOffset> row_offsets, std::vector<VertexId> col_indices,
           bool undirected);

  VertexId num_vertices() const noexcept { return static_cast<VertexId>(row_offsets_.empty() ? 0 : row_offsets_.size() - 1); }
  EdgeOffset num_directed_edges() const noexcept { return static_cast<EdgeOffset>(col_indices_.size()); }

  /// Count of undirected edges (m in the paper). For a graph flagged
  /// directed this is simply the directed edge count.
  EdgeOffset num_undirected_edges() const noexcept {
    return undirected_ ? num_directed_edges() / 2 : num_directed_edges();
  }

  bool undirected() const noexcept { return undirected_; }

  std::span<const VertexId> neighbors(VertexId v) const noexcept {
    return {col_indices_.data() + row_offsets_[v],
            col_indices_.data() + row_offsets_[v + 1]};
  }

  EdgeOffset degree(VertexId v) const noexcept {
    return row_offsets_[v + 1] - row_offsets_[v];
  }

  std::span<const EdgeOffset> row_offsets() const noexcept { return row_offsets_; }
  std::span<const VertexId> col_indices() const noexcept { return col_indices_; }

  /// Source vertex of each directed edge index — the lookup table the
  /// edge-parallel kernels need to map a thread (edge id) to its tail.
  /// Built once at construction: O(m) memory, mirroring what the Jia et
  /// al. implementation keeps on the device.
  std::span<const VertexId> edge_sources() const noexcept { return edge_sources_; }

  VertexId max_degree() const noexcept;
  double average_degree() const noexcept;

  /// Host memory footprint of the CSR arrays in bytes (what replicating
  /// the graph onto a simulated device costs).
  std::size_t storage_bytes() const noexcept;

  /// Human-readable one-line summary for logs and bench headers.
  std::string summary() const;

  /// 64-bit FNV-1a over the CSR arrays plus vertex/edge counts and the
  /// undirected flag: two graphs fingerprint equal iff their CSR
  /// structure is identical. O(n + m); compute once and reuse. This is
  /// the identity the service keys its result cache on and the stamp
  /// dyn::VersionedGraph gives every committed epoch.
  std::uint64_t fingerprint() const noexcept;

 private:
  std::vector<EdgeOffset> row_offsets_;
  std::vector<VertexId> col_indices_;
  std::vector<VertexId> edge_sources_;
  bool undirected_ = true;
};

}  // namespace hbc::graph
