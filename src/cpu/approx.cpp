#include "cpu/approx.hpp"

#include <algorithm>

#include "cpu/brandes.hpp"
#include "graph/types.hpp"
#include "util/rng.hpp"

namespace hbc::cpu {

using graph::CSRGraph;
using graph::kInfDistance;
using graph::VertexId;

UniformApproxResult approximate_bc(const CSRGraph& g, const UniformApproxOptions& options) {
  const VertexId n = g.num_vertices();
  UniformApproxResult result;
  result.bc.assign(n, 0.0);
  if (n == 0) return result;

  const std::uint32_t pivots = std::min<std::uint32_t>(options.num_pivots, n);
  util::Xoshiro256 rng(options.seed);

  // Pivots drawn uniformly *with* replacement, as in Brandes–Pich: the
  // estimator stays unbiased and the draw is O(1) per pivot.
  for (std::uint32_t k = 0; k < pivots; ++k) {
    const VertexId s = static_cast<VertexId>(rng.next_below(n));
    const auto delta = single_source_dependencies(g, s);
    for (VertexId v = 0; v < n; ++v) {
      if (v != s) result.bc[v] += delta[v];
    }
    ++result.pivots_used;
  }

  const double scale = static_cast<double>(n) / static_cast<double>(pivots);
  for (double& x : result.bc) x *= scale;
  return result;
}

AdaptiveApproxResult adaptive_bc(const CSRGraph& g, VertexId target,
                                 const AdaptiveApproxOptions& options) {
  const VertexId n = g.num_vertices();
  AdaptiveApproxResult result;
  if (n == 0 || target >= n) return result;

  const double threshold = options.c * static_cast<double>(n);
  const std::uint32_t cap =
      options.max_pivots == 0 ? n : std::min<std::uint32_t>(options.max_pivots, n);
  util::Xoshiro256 rng(options.seed);

  double accumulated = 0.0;
  std::uint32_t k = 0;
  while (k < cap) {
    const VertexId s = static_cast<VertexId>(rng.next_below(n));
    ++k;
    if (s == target) continue;  // delta_s(s) is by definition excluded
    const auto delta = single_source_dependencies(g, s);
    accumulated += delta[target];
    if (accumulated >= threshold) {
      result.threshold_hit = true;
      break;
    }
  }

  result.pivots_used = k;
  result.bc_estimate =
      k > 0 ? static_cast<double>(n) * accumulated / static_cast<double>(k) : 0.0;
  return result;
}

}  // namespace hbc::cpu
