#include "service/service.hpp"

#if defined(__linux__)
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <cstdio>
#include <exception>
#include <thread>

#include "gpusim/faults.hpp"
#include "gpusim/memory.hpp"
#include "graph/io.hpp"
#include "util/backoff.hpp"
#include "util/timer.hpp"

namespace hbc::service {

namespace {

using Clock = std::chrono::steady_clock;

std::string make_key(std::uint64_t fingerprint, const core::Options& options) {
  return fingerprint_prefix(fingerprint) + core::options_signature(options);
}

}  // namespace

const char* to_string(QueryStatus status) noexcept {
  switch (status) {
    case QueryStatus::Ok: return "ok";
    case QueryStatus::QueueFull: return "queue-full";
    case QueryStatus::DeadlineExceeded: return "deadline-exceeded";
    case QueryStatus::GraphNotFound: return "graph-not-found";
    case QueryStatus::ServiceStopped: return "service-stopped";
    case QueryStatus::BadRequest: return "bad-request";
    case QueryStatus::Failed: return "failed";
  }
  return "?";
}

BcService::BcService(ServiceConfig config)
    : cfg_(std::move(config)),
      cache_(cfg_.cache_bytes),
      approx_cache_(cfg_.approx.cache_bytes),
      queue_(cfg_.admission),
      workers_(cfg_.workers != 0
                   ? cfg_.workers
                   : std::max<std::size_t>(1, std::thread::hardware_concurrency())),
      pool_(std::make_unique<util::ThreadPool>(workers_)) {
  for (std::size_t i = 0; i < workers_; ++i) {
    pool_->submit([this] { worker_loop(); });
  }
  if (cfg_.refresh.enabled) {
    refresh_pool_ = std::make_unique<util::ThreadPool>(
        std::max<std::size_t>(1, cfg_.refresh.threads));
    refresher_ = std::thread([this] { refresher_loop(); });
  }
}

BcService::~BcService() { stop(); }

void BcService::load_graph(const std::string& id, graph::CSRGraph g) {
  load_graph(id, std::make_shared<const graph::CSRGraph>(std::move(g)));
}

void BcService::load_graph(const std::string& id,
                           std::shared_ptr<const graph::CSRGraph> g) {
  if (!g) throw std::invalid_argument("load_graph: null graph");
  GraphEntry entry;
  entry.graph = std::move(g);
  entry.fingerprint = graph_fingerprint(*entry.graph);  // O(n+m), outside the lock
  std::lock_guard<std::mutex> lock(mu_);
  graphs_[id] = std::move(entry);
}

std::uint64_t BcService::load_graph_file(const std::string& id,
                                         const std::string& path) {
  const auto ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  // .hbcg/.hbcgz open zero-copy (register-by-path → mmap); everything
  // else goes through the format loaders into heap. read_auto would make
  // the same choice, but dispatching here keeps the intent explicit.
  graph::CSRGraph g = (ends_with(".hbcg") || ends_with(".hbcgz"))
                          ? graph::io::open_mapped(path)
                          : graph::io::read_auto(path);
  const std::uint64_t fingerprint = g.fingerprint();
  load_graph(id, std::make_shared<const graph::CSRGraph>(std::move(g)));
  return fingerprint;
}

bool BcService::evict_graph(const std::string& id) {
  std::uint64_t fingerprint = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = graphs_.find(id);
    if (it == graphs_.end()) return false;
    fingerprint = it->second.fingerprint;
    graphs_.erase(it);
    // Another id registered over the same structure keeps the cache warm.
    for (const auto& [other_id, entry] : graphs_) {
      if (entry.fingerprint == fingerprint) return true;
    }
  }
  const std::string prefix = fingerprint_prefix(fingerprint);
  cache_.erase_if([&prefix](const std::string& key) {
    return key.compare(0, prefix.size(), prefix) == 0;
  });
  approx_cache_.invalidate_prefix(prefix);
  return true;
}

std::vector<std::string> BcService::graph_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(graphs_.size());
  for (const auto& [id, entry] : graphs_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::shared_ptr<const graph::CSRGraph> BcService::graph(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = graphs_.find(id);
  return it == graphs_.end() ? nullptr : it->second.graph;
}

std::optional<BcService::GraphInfo> BcService::graph_info(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = graphs_.find(id);
  if (it == graphs_.end()) return std::nullopt;
  const GraphEntry& entry = it->second;
  const auto& storage = *entry.graph->storage();
  GraphInfo info;
  info.fingerprint = entry.fingerprint;
  info.epoch = entry.epoch;
  info.residency = storage.residency();
  info.num_vertices = entry.graph->num_vertices();
  info.num_directed_edges = entry.graph->num_directed_edges();
  info.resident_bytes = storage.resident_bytes();
  info.mapped_bytes = storage.mapped_bytes();
  info.adjacency_bytes = storage.adjacency_bytes();
  info.decoded_bytes = storage.decoded_row_bytes() + storage.decoded_adjacency_bytes();
  return info;
}

std::uint64_t BcService::graph_epoch(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = graphs_.find(id);
  return it == graphs_.end() ? 0 : it->second.epoch;
}

MutationResult BcService::mutate_graph(const std::string& id,
                                       const dyn::UpdateBatch& batch) {
  std::shared_ptr<dyn::VersionedGraph> vg;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) throw std::runtime_error("mutate_graph: service is stopped");
    const auto it = graphs_.find(id);
    if (it == graphs_.end()) {
      throw std::invalid_argument("mutate_graph: no graph registered as '" + id + "'");
    }
    GraphEntry& entry = it->second;
    if (!entry.versioned) {
      // Throws invalid_argument for directed graphs; nothing changed then.
      entry.versioned = std::make_shared<dyn::VersionedGraph>(entry.graph, cfg_.tracer);
    }
    vg = entry.versioned;
  }

  // Stage + commit outside mu_: the copy-on-write CSR rebuild is O(n + m)
  // and must not block submits. Mutations of the same graph serialize on
  // the VersionedGraph's own mutex.
  const dyn::CommitResult cr = vg->apply(batch);

  MutationResult out;
  out.epoch = cr.after.id;
  out.fingerprint_before = cr.before.fingerprint;
  out.fingerprint_after = cr.after.fingerprint;
  out.applied = cr.applied.size();
  out.noops = cr.noops;
  if (cr.applied.empty()) return out;  // all-no-op batch: same epoch

  bool fingerprint_shared = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = graphs_.find(id);
    // Skip the registry update if the id was evicted or reloaded while we
    // were rebuilding — the commit still happened on `vg`, but that chain
    // no longer backs the registered id.
    if (it != graphs_.end() && it->second.versioned == vg) {
      it->second.graph = cr.after.graph;
      it->second.fingerprint = cr.after.fingerprint;
      it->second.epoch = cr.after.id;
    }
    for (const auto& [other_id, entry] : graphs_) {
      if (other_id != id && entry.fingerprint == cr.before.fingerprint) {
        fingerprint_shared = true;
      }
    }
  }
  metrics_.on_mutation(out.applied, out.noops);
  trace_instant("mutate", cr.after.id);

  // Old-fingerprint cache entries can never answer queries against the
  // mutated graph (the fingerprint is part of the key), so they are dead
  // weight: drop them, or hand them to the refresher to patch forward —
  // unless another registered graph still has the old structure.
  if (fingerprint_shared) return out;
  const std::string prefix = fingerprint_prefix(cr.before.fingerprint);
  const auto is_stale = [&prefix](const std::string& key) {
    return key.compare(0, prefix.size(), prefix) == 0;
  };
  // Refinable estimates are partial folds over the old structure: they
  // cannot be patched forward, so invalidate (background refinement then
  // drops them — the never-resurrect rule — and they re-form on demand).
  out.approx_invalidated = approx_cache_.invalidate_prefix(prefix);
  if (cfg_.refresh.enabled) {
    RefreshJob job;
    job.old_fingerprint = cr.before.fingerprint;
    job.new_fingerprint = cr.after.fingerprint;
    job.before = cr.before.graph;
    job.after = cr.after.graph;
    job.applied = cr.applied;
    job.entries = cache_.extract_if(is_stale);
    out.cache_refresh_queued = job.entries.size();
    if (!job.entries.empty()) {
      std::lock_guard<std::mutex> lock(refresh_mu_);
      refresh_queue_.push_back(std::move(job));
      refresh_cv_.notify_one();
    }
  } else {
    out.cache_invalidated = cache_.erase_if(is_stale);
    metrics_.on_refresh_invalidated(out.cache_invalidated);
  }
  return out;
}

void BcService::drain_refreshes() {
  std::unique_lock<std::mutex> lock(refresh_mu_);
  refresh_idle_cv_.wait(lock,
                        [this] { return refresh_queue_.empty() && !refresh_active_; });
}

void BcService::refresher_loop() {
  for (;;) {
    RefreshJob job;
    {
      std::unique_lock<std::mutex> lock(refresh_mu_);
      refresh_cv_.wait(lock,
                       [this] { return refresh_stop_ || !refresh_queue_.empty(); });
      if (refresh_stop_) {
        // Pending jobs die with the service; their entries were already
        // out of the cache, so nothing stale can ever be served.
        refresh_queue_.clear();
        refresh_idle_cv_.notify_all();
        return;
      }
      job = std::move(refresh_queue_.front());
      refresh_queue_.pop_front();
      refresh_active_ = true;
    }

    // A later mutation may have superseded this epoch already; patching
    // toward a fingerprint no registered graph has would only create
    // unreachable cache entries.
    bool target_live = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [gid, entry] : graphs_) {
        if (entry.fingerprint == job.new_fingerprint) {
          target_live = true;
          break;
        }
      }
    }
    const std::string old_prefix = fingerprint_prefix(job.old_fingerprint);
    const std::string new_prefix = fingerprint_prefix(job.new_fingerprint);

    std::size_t patched = 0;
    std::uint64_t dropped = 0;
    for (auto& [key, cached] : job.entries) {
      if (!target_live || !cached->refreshable ||
          patched >= cfg_.refresh.budget_entries) {
        ++dropped;
        continue;
      }
      try {
        // Never patch in place: responses still share the old entry.
        auto next = std::make_shared<CachedResult>();
        next->result = cached->result;
        next->refreshable = true;
        dyn::IncrementalConfig icfg;
        icfg.churn_threshold = cfg_.refresh.churn_threshold;
        icfg.reduce_stripes = cfg_.refresh.reduce_stripes;
        icfg.tracer = cfg_.tracer;
        const dyn::BatchStats stats =
            dyn::refresh_scores(*job.before, *job.after, job.applied,
                                next->result.scores, *refresh_pool_, icfg);
        next->bytes = estimate_result_bytes(next->result);
        cache_.put(new_prefix + key.substr(old_prefix.size()), std::move(next));
        ++patched;
        metrics_.on_refresh_patched(stats.affected_fraction);
        trace_instant("refresh-patch", job.new_fingerprint);
      } catch (const std::exception&) {
        ++dropped;  // a failed patch degrades to an invalidation
      }
    }
    metrics_.on_refresh_invalidated(dropped);

    {
      std::lock_guard<std::mutex> lock(refresh_mu_);
      refresh_active_ = false;
      if (refresh_queue_.empty()) refresh_idle_cv_.notify_all();
    }
  }
}

trace::Sink* BcService::trace_sink() const {
  return cfg_.tracer != nullptr ? cfg_.tracer->thread_sink() : nullptr;
}

void BcService::trace_instant(const char* name, std::uint64_t id) const {
  if (cfg_.tracer == nullptr) return;
  trace::Sink* sink = cfg_.tracer->thread_sink();
  if (sink == nullptr || !sink->wants(trace::kService)) return;
  sink->instant(name, trace::kService, cfg_.tracer->now_ns(), {{"id", id}});
}

Ticket BcService::ready_ticket(std::uint64_t id, Response response) {
  std::promise<Response> promise;
  Ticket ticket;
  ticket.id = id;
  ticket.cache_hit = response.from_cache;
  ticket.shed = response.shed;
  promise.set_value(std::move(response));
  ticket.future = promise.get_future().share();
  return ticket;
}

Ticket BcService::submit(Request request) {
  metrics_.on_submitted();
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  trace_instant("submit", id);
  const Clock::time_point submitted = Clock::now();
  // Deprecated-shim: QueryBudget::deadline supersedes the flat timeout.
  if (request.budget.deadline.count() > 0) request.timeout = request.budget.deadline;
  if (request.budget.active()) {
    return submit_budgeted(std::move(request), id, submitted);
  }
  util::Timer turnaround;

  std::shared_ptr<const graph::CSRGraph> g;
  std::uint64_t fingerprint = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      Response r;
      r.status = QueryStatus::ServiceStopped;
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    const auto it = graphs_.find(request.graph_id);
    if (it == graphs_.end()) {
      metrics_.on_graph_not_found();
      trace_instant("graph-missing", id);
      Response r;
      r.status = QueryStatus::GraphNotFound;
      r.error = "no graph registered as '" + request.graph_id + "'";
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    g = it->second.graph;
    fingerprint = it->second.fingerprint;

    std::string key = make_key(fingerprint, request.options);
    if (auto cached = cache_.get(key)) {
      trace_instant("cache-hit", id);
      Response r;
      r.status = QueryStatus::Ok;
      r.result = std::shared_ptr<const core::BCResult>(cached, &cached->result);
      r.from_cache = true;
      r.total_ms = turnaround.elapsed_ms();
      metrics_.on_cache_hit(r.total_ms);
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    if (const auto inflight = inflight_.find(key); inflight != inflight_.end()) {
      metrics_.on_coalesced();
      trace_instant("coalesced", id);
      Ticket t;
      t.future = inflight->second->future;
      t.id = id;
      t.top_k = request.top_k;
      t.coalesced = true;
      t.shed = inflight->second->shed;
      return t;
    }
  }

  // Admission (blocking for Block policy) happens OUTSIDE mu_ so a waiting
  // submitter never wedges workers that need the lock to publish results.
  const Clock::time_point deadline = request.timeout.count() > 0
                                         ? submitted + request.timeout
                                         : Clock::time_point::max();
  const Admit admit = queue_.admit(request.options, deadline);
  switch (admit) {
    case Admit::RejectedFull: {
      metrics_.on_rejected_full();
      trace_instant("reject-full", id);
      Response r;
      r.status = QueryStatus::QueueFull;
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    case Admit::RejectedDeadline: {
      metrics_.on_rejected_deadline();
      trace_instant("reject-deadline", id);
      Response r;
      r.status = QueryStatus::DeadlineExceeded;
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    case Admit::RejectedClosed: {
      Response r;
      r.status = QueryStatus::ServiceStopped;
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    case Admit::Admitted:
    case Admit::Shed:
      break;
  }
  const bool shed = admit == Admit::Shed;
  if (shed) {
    metrics_.on_shed();
    trace_instant("shed", id);
  }

  // The shed downgrade may have rewritten the options, so the key is
  // final only now; re-check cache and in-flight under the lock before
  // becoming the leader (also closes the submit/submit race above).
  const std::string key = make_key(fingerprint, request.options);
  std::shared_ptr<Inflight> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      queue_.cancel();
      Response r;
      r.status = QueryStatus::ServiceStopped;
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    if (auto cached = cache_.get(key)) {
      queue_.cancel();
      trace_instant("cache-hit", id);
      Response r;
      r.status = QueryStatus::Ok;
      r.result = std::shared_ptr<const core::BCResult>(cached, &cached->result);
      r.from_cache = true;
      r.shed = shed;
      r.total_ms = turnaround.elapsed_ms();
      metrics_.on_cache_hit(r.total_ms);
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    if (const auto inflight = inflight_.find(key); inflight != inflight_.end()) {
      queue_.cancel();
      metrics_.on_coalesced();
      trace_instant("coalesced", id);
      Ticket t;
      t.future = inflight->second->future;
      t.id = id;
      t.top_k = request.top_k;
      t.coalesced = true;
      t.shed = inflight->second->shed;
      return t;
    }
    entry = std::make_shared<Inflight>();
    entry->future = entry->promise.get_future().share();
    entry->key = key;
    entry->shed = shed;
    inflight_[key] = entry;
    metrics_.on_cache_miss();

    // Push while still holding mu_: stop() flips stopped_ under the same
    // lock before draining, so a job is either visible to that drain or
    // the submit above already bailed with ServiceStopped — a leader can
    // never enqueue into a queue nobody will ever pop again.
    Job job;
    job.entry = entry;
    job.graph = std::move(g);
    job.options = std::move(request.options);
    job.submitted = submitted;
    job.deadline = deadline;
    queue_.push(std::move(job));
    trace_instant("enqueue", id);
  }

  Ticket t;
  t.future = entry->future;
  t.id = id;
  t.top_k = request.top_k;
  t.shed = shed;
  return t;
}

Ticket BcService::submit_budgeted(Request request, std::uint64_t id,
                                  Clock::time_point submitted) {
  util::Timer turnaround;
  const auto finish = [&](Response r) {
    auto t = ready_ticket(id, std::move(r));
    t.top_k = request.top_k;
    return t;
  };

  if (!request.options.roots.empty()) {
    metrics_.on_error();
    Response r;
    r.status = QueryStatus::BadRequest;
    r.error = "budgeted queries must not pin options.roots — the accuracy "
              "contract owns the root schedule";
    return finish(std::move(r));
  }
  // The controller owns the sample schedule; the legacy knob is ignored
  // so "same contract, different sample_roots" requests share one entry.
  request.options.sample_roots = 0;

  core::StratumPlan plan;
  plan.stripe_roots = std::max<std::uint32_t>(cfg_.approx.stripe_roots, 1);
  plan.base_strata = std::max<std::uint32_t>(cfg_.approx.base_strata, 2);

  std::shared_ptr<const graph::CSRGraph> g;
  std::uint64_t fingerprint = 0;
  std::size_t n = 0;
  std::string akey;
  std::string ikey;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      Response r;
      r.status = QueryStatus::ServiceStopped;
      return finish(std::move(r));
    }
    const auto it = graphs_.find(request.graph_id);
    if (it == graphs_.end()) {
      metrics_.on_graph_not_found();
      trace_instant("graph-missing", id);
      Response r;
      r.status = QueryStatus::GraphNotFound;
      r.error = "no graph registered as '" + request.graph_id + "'";
      return finish(std::move(r));
    }
    g = it->second.graph;
    fingerprint = it->second.fingerprint;
    n = g->num_vertices();

    // The approx-cache key is contract-free: every contract against the
    // same (graph, options, plan) refines ONE estimate in place.
    akey = fingerprint_prefix(fingerprint) +
           core::approx_signature(request.options, plan);
    if (const auto entry = approx_cache_.get(akey)) {
      std::lock_guard<std::mutex> entry_lock(entry->mu);
      if (!entry->invalidated && entry->published &&
          contract_met(entry->info, request.budget, n)) {
        trace_instant("approx-cache-hit", id);
        Response r;
        r.status = QueryStatus::Ok;
        r.result = entry->published;
        r.estimate = entry->info;
        r.estimate->refining = entry->refine_pending > 0;
        r.from_cache = true;
        r.total_ms = turnaround.elapsed_ms();
        metrics_.on_cache_hit(r.total_ms);
        metrics_.on_approx_served();
        return finish(std::move(r));
      }
    }
    // Coalescing is contract-keyed: twins must agree on the whole budget
    // or the leader's early exit would break the stricter twin.
    ikey = akey + budget_suffix(request.budget);
    if (const auto inflight = inflight_.find(ikey); inflight != inflight_.end()) {
      metrics_.on_coalesced();
      trace_instant("coalesced", id);
      Ticket t;
      t.future = inflight->second->future;
      t.id = id;
      t.top_k = request.top_k;
      t.coalesced = true;
      t.shed = inflight->second->shed;
      return t;
    }
  }

  const Clock::time_point deadline = request.timeout.count() > 0
                                         ? submitted + request.timeout
                                         : Clock::time_point::max();
  // Admission applies unchanged — budgeted work queues like any other —
  // but Shed means something better here: instead of rewriting the
  // options, the quality dial caps synchronous work at rung 0 and the
  // contract's remainder refines in the background.
  core::Options admit_probe = request.options;
  const Admit admit = queue_.admit(admit_probe, deadline);
  switch (admit) {
    case Admit::RejectedFull: {
      metrics_.on_rejected_full();
      trace_instant("reject-full", id);
      Response r;
      r.status = QueryStatus::QueueFull;
      return finish(std::move(r));
    }
    case Admit::RejectedDeadline: {
      metrics_.on_rejected_deadline();
      trace_instant("reject-deadline", id);
      Response r;
      r.status = QueryStatus::DeadlineExceeded;
      return finish(std::move(r));
    }
    case Admit::RejectedClosed: {
      Response r;
      r.status = QueryStatus::ServiceStopped;
      return finish(std::move(r));
    }
    case Admit::Admitted:
    case Admit::Shed:
      break;
  }
  const bool rung0_cap = admit == Admit::Shed;
  if (rung0_cap) {
    metrics_.on_shed();
    trace_instant("shed", id);
  }

  std::shared_ptr<Inflight> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      queue_.cancel();
      Response r;
      r.status = QueryStatus::ServiceStopped;
      return finish(std::move(r));
    }
    if (const auto cached = approx_cache_.get(akey)) {
      std::lock_guard<std::mutex> entry_lock(cached->mu);
      if (!cached->invalidated && cached->published &&
          contract_met(cached->info, request.budget, n)) {
        queue_.cancel();
        trace_instant("approx-cache-hit", id);
        Response r;
        r.status = QueryStatus::Ok;
        r.result = cached->published;
        r.estimate = cached->info;
        r.estimate->refining = cached->refine_pending > 0;
        r.from_cache = true;
        r.shed = rung0_cap;
        r.total_ms = turnaround.elapsed_ms();
        metrics_.on_cache_hit(r.total_ms);
        metrics_.on_approx_served();
        return finish(std::move(r));
      }
    }
    if (const auto inflight = inflight_.find(ikey); inflight != inflight_.end()) {
      queue_.cancel();
      metrics_.on_coalesced();
      trace_instant("coalesced", id);
      Ticket t;
      t.future = inflight->second->future;
      t.id = id;
      t.top_k = request.top_k;
      t.coalesced = true;
      t.shed = inflight->second->shed;
      return t;
    }
    entry = std::make_shared<Inflight>();
    entry->future = entry->promise.get_future().share();
    entry->key = ikey;
    entry->shed = rung0_cap;
    inflight_[ikey] = entry;
    metrics_.on_cache_miss();

    Job job;
    job.entry = entry;
    job.graph = std::move(g);
    job.options = std::move(request.options);
    job.submitted = submitted;
    job.deadline = deadline;
    job.budgeted = true;
    job.rung0_cap = rung0_cap;
    job.budget = request.budget;
    job.approx_key = akey;
    job.fingerprint = fingerprint;
    queue_.push(std::move(job));
    trace_instant("enqueue", id);
  }

  Ticket t;
  t.future = entry->future;
  t.id = id;
  t.top_k = request.top_k;
  t.shed = rung0_cap;
  return t;
}

Response BcService::wait(const Ticket& ticket) const {
  Response r = ticket.future.get();
  r.coalesced = ticket.coalesced;
  if (ticket.cache_hit) r.from_cache = true;
  if (ticket.top_k > 0 && r.result) {
    r.top = core::top_k(r.result->scores, ticket.top_k);
  }
  return r;
}

Response BcService::query(Request request) {
  const Ticket ticket = submit(std::move(request));
  return wait(ticket);
}

core::BCResult BcService::run_compute(const graph::CSRGraph& g, const core::Options& o) {
  // Apply the service's per-request thread budget to GPU-model runs. The
  // cache key was computed from the request's options at submit time —
  // that stays correct because options_signature excludes cpu_threads for
  // GPU-model strategies and BlockDriver results are thread-invariant.
  if (cfg_.compute_threads != 0 && core::uses_gpu_model(o.strategy) &&
      o.cpu_threads != cfg_.compute_threads) {
    core::Options budgeted = o;
    budgeted.cpu_threads = cfg_.compute_threads;
    return cfg_.compute_fn ? cfg_.compute_fn(g, budgeted) : core::compute(g, budgeted);
  }
  return cfg_.compute_fn ? cfg_.compute_fn(g, o) : core::compute(g, o);
}

namespace {

/// Deadline- and cancel-aware backoff sleep: never sleeps past the
/// moment the token would fire, and wakes promptly on stop().
void backoff_sleep(std::chrono::milliseconds budget, const util::CancelToken& cancel) {
  const Clock::time_point until = Clock::now() + budget;
  while (Clock::now() < until) {
    if (cancel.cancelled()) return;  // the next check() will throw
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

core::BCResult BcService::compute_resilient(const graph::CSRGraph& g,
                                            const core::Options& requested,
                                            const util::CancelSource& cancel,
                                            bool& degraded) {
  degraded = false;
  core::Options opts = requested;
  opts.resilience.cancel = cancel.token();

  // Shared fleet retry policy: exponential from retry_backoff up to
  // retry_backoff_max, deterministically jittered per attempt.
  util::BackoffConfig backoff_cfg;
  backoff_cfg.initial = cfg_.retry_backoff;
  backoff_cfg.max = cfg_.retry_backoff_max;
  util::Backoff retry_backoff(backoff_cfg);

  // Rung 0: the requested strategy, with whole-run retries while failures
  // are transient. Each retry bumps fault_retry_epoch, so a seeded
  // FaultPlan's transient faults deterministically clear.
  core::BCResult partial;
  bool have_partial = false;
  for (std::uint32_t attempt = 0;; ++attempt) {
    opts.resilience.cancel.check();
    try {
      core::BCResult r = run_compute(g, opts);
      metrics_.on_faults(r.faults.faults_injected);
      if (r.faults.complete()) return r;  // clean or fully recovered
      if (r.faults.all_failures_transient() && attempt < cfg_.max_compute_retries) {
        metrics_.on_compute_retry();
        trace_instant("compute-retry", attempt + 1);
        backoff_sleep(retry_backoff.next(), opts.resilience.cancel);
        opts.resilience.fault_retry_epoch =
            requested.resilience.fault_retry_epoch + attempt + 1;
        continue;
      }
      partial = std::move(r);  // persistent failures (or retries exhausted)
      have_partial = true;
    } catch (const util::Cancelled&) {
      throw;
    } catch (const std::invalid_argument&) {
      throw;  // client error — never worth a fallback
    } catch (const hbc::DeviceFault& f) {
      // A fault escaped compute (e.g. an injecting compute_fn hook).
      metrics_.on_faults(1);
      if (f.transient() && attempt < cfg_.max_compute_retries) {
        metrics_.on_compute_retry();
        trace_instant("compute-retry", attempt + 1);
        backoff_sleep(retry_backoff.next(), opts.resilience.cancel);
        opts.resilience.fault_retry_epoch =
            requested.resilience.fault_retry_epoch + attempt + 1;
        continue;
      }
      if (!cfg_.enable_fallback || !core::uses_gpu_model(requested.strategy)) throw;
    } catch (const gpusim::DeviceOutOfMemory&) {
      // Resource exhaustion never clears by retrying — descend directly.
      if (!cfg_.enable_fallback || !core::uses_gpu_model(requested.strategy)) throw;
    }
    break;
  }

  if (!cfg_.enable_fallback || !core::uses_gpu_model(requested.strategy)) {
    // No ladder: surface the partial result, marked degraded (failed
    // roots are listed in result.faults; the cache never sees it).
    if (have_partial) {
      degraded = true;
      metrics_.on_degraded();
      trace_instant("degraded-partial", 0);
      return partial;
    }
    throw std::runtime_error("compute failed with no result");
  }

  // Rung 1: exact scores on the CPU — slower, but immune to device faults.
  degraded = true;
  metrics_.on_fallback();
  trace_instant("fallback-cpu-exact", 0);
  try {
    core::Options cpu = requested;
    cpu.strategy = core::Strategy::CpuParallel;
    cpu.resilience.fault_plan.reset();
    cpu.resilience.cancel = cancel.token();
    if (cfg_.compute_threads != 0) cpu.cpu_threads = cfg_.compute_threads;
    core::BCResult r = run_compute(g, cpu);
    metrics_.on_degraded();
    return r;
  } catch (const util::Cancelled&) {
    throw;
  } catch (const std::exception&) {
    // fall through to the approximation rung
  }

  // Rung 2: McLaughlin & Bader Algorithm-5 style approximation — a
  // principled partial answer when the exact one can't be afforded.
  metrics_.on_fallback();
  trace_instant("fallback-sampling", 0);
  core::Options approx = requested;
  approx.strategy = core::Strategy::Sampling;
  approx.resilience.fault_plan.reset();
  approx.resilience.cancel = cancel.token();
  approx.roots.clear();
  approx.sample_roots = std::max<std::uint32_t>(1, cfg_.fallback_sample_roots);
  core::BCResult r = run_compute(g, approx);
  metrics_.on_degraded();
  return r;
}

namespace {

/// Rebuild an entry's published result + estimate from its fold state.
/// Caller holds entry.mu. Publication happens only from rung 0 (two
/// strata) onward or at a terminal state, so published estimates always
/// carry a meaningful (or exactly-zero) error.
void publish_locked(ApproxEntry& entry, const core::Options& options) {
  auto result = std::make_shared<core::BCResult>();
  result->strategy = options.strategy;
  result->scores =
      entry.est.scores(options.halve_undirected, options.normalize);
  result->roots_processed = entry.est.roots_used();
  result->approximate = !entry.est.saturated();
  result->time_seconds = entry.accum_seconds;
  result->wall_seconds = entry.accum_seconds;
  entry.published = std::move(result);
  entry.info.roots_used = entry.est.roots_used();
  entry.info.stderr_est = entry.est.reported_error();
  entry.info.rung = entry.est.rung();
  entry.info.refining = false;  // response-scoped; set by the serving path
}

}  // namespace

void BcService::compute_progressive(const Job& job,
                                    const util::CancelSource& cancel,
                                    Response& resp) {
  const graph::CSRGraph& g = *job.graph;
  const std::size_t n = g.num_vertices();
  core::StratumPlan plan;
  plan.stripe_roots = std::max<std::uint32_t>(cfg_.approx.stripe_roots, 1);
  plan.base_strata = std::max<std::uint32_t>(cfg_.approx.base_strata, 2);
  const std::uint32_t rung0_strata =
      std::min(plan.base_strata, std::max<std::uint32_t>(
                                     core::total_strata(n, plan), 1));

  bool created = false;
  const std::shared_ptr<ApproxEntry> entry = approx_cache_.get_or_create(
      job.approx_key, n, plan, job.options.seed, job.fingerprint, created);

  bool computed_any = false;
  bool queue_refine = false;
  std::shared_ptr<const core::BCResult> served;
  Estimate info;

  try {
    // One upgrader at a time per entry; strata are computed under this
    // lock (coalescing keeps contract-twins out, but two different
    // contracts may race toward the same entry).
    std::unique_lock<std::mutex> work(entry->work_mu);
    for (;;) {
      cancel.token().check();
      Estimate now;
      bool rung0_done = false;
      {
        std::lock_guard<std::mutex> lock(entry->mu);
        now.roots_used = entry->est.roots_used();
        now.stderr_est = entry->est.reported_error();
        now.rung = entry->est.rung();
        rung0_done = entry->est.strata_folded() >= rung0_strata ||
                     entry->est.saturated();
      }
      const bool met = contract_met(now, job.budget, n);
      // Early exit: the caller (or the quality dial, when admission
      // shed this request) accepts the current rung once it exists and
      // leaves the rest of the contract to background refinement.
      const bool pause =
          !met && rung0_done && (job.budget.allow_refinement || job.rung0_cap);
      if (met || pause) {
        std::lock_guard<std::mutex> lock(entry->mu);
        if (!entry->published) publish_locked(*entry, job.options);
        served = entry->published;
        info = entry->info;
        queue_refine = pause;
        break;
      }

      std::vector<graph::VertexId> roots;
      {
        std::lock_guard<std::mutex> lock(entry->mu);
        roots = entry->est.next_stratum_roots();
      }
      core::Options sub = job.options;
      sub.roots = std::move(roots);
      sub.sample_roots = 0;
      sub.halve_undirected = false;
      sub.normalize = false;
      sub.resilience.cancel = cancel.token();
      core::BCResult r = run_compute(g, sub);
      metrics_.on_faults(r.faults.faults_injected);
      if (r.scores.size() != n || !r.faults.complete()) {
        throw std::runtime_error("stratum compute incomplete");
      }
      computed_any = true;
      metrics_.on_approx_stratum();
      {
        std::lock_guard<std::mutex> lock(entry->mu);
        entry->est.fold(r.scores, sub.roots.size());
        entry->accum_seconds += r.time_seconds;
        if (entry->est.strata_folded() >= rung0_strata || entry->est.saturated()) {
          publish_locked(*entry, job.options);
        }
      }
      approx_cache_.note_growth(entry);
    }
  } catch (const util::Cancelled&) {
    throw;
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception&) {
    // A stratum failed persistently: abandon the progressive path and
    // answer through the resilience ladder on the original request. The
    // substitute NEVER touches either cache.
    bool degraded = false;
    core::BCResult computed =
        compute_resilient(g, job.options, cancel, degraded);
    resp.degraded = degraded;
    Estimate fallback;
    fallback.roots_used = computed.roots_processed;
    fallback.stderr_est = 0.0;
    fallback.rung = 0;
    fallback.refining = false;
    resp.estimate = fallback;
    resp.result = std::make_shared<const core::BCResult>(std::move(computed));
    trace_instant("approx-fallback", 0);
    return;
  }

  if (queue_refine && cfg_.approx.refinement) {
    RefineJob refine;
    refine.entry = entry;
    refine.graph = job.graph;
    refine.options = job.options;
    refine.budget = job.budget;
    if (enqueue_refinement(std::move(refine))) info.refining = true;
  }
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->refine_pending > 0) info.refining = true;
  }
  resp.result = std::move(served);
  resp.estimate = info;
  resp.from_cache = !computed_any;
}

bool BcService::enqueue_refinement(RefineJob job) {
  if (!cfg_.approx.refinement) return false;
  {
    std::lock_guard<std::mutex> lock(job.entry->mu);
    if (job.entry->invalidated) return false;
    ++job.entry->refine_pending;
  }
  const std::shared_ptr<ApproxEntry> entry = job.entry;
  {
    std::lock_guard<std::mutex> lock(refine_mu_);
    if (!refine_stop_) {
      if (!refine_thread_.joinable()) {
        refine_thread_ = std::thread([this] { refine_loop(); });
      }
      refine_queue_.push_back(std::move(job));
      metrics_.on_refine_queued();
      refine_cv_.notify_one();
      return true;
    }
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->refine_pending > 0) --entry->refine_pending;
  return false;
}

void BcService::refine_loop() {
#if defined(__linux__)
  // Yielding on queue depth is not enough on a loaded host: once a
  // stratum compute starts it runs for tens of milliseconds, stealing
  // core time from foreground workers. Niceness 19 makes the kernel
  // schedule this thread only into cycles the workers leave idle —
  // that is the <5%-of-exact-QPS promise the throughput bench gates.
  ::setpriority(PRIO_PROCESS, static_cast<id_t>(::syscall(SYS_gettid)), 19);
#endif
  for (;;) {
    RefineJob job;
    {
      std::unique_lock<std::mutex> lock(refine_mu_);
      refine_cv_.wait(lock,
                      [this] { return refine_stop_ || !refine_queue_.empty(); });
      if (refine_stop_) {
        std::deque<RefineJob> leftovers;
        leftovers.swap(refine_queue_);
        refine_idle_cv_.notify_all();
        lock.unlock();
        for (RefineJob& j : leftovers) {
          std::lock_guard<std::mutex> entry_lock(j.entry->mu);
          if (j.entry->refine_pending > 0) --j.entry->refine_pending;
        }
        return;
      }
      job = std::move(refine_queue_.front());
      refine_queue_.pop_front();
      refine_active_ = true;
    }

    const graph::CSRGraph& g = *job.graph;
    const std::size_t n = g.num_vertices();
    const std::uint32_t rung0_strata = std::max<std::uint32_t>(
        std::min(std::max<std::uint32_t>(cfg_.approx.base_strata, 2),
                 std::max<std::uint32_t>(core::total_strata(
                                             n,
                                             core::StratumPlan{
                                                 std::max<std::uint32_t>(
                                                     cfg_.approx.stripe_roots, 1),
                                                 cfg_.approx.base_strata}),
                                         1)),
        1);
    const util::CancelToken cancel = refine_cancel_.token();
    {
      std::unique_lock<std::mutex> work(job.entry->work_mu);
      for (;;) {
        if (cancel.cancelled()) break;
        // Low priority: foreground queries own the service; refinement
        // only runs while the admission queue is drained.
        while (queue_.depth() > 0 && !cancel.cancelled()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (cancel.cancelled()) break;

        Estimate now;
        bool invalid = false;
        std::uint32_t rung_before = 0;
        {
          std::lock_guard<std::mutex> lock(job.entry->mu);
          invalid = job.entry->invalidated;
          now.roots_used = job.entry->est.roots_used();
          now.stderr_est = job.entry->est.reported_error();
          rung_before = job.entry->est.rung();
        }
        if (invalid) {
          // The never-resurrect guarantee: a mutation or eviction beat
          // us here, so this estimate must not be advanced or re-served.
          metrics_.on_refine_dropped();
          trace_instant("refine-dropped", job.entry->fingerprint);
          break;
        }
        if (contract_met(now, job.budget, n)) break;

        std::vector<graph::VertexId> roots;
        {
          std::lock_guard<std::mutex> lock(job.entry->mu);
          roots = job.entry->est.next_stratum_roots();
        }
        core::Options sub = job.options;
        sub.roots = std::move(roots);
        sub.sample_roots = 0;
        sub.halve_undirected = false;
        sub.normalize = false;
        sub.resilience.cancel = cancel;
        core::BCResult r;
        try {
          trace::ScopedSpan stratum_span(trace_sink(), cfg_.tracer,
                                         "refine-stratum", trace::kService);
          r = run_compute(g, sub);
        } catch (...) {
          break;  // background work is best-effort; the entry stays valid
        }
        if (r.scores.size() != n || !r.faults.complete()) break;
        metrics_.on_faults(r.faults.faults_injected);
        metrics_.on_approx_stratum();
        std::uint32_t rung_after = 0;
        bool saturated = false;
        std::size_t roots_used = 0;
        {
          std::lock_guard<std::mutex> lock(job.entry->mu);
          job.entry->est.fold(r.scores, sub.roots.size());
          job.entry->accum_seconds += r.time_seconds;
          if (job.entry->est.strata_folded() >= rung0_strata ||
              job.entry->est.saturated()) {
            publish_locked(*job.entry, job.options);
          }
          rung_after = job.entry->est.rung();
          saturated = job.entry->est.saturated();
          roots_used = job.entry->est.roots_used();
        }
        approx_cache_.note_growth(job.entry);
        if (rung_after > rung_before || saturated) {
          metrics_.on_refine_rung();
          if (cfg_.tracer != nullptr) {
            if (trace::Sink* sink = trace_sink();
                sink != nullptr && sink->wants(trace::kService)) {
              sink->instant("refine-rung", trace::kService, cfg_.tracer->now_ns(),
                            {{"rung", static_cast<std::uint64_t>(rung_after)},
                             {"roots", static_cast<std::uint64_t>(roots_used)}});
            }
          }
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(job.entry->mu);
      if (job.entry->refine_pending > 0) --job.entry->refine_pending;
    }
    {
      std::lock_guard<std::mutex> lock(refine_mu_);
      refine_active_ = false;
      if (refine_queue_.empty()) refine_idle_cv_.notify_all();
    }
  }
}

void BcService::drain_refinement() {
  std::unique_lock<std::mutex> lock(refine_mu_);
  refine_idle_cv_.wait(lock, [this] {
    return refine_stop_ || (refine_queue_.empty() && !refine_active_);
  });
}

void BcService::worker_loop() {
  for (;;) {
    std::optional<Job> job = queue_.pop();
    if (!job) return;
    const std::shared_ptr<Inflight>& entry = job->entry;
    trace::ScopedSpan request_span(trace_sink(), cfg_.tracer, "request",
                                   trace::kService);

    Response resp;
    resp.shed = entry->shed;

    // Register this job's cancel source under mu_ while re-checking
    // stopped_: either stop() already ran (fast-complete, no compute) or
    // the source is visible in inflight_ for stop() to cancel — a compute
    // can never start unnoticed by a concurrent stop().
    util::CancelSource cancel = util::CancelSource::with_deadline(job->deadline);
    bool stopped = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped = stopped_;
      if (!stopped) entry->cancel = cancel;
    }

    if (stopped) {
      resp.status = QueryStatus::ServiceStopped;
    } else if (Clock::now() > job->deadline) {
      metrics_.on_deadline_dropped();
      resp.status = QueryStatus::DeadlineExceeded;
    } else {
      util::Timer timer;
      try {
        if (job->budgeted) {
          trace::ScopedSpan compute_span(trace_sink(), cfg_.tracer,
                                         "service-approx", trace::kCompute);
          compute_progressive(*job, cancel, resp);
          resp.compute_ms = timer.elapsed_ms();
          metrics_.on_approx_served();
        } else {
          bool degraded = false;
          trace::ScopedSpan compute_span(trace_sink(), cfg_.tracer,
                                         "service-compute", trace::kCompute);
          core::BCResult computed = compute_resilient(*job->graph, job->options,
                                                      cancel, degraded);
          resp.compute_ms = timer.elapsed_ms();
          resp.degraded = degraded;

          // Degraded results are substitutes (or partial) — never cached, so
          // an identical later request gets a fresh shot at the real answer.
          if (!degraded) {
            auto cached = std::make_shared<CachedResult>();
            cached->result = std::move(computed);
            cached->bytes = estimate_result_bytes(cached->result);
            // Patchable on mutation: exact full BC with raw scores (the
            // refresher's dyn::refresh_scores contract). Decided here — the
            // result alone can't reveal the request's score scaling.
            cached->refreshable = !cached->result.approximate &&
                                  cached->result.roots_processed ==
                                      job->graph->num_vertices() &&
                                  job->options.roots.empty() &&
                                  !job->options.halve_undirected &&
                                  !job->options.normalize;
            cache_.put(entry->key, cached);
            resp.result =
                std::shared_ptr<const core::BCResult>(cached, &cached->result);
          } else {
            resp.result =
                std::make_shared<const core::BCResult>(std::move(computed));
          }
        }

        resp.status = QueryStatus::Ok;
        resp.total_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - job->submitted)
                .count();
        metrics_.on_computed(resp.compute_ms, resp.total_ms);
      } catch (const util::Cancelled& c) {
        metrics_.on_cancelled(cancel.ms_since_cancel());
        resp.status = c.reason() == util::CancelReason::Deadline
                          ? QueryStatus::DeadlineExceeded
                          : QueryStatus::ServiceStopped;
        resp.error = c.what();
      } catch (const std::invalid_argument& e) {
        metrics_.on_error();
        resp.status = QueryStatus::BadRequest;
        resp.error = e.what();
      } catch (const std::exception& e) {
        metrics_.on_error();
        resp.status = QueryStatus::Failed;
        resp.error = e.what();
      } catch (...) {
        metrics_.on_error();
        resp.status = QueryStatus::Failed;
        resp.error = "unknown exception in compute";
      }
    }

    // Unregister before completing: once the promise is set the result is
    // in the cache (or failed), so later twins must go through the cache,
    // not attach to a dead entry.
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = inflight_.find(entry->key);
      if (it != inflight_.end() && it->second == entry) inflight_.erase(it);
    }
    entry->promise.set_value(std::move(resp));
  }
}

void BcService::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    // Cancel every in-flight computation under the same lock the workers
    // register their sources with: a worker either saw stopped_ (and
    // won't compute) or its source is here and gets cancelled. Running
    // computes unwind with util::Cancelled at their next root boundary
    // and complete their futures with ServiceStopped.
    for (auto& [key, entry] : inflight_) entry->cancel.cancel();
  }
  queue_.close();
  pool_.reset();  // workers fast-complete queued jobs, then join

  if (refresher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(refresh_mu_);
      refresh_stop_ = true;
    }
    refresh_cv_.notify_all();
    refresher_.join();
    refresh_pool_.reset();
  }

  {
    std::lock_guard<std::mutex> lock(refine_mu_);
    refine_stop_ = true;
  }
  refine_cancel_.cancel();
  refine_cv_.notify_all();
  refine_idle_cv_.notify_all();
  if (refine_thread_.joinable()) refine_thread_.join();

  // A submitter that was admitted before close() may have pushed after the
  // workers drained; answer anything left so no future is abandoned.
  while (std::optional<Job> job = queue_.pop()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = inflight_.find(job->entry->key);
      if (it != inflight_.end() && it->second == job->entry) inflight_.erase(it);
    }
    Response r;
    r.status = QueryStatus::ServiceStopped;
    job->entry->promise.set_value(std::move(r));
  }
}

std::size_t BcService::worker_count() const noexcept { return workers_; }

MetricsSnapshot BcService::metrics() const {
  MetricsSnapshot s = metrics_.snapshot();
  s.cache_evictions = cache_.evictions();
  s.cache_entries = cache_.size();
  s.cache_bytes = cache_.bytes();
  s.cache_budget_bytes = cache_.budget_bytes();
  s.queue_depth = queue_.depth();
  s.queue_peak_depth = queue_.peak_depth();
  s.workers = workers_;
  s.approx_entries = approx_cache_.size();
  s.approx_bytes = approx_cache_.bytes();
  s.approx_evictions = approx_cache_.evictions();
  return s;
}

std::string BcService::metrics_report() const {
  std::string out = format_report(metrics());
  for (const std::string& id : graph_ids()) {
    const auto info = graph_info(id);
    if (!info) continue;  // evicted between the two calls
    char line[256];
    std::snprintf(line, sizeof(line),
                  "graph %-12s residency=%-17s n=%u m=%llu resident=%.1fMiB "
                  "mapped=%.1fMiB adjacency=%.1fMiB epoch=%llu\n",
                  id.c_str(), graph::storage::to_string(info->residency),
                  info->num_vertices,
                  static_cast<unsigned long long>(info->num_directed_edges),
                  static_cast<double>(info->resident_bytes) / (1024.0 * 1024.0),
                  static_cast<double>(info->mapped_bytes) / (1024.0 * 1024.0),
                  static_cast<double>(info->adjacency_bytes) / (1024.0 * 1024.0),
                  static_cast<unsigned long long>(info->epoch));
    out += line;
  }
  return out;
}

}  // namespace hbc::service
