#pragma once

// Coarse-grained multithreaded Brandes: the CPU analogue of the paper's
// one-root-per-SM mapping. Each worker owns a private BC accumulator and
// working set; partial vectors are reduced at the end (the same pattern
// the multi-GPU driver uses across devices).

#include <cstddef>
#include <vector>

#include "cpu/brandes.hpp"
#include "graph/csr.hpp"

namespace hbc::cpu {

struct ParallelBrandesOptions {
  std::vector<graph::VertexId> sources;  // empty = all vertices
  std::size_t num_threads = 0;           // 0 = hardware concurrency
  /// Polled at each worker's source boundaries; the run throws
  /// util::Cancelled (from the calling thread) within one root per worker.
  util::CancelToken cancel;
};

BrandesResult parallel_brandes(const graph::CSRGraph& g,
                               const ParallelBrandesOptions& options = {});

}  // namespace hbc::cpu
