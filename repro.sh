#!/bin/sh
# One-shot reproduction: build, run the full test suite, regenerate every
# paper table/figure, and leave test_output.txt / bench_output.txt behind.
#
#   ./repro.sh              # default bench scales (minutes on a laptop)
#   HBC_BENCH_SCALE=16 ./repro.sh   # larger graphs, paper-ward magnitudes
set -eu

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

echo
echo "done: see EXPERIMENTS.md for the paper-vs-measured index,"
echo "test_output.txt and bench_output.txt for this run's results."
