#pragma once

// Human-readable run reports: one function that turns a BCResult (plus
// its graph) into the block of text the CLI and examples print. Keeping
// the formatting here means every front-end reports the same fields the
// same way — strategy, roots, timing, TEPS, and the device-model counter
// breakdown for GPU-model strategies.

#include <string>

#include "core/bc.hpp"

namespace hbc::core {

struct ReportOptions {
  /// Include the gpusim counter breakdown (GPU-model strategies only).
  bool counters = true;
  /// Include the device memory high-water mark.
  bool memory = true;
  /// Number of top-centrality vertices to list (0 = none).
  std::size_t top_k = 0;
};

/// Multi-line report, newline-terminated.
std::string format_report(const graph::CSRGraph& g, const BCResult& result,
                          const ReportOptions& options = {});

/// One-line summary: "sampling: 8192 roots, 0.564 s, 594.4 MTEPS".
std::string format_summary(const BCResult& result);

}  // namespace hbc::core
