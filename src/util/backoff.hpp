#pragma once

// util::Backoff — the one retry-delay policy shared by every layer that
// retries: worker reconnect/rejoin (net::Worker), coordinator shard
// re-dispatch (net::Coordinator), and the service degradation ladder's
// whole-run retry (service::BcService). Exponential with a multiplicative
// cap and *deterministic* jitter: the jitter fraction for attempt k is a
// pure hash of (seed, k), so two runs with the same seed sleep the same
// schedule — the property the chaos tests lean on — while different seeds
// de-synchronize a fleet of retriers (no thundering herd).

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace hbc::util {

struct BackoffConfig {
  /// Delay after the first failure (attempt 0).
  std::chrono::milliseconds initial{50};
  /// Ceiling every delay is clamped to.
  std::chrono::milliseconds max{2000};
  /// Growth factor per attempt (>= 1).
  double multiplier = 2.0;
  /// Jitter amplitude as a fraction of the computed delay, in [0, 1):
  /// attempt k's delay is scaled by 1 + jitter * frac(k) with
  /// frac(k) in [-1, 1) derived from the seed. 0 = no jitter.
  double jitter = 0.1;
  /// Seed for the deterministic jitter stream.
  std::uint64_t seed = 1;
};

class Backoff {
 public:
  Backoff() : Backoff(BackoffConfig{}) {}
  explicit Backoff(BackoffConfig config) : cfg_(config) {
    if (cfg_.multiplier < 1.0) cfg_.multiplier = 1.0;
    if (cfg_.jitter < 0.0) cfg_.jitter = 0.0;
    if (cfg_.jitter >= 1.0) cfg_.jitter = 0.999;
    if (cfg_.max < cfg_.initial) cfg_.max = cfg_.initial;
  }

  /// Delay to sleep before the next retry; advances the attempt counter.
  std::chrono::milliseconds next() { return delay_for(attempt_++); }

  /// The delay next() would return, without consuming an attempt.
  std::chrono::milliseconds peek() const { return delay_for(attempt_); }

  /// Attempts consumed so far (== number of next() calls since reset).
  std::uint32_t attempts() const noexcept { return attempt_; }

  /// Back to attempt 0 (e.g. after a successful reconnect).
  void reset() noexcept { attempt_ = 0; }

  const BackoffConfig& config() const noexcept { return cfg_; }

 private:
  std::chrono::milliseconds delay_for(std::uint32_t attempt) const {
    double ms = static_cast<double>(cfg_.initial.count());
    for (std::uint32_t i = 0; i < attempt; ++i) {
      ms *= cfg_.multiplier;
      if (ms >= static_cast<double>(cfg_.max.count())) break;  // saturated
    }
    ms = std::min(ms, static_cast<double>(cfg_.max.count()));
    if (cfg_.jitter > 0.0) {
      // frac in [-1, 1) from a splitmix64 finalizer of (seed, attempt).
      std::uint64_t z = cfg_.seed + 0x9E3779B97F4A7C15ull * (attempt + 1);
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      z ^= z >> 31;
      const double frac = static_cast<double>(z >> 11) * 0x1.0p-52 - 1.0;
      ms *= 1.0 + cfg_.jitter * frac;
    }
    ms = std::clamp(ms, 0.0, static_cast<double>(cfg_.max.count()));
    return std::chrono::milliseconds(static_cast<std::int64_t>(ms));
  }

  BackoffConfig cfg_;
  std::uint32_t attempt_ = 0;
};

}  // namespace hbc::util
