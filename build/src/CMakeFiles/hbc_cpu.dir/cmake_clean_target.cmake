file(REMOVE_RECURSE
  "libhbc_cpu.a"
)
