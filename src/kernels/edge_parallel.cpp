#include <memory>

#include "kernels/detail.hpp"
#include "kernels/kernels.hpp"

namespace hbc::kernels {

using graph::CSRGraph;
using graph::VertexId;

namespace detail {

// Jia et al. driver: coarse-grained parallelism assigns each root to a
// thread block (one block per SM); within the block the per-level
// primitive is either the vertex-parallel or the edge-parallel O(n^2+m)
// level-check traversal. No explicit queue exists, so termination is
// detected by the "nothing discovered" flag after a full scan — that last
// futile scan is charged, exactly as on hardware.
RunResult run_levelcheck_kernel(const CSRGraph& g, const RunConfig& config, Mode mode) {
  util::Timer wall;
  gpusim::Device device(config.device);
  const std::uint32_t num_blocks = config.device.num_sms;

  allocate_graph(device, g, /*needs_edge_sources=*/mode == Mode::EdgeParallel);
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    device.memory().allocate(BCWorkspace::jia_bytes(g.num_vertices(), g.num_directed_edges()),
                             "jia.block_locals");
  }
  device.begin_run(num_blocks);

  const std::vector<VertexId> roots = resolve_roots(g, config);
  RunResult result;
  result.bc.assign(g.num_vertices(), 0.0);

  // One workspace per block, reused across its roots.
  std::vector<std::unique_ptr<BCWorkspace>> workspaces;
  workspaces.reserve(num_blocks);
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    workspaces.push_back(std::make_unique<BCWorkspace>(g));
  }

  for (std::size_t i = 0; i < roots.size(); ++i) {
    const VertexId root = roots[i];
    const std::uint32_t block_id = static_cast<std::uint32_t>(i % num_blocks);
    auto ctx = device.block(block_id);
    BCWorkspace& ws = *workspaces[block_id];
    const std::uint64_t root_start_cycles = ctx.cycles();

    PerRootStats stats;
    stats.root = root;

    ws.init_root(root, ctx);

    // Forward: scan every level until a scan discovers nothing.
    std::uint64_t frontier = 1;  // |{v : d[v] == depth}|
    std::uint32_t depth = 0;
    for (;; ++depth) {
      const std::uint64_t before = ctx.cycles();
      const BCWorkspace::LevelStats level =
          mode == Mode::EdgeParallel
              ? ws.ep_forward_level(ctx, depth, /*maintain_queue=*/false)
              : ws.vp_forward_level(ctx, depth);
      if (config.collect_per_root_stats) {
        stats.iterations.push_back({depth, frontier, level.edge_frontier,
                                    ctx.cycles() - before, mode});
      }
      if (level.discovered == 0) break;
      frontier = level.discovered;
    }
    const std::uint32_t max_depth = depth;  // deepest populated level
    stats.max_depth = max_depth;
    result.metrics.ep_levels += (mode == Mode::EdgeParallel) ? max_depth + 1 : 0;

    // Backward: vertices at max_depth have no successors (delta = 0), so
    // start one level closer to the root.
    for (std::uint32_t dep = max_depth; dep-- > 1;) {
      if (mode == Mode::EdgeParallel) {
        ws.ep_backward_level(ctx, dep);
      } else {
        ws.vp_backward_level(ctx, dep);
      }
    }

    ws.accumulate_bc(result.bc, root, /*use_queue=*/false, ctx);
    ++device.counters().roots_processed;
    if (config.collect_root_cycles) {
      result.metrics.per_root_cycles.push_back(ctx.cycles() - root_start_cycles);
    }
    if (config.collect_per_root_stats) result.per_root.push_back(std::move(stats));
  }

  finalize_metrics(result, device, wall);
  return result;
}

}  // namespace detail

RunResult run_edge_parallel(const CSRGraph& g, const RunConfig& config) {
  return detail::run_levelcheck_kernel(g, config, Mode::EdgeParallel);
}

}  // namespace hbc::kernels
