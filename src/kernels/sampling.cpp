#include <algorithm>
#include <cmath>
#include <vector>

#include "kernels/block_driver.hpp"
#include "kernels/kernels.hpp"
#include "util/stats.hpp"

namespace hbc::kernels {

using graph::CSRGraph;

namespace {

// Process one root work-efficiently (Algorithms 1–3); returns max depth.
std::uint32_t process_root_we(BlockDriver::RootTask& task) {
  BCWorkspace& ws = task.ws;
  gpusim::BlockContext& ctx = task.ctx;
  ws.init_root(task.root, ctx);
  {
    SimSpan stage(task.trace, ctx, "shortest-path", trace::kPhase);
    for (;;) {
      const std::uint64_t before = ctx.cycles();
      const BCWorkspace::LevelStats level = ws.we_forward_level(ctx);
      ++task.we_levels;
      if (task.stats) {
        task.stats->iterations.push_back({ws.current_depth(), level.vertex_frontier,
                                          level.edge_frontier, ctx.cycles() - before,
                                          Mode::WorkEfficient});
      }
      trace_level(task.trace, ctx, ws.current_depth(), level.vertex_frontier,
                  level.edge_frontier, Mode::WorkEfficient, ctx.cycles() - before);
      if (ws.q_next_len() == 0) break;
      ws.finish_level(ctx);
    }
  }
  const std::uint32_t max_depth = ws.max_depth();
  if (task.stats) task.stats->max_depth = max_depth;

  {
    SimSpan stage(task.trace, ctx, "dependency", trace::kPhase);
    for (std::uint32_t dep = max_depth; dep-- > 1;) {
      ws.we_backward_level(ctx, dep);
    }
  }
  ws.accumulate_bc(task.bc, task.root, /*use_queue=*/true, ctx);
  return max_depth;
}

// Process one root in guarded edge-parallel mode: levels whose frontier
// holds at least min_frontier vertices run edge-parallel, smaller ones
// (including the opening expansion of the root) revert to work-efficient
// — the per-iteration check described at the end of §IV.C.
void process_root_guarded_ep(BlockDriver::RootTask& task, const RunConfig& config,
                             std::vector<Mode>& level_modes) {
  BCWorkspace& ws = task.ws;
  gpusim::BlockContext& ctx = task.ctx;
  ws.init_root(task.root, ctx);
  level_modes.clear();
  {
    SimSpan stage(task.trace, ctx, "shortest-path", trace::kPhase);
    for (;;) {
      ctx.charge_cycles(ctx.cost().sampling_guard);
      const Mode mode = ws.q_curr_len() >= config.sampling.min_frontier
                            ? Mode::EdgeParallel
                            : Mode::WorkEfficient;
      const std::uint64_t before = ctx.cycles();
      const BCWorkspace::LevelStats level =
          mode == Mode::EdgeParallel
              ? ws.ep_forward_level(ctx, ws.current_depth(), /*maintain_queue=*/true)
              : ws.we_forward_level(ctx);
      level_modes.push_back(mode);
      if (mode == Mode::WorkEfficient) {
        ++task.we_levels;
      } else {
        ++task.ep_levels;
      }
      if (task.stats) {
        task.stats->iterations.push_back({ws.current_depth(), level.vertex_frontier,
                                          level.edge_frontier, ctx.cycles() - before,
                                          mode});
      }
      trace_level(task.trace, ctx, ws.current_depth(), level.vertex_frontier,
                  level.edge_frontier, mode, ctx.cycles() - before);
      if (ws.q_next_len() == 0) break;
      ws.finish_level(ctx);
    }
  }
  const std::uint32_t max_depth = ws.max_depth();
  if (task.stats) task.stats->max_depth = max_depth;

  {
    SimSpan stage(task.trace, ctx, "dependency", trace::kPhase);
    for (std::uint32_t dep = max_depth; dep-- > 1;) {
      if (dep < level_modes.size() && level_modes[dep] == Mode::EdgeParallel) {
        ws.ep_backward_level(ctx, dep);
      } else {
        ws.we_backward_level(ctx, dep);
      }
    }
  }
  ws.accumulate_bc(task.bc, task.root, /*use_queue=*/true, ctx);
}

}  // namespace

// Algorithm 5: spend the first n_samps roots on the (default) work-
// efficient method, record the maximum BFS depth of each, and take the
// median (an outlier-robust estimator of the traversal depth, hence of
// graph structure). If the median is below gamma * log2(n) the graph is
// small-world/scale-free and the remaining roots switch to edge-parallel
// processing — guarded per iteration so trivially small frontiers still
// run work-efficiently. The probe work is useful work: its dependencies
// are already accumulated into the BC vector.
RunResult run_sampling(const CSRGraph& g, const RunConfig& config) {
  DriverLayout layout;
  layout.label = "sampling";
  layout.needs_edge_sources = true;
  layout.per_block.push_back(
      {BCWorkspace::work_efficient_bytes(g.num_vertices()), "sampling.block_locals"});
  BlockDriver driver(g, config, layout);

  const std::size_t n_samps =
      std::min<std::size_t>(config.sampling.n_samps, driver.roots().size());

  // Phase 1: probe roots with the default (work-efficient) method and
  // collect each BFS's maximum depth ("keys" in Algorithm 5). Keys are
  // written by global root index, so their order — hence the median — is
  // independent of the host-thread interleaving.
  std::vector<double> keys(n_samps, 0.0);
  driver.run_phase(n_samps, [&](BlockDriver::RootTask& task) {
    keys[task.index] = static_cast<double>(process_root_we(task));
  });

  // Algorithm 5 decision: keys[n_samps/2] < gamma * log2(n). The sort of
  // the key array is charged to block 0 (a single-block bitonic sort).
  if (!keys.empty()) {
    const double k = static_cast<double>(keys.size());
    driver.device().block(0).charge_cycles(
        static_cast<std::uint64_t>(k * std::max(1.0, std::log2(k)) * 4.0));
  }
  const double median = util::median_lower(keys);
  const double threshold =
      config.sampling.gamma * std::log2(std::max<double>(2.0, g.num_vertices()));
  const bool choose_edge_parallel = !keys.empty() && median < threshold;

  // The Algorithm 5 decision happens at the phase boundary, on the same
  // block the key sort was charged to.
  {
    gpusim::BlockContext b0 = driver.device().block(0);
    if (trace::Sink* sink = b0.trace(); sink && sink->wants(trace::kDecision)) {
      sink->instant("sampling-choice", trace::kDecision, b0.sim_ns(),
                    {{"median_depth", median},
                     {"threshold", threshold},
                     {"probed", static_cast<std::uint64_t>(n_samps)},
                     {"to", choose_edge_parallel ? "edge-parallel" : "work-efficient"}});
    }
  }

  // Phase 2: remaining roots with the selected method.
  if (choose_edge_parallel) {
    std::vector<std::vector<Mode>> level_modes(driver.num_blocks());
    driver.run([&](BlockDriver::RootTask& task) {
      process_root_guarded_ep(task, config, level_modes[task.block_id]);
    });
  } else {
    driver.run([&](BlockDriver::RootTask& task) { process_root_we(task); });
  }

  RunResult result = driver.finish();
  result.metrics.sampling_median_depth = median;
  result.metrics.sampling_chose_edge_parallel = choose_edge_parallel;
  return result;
}

}  // namespace hbc::kernels
