// GPU execution-model simulator: memory ledger + OOM, cost charging,
// block scheduling, and the imbalanced-round load model.

#include <gtest/gtest.h>

#include <thread>

#include "gpusim/config.hpp"
#include "gpusim/device.hpp"
#include "gpusim/memory.hpp"

namespace {

using namespace hbc::gpusim;

TEST(Memory, TracksUsageAndHighWater) {
  GlobalMemory mem(1000);
  const auto a = mem.allocate(400, "a");
  EXPECT_EQ(mem.used(), 400u);
  const auto b = mem.allocate(500, "b");
  EXPECT_EQ(mem.used(), 900u);
  EXPECT_EQ(mem.high_water_mark(), 900u);
  mem.release(a);
  EXPECT_EQ(mem.used(), 500u);
  EXPECT_EQ(mem.high_water_mark(), 900u);  // high water sticks
  mem.release(b);
  EXPECT_EQ(mem.used(), 0u);
}

TEST(Memory, ThrowsOnExhaustion) {
  GlobalMemory mem(100);
  mem.allocate(60, "first");
  try {
    mem.allocate(50, "second");
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const DeviceOutOfMemory& e) {
    EXPECT_EQ(e.requested_bytes(), 50u);
    EXPECT_EQ(e.available_bytes(), 40u);
    EXPECT_NE(std::string(e.what()).find("second"), std::string::npos);
  }
  // Failed allocation must not consume capacity.
  EXPECT_EQ(mem.used(), 60u);
}

TEST(Memory, ReleaseIsIdempotent) {
  GlobalMemory mem(100);
  const auto id = mem.allocate(10, "x");
  mem.release(id);
  mem.release(id);
  EXPECT_EQ(mem.used(), 0u);
}

TEST(Memory, ReleaseAllClears) {
  GlobalMemory mem(100);
  mem.allocate(10, "x");
  mem.allocate(20, "y");
  mem.release_all();
  EXPECT_EQ(mem.used(), 0u);
  EXPECT_TRUE(mem.live_allocations().empty());
}

TEST(Memory, ScopedAllocationReleasesOnDestruction) {
  GlobalMemory mem(100);
  {
    ScopedAllocation a(mem, 40, "scoped");
    EXPECT_EQ(mem.used(), 40u);
    ScopedAllocation b = std::move(a);
    EXPECT_EQ(mem.used(), 40u);
  }
  EXPECT_EQ(mem.used(), 0u);
}

TEST(Memory, LiveAllocationsSnapshot) {
  GlobalMemory mem(100);
  mem.allocate(10, "keep");
  const auto id = mem.allocate(20, "drop");
  mem.release(id);
  const auto live = mem.live_allocations();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].first, "keep");
  EXPECT_EQ(live[0].second, 10u);
}

TEST(Device, UniformRoundCeilsByThreads) {
  Device dev(test_device());  // 32 threads per block
  dev.begin_run(1);
  auto ctx = dev.block(0);
  ctx.charge_uniform_round(33, 10);  // two rounds of 10 cycles
  EXPECT_EQ(dev.elapsed_cycles(), 20u);
  ctx.charge_uniform_round(1, 10);  // small frontier still costs a round
  EXPECT_EQ(dev.elapsed_cycles(), 30u);
  ctx.charge_uniform_round(0, 10);  // nothing to do
  EXPECT_EQ(dev.elapsed_cycles(), 30u);
}

TEST(Device, UniformRoundWidthOverride) {
  Device dev(test_device());
  dev.begin_run(1);
  auto ctx = dev.block(0);
  // Grid-wide width 64 halves the rounds vs the 32-thread block.
  ctx.charge_uniform_round(64, 10, 64);
  EXPECT_EQ(dev.elapsed_cycles(), 10u);
}

TEST(Device, ImbalancedRoundBalancesThroughputAndCriticalPath) {
  Device dev(test_device());  // 32 threads, thread_ilp = 10
  dev.begin_run(1);
  auto ctx = dev.block(0);
  auto round = ctx.make_round();
  // Thread 0 gets two items of 100 (wraps round-robin), others one of 1.
  round.add_item(100);
  for (int i = 1; i < 32; ++i) round.add_item(1);
  round.add_item(100);  // wraps to thread 0
  EXPECT_EQ(round.max_thread_cycles(), 200u);
  EXPECT_EQ(round.total_cycles(), 231u);
  // throughput = ceil(231/32) = 8; critical = ceil(200/ilp=10) = 20 -> 20.
  ctx.charge_imbalanced_round(round);
  EXPECT_EQ(dev.elapsed_cycles(), 20u);
  EXPECT_EQ(round.cost_cycles(1), 200u);   // no ILP: pure serialization
  EXPECT_EQ(round.cost_cycles(1000), 8u);  // infinite ILP: throughput bound
}

TEST(Device, ImbalancedRoundUniformItemsMatchThroughput) {
  Device dev(test_device());
  dev.begin_run(1);
  auto ctx = dev.block(0);
  auto round = ctx.make_round();
  for (int i = 0; i < 64; ++i) round.add_item(10);  // 2 items of 10 per thread
  // throughput = ceil(640/32) = 20; critical = ceil(20/10) = 2 -> 20.
  ctx.charge_imbalanced_round(round);
  EXPECT_EQ(dev.elapsed_cycles(), 20u);
}

TEST(Device, ElapsedIsMaxOverBlocks) {
  Device dev(test_device());
  dev.begin_run(2);
  dev.block(0).charge_cycles(50);
  dev.block(1).charge_cycles(120);
  EXPECT_EQ(dev.elapsed_cycles(), 120u);
  EXPECT_EQ(dev.block_cycles(0), 50u);
  EXPECT_EQ(dev.block_cycles(1), 120u);
}

TEST(Device, SecondsUseClock) {
  DeviceConfig cfg = test_device();  // 1 GHz
  Device dev(cfg);
  dev.begin_run(1);
  dev.block(0).charge_cycles(2'000'000'000ull);
  EXPECT_NEAR(dev.elapsed_seconds(), 2.0, 1e-12);
}

TEST(Device, BarrierAndGridSyncCharges) {
  Device dev(test_device());
  dev.begin_run(1);
  auto ctx = dev.block(0);
  ctx.charge_barrier();
  EXPECT_EQ(dev.counters().barriers, 1u);
  EXPECT_EQ(dev.elapsed_cycles(), ctx.cost().block_barrier);
  ctx.charge_grid_sync();
  EXPECT_EQ(dev.counters().grid_syncs, 1u);
  EXPECT_EQ(dev.elapsed_cycles(), ctx.cost().block_barrier + ctx.cost().grid_relaunch);
}

TEST(Device, ResetClearsEverything) {
  Device dev(test_device());
  dev.begin_run(1);
  dev.block(0).charge_cycles(10);
  dev.memory().allocate(100, "x");
  dev.block(0).counters().edges_traversed = 5;
  dev.reset();
  EXPECT_EQ(dev.elapsed_cycles(), 0u);
  EXPECT_EQ(dev.memory().used(), 0u);
  EXPECT_EQ(dev.counters().edges_traversed, 0u);
}

TEST(Device, PerBlockCountersAreIsolatedAndMergeInOrder) {
  Device dev(test_device());
  dev.begin_run(3);
  dev.block(0).counters().edges_traversed = 7;
  dev.block(2).counters().edges_traversed = 5;
  dev.block(1).counters().atomic_ops = 3;
  EXPECT_EQ(dev.block_counters(0).edges_traversed, 7u);
  EXPECT_EQ(dev.block_counters(1).edges_traversed, 0u);
  EXPECT_EQ(dev.block_counters(2).edges_traversed, 5u);
  const Counters total = dev.counters();
  EXPECT_EQ(total.edges_traversed, 12u);
  EXPECT_EQ(total.atomic_ops, 3u);
}

TEST(Device, BlocksChargeFromDistinctThreadsWithoutSharing) {
  Device dev(test_device());
  dev.begin_run(2);
  std::thread t0([&] {
    auto ctx = dev.block(0);
    for (int i = 0; i < 1000; ++i) {
      ctx.charge_cycles(1);
      ++ctx.counters().edges_traversed;
    }
  });
  std::thread t1([&] {
    auto ctx = dev.block(1);
    for (int i = 0; i < 500; ++i) {
      ctx.charge_cycles(2);
      ++ctx.counters().queue_inserts;
    }
  });
  t0.join();
  t1.join();
  EXPECT_EQ(dev.block_cycles(0), 1000u);
  EXPECT_EQ(dev.block_cycles(1), 1000u);
  EXPECT_EQ(dev.counters().edges_traversed, 1000u);
  EXPECT_EQ(dev.counters().queue_inserts, 500u);
}

TEST(Config, PresetsMatchPaperHardware) {
  const auto titan = gtx_titan();
  EXPECT_EQ(titan.num_sms, 14u);
  EXPECT_NEAR(titan.clock_ghz, 0.837, 1e-9);
  EXPECT_EQ(titan.memory_bytes, 6ull << 30);

  const auto m2090 = tesla_m2090();
  EXPECT_EQ(m2090.num_sms, 16u);
  EXPECT_NEAR(m2090.clock_ghz, 1.3, 1e-9);
  EXPECT_EQ(m2090.memory_bytes, 6ull << 30);
}

TEST(Config, DeviceThreads) {
  DeviceConfig cfg;
  cfg.num_sms = 4;
  cfg.threads_per_block = 128;
  EXPECT_EQ(cfg.device_threads(), 512u);
}

TEST(Counters, AggregationSums) {
  Counters a, b;
  a.edges_traversed = 3;
  a.atomic_ops = 1;
  b.edges_traversed = 4;
  b.roots_processed = 2;
  a += b;
  EXPECT_EQ(a.edges_traversed, 7u);
  EXPECT_EQ(a.atomic_ops, 1u);
  EXPECT_EQ(a.roots_processed, 2u);
}

}  // namespace
