// Cross-engine consistency sweep: on unstructured Erdős–Rényi controls
// (multiple seeds and densities, including disconnected regimes), every
// BC engine in the library — seven GPU-model kernels, two CPU engines,
// and the weighted engines under unit weights — must produce one answer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>

#include "core/bc.hpp"
#include "cpu/brandes.hpp"
#include "cpu/parallel_brandes.hpp"
#include "cpu/weighted_brandes.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/storage/compressed.hpp"
#include "kernels/kernels.hpp"
#include "kernels/weighted.hpp"

namespace {

using namespace hbc;
using graph::CSRGraph;

struct SweepCase {
  std::uint64_t seed;
  std::uint32_t n;
  std::uint64_t m;
};

class ConsistencySweep : public testing::TestWithParam<SweepCase> {};

TEST_P(ConsistencySweep, AllEnginesAgree) {
  const auto& c = GetParam();
  const CSRGraph g =
      graph::gen::erdos_renyi({.num_vertices = c.n, .num_edges = c.m, .seed = c.seed});
  const auto oracle = cpu::brandes(g).bc;

  auto check = [&](const std::vector<double>& scores, const char* label) {
    ASSERT_EQ(scores.size(), oracle.size()) << label;
    for (std::size_t v = 0; v < oracle.size(); ++v) {
      EXPECT_NEAR(scores[v], oracle[v], 1e-8 * std::max(1.0, oracle[v]))
          << label << " vertex " << v;
    }
  };

  kernels::RunConfig config;
  config.device = gpusim::gtx_titan();
  config.sampling.n_samps = 8;
  config.hybrid.alpha = 16;
  config.hybrid.beta = 16;
  for (const auto strategy :
       {kernels::Strategy::VertexParallel, kernels::Strategy::EdgeParallel,
        kernels::Strategy::GpuFan, kernels::Strategy::WorkEfficient,
        kernels::Strategy::Hybrid, kernels::Strategy::Sampling,
        kernels::Strategy::DirectionOptimized}) {
    check(kernels::run_strategy(strategy, g, config).bc, kernels::to_string(strategy));
  }

  kernels::RunConfig pred = config;
  pred.use_predecessor_bitmap = true;
  check(kernels::run_work_efficient(g, pred).bc, "we+pred-bitmap");

  check(cpu::parallel_brandes(g, {.sources = {}, .num_threads = 3}).bc, "cpu-parallel");

  const cpu::WeightArray unit(g.num_directed_edges(), 1.0);
  check(cpu::weighted_brandes(g, unit).bc, "dijkstra-unit");
  kernels::WeightedConfig wc;
  wc.base.device = gpusim::gtx_titan();
  wc.strategy = kernels::WeightedStrategy::BellmanFordEdgeParallel;
  check(kernels::run_weighted_bc(g, unit, wc).bc, "bellman-ford-unit");
  wc.strategy = kernels::WeightedStrategy::NearFarWorkEfficient;
  check(kernels::run_weighted_bc(g, unit, wc).bc, "near-far-unit");
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    cases.push_back({seed, 128, 192});    // sparse, disconnected
    cases.push_back({seed, 128, 512});    // connected, sparse
    cases.push_back({seed, 96, 1800});    // dense
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(ErControls, ConsistencySweep, testing::ValuesIn(sweep_cases()),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_m" +
                                  std::to_string(info.param.m) + "_s" +
                                  std::to_string(info.param.seed);
                         });

// ---------------------------------------------------------------------------
// Storage-backing sweep (docs/storage.md acceptance criterion): every
// strategy, at host thread counts {1, 2, 8}, must produce BITWISE-identical
// scores whether the graph lives on the heap, in an mmap'd .hbcg, or behind
// the varint-compressed adjacency (heap- or file-backed). memcmp, not
// EXPECT_NEAR: the backings preserve iteration order exactly, so the
// floating-point association is the same and the doubles must match to the
// last bit.

class StorageBackingSweep : public testing::TestWithParam<core::Strategy> {};

TEST_P(StorageBackingSweep, BitwiseIdenticalAcrossBackingsAndThreads) {
  const core::Strategy strategy = GetParam();
  const CSRGraph heap =
      graph::gen::erdos_renyi({.num_vertices = 128, .num_edges = 512, .seed = 77});

  // Unique per test process: with gtest_discover_tests each parameterized
  // instance is its own ctest entry, and a parallel ctest run would have
  // one instance truncate the file while another still computes from its
  // mapping of it (SIGBUS).
  const std::string stem =
      testing::TempDir() + "sweep-" + std::to_string(static_cast<int>(strategy));
  const std::string raw = stem + ".hbcg";
  const std::string comp = stem + ".hbcgz";
  graph::io::save_binary_v2(heap, raw, /*compress=*/false);
  graph::io::save_binary_v2(heap, comp, /*compress=*/true);

  struct Backing {
    const char* name;
    CSRGraph g;
  };
  const Backing backings[] = {
      {"mapped", graph::io::open_mapped(raw)},
      {"compressed-heap",
       CSRGraph(graph::storage::CompressedStorage::compress(
           heap.row_offsets(), heap.col_indices(), heap.undirected()))},
      {"compressed-mapped", graph::io::open_mapped(comp)},
  };

  for (const std::size_t threads : {1u, 2u, 8u}) {
    core::Options opt;
    opt.strategy = strategy;
    opt.cpu_threads = threads;
    const std::vector<double> base = core::compute(heap, opt).scores;
    for (const Backing& b : backings) {
      const std::vector<double> scores = core::compute(b.g, opt).scores;
      ASSERT_EQ(scores.size(), base.size()) << b.name;
      EXPECT_EQ(0, std::memcmp(scores.data(), base.data(),
                               base.size() * sizeof(double)))
          << b.name << " diverges from heap at threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StorageBackingSweep,
    testing::Values(core::Strategy::CpuSerial, core::Strategy::CpuParallel,
                    core::Strategy::CpuFineGrained, core::Strategy::VertexParallel,
                    core::Strategy::EdgeParallel, core::Strategy::GpuFan,
                    core::Strategy::WorkEfficient, core::Strategy::Hybrid,
                    core::Strategy::Sampling, core::Strategy::DirectionOptimized),
    [](const auto& info) {
      std::string name = core::to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
