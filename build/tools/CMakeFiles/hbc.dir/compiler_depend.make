# Empty compiler generated dependencies file for hbc.
# This may be replaced when dependencies are built.
