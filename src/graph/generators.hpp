#pragma once

// Synthetic graph generators covering every structure class in the paper's
// Table II. Each generator is deterministic in (parameters, seed) and is
// the stand-in for the corresponding published dataset (see DESIGN.md §2):
//
//   rgg            <-> rgg_n_2_{15..20}      random geometric (high diameter)
//   delaunay_mesh  <-> delaunay_n{10..20}    planar triangulation (deg ~6)
//   kronecker      <-> kron_g500-logn20      R-MAT / Graph500 (scale-free,
//                                            tiny diameter, isolated verts)
//   road           <-> luxembourg.osm        road map (deg <=4, huge diameter)
//   small_world    <-> smallworld            Watts–Strogatz ring
//   scale_free     <-> caidaRouterLevel,     Barabási–Albert preferential
//                      loc-gowalla             attachment
//   web_crawl      <-> cnr-2000              Kumar et al. copying model
//   mesh2d         <-> af_shell9             regular 2-D stencil mesh
//
// All generators return symmetrized simple CSR graphs.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace hbc::graph::gen {

/// Random geometric graph: n points uniform in the unit square, vertices
/// closer than `radius` connected. radius <= 0 selects the connectivity
/// threshold scaled to hit `target_avg_degree` (DIMACS rgg instances have
/// average directed degree ~13).
struct RggParams {
  std::uint32_t scale = 14;           // n = 2^scale
  double radius = 0.0;                // 0 => derive from target_avg_degree
  double target_avg_degree = 13.0;    // directed average degree
  std::uint64_t seed = 1;
};
CSRGraph rgg(const RggParams& params);

/// Delaunay-like mesh: jittered sqrt(n) x sqrt(n) grid triangulated with
/// alternating diagonals. Average degree ~6 and O(sqrt n) diameter — the
/// structural properties of the DIMACS delaunay_n* family (a true Delaunay
/// triangulation also averages degree 6 by Euler's formula).
struct MeshParams {
  std::uint32_t scale = 14;  // n = 2^scale (rounded to a full grid)
  std::uint64_t seed = 1;
};
CSRGraph delaunay_mesh(const MeshParams& params);

/// Regular 2-D 9-point stencil mesh (each interior vertex linked to its 8
/// neighbours) — a proxy for the af_shell9 sheet-metal-forming FEM mesh
/// (degree-39 stencils, diameter ~500): low-variance degree, huge diameter.
struct Mesh2dParams {
  std::uint32_t scale = 14;   // n = 2^scale (rounded to a full grid)
  std::uint32_t halo = 2;     // stencil radius; 2 gives degree ~24
  /// Height:width ratio of the sheet. af_shell9 is an elongated metal
  /// sheet (diameter 497 at n=505k, well past the square-grid value), so
  /// the proxy defaults to a 4:1 strip.
  std::uint32_t aspect = 4;
};
CSRGraph mesh2d(const Mesh2dParams& params);

/// Graph500-style Kronecker (R-MAT) generator. Produces skewed degrees,
/// tiny diameter, and — exactly as §V.D notes for kron_g500 — a sizable
/// share of isolated vertices.
struct KroneckerParams {
  std::uint32_t scale = 14;        // n = 2^scale
  std::uint32_t edge_factor = 16;  // undirected edges ~= edge_factor * n
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  std::uint64_t seed = 1;
};
CSRGraph kronecker(const KroneckerParams& params);

/// Road-network proxy: randomized spanning structure over a grid (maze
/// carving) plus a small fraction of extra grid edges. Degree <= 4,
/// diameter far beyond sqrt(n) — the luxembourg.osm profile (avg degree
/// 2.1, diameter 1336 at n=115k).
struct RoadParams {
  std::uint32_t scale = 14;       // n = 2^scale (rounded to a full grid)
  double extra_edge_fraction = 0.04;  // loops added on top of the tree
  std::uint64_t seed = 1;
};
CSRGraph road(const RoadParams& params);

/// Watts–Strogatz small world: ring lattice with k neighbours per side
/// rewired with probability p. The paper's `smallworld` dataset is n=100k,
/// m=500k (k=5 per side), diameter 9.
struct SmallWorldParams {
  std::uint32_t num_vertices = 1u << 14;
  std::uint32_t k = 5;      // neighbours on EACH side => degree 2k
  double rewire_p = 0.1;
  std::uint64_t seed = 1;
};
CSRGraph small_world(const SmallWorldParams& params);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices with probability proportional to degree.
/// Power-law degrees, log diameter — caidaRouterLevel / loc-gowalla class.
struct ScaleFreeParams {
  std::uint32_t num_vertices = 1u << 14;
  std::uint32_t attach = 3;
  std::uint64_t seed = 1;
};
CSRGraph scale_free(const ScaleFreeParams& params);

/// Erdős–Rényi G(n, m): exactly `num_edges` distinct undirected edges
/// drawn uniformly. Not one of Table II's classes — used by tests as an
/// unstructured control input and by the ER-vs-structured comparisons.
struct ErdosRenyiParams {
  std::uint32_t num_vertices = 1u << 12;
  std::uint64_t num_edges = 1u << 14;
  std::uint64_t seed = 1;
};
CSRGraph erdos_renyi(const ErdosRenyiParams& params);

/// Kumar et al. copying model for web graphs: a new page copies a random
/// prototype's links with probability (1 - random_p) per link, producing
/// hubs plus dense local clusters — the cnr-2000 web-crawl profile.
struct WebCrawlParams {
  std::uint32_t num_vertices = 1u << 14;
  std::uint32_t out_links = 8;
  double random_p = 0.45;
  std::uint64_t seed = 1;
};
CSRGraph web_crawl(const WebCrawlParams& params);

// ---------------------------------------------------------------------
// Registry: name -> generator closure at a given scale, used by benches
// to enumerate the Table II stand-ins uniformly.

struct NamedGraph {
  std::string name;         // paper dataset it stands in for
  std::string family;       // generator family
  std::function<CSRGraph(std::uint32_t scale, std::uint64_t seed)> make;
  /// Scale the benches run by default. High-diameter families need a
  /// larger n for their diameter (the quantity the paper's speedups are
  /// proportional to) to express itself; scale-free families saturate
  /// earlier and stay cheap.
  std::uint32_t default_scale = 13;
  /// Default BC-root budget for the benches. Edge-parallel costs
  /// O(D * m) per root functionally, so high-diameter families get a
  /// smaller budget; cheap low-diameter families get enough roots to
  /// amortize the sampling kernel's probe phase as the paper does.
  std::uint32_t default_roots = 64;
};

/// The five structure classes of Fig 3 / Table I (rgg, delaunay, kron,
/// road, smallworld).
std::vector<NamedGraph> figure3_family();

/// The eight-graph benchmark suite of Fig 4 / Table III.
std::vector<NamedGraph> table3_family();

/// Look up any generator family by name ("rgg", "delaunay", "kron",
/// "road", "smallworld", "scalefree", "web", "mesh2d"); throws
/// std::invalid_argument for unknown names.
NamedGraph family_by_name(const std::string& name);

/// The 9-vertex, 10-edge toy graph of the paper's Figure 1 (vertex labels
/// shifted to 0-based: paper vertex k is our k-1). Vertex 3 (paper's 4)
/// bridges the two halves; paper vertices 6, 8, 9 have BC exactly 0.
CSRGraph figure1_graph();

}  // namespace hbc::graph::gen
