// Wire-codec tests: round-trips for every message type, the malformed-frame
// property suite (truncation at every prefix length, oversize length
// prefixes, bad magic/version/type, trailing bytes, out-of-domain enums),
// and a deterministic mutation fuzzer. The malformed cases assert the
// typed-DecodeStatus contract — never an exception, never an out-of-bounds
// read — and CI runs this binary under ASan so "never OOB" is checked by
// the sanitizer, not by faith.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "net/wire.hpp"
#include "util/rng.hpp"

namespace wire = hbc::net::wire;
using wire::DecodeStatus;
using wire::Frame;
using wire::MsgType;

namespace {

// Decode one frame from `bytes` and, if it parses, the typed payload too.
// Returns the frame-level status; payload statuses are checked by callers.
DecodeStatus extract(const std::vector<std::uint8_t>& bytes, Frame& f) {
  std::size_t consumed = 0;
  return wire::extract_frame(std::span<const std::uint8_t>(bytes), f, consumed);
}

wire::SubmitShardMsg sample_shard() {
  wire::SubmitShardMsg m;
  m.graph_id = "g0";
  m.fingerprint = 0x0123456789abcdefull;
  m.shard_index = 7;
  m.mode = wire::ShardMode::Partial;
  m.strategy = 6;  // WorkEfficient
  m.grid_blocks = 1;
  m.seed = 42;
  m.cpu_threads = 3;
  m.max_root_attempts = 2;
  m.device_num_sms = 14;
  m.hybrid_alpha = 768;
  m.hybrid_beta = 512;
  m.sampling_n_samps = 256;
  m.sampling_gamma = 3.5;
  m.sampling_min_frontier = 128;
  m.deadline_ms = 1234;
  m.roots = {0, 14, 28, 42};
  return m;
}

}  // namespace

TEST(NetCodec, HeaderLayoutIsExactlyTwentyBytes) {
  const std::vector<std::uint8_t> bytes = wire::encode(wire::DrainMsg{}, 0x1122334455667788ull);
  ASSERT_EQ(bytes.size(), wire::kHeaderSize);
  // magic "HBCN" little-endian, version, type, request id, zero length.
  EXPECT_EQ(bytes[0], 'H');
  EXPECT_EQ(bytes[1], 'B');
  EXPECT_EQ(bytes[2], 'C');
  EXPECT_EQ(bytes[3], 'N');
  EXPECT_EQ(bytes[4], wire::kProtocolVersion & 0xff);
  EXPECT_EQ(bytes[6], static_cast<std::uint8_t>(MsgType::Drain));
  EXPECT_EQ(bytes[8], 0x88);   // request id, little-endian low byte first
  EXPECT_EQ(bytes[15], 0x11);
  EXPECT_EQ(bytes[16] | bytes[17] | bytes[18] | bytes[19], 0);
}

TEST(NetCodec, HelloRoundTrip) {
  wire::HelloMsg in;
  in.worker_name = "worker-a";
  in.shard_slots = 8;
  Frame f;
  ASSERT_EQ(extract(wire::encode(in, 5), f), DecodeStatus::Ok);
  EXPECT_EQ(f.type, MsgType::Hello);
  EXPECT_EQ(f.request_id, 5u);
  wire::HelloMsg out;
  ASSERT_EQ(wire::decode(f, out), DecodeStatus::Ok);
  EXPECT_EQ(out.protocol, wire::kProtocolVersion);
  EXPECT_EQ(out.worker_name, "worker-a");
  EXPECT_EQ(out.shard_slots, 8u);
}

TEST(NetCodec, LoadGraphRoundTripWithHistory) {
  wire::LoadGraphMsg in;
  in.graph_id = "web";
  in.spec = "gen:scalefree:12:7";
  in.fingerprint = 0xdeadbeefcafef00dull;
  in.updates = {{1, 2, 1}, {3, 4, 0}, {5, 6, 1}};
  in.fingerprint_after = 0x1111222233334444ull;
  Frame f;
  ASSERT_EQ(extract(wire::encode(in, 9), f), DecodeStatus::Ok);
  wire::LoadGraphMsg out;
  ASSERT_EQ(wire::decode(f, out), DecodeStatus::Ok);
  EXPECT_EQ(out.graph_id, in.graph_id);
  EXPECT_EQ(out.spec, in.spec);
  EXPECT_EQ(out.fingerprint, in.fingerprint);
  ASSERT_EQ(out.updates.size(), 3u);
  EXPECT_EQ(out.updates[1].u, 3u);
  EXPECT_EQ(out.updates[1].insert, 0u);
  EXPECT_EQ(out.fingerprint_after, in.fingerprint_after);
}

TEST(NetCodec, SubmitShardRoundTrip) {
  const wire::SubmitShardMsg in = sample_shard();
  Frame f;
  ASSERT_EQ(extract(wire::encode(in, 77), f), DecodeStatus::Ok);
  wire::SubmitShardMsg out;
  ASSERT_EQ(wire::decode(f, out), DecodeStatus::Ok);
  EXPECT_EQ(out.graph_id, in.graph_id);
  EXPECT_EQ(out.fingerprint, in.fingerprint);
  EXPECT_EQ(out.shard_index, in.shard_index);
  EXPECT_EQ(out.mode, in.mode);
  EXPECT_EQ(out.strategy, in.strategy);
  EXPECT_EQ(out.grid_blocks, in.grid_blocks);
  EXPECT_EQ(out.seed, in.seed);
  EXPECT_EQ(out.cpu_threads, in.cpu_threads);
  EXPECT_EQ(out.max_root_attempts, in.max_root_attempts);
  EXPECT_EQ(out.device_num_sms, in.device_num_sms);
  EXPECT_EQ(out.hybrid_alpha, in.hybrid_alpha);
  EXPECT_EQ(out.hybrid_beta, in.hybrid_beta);
  EXPECT_EQ(out.sampling_n_samps, in.sampling_n_samps);
  EXPECT_DOUBLE_EQ(out.sampling_gamma, in.sampling_gamma);
  EXPECT_EQ(out.sampling_min_frontier, in.sampling_min_frontier);
  EXPECT_EQ(out.deadline_ms, in.deadline_ms);
  EXPECT_EQ(out.roots, in.roots);
}

TEST(NetCodec, SubmitShardBudgetRoundTripV2) {
  wire::SubmitShardMsg in = sample_shard();
  in.mode = wire::ShardMode::Whole;
  in.roots.clear();
  in.has_budget = 1;
  in.accuracy_target = 0.05;
  in.budget_max_roots = 512;
  in.allow_refinement = 1;
  Frame f;
  ASSERT_EQ(extract(wire::encode(in, 21), f), DecodeStatus::Ok);
  EXPECT_EQ(f.version, 2u);
  wire::SubmitShardMsg out;
  ASSERT_EQ(wire::decode(f, out), DecodeStatus::Ok);
  EXPECT_EQ(out.has_budget, 1u);
  EXPECT_DOUBLE_EQ(out.accuracy_target, 0.05);
  EXPECT_EQ(out.budget_max_roots, 512u);
  EXPECT_EQ(out.allow_refinement, 1u);
}

TEST(NetCodec, SubmitShardEncodedAtV1DropsTheBudget) {
  // Version negotiation: a coordinator talking to a v1 worker encodes at
  // v1 — the budget block is not written, and a v2 decoder reading the
  // v1 frame leaves the budget inactive (exact query).
  wire::SubmitShardMsg in = sample_shard();
  in.has_budget = 1;
  in.accuracy_target = 0.25;
  in.budget_max_roots = 256;
  const std::vector<std::uint8_t> v1 = wire::encode(in, 22, 1);
  const std::vector<std::uint8_t> v2 = wire::encode(in, 22, 2);
  EXPECT_EQ(v2.size(), v1.size() + 14);  // u8 + f64 + u32 + u8
  Frame f;
  ASSERT_EQ(extract(v1, f), DecodeStatus::Ok);
  EXPECT_EQ(f.version, 1u);
  wire::SubmitShardMsg out;
  ASSERT_EQ(wire::decode(f, out), DecodeStatus::Ok);
  EXPECT_EQ(out.has_budget, 0u);
  EXPECT_EQ(out.accuracy_target, 0.0);
  EXPECT_EQ(out.budget_max_roots, 0u);
}

TEST(NetCodec, MalformedBudgetBytesAreBadValue) {
  wire::SubmitShardMsg in = sample_shard();
  in.has_budget = 1;

  const auto decode_with_target = [&](double target) {
    wire::SubmitShardMsg m = in;
    m.accuracy_target = target;
    Frame f;
    EXPECT_EQ(extract(wire::encode(m, 23), f), DecodeStatus::Ok);
    wire::SubmitShardMsg out;
    return wire::decode(f, out);
  };
  EXPECT_EQ(decode_with_target(std::numeric_limits<double>::quiet_NaN()),
            DecodeStatus::BadValue);
  EXPECT_EQ(decode_with_target(std::numeric_limits<double>::infinity()),
            DecodeStatus::BadValue);
  EXPECT_EQ(decode_with_target(-0.25), DecodeStatus::BadValue);
  EXPECT_EQ(decode_with_target(1.5), DecodeStatus::BadValue);
  EXPECT_EQ(decode_with_target(1.0), DecodeStatus::Ok);

  // Non-boolean flag bytes are out of domain.
  wire::SubmitShardMsg flags = in;
  flags.has_budget = 2;
  Frame f;
  ASSERT_EQ(extract(wire::encode(flags, 24), f), DecodeStatus::Ok);
  wire::SubmitShardMsg out;
  EXPECT_EQ(wire::decode(f, out), DecodeStatus::BadValue);

  // A v2 frame truncated mid-budget is Truncated, never silently v1.
  std::vector<std::uint8_t> bytes = wire::encode(in, 25);
  bytes.resize(bytes.size() - 6);
  const std::uint32_t new_len =
      static_cast<std::uint32_t>(bytes.size() - wire::kHeaderSize);
  bytes[16] = static_cast<std::uint8_t>(new_len);
  bytes[17] = static_cast<std::uint8_t>(new_len >> 8);
  bytes[18] = static_cast<std::uint8_t>(new_len >> 16);
  bytes[19] = static_cast<std::uint8_t>(new_len >> 24);
  ASSERT_EQ(extract(bytes, f), DecodeStatus::Ok);
  EXPECT_EQ(wire::decode(f, out), DecodeStatus::Truncated);
}

TEST(NetCodec, ShardResultEstimateRoundTripV2) {
  wire::ShardResultMsg in;
  in.shard_index = 1;
  in.ok = 1;
  in.roots_processed = 512;
  in.scores = {1.0, 2.0};
  in.has_estimate = 1;
  in.est_roots_used = 512;
  in.est_stderr = 0.014;
  in.est_rung = 1;
  in.est_refining = 1;
  Frame f;
  ASSERT_EQ(extract(wire::encode(in, 26), f), DecodeStatus::Ok);
  wire::ShardResultMsg out;
  ASSERT_EQ(wire::decode(f, out), DecodeStatus::Ok);
  EXPECT_EQ(out.has_estimate, 1u);
  EXPECT_EQ(out.est_roots_used, 512u);
  EXPECT_DOUBLE_EQ(out.est_stderr, 0.014);
  EXPECT_EQ(out.est_rung, 1u);
  EXPECT_EQ(out.est_refining, 1u);

  // v1 encoding omits the estimate; the decoder leaves the defaults.
  ASSERT_EQ(extract(wire::encode(in, 27, 1), f), DecodeStatus::Ok);
  wire::ShardResultMsg v1;
  ASSERT_EQ(wire::decode(f, v1), DecodeStatus::Ok);
  EXPECT_EQ(v1.has_estimate, 0u);

  // A negative (or NaN) stderr is out of domain.
  wire::ShardResultMsg bad = in;
  bad.est_stderr = -1.0;
  ASSERT_EQ(extract(wire::encode(bad, 28), f), DecodeStatus::Ok);
  EXPECT_EQ(wire::decode(f, out), DecodeStatus::BadValue);
}

TEST(NetCodec, ShardResultScoresAreBitExact) {
  wire::ShardResultMsg in;
  in.shard_index = 3;
  in.roots_processed = 999;
  in.compute_ms = 12.25;
  // Adversarial doubles: the codec must move raw bit patterns, not values.
  in.scores = {0.0, -0.0, 1.0 / 3.0, std::numeric_limits<double>::infinity(),
               -std::numeric_limits<double>::infinity(),
               std::numeric_limits<double>::quiet_NaN(),
               std::numeric_limits<double>::denorm_min(),
               std::numeric_limits<double>::max()};
  Frame f;
  ASSERT_EQ(extract(wire::encode(in, 1), f), DecodeStatus::Ok);
  wire::ShardResultMsg out;
  ASSERT_EQ(wire::decode(f, out), DecodeStatus::Ok);
  ASSERT_EQ(out.scores.size(), in.scores.size());
  for (std::size_t i = 0; i < in.scores.size(); ++i) {
    std::uint64_t a = 0, b = 0;
    std::memcpy(&a, &in.scores[i], sizeof(a));
    std::memcpy(&b, &out.scores[i], sizeof(b));
    EXPECT_EQ(a, b) << "score " << i << " bit pattern changed in transit";
  }
  EXPECT_EQ(out.roots_processed, 999u);
}

TEST(NetCodec, RemainingMessagesRoundTrip) {
  Frame f;
  {
    wire::HelloAckMsg in{42, "coord"};
    ASSERT_EQ(extract(wire::encode(in, 2), f), DecodeStatus::Ok);
    wire::HelloAckMsg out;
    ASSERT_EQ(wire::decode(f, out), DecodeStatus::Ok);
    EXPECT_EQ(out.worker_slot, 42u);
    EXPECT_EQ(out.coordinator_name, "coord");
  }
  {
    wire::GraphLoadedMsg in;
    in.graph_id = "g";
    in.ok = 0;
    in.fingerprint = 0xfeedull;
    in.error = "fingerprint mismatch";
    ASSERT_EQ(extract(wire::encode(in, 3), f), DecodeStatus::Ok);
    wire::GraphLoadedMsg out;
    ASSERT_EQ(wire::decode(f, out), DecodeStatus::Ok);
    EXPECT_EQ(out.ok, 0u);
    EXPECT_EQ(out.error, "fingerprint mismatch");
  }
  {
    wire::HeartbeatMsg in{123456789ull, 4};
    ASSERT_EQ(extract(wire::encode(in, 4), f), DecodeStatus::Ok);
    wire::HeartbeatMsg out;
    ASSERT_EQ(wire::decode(f, out), DecodeStatus::Ok);
    EXPECT_EQ(out.seq, 123456789ull);
    EXPECT_EQ(out.inflight, 4u);
  }
  {
    wire::HeartbeatAckMsg in{55};
    ASSERT_EQ(extract(wire::encode(in, 5), f), DecodeStatus::Ok);
    wire::HeartbeatAckMsg out;
    ASSERT_EQ(wire::decode(f, out), DecodeStatus::Ok);
    EXPECT_EQ(out.seq, 55u);
  }
  {
    wire::QuarantineMsg in{wire::HealthState::Probation, "silent 250ms"};
    ASSERT_EQ(extract(wire::encode(in, 21), f), DecodeStatus::Ok);
    EXPECT_EQ(f.type, MsgType::Quarantine);
    wire::QuarantineMsg out;
    ASSERT_EQ(wire::decode(f, out), DecodeStatus::Ok);
    EXPECT_EQ(out.state, wire::HealthState::Probation);
    EXPECT_EQ(out.reason, "silent 250ms");
  }
  {
    wire::MutateMsg in;
    in.graph_id = "g";
    in.updates = {{9, 8, 0}};
    in.fingerprint_after = 0xabcull;
    ASSERT_EQ(extract(wire::encode(in, 6), f), DecodeStatus::Ok);
    wire::MutateMsg out;
    ASSERT_EQ(wire::decode(f, out), DecodeStatus::Ok);
    ASSERT_EQ(out.updates.size(), 1u);
    EXPECT_EQ(out.updates[0].v, 8u);
    EXPECT_EQ(out.fingerprint_after, 0xabcull);
  }
  {
    wire::MutateDoneMsg in;
    in.graph_id = "g";
    in.fingerprint = 0x42ull;
    ASSERT_EQ(extract(wire::encode(in, 7), f), DecodeStatus::Ok);
    wire::MutateDoneMsg out;
    ASSERT_EQ(wire::decode(f, out), DecodeStatus::Ok);
    EXPECT_EQ(out.fingerprint, 0x42ull);
  }
  {
    ASSERT_EQ(extract(wire::encode(wire::DrainMsg{}, 8), f), DecodeStatus::Ok);
    wire::DrainMsg out;
    EXPECT_EQ(wire::decode(f, out), DecodeStatus::Ok);
  }
  {
    wire::GoodbyeMsg in{"drained"};
    ASSERT_EQ(extract(wire::encode(in, 9), f), DecodeStatus::Ok);
    wire::GoodbyeMsg out;
    ASSERT_EQ(wire::decode(f, out), DecodeStatus::Ok);
    EXPECT_EQ(out.reason, "drained");
  }
  {
    wire::ErrorMsg in{7, "boom"};
    ASSERT_EQ(extract(wire::encode(in, 10), f), DecodeStatus::Ok);
    wire::ErrorMsg out;
    ASSERT_EQ(wire::decode(f, out), DecodeStatus::Ok);
    EXPECT_EQ(out.code, 7u);
    EXPECT_EQ(out.message, "boom");
  }
}

// --- malformed input: the typed-error contract ---------------------------

TEST(NetCodec, EveryPrefixOfAValidFrameNeedsMore) {
  const std::vector<std::uint8_t> full = wire::encode(sample_shard(), 11);
  Frame f;
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::vector<std::uint8_t> prefix(full.begin(),
                                     full.begin() + static_cast<std::ptrdiff_t>(len));
    std::size_t consumed = 0;
    EXPECT_EQ(wire::extract_frame(prefix, f, consumed), DecodeStatus::NeedMore)
        << "prefix length " << len;
    EXPECT_EQ(consumed, 0u);
  }
  EXPECT_EQ(extract(full, f), DecodeStatus::Ok);
}

TEST(NetCodec, TruncatedPayloadIsTypedNotUB) {
  // Valid frame, then shave bytes off the payload AND fix the length
  // prefix so extract succeeds but the typed decode hits the wall.
  const std::vector<std::uint8_t> full = wire::encode(sample_shard(), 12);
  for (std::size_t cut = 1; cut < full.size() - wire::kHeaderSize; ++cut) {
    std::vector<std::uint8_t> bytes(full.begin(),
                                    full.end() - static_cast<std::ptrdiff_t>(cut));
    const std::uint32_t new_len =
        static_cast<std::uint32_t>(bytes.size() - wire::kHeaderSize);
    bytes[16] = static_cast<std::uint8_t>(new_len);
    bytes[17] = static_cast<std::uint8_t>(new_len >> 8);
    bytes[18] = static_cast<std::uint8_t>(new_len >> 16);
    bytes[19] = static_cast<std::uint8_t>(new_len >> 24);
    Frame f;
    ASSERT_EQ(extract(bytes, f), DecodeStatus::Ok) << "cut " << cut;
    wire::SubmitShardMsg out;
    const DecodeStatus s = wire::decode(f, out);
    EXPECT_TRUE(s == DecodeStatus::Truncated || s == DecodeStatus::BadValue ||
                s == DecodeStatus::TrailingBytes)
        << "cut " << cut << " -> status " << static_cast<int>(s);
    EXPECT_NE(s, DecodeStatus::Ok) << "cut " << cut;
  }
}

TEST(NetCodec, OversizeLengthPrefixIsRejectedWithoutAllocation) {
  std::vector<std::uint8_t> bytes = wire::encode(wire::DrainMsg{}, 13);
  // Claim a payload just over the cap; no such bytes follow. The codec
  // must reject on the prefix alone — not wait for 64 MiB that never comes.
  const std::uint32_t huge = wire::kMaxPayload + 1;
  bytes[16] = static_cast<std::uint8_t>(huge);
  bytes[17] = static_cast<std::uint8_t>(huge >> 8);
  bytes[18] = static_cast<std::uint8_t>(huge >> 16);
  bytes[19] = static_cast<std::uint8_t>(huge >> 24);
  Frame f;
  EXPECT_EQ(extract(bytes, f), DecodeStatus::Oversize);
}

TEST(NetCodec, HostileArrayCountIsValidatedBeforeAllocating) {
  // A ShardResult whose score *count* claims 2^29 doubles but whose
  // payload holds none: the decoder must fail typed, not allocate 4 GiB.
  // Encode at v1, where the u32 count of the empty scores array is the
  // payload's last 4 bytes (v2 appends the estimate block after it).
  std::vector<std::uint8_t> bytes = wire::encode(wire::ShardResultMsg{}, 14, 1);
  ASSERT_GE(bytes.size(), 4u);
  bytes[bytes.size() - 4] = 0x00;
  bytes[bytes.size() - 3] = 0x00;
  bytes[bytes.size() - 2] = 0x00;
  bytes[bytes.size() - 1] = 0x20;  // 0x20000000 = 2^29 elements
  Frame f;
  ASSERT_EQ(extract(bytes, f), DecodeStatus::Ok);
  wire::ShardResultMsg out;
  EXPECT_EQ(wire::decode(f, out), DecodeStatus::Truncated);
  EXPECT_TRUE(out.scores.empty());
}

TEST(NetCodec, BadMagicBadVersionUnknownType) {
  const std::vector<std::uint8_t> good = wire::encode(wire::DrainMsg{}, 15);
  Frame f;
  {
    std::vector<std::uint8_t> bytes = good;
    bytes[0] = 'X';
    EXPECT_EQ(extract(bytes, f), DecodeStatus::BadMagic);
  }
  {
    std::vector<std::uint8_t> bytes = good;
    bytes[4] = static_cast<std::uint8_t>(wire::kProtocolVersion + 1);
    EXPECT_EQ(extract(bytes, f), DecodeStatus::BadVersion);
  }
  {
    std::vector<std::uint8_t> bytes = good;
    bytes[6] = 200;  // no MsgType lives here
    bytes[7] = 0;
    EXPECT_EQ(extract(bytes, f), DecodeStatus::UnknownType);
  }
  {
    std::vector<std::uint8_t> bytes = good;
    bytes[6] = 0;  // type 0 is reserved / invalid
    bytes[7] = 0;
    EXPECT_EQ(extract(bytes, f), DecodeStatus::UnknownType);
  }
}

TEST(NetCodec, TrailingBytesInPayloadAreTyped) {
  wire::GoodbyeMsg in{"bye"};
  std::vector<std::uint8_t> bytes = wire::encode(in, 16);
  // Append junk to the payload and patch the length prefix to cover it.
  bytes.push_back(0xAA);
  bytes.push_back(0xBB);
  const std::uint32_t new_len =
      static_cast<std::uint32_t>(bytes.size() - wire::kHeaderSize);
  bytes[16] = static_cast<std::uint8_t>(new_len);
  bytes[17] = static_cast<std::uint8_t>(new_len >> 8);
  Frame f;
  ASSERT_EQ(extract(bytes, f), DecodeStatus::Ok);
  wire::GoodbyeMsg out;
  EXPECT_EQ(wire::decode(f, out), DecodeStatus::TrailingBytes);
}

TEST(NetCodec, OutOfDomainEnumsAreBadValue) {
  wire::SubmitShardMsg in = sample_shard();
  const std::vector<std::uint8_t> good = wire::encode(in, 17);
  // Find the mode byte by brute force: flip each payload byte to 0xFF and
  // require that NO single-byte corruption ever crashes; specifically the
  // mode/strategy corruptions must surface BadValue.
  std::size_t bad_value_seen = 0;
  for (std::size_t i = wire::kHeaderSize; i < good.size(); ++i) {
    std::vector<std::uint8_t> bytes = good;
    bytes[i] = 0xFF;
    Frame f;
    if (extract(bytes, f) != DecodeStatus::Ok) continue;
    wire::SubmitShardMsg out;
    const DecodeStatus s = wire::decode(f, out);
    if (s == DecodeStatus::BadValue) ++bad_value_seen;
  }
  // mode, strategy, halve, normalize are all range-checked single bytes.
  EXPECT_GE(bad_value_seen, 4u);
}

TEST(NetCodec, QuarantineStateOutOfDomainIsBadValue) {
  // HealthState is a range-checked u8 (the first payload byte): 3 names no
  // state and must surface typed, not be cast into the enum.
  std::vector<std::uint8_t> bytes =
      wire::encode(wire::QuarantineMsg{wire::HealthState::Healthy, "ok"}, 22);
  bytes[wire::kHeaderSize] = 3;
  Frame f;
  ASSERT_EQ(extract(bytes, f), DecodeStatus::Ok);
  wire::QuarantineMsg out;
  EXPECT_EQ(wire::decode(f, out), DecodeStatus::BadValue);
}

TEST(NetCodec, WrongFrameTypeForDecodeIsBadValue) {
  Frame f;
  ASSERT_EQ(extract(wire::encode(wire::DrainMsg{}, 18), f), DecodeStatus::Ok);
  wire::HelloMsg out;
  EXPECT_EQ(wire::decode(f, out), DecodeStatus::BadValue);
}

// --- deterministic mutation fuzz ----------------------------------------

TEST(NetCodec, MutationFuzzNeverCrashesAndStatusesAreTyped) {
  // Seeded Xoshiro mutations over every message type: random byte flips,
  // truncations, and splices. The property is "total function": every
  // input yields a DecodeStatus, and under ASan, no read strays.
  hbc::util::Xoshiro256 rng(20260809);
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.push_back(wire::encode(sample_shard(), 1));
  {
    wire::HelloMsg m;
    m.worker_name = "fuzz";
    corpus.push_back(wire::encode(m, 2));
  }
  {
    wire::LoadGraphMsg m;
    m.graph_id = "g";
    m.spec = "gen:rgg:10";
    m.updates = {{1, 2, 1}, {2, 3, 0}};
    corpus.push_back(wire::encode(m, 3));
  }
  {
    wire::ShardResultMsg m;
    m.scores = {1.0, 2.0, 3.0, 4.0};
    corpus.push_back(wire::encode(m, 4));
  }
  // Both protocol versions of the versioned messages: the mutations must
  // exercise the v1 (no trailing block) and v2 (required block) decoders.
  corpus.push_back(wire::encode(sample_shard(), 9, 1));
  {
    wire::ShardResultMsg m;
    m.scores = {5.0, 6.0};
    m.has_estimate = 1;
    m.est_roots_used = 256;
    corpus.push_back(wire::encode(m, 10, 1));
    corpus.push_back(wire::encode(m, 11, 2));
  }
  corpus.push_back(wire::encode(wire::ErrorMsg{1, "x"}, 5));
  corpus.push_back(wire::encode(wire::HeartbeatMsg{99, 2}, 6));
  corpus.push_back(wire::encode(wire::HeartbeatAckMsg{99}, 7));
  corpus.push_back(
      wire::encode(wire::QuarantineMsg{wire::HealthState::Quarantined, "chaos"}, 8));

  int ok_count = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<std::uint8_t> bytes = corpus[rng.next() % corpus.size()];
    const int mutations = 1 + static_cast<int>(rng.next() % 8);
    for (int k = 0; k < mutations; ++k) {
      switch (rng.next() % 4) {
        case 0:  // flip a byte
          if (!bytes.empty()) {
            bytes[rng.next() % bytes.size()] =
                static_cast<std::uint8_t>(rng.next());
          }
          break;
        case 1:  // truncate
          if (!bytes.empty()) bytes.resize(rng.next() % bytes.size());
          break;
        case 2:  // append junk
          bytes.push_back(static_cast<std::uint8_t>(rng.next()));
          break;
        case 3:  // splice another corpus entry's tail on
          if (!bytes.empty()) {
            const auto& other = corpus[rng.next() % corpus.size()];
            const std::size_t at = rng.next() % other.size();
            bytes.insert(bytes.end(), other.begin() + static_cast<std::ptrdiff_t>(at),
                         other.end());
          }
          break;
      }
    }
    Frame f;
    std::size_t consumed = 0;
    const DecodeStatus s =
        wire::extract_frame(std::span<const std::uint8_t>(bytes), f, consumed);
    ASSERT_LE(static_cast<int>(s), static_cast<int>(DecodeStatus::BadValue));
    if (s != DecodeStatus::Ok) continue;
    ++ok_count;
    ASSERT_LE(consumed, bytes.size());
    // Whatever type the mutated header claims: decode as that type AND as
    // a mismatched type; both must return a typed status.
    wire::SubmitShardMsg shard;
    wire::ShardResultMsg result;
    wire::LoadGraphMsg load;
    wire::HelloMsg hello;
    wire::ErrorMsg err;
    wire::HeartbeatMsg hb;
    wire::HeartbeatAckMsg hba;
    wire::QuarantineMsg quarantine;
    (void)wire::decode(f, shard);
    (void)wire::decode(f, result);
    (void)wire::decode(f, load);
    (void)wire::decode(f, hello);
    (void)wire::decode(f, err);
    (void)wire::decode(f, hb);
    (void)wire::decode(f, hba);
    (void)wire::decode(f, quarantine);
  }
  // The corpus is valid frames, so un-truncating mutations often survive
  // frame extraction — the fuzz must actually reach the payload decoders.
  EXPECT_GT(ok_count, 100);
}

TEST(NetCodec, StreamReassemblyAcrossArbitrarySplits) {
  // Concatenate several frames and feed the stream one byte at a time —
  // the receive-loop shape Conn::next_frame relies on.
  std::vector<std::uint8_t> stream;
  const std::vector<std::uint8_t> f1 = wire::encode(sample_shard(), 100);
  wire::ShardResultMsg r;
  r.scores = {0.5, 1.5};
  const std::vector<std::uint8_t> f2 = wire::encode(r, 101);
  const std::vector<std::uint8_t> f3 = wire::encode(wire::GoodbyeMsg{"eof"}, 102);
  stream.insert(stream.end(), f1.begin(), f1.end());
  stream.insert(stream.end(), f2.begin(), f2.end());
  stream.insert(stream.end(), f3.begin(), f3.end());

  std::vector<std::uint8_t> buf;
  std::vector<MsgType> seen;
  for (const std::uint8_t b : stream) {
    buf.push_back(b);
    for (;;) {
      Frame f;
      std::size_t consumed = 0;
      const DecodeStatus s =
          wire::extract_frame(std::span<const std::uint8_t>(buf), f, consumed);
      if (s == DecodeStatus::NeedMore) break;
      ASSERT_EQ(s, DecodeStatus::Ok);
      seen.push_back(f.type);
      buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(consumed));
    }
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], MsgType::SubmitShard);
  EXPECT_EQ(seen[1], MsgType::ShardResult);
  EXPECT_EQ(seen[2], MsgType::Goodbye);
  EXPECT_TRUE(buf.empty());
}
