# Empty compiler generated dependencies file for test_consistency_sweep.
# This may be replaced when dependencies are built.
