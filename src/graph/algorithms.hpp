#pragma once

// Host-side graph algorithms the evaluation depends on: plain BFS (the
// correctness oracle for every traversal kernel), connected components
// (TEPS adjustment for kron-style graphs with isolated vertices, §V.D),
// and pseudo-diameter (Table II's diameter column; classifies graphs as
// high- vs low-diameter for the experiments).

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace hbc::graph {

struct BFSResult {
  std::vector<std::uint32_t> distance;  // kInfDistance when unreached
  std::vector<VertexId> parent;         // kInvalidVertex for root/unreached
  std::uint32_t max_depth = 0;          // eccentricity of the source
  std::uint64_t reached = 0;            // vertices reached incl. the source
  /// Vertex-frontier size per BFS level; frontiers[0] == 1 (the source).
  std::vector<std::uint64_t> frontiers;
  /// Out-edges incident to each level's frontier (the edge frontier).
  std::vector<std::uint64_t> edge_frontiers;
};

BFSResult bfs(const CSRGraph& g, VertexId source);

struct ComponentsResult {
  std::vector<VertexId> component;       // component id per vertex (dense)
  std::vector<std::uint64_t> sizes;      // size per component id
  VertexId num_components = 0;
  std::uint64_t largest_size = 0;
  std::uint64_t isolated_vertices = 0;   // degree-0 vertices
};

ComponentsResult connected_components(const CSRGraph& g);

/// Double-sweep pseudo-diameter: BFS from `seed`, then BFS again from the
/// farthest vertex found. A lower bound on the true diameter that is exact
/// or near-exact on the graph classes used in the paper.
std::uint32_t pseudo_diameter(const CSRGraph& g, VertexId seed = 0, int sweeps = 4);

struct DegreeStats {
  VertexId max_degree = 0;
  double mean_degree = 0.0;
  double degree_stddev = 0.0;
  /// Coefficient of variation (stddev/mean) — the load-imbalance signal
  /// that separates scale-free graphs from meshes and road networks.
  double skew = 0.0;
};

DegreeStats degree_stats(const CSRGraph& g);

bool is_connected(const CSRGraph& g);

/// Average local clustering coefficient (Watts–Strogatz): the fraction of
/// closed triangles around each vertex, averaged over vertices of degree
/// >= 2. Together with the diameter this is the small-world signature
/// (§II.A). `sample_vertices` > 0 estimates from that many evenly spaced
/// vertices instead of all (exact = 0). Requires sorted adjacency (the
/// builder's default).
double clustering_coefficient(const CSRGraph& g, VertexId sample_vertices = 0);

}  // namespace hbc::graph
