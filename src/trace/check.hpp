#pragma once

// Validation for exported Chrome trace_event JSON. Used by tests and the
// hbc-trace-check tool; deliberately dependency-free (tiny recursive-
// descent JSON parser, no external libraries).

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace hbc::trace {

struct CheckResult {
  bool ok = false;
  std::vector<std::string> errors;  // empty when ok

  std::size_t total_events = 0;    // every entry in traceEvents
  std::size_t span_pairs = 0;      // matched B/E pairs
  std::size_t instants = 0;        // "i" events
  std::size_t counters = 0;        // "C" events
  std::size_t metadata = 0;        // "M" events

  std::string error_text() const;  // newline-joined errors
};

/// Validate a Chrome trace_event capture:
///   * the document parses as JSON and is {"traceEvents": [...]};
///   * every event is an object with string "name"/"ph" and numeric
///     "pid"/"tid", plus numeric "ts" for everything but metadata;
///   * per (pid, tid) timeline: "B"/"E" events balance as a stack with
///     matching names (proper nesting) and non-decreasing timestamps,
///     and no span is left open at the end.
/// Error strings carry event indices so failures are actionable.
CheckResult validate_chrome_trace(std::string_view json);

}  // namespace hbc::trace
