// Weighted (Dijkstra-based) Brandes: reduction to the unweighted case on
// unit weights, hand-checkable weighted instances, tie handling, and
// input validation.

#include <gtest/gtest.h>

#include <cmath>

#include "cpu/brandes.hpp"
#include "cpu/edge_bc.hpp"
#include "cpu/weighted_brandes.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace hbc;
using graph::CSRGraph;
using graph::Edge;
using graph::VertexId;

cpu::WeightArray unit_weights(const CSRGraph& g) {
  return cpu::WeightArray(g.num_directed_edges(), 1.0);
}

TEST(WeightedBrandes, UnitWeightsMatchUnweighted) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const CSRGraph g =
        graph::gen::scale_free({.num_vertices = 120, .attach = 2, .seed = seed});
    const auto unweighted = cpu::brandes(g).bc;
    const auto weighted = cpu::weighted_brandes(g, unit_weights(g));
    ASSERT_EQ(weighted.bc.size(), unweighted.size());
    for (std::size_t v = 0; v < unweighted.size(); ++v) {
      EXPECT_NEAR(weighted.bc[v], unweighted[v], 1e-7) << "vertex " << v;
    }
  }
}

TEST(WeightedBrandes, UniformScalingIsInvariant) {
  // Multiplying every weight by a constant leaves shortest paths (and BC)
  // unchanged.
  const CSRGraph g = graph::gen::small_world({.num_vertices = 150, .k = 3, .seed = 5});
  auto w = cpu::random_symmetric_weights(g, 1.0, 4.0, 11);
  const auto base = cpu::weighted_brandes(g, w);
  for (double& x : w) x *= 7.5;
  const auto scaled = cpu::weighted_brandes(g, w);
  for (std::size_t v = 0; v < base.bc.size(); ++v) {
    EXPECT_NEAR(base.bc[v], scaled.bc[v], 1e-7);
  }
}

TEST(WeightedBrandes, WeightsRerouteAroundExpensiveVertex) {
  // Square 0-1-2-3-0. Unit weights: both 2-hop routes between opposite
  // corners tie (every vertex gets BC 1). Making 1's edges heavy pushes
  // all corner-to-corner traffic through 3.
  const CSRGraph g = graph::build_csr(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  auto w = unit_weights(g);
  w[cpu::find_edge_slot(g, 0, 1)] = 10.0;
  w[cpu::find_edge_slot(g, 1, 0)] = 10.0;
  w[cpu::find_edge_slot(g, 1, 2)] = 10.0;
  w[cpu::find_edge_slot(g, 2, 1)] = 10.0;
  const auto r = cpu::weighted_brandes(g, w);
  EXPECT_NEAR(r.bc[3], 2.0, 1e-9);  // carries 0<->2 both directions
  EXPECT_NEAR(r.bc[1], 0.0, 1e-9);
}

TEST(WeightedBrandes, EqualWeightTiesSplitCredit) {
  // Diamond with equal weights: both middle vertices split the 0<->3
  // dependency, exactly as in the unweighted case.
  const CSRGraph g = graph::build_csr(4, std::vector<Edge>{{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  cpu::WeightArray w(g.num_directed_edges(), 2.5);
  const auto r = cpu::weighted_brandes(g, w);
  for (int v = 0; v < 4; ++v) EXPECT_NEAR(r.bc[v], 1.0, 1e-9) << v;
}

TEST(WeightedBrandes, RejectsBadWeights) {
  const CSRGraph g = graph::gen::figure1_graph();
  cpu::WeightArray short_w(3, 1.0);
  EXPECT_THROW(cpu::weighted_brandes(g, short_w), std::invalid_argument);
  cpu::WeightArray zero_w(g.num_directed_edges(), 1.0);
  zero_w[0] = 0.0;
  EXPECT_THROW(cpu::weighted_brandes(g, zero_w), std::invalid_argument);
  cpu::WeightArray neg_w(g.num_directed_edges(), 1.0);
  neg_w[2] = -3.0;
  EXPECT_THROW(cpu::weighted_brandes(g, neg_w), std::invalid_argument);
}

TEST(WeightedBrandes, SourceSubset) {
  const CSRGraph g = graph::gen::figure1_graph();
  const auto w = unit_weights(g);
  const auto full = cpu::weighted_brandes(g, w);
  std::vector<double> acc(g.num_vertices(), 0.0);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    const auto part = cpu::weighted_brandes(g, w, {.sources = {s}});
    for (std::size_t v = 0; v < acc.size(); ++v) acc[v] += part.bc[v];
  }
  for (std::size_t v = 0; v < acc.size(); ++v) {
    EXPECT_NEAR(acc[v], full.bc[v], 1e-9);
  }
}

TEST(WeightedPaths, CountsDistinctShortestRoutes) {
  // Two routes 0->3 of equal total weight through different intermediates.
  const CSRGraph g = graph::build_csr(4, std::vector<Edge>{{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  cpu::WeightArray w(g.num_directed_edges(), 1.0);
  const auto pc = cpu::weighted_count_paths(g, w, 0);
  EXPECT_DOUBLE_EQ(pc.sigma[3], 2.0);
  EXPECT_DOUBLE_EQ(pc.distance[3], 2.0);
  // Skew one route: only one path remains shortest.
  w[cpu::find_edge_slot(g, 0, 1)] = 1.5;
  w[cpu::find_edge_slot(g, 1, 0)] = 1.5;
  const auto pc2 = cpu::weighted_count_paths(g, w, 0);
  EXPECT_DOUBLE_EQ(pc2.sigma[3], 1.0);
  EXPECT_DOUBLE_EQ(pc2.distance[3], 2.0);
}

TEST(WeightedPaths, UnreachedIsInfinite) {
  const CSRGraph g = graph::build_csr(3, std::vector<Edge>{{0, 1}});
  const auto pc = cpu::weighted_count_paths(g, unit_weights(g), 0);
  EXPECT_TRUE(std::isinf(pc.distance[2]));
  EXPECT_DOUBLE_EQ(pc.sigma[2], 0.0);
}

TEST(RandomWeights, SymmetricAndInRange) {
  const CSRGraph g = graph::gen::small_world({.num_vertices = 64, .k = 2, .seed = 1});
  const auto w = cpu::random_symmetric_weights(g, 0.5, 2.0, 3);
  ASSERT_EQ(w.size(), g.num_directed_edges());
  const auto sources = g.edge_sources();
  const auto cols = g.col_indices();
  for (graph::EdgeOffset e = 0; e < g.num_directed_edges(); ++e) {
    EXPECT_GE(w[e], 0.5);
    EXPECT_LT(w[e], 2.0);
    const auto back = cpu::find_edge_slot(g, cols[e], sources[e]);
    ASSERT_LT(back, g.num_directed_edges());
    EXPECT_DOUBLE_EQ(w[e], w[back]);
  }
}

TEST(RandomWeights, RejectsBadRange) {
  const CSRGraph g = graph::gen::figure1_graph();
  EXPECT_THROW(cpu::random_symmetric_weights(g, 2.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(cpu::random_symmetric_weights(g, 0.0, 1.0, 1), std::invalid_argument);
}

TEST(MakeSymmetric, AveragesMirrorSlots) {
  const CSRGraph g = graph::build_csr(2, std::vector<Edge>{{0, 1}});
  cpu::WeightArray w{1.0, 3.0};
  ASSERT_TRUE(cpu::make_symmetric_weights(g, w));
  EXPECT_DOUBLE_EQ(w[0], 2.0);
  EXPECT_DOUBLE_EQ(w[1], 2.0);
}

TEST(MakeSymmetric, DirectedGraphRefuses) {
  graph::BuildOptions opt;
  opt.symmetrize = false;
  const CSRGraph g = graph::build_csr(2, std::vector<Edge>{{0, 1}}, opt);
  cpu::WeightArray w{1.0};
  EXPECT_FALSE(cpu::make_symmetric_weights(g, w));
}

}  // namespace
