#pragma once

// hbc::trace — low-overhead structured span tracing for the whole stack.
//
// The paper's evaluation (Figs 2–6, Tables 1–3) is built on per-iteration
// visibility: frontier sizes per BFS level, per-kernel work distribution,
// the hybrid's per-level strategy decisions. This module records exactly
// that as a timeline instead of end-of-run aggregates:
//
//   * a Tracer owns the capture: a category mask, an event budget, and
//     the set of Sinks that threads write into;
//   * a Sink is a single-writer, lock-free append buffer of typed Events.
//     The simulated device gets one sink per block (written only by
//     whichever host thread is executing that block — blocks never share
//     a sink), the host side gets one sink per thread;
//   * kernel-side events are stamped from the *simulated* cycle ledger
//     (converted to nanoseconds with the device clock), so a capture of a
//     GPU-model run is bitwise-identical at every host-thread count —
//     threading moves wall time, never the trace. Host/service events are
//     stamped from a steady clock relative to the Tracer's epoch;
//   * exporters render Chrome trace_event JSON (load in chrome://tracing
//     or https://ui.perfetto.dev) and a per-phase text summary.
//
// Cost when tracing is off: call sites hold a null Sink pointer, so the
// entire layer is one pointer test per instrumentation point (the same
// budget as an inert CancelToken; asserted <2% in
// bench_service_throughput). Cost when a category is masked off: one
// load+AND per point. Event names, categories, and string args must be
// string literals (or otherwise outlive the Tracer) — recording never
// allocates or copies strings.
//
// docs/tracing.md documents the event model and how to read a capture.

#include <array>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hbc::trace {

/// Event categories, maskable per Tracer. Chrome's "cat" field.
enum Category : std::uint32_t {
  kRun = 1u << 0,       // whole kernel runs and driver phases
  kRoot = 1u << 1,      // per-root spans and launch attempts
  kPhase = 1u << 2,     // shortest-path / dependency stages within a root
  kLevel = 1u << 3,     // per-BFS-level frontier instants
  kDecision = 1u << 4,  // hybrid / sampling / direction-switch decisions
  kFault = 1u << 5,     // fault injection, retries, rescues, failures
  kCharge = 1u << 6,    // raw gpusim cycle charges (verbose; off by default)
  kService = 1u << 7,   // request lifecycle in hbc::service
  kCompute = 1u << 8,   // host-side compute spans (CPU engines, workers)
  kDyn = 1u << 9,       // dyn:: epoch commits, batches, incremental refresh

  kNone = 0,
  /// Everything except the per-charge firehose.
  kDefault = kRun | kRoot | kPhase | kLevel | kDecision | kFault | kService | kCompute | kDyn,
  kAll = 0xffffffffu,
};

const char* to_string(Category category) noexcept;

/// Chrome trace_event phases (the subset we emit).
enum class Phase : std::uint8_t {
  Begin,    // "B" — span start; must be closed by a matching End
  End,      // "E" — span end (names must nest per sink)
  Instant,  // "i" — a point event
  Counter,  // "C" — sampled numeric series
};

/// One typed event argument. Keys and string values must be literals.
struct Arg {
  enum class Kind : std::uint8_t { None, U64, I64, F64, Str };

  const char* key = nullptr;
  Kind kind = Kind::None;
  union Value {
    std::uint64_t u;
    std::int64_t i;
    double f;
    const char* s;
  } value{};

  constexpr Arg() = default;
  constexpr Arg(const char* k, std::uint64_t v) : key(k), kind(Kind::U64) { value.u = v; }
  constexpr Arg(const char* k, std::uint32_t v) : Arg(k, std::uint64_t{v}) {}
  constexpr Arg(const char* k, std::int64_t v) : key(k), kind(Kind::I64) { value.i = v; }
  constexpr Arg(const char* k, std::int32_t v) : Arg(k, std::int64_t{v}) {}
  constexpr Arg(const char* k, double v) : key(k), kind(Kind::F64) { value.f = v; }
  constexpr Arg(const char* k, const char* v) : key(k), kind(Kind::Str) { value.s = v; }
};

/// A recorded event. Fixed-size (no heap) so sinks are flat arrays.
struct Event {
  static constexpr std::size_t kMaxArgs = 6;

  const char* name = nullptr;
  Category category = kNone;
  Phase phase = Phase::Instant;
  /// Nanoseconds: simulated device time for kernel events, time since the
  /// Tracer epoch for host events.
  std::uint64_t ts_ns = 0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::uint8_t num_args = 0;
  std::array<Arg, kMaxArgs> args{};
};

/// Well-known pids in the exported trace.
inline constexpr std::uint32_t kSimDevicePid = 1;  // simulated-cycle domain
inline constexpr std::uint32_t kHostPid = 2;       // wall-clock domain

class Tracer;

/// Single-writer append buffer. One owner thread records; the Tracer
/// reads only after the writers have quiesced (export happens after runs
/// complete / the service drains), so no synchronization is needed on the
/// hot path. Capacity is fixed at creation; overflow drops the newest
/// events and counts them — it never reshuffles what was already recorded.
class Sink {
 public:
  /// One load+AND: is this category being captured?
  bool wants(Category category) const noexcept { return (mask_ & category) != 0; }

  std::uint32_t pid() const noexcept { return pid_; }
  std::uint32_t tid() const noexcept { return tid_; }
  const std::string& name() const noexcept { return name_; }

  void begin(const char* name, Category category, std::uint64_t ts_ns,
             std::initializer_list<Arg> args = {}) {
    push(name, category, Phase::Begin, ts_ns, args);
  }
  void end(const char* name, Category category, std::uint64_t ts_ns) {
    push(name, category, Phase::End, ts_ns, {});
  }
  void instant(const char* name, Category category, std::uint64_t ts_ns,
               std::initializer_list<Arg> args = {}) {
    push(name, category, Phase::Instant, ts_ns, args);
  }
  void counter(const char* name, Category category, std::uint64_t ts_ns,
               std::initializer_list<Arg> args) {
    push(name, category, Phase::Counter, ts_ns, args);
  }

  std::size_t size() const noexcept { return events_.size(); }
  std::uint64_t dropped() const noexcept { return dropped_; }
  const std::vector<Event>& events() const noexcept { return events_; }

 private:
  friend class Tracer;
  Sink(std::string name, std::uint32_t pid, std::uint32_t tid, std::uint32_t mask,
       std::size_t capacity)
      : name_(std::move(name)), pid_(pid), tid_(tid), mask_(mask), capacity_(capacity) {}

  void push(const char* name, Category category, Phase phase, std::uint64_t ts_ns,
            std::initializer_list<Arg> args) {
    if ((mask_ & category) == 0) return;
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    Event e;
    e.name = name;
    e.category = category;
    e.phase = phase;
    e.ts_ns = ts_ns;
    e.pid = pid_;
    e.tid = tid_;
    e.num_args = static_cast<std::uint8_t>(
        args.size() < Event::kMaxArgs ? args.size() : Event::kMaxArgs);
    std::size_t i = 0;
    for (const Arg& a : args) {
      if (i >= e.num_args) break;
      e.args[i++] = a;
    }
    events_.push_back(e);
  }

  std::string name_;
  std::uint32_t pid_;
  std::uint32_t tid_;
  std::uint32_t mask_;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::vector<Event> events_;
};

struct TracerConfig {
  /// Which categories to capture (bitwise OR of Category values).
  std::uint32_t categories = kDefault;
  /// Event budget per sink; overflow drops the newest events (counted).
  std::size_t sink_capacity = 1u << 18;
};

/// The capture object: owns configuration and collects sinks. Create one
/// per capture (a CLI run, a bench cell, a service session); it is not
/// meant to be a permanent process fixture — sinks accumulate per run.
///
/// Thread safety: make_sink/thread_sink are mutex-guarded (rare);
/// recording into distinct sinks is unsynchronized by design; export and
/// events() must run after every writer has finished.
class Tracer {
 public:
  explicit Tracer(TracerConfig config = {});

  bool wants(Category category) const noexcept {
    return (config_.categories & category) != 0;
  }
  std::uint32_t categories() const noexcept { return config_.categories; }

  /// Register a new sink. The driver names its per-block sinks "block N"
  /// with pid kSimDevicePid and tid = block id, in ascending block order —
  /// the registration order IS the export order, which is what makes
  /// GPU-model captures bitwise-deterministic.
  std::shared_ptr<Sink> make_sink(std::string name, std::uint32_t pid,
                                  std::uint32_t tid);

  /// Per-thread host sink (pid kHostPid), created on first use from each
  /// thread and cached thread-locally; tids are assigned in creation
  /// order. Never returns null while the tracer is alive.
  Sink* thread_sink(const char* name_prefix = "host");

  /// Nanoseconds since the tracer epoch (construction). Host events use
  /// this; simulated events use the cycle ledger instead.
  std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Snapshot of every recorded event, sinks concatenated in registration
  /// order. Call only after writers have quiesced.
  std::vector<Event> events() const;
  /// Total events recorded / dropped across all sinks.
  std::size_t event_count() const;
  std::uint64_t dropped() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}). Deterministic:
  /// sinks in registration order, events in append order, fixed number
  /// formatting. Loadable in chrome://tracing and Perfetto.
  void write_chrome_json(std::ostream& out) const;
  std::string chrome_json() const;

  /// Human-readable per-category/per-name aggregation: event counts, span
  /// counts, and total span duration (self-nesting spans count the
  /// outermost occurrence only per sink).
  void write_summary(std::ostream& out) const;
  std::string summary() const;

 private:
  TracerConfig config_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t generation_;  // process-unique id for thread_sink caching

  mutable std::mutex mu_;  // guards sinks_ and next_host_tid_
  std::vector<std::shared_ptr<Sink>> sinks_;
  std::uint32_t next_host_tid_ = 0;
};

/// RAII span helper for host-side code paths (service, CPU engines):
/// begin on construction, end on destruction — exception-safe, so spans
/// stay balanced when compute throws. Null sink = no-op.
class ScopedSpan {
 public:
  ScopedSpan(Sink* sink, Tracer* tracer, const char* name, Category category,
             std::initializer_list<Arg> args = {})
      : sink_(sink), tracer_(tracer), name_(name), category_(category) {
    if (sink_ && sink_->wants(category_)) {
      sink_->begin(name_, category_, tracer_->now_ns(), args);
    } else {
      sink_ = nullptr;
    }
  }
  ~ScopedSpan() {
    if (sink_) sink_->end(name_, category_, tracer_->now_ns());
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Sink* sink_;
  Tracer* tracer_;
  const char* name_;
  Category category_;
};

}  // namespace hbc::trace
