# Empty compiler generated dependencies file for test_weighted_kernels.
# This may be replaced when dependencies are built.
