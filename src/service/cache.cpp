#include "service/cache.hpp"

#include <cstdio>

namespace hbc::service {

std::uint64_t graph_fingerprint(const graph::CSRGraph& g) noexcept {
  return g.fingerprint();
}

std::string fingerprint_prefix(std::uint64_t fingerprint) {
  char buf[2 + 16 + 2];
  std::snprintf(buf, sizeof(buf), "%016llx|", static_cast<unsigned long long>(fingerprint));
  return buf;
}

std::size_t estimate_result_bytes(const core::BCResult& r) noexcept {
  std::size_t bytes = sizeof(core::BCResult);
  bytes += r.scores.capacity() * sizeof(double);
  bytes += r.per_root.capacity() * sizeof(kernels::PerRootStats);
  bytes += r.kernel_metrics.per_root_cycles.capacity() * sizeof(std::uint64_t);
  return bytes;
}

ResultCache::ResultCache(std::size_t budget_bytes) : budget_(budget_bytes) {}

std::shared_ptr<const CachedResult> ResultCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  ++hits_;
  return it->second->second;
}

void ResultCache::put(const std::string& key, std::shared_ptr<const CachedResult> value) {
  if (!value) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (value->bytes > budget_) return;  // can never fit; don't thrash the rest

  if (const auto it = index_.find(key); it != index_.end()) {
    bytes_ -= it->second->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }

  bytes_ += value->bytes;
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();

  while (bytes_ > budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.second->bytes;
    index_.erase(victim.first);
    lru_.pop_back();
    ++evictions_;
  }
}

std::size_t ResultCache::erase_if(const std::function<bool(const std::string&)>& pred) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t removed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (pred(it->first)) {
      bytes_ -= it->second->bytes;
      index_.erase(it->first);
      it = lru_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<std::pair<std::string, std::shared_ptr<const CachedResult>>>
ResultCache::extract_if(const std::function<bool(const std::string&)>& pred) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::shared_ptr<const CachedResult>>> out;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (pred(it->first)) {
      bytes_ -= it->second->bytes;
      index_.erase(it->first);
      out.emplace_back(std::move(it->first), std::move(it->second));
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace hbc::service
