#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace hbc::graph::gen {

// Barabási–Albert preferential attachment using the repeated-endpoint
// trick: sampling a uniform position in the running edge-endpoint list is
// exactly degree-proportional sampling, so generation is O(m).
CSRGraph scale_free(const ScaleFreeParams& params) {
  const VertexId n = params.num_vertices;
  const std::uint32_t attach = params.attach;
  if (n <= attach) {
    throw std::invalid_argument("scale_free: need num_vertices > attach");
  }
  util::Xoshiro256 rng(params.seed);
  GraphBuilder builder(n);

  // Endpoint multiset: every time an edge (u, v) is added, both u and v are
  // appended; uniform draws from it are degree-biased.
  std::vector<VertexId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(n) * attach * 2);

  // Seed clique over the first attach+1 vertices.
  for (VertexId u = 0; u <= attach; ++u) {
    for (VertexId v = u + 1; v <= attach; ++v) {
      builder.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::vector<VertexId> chosen(attach);
  for (VertexId v = attach + 1; v < n; ++v) {
    for (std::uint32_t i = 0; i < attach; ++i) {
      // Rejection keeps targets distinct for this vertex (simple graph).
      VertexId target;
      bool fresh;
      do {
        target = endpoints[rng.next_below(endpoints.size())];
        fresh = target != v;
        for (std::uint32_t j = 0; j < i && fresh; ++j) {
          if (chosen[j] == target) fresh = false;
        }
      } while (!fresh);
      chosen[i] = target;
      builder.add_edge(v, target);
    }
    for (std::uint32_t i = 0; i < attach; ++i) {
      endpoints.push_back(v);
      endpoints.push_back(chosen[i]);
    }
  }
  return builder.build();
}

}  // namespace hbc::graph::gen
