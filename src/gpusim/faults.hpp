#pragma once

// Deterministic fault injection for the simulated device.
//
// A FaultPlan is a seeded, immutable description of which simulated
// device faults fire where. Root selection is a pure hash of
// (seed, spec index, root id), so the same plan injects the same faults
// into the same roots no matter how many host threads execute the
// simulated blocks, which block a root lands on, or how often the run is
// repeated — the property the resilience tests lean on ("recovery is
// bitwise-deterministic for a given FaultPlan seed").
//
// Four fault kinds model the failure modes real GPU BC deployments see:
//
//   KernelLaunch — the per-root kernel launch fails (sticky context error,
//                  driver hiccup). Surfaces before any work is done.
//   DeviceAlloc  — allocating the root's device scratch fails
//                  (fragmentation, concurrent tenants). Also pre-work.
//   EccError     — an uncorrectable ECC error is reported while the
//                  kernel runs; surfaces `after` simulated cycles into
//                  the root.
//   Timeout      — the kernel overruns its cycle budget (`after` cycles)
//                  and is killed by the watchdog; models hangs/livelocks.
//
// Transient faults clear after `fail_attempts` launches of the same root
// (the retry path recovers); persistent faults fire on every attempt (the
// degradation ladder takes over). Faults surface as hbc::DeviceFault; the
// kernels::BlockDriver catches them at root granularity and retries or
// records them in the run's FaultReport.

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace hbc::gpusim {

enum class FaultKind : std::uint8_t {
  KernelLaunch,
  DeviceAlloc,
  EccError,
  Timeout,
};

const char* to_string(FaultKind kind) noexcept;

/// The typed exception every injected fault surfaces as.
class DeviceFault : public std::runtime_error {
 public:
  static constexpr std::uint32_t kNoRoot = 0xffffffffu;

  DeviceFault(FaultKind kind, std::uint32_t root, std::uint32_t block, bool transient);

  FaultKind kind() const noexcept { return kind_; }
  std::uint32_t root() const noexcept { return root_; }
  std::uint32_t block() const noexcept { return block_; }
  /// Transient faults are worth retrying; persistent ones are not.
  bool transient() const noexcept { return transient_; }

 private:
  FaultKind kind_;
  std::uint32_t root_;
  std::uint32_t block_;
  bool transient_;
};

/// One injection rule. A root is targeted when the seeded hash admits it
/// under `rate` or when it is listed explicitly in `roots`.
struct FaultSpec {
  FaultKind kind = FaultKind::KernelLaunch;
  bool transient = true;
  /// Fraction of roots hit by the seeded hash, in [0, 1].
  double rate = 0.0;
  /// Explicit target roots (unioned with the rate-selected set).
  std::vector<std::uint32_t> roots;
  /// Transient only: launches [0, fail_attempts) of a targeted root fail,
  /// later attempts succeed — "the condition cleared by the retry".
  std::uint32_t fail_attempts = 1;
  /// Execution-stage kinds: simulated cycles into the root at which the
  /// fault fires (Timeout = watchdog budget, EccError = error latency).
  /// 0 selects the kind's default (Timeout 1M cycles, EccError 10k).
  std::uint64_t after_cycles = 0;
};

/// What the driver arms on a block before launching a root: the block's
/// cycle ledger trips the fault once it crosses `trip_cycles`.
struct FaultArm {
  bool armed = false;
  FaultKind kind = FaultKind::Timeout;
  std::uint32_t root = DeviceFault::kNoRoot;
  bool transient = true;
  std::uint64_t trip_cycles = 0;  // absolute block-cycle threshold
};

/// A root the run could not complete within its attempt budget.
struct RootFailure {
  std::uint32_t root = 0;
  FaultKind kind = FaultKind::KernelLaunch;  // kind of the last fault seen
  std::uint32_t attempts = 0;                // launches consumed
  bool transient = true;                     // last fault's transience
};

/// Per-run fault accounting, filled by kernels::BlockDriver and surfaced
/// through core::BCResult. A report with empty failed_roots means every
/// root's contribution is present — scores are bitwise-identical to a
/// fault-free run of the same configuration.
struct FaultReport {
  std::uint64_t faults_injected = 0;  // DeviceFaults thrown
  std::uint64_t retries = 0;          // relaunches after a transient fault
  std::uint64_t rescued_roots = 0;    // recovered by the recovery sweep
  std::vector<RootFailure> failed_roots;  // permanent failures, ascending

  bool complete() const noexcept { return failed_roots.empty(); }
  bool clean() const noexcept { return faults_injected == 0 && failed_roots.empty(); }
  /// True when every permanent failure was transient-kind — a whole-run
  /// retry at a later epoch may succeed (the service's backoff path).
  bool all_failures_transient() const noexcept;

  FaultReport& operator+=(const FaultReport& other);
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  void add(FaultSpec spec);

  std::uint64_t seed() const noexcept { return seed_; }
  bool empty() const noexcept { return specs_.empty(); }
  const std::vector<FaultSpec>& specs() const noexcept { return specs_; }

  /// True when any spec targets `root` (at any attempt).
  bool targets_root(std::uint32_t root) const noexcept;

  /// Launch-stage fault (KernelLaunch / DeviceAlloc) for launching `root`
  /// the `attempt`-th time, or nullopt. First matching spec wins.
  struct Launch {
    FaultKind kind;
    bool transient;
  };
  std::optional<Launch> launch_fault(std::uint32_t root,
                                     std::uint32_t attempt) const noexcept;

  /// Execution-stage fault (EccError / Timeout) to arm for this launch,
  /// or nullopt. `trip_cycles` in the result is relative to root start.
  struct Execution {
    FaultKind kind;
    bool transient;
    std::uint64_t after_cycles;
  };
  std::optional<Execution> execution_fault(std::uint32_t root,
                                           std::uint32_t attempt) const noexcept;

  /// Canonical serialization: parse(signature()) round-trips, and equal
  /// signatures mean identical injection behaviour. hbc::service folds
  /// this into its cache key so fault-injected requests never collide
  /// with clean ones.
  std::string signature() const;

  /// Parse the CLI grammar (docs/resilience.md):
  ///   spec   := clause (';' clause)*
  ///   clause := 'seed=' N | kind (',' opt)*
  ///   kind   := 'launch' | 'alloc' | 'ecc' | 'timeout'
  ///   opt    := 'rate=' F | 'roots=' N (':' N)* | 'transient'
  ///           | 'persistent' | 'attempts=' N | 'after=' N
  /// e.g. "seed=9;launch,rate=0.05;timeout,roots=3:17,persistent,after=20000".
  /// Throws std::invalid_argument on malformed input.
  static FaultPlan parse(const std::string& spec);

  /// parse() boxed for core::Options / kernels::RunConfig.
  static std::shared_ptr<const FaultPlan> parse_shared(const std::string& spec);

 private:
  bool spec_hits(std::size_t spec_index, std::uint32_t root) const noexcept;

  std::uint64_t seed_ = 1;
  std::vector<FaultSpec> specs_;
};

}  // namespace hbc::gpusim

namespace hbc {
using gpusim::DeviceFault;  // the issue-facing name: hbc::DeviceFault
}  // namespace hbc
