#include "kernels/bc_state.hpp"

#include <algorithm>

#include "graph/types.hpp"

namespace hbc::kernels {

using graph::EdgeOffset;
using graph::kInfDistance;
using graph::VertexId;

const char* to_string(Mode mode) noexcept {
  switch (mode) {
    case Mode::WorkEfficient: return "work-efficient";
    case Mode::EdgeParallel: return "edge-parallel";
    case Mode::VertexParallel: return "vertex-parallel";
    case Mode::BottomUp: return "bottom-up";
  }
  return "?";
}

BCWorkspace::BCWorkspace(const graph::CSRGraph& g) : g_(&g) {
  const VertexId n = g.num_vertices();
  d_.assign(n, kInfDistance);
  sigma_.assign(n, 0.0);
  delta_.assign(n, 0.0);
  q_curr_.assign(n, 0);
  q_next_.assign(n, 0);
  s_.assign(n, 0);
  // At most one ends entry per BFS level; n + 2 is a safe upper bound
  // (paper: ends_len = max depth + 1 plus the leading 0).
  ends_.assign(static_cast<std::size_t>(n) + 2, 0);
}

std::uint64_t BCWorkspace::work_efficient_bytes(VertexId n) {
  // d (u32), sigma (f64), delta (f64), Q_curr, Q_next, S (u32 each),
  // ends (u64, worst case n+2 entries).
  return static_cast<std::uint64_t>(n) * (4 + 8 + 8 + 4 + 4 + 4) +
         (static_cast<std::uint64_t>(n) + 2) * 8;
}

std::uint64_t BCWorkspace::jia_bytes(VertexId n, EdgeOffset directed_edges) {
  // d, sigma, delta as above plus the O(m) predecessor structure: the
  // published implementation stores predecessor lists of 4-byte vertex
  // ids (§III.B notes a 1-byte-per-edge boolean map would be tighter —
  // that compaction is the paper's own suggestion, not the baseline's).
  return static_cast<std::uint64_t>(n) * (4 + 8 + 8) + directed_edges * 4;
}

std::uint64_t BCWorkspace::gpufan_bytes(VertexId n) {
  // d, sigma, delta plus the O(n^2) predecessor list of 4-byte entries.
  return static_cast<std::uint64_t>(n) * (4 + 8 + 8) +
         static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) * 4;
}

void BCWorkspace::init_root(VertexId s, gpusim::BlockContext& ctx) {
  const VertexId n = g_->num_vertices();
  std::fill(d_.begin(), d_.end(), kInfDistance);
  std::fill(sigma_.begin(), sigma_.end(), 0.0);
  std::fill(delta_.begin(), delta_.end(), 0.0);

  if (!successor_marks_.empty()) successor_marks_.reset();

  d_[s] = 0;
  sigma_[s] = 1.0;
  q_curr_[0] = s;
  q_curr_len_ = 1;
  q_next_len_ = 0;
  s_[0] = s;
  s_len_ = 1;
  ends_[0] = 0;
  ends_[1] = 1;
  ends_len_ = 2;
  depth_ = 0;

  // Parallel initialisation kernel: one streaming pass over n elements
  // (Algorithm 1's "for v in V do in parallel").
  ctx.charge_uniform_round(n, ctx.cost().scan_seq);
  ctx.counters().vertices_scanned += n;
}

BCWorkspace::LevelStats BCWorkspace::we_forward_level(gpusim::BlockContext& ctx,
                                                      bool mark_predecessors) {
  LevelStats stats;
  stats.vertex_frontier = q_curr_len_;

  if (mark_predecessors && successor_marks_.size() != g_->num_directed_edges()) {
    successor_marks_.assign(g_->num_directed_edges(), false);
  }

  auto& counters = ctx.counters();
  const auto& cost = ctx.cost();
  const auto offsets = g_->row_offsets();
  const auto cols = g_->col_indices();
  auto round = ctx.make_round();

  for (std::uint64_t i = 0; i < q_curr_len_; ++i) {
    const VertexId v = q_curr_[i];
    const std::uint32_t dv = d_[v];
    std::uint64_t item_cycles = cost.queue_vertex;

    std::uint32_t walked = 0;
    for (EdgeOffset e = offsets[v]; e < offsets[v + 1]; ++e) {
      const VertexId w = cols[e];
      ++stats.edge_frontier;
      ++counters.edges_traversed;
      ++counters.edges_inspected;
      ++counters.atomic_ops;  // the unconditional atomicCAS on d[w]
      // Long adjacency runs stream after the first few lines.
      item_cycles += (walked++ < cost.stream_threshold) ? cost.process_rand
                                                        : cost.process_seq;

      if (d_[w] == kInfDistance) {  // CAS wins: insert into Q_next
        d_[w] = dv + 1;
        q_next_[q_next_len_++] = w;
        ++stats.discovered;
        ++counters.queue_inserts;
        ++counters.atomic_ops;  // atomicAdd on Q_next_len
        item_cycles += cost.queue_insert;
      }
      if (d_[w] == dv + 1) {
        sigma_[w] += sigma_[v];
        ++counters.atomic_ops;  // atomicAdd on sigma[w]
        if (mark_predecessors) {
          // Record edge (v -> w) as a shortest-path (successor) edge.
          successor_marks_.set(e);
          item_cycles += cost.scan_seq;  // streamed 1-bit store
        }
      }
    }
    round.add_item(item_cycles);
  }

  ctx.charge_imbalanced_round(round);
  ctx.charge_barrier();
  ++counters.bfs_iterations;
  return stats;
}

BCWorkspace::LevelStats BCWorkspace::ep_forward_level(gpusim::BlockContext& ctx,
                                                      std::uint32_t depth,
                                                      bool maintain_queue,
                                                      std::uint64_t width) {
  LevelStats stats;
  stats.vertex_frontier = q_curr_len_;

  auto& counters = ctx.counters();
  const auto& cost = ctx.cost();
  const auto sources = g_->edge_sources();
  const auto cols = g_->col_indices();
  const EdgeOffset m = g_->num_directed_edges();

  // Full streaming scan of the edge array (the O(m)-per-level term).
  ctx.charge_uniform_round(m, cost.scan_seq, width);
  counters.edges_inspected += m;

  std::uint64_t useful = 0;
  for (EdgeOffset e = 0; e < m; ++e) {
    const VertexId u = sources[e];
    if (d_[u] != depth) continue;
    const VertexId w = cols[e];
    ++useful;
    ++counters.edges_traversed;
    ++counters.atomic_ops;  // CAS on d[w]
    ++stats.edge_frontier;

    if (d_[w] == kInfDistance) {
      d_[w] = depth + 1;
      ++stats.discovered;
      if (maintain_queue) {
        q_next_[q_next_len_++] = w;
        ++counters.queue_inserts;
        ++counters.atomic_ops;
      }
    }
    if (d_[w] == depth + 1) {
      sigma_[w] += sigma_[u];
      ++counters.atomic_ops;
    }
  }

  // Useful edges are processed with streaming-friendly locality (edge
  // order), hence the cheaper process_seq charge.
  ctx.charge_uniform_round(useful, cost.process_seq, width);
  if (maintain_queue) {
    ctx.charge_uniform_round(stats.discovered, cost.queue_insert, width);
  }
  ctx.charge_barrier();
  ++counters.bfs_iterations;
  return stats;
}

BCWorkspace::LevelStats BCWorkspace::vp_forward_level(gpusim::BlockContext& ctx,
                                                      std::uint32_t depth) {
  LevelStats stats;
  stats.vertex_frontier = q_curr_len_;

  auto& counters = ctx.counters();
  const auto& cost = ctx.cost();
  const VertexId n = g_->num_vertices();
  counters.vertices_scanned += n;

  // One thread per vertex: the level check costs scan_seq everywhere and
  // frontier vertices additionally traverse their whole adjacency —
  // charged through the imbalanced round (this is §III.A's load-imbalance
  // pathology: a hub vertex serializes its warp).
  auto round = ctx.make_round();
  for (VertexId v = 0; v < n; ++v) {
    std::uint64_t item_cycles = cost.scan_seq;
    if (d_[v] == depth) {
      for (VertexId w : g_->neighbors(v)) {
        ++stats.edge_frontier;
        ++counters.edges_traversed;
        ++counters.edges_inspected;
        ++counters.atomic_ops;
        item_cycles += cost.process_seq;
        if (d_[w] == kInfDistance) {
          d_[w] = depth + 1;
          ++stats.discovered;
        }
        if (d_[w] == depth + 1) {
          sigma_[w] += sigma_[v];
          ++counters.atomic_ops;
        }
      }
    }
    round.add_item(item_cycles);
  }
  ctx.charge_imbalanced_round(round);
  ctx.charge_barrier();
  ++counters.bfs_iterations;
  return stats;
}

BCWorkspace::LevelStats BCWorkspace::bu_forward_level(gpusim::BlockContext& ctx,
                                                      std::uint32_t depth) {
  LevelStats stats;
  stats.vertex_frontier = q_curr_len_;

  auto& counters = ctx.counters();
  const auto& cost = ctx.cost();
  const VertexId n = g_->num_vertices();
  counters.vertices_scanned += n;

  // One thread per vertex; only unvisited threads walk their adjacency.
  // No atomics at all: w owns d[w] and sigma[w] exclusively.
  auto round = ctx.make_round();
  for (VertexId v = 0; v < n; ++v) {
    std::uint64_t item_cycles = cost.scan_seq;
    if (d_[v] == kInfDistance) {
      double acc = 0.0;
      std::uint32_t walked = 0;
      for (VertexId parent : g_->neighbors(v)) {
        ++counters.edges_inspected;
        item_cycles += (walked++ < cost.stream_threshold) ? cost.process_rand
                                                          : cost.process_seq;
        if (d_[parent] == depth) {
          ++counters.edges_traversed;
          acc += sigma_[parent];
        }
      }
      if (acc > 0.0) {
        d_[v] = depth + 1;
        sigma_[v] = acc;
        q_next_[q_next_len_++] = v;
        ++stats.discovered;
        ++counters.queue_inserts;
        ++counters.atomic_ops;  // queue tail (the filter pass's only atomic)
        item_cycles += cost.queue_insert;
      }
    }
    round.add_item(item_cycles);
  }
  ctx.charge_imbalanced_round(round);
  ctx.charge_barrier();
  ++counters.bfs_iterations;

  // Edge frontier (out-edges of the level we just finished expanding)
  // for the heuristics/stats, same definition as the other primitives.
  for (std::uint64_t i = 0; i < q_curr_len_; ++i) {
    stats.edge_frontier += g_->degree(q_curr_[i]);
  }
  return stats;
}

void BCWorkspace::finish_level(gpusim::BlockContext& ctx) {
  // Lines 14–24 of Algorithm 2: copy Q_next into Q_curr and append to S.
  ctx.charge_uniform_round(q_next_len_, 2 * ctx.cost().scan_seq);
  for (std::uint64_t i = 0; i < q_next_len_; ++i) {
    q_curr_[i] = q_next_[i];
    s_[s_len_ + i] = q_next_[i];
  }
  ends_[ends_len_] = ends_[ends_len_ - 1] + q_next_len_;
  ++ends_len_;
  q_curr_len_ = q_next_len_;
  s_len_ += q_next_len_;
  q_next_len_ = 0;
  ++depth_;
  ctx.charge_barrier();
}

void BCWorkspace::we_backward_level(gpusim::BlockContext& ctx, std::uint32_t depth) {
  auto& counters = ctx.counters();
  const auto& cost = ctx.cost();
  auto round = ctx.make_round();

  // Threads cover exactly S[ends[depth] .. ends[depth+1]) — no level
  // checks against the rest of the graph (Algorithm 3 line 3).
  for (std::uint64_t i = ends_[depth]; i < ends_[depth + 1]; ++i) {
    const VertexId w = s_[i];
    const double sw = sigma_[w];
    double dsw = 0.0;
    std::uint64_t item_cycles = cost.queue_vertex;
    std::uint32_t walked = 0;
    for (VertexId v : g_->neighbors(w)) {
      ++counters.edges_traversed;
      ++counters.edges_inspected;
      item_cycles += (walked++ < cost.stream_threshold) ? cost.process_rand
                                                        : cost.process_seq;
      if (d_[v] == depth + 1) {
        dsw += (sw / sigma_[v]) * (1.0 + delta_[v]);
      }
    }
    delta_[w] = dsw;  // no atomics: w updates itself from successors
    round.add_item(item_cycles);
  }
  ctx.charge_imbalanced_round(round);
  ctx.charge_barrier();
}

void BCWorkspace::we_backward_level_pred(gpusim::BlockContext& ctx,
                                         std::uint32_t depth) {
  auto& counters = ctx.counters();
  const auto& cost = ctx.cost();
  const auto offsets = g_->row_offsets();
  const auto cols = g_->col_indices();
  auto round = ctx.make_round();

  for (std::uint64_t i = ends_[depth]; i < ends_[depth + 1]; ++i) {
    const VertexId w = s_[i];
    const double sw = sigma_[w];
    double dsw = 0.0;
    std::uint64_t item_cycles = cost.queue_vertex;
    for (EdgeOffset e = offsets[w]; e < offsets[w + 1]; ++e) {
      ++counters.edges_inspected;
      // 1-bit streamed check replaces the scattered d[v] fetch...
      item_cycles += cost.scan_seq;
      if (successor_marks_.test(e)) {
        // ...but confirmed successors still read sigma/delta scattered.
        const VertexId v = cols[e];
        ++counters.edges_traversed;
        item_cycles += cost.process_rand;
        dsw += (sw / sigma_[v]) * (1.0 + delta_[v]);
      }
    }
    delta_[w] = dsw;
    round.add_item(item_cycles);
  }
  ctx.charge_imbalanced_round(round);
  ctx.charge_barrier();
}

void BCWorkspace::ep_backward_level(gpusim::BlockContext& ctx, std::uint32_t depth,
                                    std::uint64_t width) {
  auto& counters = ctx.counters();
  const auto& cost = ctx.cost();
  const auto sources = g_->edge_sources();
  const auto cols = g_->col_indices();
  const EdgeOffset m = g_->num_directed_edges();

  ctx.charge_uniform_round(m, cost.scan_seq, width);
  counters.edges_inspected += m;

  std::uint64_t useful = 0;
  for (EdgeOffset e = 0; e < m; ++e) {
    const VertexId w = sources[e];
    if (d_[w] != depth) continue;
    const VertexId v = cols[e];
    ++counters.edges_traversed;
    if (d_[v] == depth + 1) {
      // Multiple threads share the same w, so the accumulation into
      // delta[w] must be atomic (§IV.A's closing observation).
      delta_[w] += (sigma_[w] / sigma_[v]) * (1.0 + delta_[v]);
      ++counters.atomic_ops;
      ++useful;
    }
  }
  ctx.charge_uniform_round(useful, cost.process_seq + cost.atomic_extra, width);
  ctx.charge_barrier();
}

void BCWorkspace::vp_backward_level(gpusim::BlockContext& ctx, std::uint32_t depth) {
  auto& counters = ctx.counters();
  const auto& cost = ctx.cost();
  const VertexId n = g_->num_vertices();
  counters.vertices_scanned += n;

  auto round = ctx.make_round();
  for (VertexId v = 0; v < n; ++v) {
    std::uint64_t item_cycles = cost.scan_seq;
    if (d_[v] == depth) {
      const double sv = sigma_[v];
      double dsv = 0.0;
      for (VertexId w : g_->neighbors(v)) {
        ++counters.edges_traversed;
        ++counters.edges_inspected;
        item_cycles += cost.process_seq;
        if (d_[w] == depth + 1) {
          dsv += (sv / sigma_[w]) * (1.0 + delta_[w]);
        }
      }
      delta_[v] = dsv;
    }
    round.add_item(item_cycles);
  }
  ctx.charge_imbalanced_round(round);
  ctx.charge_barrier();
}

void BCWorkspace::accumulate_bc(std::span<double> bc, VertexId root, bool use_queue,
                                gpusim::BlockContext& ctx) {
  const auto& cost = ctx.cost();
  if (use_queue) {
    // Walk S: only reached vertices, contiguous.
    ctx.charge_uniform_round(s_len_, cost.process_seq);
    for (std::uint64_t i = 0; i < s_len_; ++i) {
      const VertexId v = s_[i];
      if (v != root) {
        bc[v] += delta_[v];
        ++ctx.counters().atomic_ops;  // atomicAdd into the global vector
      }
    }
  } else {
    const VertexId n = g_->num_vertices();
    ctx.charge_uniform_round(n, cost.scan_seq);
    for (VertexId v = 0; v < n; ++v) {
      if (v != root && d_[v] != kInfDistance) {
        bc[v] += delta_[v];
        ++ctx.counters().atomic_ops;
      }
    }
  }
  ctx.charge_barrier();
}

std::uint32_t BCWorkspace::max_depth() const noexcept {
  if (s_len_ == 0) return 0;
  return d_[s_[s_len_ - 1]];
}

}  // namespace hbc::kernels
