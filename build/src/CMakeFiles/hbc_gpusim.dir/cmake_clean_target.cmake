file(REMOVE_RECURSE
  "libhbc_gpusim.a"
)
