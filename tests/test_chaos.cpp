// Fleet self-healing under deterministic network chaos.
//
// Three layers, bottom up:
//  1. ChaosPlan grammar + fate hashing: pure, seeded, reproducible.
//  2. ChaosInjector frame fates: drop/dup/trunc/flip/delay/partition do
//     exactly what docs/resilience.md promises, at the byte level.
//  3. The self-healing loop end to end: a real fleet under injected
//     faults — heartbeat quarantine -> probation -> readmission, worker
//     rejoin across a coordinator crash, durable warm restart — with the
//     distributed scores required to stay MEMCMP-IDENTICAL to standalone
//     core::compute through all of it. "Close" is not a pass.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/bc.hpp"
#include "dyn/versioned_graph.hpp"
#include "graph/generators.hpp"
#include "net/chaos.hpp"
#include "net/coordinator.hpp"
#include "net/snapshot.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "net/worker.hpp"
#include "service/service.hpp"

using namespace hbc;
using namespace std::chrono_literals;
namespace wire = hbc::net::wire;

namespace {

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// Socket paths live under /tmp: build trees routinely exceed
// sockaddr_un's 108-byte limit, the system tmpdir does not.
class SocketDir {
 public:
  SocketDir() {
    char tmpl[] = "/tmp/hbc-chaos-XXXXXX";
    dir_ = ::mkdtemp(tmpl);
  }
  ~SocketDir() {
    if (!dir_.empty()) {
      std::remove((dir_ + "/c.sock").c_str());
      ::rmdir(dir_.c_str());
    }
  }
  std::string sock() const { return "unix:" + dir_ + "/c.sock"; }

 private:
  std::string dir_;
};

/// Scratch directory for snapshot state, recursively removed.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/hbc-snap-XXXXXX";
    dir_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

graph::CSRGraph test_graph() {
  return graph::gen::family_by_name("smallworld").make(8, 1);
}

/// Coordinator + N in-process workers, with the coordinator replaceable
/// mid-test (crash/restart scenarios destroy and rebuild it while the
/// worker threads live on and rejoin).
class ChaosFleet {
 public:
  ChaosFleet(std::size_t n_workers, net::CoordinatorConfig cfg,
             std::vector<net::WorkerConfig> worker_cfgs) {
    cfg.listen = net::Endpoint::parse(dir_.sock());
    cfg_ = cfg;
    coordinator = std::make_unique<net::Coordinator>(cfg_);
    for (std::size_t i = 0; i < n_workers; ++i) {
      net::WorkerConfig wc =
          i < worker_cfgs.size() ? std::move(worker_cfgs[i]) : net::WorkerConfig{};
      wc.connect = net::Endpoint::parse(dir_.sock());
      if (wc.name == "worker") wc.name = "chaos-worker-" + std::to_string(i);
      if (wc.service.workers == 0) wc.service.workers = 2;
      workers.push_back(std::make_unique<net::Worker>(std::move(wc)));
    }
    for (auto& w : workers) {
      threads.emplace_back([worker = w.get()] { worker->run(); });
    }
    coordinator->wait_for_workers(n_workers, std::chrono::seconds(20));
  }

  /// Abrupt coordinator death (no drain) followed by a warm restart on
  /// the same endpoint/config — the crash the snapshot layer exists for.
  void crash_and_restart_coordinator() {
    coordinator.reset();
    coordinator = std::make_unique<net::Coordinator>(cfg_);
  }

  /// Stop workers, drain, join — after this worker->stats() reads are
  /// race-free. Idempotent with the destructor.
  void shutdown() {
    for (auto& w : workers) w->request_stop();
    if (coordinator) coordinator->drain();
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
  }

  ~ChaosFleet() { shutdown(); }

  SocketDir dir_;
  net::CoordinatorConfig cfg_;
  std::unique_ptr<net::Coordinator> coordinator;
  std::vector<std::unique_ptr<net::Worker>> workers;
  std::vector<std::thread> threads;
};

net::WorkerConfig in_memory_worker(std::shared_ptr<const graph::CSRGraph> g) {
  net::WorkerConfig wc;
  wc.graph_loader = [g](const std::string&) { return *g; };
  return wc;
}

/// Self-healing worker config: fast heartbeats, aggressive rejoin.
net::WorkerConfig healing_worker(std::shared_ptr<const graph::CSRGraph> g) {
  net::WorkerConfig wc = in_memory_worker(g);
  wc.heartbeat_interval = 25ms;
  wc.max_heartbeat_misses = 2;
  wc.rejoin_attempts = 30;
  wc.connect_backoff = 5ms;
  wc.max_backoff = 100ms;
  return wc;
}

/// Encode one frame the way Conn::send does (for injector unit tests).
std::vector<std::uint8_t> sample_frame() {
  return wire::encode(wire::HeartbeatMsg{42, 1}, 7);
}

}  // namespace

// --- 1. plan grammar and fate hashing -------------------------------------

TEST(ChaosPlan, ParseSignatureRoundTrip) {
  const std::string spec =
      "seed=11;drop,rate=0.05;delay,frames=3:9,ms=40;dup,rate=0.01;"
      "trunc,frames=2;flip,rate=0.002;partition,after=40,for=20";
  const net::ChaosPlan plan = net::ChaosPlan::parse(spec);
  EXPECT_EQ(plan.seed(), 11u);
  EXPECT_EQ(plan.specs().size(), 6u);

  // Canonical form round-trips: parse(signature()) == same behaviour.
  const std::string sig = plan.signature();
  const net::ChaosPlan again = net::ChaosPlan::parse(sig);
  EXPECT_EQ(again.signature(), sig);
  for (std::uint64_t stream : {0ull, 7ull, 0x8000000000000001ull}) {
    for (std::uint64_t ordinal = 0; ordinal < 200; ++ordinal) {
      const auto a = plan.fate(stream, ordinal);
      const auto b = again.fate(stream, ordinal);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) {
        EXPECT_EQ(a->kind, b->kind);
      }
    }
  }
}

TEST(ChaosPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(net::ChaosPlan::parse(""), std::invalid_argument);
  EXPECT_THROW(net::ChaosPlan::parse("explode,rate=0.5"), std::invalid_argument);
  EXPECT_THROW(net::ChaosPlan::parse("drop,rate=1.5"), std::invalid_argument);
  EXPECT_THROW(net::ChaosPlan::parse("drop,rate=-0.1"), std::invalid_argument);
  EXPECT_THROW(net::ChaosPlan::parse("drop,rate=abc"), std::invalid_argument);
  EXPECT_THROW(net::ChaosPlan::parse("seed=notanumber;drop,rate=0.1"),
               std::invalid_argument);
  // A clause that can never target a frame is a spec bug, not a no-op.
  EXPECT_THROW(net::ChaosPlan::parse("drop"), std::invalid_argument);
}

TEST(ChaosPlan, FateIsPureAndSeedSensitive) {
  const net::ChaosPlan a = net::ChaosPlan::parse("seed=1;drop,rate=0.5");
  const net::ChaosPlan b = net::ChaosPlan::parse("seed=2;drop,rate=0.5");

  std::size_t hits_a = 0;
  std::size_t diverged = 0;
  for (std::uint64_t ordinal = 0; ordinal < 2000; ++ordinal) {
    const auto f1 = a.fate(5, ordinal);
    const auto f2 = a.fate(5, ordinal);
    ASSERT_EQ(f1.has_value(), f2.has_value()) << "fate must be pure";
    if (f1) ++hits_a;
    if (f1.has_value() != b.fate(5, ordinal).has_value()) ++diverged;
  }
  // rate=0.5 over 2000 ordinals: the seeded hash should select roughly
  // half, and a different seed should select a different set.
  EXPECT_GT(hits_a, 800u);
  EXPECT_LT(hits_a, 1200u);
  EXPECT_GT(diverged, 200u);
}

TEST(ChaosPlan, ExplicitFrameListAndPartitionWindow) {
  const net::ChaosPlan plan =
      net::ChaosPlan::parse("seed=3;trunc,frames=2:5;partition,after=10,for=4");
  for (std::uint64_t ordinal = 0; ordinal < 20; ++ordinal) {
    const auto f = plan.fate(1, ordinal);
    if (ordinal == 2 || ordinal == 5) {
      ASSERT_TRUE(f.has_value()) << ordinal;
      EXPECT_EQ(f->kind, net::ChaosKind::Truncate) << ordinal;
    } else if (ordinal >= 10 && ordinal < 14) {
      ASSERT_TRUE(f.has_value()) << ordinal;
      EXPECT_EQ(f->kind, net::ChaosKind::Partition) << ordinal;
    } else {
      EXPECT_FALSE(f.has_value()) << ordinal;
    }
  }
}

// --- 2. injector frame fates ----------------------------------------------

TEST(ChaosInjector, DropSwallowsTheFrame) {
  auto plan = net::ChaosPlan::parse_shared("seed=1;drop,frames=0");
  net::ChaosInjector inj(plan, 1);
  std::vector<std::uint8_t> out;
  inj.on_send(sample_frame(), out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(plan->stats().dropped, 1u);
  // The next (untargeted) frame passes clean.
  inj.on_send(sample_frame(), out);
  EXPECT_EQ(out, sample_frame());
}

TEST(ChaosInjector, DuplicateSendsTheFrameTwice) {
  auto plan = net::ChaosPlan::parse_shared("seed=1;dup,frames=0");
  net::ChaosInjector inj(plan, 1);
  std::vector<std::uint8_t> out;
  const std::vector<std::uint8_t> frame = sample_frame();
  inj.on_send(frame, out);
  ASSERT_EQ(out.size(), 2 * frame.size());
  EXPECT_EQ(std::memcmp(out.data(), frame.data(), frame.size()), 0);
  EXPECT_EQ(std::memcmp(out.data() + frame.size(), frame.data(), frame.size()), 0);
  EXPECT_EQ(plan->stats().duplicated, 1u);
}

TEST(ChaosInjector, TruncateEmitsAStrictPrefix) {
  auto plan = net::ChaosPlan::parse_shared("seed=9;trunc,frames=0");
  net::ChaosInjector inj(plan, 1);
  std::vector<std::uint8_t> out;
  const std::vector<std::uint8_t> frame = sample_frame();
  inj.on_send(frame, out);
  ASSERT_FALSE(out.empty());
  ASSERT_LT(out.size(), frame.size());
  EXPECT_EQ(std::memcmp(out.data(), frame.data(), out.size()), 0);
  EXPECT_EQ(plan->stats().truncated, 1u);
}

TEST(ChaosInjector, FlipInvertsOneBitInTheMagicVersionRegion) {
  auto plan = net::ChaosPlan::parse_shared("seed=5;flip,frames=0");
  net::ChaosInjector inj(plan, 1);
  std::vector<std::uint8_t> out;
  const std::vector<std::uint8_t> frame = sample_frame();
  inj.on_send(frame, out);
  ASSERT_EQ(out.size(), frame.size());
  std::size_t differing_bits = 0;
  std::size_t first_diff = frame.size();
  for (std::size_t i = 0; i < frame.size(); ++i) {
    const std::uint8_t x = out[i] ^ frame[i];
    if (x != 0 && first_diff == frame.size()) first_diff = i;
    for (int b = 0; b < 8; ++b) differing_bits += (x >> b) & 1;
  }
  EXPECT_EQ(differing_bits, 1u);
  // Constrained to the first 6 header bytes: guaranteed typed
  // BadMagic/BadVersion at the receiver, never a corrupted payload.
  EXPECT_LT(first_diff, 6u);
  wire::Frame f;
  std::size_t consumed = 0;
  const wire::DecodeStatus st = wire::extract_frame(out, f, consumed);
  EXPECT_TRUE(st == wire::DecodeStatus::BadMagic ||
              st == wire::DecodeStatus::BadVersion)
      << wire::to_string(st);
}

TEST(ChaosInjector, DelayHoldsFramesAndReleasesInOrder) {
  auto plan = net::ChaosPlan::parse_shared("seed=1;delay,frames=0,ms=30");
  net::ChaosInjector inj(plan, 1);
  std::vector<std::uint8_t> out;
  const std::vector<std::uint8_t> first = wire::encode(wire::HeartbeatMsg{1, 1}, 1);
  const std::vector<std::uint8_t> second = wire::encode(wire::HeartbeatMsg{2, 1}, 2);
  inj.on_send(first, out);
  EXPECT_TRUE(out.empty());  // held
  EXPECT_TRUE(inj.holding());
  // An untargeted frame queued behind a held one must also wait: delay
  // models added latency, never reordering.
  inj.on_send(second, out);
  EXPECT_TRUE(out.empty());
  inj.release_due(out);
  EXPECT_TRUE(out.empty()) << "released before the deadline";
  std::this_thread::sleep_for(60ms);
  inj.release_due(out);
  std::vector<std::uint8_t> expected = first;
  expected.insert(expected.end(), second.begin(), second.end());
  EXPECT_EQ(out, expected);
  EXPECT_FALSE(inj.holding());
  EXPECT_EQ(plan->stats().delayed, 1u);
}

TEST(ChaosInjector, NullPlanIsInert) {
  net::ChaosInjector inj(nullptr, 1);
  std::vector<std::uint8_t> out;
  inj.on_send(sample_frame(), out);
  EXPECT_EQ(out, sample_frame());
  EXPECT_FALSE(inj.holding());
}

// --- 3. the self-healing loop, end to end ---------------------------------

TEST(ChaosFleetE2E, DropChaosScoresStayBitwiseIdentical) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  core::Options opt;
  opt.strategy = core::Strategy::WorkEfficient;
  const core::BCResult standalone = core::compute(*g, opt);

  // 5% of frames vanish, both directions. Recovery is straggler
  // re-dispatch + shard retry + local fallback + worker rejoin — every
  // path reassembles the identical bits.
  auto plan = net::ChaosPlan::parse_shared("seed=11;drop,rate=0.05");
  net::CoordinatorConfig cfg;
  cfg.chaos = plan;
  cfg.straggler_timeout = 50ms;
  cfg.control_timeout = 500ms;
  cfg.heartbeat_timeout = 500ms;
  std::vector<net::WorkerConfig> wcfgs;
  for (std::size_t i = 0; i < 2; ++i) {
    net::WorkerConfig wc = healing_worker(g);
    wc.chaos = plan;
    wcfgs.push_back(std::move(wc));
  }
  ChaosFleet fleet(2, std::move(cfg), std::move(wcfgs));

  // Control-plane traffic is fair game for the chaos plan too: a failed
  // broadcast is re-issued (idempotent), with pump time in between so
  // disconnected workers can rejoin before the retry.
  std::size_t confirmed = 0;
  for (int attempt = 0; attempt < 50 && confirmed < 2; ++attempt) {
    confirmed = fleet.coordinator->load_graph("g0", g, "");
    if (confirmed < 2) fleet.coordinator->run_for(100ms);
  }
  ASSERT_GE(confirmed, 1u);

  for (int i = 0; i < 3; ++i) {
    service::Request req;
    req.graph_id = "g0";
    req.options = opt;
    const service::Response resp = fleet.coordinator->query(req);
    ASSERT_TRUE(resp.ok()) << resp.error;
    ASSERT_NE(resp.result, nullptr);
    EXPECT_TRUE(bitwise_equal(resp.result->scores, standalone.scores))
        << "query " << i << " diverged under drop chaos";
    EXPECT_FALSE(resp.degraded);
  }
  // The plan actually fired: frames were consulted and some were hit.
  EXPECT_GT(plan->stats().frames, 0u);
  EXPECT_GE(plan->stats().injected(), 1u);
}

TEST(ChaosFleetE2E, FlipChaosPoisonsTypedAndFleetRecovers) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  core::Options opt;
  opt.strategy = core::Strategy::WorkEfficient;
  const core::BCResult standalone = core::compute(*g, opt);

  // Bit-flips in the header region of coordinator->worker frames: the
  // worker sees a typed BadMagic/BadVersion, treats the stream as
  // poisoned, drops the connection, and rejoins. Coordinator-side only:
  // coordinator stream ids are accept slots, which advance on every
  // rejoin, so a fate at a given ordinal cannot recur forever the way a
  // worker-side flip of Hello frame 0 would (fixed stream id + ordinal
  // restart = a permanently blackholed handshake).
  auto plan = net::ChaosPlan::parse_shared("seed=7;flip,rate=0.05");
  net::CoordinatorConfig cfg;
  cfg.chaos = plan;
  cfg.straggler_timeout = 50ms;
  cfg.control_timeout = 500ms;
  ChaosFleet fleet(2, std::move(cfg), {healing_worker(g), healing_worker(g)});

  // Control-plane traffic is fair game for the chaos plan too: a failed
  // broadcast is re-issued (idempotent), with pump time in between so
  // disconnected workers can rejoin before the retry.
  std::size_t confirmed = 0;
  for (int attempt = 0; attempt < 50 && confirmed < 2; ++attempt) {
    confirmed = fleet.coordinator->load_graph("g0", g, "");
    if (confirmed < 2) fleet.coordinator->run_for(100ms);
  }
  ASSERT_GE(confirmed, 1u);

  for (int i = 0; i < 3; ++i) {
    service::Request req;
    req.graph_id = "g0";
    req.options = opt;
    const service::Response resp = fleet.coordinator->query(req);
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_TRUE(bitwise_equal(resp.result->scores, standalone.scores))
        << "query " << i << " diverged under flip chaos";
  }
}

TEST(ChaosFleetE2E, QuarantineProbationReadmissionStateMachine) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());

  // The worker heartbeats every 400ms but the coordinator demands one
  // every 120ms: quarantined while silent, probation on the first frame,
  // readmitted after probation_heartbeats more.
  net::CoordinatorConfig cfg;
  cfg.heartbeat_timeout = 120ms;
  cfg.probation_heartbeats = 2;
  net::WorkerConfig wc = in_memory_worker(g);
  wc.heartbeat_interval = 400ms;
  ChaosFleet fleet(1, std::move(cfg), {std::move(wc)});
  ASSERT_EQ(fleet.coordinator->worker_count(), 1u);
  ASSERT_EQ(fleet.coordinator->worker_health(1), wire::HealthState::Healthy);

  // 300ms of silence > 120ms timeout, and the first heartbeat is still
  // 100ms away: the detector must have quarantined the worker.
  fleet.coordinator->run_for(300ms);
  EXPECT_EQ(fleet.coordinator->worker_health(1), wire::HealthState::Quarantined);
  EXPECT_GE(fleet.coordinator->stats().heartbeat_misses, 1u);
  EXPECT_GE(fleet.coordinator->stats().quarantines, 1u);

  // Two heartbeat periods later (400ms, 800ms) the worker has delivered
  // its probation quota and earned readmission. With its interval still
  // 3x the detector deadline it immediately starts flapping back toward
  // quarantine — the detector is SUPPOSED to oscillate for a worker this
  // slow — so assert the counters that prove the full cycle ran rather
  // than a stable final state.
  fleet.coordinator->run_for(1500ms);
  EXPECT_GE(fleet.coordinator->stats().readmissions, 1u);
  ASSERT_TRUE(fleet.coordinator->worker_health(1).has_value());

  // The worker was told: it received the QuarantineMsg notices.
  fleet.shutdown();
  EXPECT_GE(fleet.workers[0]->stats().quarantine_notices, 1u);
  EXPECT_GE(fleet.workers[0]->stats().heartbeats, 2u);
}

TEST(ChaosFleetE2E, QuarantinedWorkerGetsNoDispatchesButFleetAnswers) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  core::Options opt;
  opt.strategy = core::Strategy::WorkEfficient;
  const core::BCResult standalone = core::compute(*g, opt);

  net::CoordinatorConfig cfg;
  cfg.heartbeat_timeout = 120ms;
  cfg.probation_heartbeats = 1000;  // effectively: never readmit
  cfg.straggler_timeout = 100ms;
  // Worker 0 heartbeats too slowly and will be quarantined; worker 1 is
  // prompt and carries the query.
  net::WorkerConfig slow = in_memory_worker(g);
  slow.heartbeat_interval = 10000ms;
  net::WorkerConfig prompt = in_memory_worker(g);
  prompt.heartbeat_interval = 30ms;
  std::vector<net::WorkerConfig> wcfgs;
  wcfgs.push_back(std::move(slow));
  wcfgs.push_back(std::move(prompt));
  ChaosFleet fleet(2, std::move(cfg), std::move(wcfgs));
  ASSERT_EQ(fleet.coordinator->load_graph("g0", g, ""), 2u);

  fleet.coordinator->run_for(300ms);
  ASSERT_EQ(fleet.coordinator->worker_health(1), wire::HealthState::Quarantined);

  service::Request req;
  req.graph_id = "g0";
  req.options = opt;
  const service::Response resp = fleet.coordinator->query(req);
  ASSERT_TRUE(resp.ok()) << resp.error;
  EXPECT_TRUE(bitwise_equal(resp.result->scores, standalone.scores));
  EXPECT_FALSE(resp.degraded);
}

TEST(ChaosFleetE2E, WorkersRejoinAcrossCoordinatorCrashAndScoresHold) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  core::Options opt;
  opt.strategy = core::Strategy::WorkEfficient;
  const core::BCResult standalone = core::compute(*g, opt);

  TempDir snap;
  net::CoordinatorConfig cfg;
  cfg.snapshot_dir = snap.path();
  cfg.straggler_timeout = 100ms;
  ChaosFleet fleet(2, std::move(cfg), {healing_worker(g), healing_worker(g)});
  ASSERT_EQ(fleet.coordinator->load_graph("g0", g, ""), 2u);

  service::Request req;
  req.graph_id = "g0";
  req.options = opt;
  const service::Response before = fleet.coordinator->query(req);
  ASSERT_TRUE(before.ok()) << before.error;
  ASSERT_TRUE(bitwise_equal(before.result->scores, standalone.scores));

  // Persist the now-warm cache, then kill the coordinator abruptly (no
  // drain, no goodbyes) and restart it on the same endpoint.
  fleet.coordinator->save_snapshot();
  fleet.crash_and_restart_coordinator();

  // Warm restart: the registry came back from disk...
  const net::SnapshotInfo& info = fleet.coordinator->snapshot_info();
  EXPECT_TRUE(info.attempted);
  EXPECT_TRUE(info.ok) << info.error;
  EXPECT_EQ(info.graphs, 1u);
  EXPECT_GE(info.cache_entries, 1u);

  // ...the cache survived the crash...
  const service::Response cached = fleet.coordinator->query(req);
  ASSERT_TRUE(cached.ok()) << cached.error;
  EXPECT_TRUE(cached.from_cache);
  EXPECT_TRUE(bitwise_equal(cached.result->scores, standalone.scores));

  // ...and both workers found their way home and serve shards again.
  ASSERT_EQ(fleet.coordinator->wait_for_workers(2, std::chrono::seconds(20)), 2u);
  service::Request fresh;
  fresh.graph_id = "g0";
  fresh.options = opt;
  fresh.options.seed = 99;  // different cache key: forces a recompute
  const service::Response after = fleet.coordinator->query(fresh);
  ASSERT_TRUE(after.ok()) << after.error;
  EXPECT_TRUE(bitwise_equal(after.result->scores, standalone.scores));

  fleet.shutdown();
  for (const auto& w : fleet.workers) {
    EXPECT_GE(w->stats().reconnects, 1u) << "worker never rejoined";
  }
}

// --- durable warm restart, no fleet required ------------------------------

TEST(ChaosSnapshot, WarmRestartRestoresRegistryCacheAndMutationHistory) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  core::Options opt;
  opt.strategy = core::Strategy::WorkEfficient;

  dyn::UpdateBatch batch;
  batch.insert(0, 100).insert(5, 200).remove(0, 1);
  dyn::VersionedGraph vg(g);
  vg.apply(batch);
  const core::BCResult standalone = core::compute(*vg.current().graph, opt);

  TempDir snap;
  SocketDir sock1;
  std::uint64_t fp_after_mutate = 0;
  {
    net::CoordinatorConfig cfg;
    cfg.listen = net::Endpoint::parse(sock1.sock());
    cfg.snapshot_dir = snap.path();
    net::Coordinator c(cfg);
    EXPECT_FALSE(c.snapshot_info().attempted);  // nothing to restore yet
    c.load_graph("g0", g, "");
    c.mutate_graph("g0", batch);
    fp_after_mutate = c.graph_fingerprint("g0");

    service::Request req;
    req.graph_id = "g0";
    req.options = opt;
    const service::Response r = c.query(req);  // local fallback, then cached
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_TRUE(bitwise_equal(r.result->scores, standalone.scores));
    c.save_snapshot();
  }  // abrupt destruction: the crash

  SocketDir sock2;
  net::CoordinatorConfig cfg2;
  cfg2.listen = net::Endpoint::parse(sock2.sock());
  cfg2.snapshot_dir = snap.path();
  net::Coordinator c2(cfg2);
  const net::SnapshotInfo& info = c2.snapshot_info();
  ASSERT_TRUE(info.attempted);
  ASSERT_TRUE(info.ok) << info.error;
  EXPECT_EQ(info.graphs, 1u);
  EXPECT_GE(info.cache_entries, 1u);
  // The mutated epoch came back: same fingerprint, same bits, warm cache.
  EXPECT_EQ(c2.graph_fingerprint("g0"), fp_after_mutate);
  service::Request req;
  req.graph_id = "g0";
  req.options = opt;
  const service::Response r2 = c2.query(req);
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_TRUE(r2.from_cache);
  EXPECT_TRUE(bitwise_equal(r2.result->scores, standalone.scores));
}

TEST(ChaosSnapshot, CorruptManifestStartsFreshWithTypedError) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  TempDir snap;
  SocketDir sock1;
  {
    net::CoordinatorConfig cfg;
    cfg.listen = net::Endpoint::parse(sock1.sock());
    cfg.snapshot_dir = snap.path();
    net::Coordinator c(cfg);
    c.load_graph("g0", g, "");
  }
  // Stomp the manifest: the restore must fail TYPED and the coordinator
  // must start fresh — never UB, never half-restored state.
  {
    std::ofstream f(snap.path() + "/manifest.hbcs",
                    std::ios::binary | std::ios::trunc);
    f << "this is not a snapshot";
  }
  SocketDir sock2;
  net::CoordinatorConfig cfg2;
  cfg2.listen = net::Endpoint::parse(sock2.sock());
  cfg2.snapshot_dir = snap.path();
  net::Coordinator c2(cfg2);
  const net::SnapshotInfo& info = c2.snapshot_info();
  EXPECT_TRUE(info.attempted);
  EXPECT_FALSE(info.ok);
  EXPECT_FALSE(info.error.empty());
  EXPECT_EQ(info.graphs, 0u);
  // Fresh but functional: loads and serves as if no snapshot existed.
  service::Request req;
  req.graph_id = "g0";
  req.options.strategy = core::Strategy::WorkEfficient;
  EXPECT_EQ(c2.query(req).status, service::QueryStatus::GraphNotFound);
  c2.load_graph("g0", g, "");
  EXPECT_TRUE(c2.query(req).ok());
}

TEST(ChaosSnapshot, SaveLoadRoundTripAndExistenceProbe) {
  const auto g = std::make_shared<const graph::CSRGraph>(test_graph());
  TempDir dir;
  EXPECT_FALSE(net::snapshot_exists(dir.path()));
  EXPECT_THROW(net::load_snapshot(dir.path()), net::SnapshotError);

  net::Snapshot snap;
  net::SnapshotGraph sg;
  sg.id = "g0";
  sg.spec = "gen:smallworld:8:1";
  sg.base_fingerprint = 111;
  sg.fingerprint = 222;
  sg.epoch = 2;
  sg.history.push_back(wire::WireUpdate{0, 100, 1});
  sg.graph = g;
  snap.graphs.push_back(std::move(sg));
  net::SnapshotCacheEntry e;
  e.key = "k0";
  e.scores = {1.0, 2.5, -3.25};
  e.strategy = 3;
  e.roots_processed = 256;
  snap.cache.push_back(std::move(e));

  net::save_snapshot(dir.path(), snap);
  EXPECT_TRUE(net::snapshot_exists(dir.path()));
  const net::Snapshot back = net::load_snapshot(dir.path());
  ASSERT_EQ(back.graphs.size(), 1u);
  EXPECT_EQ(back.graphs[0].id, "g0");
  EXPECT_EQ(back.graphs[0].spec, "gen:smallworld:8:1");
  EXPECT_EQ(back.graphs[0].fingerprint, 222u);
  EXPECT_EQ(back.graphs[0].epoch, 2u);
  ASSERT_EQ(back.graphs[0].history.size(), 1u);
  ASSERT_NE(back.graphs[0].graph, nullptr);
  EXPECT_EQ(back.graphs[0].graph->num_vertices(), g->num_vertices());
  ASSERT_EQ(back.cache.size(), 1u);
  EXPECT_EQ(back.cache[0].key, "k0");
  EXPECT_TRUE(bitwise_equal(back.cache[0].scores, {1.0, 2.5, -3.25}));
}
