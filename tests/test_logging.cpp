// Logger level handling and the Timer utility.

#include <gtest/gtest.h>

#include <thread>

#include "util/log.hpp"
#include "util/timer.hpp"

namespace {

using namespace hbc::util;

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsWarn) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Warn);
  EXPECT_EQ(log_level(), LogLevel::Warn);
}

TEST(Log, ParseKnownNames) {
  LogLevelGuard guard;
  EXPECT_TRUE(set_log_level("trace"));
  EXPECT_EQ(log_level(), LogLevel::Trace);
  EXPECT_TRUE(set_log_level("DEBUG"));
  EXPECT_EQ(log_level(), LogLevel::Debug);
  EXPECT_TRUE(set_log_level("Info"));
  EXPECT_EQ(log_level(), LogLevel::Info);
  EXPECT_TRUE(set_log_level("off"));
  EXPECT_EQ(log_level(), LogLevel::Off);
}

TEST(Log, UnknownNameLeavesLevelUnchanged) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Error);
  EXPECT_FALSE(set_log_level("loud"));
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST(Log, MacroCompilesAndFiltersBelowThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  // Streamed expressions below the threshold must not be evaluated.
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  HBC_LOG_DEBUG << "value " << expensive();
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::Trace);
  HBC_LOG_ERROR << "error path exercised " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double first = t.elapsed_seconds();
  EXPECT_GE(first, 0.015);
  EXPECT_LT(first, 5.0);
  EXPECT_NEAR(t.elapsed_ms(), t.elapsed_seconds() * 1e3, 1.0);
  t.reset();
  EXPECT_LT(t.elapsed_seconds(), first);
}

}  // namespace
