#include "dyn/incremental_bc.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "cpu/brandes.hpp"
#include "util/timer.hpp"

namespace hbc::dyn {

using graph::CSRGraph;
using graph::kInfDistance;
using graph::VertexId;

namespace {

/// Distances-only BFS into a caller-owned buffer (graph::bfs also builds
/// parents and frontier histograms we don't need here — the
/// identification pass runs 4 BFS per applied edge, so lean matters).
void bfs_distances(const CSRGraph& g, VertexId source, std::vector<std::uint32_t>& dist,
                   std::vector<VertexId>& queue) {
  dist.assign(g.num_vertices(), kInfDistance);
  queue.clear();
  dist[source] = 0;
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    const std::uint32_t du = dist[u];
    for (const VertexId w : g.neighbors(u)) {
      if (dist[w] == kInfDistance) {
        dist[w] = du + 1;
        queue.push_back(w);
      }
    }
  }
}

void validate(const IncrementalConfig& cfg) {
  if (cfg.churn_threshold < 0.0 || cfg.churn_threshold > 1.0) {
    throw std::invalid_argument("IncrementalConfig: churn_threshold outside [0,1]");
  }
  if (cfg.reduce_stripes == 0) {
    throw std::invalid_argument("IncrementalConfig: reduce_stripes == 0");
  }
}

trace::Sink* dyn_sink(trace::Tracer* tracer) {
  return tracer != nullptr ? tracer->thread_sink() : nullptr;
}

void dyn_instant(trace::Tracer* tracer, const char* name,
                 std::initializer_list<trace::Arg> args) {
  trace::Sink* sink = dyn_sink(tracer);
  if (sink != nullptr && sink->wants(trace::kDyn)) {
    sink->instant(name, trace::kDyn, tracer->now_ns(), args);
  }
}

}  // namespace

std::vector<double> exact_scores(const CSRGraph& g, util::ThreadPool& pool,
                                 std::size_t reduce_stripes,
                                 const util::CancelToken& cancel) {
  if (reduce_stripes == 0) {
    throw std::invalid_argument("exact_scores: reduce_stripes == 0");
  }
  const VertexId n = g.num_vertices();
  std::vector<std::vector<double>> partials(reduce_stripes);
  std::atomic<bool> cancelled{false};

  pool.parallel_chunks(n, reduce_stripes,
                       [&](std::size_t stripe, std::size_t begin, std::size_t end) {
                         auto& partial = partials[stripe];
                         partial.assign(n, 0.0);
                         for (std::size_t s = begin; s < end; ++s) {
                           // Pool tasks must not throw; bail at the source
                           // boundary, the caller re-raises after the join.
                           if (cancel.cancelled()) {
                             cancelled.store(true, std::memory_order_relaxed);
                             return;
                           }
                           cpu::brandes_single_source(g, static_cast<VertexId>(s),
                                                      partial);
                         }
                       });
  if (cancelled.load(std::memory_order_relaxed)) cancel.check();

  // Fixed ascending stripe order: the bit pattern depends on the stripe
  // count, never on how many threads executed the stripes.
  std::vector<double> bc(n, 0.0);
  for (const auto& partial : partials) {
    if (partial.empty()) continue;
    for (VertexId v = 0; v < n; ++v) bc[v] += partial[v];
  }
  return bc;
}

BatchStats refresh_scores(const CSRGraph& before, const CSRGraph& after,
                          std::span<const EdgeUpdate> applied,
                          std::vector<double>& scores, util::ThreadPool& pool,
                          const IncrementalConfig& cfg) {
  validate(cfg);
  const VertexId n = before.num_vertices();
  if (after.num_vertices() != n) {
    throw std::invalid_argument("refresh_scores: before/after vertex counts differ");
  }
  if (scores.size() != n) {
    throw std::invalid_argument("refresh_scores: scores size != num_vertices");
  }

  BatchStats stats;
  stats.applied_updates = applied.size();
  if (applied.empty()) return stats;

  trace::ScopedSpan batch_span(dyn_sink(cfg.tracer), cfg.tracer, "batch-refresh",
                               trace::kDyn,
                               {{"applied", static_cast<std::uint64_t>(applied.size())}});

  // ---- Identification: union of the per-edge level tests, both graphs.
  // affected[s] flips to 1 when any applied edge spans levels w.r.t. s in
  // either snapshot; concurrent setters all write 1, order-free, so the
  // result is deterministic regardless of scheduling.
  util::Timer identify_timer;
  std::vector<std::atomic<std::uint8_t>> affected(n);
  for (auto& a : affected) a.store(0, std::memory_order_relaxed);
  std::atomic<bool> cancelled{false};

  pool.parallel_for(applied.size(), [&](std::size_t i) {
    if (cancelled.load(std::memory_order_relaxed) || cfg.cancel.cancelled()) {
      cancelled.store(true, std::memory_order_relaxed);
      return;
    }
    const EdgeUpdate& e = applied[i];
    std::vector<std::uint32_t> du, dv;
    std::vector<VertexId> queue;
    queue.reserve(n);
    for (const CSRGraph* g : {&before, &after}) {
      // Undirected symmetry: d(s,u) == d(u,s), so two BFS runs give the
      // edge's level relation for every source at once.
      bfs_distances(*g, e.u, du, queue);
      bfs_distances(*g, e.v, dv, queue);
      for (VertexId s = 0; s < n; ++s) {
        if (du[s] != dv[s]) affected[s].store(1, std::memory_order_relaxed);
      }
      if (cfg.cancel.cancelled()) {
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });
  if (cancelled.load(std::memory_order_relaxed)) cfg.cancel.check();

  std::vector<VertexId> affected_list;
  for (VertexId s = 0; s < n; ++s) {
    if (affected[s].load(std::memory_order_relaxed) != 0) affected_list.push_back(s);
  }
  stats.affected_sources = affected_list.size();
  stats.affected_fraction =
      n > 0 ? static_cast<double>(affected_list.size()) / static_cast<double>(n) : 0.0;
  stats.identify_ms = identify_timer.elapsed_ms();
  dyn_instant(cfg.tracer, "affected-set",
              {{"affected", stats.affected_sources},
               {"fraction", stats.affected_fraction},
               {"n", static_cast<std::uint64_t>(n)}});

  util::Timer recompute_timer;
  if (stats.affected_fraction > cfg.churn_threshold) {
    // ---- Churn fallback: the incremental path would pay ~2x a full
    // sweep (old + new dependencies per source); recompute once instead.
    stats.full_recompute = true;
    stats.sources_recomputed = n;
    stats.sources_skipped = 0;
    dyn_instant(cfg.tracer, "churn-fallback",
                {{"fraction", stats.affected_fraction},
                 {"threshold", cfg.churn_threshold}});
    trace::ScopedSpan span(dyn_sink(cfg.tracer), cfg.tracer, "full-recompute",
                           trace::kCompute);
    scores = exact_scores(after, pool, cfg.reduce_stripes, cfg.cancel);
    stats.recompute_ms = recompute_timer.elapsed_ms();
    return stats;
  }

  // ---- Incremental path: per affected source, subtract the old
  // dependency vector and add the new one. Sources are processed in
  // ascending order within a fixed number of stripes and stripe partials
  // merge in ascending stripe order — bitwise-deterministic at any
  // thread count. `scores` is only touched by the final merge, so a
  // cancellation anywhere above leaves it exactly as it was.
  stats.sources_recomputed = affected_list.size();
  stats.sources_skipped = n - affected_list.size();
  std::vector<std::vector<double>> partials(cfg.reduce_stripes);
  {
    trace::ScopedSpan span(dyn_sink(cfg.tracer), cfg.tracer, "incremental-recompute",
                           trace::kCompute,
                           {{"sources", stats.sources_recomputed}});
    pool.parallel_chunks(
        affected_list.size(), cfg.reduce_stripes,
        [&](std::size_t stripe, std::size_t begin, std::size_t end) {
          auto& partial = partials[stripe];
          partial.assign(n, 0.0);
          for (std::size_t i = begin; i < end; ++i) {
            if (cfg.cancel.cancelled()) {
              cancelled.store(true, std::memory_order_relaxed);
              return;
            }
            const VertexId s = affected_list[i];
            const auto old_delta = cpu::single_source_dependencies(before, s);
            const auto new_delta = cpu::single_source_dependencies(after, s);
            for (VertexId w = 0; w < n; ++w) {
              if (w == s) continue;
              partial[w] += new_delta[w] - old_delta[w];
            }
          }
        });
    if (cancelled.load(std::memory_order_relaxed)) cfg.cancel.check();
  }

  for (const auto& partial : partials) {
    if (partial.empty()) continue;
    for (VertexId v = 0; v < n; ++v) scores[v] += partial[v];
  }
  stats.recompute_ms = recompute_timer.elapsed_ms();
  return stats;
}

IncrementalBC::IncrementalBC(CSRGraph initial, IncrementalConfig config)
    : IncrementalBC(std::make_shared<const CSRGraph>(std::move(initial)),
                    std::move(config)) {}

IncrementalBC::IncrementalBC(std::shared_ptr<const CSRGraph> initial,
                             IncrementalConfig config)
    : cfg_(std::move(config)),
      versioned_(std::move(initial), cfg_.tracer),
      pool_(std::make_unique<util::ThreadPool>(cfg_.threads)) {
  validate(cfg_);
  snapshot_ = versioned_.current().graph;
  bc_ = exact_scores(*snapshot_, *pool_, cfg_.reduce_stripes, cfg_.cancel);
}

IncrementalBC::~IncrementalBC() = default;

BatchStats IncrementalBC::apply(const UpdateBatch& batch) {
  std::lock_guard<std::mutex> lock(apply_mu_);
  CommitResult staged = versioned_.stage(batch);  // throws on bad vertex ids

  BatchStats stats;
  if (staged.applied.empty()) {
    stats.epoch = staged.after.id;
    stats.batch_updates = batch.size();
    stats.noop_updates = staged.noops;
    ++totals_.batches;
    totals_.noop_updates += staged.noops;
    return stats;
  }

  // Refresh before committing: a util::Cancelled here unwinds with both
  // the epoch and the scores still at the pre-batch state.
  stats = refresh_scores(*staged.before.graph, *staged.after.graph, staged.applied,
                         bc_, *pool_, cfg_);
  versioned_.commit(staged);
  snapshot_ = staged.after.graph;

  stats.epoch = staged.after.id;
  stats.batch_updates = batch.size();
  stats.noop_updates = staged.noops;

  ++totals_.batches;
  totals_.applied_updates += stats.applied_updates;
  totals_.noop_updates += stats.noop_updates;
  totals_.sources_recomputed += stats.sources_recomputed;
  totals_.sources_skipped += stats.sources_skipped;
  totals_.full_recomputes += stats.full_recompute ? 1 : 0;
  return stats;
}

}  // namespace hbc::dyn
