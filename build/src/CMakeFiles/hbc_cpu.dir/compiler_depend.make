# Empty compiler generated dependencies file for hbc_cpu.
# This may be replaced when dependencies are built.
