// CSR construction, builder clean-up passes, and host graph algorithms.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace {

using namespace hbc::graph;

CSRGraph path_graph(VertexId n) {
  EdgeList edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.push_back({v, static_cast<VertexId>(v + 1)});
  return build_csr(n, edges);
}

TEST(Builder, SymmetrizesUndirectedEdges) {
  const CSRGraph g = build_csr(3, std::vector<Edge>{{0, 1}, {1, 2}});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_directed_edges(), 4u);
  EXPECT_EQ(g.num_undirected_edges(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_TRUE(g.undirected());
}

TEST(Builder, RemovesSelfLoops) {
  const CSRGraph g = build_csr(2, std::vector<Edge>{{0, 0}, {0, 1}, {1, 1}});
  EXPECT_EQ(g.num_undirected_edges(), 1u);
}

TEST(Builder, DedupsParallelEdges) {
  const CSRGraph g = build_csr(2, std::vector<Edge>{{0, 1}, {0, 1}, {1, 0}});
  EXPECT_EQ(g.num_undirected_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Builder, PreservesIsolatedVertices) {
  // The paper notes the Jia et al. reader cannot handle isolated
  // vertices; our builder must.
  const CSRGraph g = build_csr(5, std::vector<Edge>{{0, 1}});
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.degree(4), 0u);
}

TEST(Builder, SortsNeighbors) {
  const CSRGraph g = build_csr(4, std::vector<Edge>{{0, 3}, {0, 1}, {0, 2}});
  const auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Builder, RejectsOutOfRangeEndpoint) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(b.add_edge(5, 0), std::out_of_range);
}

TEST(Builder, ReusableAfterBuild) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const CSRGraph g1 = b.build();
  EXPECT_EQ(g1.num_undirected_edges(), 1u);
  b.add_edge(1, 2);
  const CSRGraph g2 = b.build();
  EXPECT_EQ(g2.num_undirected_edges(), 1u);
  EXPECT_EQ(g2.degree(0), 0u);
}

TEST(Builder, DirectedModeKeepsOrientation) {
  BuildOptions opt;
  opt.symmetrize = false;
  const CSRGraph g = build_csr(3, std::vector<Edge>{{0, 1}, {1, 2}}, opt);
  EXPECT_FALSE(g.undirected());
  EXPECT_EQ(g.num_directed_edges(), 2u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Csr, EdgeSourcesMatchRowStructure) {
  const CSRGraph g = build_csr(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  const auto sources = g.edge_sources();
  const auto offsets = g.row_offsets();
  ASSERT_EQ(sources.size(), g.num_directed_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (EdgeOffset e = offsets[v]; e < offsets[v + 1]; ++e) {
      EXPECT_EQ(sources[e], v);
    }
  }
}

TEST(Csr, RejectsMalformedOffsets) {
  EXPECT_THROW(CSRGraph({}, {}, true), std::invalid_argument);
  EXPECT_THROW(CSRGraph({1, 2}, {0}, true), std::invalid_argument);   // no leading 0
  EXPECT_THROW(CSRGraph({0, 2}, {0}, true), std::invalid_argument);   // bad total
  EXPECT_THROW(CSRGraph({0, 2, 1}, {0, 0}, true), std::invalid_argument);  // decreasing
  EXPECT_THROW(CSRGraph({0, 1}, {7}, true), std::invalid_argument);   // col out of range
}

TEST(Csr, SummaryMentionsCounts) {
  const CSRGraph g = path_graph(4);
  const std::string s = g.summary();
  EXPECT_NE(s.find("n=4"), std::string::npos);
  EXPECT_NE(s.find("m=3"), std::string::npos);
}

TEST(Bfs, DistancesOnPathGraph) {
  const CSRGraph g = path_graph(5);
  const BFSResult r = bfs(g, 0);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(r.distance[v], v);
  EXPECT_EQ(r.max_depth, 4u);
  EXPECT_EQ(r.reached, 5u);
  EXPECT_EQ(r.frontiers, (std::vector<std::uint64_t>{1, 1, 1, 1, 1}));
}

TEST(Bfs, UnreachedVerticesStayInfinite) {
  const CSRGraph g = build_csr(4, std::vector<Edge>{{0, 1}});
  const BFSResult r = bfs(g, 0);
  EXPECT_EQ(r.distance[2], kInfDistance);
  EXPECT_EQ(r.distance[3], kInfDistance);
  EXPECT_EQ(r.reached, 2u);
}

TEST(Bfs, ParentsFormTree) {
  const CSRGraph g = hbc::graph::gen::figure1_graph();
  const BFSResult r = bfs(g, 3);
  EXPECT_EQ(r.parent[3], kInvalidVertex);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == 3 || r.distance[v] == kInfDistance) continue;
    ASSERT_NE(r.parent[v], kInvalidVertex);
    EXPECT_EQ(r.distance[v], r.distance[r.parent[v]] + 1);
  }
}

TEST(Bfs, EdgeFrontiersSumDegrees) {
  const CSRGraph g = path_graph(4);
  const BFSResult r = bfs(g, 0);
  // frontiers: {0},{1},{2},{3}; degrees along the path: 1,2,2,1.
  EXPECT_EQ(r.edge_frontiers, (std::vector<std::uint64_t>{1, 2, 2, 1}));
}

TEST(Components, SingleComponentPath) {
  const CSRGraph g = path_graph(6);
  const ComponentsResult r = connected_components(g);
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_EQ(r.largest_size, 6u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Components, CountsIsolatedVertices) {
  const CSRGraph g = build_csr(5, std::vector<Edge>{{0, 1}, {2, 3}});
  const ComponentsResult r = connected_components(g);
  EXPECT_EQ(r.num_components, 3u);
  EXPECT_EQ(r.isolated_vertices, 1u);
  EXPECT_EQ(r.largest_size, 2u);
  EXPECT_FALSE(is_connected(g));
}

TEST(Components, ComponentIdsAreConsistent) {
  const CSRGraph g = build_csr(6, std::vector<Edge>{{0, 1}, {1, 2}, {3, 4}});
  const ComponentsResult r = connected_components(g);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[1], r.component[2]);
  EXPECT_EQ(r.component[3], r.component[4]);
  EXPECT_NE(r.component[0], r.component[3]);
  EXPECT_NE(r.component[5], r.component[0]);
  EXPECT_NE(r.component[5], r.component[3]);
}

TEST(PseudoDiameter, ExactOnPath) {
  const CSRGraph g = path_graph(10);
  EXPECT_EQ(pseudo_diameter(g, 4), 9u);
}

TEST(PseudoDiameter, HandlesIsolatedSeed) {
  const CSRGraph g = build_csr(5, std::vector<Edge>{{1, 2}, {2, 3}});
  EXPECT_EQ(pseudo_diameter(g, 0), 2u);
}

TEST(DegreeStats, UniformDegreesHaveZeroSkew) {
  // 4-cycle: every vertex has degree 2.
  const CSRGraph g = build_csr(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_DOUBLE_EQ(s.mean_degree, 2.0);
  EXPECT_DOUBLE_EQ(s.skew, 0.0);
}

TEST(DegreeStats, StarGraphIsSkewed) {
  EdgeList edges;
  for (VertexId v = 1; v < 9; ++v) edges.push_back({0, v});
  const CSRGraph g = build_csr(9, edges);
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.max_degree, 8u);
  EXPECT_GT(s.skew, 1.0);
}

}  // namespace
