file(REMOVE_RECURSE
  "CMakeFiles/hbc_core.dir/core/bc.cpp.o"
  "CMakeFiles/hbc_core.dir/core/bc.cpp.o.d"
  "CMakeFiles/hbc_core.dir/core/report.cpp.o"
  "CMakeFiles/hbc_core.dir/core/report.cpp.o.d"
  "CMakeFiles/hbc_core.dir/core/teps.cpp.o"
  "CMakeFiles/hbc_core.dir/core/teps.cpp.o.d"
  "libhbc_core.a"
  "libhbc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
