#include "service/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hbc::service {

namespace {

// Geometric bucket grid: bucket i covers (upper(i-1), upper(i)] with
// upper(i) = kFloorMs * kRatio^(i+1); the last bucket is open-ended.
constexpr double kFloorMs = 1e-3;  // 1 microsecond
constexpr double kSpan = 1e8;      // floor * span = 100,000 ms ceiling
const double kRatio = std::pow(kSpan, 1.0 / static_cast<double>(LatencyHistogram::kBuckets));

}  // namespace

double LatencyHistogram::bucket_upper(std::size_t i) noexcept {
  return kFloorMs * std::pow(kRatio, static_cast<double>(i + 1));
}

std::size_t LatencyHistogram::bucket_of(double ms) noexcept {
  if (!(ms > kFloorMs)) return 0;
  const double idx = std::log(ms / kFloorMs) / std::log(kRatio);
  const auto b = static_cast<std::size_t>(idx);
  return std::min(b, kBuckets - 1);
}

void LatencyHistogram::record(double ms) noexcept {
  if (!(ms >= 0.0)) return;  // drop NaN / negative clock anomalies
  ++counts_[bucket_of(ms)];
  stats_.add(ms);
}

double LatencyHistogram::quantile(double q) const noexcept {
  const std::uint64_t total = stats_.count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    const std::uint64_t prev = cum;
    cum += counts_[i];
    if (static_cast<double>(cum) >= target) {
      const double lo = i == 0 ? 0.0 : bucket_upper(i - 1);
      const double hi = bucket_upper(i);
      const double frac =
          counts_[i] ? (target - static_cast<double>(prev)) / static_cast<double>(counts_[i])
                     : 0.0;
      const double est = lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
      return std::clamp(est, stats_.min(), stats_.max());
    }
  }
  return stats_.max();
}

void ServiceMetrics::on_submitted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.submitted;
}

void ServiceMetrics::on_cache_hit(double latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.cache_hits;
  ++counts_.completed;
  latency_.record(latency_ms);
}

void ServiceMetrics::on_cache_miss() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.cache_misses;
}

void ServiceMetrics::on_coalesced() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.coalesced;
}

void ServiceMetrics::on_shed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.shed;
}

void ServiceMetrics::on_rejected_full() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.rejected_full;
}

void ServiceMetrics::on_rejected_deadline() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.rejected_deadline;
}

void ServiceMetrics::on_deadline_dropped() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.deadline_dropped;
}

void ServiceMetrics::on_graph_not_found() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.graph_not_found;
}

void ServiceMetrics::on_error() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.errors;
}

void ServiceMetrics::on_computed(double compute_ms, double total_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.computed;
  ++counts_.completed;
  compute_ms_.add(compute_ms);
  latency_.record(total_ms);
}

void ServiceMetrics::on_faults(std::uint64_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  counts_.device_faults += n;
}

void ServiceMetrics::on_compute_retry() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.compute_retries;
}

void ServiceMetrics::on_fallback() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.fallbacks;
}

void ServiceMetrics::on_degraded() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.degraded;
}

void ServiceMetrics::on_cancelled(double time_to_cancel_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.cancellations;
  if (time_to_cancel_ms >= 0.0) time_to_cancel_ms_.add(time_to_cancel_ms);
}

void ServiceMetrics::on_mutation(std::uint64_t applied, std::uint64_t noops) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.mutations;
  counts_.mutation_updates += applied;
  counts_.mutation_noops += noops;
}

void ServiceMetrics::on_refresh_patched(double affected_fraction) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.refresh_patched;
  affected_fraction_.add(affected_fraction);
}

void ServiceMetrics::on_refresh_invalidated(std::uint64_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  counts_.refresh_invalidated += n;
}

void ServiceMetrics::on_reconnect() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.net_reconnects;
}

void ServiceMetrics::on_heartbeat_miss() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.net_heartbeat_misses;
}

void ServiceMetrics::on_approx_served() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.approx_served;
}

void ServiceMetrics::on_approx_stratum() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.approx_strata;
}

void ServiceMetrics::on_refine_queued() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.refine_jobs;
}

void ServiceMetrics::on_refine_rung() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.refine_rungs;
}

void ServiceMetrics::on_refine_dropped() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.refine_dropped;
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s = counts_;
  s.latency_p50_ms = latency_.quantile(0.50);
  s.latency_p90_ms = latency_.quantile(0.90);
  s.latency_p95_ms = latency_.quantile(0.95);
  s.latency_p99_ms = latency_.quantile(0.99);
  s.latency_mean_ms = latency_.mean_ms();
  s.latency_max_ms = latency_.max_ms();
  s.compute_mean_ms = compute_ms_.mean();
  s.time_to_cancel_mean_ms = time_to_cancel_ms_.mean();
  s.time_to_cancel_max_ms = time_to_cancel_ms_.max();
  if (affected_fraction_.count() > 0) {
    s.affected_fraction_mean = affected_fraction_.mean();
    s.affected_fraction_max = affected_fraction_.max();
  }
  s.uptime_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                         .count();
  s.qps = s.uptime_seconds > 0.0 ? static_cast<double>(s.completed) / s.uptime_seconds : 0.0;
  return s;
}

std::string format_report(const MetricsSnapshot& s) {
  char buf[2048];
  const int written = std::snprintf(
      buf, sizeof(buf),
      "== hbc::service metrics ==\n"
      "uptime      %.2f s, %zu workers, %.1f completed QPS\n"
      "requests    submitted=%llu completed=%llu computed=%llu errors=%llu\n"
      "cache       hits=%llu misses=%llu hit_rate=%.1f%% entries=%zu"
      " bytes=%zu/%zu evictions=%llu\n"
      "coalescing  coalesced=%llu\n"
      "admission   shed=%llu rejected_full=%llu rejected_deadline=%llu"
      " deadline_dropped=%llu graph_not_found=%llu\n"
      "queue       depth=%zu peak=%zu\n"
      "resilience  faults=%llu retries=%llu fallbacks=%llu degraded=%llu"
      " cancelled=%llu time_to_cancel_ms mean=%.3f max=%.3f\n"
      "network     reconnects=%llu heartbeat_misses=%llu\n"
      "approx      served=%llu strata=%llu refine_jobs=%llu refine_rungs=%llu"
      " refine_dropped=%llu entries=%zu bytes=%zu evictions=%llu\n"
      "dynamic     mutations=%llu updates=%llu noops=%llu refresh_patched=%llu"
      " invalidated=%llu affected_frac mean=%.3f max=%.3f\n"
      "latency_ms  p50=%.3f p90=%.3f p95=%.3f p99=%.3f mean=%.3f max=%.3f"
      " (n=%llu)\n"
      "compute_ms  mean=%.3f\n",
      s.uptime_seconds, s.workers, s.qps,
      static_cast<unsigned long long>(s.submitted),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.computed),
      static_cast<unsigned long long>(s.errors),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.cache_misses), 100.0 * s.cache_hit_rate(),
      s.cache_entries, s.cache_bytes, s.cache_budget_bytes,
      static_cast<unsigned long long>(s.cache_evictions),
      static_cast<unsigned long long>(s.coalesced),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.rejected_full),
      static_cast<unsigned long long>(s.rejected_deadline),
      static_cast<unsigned long long>(s.deadline_dropped),
      static_cast<unsigned long long>(s.graph_not_found),
      s.queue_depth, s.queue_peak_depth,
      static_cast<unsigned long long>(s.device_faults),
      static_cast<unsigned long long>(s.compute_retries),
      static_cast<unsigned long long>(s.fallbacks),
      static_cast<unsigned long long>(s.degraded),
      static_cast<unsigned long long>(s.cancellations),
      s.time_to_cancel_mean_ms, s.time_to_cancel_max_ms,
      static_cast<unsigned long long>(s.net_reconnects),
      static_cast<unsigned long long>(s.net_heartbeat_misses),
      static_cast<unsigned long long>(s.approx_served),
      static_cast<unsigned long long>(s.approx_strata),
      static_cast<unsigned long long>(s.refine_jobs),
      static_cast<unsigned long long>(s.refine_rungs),
      static_cast<unsigned long long>(s.refine_dropped),
      s.approx_entries, s.approx_bytes,
      static_cast<unsigned long long>(s.approx_evictions),
      static_cast<unsigned long long>(s.mutations),
      static_cast<unsigned long long>(s.mutation_updates),
      static_cast<unsigned long long>(s.mutation_noops),
      static_cast<unsigned long long>(s.refresh_patched),
      static_cast<unsigned long long>(s.refresh_invalidated),
      s.affected_fraction_mean, s.affected_fraction_max,
      s.latency_p50_ms, s.latency_p90_ms, s.latency_p95_ms, s.latency_p99_ms,
      s.latency_mean_ms, s.latency_max_ms,
      static_cast<unsigned long long>(s.completed),
      s.compute_mean_ms);
  return std::string(buf, written > 0 ? static_cast<std::size_t>(written) : 0);
}

}  // namespace hbc::service
