file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_sampling.dir/test_hybrid_sampling.cpp.o"
  "CMakeFiles/test_hybrid_sampling.dir/test_hybrid_sampling.cpp.o.d"
  "test_hybrid_sampling"
  "test_hybrid_sampling.pdb"
  "test_hybrid_sampling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
