#include <cmath>
#include <numbers>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace hbc::graph::gen {

// Uniform points in the unit square; neighbours found with a uniform grid
// of cell size `radius` so generation is O(n + m) expected.
CSRGraph rgg(const RggParams& params) {
  const std::uint64_t n64 = std::uint64_t{1} << params.scale;
  const VertexId n = static_cast<VertexId>(n64);
  util::Xoshiro256 rng(params.seed);

  double radius = params.radius;
  if (radius <= 0.0) {
    // Expected directed degree of an interior vertex is n * pi * r^2.
    radius = std::sqrt(params.target_avg_degree /
                       (std::numbers::pi * static_cast<double>(n)));
  }

  std::vector<double> x(n), y(n);
  for (VertexId v = 0; v < n; ++v) {
    x[v] = rng.next_double();
    y[v] = rng.next_double();
  }

  const std::uint32_t cells = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::floor(1.0 / radius)));
  const double cell_size = 1.0 / cells;
  auto cell_of = [&](double coord) {
    auto c = static_cast<std::uint32_t>(coord / cell_size);
    return std::min(c, cells - 1);
  };

  // Bucket vertices by cell (counting sort).
  std::vector<std::uint32_t> cell_count(static_cast<std::size_t>(cells) * cells + 1, 0);
  auto cell_index = [&](VertexId v) {
    return static_cast<std::size_t>(cell_of(y[v])) * cells + cell_of(x[v]);
  };
  for (VertexId v = 0; v < n; ++v) ++cell_count[cell_index(v) + 1];
  for (std::size_t i = 1; i < cell_count.size(); ++i) cell_count[i] += cell_count[i - 1];
  std::vector<VertexId> bucketed(n);
  {
    std::vector<std::uint32_t> cursor(cell_count.begin(), cell_count.end() - 1);
    for (VertexId v = 0; v < n; ++v) bucketed[cursor[cell_index(v)]++] = v;
  }

  GraphBuilder builder(n);
  const double r2 = radius * radius;
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t cx = cell_of(x[v]);
    const std::uint32_t cy = cell_of(y[v]);
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const std::int64_t nx = static_cast<std::int64_t>(cx) + dx;
        const std::int64_t ny = static_cast<std::int64_t>(cy) + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        const std::size_t cell = static_cast<std::size_t>(ny) * cells + nx;
        for (std::uint32_t i = cell_count[cell]; i < cell_count[cell + 1]; ++i) {
          const VertexId w = bucketed[i];
          if (w <= v) continue;  // each undirected pair once
          const double ddx = x[v] - x[w];
          const double ddy = y[v] - y[w];
          if (ddx * ddx + ddy * ddy <= r2) builder.add_edge(v, w);
        }
      }
    }
  }
  return builder.build();
}

}  // namespace hbc::graph::gen
