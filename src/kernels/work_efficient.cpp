#include "kernels/block_driver.hpp"
#include "kernels/kernels.hpp"

namespace hbc::kernels {

using graph::CSRGraph;

// The paper's work-efficient kernel (Algorithms 1–3): explicit frontier
// queues in the forward stage, the S/ends level index feeding a
// successor-based (atomic-free, predecessor-free) dependency stage.
// Local storage is O(n) per block — the scalability win over both prior
// implementations.
RunResult run_work_efficient(const CSRGraph& g, const RunConfig& config) {
  DriverLayout layout;
  layout.label = "work-efficient";
  layout.per_block.push_back(
      {BCWorkspace::work_efficient_bytes(g.num_vertices()), "we.block_locals"});
  if (config.use_predecessor_bitmap) {
    layout.per_block.push_back(
        {BCWorkspace::predecessor_bitmap_bytes(g.num_directed_edges()),
         "we.predecessor_bitmap"});
  }
  BlockDriver driver(g, config, layout);

  driver.run([&](BlockDriver::RootTask& task) {
    BCWorkspace& ws = task.ws;
    gpusim::BlockContext& ctx = task.ctx;
    ws.init_root(task.root, ctx);

    // Stage 1 (Algorithm 2).
    {
      SimSpan stage(task.trace, ctx, "shortest-path", trace::kPhase);
      for (;;) {
        const std::uint64_t before = ctx.cycles();
        const BCWorkspace::LevelStats level =
            ws.we_forward_level(ctx, config.use_predecessor_bitmap);
        if (task.stats) {
          task.stats->iterations.push_back({ws.current_depth(), level.vertex_frontier,
                                            level.edge_frontier, ctx.cycles() - before,
                                            Mode::WorkEfficient});
        }
        trace_level(task.trace, ctx, ws.current_depth(), level.vertex_frontier,
                    level.edge_frontier, Mode::WorkEfficient, ctx.cycles() - before);
        ++task.we_levels;
        if (ws.q_next_len() == 0) break;
        ws.finish_level(ctx);
      }
    }
    const std::uint32_t max_depth = ws.max_depth();
    if (task.stats) task.stats->max_depth = max_depth;

    // Stage 2 (Algorithm 3): depth = d[S[S_len-1]] - 1 down to 1.
    {
      SimSpan stage(task.trace, ctx, "dependency", trace::kPhase);
      for (std::uint32_t dep = max_depth; dep-- > 1;) {
        if (config.use_predecessor_bitmap) {
          ws.we_backward_level_pred(ctx, dep);
        } else {
          ws.we_backward_level(ctx, dep);
        }
      }
    }

    ws.accumulate_bc(task.bc, task.root, /*use_queue=*/true, ctx);
  });

  return driver.finish();
}

}  // namespace hbc::kernels
