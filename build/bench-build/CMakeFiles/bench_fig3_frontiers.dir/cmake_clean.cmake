file(REMOVE_RECURSE
  "../bench/bench_fig3_frontiers"
  "../bench/bench_fig3_frontiers.pdb"
  "CMakeFiles/bench_fig3_frontiers.dir/bench_fig3_frontiers.cpp.o"
  "CMakeFiles/bench_fig3_frontiers.dir/bench_fig3_frontiers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_frontiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
