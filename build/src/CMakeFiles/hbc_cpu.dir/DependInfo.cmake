
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/approx.cpp" "src/CMakeFiles/hbc_cpu.dir/cpu/approx.cpp.o" "gcc" "src/CMakeFiles/hbc_cpu.dir/cpu/approx.cpp.o.d"
  "/root/repo/src/cpu/brandes.cpp" "src/CMakeFiles/hbc_cpu.dir/cpu/brandes.cpp.o" "gcc" "src/CMakeFiles/hbc_cpu.dir/cpu/brandes.cpp.o.d"
  "/root/repo/src/cpu/dynamic_bc.cpp" "src/CMakeFiles/hbc_cpu.dir/cpu/dynamic_bc.cpp.o" "gcc" "src/CMakeFiles/hbc_cpu.dir/cpu/dynamic_bc.cpp.o.d"
  "/root/repo/src/cpu/edge_bc.cpp" "src/CMakeFiles/hbc_cpu.dir/cpu/edge_bc.cpp.o" "gcc" "src/CMakeFiles/hbc_cpu.dir/cpu/edge_bc.cpp.o.d"
  "/root/repo/src/cpu/fine_grained.cpp" "src/CMakeFiles/hbc_cpu.dir/cpu/fine_grained.cpp.o" "gcc" "src/CMakeFiles/hbc_cpu.dir/cpu/fine_grained.cpp.o.d"
  "/root/repo/src/cpu/naive.cpp" "src/CMakeFiles/hbc_cpu.dir/cpu/naive.cpp.o" "gcc" "src/CMakeFiles/hbc_cpu.dir/cpu/naive.cpp.o.d"
  "/root/repo/src/cpu/parallel_brandes.cpp" "src/CMakeFiles/hbc_cpu.dir/cpu/parallel_brandes.cpp.o" "gcc" "src/CMakeFiles/hbc_cpu.dir/cpu/parallel_brandes.cpp.o.d"
  "/root/repo/src/cpu/weighted_brandes.cpp" "src/CMakeFiles/hbc_cpu.dir/cpu/weighted_brandes.cpp.o" "gcc" "src/CMakeFiles/hbc_cpu.dir/cpu/weighted_brandes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
