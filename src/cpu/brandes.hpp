#pragma once

// Serial Brandes algorithm (Brandes 2001) — the exact-BC oracle every
// GPU-model kernel is validated against, and the per-node CPU baseline.
//
// Matches the paper's conventions: unweighted BFS shortest paths, the
// successor form of the dependency accumulation, and no halving — for an
// undirected graph each unordered pair {s,t} contributes twice (once per
// direction), so callers who want the "count each pair once" convention
// divide by 2 (core/bc.hpp offers this as an option).

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/cancel.hpp"

namespace hbc::cpu {

struct BrandesOptions {
  /// Restrict the computation to these source vertices (empty = all).
  /// This is exactly the paper's root-subset mechanism used for
  /// approximation and for multi-GPU work distribution.
  std::vector<graph::VertexId> sources;
  /// Polled before each source; throws util::Cancelled within one root.
  util::CancelToken cancel;
};

struct BrandesResult {
  std::vector<double> bc;
  std::uint64_t roots_processed = 0;
  std::uint64_t edges_traversed = 0;  // useful traversals (forward stage)
  std::uint32_t max_depth_seen = 0;
};

BrandesResult brandes(const graph::CSRGraph& g, const BrandesOptions& options = {});

/// Single-source stage pair: computes the dependency vector delta for
/// source s and accumulates it into bc (bc[s] excluded). Exposed for
/// tests that verify per-source invariants.
void brandes_single_source(const graph::CSRGraph& g, graph::VertexId s,
                           std::span<double> bc, BrandesResult* stats = nullptr);

/// The dependency vector delta_s(v) for all v (without accumulation).
/// Shared by the approximation estimators and the dynamic updater.
std::vector<double> single_source_dependencies(const graph::CSRGraph& g,
                                               graph::VertexId s);

}  // namespace hbc::cpu
