#include "service/service.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <thread>

#include "gpusim/faults.hpp"
#include "gpusim/memory.hpp"
#include "graph/io.hpp"
#include "util/backoff.hpp"
#include "util/timer.hpp"

namespace hbc::service {

namespace {

using Clock = std::chrono::steady_clock;

std::string make_key(std::uint64_t fingerprint, const core::Options& options) {
  return fingerprint_prefix(fingerprint) + core::options_signature(options);
}

}  // namespace

const char* to_string(QueryStatus status) noexcept {
  switch (status) {
    case QueryStatus::Ok: return "ok";
    case QueryStatus::QueueFull: return "queue-full";
    case QueryStatus::DeadlineExceeded: return "deadline-exceeded";
    case QueryStatus::GraphNotFound: return "graph-not-found";
    case QueryStatus::ServiceStopped: return "service-stopped";
    case QueryStatus::BadRequest: return "bad-request";
    case QueryStatus::Failed: return "failed";
  }
  return "?";
}

BcService::BcService(ServiceConfig config)
    : cfg_(std::move(config)),
      cache_(cfg_.cache_bytes),
      queue_(cfg_.admission),
      workers_(cfg_.workers != 0
                   ? cfg_.workers
                   : std::max<std::size_t>(1, std::thread::hardware_concurrency())),
      pool_(std::make_unique<util::ThreadPool>(workers_)) {
  for (std::size_t i = 0; i < workers_; ++i) {
    pool_->submit([this] { worker_loop(); });
  }
  if (cfg_.refresh.enabled) {
    refresh_pool_ = std::make_unique<util::ThreadPool>(
        std::max<std::size_t>(1, cfg_.refresh.threads));
    refresher_ = std::thread([this] { refresher_loop(); });
  }
}

BcService::~BcService() { stop(); }

void BcService::load_graph(const std::string& id, graph::CSRGraph g) {
  load_graph(id, std::make_shared<const graph::CSRGraph>(std::move(g)));
}

void BcService::load_graph(const std::string& id,
                           std::shared_ptr<const graph::CSRGraph> g) {
  if (!g) throw std::invalid_argument("load_graph: null graph");
  GraphEntry entry;
  entry.graph = std::move(g);
  entry.fingerprint = graph_fingerprint(*entry.graph);  // O(n+m), outside the lock
  std::lock_guard<std::mutex> lock(mu_);
  graphs_[id] = std::move(entry);
}

std::uint64_t BcService::load_graph_file(const std::string& id,
                                         const std::string& path) {
  const auto ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  // .hbcg/.hbcgz open zero-copy (register-by-path → mmap); everything
  // else goes through the format loaders into heap. read_auto would make
  // the same choice, but dispatching here keeps the intent explicit.
  graph::CSRGraph g = (ends_with(".hbcg") || ends_with(".hbcgz"))
                          ? graph::io::open_mapped(path)
                          : graph::io::read_auto(path);
  const std::uint64_t fingerprint = g.fingerprint();
  load_graph(id, std::make_shared<const graph::CSRGraph>(std::move(g)));
  return fingerprint;
}

bool BcService::evict_graph(const std::string& id) {
  std::uint64_t fingerprint = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = graphs_.find(id);
    if (it == graphs_.end()) return false;
    fingerprint = it->second.fingerprint;
    graphs_.erase(it);
    // Another id registered over the same structure keeps the cache warm.
    for (const auto& [other_id, entry] : graphs_) {
      if (entry.fingerprint == fingerprint) return true;
    }
  }
  const std::string prefix = fingerprint_prefix(fingerprint);
  cache_.erase_if([&prefix](const std::string& key) {
    return key.compare(0, prefix.size(), prefix) == 0;
  });
  return true;
}

std::vector<std::string> BcService::graph_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(graphs_.size());
  for (const auto& [id, entry] : graphs_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::shared_ptr<const graph::CSRGraph> BcService::graph(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = graphs_.find(id);
  return it == graphs_.end() ? nullptr : it->second.graph;
}

std::optional<BcService::GraphInfo> BcService::graph_info(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = graphs_.find(id);
  if (it == graphs_.end()) return std::nullopt;
  const GraphEntry& entry = it->second;
  const auto& storage = *entry.graph->storage();
  GraphInfo info;
  info.fingerprint = entry.fingerprint;
  info.epoch = entry.epoch;
  info.residency = storage.residency();
  info.num_vertices = entry.graph->num_vertices();
  info.num_directed_edges = entry.graph->num_directed_edges();
  info.resident_bytes = storage.resident_bytes();
  info.mapped_bytes = storage.mapped_bytes();
  info.adjacency_bytes = storage.adjacency_bytes();
  info.decoded_bytes = storage.decoded_row_bytes() + storage.decoded_adjacency_bytes();
  return info;
}

std::uint64_t BcService::graph_epoch(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = graphs_.find(id);
  return it == graphs_.end() ? 0 : it->second.epoch;
}

MutationResult BcService::mutate_graph(const std::string& id,
                                       const dyn::UpdateBatch& batch) {
  std::shared_ptr<dyn::VersionedGraph> vg;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) throw std::runtime_error("mutate_graph: service is stopped");
    const auto it = graphs_.find(id);
    if (it == graphs_.end()) {
      throw std::invalid_argument("mutate_graph: no graph registered as '" + id + "'");
    }
    GraphEntry& entry = it->second;
    if (!entry.versioned) {
      // Throws invalid_argument for directed graphs; nothing changed then.
      entry.versioned = std::make_shared<dyn::VersionedGraph>(entry.graph, cfg_.tracer);
    }
    vg = entry.versioned;
  }

  // Stage + commit outside mu_: the copy-on-write CSR rebuild is O(n + m)
  // and must not block submits. Mutations of the same graph serialize on
  // the VersionedGraph's own mutex.
  const dyn::CommitResult cr = vg->apply(batch);

  MutationResult out;
  out.epoch = cr.after.id;
  out.fingerprint_before = cr.before.fingerprint;
  out.fingerprint_after = cr.after.fingerprint;
  out.applied = cr.applied.size();
  out.noops = cr.noops;
  if (cr.applied.empty()) return out;  // all-no-op batch: same epoch

  bool fingerprint_shared = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = graphs_.find(id);
    // Skip the registry update if the id was evicted or reloaded while we
    // were rebuilding — the commit still happened on `vg`, but that chain
    // no longer backs the registered id.
    if (it != graphs_.end() && it->second.versioned == vg) {
      it->second.graph = cr.after.graph;
      it->second.fingerprint = cr.after.fingerprint;
      it->second.epoch = cr.after.id;
    }
    for (const auto& [other_id, entry] : graphs_) {
      if (other_id != id && entry.fingerprint == cr.before.fingerprint) {
        fingerprint_shared = true;
      }
    }
  }
  metrics_.on_mutation(out.applied, out.noops);
  trace_instant("mutate", cr.after.id);

  // Old-fingerprint cache entries can never answer queries against the
  // mutated graph (the fingerprint is part of the key), so they are dead
  // weight: drop them, or hand them to the refresher to patch forward —
  // unless another registered graph still has the old structure.
  if (fingerprint_shared) return out;
  const std::string prefix = fingerprint_prefix(cr.before.fingerprint);
  const auto is_stale = [&prefix](const std::string& key) {
    return key.compare(0, prefix.size(), prefix) == 0;
  };
  if (cfg_.refresh.enabled) {
    RefreshJob job;
    job.old_fingerprint = cr.before.fingerprint;
    job.new_fingerprint = cr.after.fingerprint;
    job.before = cr.before.graph;
    job.after = cr.after.graph;
    job.applied = cr.applied;
    job.entries = cache_.extract_if(is_stale);
    out.cache_refresh_queued = job.entries.size();
    if (!job.entries.empty()) {
      std::lock_guard<std::mutex> lock(refresh_mu_);
      refresh_queue_.push_back(std::move(job));
      refresh_cv_.notify_one();
    }
  } else {
    out.cache_invalidated = cache_.erase_if(is_stale);
    metrics_.on_refresh_invalidated(out.cache_invalidated);
  }
  return out;
}

void BcService::drain_refreshes() {
  std::unique_lock<std::mutex> lock(refresh_mu_);
  refresh_idle_cv_.wait(lock,
                        [this] { return refresh_queue_.empty() && !refresh_active_; });
}

void BcService::refresher_loop() {
  for (;;) {
    RefreshJob job;
    {
      std::unique_lock<std::mutex> lock(refresh_mu_);
      refresh_cv_.wait(lock,
                       [this] { return refresh_stop_ || !refresh_queue_.empty(); });
      if (refresh_stop_) {
        // Pending jobs die with the service; their entries were already
        // out of the cache, so nothing stale can ever be served.
        refresh_queue_.clear();
        refresh_idle_cv_.notify_all();
        return;
      }
      job = std::move(refresh_queue_.front());
      refresh_queue_.pop_front();
      refresh_active_ = true;
    }

    // A later mutation may have superseded this epoch already; patching
    // toward a fingerprint no registered graph has would only create
    // unreachable cache entries.
    bool target_live = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [gid, entry] : graphs_) {
        if (entry.fingerprint == job.new_fingerprint) {
          target_live = true;
          break;
        }
      }
    }
    const std::string old_prefix = fingerprint_prefix(job.old_fingerprint);
    const std::string new_prefix = fingerprint_prefix(job.new_fingerprint);

    std::size_t patched = 0;
    std::uint64_t dropped = 0;
    for (auto& [key, cached] : job.entries) {
      if (!target_live || !cached->refreshable ||
          patched >= cfg_.refresh.budget_entries) {
        ++dropped;
        continue;
      }
      try {
        // Never patch in place: responses still share the old entry.
        auto next = std::make_shared<CachedResult>();
        next->result = cached->result;
        next->refreshable = true;
        dyn::IncrementalConfig icfg;
        icfg.churn_threshold = cfg_.refresh.churn_threshold;
        icfg.reduce_stripes = cfg_.refresh.reduce_stripes;
        icfg.tracer = cfg_.tracer;
        const dyn::BatchStats stats =
            dyn::refresh_scores(*job.before, *job.after, job.applied,
                                next->result.scores, *refresh_pool_, icfg);
        next->bytes = estimate_result_bytes(next->result);
        cache_.put(new_prefix + key.substr(old_prefix.size()), std::move(next));
        ++patched;
        metrics_.on_refresh_patched(stats.affected_fraction);
        trace_instant("refresh-patch", job.new_fingerprint);
      } catch (const std::exception&) {
        ++dropped;  // a failed patch degrades to an invalidation
      }
    }
    metrics_.on_refresh_invalidated(dropped);

    {
      std::lock_guard<std::mutex> lock(refresh_mu_);
      refresh_active_ = false;
      if (refresh_queue_.empty()) refresh_idle_cv_.notify_all();
    }
  }
}

trace::Sink* BcService::trace_sink() const {
  return cfg_.tracer != nullptr ? cfg_.tracer->thread_sink() : nullptr;
}

void BcService::trace_instant(const char* name, std::uint64_t id) const {
  if (cfg_.tracer == nullptr) return;
  trace::Sink* sink = cfg_.tracer->thread_sink();
  if (sink == nullptr || !sink->wants(trace::kService)) return;
  sink->instant(name, trace::kService, cfg_.tracer->now_ns(), {{"id", id}});
}

Ticket BcService::ready_ticket(std::uint64_t id, Response response) {
  std::promise<Response> promise;
  Ticket ticket;
  ticket.id = id;
  ticket.cache_hit = response.from_cache;
  ticket.shed = response.shed;
  promise.set_value(std::move(response));
  ticket.future = promise.get_future().share();
  return ticket;
}

Ticket BcService::submit(Request request) {
  metrics_.on_submitted();
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  trace_instant("submit", id);
  const Clock::time_point submitted = Clock::now();
  util::Timer turnaround;

  std::shared_ptr<const graph::CSRGraph> g;
  std::uint64_t fingerprint = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      Response r;
      r.status = QueryStatus::ServiceStopped;
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    const auto it = graphs_.find(request.graph_id);
    if (it == graphs_.end()) {
      metrics_.on_graph_not_found();
      trace_instant("graph-missing", id);
      Response r;
      r.status = QueryStatus::GraphNotFound;
      r.error = "no graph registered as '" + request.graph_id + "'";
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    g = it->second.graph;
    fingerprint = it->second.fingerprint;

    std::string key = make_key(fingerprint, request.options);
    if (auto cached = cache_.get(key)) {
      trace_instant("cache-hit", id);
      Response r;
      r.status = QueryStatus::Ok;
      r.result = std::shared_ptr<const core::BCResult>(cached, &cached->result);
      r.from_cache = true;
      r.total_ms = turnaround.elapsed_ms();
      metrics_.on_cache_hit(r.total_ms);
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    if (const auto inflight = inflight_.find(key); inflight != inflight_.end()) {
      metrics_.on_coalesced();
      trace_instant("coalesced", id);
      Ticket t;
      t.future = inflight->second->future;
      t.id = id;
      t.top_k = request.top_k;
      t.coalesced = true;
      t.shed = inflight->second->shed;
      return t;
    }
  }

  // Admission (blocking for Block policy) happens OUTSIDE mu_ so a waiting
  // submitter never wedges workers that need the lock to publish results.
  const Clock::time_point deadline = request.timeout.count() > 0
                                         ? submitted + request.timeout
                                         : Clock::time_point::max();
  const Admit admit = queue_.admit(request.options, deadline);
  switch (admit) {
    case Admit::RejectedFull: {
      metrics_.on_rejected_full();
      trace_instant("reject-full", id);
      Response r;
      r.status = QueryStatus::QueueFull;
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    case Admit::RejectedDeadline: {
      metrics_.on_rejected_deadline();
      trace_instant("reject-deadline", id);
      Response r;
      r.status = QueryStatus::DeadlineExceeded;
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    case Admit::RejectedClosed: {
      Response r;
      r.status = QueryStatus::ServiceStopped;
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    case Admit::Admitted:
    case Admit::Shed:
      break;
  }
  const bool shed = admit == Admit::Shed;
  if (shed) {
    metrics_.on_shed();
    trace_instant("shed", id);
  }

  // The shed downgrade may have rewritten the options, so the key is
  // final only now; re-check cache and in-flight under the lock before
  // becoming the leader (also closes the submit/submit race above).
  const std::string key = make_key(fingerprint, request.options);
  std::shared_ptr<Inflight> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      queue_.cancel();
      Response r;
      r.status = QueryStatus::ServiceStopped;
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    if (auto cached = cache_.get(key)) {
      queue_.cancel();
      trace_instant("cache-hit", id);
      Response r;
      r.status = QueryStatus::Ok;
      r.result = std::shared_ptr<const core::BCResult>(cached, &cached->result);
      r.from_cache = true;
      r.shed = shed;
      r.total_ms = turnaround.elapsed_ms();
      metrics_.on_cache_hit(r.total_ms);
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    if (const auto inflight = inflight_.find(key); inflight != inflight_.end()) {
      queue_.cancel();
      metrics_.on_coalesced();
      trace_instant("coalesced", id);
      Ticket t;
      t.future = inflight->second->future;
      t.id = id;
      t.top_k = request.top_k;
      t.coalesced = true;
      t.shed = inflight->second->shed;
      return t;
    }
    entry = std::make_shared<Inflight>();
    entry->future = entry->promise.get_future().share();
    entry->key = key;
    entry->shed = shed;
    inflight_[key] = entry;
    metrics_.on_cache_miss();

    // Push while still holding mu_: stop() flips stopped_ under the same
    // lock before draining, so a job is either visible to that drain or
    // the submit above already bailed with ServiceStopped — a leader can
    // never enqueue into a queue nobody will ever pop again.
    Job job;
    job.entry = entry;
    job.graph = std::move(g);
    job.options = std::move(request.options);
    job.submitted = submitted;
    job.deadline = deadline;
    queue_.push(std::move(job));
    trace_instant("enqueue", id);
  }

  Ticket t;
  t.future = entry->future;
  t.id = id;
  t.top_k = request.top_k;
  t.shed = shed;
  return t;
}

Response BcService::wait(const Ticket& ticket) const {
  Response r = ticket.future.get();
  r.coalesced = ticket.coalesced;
  if (ticket.cache_hit) r.from_cache = true;
  if (ticket.top_k > 0 && r.result) {
    r.top = core::top_k(r.result->scores, ticket.top_k);
  }
  return r;
}

Response BcService::query(Request request) {
  const Ticket ticket = submit(std::move(request));
  return wait(ticket);
}

core::BCResult BcService::run_compute(const graph::CSRGraph& g, const core::Options& o) {
  // Apply the service's per-request thread budget to GPU-model runs. The
  // cache key was computed from the request's options at submit time —
  // that stays correct because options_signature excludes cpu_threads for
  // GPU-model strategies and BlockDriver results are thread-invariant.
  if (cfg_.compute_threads != 0 && core::uses_gpu_model(o.strategy) &&
      o.cpu_threads != cfg_.compute_threads) {
    core::Options budgeted = o;
    budgeted.cpu_threads = cfg_.compute_threads;
    return cfg_.compute_fn ? cfg_.compute_fn(g, budgeted) : core::compute(g, budgeted);
  }
  return cfg_.compute_fn ? cfg_.compute_fn(g, o) : core::compute(g, o);
}

namespace {

/// Deadline- and cancel-aware backoff sleep: never sleeps past the
/// moment the token would fire, and wakes promptly on stop().
void backoff_sleep(std::chrono::milliseconds budget, const util::CancelToken& cancel) {
  const Clock::time_point until = Clock::now() + budget;
  while (Clock::now() < until) {
    if (cancel.cancelled()) return;  // the next check() will throw
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

core::BCResult BcService::compute_resilient(const graph::CSRGraph& g,
                                            const core::Options& requested,
                                            const util::CancelSource& cancel,
                                            bool& degraded) {
  degraded = false;
  core::Options opts = requested;
  opts.resilience.cancel = cancel.token();

  // Shared fleet retry policy: exponential from retry_backoff up to
  // retry_backoff_max, deterministically jittered per attempt.
  util::BackoffConfig backoff_cfg;
  backoff_cfg.initial = cfg_.retry_backoff;
  backoff_cfg.max = cfg_.retry_backoff_max;
  util::Backoff retry_backoff(backoff_cfg);

  // Rung 0: the requested strategy, with whole-run retries while failures
  // are transient. Each retry bumps fault_retry_epoch, so a seeded
  // FaultPlan's transient faults deterministically clear.
  core::BCResult partial;
  bool have_partial = false;
  for (std::uint32_t attempt = 0;; ++attempt) {
    opts.resilience.cancel.check();
    try {
      core::BCResult r = run_compute(g, opts);
      metrics_.on_faults(r.faults.faults_injected);
      if (r.faults.complete()) return r;  // clean or fully recovered
      if (r.faults.all_failures_transient() && attempt < cfg_.max_compute_retries) {
        metrics_.on_compute_retry();
        trace_instant("compute-retry", attempt + 1);
        backoff_sleep(retry_backoff.next(), opts.resilience.cancel);
        opts.resilience.fault_retry_epoch =
            requested.resilience.fault_retry_epoch + attempt + 1;
        continue;
      }
      partial = std::move(r);  // persistent failures (or retries exhausted)
      have_partial = true;
    } catch (const util::Cancelled&) {
      throw;
    } catch (const std::invalid_argument&) {
      throw;  // client error — never worth a fallback
    } catch (const hbc::DeviceFault& f) {
      // A fault escaped compute (e.g. an injecting compute_fn hook).
      metrics_.on_faults(1);
      if (f.transient() && attempt < cfg_.max_compute_retries) {
        metrics_.on_compute_retry();
        trace_instant("compute-retry", attempt + 1);
        backoff_sleep(retry_backoff.next(), opts.resilience.cancel);
        opts.resilience.fault_retry_epoch =
            requested.resilience.fault_retry_epoch + attempt + 1;
        continue;
      }
      if (!cfg_.enable_fallback || !core::uses_gpu_model(requested.strategy)) throw;
    } catch (const gpusim::DeviceOutOfMemory&) {
      // Resource exhaustion never clears by retrying — descend directly.
      if (!cfg_.enable_fallback || !core::uses_gpu_model(requested.strategy)) throw;
    }
    break;
  }

  if (!cfg_.enable_fallback || !core::uses_gpu_model(requested.strategy)) {
    // No ladder: surface the partial result, marked degraded (failed
    // roots are listed in result.faults; the cache never sees it).
    if (have_partial) {
      degraded = true;
      metrics_.on_degraded();
      trace_instant("degraded-partial", 0);
      return partial;
    }
    throw std::runtime_error("compute failed with no result");
  }

  // Rung 1: exact scores on the CPU — slower, but immune to device faults.
  degraded = true;
  metrics_.on_fallback();
  trace_instant("fallback-cpu-exact", 0);
  try {
    core::Options cpu = requested;
    cpu.strategy = core::Strategy::CpuParallel;
    cpu.resilience.fault_plan.reset();
    cpu.resilience.cancel = cancel.token();
    if (cfg_.compute_threads != 0) cpu.cpu_threads = cfg_.compute_threads;
    core::BCResult r = run_compute(g, cpu);
    metrics_.on_degraded();
    return r;
  } catch (const util::Cancelled&) {
    throw;
  } catch (const std::exception&) {
    // fall through to the approximation rung
  }

  // Rung 2: McLaughlin & Bader Algorithm-5 style approximation — a
  // principled partial answer when the exact one can't be afforded.
  metrics_.on_fallback();
  trace_instant("fallback-sampling", 0);
  core::Options approx = requested;
  approx.strategy = core::Strategy::Sampling;
  approx.resilience.fault_plan.reset();
  approx.resilience.cancel = cancel.token();
  approx.roots.clear();
  approx.sample_roots = std::max<std::uint32_t>(1, cfg_.fallback_sample_roots);
  core::BCResult r = run_compute(g, approx);
  metrics_.on_degraded();
  return r;
}

void BcService::worker_loop() {
  for (;;) {
    std::optional<Job> job = queue_.pop();
    if (!job) return;
    const std::shared_ptr<Inflight>& entry = job->entry;
    trace::ScopedSpan request_span(trace_sink(), cfg_.tracer, "request",
                                   trace::kService);

    Response resp;
    resp.shed = entry->shed;

    // Register this job's cancel source under mu_ while re-checking
    // stopped_: either stop() already ran (fast-complete, no compute) or
    // the source is visible in inflight_ for stop() to cancel — a compute
    // can never start unnoticed by a concurrent stop().
    util::CancelSource cancel = util::CancelSource::with_deadline(job->deadline);
    bool stopped = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped = stopped_;
      if (!stopped) entry->cancel = cancel;
    }

    if (stopped) {
      resp.status = QueryStatus::ServiceStopped;
    } else if (Clock::now() > job->deadline) {
      metrics_.on_deadline_dropped();
      resp.status = QueryStatus::DeadlineExceeded;
    } else {
      util::Timer timer;
      try {
        bool degraded = false;
        trace::ScopedSpan compute_span(trace_sink(), cfg_.tracer,
                                       "service-compute", trace::kCompute);
        core::BCResult computed = compute_resilient(*job->graph, job->options,
                                                    cancel, degraded);
        resp.compute_ms = timer.elapsed_ms();
        resp.degraded = degraded;

        // Degraded results are substitutes (or partial) — never cached, so
        // an identical later request gets a fresh shot at the real answer.
        if (!degraded) {
          auto cached = std::make_shared<CachedResult>();
          cached->result = std::move(computed);
          cached->bytes = estimate_result_bytes(cached->result);
          // Patchable on mutation: exact full BC with raw scores (the
          // refresher's dyn::refresh_scores contract). Decided here — the
          // result alone can't reveal the request's score scaling.
          cached->refreshable = !cached->result.approximate &&
                                cached->result.roots_processed ==
                                    job->graph->num_vertices() &&
                                job->options.roots.empty() &&
                                !job->options.halve_undirected &&
                                !job->options.normalize;
          cache_.put(entry->key, cached);
          resp.result =
              std::shared_ptr<const core::BCResult>(cached, &cached->result);
        } else {
          resp.result = std::make_shared<const core::BCResult>(std::move(computed));
        }

        resp.status = QueryStatus::Ok;
        resp.total_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - job->submitted)
                .count();
        metrics_.on_computed(resp.compute_ms, resp.total_ms);
      } catch (const util::Cancelled& c) {
        metrics_.on_cancelled(cancel.ms_since_cancel());
        resp.status = c.reason() == util::CancelReason::Deadline
                          ? QueryStatus::DeadlineExceeded
                          : QueryStatus::ServiceStopped;
        resp.error = c.what();
      } catch (const std::invalid_argument& e) {
        metrics_.on_error();
        resp.status = QueryStatus::BadRequest;
        resp.error = e.what();
      } catch (const std::exception& e) {
        metrics_.on_error();
        resp.status = QueryStatus::Failed;
        resp.error = e.what();
      } catch (...) {
        metrics_.on_error();
        resp.status = QueryStatus::Failed;
        resp.error = "unknown exception in compute";
      }
    }

    // Unregister before completing: once the promise is set the result is
    // in the cache (or failed), so later twins must go through the cache,
    // not attach to a dead entry.
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = inflight_.find(entry->key);
      if (it != inflight_.end() && it->second == entry) inflight_.erase(it);
    }
    entry->promise.set_value(std::move(resp));
  }
}

void BcService::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    // Cancel every in-flight computation under the same lock the workers
    // register their sources with: a worker either saw stopped_ (and
    // won't compute) or its source is here and gets cancelled. Running
    // computes unwind with util::Cancelled at their next root boundary
    // and complete their futures with ServiceStopped.
    for (auto& [key, entry] : inflight_) entry->cancel.cancel();
  }
  queue_.close();
  pool_.reset();  // workers fast-complete queued jobs, then join

  if (refresher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(refresh_mu_);
      refresh_stop_ = true;
    }
    refresh_cv_.notify_all();
    refresher_.join();
    refresh_pool_.reset();
  }

  // A submitter that was admitted before close() may have pushed after the
  // workers drained; answer anything left so no future is abandoned.
  while (std::optional<Job> job = queue_.pop()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = inflight_.find(job->entry->key);
      if (it != inflight_.end() && it->second == job->entry) inflight_.erase(it);
    }
    Response r;
    r.status = QueryStatus::ServiceStopped;
    job->entry->promise.set_value(std::move(r));
  }
}

std::size_t BcService::worker_count() const noexcept { return workers_; }

MetricsSnapshot BcService::metrics() const {
  MetricsSnapshot s = metrics_.snapshot();
  s.cache_evictions = cache_.evictions();
  s.cache_entries = cache_.size();
  s.cache_bytes = cache_.bytes();
  s.cache_budget_bytes = cache_.budget_bytes();
  s.queue_depth = queue_.depth();
  s.queue_peak_depth = queue_.peak_depth();
  s.workers = workers_;
  return s;
}

std::string BcService::metrics_report() const {
  std::string out = format_report(metrics());
  for (const std::string& id : graph_ids()) {
    const auto info = graph_info(id);
    if (!info) continue;  // evicted between the two calls
    char line[256];
    std::snprintf(line, sizeof(line),
                  "graph %-12s residency=%-17s n=%u m=%llu resident=%.1fMiB "
                  "mapped=%.1fMiB adjacency=%.1fMiB epoch=%llu\n",
                  id.c_str(), graph::storage::to_string(info->residency),
                  info->num_vertices,
                  static_cast<unsigned long long>(info->num_directed_edges),
                  static_cast<double>(info->resident_bytes) / (1024.0 * 1024.0),
                  static_cast<double>(info->mapped_bytes) / (1024.0 * 1024.0),
                  static_cast<double>(info->adjacency_bytes) / (1024.0 * 1024.0),
                  static_cast<unsigned long long>(info->epoch));
    out += line;
  }
  return out;
}

}  // namespace hbc::service
