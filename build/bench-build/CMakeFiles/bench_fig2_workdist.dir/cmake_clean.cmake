file(REMOVE_RECURSE
  "../bench/bench_fig2_workdist"
  "../bench/bench_fig2_workdist.pdb"
  "CMakeFiles/bench_fig2_workdist.dir/bench_fig2_workdist.cpp.o"
  "CMakeFiles/bench_fig2_workdist.dir/bench_fig2_workdist.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_workdist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
