#include "gpusim/memory.hpp"

#include <algorithm>
#include <sstream>

namespace hbc::gpusim {

namespace {
std::string oom_message(const std::string& label, std::uint64_t requested,
                        std::uint64_t available) {
  std::ostringstream os;
  os << "device out of memory allocating '" << label << "': requested "
     << requested << " bytes, " << available << " available";
  return os.str();
}
}  // namespace

DeviceOutOfMemory::DeviceOutOfMemory(const std::string& label, std::uint64_t requested,
                                     std::uint64_t available)
    : std::runtime_error(oom_message(label, requested, available)),
      requested_(requested),
      available_(available) {}

std::size_t GlobalMemory::allocate(std::uint64_t bytes, std::string label) {
  if (bytes > available()) {
    throw DeviceOutOfMemory(label, bytes, available());
  }
  used_ += bytes;
  high_water_ = std::max(high_water_, used_);
  allocations_.push_back({std::move(label), bytes, true});
  return allocations_.size() - 1;
}

void GlobalMemory::release(std::size_t id) noexcept {
  if (id >= allocations_.size() || !allocations_[id].live) return;
  allocations_[id].live = false;
  used_ -= allocations_[id].bytes;
}

void GlobalMemory::release_all() noexcept {
  for (auto& a : allocations_) a.live = false;
  used_ = 0;
  allocations_.clear();
}

std::vector<std::pair<std::string, std::uint64_t>> GlobalMemory::live_allocations() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& a : allocations_) {
    if (a.live) out.emplace_back(a.label, a.bytes);
  }
  return out;
}

}  // namespace hbc::gpusim
