// Google-benchmark micro-benchmarks of the algorithmic building blocks:
// host BFS, single-source Brandes, generator throughput, and the
// work-efficient kernel's forward stage. These measure real host wall
// time (not the device model) and track performance regressions in the
// library itself.

#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "cpu/brandes.hpp"
#include "cpu/edge_bc.hpp"
#include "cpu/weighted_brandes.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "gpusim/device.hpp"
#include "kernels/bc_state.hpp"

namespace {

using namespace hbc;

const graph::CSRGraph& cached_graph(const std::string& family, std::uint32_t scale) {
  static std::map<std::string, graph::CSRGraph> cache;
  const std::string key = family + ":" + std::to_string(scale);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, graph::gen::family_by_name(family).make(scale, 1)).first;
  }
  return it->second;
}

void BM_HostBfs(benchmark::State& state, const char* family) {
  const auto& g = cached_graph(family, static_cast<std::uint32_t>(state.range(0)));
  graph::VertexId root = 0;
  for (auto _ : state) {
    auto r = graph::bfs(g, root);
    benchmark::DoNotOptimize(r.reached);
    root = (root + 1) % g.num_vertices();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_directed_edges()));
}

void BM_BrandesSingleSource(benchmark::State& state, const char* family) {
  const auto& g = cached_graph(family, static_cast<std::uint32_t>(state.range(0)));
  std::vector<double> bc(g.num_vertices(), 0.0);
  graph::VertexId root = 0;
  for (auto _ : state) {
    cpu::brandes_single_source(g, root, bc);
    benchmark::DoNotOptimize(bc.data());
    root = (root + 1) % g.num_vertices();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_directed_edges()));
}

void BM_WorkEfficientForward(benchmark::State& state, const char* family) {
  const auto& g = cached_graph(family, static_cast<std::uint32_t>(state.range(0)));
  gpusim::Device device(gpusim::gtx_titan());
  device.begin_run(1);
  kernels::BCWorkspace ws(g);
  graph::VertexId root = 0;
  for (auto _ : state) {
    auto ctx = device.block(0);
    ws.init_root(root, ctx);
    while (true) {
      ws.we_forward_level(ctx);
      if (ws.q_next_len() == 0) break;
      ws.finish_level(ctx);
    }
    benchmark::DoNotOptimize(ws.max_depth());
    root = (root + 1) % g.num_vertices();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_directed_edges()));
}

void BM_WeightedBrandesSingleSource(benchmark::State& state, const char* family) {
  const auto& g = cached_graph(family, static_cast<std::uint32_t>(state.range(0)));
  static std::map<std::string, cpu::WeightArray> wcache;
  auto it = wcache.find(family);
  if (it == wcache.end()) {
    it = wcache.emplace(family, cpu::random_symmetric_weights(g, 1.0, 4.0, 7)).first;
  }
  graph::VertexId root = 0;
  for (auto _ : state) {
    auto r = cpu::weighted_brandes(g, it->second, {.sources = {root}});
    benchmark::DoNotOptimize(r.bc.data());
    root = (root + 1) % g.num_vertices();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_directed_edges()));
}

void BM_EdgeBCSingleSource(benchmark::State& state, const char* family) {
  const auto& g = cached_graph(family, static_cast<std::uint32_t>(state.range(0)));
  graph::VertexId root = 0;
  for (auto _ : state) {
    auto r = cpu::edge_betweenness(g, {root});
    benchmark::DoNotOptimize(r.edge_bc.data());
    root = (root + 1) % g.num_vertices();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_directed_edges()));
}

void BM_Generator(benchmark::State& state, const char* family) {
  const auto f = graph::gen::family_by_name(family);
  for (auto _ : state) {
    auto g = f.make(static_cast<std::uint32_t>(state.range(0)), 1);
    benchmark::DoNotOptimize(g.num_directed_edges());
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_HostBfs, kron, "kron")->Arg(12)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_HostBfs, road, "road")->Arg(12)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_BrandesSingleSource, kron, "kron")->Arg(12)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_BrandesSingleSource, delaunay, "delaunay")
    ->Arg(12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_WorkEfficientForward, kron, "kron")
    ->Arg(12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_WorkEfficientForward, road, "road")
    ->Arg(12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_WeightedBrandesSingleSource, smallworld, "smallworld")
    ->Arg(12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_WeightedBrandesSingleSource, road, "road")
    ->Arg(12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_EdgeBCSingleSource, smallworld, "smallworld")
    ->Arg(10)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Generator, kron, "kron")->Arg(12)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Generator, rgg, "rgg")->Arg(12)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Generator, smallworld, "smallworld")
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
