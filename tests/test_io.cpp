// Reader/writer round trips and malformed-input handling for the three
// dataset formats behind Table II.

#include <gtest/gtest.h>

#include <sstream>

#include "cpu/brandes.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace {

using namespace hbc::graph;
namespace io = hbc::graph::io;

TEST(Metis, ReadsSimpleGraph) {
  std::istringstream in("3 2\n2 3\n1\n1\n");
  const CSRGraph g = io::read_metis(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_undirected_edges(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Metis, SkipsCommentLines) {
  std::istringstream in("% a comment\n3 1\n2\n1\n\n");
  const CSRGraph g = io::read_metis(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_undirected_edges(), 1u);
  EXPECT_EQ(g.degree(2), 0u);  // isolated vertex preserved
}

TEST(Metis, RejectsWeightedFormat) {
  std::istringstream in("3 2 11\n2 3\n1\n1\n");
  EXPECT_THROW(io::read_metis(in), io::ParseError);
}

TEST(Metis, RejectsOutOfRangeNeighbor) {
  std::istringstream in("2 1\n3\n\n");
  EXPECT_THROW(io::read_metis(in), io::ParseError);
}

TEST(Metis, RejectsTruncatedFile) {
  std::istringstream in("3 2\n2 3\n");
  EXPECT_THROW(io::read_metis(in), io::ParseError);
}

TEST(Metis, RoundTripPreservesBC) {
  const CSRGraph original = gen::figure1_graph();
  std::stringstream buffer;
  io::write_metis(original, buffer);
  const CSRGraph reread = io::read_metis(buffer);
  ASSERT_EQ(reread.num_vertices(), original.num_vertices());
  ASSERT_EQ(reread.num_undirected_edges(), original.num_undirected_edges());
  const auto bc_a = hbc::cpu::brandes(original).bc;
  const auto bc_b = hbc::cpu::brandes(reread).bc;
  for (std::size_t i = 0; i < bc_a.size(); ++i) EXPECT_DOUBLE_EQ(bc_a[i], bc_b[i]);
}

TEST(MatrixMarket, ReadsPatternSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% UF collection style\n"
      "3 3 2\n"
      "2 1\n"
      "3 2\n");
  const CSRGraph g = io::read_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_undirected_edges(), 2u);
}

TEST(MatrixMarket, ToleratesValueColumn) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 2 3.5\n");
  const CSRGraph g = io::read_matrix_market(in);
  EXPECT_EQ(g.num_undirected_edges(), 1u);
}

TEST(MatrixMarket, RejectsMissingBanner) {
  std::istringstream in("3 3 1\n1 2\n");
  EXPECT_THROW(io::read_matrix_market(in), io::ParseError);
}

TEST(MatrixMarket, RejectsNonCoordinate) {
  std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
  EXPECT_THROW(io::read_matrix_market(in), io::ParseError);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::istringstream in("%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n");
  EXPECT_THROW(io::read_matrix_market(in), io::ParseError);
}

TEST(EdgeList, ReadsSnapStyle) {
  std::istringstream in(
      "# Directed graph: example\n"
      "# FromNodeId ToNodeId\n"
      "0 1\n"
      "1 2\n"
      "0 2\n");
  const CSRGraph g = io::read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_undirected_edges(), 3u);
}

TEST(EdgeList, RemapsSparseIds) {
  std::istringstream in("1000000 5\n5 42\n");
  const CSRGraph g = io::read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_undirected_edges(), 2u);
}

TEST(EdgeList, RejectsGarbage) {
  std::istringstream in("0 1\nnot numbers\n");
  EXPECT_THROW(io::read_edge_list(in), io::ParseError);
}

TEST(EdgeList, RoundTrip) {
  const CSRGraph original = gen::small_world({.num_vertices = 64, .k = 2, .seed = 1});
  std::stringstream buffer;
  io::write_edge_list(original, buffer);
  const CSRGraph reread = io::read_edge_list(buffer);
  EXPECT_EQ(reread.num_vertices(), original.num_vertices());
  EXPECT_EQ(reread.num_undirected_edges(), original.num_undirected_edges());
}

TEST(MatrixMarket, WriterRoundTrip) {
  const CSRGraph original = gen::scale_free({.num_vertices = 80, .attach = 2, .seed = 4});
  std::stringstream buffer;
  io::write_matrix_market(original, buffer);
  const CSRGraph reread = io::read_matrix_market(buffer);
  EXPECT_EQ(reread.num_vertices(), original.num_vertices());
  EXPECT_EQ(reread.num_undirected_edges(), original.num_undirected_edges());
  const auto bc_a = hbc::cpu::brandes(original).bc;
  const auto bc_b = hbc::cpu::brandes(reread).bc;
  for (std::size_t i = 0; i < bc_a.size(); ++i) EXPECT_DOUBLE_EQ(bc_a[i], bc_b[i]);
}

TEST(MatrixMarket, WriterEmitsSymmetricBanner) {
  const CSRGraph g = gen::figure1_graph();
  std::stringstream buffer;
  io::write_matrix_market(g, buffer);
  std::string first_line;
  std::getline(buffer, first_line);
  EXPECT_NE(first_line.find("symmetric"), std::string::npos);
}

TEST(Binary, RoundTripIsExact) {
  const CSRGraph original = gen::kronecker({.scale = 9, .edge_factor = 8, .seed = 2});
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(original, buffer);
  const CSRGraph reread = io::read_binary(buffer);
  EXPECT_EQ(reread.num_vertices(), original.num_vertices());
  EXPECT_EQ(reread.num_directed_edges(), original.num_directed_edges());
  EXPECT_EQ(reread.undirected(), original.undirected());
  ASSERT_EQ(reread.col_indices().size(), original.col_indices().size());
  for (std::size_t i = 0; i < original.col_indices().size(); ++i) {
    ASSERT_EQ(reread.col_indices()[i], original.col_indices()[i]);
  }
}

TEST(Binary, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "NOTAGRAPHFILE................................";
  EXPECT_THROW(io::read_binary(buffer), io::ParseError);
}

TEST(Binary, RejectsTruncated) {
  const CSRGraph g = gen::figure1_graph();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(g, buffer);
  const std::string bytes = buffer.str();
  std::stringstream cut(bytes.substr(0, bytes.size() / 2),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW(io::read_binary(cut), io::ParseError);
}

TEST(Binary, RejectsCorruptedStructure) {
  const CSRGraph g = gen::figure1_graph();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(g, buffer);
  std::string bytes = buffer.str();
  // Corrupt a column index to an out-of-range vertex.
  bytes[bytes.size() - 2] = 0x7f;
  std::stringstream bad(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW(io::read_binary(bad), io::ParseError);
}

TEST(ReadAuto, MissingFileThrows) {
  EXPECT_THROW(io::read_auto("/nonexistent/path.graph"), io::ParseError);
  EXPECT_THROW(io::read_auto("/nonexistent/path.mtx"), io::ParseError);
  EXPECT_THROW(io::read_auto("/nonexistent/path.txt"), io::ParseError);
  EXPECT_THROW(io::read_auto("/nonexistent/path.hbc"), io::ParseError);
}

}  // namespace
