file(REMOVE_RECURSE
  "CMakeFiles/test_edge_bc.dir/test_edge_bc.cpp.o"
  "CMakeFiles/test_edge_bc.dir/test_edge_bc.cpp.o.d"
  "test_edge_bc"
  "test_edge_bc.pdb"
  "test_edge_bc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_bc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
