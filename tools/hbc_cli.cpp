// hbc — command-line betweenness centrality.
//
//   hbc [options] <graph-file | gen:<family>:<scale>[:<seed>]>
//
// Options:
//   --strategy NAME   cpu | cpu-fine | cpu-parallel | vertex | edge | gpufan |
//                     work-efficient | hybrid | sampling | diropt
//                     (default: sampling — the paper's best overall)
//   --roots K         approximate BC from K sampled roots (default: exact)
//   --top K           print the K most central vertices (default 10)
//   --normalize       divide scores by (n-1)(n-2)
//   --halve           halve scores (undirected pair convention)
//   --lcc             restrict to the largest connected component
//   --out FILE        write "<vertex>\t<score>" lines to FILE
//   --dump-scores FILE  write the raw score array (little-endian doubles,
//                     one per vertex) to FILE — byte-exact, so two runs
//                     can be compared with cmp/memcmp (the CI out-of-core
//                     job checks mapped vs heap backings this way)
//   --seed S          RNG seed for root sampling (default 42)
//   --threads N       host worker threads. CPU-parallel strategies split
//                     roots across threads; GPU-model strategies execute
//                     simulated blocks concurrently with identical results
//                     at any thread count (default 0 = hardware concurrency)
//   --weighted LO:HI  weighted BC with uniform random edge weights in
//                     [LO, HI); runs the weighted sampling engine
//                     (Bellman-Ford vs near-far chosen by probe)
//   --inject-faults SPEC  deterministic simulated-device fault plan for
//                     GPU-model strategies (docs/resilience.md), e.g.
//                     "seed=9;launch,rate=0.05;timeout,roots=3:17,persistent"
//   --max-attempts N  launches a root may consume before it is reported
//                     failed (default 3: first try + retry + rescue)
//   --deadline MS     cancel the computation cooperatively after MS
//                     milliseconds (exit code 3 when it fires)
//   --sample-error    progressive-sampling error table instead of one
//                     run: fold the stratified root ladder rung by rung
//                     (256, 512, 1024, ... roots with the default plan)
//                     and print each rung's reported relative standard
//                     error — monotone non-increasing by construction
//                     (docs/serving.md). --roots caps the ladder; the
//                     default saturates the graph
//   --trace FILE      capture a structured span trace of the run and write
//                     it as Chrome trace_event JSON to FILE (open in
//                     chrome://tracing or https://ui.perfetto.dev); also
//                     prints the per-phase text summary (docs/tracing.md)
//
// Graph sources: any METIS/.graph, MatrixMarket/.mtx, or SNAP edge-list
// file, or a built-in generator, e.g. gen:smallworld:14 or gen:road:15:7.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "cli_common.hpp"
#include "core/approx.hpp"

namespace {

using namespace hbc;

/// --sample-error: drive the same stratified ladder the serving layer
/// refines with (core::RefinableEstimate), one row per completed rung.
/// The reported error column is the running-min relative stderr, so a
/// monotonicity check over the output is a real invariant, not luck.
int print_sample_error_table(const graph::CSRGraph& g, core::Options options,
                             std::size_t cap_roots) {
  const std::size_t n = g.num_vertices();
  const core::StratumPlan plan;
  const std::size_t cap =
      cap_roots > 0 ? std::min<std::size_t>(cap_roots, n) : n;
  core::RefinableEstimate est(n, plan, options.seed);
  options.sample_roots = 0;
  options.halve_undirected = false;
  options.normalize = false;

  std::printf("progressive sampling error (strategy %s, stripe %u, seed %llu):\n",
              core::to_string(options.strategy), plan.stripe_roots,
              static_cast<unsigned long long>(options.seed));
  std::printf("  %4s  %8s  %8s  %14s  %10s\n", "rung", "strata", "roots",
              "rel-stderr", "sim-s");
  double accum_seconds = 0.0;
  std::uint32_t rung = 0;
  while (est.roots_used() < cap && !est.saturated()) {
    options.roots = est.next_stratum_roots();
    const core::BCResult r = core::compute(g, options);
    est.fold(r.scores, options.roots.size());
    accum_seconds += r.time_seconds;
    const bool rung_done = est.strata_folded() >= strata_for_rung(plan, rung);
    const bool ladder_done = est.roots_used() >= cap || est.saturated();
    if (rung_done || ladder_done) {
      std::printf("  %4u  %8u  %8zu  %14.6g  %10.4f\n", est.rung(),
                  est.strata_folded(), est.roots_used(), est.reported_error(),
                  accum_seconds);
      if (rung_done) ++rung;
    }
  }
  return 0;
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--strategy NAME] [--roots K] [--top K] [--normalize]\n"
               "          [--halve] [--lcc] [--out FILE] [--dump-scores FILE]\n"
               "          [--seed S] [--threads N]\n"
               "          [--inject-faults SPEC] [--max-attempts N] [--deadline MS]\n"
               "          [--trace FILE] [--sample-error]\n"
               "          <graph-file | gen:<family>:<scale>[:<seed>]>\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  core::Options options;
  std::size_t top = 10;
  bool sample_error = false;
  bool use_lcc = false;
  bool weighted = false;
  double weight_lo = 1.0, weight_hi = 4.0;
  long long deadline_ms = 0;
  std::string out_path;
  std::string dump_path;
  std::string trace_path;
  std::string graph_spec;

  cli::ArgCursor args(argc, argv);
  try {
    while (!args.done()) {
      const std::string arg = args.take();
      if (arg == "--strategy") {
        options.strategy = core::strategy_from_string(args.value(arg));
      } else if (arg == "--roots") {
        options.sample_roots = cli::parse_u32(arg, args.value(arg));
      } else if (arg == "--top") {
        top = cli::parse_size(arg, args.value(arg));
      } else if (arg == "--normalize") {
        options.normalize = true;
      } else if (arg == "--halve") {
        options.halve_undirected = true;
      } else if (arg == "--lcc") {
        use_lcc = true;
      } else if (arg == "--out") {
        out_path = args.value(arg);
      } else if (arg == "--dump-scores") {
        dump_path = args.value(arg);
      } else if (arg == "--seed") {
        options.seed = cli::parse_u64(arg, args.value(arg));
      } else if (arg == "--threads") {
        options.cpu_threads = cli::parse_size(arg, args.value(arg));
      } else if (arg == "--inject-faults") {
        options.resilience.fault_plan = gpusim::FaultPlan::parse_shared(args.value(arg));
      } else if (arg == "--max-attempts") {
        options.resilience.max_root_attempts = cli::parse_u32(arg, args.value(arg));
      } else if (arg == "--deadline") {
        deadline_ms = static_cast<long long>(cli::parse_u64(arg, args.value(arg)));
      } else if (arg == "--trace") {
        trace_path = args.value(arg);
      } else if (arg == "--sample-error") {
        sample_error = true;
      } else if (arg == "--weighted") {
        weighted = true;
        const std::string range = args.value(arg);
        const std::size_t colon = range.find(':');
        if (colon == std::string::npos) {
          throw cli::UsageError("--weighted expects LO:HI");
        }
        weight_lo = cli::parse_double(arg, range.substr(0, colon));
        weight_hi = cli::parse_double(arg, range.substr(colon + 1));
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
      } else if (!arg.empty() && arg[0] == '-') {
        throw cli::UsageError("unknown option: " + arg);
      } else if (graph_spec.empty()) {
        graph_spec = arg;
      } else {
        throw cli::UsageError("unexpected operand: " + arg);
      }
    }
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad argument: %s\n", e.what());
    return 2;
  }
  if (graph_spec.empty()) usage(argv[0]);

  util::CancelSource cancel =
      deadline_ms > 0
          ? util::CancelSource::with_timeout(std::chrono::milliseconds(deadline_ms))
          : util::CancelSource();
  if (deadline_ms > 0) options.resilience.cancel = cancel.token();

  trace::Tracer tracer;
  if (!trace_path.empty()) options.trace.tracer = &tracer;

  try {
    graph::CSRGraph g = cli::load_graph_spec(graph_spec);
    std::printf("graph: %s\n", g.summary().c_str());

    graph::RelabeledGraph lcc;
    const graph::VertexId original_n = g.num_vertices();
    if (use_lcc) {
      lcc = graph::largest_component(g);
      std::printf("largest component: %s\n", lcc.graph.summary().c_str());
      g = std::move(lcc.graph);
    }

    if (sample_error) {
      if (weighted) {
        std::fprintf(stderr, "--sample-error does not combine with --weighted\n");
        return 2;
      }
      return print_sample_error_table(g, options, options.sample_roots);
    }

    if (weighted) {
      const auto weights =
          cpu::random_symmetric_weights(g, weight_lo, weight_hi, options.seed);
      kernels::WeightedConfig wc;
      wc.base.device = options.device;
      wc.strategy = kernels::WeightedStrategy::Sampling;
      if (options.sample_roots > 0) {
        wc.base.roots =
            core::sample_roots(g.num_vertices(), options.sample_roots, options.seed);
      }
      const auto wr = kernels::run_weighted_bc(g, weights, wc);
      std::printf("weighted sampling engine: %llu roots, %.4f s simulated,"
                  " engine -> %s (median %.0f SSSP phases)\n",
                  static_cast<unsigned long long>(wr.metrics.counters.roots_processed),
                  wr.metrics.sim_seconds,
                  wr.sampling_chose_bellman_ford ? "bellman-ford" : "near-far",
                  wr.sampling_median_phases);
      std::vector<double> wscores = wr.bc;
      if (use_lcc) wscores = lcc.project_back(std::move(wscores), original_n);
      std::printf("top %zu vertices by weighted betweenness:\n", top);
      for (const auto& [v, score] : core::top_k(wscores, top)) {
        std::printf("  %10u  %18.6f\n", v, score);
      }
      return 0;
    }

    const core::BCResult result = core::compute(g, options);
    if (options.resilience.fault_plan && !options.resilience.fault_plan->empty()) {
      const gpusim::FaultReport& fr = result.faults;
      std::printf("faults: injected=%llu retries=%llu rescued=%llu failed=%zu%s\n",
                  static_cast<unsigned long long>(fr.faults_injected),
                  static_cast<unsigned long long>(fr.retries),
                  static_cast<unsigned long long>(fr.rescued_roots),
                  fr.failed_roots.size(),
                  fr.complete() ? " (scores exact)" : " (scores partial)");
      for (const gpusim::RootFailure& f : fr.failed_roots) {
        std::printf("  root %u failed: %s after %u attempts (%s)\n", f.root,
                    gpusim::to_string(f.kind), f.attempts,
                    f.transient ? "transient" : "persistent");
      }
    }
    std::printf("strategy %s: %llu roots, %.4f s (%s), %.2f MTEPS%s\n",
                core::to_string(result.strategy),
                static_cast<unsigned long long>(result.roots_processed),
                result.time_seconds,
                options.strategy == core::Strategy::CpuSerial ||
                        options.strategy == core::Strategy::CpuParallel
                    ? "wall clock"
                    : "simulated GPU",
                core::as_mteps(result.teps),
                result.approximate ? " [approximate]" : "");

    std::vector<double> scores = result.scores;
    if (use_lcc) scores = lcc.project_back(std::move(scores), original_n);

    std::printf("top %zu vertices by betweenness:\n", top);
    for (const auto& [v, score] : core::top_k(scores, top)) {
      std::printf("  %10u  %18.6f\n", v, score);
    }

    if (!out_path.empty()) {
      std::ofstream out(out_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
      }
      for (std::size_t v = 0; v < scores.size(); ++v) {
        out << v << '\t' << scores[v] << '\n';
      }
      std::printf("wrote %zu scores to %s\n", scores.size(), out_path.c_str());
    }

    if (!dump_path.empty()) {
      std::ofstream out(dump_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", dump_path.c_str());
        return 1;
      }
      out.write(reinterpret_cast<const char*>(scores.data()),
                static_cast<std::streamsize>(scores.size() * sizeof(double)));
      std::printf("dumped %zu raw scores to %s\n", scores.size(), dump_path.c_str());
    }

    if (!trace_path.empty()) {
      cli::write_trace_json(tracer, trace_path);
      std::printf("\ntrace: %s -> %s\n%s",
                  cli::trace_stats_line(tracer).c_str(), trace_path.c_str(),
                  tracer.summary().c_str());
    }
  } catch (const util::Cancelled& c) {
    std::fprintf(stderr, "cancelled after %lld ms: %s\n", deadline_ms, c.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
