// Direction-optimizing BC kernel (extension): correctness of the
// bottom-up sigma accumulation, Beamer switch behaviour, and the cost
// profile vs the queue-only kernel.

#include <gtest/gtest.h>

#include "cpu/brandes.hpp"
#include "cpu/naive.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "gpusim/device.hpp"
#include "kernels/bc_state.hpp"
#include "kernels/kernels.hpp"

namespace {

using namespace hbc;
using graph::CSRGraph;
using graph::VertexId;
using kernels::BCWorkspace;

TEST(BottomUpLevel, SigmaMatchesPathCounts) {
  // Drive the forward stage entirely bottom-up (except level 0) and
  // verify distances and sigma against the oracle.
  const CSRGraph g = graph::gen::small_world({.num_vertices = 256, .k = 4, .seed = 3});
  for (VertexId root : {0u, 17u, 200u}) {
    gpusim::Device device(gpusim::test_device());
    device.begin_run(1);
    auto ctx = device.block(0);
    BCWorkspace ws(g);
    ws.init_root(root, ctx);
    for (;;) {
      ws.bu_forward_level(ctx, ws.current_depth());
      if (ws.q_next_len() == 0) break;
      ws.finish_level(ctx);
    }
    const auto bfs = graph::bfs(g, root);
    const auto pc = cpu::count_paths(g, root);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(ws.distances()[v], bfs.distance[v]) << "root " << root << " v " << v;
      EXPECT_DOUBLE_EQ(ws.sigmas()[v], pc.sigma[v]) << "root " << root << " v " << v;
    }
  }
}

TEST(BottomUpLevel, NoAtomicsCharged) {
  // Bottom-up only uses the queue-tail atomic (one per discovery); the
  // per-edge CAS/sigma atomics of the top-down primitive disappear.
  const CSRGraph g = graph::gen::small_world({.num_vertices = 128, .k = 3, .seed = 1});
  gpusim::Device device(gpusim::test_device());
  device.begin_run(1);
  auto ctx = device.block(0);
  BCWorkspace ws(g);
  ws.init_root(0, ctx);
  const auto before = device.counters().atomic_ops;
  const auto stats = ws.bu_forward_level(ctx, 0);
  const auto atomics = device.counters().atomic_ops - before;
  EXPECT_EQ(atomics, stats.discovered);
}

class DirOptMatchesOracle : public testing::TestWithParam<const char*> {};

TEST_P(DirOptMatchesOracle, FullBCVector) {
  const CSRGraph g = graph::gen::family_by_name(GetParam()).make(8, 7);
  const auto oracle = cpu::brandes(g).bc;
  kernels::RunConfig config;
  config.device = gpusim::gtx_titan();
  const auto r = kernels::run_direction_optimized(g, config);
  ASSERT_EQ(r.bc.size(), oracle.size());
  for (std::size_t v = 0; v < oracle.size(); ++v) {
    EXPECT_NEAR(r.bc[v], oracle[v], 1e-9 * std::max(1.0, oracle[v])) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, DirOptMatchesOracle,
                         testing::Values("rgg", "delaunay", "kron", "road",
                                         "smallworld", "scalefree", "web", "mesh2d"));

TEST(DirOpt, UsesBottomUpOnSmallWorld) {
  const CSRGraph g =
      graph::gen::small_world({.num_vertices = 1 << 13, .k = 5, .seed = 1});
  kernels::RunConfig config;
  config.device = gpusim::gtx_titan();
  config.roots = {0, 1, 2, 3};
  const auto r = kernels::run_direction_optimized(g, config);
  EXPECT_GT(r.metrics.ep_levels, 0u);  // bottom-up levels counted here
  EXPECT_GT(r.metrics.we_levels, 0u);  // opening levels stay top-down
}

TEST(DirOpt, StaysTopDownOnRoad) {
  const CSRGraph g = graph::gen::road({.scale = 12, .seed = 1});
  kernels::RunConfig config;
  config.device = gpusim::gtx_titan();
  config.roots = {0, 1};
  const auto r = kernels::run_direction_optimized(g, config);
  EXPECT_EQ(r.metrics.ep_levels, 0u);  // frontier never crosses m/alpha
}

TEST(DirOpt, CompetitiveWithWorkEfficientOnKron) {
  const CSRGraph g = graph::gen::kronecker({.scale = 13, .edge_factor = 16, .seed = 1});
  kernels::RunConfig config;
  config.device = gpusim::gtx_titan();
  config.roots = {0, 1, 2, 3};
  const auto we = kernels::run_work_efficient(g, config);
  const auto dir = kernels::run_direction_optimized(g, config);
  // The bottom-up middle levels avoid the CAS/queue traffic; direction-
  // optimization must not lose to the pure queue kernel here.
  EXPECT_LT(dir.metrics.sim_seconds, we.metrics.sim_seconds * 1.1);
}

TEST(DirOpt, RecordsModesInPerRootStats) {
  const CSRGraph g =
      graph::gen::small_world({.num_vertices = 1 << 13, .k = 5, .seed = 2});
  kernels::RunConfig config;
  config.device = gpusim::gtx_titan();
  config.roots = {42};
  config.collect_per_root_stats = true;
  const auto r = kernels::run_direction_optimized(g, config);
  ASSERT_EQ(r.per_root.size(), 1u);
  bool saw_bottom_up = false;
  for (const auto& it : r.per_root[0].iterations) {
    if (it.mode == kernels::Mode::BottomUp) saw_bottom_up = true;
  }
  EXPECT_TRUE(saw_bottom_up);
}

TEST(DirOpt, StrategyDispatchAndName) {
  EXPECT_STREQ(kernels::to_string(kernels::Strategy::DirectionOptimized),
               "direction-optimized");
  const CSRGraph g = graph::gen::figure1_graph();
  kernels::RunConfig config;
  config.device = gpusim::gtx_titan();
  const auto a = kernels::run_strategy(kernels::Strategy::DirectionOptimized, g, config);
  const auto oracle = cpu::brandes(g).bc;
  for (std::size_t v = 0; v < oracle.size(); ++v) {
    EXPECT_NEAR(a.bc[v], oracle[v], 1e-9);
  }
}

}  // namespace
