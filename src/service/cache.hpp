#pragma once

// LRU result cache for the BC query service.
//
// Results are keyed on (graph fingerprint, core::options_signature) — see
// docs/serving.md for the canonicalization rules — and evicted least-
// recently-used under a byte budget sized from the dominant cost of a
// cached entry: the n-element double score vector (plus any per-root
// diagnostics the computation recorded).
//
// The cache stores shared_ptr<const CachedResult> so a hit shares the
// score vector with every concurrent reader instead of copying it; an
// entry evicted while responses still reference it stays alive until the
// last reader drops it.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include <unordered_map>

#include "core/bc.hpp"
#include "graph/csr.hpp"

namespace hbc::service {

/// Structural graph identity for cache keys: forwards to
/// graph::CSRGraph::fingerprint() (64-bit FNV-1a over the CSR arrays plus
/// vertex/edge counts and the undirected flag — the same stamp
/// dyn::VersionedGraph puts on epochs). Computed once per loaded graph
/// (O(n + m)) and reused in every cache key, so two graphs with identical
/// structure share cached results even when registered under different
/// names.
std::uint64_t graph_fingerprint(const graph::CSRGraph& g) noexcept;

/// Leading component of every cache key for this graph ("<hex fp>|").
/// Exposed so the service can drop a graph's entries by prefix on evict.
std::string fingerprint_prefix(std::uint64_t fingerprint);

struct CachedResult {
  core::BCResult result;
  std::size_t bytes = 0;  // budget charge, from estimate_result_bytes
  /// Eligible for incremental patching when the graph mutates: an exact
  /// full-BC result with raw (unhalved, unnormalized) scores, so
  /// dyn::refresh_scores can advance it across an epoch transition. Set by
  /// the service worker at insert time (it knows the request's Options;
  /// the result alone can't reveal score scaling). Entries that are
  /// approximate, root-restricted, or rescaled are invalidated instead.
  bool refreshable = false;
};

/// Approximate heap footprint of a BCResult: scores + per-root diagnostics
/// + fixed overhead. Used to charge entries against the cache byte budget.
std::size_t estimate_result_bytes(const core::BCResult& r) noexcept;

class ResultCache {
 public:
  /// budget_bytes == 0 disables caching entirely (every get misses, every
  /// put is dropped) — useful for benchmarking the cold path.
  explicit ResultCache(std::size_t budget_bytes);

  /// Lookup; a hit promotes the entry to most-recently-used.
  std::shared_ptr<const CachedResult> get(const std::string& key);

  /// Insert (or replace) and evict least-recently-used entries until the
  /// total charge fits the budget. An entry larger than the whole budget
  /// is not cached at all.
  void put(const std::string& key, std::shared_ptr<const CachedResult> value);

  /// Drop every entry whose key satisfies the predicate (e.g. all results
  /// of an evicted graph, matched by fingerprint prefix). Returns the
  /// number of entries removed. Not counted as budget evictions.
  std::size_t erase_if(const std::function<bool(const std::string&)>& pred);

  /// Remove and return every entry whose key satisfies the predicate, in
  /// LRU order (most recently used first — the mutation refresher patches
  /// the hottest entries inside its budget and drops the tail). Not
  /// counted as budget evictions.
  std::vector<std::pair<std::string, std::shared_ptr<const CachedResult>>> extract_if(
      const std::function<bool(const std::string&)>& pred);

  std::size_t size() const;
  std::size_t bytes() const;
  std::size_t budget_bytes() const noexcept { return budget_; }

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const CachedResult>>;

  // mu_ guards everything below. front() of lru_ is most recently used.
  mutable std::mutex mu_;
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t budget_ = 0;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace hbc::service
