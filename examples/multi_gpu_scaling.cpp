// Multi-GPU example: distribute a BC computation across a modelled GPU
// cluster (paper §V.D) and watch the strong-scaling curve. Demonstrates
// the dist:: API end to end — root partitioning, per-GPU kernels, and
// the MPI-style reduction of partial BC vectors.

#include <cstdio>

#include "hbc.hpp"

int main() {
  using namespace hbc;

  const graph::CSRGraph g = graph::gen::delaunay_mesh({.scale = 12, .seed = 3});
  std::printf("graph: %s\n", g.summary().c_str());

  dist::ClusterConfig config;
  config.gpus_per_node = 3;  // KIDS: three Tesla M2090 per node
  config.strategy = kernels::Strategy::Sampling;

  std::printf("\n%8s %8s %14s %12s %12s\n", "nodes", "GPUs", "modelled time",
              "speedup", "efficiency");
  double t1 = 0.0;
  for (std::uint32_t nodes : {1u, 2u, 4u, 8u, 16u}) {
    config.nodes = nodes;
    const auto r = dist::run_cluster_bc(g, config);
    if (nodes == 1) t1 = r.sim_seconds;
    const double speedup = t1 / r.sim_seconds;
    std::printf("%8u %8llu %12.4fs %11.2fx %11.1f%%\n", nodes,
                static_cast<unsigned long long>(r.total_gpus), r.sim_seconds, speedup,
                100.0 * speedup / nodes);
  }

  // Verify the distributed result against the serial oracle.
  config.nodes = 4;
  const auto distributed = dist::run_cluster_bc(g, config);
  const auto oracle = cpu::brandes(g).bc;
  double max_err = 0.0;
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    max_err = std::max(max_err, std::abs(distributed.bc[i] - oracle[i]));
  }
  std::printf("\n12-GPU result vs serial Brandes: max abs error %.2e"
              " (reduction is exact)\n", max_err);
  std::printf("interconnect share of modelled time: %.4fs of %.4fs\n",
              distributed.reduce_seconds, distributed.sim_seconds);
  return 0;
}
