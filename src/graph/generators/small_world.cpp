#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace hbc::graph::gen {

// Watts–Strogatz: ring lattice where each vertex connects to its k nearest
// neighbours on each side; each lattice edge is rewired to a random
// endpoint with probability p. Short diameter + high clustering.
CSRGraph small_world(const SmallWorldParams& params) {
  const VertexId n = params.num_vertices;
  if (n < 2 * params.k + 2) {
    throw std::invalid_argument("small_world: need num_vertices > 2k + 1");
  }
  util::Xoshiro256 rng(params.seed);
  GraphBuilder builder(n);

  for (VertexId v = 0; v < n; ++v) {
    for (std::uint32_t j = 1; j <= params.k; ++j) {
      VertexId w = static_cast<VertexId>((static_cast<std::uint64_t>(v) + j) % n);
      if (rng.next_bool(params.rewire_p)) {
        // Rewire to a uniform random non-self endpoint. Duplicate edges
        // can arise; the builder dedups them (slightly lowering m, as in
        // the reference NetworkX implementation).
        VertexId candidate;
        do {
          candidate = static_cast<VertexId>(rng.next_below(n));
        } while (candidate == v);
        w = candidate;
      }
      builder.add_edge(v, w);
    }
  }
  return builder.build();
}

}  // namespace hbc::graph::gen
