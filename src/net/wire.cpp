#include "net/wire.hpp"

#include <bit>
#include <cstring>

#include "core/bc.hpp"

namespace hbc::net::wire {

namespace {

// Bounds-checked little-endian primitives. The writer never fails; the
// reader records the first out-of-bounds access and turns every later read
// into a no-op, so decode functions can read a whole message straight
// through and check ok() once.

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v) {
    out_->push_back(static_cast<std::uint8_t>(v));
    out_->push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_->insert(out_->end(), s.begin(), s.end());
  }
  void u32s(const std::vector<std::uint32_t>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (std::uint32_t x : v) u32(x);
  }
  void f64s(const std::vector<double>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (double x : v) f64(x);
  }
  void updates(const std::vector<WireUpdate>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const WireUpdate& e : v) {
      u32(e.u);
      u32(e.v);
      u8(e.insert);
    }
  }

 private:
  std::vector<std::uint8_t>* out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> in) : in_(in) {}

  bool ok() const noexcept { return !failed_; }
  bool at_end() const noexcept { return pos_ == in_.size(); }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return in_[pos_++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(in_[pos_] | (in_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint32_t len = u32();
    // Validate against the bytes actually present BEFORE allocating, so a
    // hostile length prefix cannot demand memory the frame doesn't carry.
    if (!need(len)) return {};
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  std::vector<std::uint32_t> u32s() {
    const std::uint32_t count = u32();
    if (!need(static_cast<std::size_t>(count) * 4)) return {};
    std::vector<std::uint32_t> v(count);
    for (std::uint32_t i = 0; i < count; ++i) v[i] = u32();
    return v;
  }
  std::vector<double> f64s() {
    const std::uint32_t count = u32();
    if (!need(static_cast<std::size_t>(count) * 8)) return {};
    std::vector<double> v(count);
    for (std::uint32_t i = 0; i < count; ++i) v[i] = f64();
    return v;
  }
  std::vector<WireUpdate> updates() {
    const std::uint32_t count = u32();
    if (!need(static_cast<std::size_t>(count) * 9)) return {};
    std::vector<WireUpdate> v(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      v[i].u = u32();
      v[i].v = u32();
      v[i].insert = u8();
    }
    return v;
  }

 private:
  bool need(std::size_t n) {
    if (failed_ || n > in_.size() - pos_) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

std::vector<std::uint8_t> finish_frame(MsgType type, std::uint64_t request_id,
                                       const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  append_frame(out, type, request_id, payload);
  return out;
}

/// Shared decode epilogue: every field read must have had bytes, and every
/// payload byte must have been consumed.
DecodeStatus seal(const Reader& r) {
  if (!r.ok()) return DecodeStatus::Truncated;
  if (!r.at_end()) return DecodeStatus::TrailingBytes;
  return DecodeStatus::Ok;
}

bool check_type(const Frame& f, MsgType want) { return f.type == want; }

}  // namespace

const char* to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::Hello: return "hello";
    case MsgType::HelloAck: return "hello-ack";
    case MsgType::LoadGraph: return "load-graph";
    case MsgType::GraphLoaded: return "graph-loaded";
    case MsgType::SubmitShard: return "submit-shard";
    case MsgType::ShardResult: return "shard-result";
    case MsgType::Heartbeat: return "heartbeat";
    case MsgType::HeartbeatAck: return "heartbeat-ack";
    case MsgType::Mutate: return "mutate";
    case MsgType::MutateDone: return "mutate-done";
    case MsgType::Drain: return "drain";
    case MsgType::Goodbye: return "goodbye";
    case MsgType::Error: return "error";
  }
  return "?";
}

const char* to_string(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::Ok: return "ok";
    case DecodeStatus::NeedMore: return "need-more";
    case DecodeStatus::BadMagic: return "bad-magic";
    case DecodeStatus::BadVersion: return "bad-version";
    case DecodeStatus::UnknownType: return "unknown-type";
    case DecodeStatus::Oversize: return "oversize";
    case DecodeStatus::Truncated: return "truncated";
    case DecodeStatus::TrailingBytes: return "trailing-bytes";
    case DecodeStatus::BadValue: return "bad-value";
  }
  return "?";
}

void append_frame(std::vector<std::uint8_t>& out, MsgType type,
                  std::uint64_t request_id, std::span<const std::uint8_t> payload) {
  Writer w(out);
  w.u32(kMagic);
  w.u16(kProtocolVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

DecodeStatus extract_frame(std::span<const std::uint8_t> in, Frame& frame,
                           std::size_t& consumed) {
  consumed = 0;
  if (in.size() < kHeaderSize) return DecodeStatus::NeedMore;
  Reader r(in.subspan(0, kHeaderSize));
  const std::uint32_t magic = r.u32();
  const std::uint16_t version = r.u16();
  const std::uint16_t type = r.u16();
  const std::uint64_t request_id = r.u64();
  const std::uint32_t payload_len = r.u32();
  // Validate the header before demanding payload bytes: a corrupt length
  // prefix must not make the caller wait for (or allocate) garbage.
  if (magic != kMagic) return DecodeStatus::BadMagic;
  if (version != kProtocolVersion) return DecodeStatus::BadVersion;
  if (type < static_cast<std::uint16_t>(MsgType::Hello) ||
      type > static_cast<std::uint16_t>(MsgType::Error)) {
    return DecodeStatus::UnknownType;
  }
  if (payload_len > kMaxPayload) return DecodeStatus::Oversize;
  if (in.size() - kHeaderSize < payload_len) return DecodeStatus::NeedMore;
  frame.type = static_cast<MsgType>(type);
  frame.request_id = request_id;
  frame.payload.assign(in.begin() + kHeaderSize, in.begin() + kHeaderSize + payload_len);
  consumed = kHeaderSize + payload_len;
  return DecodeStatus::Ok;
}

// --- Hello ---------------------------------------------------------------

std::vector<std::uint8_t> encode(const HelloMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.u16(m.protocol);
  w.str(m.worker_name);
  w.u32(m.shard_slots);
  return finish_frame(MsgType::Hello, request_id, p);
}

DecodeStatus decode(const Frame& f, HelloMsg& out) {
  if (!check_type(f, MsgType::Hello)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.protocol = r.u16();
  out.worker_name = r.str();
  out.shard_slots = r.u32();
  return seal(r);
}

std::vector<std::uint8_t> encode(const HelloAckMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.u32(m.worker_slot);
  w.str(m.coordinator_name);
  return finish_frame(MsgType::HelloAck, request_id, p);
}

DecodeStatus decode(const Frame& f, HelloAckMsg& out) {
  if (!check_type(f, MsgType::HelloAck)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.worker_slot = r.u32();
  out.coordinator_name = r.str();
  return seal(r);
}

// --- graph loading -------------------------------------------------------

std::vector<std::uint8_t> encode(const LoadGraphMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.str(m.graph_id);
  w.str(m.spec);
  w.u64(m.fingerprint);
  w.updates(m.updates);
  w.u64(m.fingerprint_after);
  return finish_frame(MsgType::LoadGraph, request_id, p);
}

DecodeStatus decode(const Frame& f, LoadGraphMsg& out) {
  if (!check_type(f, MsgType::LoadGraph)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.graph_id = r.str();
  out.spec = r.str();
  out.fingerprint = r.u64();
  out.updates = r.updates();
  out.fingerprint_after = r.u64();
  return seal(r);
}

std::vector<std::uint8_t> encode(const GraphLoadedMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.str(m.graph_id);
  w.u8(m.ok);
  w.u64(m.fingerprint);
  w.str(m.error);
  return finish_frame(MsgType::GraphLoaded, request_id, p);
}

DecodeStatus decode(const Frame& f, GraphLoadedMsg& out) {
  if (!check_type(f, MsgType::GraphLoaded)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.graph_id = r.str();
  out.ok = r.u8();
  out.fingerprint = r.u64();
  out.error = r.str();
  if (out.ok > 1) return DecodeStatus::BadValue;
  return seal(r);
}

// --- shards --------------------------------------------------------------

std::vector<std::uint8_t> encode(const SubmitShardMsg& m, std::uint64_t request_id) {
  static_assert(sizeof(graph::VertexId) == sizeof(std::uint32_t),
                "roots travel as u32");
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.str(m.graph_id);
  w.u64(m.fingerprint);
  w.u32(m.shard_index);
  w.u8(static_cast<std::uint8_t>(m.mode));
  w.u8(m.strategy);
  w.u8(m.halve_undirected);
  w.u8(m.normalize);
  w.u32(m.grid_blocks);
  w.u32(m.sample_roots);
  w.u64(m.seed);
  w.u32(m.cpu_threads);
  w.u32(m.max_root_attempts);
  w.u32(m.device_num_sms);
  w.u32(m.hybrid_alpha);
  w.u32(m.hybrid_beta);
  w.u32(m.sampling_n_samps);
  w.f64(m.sampling_gamma);
  w.u32(m.sampling_min_frontier);
  w.u32(m.deadline_ms);
  w.u32s(m.roots);
  return finish_frame(MsgType::SubmitShard, request_id, p);
}

DecodeStatus decode(const Frame& f, SubmitShardMsg& out) {
  if (!check_type(f, MsgType::SubmitShard)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.graph_id = r.str();
  out.fingerprint = r.u64();
  out.shard_index = r.u32();
  const std::uint8_t mode = r.u8();
  out.strategy = r.u8();
  out.halve_undirected = r.u8();
  out.normalize = r.u8();
  out.grid_blocks = r.u32();
  out.sample_roots = r.u32();
  out.seed = r.u64();
  out.cpu_threads = r.u32();
  out.max_root_attempts = r.u32();
  out.device_num_sms = r.u32();
  out.hybrid_alpha = r.u32();
  out.hybrid_beta = r.u32();
  out.sampling_n_samps = r.u32();
  out.sampling_gamma = r.f64();
  out.sampling_min_frontier = r.u32();
  out.deadline_ms = r.u32();
  out.roots = r.u32s();
  const DecodeStatus s = seal(r);
  if (s != DecodeStatus::Ok) return s;
  if (mode > static_cast<std::uint8_t>(ShardMode::Whole)) return DecodeStatus::BadValue;
  out.mode = static_cast<ShardMode>(mode);
  if (out.strategy > static_cast<std::uint8_t>(core::Strategy::DirectionOptimized) ||
      out.halve_undirected > 1 || out.normalize > 1) {
    return DecodeStatus::BadValue;
  }
  return DecodeStatus::Ok;
}

std::vector<std::uint8_t> encode(const ShardResultMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.u32(m.shard_index);
  w.u8(m.ok);
  w.u8(m.degraded);
  w.str(m.error);
  w.u64(m.roots_processed);
  w.f64(m.compute_ms);
  w.f64s(m.scores);
  return finish_frame(MsgType::ShardResult, request_id, p);
}

DecodeStatus decode(const Frame& f, ShardResultMsg& out) {
  if (!check_type(f, MsgType::ShardResult)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.shard_index = r.u32();
  out.ok = r.u8();
  out.degraded = r.u8();
  out.error = r.str();
  out.roots_processed = r.u64();
  out.compute_ms = r.f64();
  out.scores = r.f64s();
  if (out.ok > 1 || out.degraded > 1) return DecodeStatus::BadValue;
  return seal(r);
}

// --- liveness ------------------------------------------------------------

std::vector<std::uint8_t> encode(const HeartbeatMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.u64(m.seq);
  w.u32(m.inflight);
  return finish_frame(MsgType::Heartbeat, request_id, p);
}

DecodeStatus decode(const Frame& f, HeartbeatMsg& out) {
  if (!check_type(f, MsgType::Heartbeat)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.seq = r.u64();
  out.inflight = r.u32();
  return seal(r);
}

std::vector<std::uint8_t> encode(const HeartbeatAckMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.u64(m.seq);
  return finish_frame(MsgType::HeartbeatAck, request_id, p);
}

DecodeStatus decode(const Frame& f, HeartbeatAckMsg& out) {
  if (!check_type(f, MsgType::HeartbeatAck)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.seq = r.u64();
  return seal(r);
}

// --- mutation ------------------------------------------------------------

std::vector<std::uint8_t> encode(const MutateMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.str(m.graph_id);
  w.updates(m.updates);
  w.u64(m.fingerprint_after);
  return finish_frame(MsgType::Mutate, request_id, p);
}

DecodeStatus decode(const Frame& f, MutateMsg& out) {
  if (!check_type(f, MsgType::Mutate)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.graph_id = r.str();
  out.updates = r.updates();
  out.fingerprint_after = r.u64();
  const DecodeStatus s = seal(r);
  if (s != DecodeStatus::Ok) return s;
  for (const WireUpdate& e : out.updates) {
    if (e.insert > 1) return DecodeStatus::BadValue;
  }
  return DecodeStatus::Ok;
}

std::vector<std::uint8_t> encode(const MutateDoneMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.str(m.graph_id);
  w.u8(m.ok);
  w.u64(m.fingerprint);
  w.str(m.error);
  return finish_frame(MsgType::MutateDone, request_id, p);
}

DecodeStatus decode(const Frame& f, MutateDoneMsg& out) {
  if (!check_type(f, MsgType::MutateDone)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.graph_id = r.str();
  out.ok = r.u8();
  out.fingerprint = r.u64();
  out.error = r.str();
  if (out.ok > 1) return DecodeStatus::BadValue;
  return seal(r);
}

// --- control -------------------------------------------------------------

std::vector<std::uint8_t> encode(const DrainMsg&, std::uint64_t request_id) {
  return finish_frame(MsgType::Drain, request_id, {});
}

DecodeStatus decode(const Frame& f, DrainMsg&) {
  if (!check_type(f, MsgType::Drain)) return DecodeStatus::BadValue;
  return f.payload.empty() ? DecodeStatus::Ok : DecodeStatus::TrailingBytes;
}

std::vector<std::uint8_t> encode(const GoodbyeMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.str(m.reason);
  return finish_frame(MsgType::Goodbye, request_id, p);
}

DecodeStatus decode(const Frame& f, GoodbyeMsg& out) {
  if (!check_type(f, MsgType::Goodbye)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.reason = r.str();
  return seal(r);
}

std::vector<std::uint8_t> encode(const ErrorMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.u32(m.code);
  w.str(m.message);
  return finish_frame(MsgType::Error, request_id, p);
}

DecodeStatus decode(const Frame& f, ErrorMsg& out) {
  if (!check_type(f, MsgType::Error)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.code = r.u32();
  out.message = r.str();
  return seal(r);
}

}  // namespace hbc::net::wire
