#include "cpu/fine_grained.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "graph/types.hpp"
#include "util/thread_pool.hpp"

namespace hbc::cpu {

using graph::CSRGraph;
using graph::kInfDistance;
using graph::VertexId;

// Storage note: this engine deliberately stays on the contiguous-span
// path (g.neighbors()) rather than the streaming decode the serial/
// parallel Brandes engines use for compressed backings — its workers
// race over shared frontiers, and per-iterator decode state would defeat
// the level-synchronous chunking. A compressed-backed graph materializes
// its adjacency once on first touch (CSRGraph facade) and is then
// identical to heap.

namespace {

/// Working set shared by all threads for one source.
struct SharedState {
  explicit SharedState(VertexId n)
      : d(n), sigma(n, 0.0), delta(n, 0.0) {
    for (auto& x : d) x.store(kInfDistance, std::memory_order_relaxed);
  }

  void reset() {
    for (auto& x : d) x.store(kInfDistance, std::memory_order_relaxed);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
  }

  std::vector<std::atomic<std::uint32_t>> d;
  std::vector<double> sigma;
  std::vector<double> delta;
};

}  // namespace

BrandesResult fine_grained_brandes(const CSRGraph& g, const FineGrainedOptions& options) {
  const VertexId n = g.num_vertices();
  BrandesResult result;
  result.bc.assign(n, 0.0);

  std::vector<VertexId> sources = options.sources;
  if (sources.empty()) {
    sources.resize(n);
    std::iota(sources.begin(), sources.end(), VertexId{0});
  }

  util::ThreadPool pool(options.num_threads);
  const std::size_t workers = std::max<std::size_t>(1, pool.thread_count());

  SharedState state(n);
  std::vector<VertexId> frontier;
  std::vector<VertexId> stack;           // S: all reached, level by level
  std::vector<std::uint64_t> ends{0, 1};  // level index into the stack
  std::vector<std::vector<VertexId>> local_next(workers);

  for (const VertexId s : sources) {
    if (s >= n) continue;
    // Root boundary (the outer loop runs on the calling thread; the pool
    // only splits levels, so throwing here never crosses a pool task).
    options.cancel.check();
    state.reset();
    frontier.assign(1, s);
    stack.assign(1, s);
    ends.assign({0, 1});
    state.d[s].store(0, std::memory_order_relaxed);
    state.sigma[s] = 1.0;

    // Forward: level-synchronous cooperative BFS. Discovery uses CAS on
    // d; sigma for the NEW level is then gathered owner-side from
    // parents (race-free, order-independent).
    std::uint32_t depth = 0;
    std::uint64_t traversed = 0;
    while (!frontier.empty()) {
      for (auto& buf : local_next) buf.clear();
      std::atomic<std::uint64_t> level_edges{0};

      pool.parallel_ranges(frontier.size(), [&](std::size_t tid, std::size_t begin,
                                                std::size_t end) {
        auto& next = local_next[tid];
        std::uint64_t edges = 0;
        for (std::size_t i = begin; i < end; ++i) {
          const VertexId v = frontier[i];
          for (VertexId w : g.neighbors(v)) {
            ++edges;
            std::uint32_t expected = kInfDistance;
            if (state.d[w].compare_exchange_strong(expected, depth + 1,
                                                   std::memory_order_relaxed)) {
              next.push_back(w);
            }
          }
        }
        level_edges.fetch_add(edges, std::memory_order_relaxed);
      });
      traversed += level_edges.load(std::memory_order_relaxed);

      frontier.clear();
      for (const auto& buf : local_next) {
        frontier.insert(frontier.end(), buf.begin(), buf.end());
      }
      if (frontier.empty()) break;
      ++depth;

      // Sigma gather for the new level: each w sums its parents' sigma.
      // Owner-writes => no atomics, and the value is independent of
      // discovery order.
      pool.parallel_ranges(frontier.size(), [&](std::size_t, std::size_t begin,
                                                std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const VertexId w = frontier[i];
          double acc = 0.0;
          for (VertexId v : g.neighbors(w)) {
            if (state.d[v].load(std::memory_order_relaxed) == depth - 1) {
              acc += state.sigma[v];
            }
          }
          state.sigma[w] = acc;
        }
      });

      stack.insert(stack.end(), frontier.begin(), frontier.end());
      ends.push_back(stack.size());
    }
    result.max_depth_seen = std::max(result.max_depth_seen, depth);
    result.edges_traversed += traversed;

    // Backward: per level, threads split the S-slice; each w accumulates
    // from successors (the Madduri et al. scheme the paper adopts).
    for (std::size_t level = ends.size() - 1; level-- > 1;) {
      const std::uint64_t begin = ends[level - 1];
      const std::uint64_t count = ends[level] - begin;
      pool.parallel_ranges(count, [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const VertexId w = stack[begin + i];
          const std::uint32_t dw =
              state.d[w].load(std::memory_order_relaxed);
          double dsw = 0.0;
          for (VertexId v : g.neighbors(w)) {
            if (state.d[v].load(std::memory_order_relaxed) == dw + 1) {
              dsw += (state.sigma[w] / state.sigma[v]) * (1.0 + state.delta[v]);
            }
          }
          state.delta[w] = dsw;
        }
      });
    }

    for (const VertexId v : stack) {
      if (v != s) result.bc[v] += state.delta[v];
    }
    ++result.roots_processed;
  }
  return result;
}

}  // namespace hbc::cpu
