#include "net/snapshot.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>

#include "graph/io.hpp"

namespace hbc::net {

namespace {

// Manifest container: a small header, then the graph table and the cache
// table, all through the wire codec's bounds-checked primitives.
constexpr std::uint32_t kManifestMagic = 0x53434248u;  // "HBCS" little-endian
constexpr std::uint16_t kManifestVersion = 1;

std::string manifest_path(const std::string& dir) {
  return dir + "/manifest.hbcs";
}

[[noreturn]] void fail(const std::string& what) { throw SnapshotError(what); }

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("snapshot: cannot open '" + path + "': " + std::strerror(errno));
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (in.bad()) fail("snapshot: read failed for '" + path + "'");
  return bytes;
}

void write_file_atomic(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) fail("snapshot: cannot create '" + tmp + "': " + std::strerror(errno));
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) fail("snapshot: write failed for '" + tmp + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) fail("snapshot: rename '" + tmp + "' -> '" + path + "': " + ec.message());
}

}  // namespace

bool snapshot_exists(const std::string& dir) {
  std::error_code ec;
  return std::filesystem::exists(manifest_path(dir), ec) && !ec;
}

void save_snapshot(const std::string& dir, const Snapshot& snap) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) fail("snapshot: create_directories '" + dir + "': " + ec.message());

  // Graphs first: the manifest names the files, so it must go last — a
  // crash between the two leaves the old manifest pointing at old files.
  std::vector<std::string> files;
  files.reserve(snap.graphs.size());
  for (std::size_t i = 0; i < snap.graphs.size(); ++i) {
    const std::string file = "graph" + std::to_string(i) + ".hbcg";
    if (!snap.graphs[i].graph) {
      fail("snapshot: graph '" + snap.graphs[i].id + "' has no structure to save");
    }
    // tmp + rename, like the manifest — and not only for crash safety: a
    // restored coordinator's graph may be an mmap of THIS file, and
    // save_binary_v2 reads that graph while serializing. Truncating the
    // mapped inode in place would rip the pages out from under the read
    // (SIGBUS); renaming over it leaves the old inode alive for as long
    // as the mapping holds it.
    const std::string full = dir + "/" + file;
    const std::string tmp = full + ".tmp";
    try {
      graph::io::save_binary_v2(*snap.graphs[i].graph, tmp);
    } catch (const std::exception& ex) {
      fail("snapshot: save graph '" + snap.graphs[i].id + "': " + ex.what());
    }
    std::error_code rename_ec;
    std::filesystem::rename(tmp, full, rename_ec);
    if (rename_ec) {
      fail("snapshot: rename '" + tmp + "' -> '" + full + "': " +
           rename_ec.message());
    }
    files.push_back(file);
  }

  std::vector<std::uint8_t> bytes;
  wire::Writer w(bytes);
  w.u32(kManifestMagic);
  w.u16(kManifestVersion);
  w.u32(static_cast<std::uint32_t>(snap.graphs.size()));
  for (std::size_t i = 0; i < snap.graphs.size(); ++i) {
    const SnapshotGraph& g = snap.graphs[i];
    w.str(g.id);
    w.str(g.spec);
    w.u64(g.base_fingerprint);
    w.u64(g.fingerprint);
    w.u64(g.epoch);
    w.updates(g.history);
    w.str(files[i]);
  }
  w.u32(static_cast<std::uint32_t>(snap.cache.size()));
  for (const SnapshotCacheEntry& e : snap.cache) {
    w.str(e.key);
    w.f64s(e.scores);
    w.u8(e.strategy);
    w.u64(e.roots_processed);
    w.u8(e.approximate);
    w.f64(e.time_seconds);
    w.f64(e.wall_seconds);
    w.f64(e.teps);
  }
  write_file_atomic(manifest_path(dir), bytes);
}

Snapshot load_snapshot(const std::string& dir) {
  const std::vector<std::uint8_t> bytes = read_file(manifest_path(dir));
  wire::Reader r(bytes);
  if (r.u32() != kManifestMagic) fail("snapshot: '" + dir + "': bad manifest magic");
  const std::uint16_t version = r.u16();
  if (version != kManifestVersion) {
    fail("snapshot: '" + dir + "': manifest version " + std::to_string(version) +
         " (expected " + std::to_string(kManifestVersion) + ")");
  }

  Snapshot snap;
  const std::uint32_t num_graphs = r.u32();
  if (!r.ok()) fail("snapshot: '" + dir + "': truncated manifest header");
  snap.graphs.reserve(num_graphs);
  for (std::uint32_t i = 0; i < num_graphs; ++i) {
    SnapshotGraph g;
    g.id = r.str();
    g.spec = r.str();
    g.base_fingerprint = r.u64();
    g.fingerprint = r.u64();
    g.epoch = r.u64();
    g.history = r.updates();
    g.graph_file = r.str();
    if (!r.ok()) fail("snapshot: '" + dir + "': truncated graph table");
    // Reject path traversal in the manifest: graph files live flat in the
    // snapshot directory by construction.
    if (g.graph_file.empty() || g.graph_file.find('/') != std::string::npos) {
      fail("snapshot: '" + dir + "': bad graph file name '" + g.graph_file + "'");
    }
    snap.graphs.push_back(std::move(g));
  }
  const std::uint32_t num_cache = r.u32();
  for (std::uint32_t i = 0; i < num_cache; ++i) {
    SnapshotCacheEntry e;
    e.key = r.str();
    e.scores = r.f64s();
    e.strategy = r.u8();
    e.roots_processed = r.u64();
    e.approximate = r.u8();
    e.time_seconds = r.f64();
    e.wall_seconds = r.f64();
    e.teps = r.f64();
    if (!r.ok()) fail("snapshot: '" + dir + "': truncated cache table");
    snap.cache.push_back(std::move(e));
  }
  if (!r.at_end()) fail("snapshot: '" + dir + "': trailing bytes in manifest");

  for (SnapshotGraph& g : snap.graphs) {
    try {
      // Full validation: the container's embedded fingerprint is
      // recomputed from the mapped data, so a corrupt graph file is a
      // typed error here, not wrong scores later.
      g.graph = std::make_shared<const graph::CSRGraph>(
          graph::io::open_mapped(dir + "/" + g.graph_file));
    } catch (const std::exception& ex) {
      fail("snapshot: load graph '" + g.id + "' from '" + g.graph_file +
           "': " + ex.what());
    }
  }
  return snap;
}

}  // namespace hbc::net
