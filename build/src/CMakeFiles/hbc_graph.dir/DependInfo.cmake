
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cpp" "src/CMakeFiles/hbc_graph.dir/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/hbc_graph.dir/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/hbc_graph.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/hbc_graph.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/CMakeFiles/hbc_graph.dir/graph/csr.cpp.o" "gcc" "src/CMakeFiles/hbc_graph.dir/graph/csr.cpp.o.d"
  "/root/repo/src/graph/generators/erdos_renyi.cpp" "src/CMakeFiles/hbc_graph.dir/graph/generators/erdos_renyi.cpp.o" "gcc" "src/CMakeFiles/hbc_graph.dir/graph/generators/erdos_renyi.cpp.o.d"
  "/root/repo/src/graph/generators/kronecker.cpp" "src/CMakeFiles/hbc_graph.dir/graph/generators/kronecker.cpp.o" "gcc" "src/CMakeFiles/hbc_graph.dir/graph/generators/kronecker.cpp.o.d"
  "/root/repo/src/graph/generators/mesh.cpp" "src/CMakeFiles/hbc_graph.dir/graph/generators/mesh.cpp.o" "gcc" "src/CMakeFiles/hbc_graph.dir/graph/generators/mesh.cpp.o.d"
  "/root/repo/src/graph/generators/registry.cpp" "src/CMakeFiles/hbc_graph.dir/graph/generators/registry.cpp.o" "gcc" "src/CMakeFiles/hbc_graph.dir/graph/generators/registry.cpp.o.d"
  "/root/repo/src/graph/generators/rgg.cpp" "src/CMakeFiles/hbc_graph.dir/graph/generators/rgg.cpp.o" "gcc" "src/CMakeFiles/hbc_graph.dir/graph/generators/rgg.cpp.o.d"
  "/root/repo/src/graph/generators/road.cpp" "src/CMakeFiles/hbc_graph.dir/graph/generators/road.cpp.o" "gcc" "src/CMakeFiles/hbc_graph.dir/graph/generators/road.cpp.o.d"
  "/root/repo/src/graph/generators/scale_free.cpp" "src/CMakeFiles/hbc_graph.dir/graph/generators/scale_free.cpp.o" "gcc" "src/CMakeFiles/hbc_graph.dir/graph/generators/scale_free.cpp.o.d"
  "/root/repo/src/graph/generators/small_world.cpp" "src/CMakeFiles/hbc_graph.dir/graph/generators/small_world.cpp.o" "gcc" "src/CMakeFiles/hbc_graph.dir/graph/generators/small_world.cpp.o.d"
  "/root/repo/src/graph/generators/web_crawl.cpp" "src/CMakeFiles/hbc_graph.dir/graph/generators/web_crawl.cpp.o" "gcc" "src/CMakeFiles/hbc_graph.dir/graph/generators/web_crawl.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/hbc_graph.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/hbc_graph.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/transforms.cpp" "src/CMakeFiles/hbc_graph.dir/graph/transforms.cpp.o" "gcc" "src/CMakeFiles/hbc_graph.dir/graph/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
