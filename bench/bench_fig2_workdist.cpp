// Figure 2 reproduction: how the three thread-to-work distributions map
// onto one BFS iteration of the Figure 1 toy graph.
//
// The paper's figure shows the second search iteration from (paper)
// vertex 4: the frontier is {1, 3, 5, 6}. Vertex-parallel assigns one
// thread per vertex (most do nothing, frontier threads carry unequal
// edge counts); edge-parallel assigns one thread per directed edge (every
// edge inspected, most futile); work-efficient assigns threads only to
// the four frontier vertices.

#include <cstdio>

#include "bench/common.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace hbc;

  const graph::CSRGraph g = graph::gen::figure1_graph();
  const graph::VertexId root = 3;  // paper vertex 4
  const auto bfs = graph::bfs(g, root);

  bench::print_header(
      "Figure 2 — thread-to-work distribution for one BFS iteration",
      "graph: paper Figure 1 (9 vertices, 10 undirected edges); root = paper vertex 4;\n"
      "iteration 2 (frontier = paper vertices {1, 3, 5, 6})");

  const std::uint32_t depth = 1;  // frontier vertices sit at distance 1

  // Vertex-parallel: one thread per vertex.
  std::printf("\nvertex-parallel: one thread per vertex (n = %u threads)\n",
              g.num_vertices());
  std::uint64_t vp_useful = 0, vp_threads_busy = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const bool in_frontier = bfs.distance[v] == depth;
    const std::uint64_t edges = in_frontier ? g.degree(v) : 0;
    std::printf("  thread %u -> paper vertex %u: %s, traverses %llu edge(s)\n", v, v + 1,
                in_frontier ? "in frontier" : "idle check ",
                static_cast<unsigned long long>(edges));
    vp_useful += edges;
    vp_threads_busy += in_frontier ? 1 : 0;
  }
  std::printf("  => %llu useful edge traversals on %llu of %u threads"
              " (load imbalance: max %llu edges on one thread)\n",
              static_cast<unsigned long long>(vp_useful),
              static_cast<unsigned long long>(vp_threads_busy), g.num_vertices(),
              static_cast<unsigned long long>([&] {
                std::uint64_t mx = 0;
                for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
                  if (bfs.distance[v] == depth) mx = std::max<std::uint64_t>(mx, g.degree(v));
                }
                return mx;
              }()));

  // Edge-parallel: one thread per directed edge.
  const auto sources = g.edge_sources();
  std::uint64_t ep_useful = 0;
  for (graph::EdgeOffset e = 0; e < g.num_directed_edges(); ++e) {
    if (bfs.distance[sources[e]] == depth) ++ep_useful;
  }
  std::printf("\nedge-parallel: one thread per directed edge (2m = %llu threads)\n",
              static_cast<unsigned long long>(g.num_directed_edges()));
  std::printf("  => %llu of %llu edge inspections useful; %llu wasted every iteration\n",
              static_cast<unsigned long long>(ep_useful),
              static_cast<unsigned long long>(g.num_directed_edges()),
              static_cast<unsigned long long>(g.num_directed_edges() - ep_useful));

  // Work-efficient: one thread per frontier vertex.
  std::printf("\nwork-efficient: one thread per frontier vertex (%llu threads)\n",
              static_cast<unsigned long long>(bfs.frontiers[depth]));
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (bfs.distance[v] == depth) {
      std::printf("  thread -> paper vertex %u traverses %llu edge(s)\n", v + 1,
                  static_cast<unsigned long long>(g.degree(v)));
    }
  }
  std::printf("  => %llu useful edge traversals, zero futile inspections\n",
              static_cast<unsigned long long>(vp_useful));

  bench::print_rule();
  std::printf("paper claim: vertex-parallel wastes idle vertex threads and is load-\n"
              "imbalanced; edge-parallel wastes futile edge inspections; work-efficient\n"
              "performs only useful work (with residual per-thread imbalance).\n");
  return 0;
}
