#include "graph/storage/storage.hpp"

#include <algorithm>
#include <cstring>

namespace hbc::graph::storage {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void store_le64(std::uint8_t* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

[[noreturn]] void format_fail(const std::string& path, const std::string& what) {
  throw FormatError("hbcg '" + path + "': " + what);
}

}  // namespace

const char* to_string(Residency r) noexcept {
  switch (r) {
    case Residency::kHeap: return "heap";
    case Residency::kMapped: return "mapped";
    case Residency::kCompressedHeap: return "compressed-heap";
    case Residency::kCompressedMapped: return "compressed-mapped";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// FileHeader

void FileHeader::serialize(std::uint8_t out[kHeaderBytes]) const noexcept {
  std::memset(out, 0, kHeaderBytes);
  std::memcpy(out, kMagicV2, sizeof(kMagicV2));
  store_le32(out + 8, kFormatVersion);
  store_le32(out + 12, flags);
  store_le64(out + 16, num_vertices);
  store_le64(out + 24, num_edges);
  store_le64(out + 32, fingerprint);
  store_le64(out + 40, row_section);
  store_le64(out + 48, aux_section);
  store_le64(out + 56, adj_section);
  store_le64(out + 64, adj_bytes);
}

FileHeader FileHeader::parse(const std::uint8_t* data, std::size_t file_size,
                             const std::string& path) {
  if (file_size < kHeaderBytes) {
    format_fail(path, "file too small for header (" + std::to_string(file_size) +
                          " bytes, need " + std::to_string(kHeaderBytes) + ")");
  }
  if (std::memcmp(data, kMagicV2, sizeof(kMagicV2)) != 0) {
    format_fail(path, "bad magic (not an .hbcg v2 graph)");
  }
  const std::uint32_t version = load_le32(data + 8);
  if (version != kFormatVersion) {
    format_fail(path, "unsupported version " + std::to_string(version) +
                          " (expected " + std::to_string(kFormatVersion) + ")");
  }

  FileHeader h;
  h.flags = load_le32(data + 12);
  h.num_vertices = load_le64(data + 16);
  h.num_edges = load_le64(data + 24);
  h.fingerprint = load_le64(data + 32);
  h.row_section = load_le64(data + 40);
  h.aux_section = load_le64(data + 48);
  h.adj_section = load_le64(data + 56);
  h.adj_bytes = load_le64(data + 64);

  if ((h.flags & ~kKnownFlags) != 0) {
    format_fail(path, "unknown flag bits set");
  }

  // Every section must be aligned and lie entirely inside the file.
  // Sums are checked against overflow before use.
  const auto check_section = [&](const char* name, std::uint64_t off,
                                 std::uint64_t bytes) {
    if (off % kSectionAlign != 0) {
      format_fail(path, std::string(name) + " section misaligned");
    }
    if (off < kHeaderBytes || off > file_size || bytes > file_size - off) {
      format_fail(path, std::string(name) + " section out of bounds");
    }
  };

  if (h.num_vertices >= (std::uint64_t{1} << 32)) {
    format_fail(path, "vertex count exceeds 32-bit id space");
  }
  const std::uint64_t row_bytes = (h.num_vertices + 1) * sizeof(EdgeOffset);
  check_section("row", h.row_section, row_bytes);

  const std::uint64_t raw_adj_bytes = h.num_edges * sizeof(VertexId);
  if (h.compressed()) {
    check_section("aux", h.aux_section, row_bytes);
    check_section("adjacency", h.adj_section, h.adj_bytes);
  } else {
    if (h.aux_section != 0) {
      format_fail(path, "aux section present in uncompressed file");
    }
    if (h.adj_bytes != raw_adj_bytes) {
      format_fail(path, "adjacency byte count disagrees with edge count");
    }
    check_section("adjacency", h.adj_section, h.adj_bytes);
  }
  return h;
}

// ---------------------------------------------------------------------------
// Storage

void Storage::fnv_mix(std::uint64_t& h, const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

std::uint64_t Storage::fingerprint_prefix() const noexcept {
  std::uint64_t h = kFnvOffset;
  const std::uint64_t n = num_vertices();
  const std::uint64_t m = m_;
  const std::uint64_t undirected = undirected_ ? 1 : 0;
  fnv_mix(h, &n, sizeof(n));
  fnv_mix(h, &m, sizeof(m));
  fnv_mix(h, &undirected, sizeof(undirected));
  fnv_mix(h, rows_.data(), rows_.size() * sizeof(EdgeOffset));
  return h;
}

std::uint64_t Storage::fingerprint() const {
  std::call_once(fingerprint_once_, [this] { fingerprint_ = compute_fingerprint(); });
  return fingerprint_;
}

std::span<const VertexId> Storage::edge_sources() const {
  std::call_once(edge_sources_once_, [this] {
    edge_sources_.resize(static_cast<std::size_t>(m_));
    const VertexId n = num_vertices();
    for (VertexId v = 0; v < n; ++v) {
      for (EdgeOffset e = rows_[v]; e < rows_[v + 1]; ++e) {
        edge_sources_[static_cast<std::size_t>(e)] = v;
      }
    }
    edge_sources_bytes_.store(edge_sources_.size() * sizeof(VertexId),
                              std::memory_order_release);
  });
  return edge_sources_;
}

// ---------------------------------------------------------------------------

void validate_csr(std::span<const EdgeOffset> rows, std::span<const VertexId> cols,
                  const std::string& context, bool as_format_error) {
  const auto fail = [&](const std::string& what) -> void {
    const std::string msg = context + ": " + what;
    if (as_format_error) throw FormatError(msg);
    throw std::invalid_argument(msg);
  };
  if (rows.empty()) fail("row_offsets must have at least one entry");
  if (rows.front() != 0) fail("row_offsets must start at 0");
  if (rows.back() != cols.size()) fail("row_offsets must end at col_indices.size()");
  if (!std::is_sorted(rows.begin(), rows.end())) {
    fail("row_offsets must be non-decreasing");
  }
  const auto n = static_cast<VertexId>(rows.size() - 1);
  for (VertexId c : cols) {
    if (c >= n) fail("column index out of range");
  }
}

}  // namespace hbc::graph::storage
