file(REMOVE_RECURSE
  "CMakeFiles/hbc_kernels.dir/kernels/bc_state.cpp.o"
  "CMakeFiles/hbc_kernels.dir/kernels/bc_state.cpp.o.d"
  "CMakeFiles/hbc_kernels.dir/kernels/direction_optimized.cpp.o"
  "CMakeFiles/hbc_kernels.dir/kernels/direction_optimized.cpp.o.d"
  "CMakeFiles/hbc_kernels.dir/kernels/driver.cpp.o"
  "CMakeFiles/hbc_kernels.dir/kernels/driver.cpp.o.d"
  "CMakeFiles/hbc_kernels.dir/kernels/edge_parallel.cpp.o"
  "CMakeFiles/hbc_kernels.dir/kernels/edge_parallel.cpp.o.d"
  "CMakeFiles/hbc_kernels.dir/kernels/gpufan.cpp.o"
  "CMakeFiles/hbc_kernels.dir/kernels/gpufan.cpp.o.d"
  "CMakeFiles/hbc_kernels.dir/kernels/hybrid.cpp.o"
  "CMakeFiles/hbc_kernels.dir/kernels/hybrid.cpp.o.d"
  "CMakeFiles/hbc_kernels.dir/kernels/sampling.cpp.o"
  "CMakeFiles/hbc_kernels.dir/kernels/sampling.cpp.o.d"
  "CMakeFiles/hbc_kernels.dir/kernels/vertex_parallel.cpp.o"
  "CMakeFiles/hbc_kernels.dir/kernels/vertex_parallel.cpp.o.d"
  "CMakeFiles/hbc_kernels.dir/kernels/weighted.cpp.o"
  "CMakeFiles/hbc_kernels.dir/kernels/weighted.cpp.o.d"
  "CMakeFiles/hbc_kernels.dir/kernels/work_efficient.cpp.o"
  "CMakeFiles/hbc_kernels.dir/kernels/work_efficient.cpp.o.d"
  "libhbc_kernels.a"
  "libhbc_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbc_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
