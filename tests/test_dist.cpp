// Message-passing substrate (World/Communicator) and the multi-GPU
// cluster driver: correctness of the reduction and the scaling shape the
// paper reports in Figure 6 / Table IV.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "cpu/brandes.hpp"
#include "dist/cluster.hpp"
#include "dist/comm.hpp"
#include "graph/generators.hpp"

namespace {

using namespace hbc;
using dist::ClusterConfig;
using dist::Communicator;
using dist::World;

TEST(Comm, BarrierSynchronizesAllRanks) {
  World world(4);
  std::atomic<int> before{0}, after{0};
  world.run([&](Communicator& comm) {
    before.fetch_add(1);
    comm.barrier();
    // Every rank passed `before` increment before anyone proceeds.
    EXPECT_EQ(before.load(), 4);
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 4);
}

TEST(Comm, ReduceSumOnRoot) {
  World world(3);
  std::vector<double> result(2, 0.0);
  world.run([&](Communicator& comm) {
    const std::vector<double> mine{static_cast<double>(comm.rank() + 1), 10.0};
    std::vector<double> out(2, 0.0);
    comm.reduce_sum(mine, out, /*root=*/0);
    if (comm.rank() == 0) result = out;
  });
  EXPECT_DOUBLE_EQ(result[0], 6.0);   // 1 + 2 + 3
  EXPECT_DOUBLE_EQ(result[1], 30.0);  // 10 * 3
}

TEST(Comm, ReduceIsReusableAcrossCalls) {
  World world(2);
  std::vector<double> first(1), second(1);
  world.run([&](Communicator& comm) {
    std::vector<double> out(1);
    comm.reduce_sum(std::vector<double>{1.0}, out, 0);
    if (comm.rank() == 0) first = out;
    comm.reduce_sum(std::vector<double>{2.0}, out, 0);
    if (comm.rank() == 0) second = out;
  });
  EXPECT_DOUBLE_EQ(first[0], 2.0);
  EXPECT_DOUBLE_EQ(second[0], 4.0);
}

TEST(Comm, AllreduceGivesEveryRankTheSum) {
  World world(4);
  std::atomic<int> correct{0};
  world.run([&](Communicator& comm) {
    const std::vector<double> mine{1.0};
    std::vector<double> out(1);
    comm.allreduce_sum(mine, out);
    if (out[0] == 4.0) correct.fetch_add(1);
  });
  EXPECT_EQ(correct.load(), 4);
}

TEST(Comm, BroadcastFromRoot) {
  World world(3);
  std::atomic<int> correct{0};
  world.run([&](Communicator& comm) {
    std::vector<double> data(2, 0.0);
    if (comm.rank() == 1) data = {7.0, 8.0};
    comm.broadcast(data, /*root=*/1);
    if (data[0] == 7.0 && data[1] == 8.0) correct.fetch_add(1);
  });
  EXPECT_EQ(correct.load(), 3);
}

TEST(Comm, GatherCollectsPerRankVectors) {
  World world(3);
  std::vector<std::vector<double>> gathered;
  world.run([&](Communicator& comm) {
    const std::vector<double> mine{static_cast<double>(comm.rank() * 10)};
    std::vector<std::vector<double>> out;
    comm.gather(mine, out, /*root=*/2);
    if (comm.rank() == 2) gathered = out;
  });
  ASSERT_EQ(gathered.size(), 3u);
  EXPECT_DOUBLE_EQ(gathered[0][0], 0.0);
  EXPECT_DOUBLE_EQ(gathered[1][0], 10.0);
  EXPECT_DOUBLE_EQ(gathered[2][0], 20.0);
}

TEST(Comm, PointToPointByTag) {
  World world(2);
  std::vector<double> got_a, got_b;
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, /*tag=*/5, std::vector<double>{1.5});
      comm.send(1, /*tag=*/9, std::vector<double>{2.5, 3.5});
    } else {
      // Receive out of order: tag matching must pick the right message.
      got_b = comm.recv(0, 9);
      got_a = comm.recv(0, 5);
    }
  });
  ASSERT_EQ(got_a.size(), 1u);
  EXPECT_DOUBLE_EQ(got_a[0], 1.5);
  ASSERT_EQ(got_b.size(), 2u);
  EXPECT_DOUBLE_EQ(got_b[1], 3.5);
}

TEST(Comm, RankExceptionPropagates) {
  World world(2);
  EXPECT_THROW(world.run([&](Communicator& comm) {
    if (comm.rank() == 1) throw std::runtime_error("rank 1 failed");
  }),
               std::runtime_error);
}

TEST(World, RejectsNonPositiveSize) {
  EXPECT_THROW(World(0), std::invalid_argument);
  EXPECT_THROW(World(-3), std::invalid_argument);
}

TEST(Cluster, BCMatchesSerialOracle) {
  const auto g = graph::gen::small_world({.num_vertices = 512, .k = 4, .seed = 1});
  const auto oracle = cpu::brandes(g).bc;

  ClusterConfig config;
  config.nodes = 2;
  config.gpus_per_node = 3;
  config.strategy = kernels::Strategy::WorkEfficient;
  const auto r = dist::run_cluster_bc(g, config);

  EXPECT_EQ(r.total_gpus, 6u);
  EXPECT_EQ(r.roots_processed, g.num_vertices());
  ASSERT_EQ(r.bc.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_NEAR(r.bc[i], oracle[i], 1e-9 * std::max(1.0, oracle[i]));
  }
}

TEST(Cluster, ThreadedPathMatchesSequentialPath) {
  const auto g = graph::gen::scale_free({.num_vertices = 300, .attach = 3, .seed = 2});
  ClusterConfig config;
  config.nodes = 3;
  config.gpus_per_node = 2;
  config.strategy = kernels::Strategy::Hybrid;

  const auto seq = dist::run_cluster_bc(g, config);
  config.use_threads = true;
  const auto thr = dist::run_cluster_bc(g, config);

  ASSERT_EQ(seq.bc.size(), thr.bc.size());
  for (std::size_t i = 0; i < seq.bc.size(); ++i) {
    EXPECT_NEAR(seq.bc[i], thr.bc[i], 1e-9 * std::max(1.0, seq.bc[i]));
  }
  EXPECT_NEAR(seq.sim_seconds, thr.sim_seconds, 1e-12);
}

TEST(Cluster, NearLinearScalingWithEnoughWork) {
  // Figure 6's shape: doubling GPUs roughly halves modelled time when
  // every GPU has plenty of roots.
  const auto g = graph::gen::delaunay_mesh({.scale = 12, .seed = 1});
  ClusterConfig config;
  config.strategy = kernels::Strategy::WorkEfficient;

  config.nodes = 1;
  const double t1 = dist::run_cluster_bc(g, config).sim_seconds;
  config.nodes = 4;
  const double t4 = dist::run_cluster_bc(g, config).sim_seconds;

  const double speedup = t1 / t4;
  EXPECT_GT(speedup, 3.2);
  EXPECT_LE(speedup, 4.2);
}

TEST(Cluster, ReduceCostGrowsWithNodes) {
  dist::InterconnectModel net;
  const std::uint64_t bytes = 8ull << 20;
  EXPECT_EQ(net.reduce_seconds(bytes, 1), 0.0);
  const double r2 = net.reduce_seconds(bytes, 2);
  const double r64 = net.reduce_seconds(bytes, 64);
  EXPECT_GT(r2, 0.0);
  EXPECT_NEAR(r64 / r2, 6.0, 1e-9);  // log2(64) tree steps
}

TEST(Cluster, PerGpuTimesReported) {
  const auto g = graph::gen::small_world({.num_vertices = 256, .k = 3, .seed = 1});
  ClusterConfig config;
  config.nodes = 2;
  config.gpus_per_node = 2;
  config.strategy = kernels::Strategy::WorkEfficient;
  const auto r = dist::run_cluster_bc(g, config);
  ASSERT_EQ(r.per_gpu_seconds.size(), 4u);
  for (double t : r.per_gpu_seconds) EXPECT_GT(t, 0.0);
  EXPECT_GE(r.sim_seconds, r.compute_seconds);
}

TEST(Cluster, RoundRobinMatchesContiguousScores) {
  const auto g = graph::gen::kronecker({.scale = 9, .edge_factor = 8, .seed = 2});
  ClusterConfig config;
  config.nodes = 2;
  config.gpus_per_node = 3;
  config.strategy = kernels::Strategy::WorkEfficient;
  const auto contiguous = dist::run_cluster_bc(g, config);
  config.distribution = dist::RootDistribution::RoundRobin;
  const auto interleaved = dist::run_cluster_bc(g, config);
  ASSERT_EQ(contiguous.bc.size(), interleaved.bc.size());
  for (std::size_t i = 0; i < contiguous.bc.size(); ++i) {
    EXPECT_NEAR(contiguous.bc[i], interleaved.bc[i],
                1e-9 * std::max(1.0, contiguous.bc[i]));
  }
}

TEST(Cluster, RoundRobinBalancesSkewedRootCosts) {
  // Synthetic per-root costs: a contiguous run of expensive roots lands
  // on one GPU under Contiguous but spreads under RoundRobin.
  std::vector<std::uint64_t> costs(120, 100);
  for (int i = 0; i < 20; ++i) costs[i] = 100000;  // hot prefix

  ClusterConfig config;
  config.nodes = 2;
  config.gpus_per_node = 3;
  config.device.num_sms = 2;
  const auto contiguous = dist::model_cluster_time(costs, config, 1000);
  config.distribution = dist::RootDistribution::RoundRobin;
  const auto interleaved = dist::model_cluster_time(costs, config, 1000);
  EXPECT_LT(interleaved.compute_seconds, contiguous.compute_seconds * 0.5);
}

TEST(Cluster, RootSubsetSplitsEvenly) {
  const auto g = graph::gen::small_world({.num_vertices = 256, .k = 3, .seed = 1});
  ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 3;
  config.strategy = kernels::Strategy::WorkEfficient;
  std::vector<graph::VertexId> roots{0, 1, 2, 3, 4, 5, 6};  // 7 roots on 3 GPUs
  const auto r = dist::run_cluster_bc(g, config, roots);
  EXPECT_EQ(r.roots_processed, 7u);
  const auto oracle = cpu::brandes(g, {.sources = roots}).bc;
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_NEAR(r.bc[i], oracle[i], 1e-9 * std::max(1.0, oracle[i]));
  }
}

}  // namespace
