#pragma once

// Delta/varint-compressed adjacency backing (WebGraph-style gap coding,
// see varint.hpp for the exact coding). Row offsets stay raw; the
// column array is replaced by a varint stream plus an aux array of
// (n+1) per-vertex byte offsets into it, so any vertex's list decodes
// independently in O(degree).
//
// Two provenances share this class: a .hbcgz file mapped in place
// (Residency::kCompressedMapped — encoded bytes live in page cache) and
// an in-memory compression of a heap CSR (kCompressedHeap — what the
// bench uses to measure decode overhead without disk noise).
//
// Traversal has two paths:
//  - neighbors(v): a forward range that decodes per neighbor as the
//    iterator advances — the CPU engines stream through this and never
//    materialize the full adjacency.
//  - col_indices(): materializes the whole array once (thread-safe) —
//    the simulated-device upload path for the gpusim kernels.
// Both reproduce the stored neighbor order exactly, so BC scores are
// bitwise-identical to the raw backings.

#include <atomic>
#include <iterator>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/storage/storage.hpp"
#include "graph/storage/varint.hpp"
#include "util/mmap_file.hpp"

namespace hbc::graph::storage {

class CompressedStorage final : public Storage {
 public:
  /// Wrap an already-parsed compressed header over `file`. With
  /// `validate`, every vertex's slice is decoded once up front and any
  /// truncation, overlong varint, out-of-range neighbor, or
  /// inconsistent aux offset throws FormatError — after which the
  /// unchecked streaming decode below is safe by construction.
  CompressedStorage(std::shared_ptr<const util::MmapFile> file,
                    const FileHeader& header, bool validate);

  /// Compress a raw CSR in memory (neighbor order preserved).
  static std::shared_ptr<const CompressedStorage> compress(
      std::span<const EdgeOffset> row_offsets, std::span<const VertexId> col_indices,
      bool undirected);

  std::span<const VertexId> col_indices() const override;

  /// Forward range decoding vertex v's neighbors on the fly.
  class NeighborIterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = VertexId;
    using difference_type = std::ptrdiff_t;
    using pointer = const VertexId*;
    using reference = VertexId;

    NeighborIterator() = default;  // end sentinel (remaining == 0)
    NeighborIterator(const std::uint8_t* p, VertexId v, std::uint64_t count)
        : p_(p), prev_(static_cast<std::int64_t>(v)), remaining_(count) {
      if (remaining_ > 0) decode_next();
    }

    VertexId operator*() const noexcept { return current_; }
    NeighborIterator& operator++() {
      if (--remaining_ > 0) decode_next();
      return *this;
    }
    NeighborIterator operator++(int) {
      NeighborIterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const NeighborIterator& o) const noexcept {
      return remaining_ == o.remaining_;
    }
    bool operator!=(const NeighborIterator& o) const noexcept {
      return remaining_ != o.remaining_;
    }

   private:
    // Unchecked LEB128 decode: the stream was fully validated at open
    // (or produced by compress()), so truncation cannot occur here.
    void decode_next() noexcept {
      std::uint64_t raw = 0;
      int shift = 0;
      while (true) {
        const std::uint8_t byte = *p_++;
        raw |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) break;
        shift += 7;
      }
      prev_ += unzigzag(raw);
      current_ = static_cast<VertexId>(prev_);
    }

    const std::uint8_t* p_ = nullptr;
    std::int64_t prev_ = 0;
    std::uint64_t remaining_ = 0;
    VertexId current_ = 0;
  };

  struct NeighborRange {
    NeighborIterator first;
    NeighborIterator begin() const noexcept { return first; }
    NeighborIterator end() const noexcept { return NeighborIterator(); }
  };

  NeighborRange neighbors(VertexId v) const noexcept {
    return {NeighborIterator(encoded_.data() + byte_offsets_[v], v, degree(v))};
  }

  /// Lightweight adapter satisfying the storage-generic graph concept
  /// (num_vertices / neighbors) the templated CPU engines instantiate
  /// over — streaming decode, never materializes (cpu/brandes_impl.hpp).
  struct StreamView {
    const CompressedStorage* storage;
    VertexId num_vertices() const noexcept { return storage->num_vertices(); }
    NeighborRange neighbors(VertexId v) const noexcept {
      return storage->neighbors(v);
    }
  };
  StreamView stream_view() const noexcept { return {this}; }

  /// Per-vertex byte offsets into the encoded stream ((n+1) entries).
  std::span<const EdgeOffset> byte_offsets() const noexcept { return byte_offsets_; }
  std::span<const std::uint8_t> encoded() const noexcept { return encoded_; }

  std::size_t resident_bytes() const noexcept override;
  std::size_t mapped_bytes() const noexcept override {
    return file_ ? file_->size() : 0;
  }
  std::size_t adjacency_bytes() const noexcept override { return encoded_.size(); }
  std::size_t file_bytes() const noexcept override {
    return file_ ? file_->size() : 0;
  }

 private:
  CompressedStorage(bool undirected, Residency residency)
      : Storage(undirected, residency) {}

  /// Decode every vertex's slice once, checking aux-offset consistency,
  /// value ranges, and exact slice consumption. Throws FormatError.
  void validate_stream(const std::string& context) const;

  std::uint64_t compute_fingerprint() const override;

  std::shared_ptr<const util::MmapFile> file_;  // null for heap-built

  // Owned buffers (heap provenance) — spans below point either here or
  // into the mapping.
  std::vector<EdgeOffset> rows_store_;
  std::vector<EdgeOffset> aux_store_;
  std::vector<std::uint8_t> encoded_store_;

  std::span<const EdgeOffset> byte_offsets_;
  std::span<const std::uint8_t> encoded_;

  mutable std::once_flag materialize_once_;
  mutable std::vector<VertexId> materialized_cols_;
  mutable std::atomic<std::size_t> materialized_bytes_{0};
};

}  // namespace hbc::graph::storage
