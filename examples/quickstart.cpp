// Quickstart: generate (or load) a graph, compute betweenness centrality
// with the paper's sampling strategy, and inspect the most central
// vertices.
//
//   ./quickstart               — small-world demo graph
//   ./quickstart graph.mtx     — any METIS / MatrixMarket / edge-list file

#include <cstdio>

#include "hbc.hpp"

int main(int argc, char** argv) {
  using namespace hbc;

  // 1. Get a graph: from a file, or the built-in generator suite.
  graph::CSRGraph g;
  if (argc > 1) {
    std::printf("loading %s...\n", argv[1]);
    g = graph::io::read_auto(argv[1]);
  } else {
    // A preferential-attachment network: realistic hubs make both the
    // exact ranking and the approximation behaviour easy to see.
    g = graph::gen::scale_free({.num_vertices = 1 << 13, .attach = 4, .seed = 42});
  }
  std::printf("graph: %s\n", g.summary().c_str());

  // 2. Exact BC with the sampling strategy (Algorithm 5): probes the
  //    graph's structure on-line and picks the right parallelization.
  core::Options options;
  options.strategy = core::Strategy::Sampling;
  const core::BCResult exact = core::compute(g, options);

  std::printf("\nexact BC over %llu roots: %.3f simulated GPU seconds"
              " (%.1f MTEPS), %s parallelization chosen\n",
              static_cast<unsigned long long>(exact.roots_processed),
              exact.time_seconds, core::as_mteps(exact.teps),
              exact.kernel_metrics.sampling_chose_edge_parallel ? "edge-parallel"
                                                                : "work-efficient");

  std::printf("\ntop 10 most central vertices:\n");
  for (const auto& [vertex, score] : core::top_k(exact.scores, 10)) {
    std::printf("  vertex %8u  BC = %12.1f\n", vertex, score);
  }

  // 3. Approximate BC from 256 sampled roots — the paper's approach for
  //    graphs too large for the exact O(mn) computation.
  core::Options approx = options;
  approx.sample_roots = 256;
  const core::BCResult estimate = core::compute(g, approx);

  // Judge the estimator the way it is used: does it rank the same
  // vertices at the top, and how far off are their scores on average?
  const auto exact_top = core::top_k(exact.scores, 10);
  const auto approx_top = core::top_k(estimate.scores, 10);
  std::size_t overlap = 0;
  double sum_rel_err = 0.0;
  for (const auto& [vertex, score] : exact_top) {
    for (const auto& [av, as] : approx_top) {
      if (av == vertex) {
        ++overlap;
        break;
      }
    }
    if (score > 0) sum_rel_err += std::abs(estimate.scores[vertex] - score) / score;
  }
  std::printf("\napproximate BC (256 roots, %.1fx less work): %zu/10 of the true\n"
              "top-10 recovered; their scores estimated within %.0f%% on average\n",
              static_cast<double>(g.num_vertices()) / 256.0, overlap,
              100.0 * sum_rel_err / exact_top.size());

  // 4. Normalized scores for cross-graph comparison (§II.B).
  const auto norm = core::normalized(exact.scores);
  std::printf("normalized score of the top vertex: %.6f\n",
              norm[core::top_k(exact.scores, 1)[0].first]);
  return 0;
}
