#include "dist/comm.hpp"

#include <exception>
#include <stdexcept>
#include <thread>

namespace hbc::dist {

World::World(int size) : size_(size) {
  if (size <= 0) throw std::invalid_argument("World: size must be positive");
  mailboxes_.resize(static_cast<std::size_t>(size) * static_cast<std::size_t>(size));
}

void World::run(const std::function<void(Communicator&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &fn, &error_mutex, &first_error] {
      Communicator comm(*this, r);
      try {
        fn(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();

  // Reset per-run state so the World is reusable.
  barrier_count_ = 0;
  for (auto& box : mailboxes_) box.clear();
  coll_buffer_.clear();
  gather_buffer_.clear();

  if (first_error) std::rethrow_exception(first_error);
}

void World::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_count_ == size_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [this, generation] { return barrier_generation_ != generation; });
  }
}

void Communicator::barrier() { world_->barrier_wait(); }

void Communicator::reduce_sum(std::span<const double> data, std::span<double> out,
                              int root) {
  {
    std::lock_guard<std::mutex> lock(world_->coll_mutex_);
    if (world_->coll_buffer_.size() != data.size()) {
      world_->coll_buffer_.assign(data.size(), 0.0);
    }
    for (std::size_t i = 0; i < data.size(); ++i) world_->coll_buffer_[i] += data[i];
  }
  barrier();  // all contributions in
  if (rank_ == root) {
    if (out.size() != data.size()) {
      throw std::invalid_argument("reduce_sum: out size mismatch on root");
    }
    std::lock_guard<std::mutex> lock(world_->coll_mutex_);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = world_->coll_buffer_[i];
  }
  barrier();  // root done reading
  if (rank_ == root) {
    std::lock_guard<std::mutex> lock(world_->coll_mutex_);
    world_->coll_buffer_.clear();
  }
  barrier();  // buffer cleared before any rank starts the next collective
}

void Communicator::allreduce_sum(std::span<const double> data, std::span<double> out) {
  {
    std::lock_guard<std::mutex> lock(world_->coll_mutex_);
    if (world_->coll_buffer_.size() != data.size()) {
      world_->coll_buffer_.assign(data.size(), 0.0);
    }
    for (std::size_t i = 0; i < data.size(); ++i) world_->coll_buffer_[i] += data[i];
  }
  barrier();
  {
    std::lock_guard<std::mutex> lock(world_->coll_mutex_);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = world_->coll_buffer_[i];
  }
  barrier();
  if (rank_ == 0) {
    std::lock_guard<std::mutex> lock(world_->coll_mutex_);
    world_->coll_buffer_.clear();
  }
  barrier();
}

void Communicator::broadcast(std::span<double> data, int root) {
  if (rank_ == root) {
    std::lock_guard<std::mutex> lock(world_->coll_mutex_);
    world_->coll_buffer_.assign(data.begin(), data.end());
  }
  barrier();
  if (rank_ != root) {
    std::lock_guard<std::mutex> lock(world_->coll_mutex_);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = world_->coll_buffer_[i];
  }
  barrier();
  if (rank_ == root) {
    std::lock_guard<std::mutex> lock(world_->coll_mutex_);
    world_->coll_buffer_.clear();
  }
  barrier();
}

void Communicator::gather(std::span<const double> data,
                          std::vector<std::vector<double>>& out, int root) {
  {
    std::lock_guard<std::mutex> lock(world_->coll_mutex_);
    if (world_->gather_buffer_.size() != static_cast<std::size_t>(size())) {
      world_->gather_buffer_.resize(static_cast<std::size_t>(size()));
    }
    world_->gather_buffer_[static_cast<std::size_t>(rank_)].assign(data.begin(), data.end());
  }
  barrier();
  if (rank_ == root) {
    std::lock_guard<std::mutex> lock(world_->coll_mutex_);
    out = world_->gather_buffer_;
  }
  barrier();
  if (rank_ == root) {
    std::lock_guard<std::mutex> lock(world_->coll_mutex_);
    world_->gather_buffer_.clear();
  }
  barrier();
}

void Communicator::send(int dst, int tag, std::span<const double> payload) {
  if (dst < 0 || dst >= size()) throw std::invalid_argument("send: bad destination rank");
  {
    std::lock_guard<std::mutex> lock(world_->p2p_mutex_);
    auto& box = world_->mailboxes_[static_cast<std::size_t>(dst) * size() + rank_];
    box.push_back({tag, std::vector<double>(payload.begin(), payload.end())});
  }
  world_->p2p_cv_.notify_all();
}

std::vector<double> Communicator::recv(int src, int tag) {
  if (src < 0 || src >= size()) throw std::invalid_argument("recv: bad source rank");
  std::unique_lock<std::mutex> lock(world_->p2p_mutex_);
  auto& box = world_->mailboxes_[static_cast<std::size_t>(rank_) * size() + src];
  for (;;) {
    for (auto it = box.begin(); it != box.end(); ++it) {
      if (it->tag == tag) {
        std::vector<double> payload = std::move(it->payload);
        box.erase(it);
        return payload;
      }
    }
    world_->p2p_cv_.wait(lock);
  }
}

}  // namespace hbc::dist
