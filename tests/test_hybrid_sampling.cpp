// Decision logic of Algorithm 4 (hybrid) and Algorithm 5 (sampling):
// which mode gets picked on which graph structure, threshold behaviour,
// and the cost asymmetry the paper reports.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "kernels/kernels.hpp"

namespace {

using namespace hbc;
using graph::CSRGraph;
using kernels::RunConfig;

RunConfig base_config() {
  RunConfig c;
  c.device = gpusim::gtx_titan();
  return c;
}

TEST(Hybrid, StaysWorkEfficientOnRoadNetworks) {
  // High-diameter graphs never grow a frontier past beta, so the hybrid
  // must behave exactly like the work-efficient kernel.
  const CSRGraph g = graph::gen::road({.scale = 12, .seed = 1});
  RunConfig c = base_config();
  c.roots = {0, 100, 200};
  const auto r = kernels::run_hybrid(g, c);
  EXPECT_EQ(r.metrics.ep_levels, 0u);
  EXPECT_GT(r.metrics.we_levels, 0u);
}

TEST(Hybrid, SwitchesToEdgeParallelOnKron) {
  const CSRGraph g = graph::gen::kronecker({.scale = 13, .edge_factor = 16, .seed = 1});
  RunConfig c = base_config();
  c.roots = {0, 1, 2, 3};
  const auto r = kernels::run_hybrid(g, c);
  EXPECT_GT(r.metrics.ep_levels, 0u);
  EXPECT_GT(r.metrics.we_levels, 0u);  // opening/closing levels stay WE
}

TEST(Hybrid, HugeAlphaNeverReconsiders) {
  const CSRGraph g = graph::gen::kronecker({.scale = 12, .edge_factor = 16, .seed = 1});
  RunConfig c = base_config();
  c.roots = {0, 1};
  c.hybrid.alpha = 1u << 30;  // frontier change can never exceed this
  const auto r = kernels::run_hybrid(g, c);
  EXPECT_EQ(r.metrics.ep_levels, 0u);
}

TEST(Hybrid, ZeroBetaPrefersEdgeParallelAfterFirstJump) {
  const CSRGraph g = graph::gen::kronecker({.scale = 12, .edge_factor = 16, .seed = 1});
  RunConfig c = base_config();
  c.roots = {0, 1};
  c.hybrid.alpha = 4;
  c.hybrid.beta = 0;
  const auto r = kernels::run_hybrid(g, c);
  EXPECT_GT(r.metrics.ep_levels, 0u);
}

TEST(Hybrid, MatchesWorkEfficientTimeOnHighDiameter) {
  // Fig 4: on meshes/roads the hybrid pays only a small generality tax
  // over pure work-efficient.
  const CSRGraph g = graph::gen::delaunay_mesh({.scale = 12, .seed = 1});
  RunConfig c = base_config();
  c.roots = {0, 50, 100};
  const auto we = kernels::run_work_efficient(g, c);
  const auto hy = kernels::run_hybrid(g, c);
  EXPECT_LT(hy.metrics.sim_seconds, we.metrics.sim_seconds * 1.25);
  EXPECT_GE(hy.metrics.sim_seconds, we.metrics.sim_seconds * 0.9);
}

TEST(Hybrid, BeatsPureWorkEfficientOnKron) {
  const CSRGraph g = graph::gen::kronecker({.scale = 13, .edge_factor = 16, .seed = 2});
  RunConfig c = base_config();
  c.roots = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto we = kernels::run_work_efficient(g, c);
  const auto hy = kernels::run_hybrid(g, c);
  EXPECT_LT(hy.metrics.sim_seconds, we.metrics.sim_seconds);
}

TEST(Sampling, ChoosesEdgeParallelOnSmallWorld) {
  const CSRGraph g =
      graph::gen::small_world({.num_vertices = 1 << 12, .k = 5, .seed = 1});
  RunConfig c = base_config();
  c.sampling.n_samps = 32;
  const auto r = kernels::run_sampling(g, c);
  EXPECT_TRUE(r.metrics.sampling_chose_edge_parallel);
  // Median BFS depth on a small world is ~log n << gamma * log2(n).
  EXPECT_LT(r.metrics.sampling_median_depth,
            4.0 * std::log2(static_cast<double>(g.num_vertices())));
}

TEST(Sampling, ChoosesWorkEfficientOnRoad) {
  const CSRGraph g = graph::gen::road({.scale = 12, .seed = 1});
  RunConfig c = base_config();
  c.sampling.n_samps = 32;
  const auto r = kernels::run_sampling(g, c);
  EXPECT_FALSE(r.metrics.sampling_chose_edge_parallel);
  EXPECT_EQ(r.metrics.ep_levels, 0u);
}

TEST(Sampling, GammaZeroForcesWorkEfficient) {
  const CSRGraph g =
      graph::gen::small_world({.num_vertices = 1 << 10, .k = 5, .seed = 1});
  RunConfig c = base_config();
  c.sampling.n_samps = 16;
  c.sampling.gamma = 0.0;  // median < 0 is impossible
  const auto r = kernels::run_sampling(g, c);
  EXPECT_FALSE(r.metrics.sampling_chose_edge_parallel);
}

TEST(Sampling, HugeGammaForcesEdgeParallel) {
  const CSRGraph g = graph::gen::road({.scale = 10, .seed = 1});
  RunConfig c = base_config();
  c.sampling.n_samps = 8;
  c.sampling.gamma = 1e9;
  const auto r = kernels::run_sampling(g, c);
  EXPECT_TRUE(r.metrics.sampling_chose_edge_parallel);
}

TEST(Sampling, MinFrontierGuardKeepsSmallLevelsWorkEfficient) {
  const CSRGraph g =
      graph::gen::small_world({.num_vertices = 1 << 12, .k = 5, .seed = 1});
  RunConfig c = base_config();
  c.sampling.n_samps = 8;
  c.sampling.min_frontier = 1u << 30;  // guard blocks EP at every level
  const auto r = kernels::run_sampling(g, c);
  EXPECT_TRUE(r.metrics.sampling_chose_edge_parallel);
  EXPECT_EQ(r.metrics.ep_levels, 0u);  // but no level actually ran EP
}

TEST(Sampling, ProbePhaseCountsTowardResult) {
  // The sampling probe is useful work: with n_samps >= roots the result
  // is a pure work-efficient run, not wasted preprocessing.
  const CSRGraph g =
      graph::gen::scale_free({.num_vertices = 512, .attach = 3, .seed = 1});
  RunConfig c = base_config();
  c.sampling.n_samps = 4096;  // clamped to the root count
  const auto sampling = kernels::run_sampling(g, c);
  const auto we = kernels::run_work_efficient(g, c);
  ASSERT_EQ(sampling.bc.size(), we.bc.size());
  for (std::size_t i = 0; i < we.bc.size(); ++i) {
    EXPECT_NEAR(sampling.bc[i], we.bc[i], 1e-9 * std::max(1.0, we.bc[i]));
  }
  EXPECT_EQ(sampling.metrics.counters.roots_processed, g.num_vertices());
}

TEST(CostAsymmetry, WrongEdgeParallelCostsMoreThanWrongWorkEfficient) {
  // §IV.B: using WE where EP is preferred loses at most ~2.2x; using EP
  // where WE is preferred loses >10x. Compare both mischoices.
  RunConfig c = base_config();
  c.roots = {0, 1, 2, 3};

  const CSRGraph high_diameter = graph::gen::road({.scale = 14, .seed = 1});
  const auto we_hd = kernels::run_work_efficient(high_diameter, c);
  const auto ep_hd = kernels::run_edge_parallel(high_diameter, c);
  const double wrong_ep = ep_hd.metrics.sim_seconds / we_hd.metrics.sim_seconds;

  const CSRGraph small_world =
      graph::gen::small_world({.num_vertices = 1 << 13, .k = 5, .seed = 1});
  const auto we_sw = kernels::run_work_efficient(small_world, c);
  const auto ep_sw = kernels::run_edge_parallel(small_world, c);
  const double wrong_we = we_sw.metrics.sim_seconds / ep_sw.metrics.sim_seconds;

  EXPECT_GT(wrong_ep, 2.0);   // paper: >10x at full scale; compressed here
  EXPECT_LT(wrong_we, 2.4);   // paper: <=2.2x worst case
  EXPECT_GT(wrong_ep, wrong_we * 1.5);
}

}  // namespace
