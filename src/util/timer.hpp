#pragma once

// Wall-clock timer. Simulated device time comes from gpusim's cycle model,
// not from here; this is for host-side measurement only.

#include <chrono>

namespace hbc::util {

class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const noexcept { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hbc::util
