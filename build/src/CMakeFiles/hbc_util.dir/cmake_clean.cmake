file(REMOVE_RECURSE
  "CMakeFiles/hbc_util.dir/util/log.cpp.o"
  "CMakeFiles/hbc_util.dir/util/log.cpp.o.d"
  "CMakeFiles/hbc_util.dir/util/stats.cpp.o"
  "CMakeFiles/hbc_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/hbc_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/hbc_util.dir/util/thread_pool.cpp.o.d"
  "libhbc_util.a"
  "libhbc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
