file(REMOVE_RECURSE
  "CMakeFiles/test_weighted_kernels.dir/test_weighted_kernels.cpp.o"
  "CMakeFiles/test_weighted_kernels.dir/test_weighted_kernels.cpp.o.d"
  "test_weighted_kernels"
  "test_weighted_kernels.pdb"
  "test_weighted_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weighted_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
