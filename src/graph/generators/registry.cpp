#include <cmath>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace hbc::graph::gen {

namespace {

NamedGraph make_named(std::string name, std::string family,
                      std::function<CSRGraph(std::uint32_t, std::uint64_t)> make,
                      std::uint32_t default_scale = 13,
                      std::uint32_t default_roots = 64) {
  return NamedGraph{std::move(name), std::move(family), std::move(make), default_scale,
                    default_roots};
}

CSRGraph make_rgg(std::uint32_t scale, std::uint64_t seed) {
  return rgg({.scale = scale, .seed = seed});
}
CSRGraph make_delaunay(std::uint32_t scale, std::uint64_t seed) {
  return delaunay_mesh({.scale = scale, .seed = seed});
}
CSRGraph make_kron(std::uint32_t scale, std::uint64_t seed) {
  return kronecker({.scale = scale, .seed = seed});
}
CSRGraph make_road(std::uint32_t scale, std::uint64_t seed) {
  return road({.scale = scale, .seed = seed});
}
CSRGraph make_smallworld(std::uint32_t scale, std::uint64_t seed) {
  return small_world({.num_vertices = 1u << scale, .k = 5, .rewire_p = 0.1, .seed = seed});
}
CSRGraph make_scalefree(std::uint32_t scale, std::uint64_t seed) {
  return scale_free({.num_vertices = 1u << scale, .attach = 3, .seed = seed});
}
CSRGraph make_web(std::uint32_t scale, std::uint64_t seed) {
  return web_crawl({.num_vertices = 1u << scale, .out_links = 8, .seed = seed});
}
CSRGraph make_mesh2d(std::uint32_t scale, std::uint64_t /*seed*/) {
  return mesh2d({.scale = scale, .halo = 2});
}
CSRGraph make_gowalla_like(std::uint32_t scale, std::uint64_t seed) {
  // Geosocial networks are scale-free with a denser core; attach=5
  // approximates loc-gowalla's m/n ~ 9.7.
  return scale_free({.num_vertices = 1u << scale, .attach = 5, .seed = seed});
}

}  // namespace

std::vector<NamedGraph> figure3_family() {
  return {
      make_named("rgg_n_2_20", "rgg", make_rgg),
      make_named("delaunay_n20", "delaunay", make_delaunay),
      make_named("kron_g500-logn20", "kron", make_kron),
      make_named("luxembourg.osm", "road", make_road),
      make_named("smallworld", "smallworld", make_smallworld),
  };
}

std::vector<NamedGraph> table3_family() {
  return {
      make_named("af_shell9", "mesh2d", make_mesh2d, 14, 8),
      make_named("caidaRouterLevel", "scalefree", make_scalefree, 14),
      make_named("cnr-2000", "web", make_web, 14),
      make_named("com-amazon", "scalefree", make_scalefree, 14),
      make_named("delaunay_n20", "delaunay", make_delaunay, 15, 8),
      make_named("loc-gowalla", "scalefree-dense", make_gowalla_like, 14),
      make_named("luxembourg.osm", "road", make_road, 15, 8),
      make_named("smallworld", "smallworld", make_smallworld, 14),
  };
}

NamedGraph family_by_name(const std::string& name) {
  if (name == "rgg") return make_named("rgg", "rgg", make_rgg);
  if (name == "delaunay") return make_named("delaunay", "delaunay", make_delaunay);
  if (name == "kron") return make_named("kron", "kron", make_kron);
  if (name == "road") return make_named("road", "road", make_road);
  if (name == "smallworld") return make_named("smallworld", "smallworld", make_smallworld);
  if (name == "scalefree") return make_named("scalefree", "scalefree", make_scalefree);
  if (name == "web") return make_named("web", "web", make_web);
  if (name == "mesh2d") return make_named("mesh2d", "mesh2d", make_mesh2d);
  throw std::invalid_argument("unknown generator family: " + name);
}

CSRGraph figure1_graph() {
  // Paper labels 1..9; ours 0..8. Properties encoded (paper numbering):
  //   * neighbours(4) = {1, 3, 5, 6}  (Fig 2's second BFS iteration)
  //   * 9 is a leaf off 7; the 5->9 shortest path runs through 7
  //   * 8 sits on the non-shortest 5-8-7-9 path, so BC(8) = 0
  //   * 2 hangs off 1 and 3 on the right-hand side
  const EdgeList edges = {
      {0, 1},  // 1-2
      {1, 2},  // 2-3
      {0, 3},  // 1-4
      {2, 3},  // 3-4
      {3, 4},  // 4-5
      {3, 5},  // 4-6
      {4, 6},  // 5-7
      {4, 7},  // 5-8
      {6, 7},  // 7-8
      {6, 8},  // 7-9
  };
  return build_csr(9, edges);
}

}  // namespace hbc::graph::gen
