#pragma once

// Shared plumbing for the hbc command-line tools (hbc, hbc-gen, hbc-info,
// hbc-serve, hbc-trace-check): graph-spec loading, numeric flag parsing
// with contextual errors, and trace-capture writing. Tool-specific flags
// stay in the tools; this is only the logic that was copy-pasted between
// them.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "hbc.hpp"

namespace hbc::cli {

/// Thrown by flag parsing when the invocation is malformed (missing flag
/// value, trailing operand, unparsable number). Tools catch it, print the
/// message plus their usage block, and exit 2.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Load a graph from a tool argument: either a file path (METIS /
/// MatrixMarket / SNAP edge list / .hbc binary, dispatched on content)
/// or a generator spec "gen:<family>:<scale>[:<seed>]".
graph::CSRGraph load_graph_spec(const std::string& spec);

/// True when `spec` names a generator rather than a file.
bool is_generator_spec(const std::string& spec);

/// Numeric parsers that reject trailing junk and report the offending
/// flag: parse_u64("--roots", "12x") throws UsageError("--roots: ...").
std::uint64_t parse_u64(const std::string& flag, const std::string& text);
std::uint32_t parse_u32(const std::string& flag, const std::string& text);
std::size_t parse_size(const std::string& flag, const std::string& text);
double parse_double(const std::string& flag, const std::string& text);

/// Argument cursor for the tools' flag loops. Wraps argv and hands out
/// flag values with a UsageError (instead of a silent usage() exit) when
/// a flag is missing its operand.
class ArgCursor {
 public:
  ArgCursor(int argc, char** argv) : argc_(argc), argv_(argv) {}

  bool done() const noexcept { return i_ >= argc_; }
  /// The next argument, advancing the cursor.
  std::string take() { return argv_[i_++]; }
  /// The operand of `flag` (the argument after it), advancing the cursor.
  std::string value(const std::string& flag) {
    if (i_ >= argc_) throw UsageError(flag + " requires a value");
    return argv_[i_++];
  }

 private:
  int argc_;
  char** argv_;
  int i_ = 1;
};

/// Serialize `tracer` as Chrome trace_event JSON to `path`. Throws
/// std::runtime_error when the file cannot be written; prints nothing.
void write_trace_json(const trace::Tracer& tracer, const std::string& path);

/// One-line capture description for tool output, e.g.
/// "2841 events (0 dropped)".
std::string trace_stats_line(const trace::Tracer& tracer);

}  // namespace hbc::cli
