#include <utility>
#include <stdexcept>
#include <unordered_set>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace hbc::graph::gen {

// G(n, m): rejection-sample distinct unordered pairs. Fine for the sparse
// regime the library targets (m << n^2 / 2).
CSRGraph erdos_renyi(const ErdosRenyiParams& params) {
  const VertexId n = params.num_vertices;
  if (n < 2) throw std::invalid_argument("erdos_renyi: need at least 2 vertices");
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  if (params.num_edges > max_edges) {
    throw std::invalid_argument("erdos_renyi: more edges than unordered pairs");
  }

  util::Xoshiro256 rng(params.seed);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(params.num_edges * 2);
  GraphBuilder builder(n);

  while (chosen.size() < params.num_edges) {
    VertexId u = static_cast<VertexId>(rng.next_below(n));
    VertexId v = static_cast<VertexId>(rng.next_below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (chosen.insert(key).second) builder.add_edge(u, v);
  }
  return builder.build();
}

}  // namespace hbc::graph::gen
