#pragma once

// Device configuration and analytic cost model for the GPU execution-model
// simulator.
//
// Why a model instead of wall-clock: this reproduction runs on a CPU-only
// host, and the paper's single-GPU results are determined by (a) how much
// work each strategy performs (O(n^2+m) level-check traversals vs O(n+m)
// queue traversals) and (b) the memory-access pattern of that work
// (coalesced streaming scans vs scattered frontier-driven accesses plus
// atomics). Both are countable. Every kernel executes functionally on the
// host and charges each logical operation to the cycle model below; the
// per-SM block scheduler then turns charged cycles into simulated time.
//
// The constants are calibrated (see bench/bench_table3_mteps.cpp and
// EXPERIMENTS.md) so that relative results — who wins, by what factor,
// where crossovers fall — land in the paper's reported bands:
//   * edge-parallel pays `scan_seq` per directed edge per BFS depth,
//     which is what makes it ~10x slower on high-diameter graphs;
//   * work-efficient pays `process_rand` (scattered) instead of
//     `process_seq` (streaming) per useful edge plus queue maintenance,
//     which is what caps its loss on scale-free graphs near the paper's
//     observed 2.2x worst case;
//   * GPU-FAN's grid-wide synchronization costs a kernel relaunch per
//     BFS depth and its O(n^2) predecessor list exhausts device memory
//     at the scales the paper marks with dotted lines in Figure 5.

#include <cstdint>
#include <string>

namespace hbc::gpusim {

/// Cycle charges for the logical operations BC kernels perform. All values
/// are amortized per-element cycles as seen by one thread of a block.
struct CostModel {
  /// Streaming scan of a device array in index order (fully coalesced):
  /// edge-parallel / vertex-parallel level checks.
  std::uint32_t scan_seq = 1;

  /// Processing one useful edge when edges are visited in memory order
  /// (edge-parallel): coalesced adjacency read + scattered d/sigma access.
  std::uint32_t process_seq = 12;

  /// Processing one useful edge reached through the frontier queue
  /// (work-efficient): scattered adjacency, d, sigma accesses + CAS.
  std::uint32_t process_rand = 20;

  /// Adjacency-streaming threshold: the first edges of a thread's
  /// adjacency walk pay the scattered `process_rand` cost; beyond this
  /// many, the CSR run is long enough that reads stream from consecutive
  /// cache lines and drop to `process_seq`. This is why hub levels are
  /// cheaper per edge than their edge count suggests — the effect behind
  /// Table I's low rho_e,t on kron.
  std::uint32_t stream_threshold = 8;

  /// Dequeuing one frontier vertex (queue read + row-offset fetch).
  std::uint32_t queue_vertex = 12;

  /// Enqueuing one discovered vertex (atomicAdd on the tail + write).
  std::uint32_t queue_insert = 10;

  /// Extra charge per atomic dependency update (edge-parallel backward
  /// phase needs atomics where the successor scheme does not, §IV.A).
  std::uint32_t atomic_extra = 4;

  /// Instruction-level parallelism within one thread: independent loads a
  /// thread keeps in flight. Divides the critical-path cost of a single
  /// overloaded thread (a hub vertex's adjacency is issued as independent
  /// loads, not a dependent chain), while the barrier still waits for it.
  std::uint32_t thread_ilp = 10;

  /// Block-level barrier + per-depth bookkeeping (__syncthreads cost).
  std::uint32_t block_barrier = 40;

  /// Per-level strategy reconsideration in the hybrid kernel (reading the
  /// queue lengths, broadcasting the decision) — the paper's "cost of
  /// generality" that keeps pure work-efficient slightly ahead on
  /// high-diameter graphs (Fig 4).
  std::uint32_t hybrid_decision = 16;

  /// Per-level frontier-size guard in the sampling kernel's edge-parallel
  /// phase (§IV.C's check that reverts trivial levels to work-efficient).
  std::uint32_t sampling_guard = 8;

  /// Grid-wide synchronization = kernel relaunch (GPU-FAN pays this once
  /// per BFS depth since all SMs cooperate on a single root).
  std::uint32_t grid_relaunch = 4000;
};

struct DeviceConfig {
  std::string name = "generic";
  std::uint32_t num_sms = 14;
  std::uint32_t threads_per_block = 256;
  std::uint32_t warp_size = 32;
  double clock_ghz = 0.837;
  std::uint64_t memory_bytes = 6ull << 30;  // 6 GB GDDR5
  CostModel cost;

  /// End-to-end time calibration. The per-operation charges above model
  /// *relative* costs; un-modelled constants — DRAM latency at the low
  /// occupancy these one-block-per-root kernels run at (8 warps/SM),
  /// atomic serialization, instruction issue overhead — scale every
  /// operation roughly uniformly. This single factor folds them into
  /// simulated seconds so absolute MTEPS lands in the decade the paper
  /// measured; it cancels exactly in every speedup and crossover.
  double time_scale = 1.0;

  /// Total resident threads when a grid-wide kernel uses every SM.
  std::uint64_t device_threads() const noexcept {
    return static_cast<std::uint64_t>(num_sms) * threads_per_block;
  }

  double seconds_from_cycles(double cycles) const noexcept {
    return cycles * time_scale / (clock_ghz * 1e9);
  }
};

/// GeForce GTX Titan — the paper's single-node card (14 SMs, Kepler,
/// 837 MHz base clock, 6 GB).
DeviceConfig gtx_titan();

/// Tesla M2090 — the KIDS cluster card (16 SMs, Fermi, 1.3 GHz, 6 GB).
DeviceConfig tesla_m2090();

/// Tiny device for unit tests: 2 SMs, 32 threads, 1 MB of memory so OOM
/// paths are reachable with toy inputs.
DeviceConfig test_device();

}  // namespace hbc::gpusim
