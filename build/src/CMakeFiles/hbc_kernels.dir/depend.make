# Empty dependencies file for hbc_kernels.
# This may be replaced when dependencies are built.
