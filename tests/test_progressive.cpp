// Accuracy-contract serving (docs/serving.md § Accuracy contracts):
// budget activation and the deprecated-shim guarantee, the refinable
// upgrade path's bitwise identity with from-scratch runs, cached-estimate
// reuse, monotone reported error, mutation invalidation (including the
// never-resurrect rule for background refinement), and the degraded-
// never-cached rule on the progressive path.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/approx.hpp"
#include "core/bc.hpp"
#include "dyn/versioned_graph.hpp"
#include "gpusim/faults.hpp"
#include "graph/generators.hpp"
#include "service/progressive.hpp"
#include "service/service.hpp"

namespace {

using namespace hbc;
using namespace hbc::service;

graph::CSRGraph test_graph(std::uint64_t seed = 7) {
  return graph::gen::small_world({.num_vertices = 1024, .k = 3, .seed = seed});
}

core::Options gpu_options() {
  core::Options o;
  o.strategy = core::Strategy::WorkEfficient;
  return o;
}

Request budgeted_request(std::uint32_t max_roots, bool refine = false) {
  Request r;
  r.graph_id = "g";
  r.options = gpu_options();
  r.budget.max_roots = max_roots;
  r.budget.allow_refinement = refine;
  return r;
}

// ---------------------------------------------------------------------------
// The budget type and cache-key primitives.

TEST(QueryBudgetTest, DefaultIsInactiveAndTargetsActivate) {
  QueryBudget b;
  EXPECT_FALSE(b.active());
  b.accuracy_target = 0.05;
  EXPECT_TRUE(b.active());
  b = QueryBudget{};
  b.max_roots = 256;
  EXPECT_TRUE(b.active());
  // A pure deadline does not switch paths: it maps onto the deprecated
  // Request::timeout shim and the query stays exact.
  b = QueryBudget{};
  b.deadline = std::chrono::milliseconds(50);
  EXPECT_FALSE(b.active());
}

TEST(QueryBudgetTest, ApproxSignatureNeverAliasesExactSignatures) {
  const core::Options o = gpu_options();
  const core::StratumPlan plan;
  const std::string approx = core::approx_signature(o, plan);
  EXPECT_NE(approx, core::options_signature(o));
  EXPECT_NE(approx.find(";stratified="), std::string::npos);

  // Plan geometry is part of the key: different stripes never alias.
  core::StratumPlan wide = plan;
  wide.stripe_roots = 256;
  EXPECT_NE(core::approx_signature(o, wide), approx);

  // Root selection is owned by the budget, so the rung does not leak into
  // the key — every contract refines the same entry.
  core::Options sampled = o;
  sampled.sample_roots = 512;
  EXPECT_EQ(core::approx_signature(sampled, plan), approx);
}

TEST(QueryBudgetTest, BudgetSuffixSeparatesContracts) {
  QueryBudget a, b;
  a.max_roots = 256;
  b.max_roots = 512;
  EXPECT_NE(budget_suffix(a), budget_suffix(b));
  b.max_roots = 256;
  b.allow_refinement = true;
  EXPECT_NE(budget_suffix(a), budget_suffix(b));
}

// ---------------------------------------------------------------------------
// The deprecated shim: exact callers see identical behaviour and bytes.

TEST(ProgressiveService, ExactQueriesCarryNoEstimateAndStillCache) {
  BcService svc({.workers = 2});
  svc.load_graph("g", test_graph());
  Request req;
  req.graph_id = "g";
  req.options = gpu_options();

  const Response first = svc.query(req);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.estimate.has_value());
  const Response second = svc.query(req);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.from_cache);
  EXPECT_FALSE(second.estimate.has_value());
}

TEST(ProgressiveService, BudgetedQueryRejectsExplicitRoots) {
  BcService svc({.workers = 1});
  svc.load_graph("g", test_graph());
  Request req = budgeted_request(256);
  req.options.roots = {1, 2, 3};
  const Response r = svc.query(req);
  EXPECT_EQ(r.status, QueryStatus::BadRequest);
}

// ---------------------------------------------------------------------------
// The tentpole: upgrading a cached estimate in place is bitwise-identical
// to computing the larger sample from scratch, at every thread count.

TEST(ProgressiveService, UpgradeIsBitwiseIdenticalToFreshRunAcrossThreads) {
  const graph::CSRGraph g = test_graph();
  std::vector<double> golden512;

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    // Service A answers 256 roots, then upgrades the SAME cache entry.
    BcService a({.workers = workers, .compute_threads = workers});
    a.load_graph("g", g);
    const Response r256 = a.query(budgeted_request(256));
    ASSERT_TRUE(r256.ok());
    ASSERT_TRUE(r256.estimate.has_value());
    EXPECT_EQ(r256.estimate->roots_used, 256u);
    EXPECT_EQ(a.metrics().approx_strata, 2u);

    const Response up = a.query(budgeted_request(512));
    ASSERT_TRUE(up.ok());
    EXPECT_EQ(up.estimate->roots_used, 512u);
    // Only the additional strata were computed: 2 more, not 4.
    EXPECT_EQ(a.metrics().approx_strata, 4u);
    EXPECT_GE(up.estimate->rung, 1u);

    // Service B computes 512 roots from scratch.
    BcService b({.workers = workers, .compute_threads = workers});
    b.load_graph("g", g);
    const Response fresh = b.query(budgeted_request(512));
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(b.metrics().approx_strata, 4u);

    ASSERT_EQ(up.result->scores.size(), fresh.result->scores.size());
    EXPECT_EQ(std::memcmp(up.result->scores.data(), fresh.result->scores.data(),
                          up.result->scores.size() * sizeof(double)),
              0)
        << "upgraded 512-root estimate diverged at workers=" << workers;

    if (golden512.empty()) {
      golden512 = fresh.result->scores;
    } else {
      // And the bits agree across thread counts too.
      EXPECT_EQ(std::memcmp(golden512.data(), fresh.result->scores.data(),
                            golden512.size() * sizeof(double)),
                0)
          << "thread count changed the bits at workers=" << workers;
    }
  }
}

TEST(ProgressiveService, CachedEstimateIsServedWithoutRecompute) {
  BcService svc({.workers = 2});
  svc.load_graph("g", test_graph());
  const Response first = svc.query(budgeted_request(256));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.from_cache);
  const std::uint64_t strata = svc.metrics().approx_strata;

  const Response again = svc.query(budgeted_request(256));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.from_cache);
  EXPECT_EQ(svc.metrics().approx_strata, strata);
  EXPECT_EQ(again.estimate->roots_used, 256u);
  EXPECT_EQ(std::memcmp(first.result->scores.data(), again.result->scores.data(),
                        first.result->scores.size() * sizeof(double)),
            0);
}

TEST(ProgressiveService, ReportedErrorIsMonotoneAndSaturationIsExact) {
  BcService svc({.workers = 2});
  const graph::CSRGraph g = test_graph();
  svc.load_graph("g", g);

  double last = std::numeric_limits<double>::infinity();
  for (const std::uint32_t roots : {256u, 512u, 1024u}) {
    const Response r = svc.query(budgeted_request(roots));
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.estimate.has_value());
    EXPECT_LE(r.estimate->stderr_est, last)
        << "reported error regressed at " << roots << " roots";
    last = r.estimate->stderr_est;
  }
  // 1024 roots on a 1024-vertex graph saturates: the estimate is exact.
  const Response full = svc.query(budgeted_request(1024));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.estimate->stderr_est, 0.0);
  EXPECT_FALSE(full.result->approximate);
  EXPECT_EQ(full.result->roots_processed, g.num_vertices());
}

// ---------------------------------------------------------------------------
// Invalidation: mutation flags entries, and background refinement drops
// flagged entries instead of resurrecting them.

TEST(ProgressiveService, MutationInvalidatesAndRefinementNeverResurrects) {
  // Gate every compute call past the foreground rung: the background
  // refinement's first stratum blocks here, guaranteeing the mutation
  // lands while the refinement job is still alive.
  struct Gate {
    std::mutex mu;
    std::condition_variable cv;
    bool open = false;
    std::atomic<int> calls{0};
  };
  auto gate = std::make_shared<Gate>();

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.compute_fn = [gate](const graph::CSRGraph& g, const core::Options& o) {
    if (gate->calls.fetch_add(1) >= 2) {
      std::unique_lock<std::mutex> lock(gate->mu);
      gate->cv.wait(lock, [&] { return gate->open; });
    }
    return core::compute(g, o);
  };
  BcService svc(cfg);
  svc.load_graph("g", test_graph());

  // An unreachable accuracy target with refinement allowed: the service
  // answers at rung 0 and queues background work toward the contract.
  Request req = budgeted_request(0, /*refine=*/true);
  req.budget.accuracy_target = 1e-12;
  req.budget.max_roots = 512;
  const Response r = svc.query(req);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.estimate.has_value());
  EXPECT_TRUE(r.estimate->refining);
  EXPECT_EQ(r.estimate->roots_used, 256u);

  const MutationResult mr = svc.mutate_graph("g", dyn::UpdateBatch{}.insert(0, 500));
  EXPECT_GE(mr.approx_invalidated, 1u);

  {
    std::lock_guard<std::mutex> lock(gate->mu);
    gate->open = true;
  }
  gate->cv.notify_all();
  svc.drain_refinement();
  EXPECT_EQ(svc.metrics().refine_dropped, 1u);
  EXPECT_EQ(svc.metrics().refine_rungs, 0u);

  // The invalidated estimate must never be served again: the same
  // contract on the mutated graph computes a fresh rung 0.
  Request fresh = budgeted_request(256);
  const Response after = svc.query(fresh);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.from_cache);
  EXPECT_EQ(after.estimate->roots_used, 256u);
}

TEST(ProgressiveService, EvictGraphInvalidatesEstimates) {
  const graph::CSRGraph g = test_graph();
  BcService svc({.workers = 1});
  svc.load_graph("g", g);
  ASSERT_TRUE(svc.query(budgeted_request(256)).ok());
  ASSERT_GE(svc.metrics().approx_entries, 1u);

  svc.evict_graph("g");
  // Reloading the SAME structure (same fingerprint) must not revive the
  // unlinked estimate: the next budgeted query recomputes.
  svc.load_graph("g", g);
  const Response r = svc.query(budgeted_request(256));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.from_cache);
}

// ---------------------------------------------------------------------------
// Resilience: a degraded substitute answer is served but never cached.

TEST(ProgressiveService, DegradedProgressiveAnswersAreNeverCached) {
  // The requested GPU-model engine fails persistently (strata AND the
  // ladder's retry of the original request), so the resilience ladder's
  // CPU-exact substitute answers — degraded, and never cached.
  std::atomic<int> stratum_attempts{0};
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.compute_fn = [&](const graph::CSRGraph& g, const core::Options& o) {
    if (o.strategy == core::Strategy::WorkEfficient) {
      if (!o.roots.empty()) stratum_attempts.fetch_add(1);
      throw gpusim::DeviceFault(gpusim::FaultKind::EccError,
                                gpusim::DeviceFault::kNoRoot, 0,
                                /*transient=*/false);
    }
    return core::compute(g, o);
  };
  BcService svc(cfg);
  svc.load_graph("g", test_graph());

  const Response first = svc.query(budgeted_request(256));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.degraded);
  ASSERT_TRUE(first.estimate.has_value());

  const int attempts_after_first = stratum_attempts.load();
  EXPECT_GT(attempts_after_first, 0);

  // Identical request: the degraded answer must NOT have been cached in
  // either cache — the service tries the strata again.
  const Response second = svc.query(budgeted_request(256));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.degraded);
  EXPECT_FALSE(second.from_cache);
  EXPECT_GT(stratum_attempts.load(), attempts_after_first);
}

// ---------------------------------------------------------------------------
// ApproxCache mechanics.

TEST(ApproxCacheTest, InvalidatePrefixUnlinksAndFlags) {
  ApproxCache cache(1 << 20);
  const core::StratumPlan plan;
  bool created = false;
  auto e = cache.get_or_create("fp1:sig", 256, plan, 42, 0xf1, created);
  EXPECT_TRUE(created);
  ASSERT_NE(cache.get("fp1:sig"), nullptr);

  EXPECT_EQ(cache.invalidate_prefix("fp2"), 0u);
  EXPECT_EQ(cache.invalidate_prefix("fp1"), 1u);
  EXPECT_EQ(cache.get("fp1:sig"), nullptr);
  std::lock_guard<std::mutex> lock(e->mu);
  EXPECT_TRUE(e->invalidated);
}

TEST(ApproxCacheTest, ZeroBudgetHandsOutDetachedEntries) {
  ApproxCache cache(0);
  const core::StratumPlan plan;
  bool created = false;
  auto a = cache.get_or_create("k", 256, plan, 42, 1, created);
  EXPECT_TRUE(created);
  auto b = cache.get_or_create("k", 256, plan, 42, 1, created);
  EXPECT_TRUE(created);
  EXPECT_NE(a.get(), b.get());  // never linked, never shared
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
