#include "graph/csr.hpp"

#include <algorithm>
#include <sstream>

#include "graph/storage/heap.hpp"

namespace hbc::graph {

namespace {

// Non-null stand-in for an empty column array so neighbors() arithmetic
// stays defined when m == 0 (every row offset is 0).
const VertexId kEmptyCols = 0;

std::shared_ptr<const storage::Storage> empty_storage() {
  static const std::shared_ptr<const storage::Storage> kEmpty =
      std::make_shared<storage::HeapStorage>(std::vector<EdgeOffset>{0},
                                             std::vector<VertexId>{}, true);
  return kEmpty;
}

}  // namespace

void CSRGraph::init_from_storage() noexcept {
  rows_ = storage_->row_offsets();
  m_ = storage_->num_edges();
  undirected_ = storage_->undirected();
  if (!storage::is_compressed(storage_->residency())) {
    // Raw backings are already resident — pin the pointer eagerly so the
    // hot path never branches to the slow path.
    const VertexId* cols = storage_->col_indices().data();
    cols_.store(cols != nullptr ? cols : &kEmptyCols, std::memory_order_release);
  }
}

CSRGraph::CSRGraph() : storage_(empty_storage()) { init_from_storage(); }

CSRGraph::CSRGraph(std::vector<EdgeOffset> row_offsets,
                   std::vector<VertexId> col_indices, bool undirected)
    : storage_(std::make_shared<storage::HeapStorage>(
          std::move(row_offsets), std::move(col_indices), undirected)) {
  init_from_storage();
}

CSRGraph::CSRGraph(std::shared_ptr<const storage::Storage> storage)
    : storage_(std::move(storage)) {
  if (storage_ == nullptr) storage_ = empty_storage();
  init_from_storage();
}

CSRGraph::CSRGraph(const CSRGraph& other)
    : storage_(other.storage_),
      rows_(other.rows_),
      m_(other.m_),
      undirected_(other.undirected_) {
  cols_.store(other.cols_.load(std::memory_order_acquire), std::memory_order_release);
}

CSRGraph& CSRGraph::operator=(const CSRGraph& other) {
  if (this != &other) {
    storage_ = other.storage_;
    rows_ = other.rows_;
    m_ = other.m_;
    undirected_ = other.undirected_;
    cols_.store(other.cols_.load(std::memory_order_acquire),
                std::memory_order_release);
  }
  return *this;
}

CSRGraph::CSRGraph(CSRGraph&& other) noexcept
    : storage_(std::move(other.storage_)),
      rows_(other.rows_),
      m_(other.m_),
      undirected_(other.undirected_) {
  cols_.store(other.cols_.load(std::memory_order_acquire), std::memory_order_release);
}

CSRGraph& CSRGraph::operator=(CSRGraph&& other) noexcept {
  if (this != &other) {
    storage_ = std::move(other.storage_);
    rows_ = other.rows_;
    m_ = other.m_;
    undirected_ = other.undirected_;
    cols_.store(other.cols_.load(std::memory_order_acquire),
                std::memory_order_release);
  }
  return *this;
}

const VertexId* CSRGraph::cols_data_slow() const {
  // Compressed backing: materialize (thread-safe inside the storage) and
  // cache the pointer. Concurrent callers publish the same value.
  const VertexId* cols = storage_->col_indices().data();
  if (cols == nullptr) cols = &kEmptyCols;
  cols_.store(cols, std::memory_order_release);
  return cols;
}

VertexId CSRGraph::max_degree() const noexcept {
  VertexId best = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    best = std::max<VertexId>(best, static_cast<VertexId>(degree(v)));
  }
  return best;
}

double CSRGraph::average_degree() const noexcept {
  const VertexId n = num_vertices();
  if (n == 0) return 0.0;
  return static_cast<double>(num_directed_edges()) / static_cast<double>(n);
}

std::size_t CSRGraph::storage_bytes() const noexcept {
  // As-if-heap footprint (rows + cols + edge_sources), the historical
  // meaning: what uploading to a simulated device costs.
  return storage_->decoded_row_bytes() + 2 * storage_->decoded_adjacency_bytes();
}

std::string CSRGraph::summary() const {
  std::ostringstream os;
  os << "n=" << num_vertices() << " m=" << num_undirected_edges()
     << (undirected_ ? " (undirected)" : " (directed)")
     << " max_deg=" << max_degree() << " [" << storage::to_string(residency())
     << "]";
  return os.str();
}

}  // namespace hbc::graph
