file(REMOVE_RECURSE
  "CMakeFiles/hbc-gen.dir/hbc_gen.cpp.o"
  "CMakeFiles/hbc-gen.dir/hbc_gen.cpp.o.d"
  "hbc-gen"
  "hbc-gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbc-gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
