#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hbc::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double median_lower(std::vector<double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid), xs.end());
  return xs[mid];
}

double median(std::vector<double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid), xs.end());
  if (xs.size() % 2 == 1) return xs[mid];
  const double upper = xs[mid];
  const double lower = *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lower + upper);
}

double pearson(std::span<const double> xs, std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double geometric_mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double min_value(std::span<const double> xs) noexcept {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) noexcept {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double percentile(std::vector<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace hbc::util
