# Empty dependencies file for bench_weighted_sssp.
# This may be replaced when dependencies are built.
