# Empty compiler generated dependencies file for test_edge_bc.
# This may be replaced when dependencies are built.
