#pragma once

// Durable coordinator state — the warm-restart half of fleet self-healing
// (docs/resilience.md).
//
// A snapshot captures everything the coordinator cannot rebuild from its
// workers: the named-graph registry (spec, epoch, base fingerprint, and
// the full mutation history needed to catch a worker up), the graphs
// themselves (written as v2 ".hbcg" containers via the storage layer, so
// a restarted coordinator mmaps them back instead of re-parsing specs),
// and the result-cache index (keys + finalized score vectors — cache
// warmth survives the restart).
//
// Placement is NOT persisted on purpose: the ring is a pure function of
// the ready-worker set, which the restarted coordinator re-learns from
// Hello handshakes. Worker fingerprint re-verification falls out of the
// same path — rejoining workers get the graph + history replay and must
// ack the expected fingerprint, exactly like any late joiner.
//
// Format: `<dir>/manifest.hbcs` serialized with the wire codec's
// bounds-checked Writer/Reader (same defensive posture as the frame
// codec: a corrupt manifest yields a typed SnapshotError, never UB),
// next to one `graph<i>.hbcg` per registered graph. Writes go to a
// ".tmp" then rename, so a crash mid-save leaves the previous snapshot
// intact.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/bc.hpp"
#include "graph/csr.hpp"
#include "net/wire.hpp"

namespace hbc::net {

/// Typed snapshot failure (missing/corrupt/mis-versioned manifest, graph
/// file I/O). The coordinator treats a failed restore as "no snapshot":
/// it records the error and starts fresh rather than serving bad state.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One registered graph, as persisted. `graph_file` is relative to the
/// snapshot directory.
struct SnapshotGraph {
  std::string id;
  std::string spec;
  std::uint64_t base_fingerprint = 0;
  std::uint64_t fingerprint = 0;  // after replaying `history`
  std::uint64_t epoch = 0;
  std::vector<wire::WireUpdate> history;
  std::string graph_file;
  /// Current-epoch structure: supplied by the caller for save (no copy —
  /// the coordinator's own shared graph), materialized on restore.
  std::shared_ptr<const graph::CSRGraph> graph;
};

/// One result-cache entry, as persisted. Only the finalized result
/// travels; the byte charge is re-estimated on restore.
struct SnapshotCacheEntry {
  std::string key;
  std::vector<double> scores;
  std::uint8_t strategy = 0;
  std::uint64_t roots_processed = 0;
  std::uint8_t approximate = 0;
  double time_seconds = 0.0;
  double wall_seconds = 0.0;
  double teps = 0.0;
};

struct Snapshot {
  std::vector<SnapshotGraph> graphs;
  std::vector<SnapshotCacheEntry> cache;  // most-recently-used first
};

/// Write `snap` under `dir` (created if absent): graphs as
/// `graph<i>.hbcg`, then the manifest atomically (tmp + rename). The
/// `graph` member of each SnapshotGraph must be populated. Throws
/// SnapshotError on any failure.
void save_snapshot(const std::string& dir, const Snapshot& snap);

/// Load the snapshot under `dir`, materializing every graph from its
/// container file. Throws SnapshotError if there is no manifest, the
/// manifest is corrupt, or any graph file fails to load/validate.
Snapshot load_snapshot(const std::string& dir);

/// True when `dir` holds a manifest (cheap existence probe).
bool snapshot_exists(const std::string& dir);

}  // namespace hbc::net
