file(REMOVE_RECURSE
  "CMakeFiles/hbc_gpusim.dir/gpusim/config.cpp.o"
  "CMakeFiles/hbc_gpusim.dir/gpusim/config.cpp.o.d"
  "CMakeFiles/hbc_gpusim.dir/gpusim/device.cpp.o"
  "CMakeFiles/hbc_gpusim.dir/gpusim/device.cpp.o.d"
  "CMakeFiles/hbc_gpusim.dir/gpusim/memory.cpp.o"
  "CMakeFiles/hbc_gpusim.dir/gpusim/memory.cpp.o.d"
  "libhbc_gpusim.a"
  "libhbc_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbc_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
