// Figure 5 reproduction: scaling with graph size for rgg (5a),
// delaunay (5b), and kron (5c) — sampling vs the edge-parallel baseline
// vs GPU-FAN, with vertex (and edge) counts doubling per scale step.
//
// Paper findings:
//   * 5a: sampling beats GPU-FAN by >12x at every rgg scale;
//   * 5b: edge-parallel and sampling both beat GPU-FAN on delaunay;
//     sampling dominates as scale grows;
//   * 5c: GPU-FAN marginally competitive at the smallest kron scale,
//     then falls behind and runs OUT OF MEMORY (O(n^2) predecessor list)
//     at scales its competitors handle easily — the dotted lines.
//
// A second axis measures HOST-thread scaling: kernels::BlockDriver maps
// simulated blocks onto real threads, so wall-clock (not simulated) time
// shrinks with --threads while results stay bitwise-identical. Knobs:
//   HBC_BENCH_THREAD_SCALE — graph scale for the thread sweep (default 12)
//   HBC_BENCH_THREAD_ROOTS — roots for the thread sweep (default 28)
//   HBC_BENCH_JSON         — also write the machine-readable records to
//                            this path (they always print after the tables)

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "gpusim/memory.hpp"
#include "kernels/kernels.hpp"

namespace {

using namespace hbc;

// Returns simulated seconds, or -1 on device OOM.
double run_or_oom(kernels::Strategy strategy, const graph::CSRGraph& g,
                  const kernels::RunConfig& config) {
  try {
    return kernels::run_strategy(strategy, g, config).metrics.sim_seconds;
  } catch (const gpusim::DeviceOutOfMemory&) {
    return -1.0;
  }
}

void print_cell(double seconds) {
  if (seconds < 0) {
    std::printf(" %11s", "OOM");
  } else {
    std::printf(" %11.4f", seconds);
  }
}

/// Machine-readable output: one JSON object per measurement, collected
/// while the human tables print and emitted as a JSON array at the end.
std::vector<std::string> g_json_records;

void record_size_scaling(const std::string& family, std::uint32_t scale,
                         const graph::CSRGraph& g, const char* strategy,
                         std::uint32_t roots, double sim_seconds) {
  std::ostringstream s;
  s << "{\"bench\":\"fig5_size_scaling\",\"family\":\"" << family
    << "\",\"scale\":" << scale << ",\"vertices\":" << g.num_vertices()
    << ",\"edges\":" << g.num_undirected_edges() << ",\"strategy\":\"" << strategy
    << "\",\"roots\":" << roots << ",\"oom\":" << (sim_seconds < 0 ? "true" : "false")
    << ",\"sim_seconds\":" << (sim_seconds < 0 ? 0.0 : sim_seconds) << "}";
  g_json_records.push_back(s.str());
}

void record_thread_scaling(const std::string& family, std::uint32_t scale,
                           const char* strategy, std::uint32_t roots,
                           std::size_t threads, double wall_seconds,
                           double sim_seconds, double speedup) {
  std::ostringstream s;
  s << "{\"bench\":\"fig5_thread_scaling\",\"family\":\"" << family
    << "\",\"scale\":" << scale << ",\"strategy\":\"" << strategy
    << "\",\"roots\":" << roots << ",\"threads\":" << threads
    << ",\"wall_seconds\":" << wall_seconds << ",\"sim_seconds\":" << sim_seconds
    << ",\"speedup_vs_1\":" << speedup << "}";
  g_json_records.push_back(s.str());
}

void emit_json() {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < g_json_records.size(); ++i) {
    out << "  " << g_json_records[i] << (i + 1 < g_json_records.size() ? ",\n" : "\n");
  }
  out << "]\n";

  std::printf("\n--- machine-readable (JSON) ---\n%s", out.str().c_str());
  if (const char* path = std::getenv("HBC_BENCH_JSON"); path != nullptr && *path) {
    std::ofstream f(path);
    f << out.str();
    std::printf("wrote %zu records to %s\n", g_json_records.size(), path);
  }
}

}  // namespace

int main() {
  using namespace hbc;

  const std::uint32_t max_scale = bench::env_u32("HBC_BENCH_SCALE", 16);
  const std::uint32_t min_scale = 10;
  const std::uint32_t num_roots = bench::env_u32("HBC_BENCH_ROOTS", 8);

  bench::print_header(
      "Figure 5 — scaling by problem size (simulated seconds per " +
          std::to_string(num_roots) + " roots)",
      "GTX Titan model (6 GB); OOM marks GPU-FAN's O(n^2) predecessor list\n"
      "exceeding device memory — the paper's dotted extrapolations");

  for (const char* fam : {"rgg", "delaunay", "kron"}) {
    const auto family = graph::gen::family_by_name(fam);
    std::printf("\n(%s) %s\n", fam == std::string("rgg")   ? "5a"
                               : fam == std::string("delaunay") ? "5b"
                                                                : "5c",
                fam);
    std::printf("%7s %10s %12s %12s %12s %12s\n", "scale", "vertices", "edges",
                "sampling", "edge-par", "gpu-fan");
    double last_fan = -1.0, last_fan_ratio = 0.0;
    for (std::uint32_t scale = min_scale; scale <= max_scale; scale += 2) {
      const graph::CSRGraph g = family.make(scale, /*seed=*/1);

      kernels::RunConfig config;
      config.device = gpusim::gtx_titan();
      config.roots = bench::first_roots(g, num_roots);
      config.sampling.n_samps = std::max<std::uint32_t>(2, num_roots / 4);

      const double sa = run_or_oom(kernels::Strategy::Sampling, g, config);
      const double ep = run_or_oom(kernels::Strategy::EdgeParallel, g, config);
      const double fan = run_or_oom(kernels::Strategy::GpuFan, g, config);
      record_size_scaling(fam, scale, g, "sampling", num_roots, sa);
      record_size_scaling(fam, scale, g, "edge-parallel", num_roots, ep);
      record_size_scaling(fam, scale, g, "gpu-fan", num_roots, fan);

      std::printf("%7u %10u %12llu", scale, g.num_vertices(),
                  static_cast<unsigned long long>(g.num_undirected_edges()));
      print_cell(sa);
      print_cell(ep);
      print_cell(fan);
      if (fan > 0 && sa > 0) {
        std::printf("   (sampling %.1fx vs gpu-fan)", fan / sa);
        if (last_fan > 0) last_fan_ratio = fan / last_fan;
        last_fan = fan;
      } else if (fan < 0 && last_fan > 0 && last_fan_ratio > 0) {
        // The paper's dotted line: extrapolate from the last two scales.
        last_fan *= last_fan_ratio;
        std::printf("   (extrapolated ~%.4f s, as the paper's dotted lines)",
                    last_fan);
      }
      std::fputc('\n', stdout);
    }
  }

  bench::print_rule();
  std::printf("note: times cover %u roots; full-BC time extrapolates linearly in n\n"
              "(the paper's uniform-root-cost observation), so ratios are scale-true.\n",
              num_roots);

  // --- Host-thread scaling axis ------------------------------------------
  // Simulated time is invariant in the host-thread count (BlockDriver's
  // determinism contract); wall time is what scales. One scale-free graph,
  // wall-seconds per strategy as threads grow toward the block count (the
  // GTX Titan model has 14 SMs, so 14 blocks is the parallelism ceiling).
  const std::uint32_t t_scale = bench::env_u32("HBC_BENCH_THREAD_SCALE", 12);
  const std::uint32_t t_roots = bench::env_u32("HBC_BENCH_THREAD_ROOTS", 28);
  const graph::CSRGraph tg =
      graph::gen::family_by_name("scalefree").make(t_scale, /*seed=*/1);

  bench::print_header(
      "Host-thread scaling — wall seconds per strategy (scalefree scale " +
          std::to_string(t_scale) + ", " + std::to_string(t_roots) + " roots)",
      "simulated blocks execute on real host threads; identical results at\n"
      "every thread count, so only wall time moves");

  const std::size_t thread_counts[] = {1, 2, 4, 8, 14};
  const std::pair<kernels::Strategy, const char*> sweep[] = {
      {kernels::Strategy::WorkEfficient, "work-efficient"},
      {kernels::Strategy::EdgeParallel, "edge-parallel"},
      {kernels::Strategy::Hybrid, "hybrid"},
      {kernels::Strategy::Sampling, "sampling"},
  };

  std::printf("%16s", "strategy");
  for (const std::size_t t : thread_counts) std::printf("   t=%-8zu", t);
  std::printf("  speedup(14)\n");
  for (const auto& [strategy, name] : sweep) {
    kernels::RunConfig config;
    config.device = gpusim::gtx_titan();
    config.roots = bench::first_roots(tg, t_roots);
    config.sampling.n_samps = std::max<std::uint32_t>(2, t_roots / 4);

    std::printf("%16s", name);
    double wall_1 = 0.0, speedup_last = 0.0;
    for (const std::size_t t : thread_counts) {
      config.cpu_threads = t;
      const kernels::RunResult r = kernels::run_strategy(strategy, tg, config);
      if (t == 1) wall_1 = r.metrics.wall_seconds;
      const double speedup =
          r.metrics.wall_seconds > 0 ? wall_1 / r.metrics.wall_seconds : 0.0;
      speedup_last = speedup;
      std::printf(" %9.4fs  ", r.metrics.wall_seconds);
      record_thread_scaling("scalefree", t_scale, name, t_roots, t,
                            r.metrics.wall_seconds, r.metrics.sim_seconds, speedup);
    }
    std::printf("  %9.2fx\n", speedup_last);
  }

  emit_json();
  return 0;
}
