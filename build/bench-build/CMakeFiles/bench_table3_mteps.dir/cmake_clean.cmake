file(REMOVE_RECURSE
  "../bench/bench_table3_mteps"
  "../bench/bench_table3_mteps.pdb"
  "CMakeFiles/bench_table3_mteps.dir/bench_table3_mteps.cpp.o"
  "CMakeFiles/bench_table3_mteps.dir/bench_table3_mteps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_mteps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
