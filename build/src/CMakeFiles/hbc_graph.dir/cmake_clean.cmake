file(REMOVE_RECURSE
  "CMakeFiles/hbc_graph.dir/graph/algorithms.cpp.o"
  "CMakeFiles/hbc_graph.dir/graph/algorithms.cpp.o.d"
  "CMakeFiles/hbc_graph.dir/graph/builder.cpp.o"
  "CMakeFiles/hbc_graph.dir/graph/builder.cpp.o.d"
  "CMakeFiles/hbc_graph.dir/graph/csr.cpp.o"
  "CMakeFiles/hbc_graph.dir/graph/csr.cpp.o.d"
  "CMakeFiles/hbc_graph.dir/graph/generators/erdos_renyi.cpp.o"
  "CMakeFiles/hbc_graph.dir/graph/generators/erdos_renyi.cpp.o.d"
  "CMakeFiles/hbc_graph.dir/graph/generators/kronecker.cpp.o"
  "CMakeFiles/hbc_graph.dir/graph/generators/kronecker.cpp.o.d"
  "CMakeFiles/hbc_graph.dir/graph/generators/mesh.cpp.o"
  "CMakeFiles/hbc_graph.dir/graph/generators/mesh.cpp.o.d"
  "CMakeFiles/hbc_graph.dir/graph/generators/registry.cpp.o"
  "CMakeFiles/hbc_graph.dir/graph/generators/registry.cpp.o.d"
  "CMakeFiles/hbc_graph.dir/graph/generators/rgg.cpp.o"
  "CMakeFiles/hbc_graph.dir/graph/generators/rgg.cpp.o.d"
  "CMakeFiles/hbc_graph.dir/graph/generators/road.cpp.o"
  "CMakeFiles/hbc_graph.dir/graph/generators/road.cpp.o.d"
  "CMakeFiles/hbc_graph.dir/graph/generators/scale_free.cpp.o"
  "CMakeFiles/hbc_graph.dir/graph/generators/scale_free.cpp.o.d"
  "CMakeFiles/hbc_graph.dir/graph/generators/small_world.cpp.o"
  "CMakeFiles/hbc_graph.dir/graph/generators/small_world.cpp.o.d"
  "CMakeFiles/hbc_graph.dir/graph/generators/web_crawl.cpp.o"
  "CMakeFiles/hbc_graph.dir/graph/generators/web_crawl.cpp.o.d"
  "CMakeFiles/hbc_graph.dir/graph/io.cpp.o"
  "CMakeFiles/hbc_graph.dir/graph/io.cpp.o.d"
  "CMakeFiles/hbc_graph.dir/graph/transforms.cpp.o"
  "CMakeFiles/hbc_graph.dir/graph/transforms.cpp.o.d"
  "libhbc_graph.a"
  "libhbc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
