#pragma once

// Internal helpers shared by kernel drivers that have not moved onto
// kernels::BlockDriver (the weighted engines keep a bespoke loop). The
// run-loop plumbing that used to live here — root resolution, graph
// allocation for the unweighted kernels, metrics finalization — is now
// owned by BlockDriver (see block_driver.hpp). Not part of the public API.

#include <numeric>
#include <vector>

#include "gpusim/device.hpp"
#include "kernels/bc_state.hpp"

namespace hbc::kernels::detail {

/// Roots to process: the explicit list, or every vertex.
inline std::vector<graph::VertexId> resolve_roots(const graph::CSRGraph& g,
                                                  const RunConfig& config) {
  if (!config.roots.empty()) return config.roots;
  std::vector<graph::VertexId> roots(g.num_vertices());
  std::iota(roots.begin(), roots.end(), graph::VertexId{0});
  return roots;
}

/// Register the replicated graph arrays on the device ledger. Edge-
/// parallel kernels additionally keep the per-edge source lookup.
/// Charged via the storage policy's *decoded* sizes: uploading to the
/// simulated device always decompresses, so the ledger (and therefore
/// OOM behaviour and metrics) is identical across heap/mapped/compressed
/// backings of the same graph.
inline void allocate_graph(gpusim::Device& device, const graph::CSRGraph& g,
                           bool needs_edge_sources) {
  const auto& storage = *g.storage();
  auto& mem = device.memory();
  mem.allocate(storage.decoded_row_bytes(), "csr.row_offsets");
  mem.allocate(storage.decoded_adjacency_bytes(), "csr.col_indices");
  if (needs_edge_sources) {
    mem.allocate(storage.decoded_adjacency_bytes(), "csr.edge_sources");
  }
  mem.allocate(static_cast<std::uint64_t>(g.num_vertices()) * sizeof(double), "bc.global");
}

/// Shared BlockDriver functor for the Jia et al. level-check kernels
/// (vertex- and edge-parallel differ only in the per-level primitive).
/// Implemented in edge_parallel.cpp.
RunResult run_levelcheck_kernel(const graph::CSRGraph& g, const RunConfig& config,
                                Mode mode);

}  // namespace hbc::kernels::detail
