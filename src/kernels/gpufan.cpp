#include "kernels/block_driver.hpp"
#include "kernels/kernels.hpp"

namespace hbc::kernels {

using graph::CSRGraph;

// GPU-FAN (Shi & Zhang): fine-grained parallelism only. Every thread of
// every block cooperates on a single root at a time, so per-level
// synchronization is grid-wide (a kernel relaunch) rather than a block
// barrier, and there is exactly one set of local structures — including
// the O(n^2) predecessor list whose allocation is what kills this
// approach at scale (Figure 5's dotted lines). The driver consequently
// runs one logical "grid block" (num_blocks = 1, rounds span every device
// thread), which also means no host-thread parallelism: the model has no
// independent blocks to spread.
RunResult run_gpufan(const CSRGraph& g, const RunConfig& config) {
  DriverLayout layout;
  layout.label = "gpufan";
  layout.needs_edge_sources = true;
  layout.num_blocks = 1;
  // Throws gpusim::DeviceOutOfMemory when n^2 entries exceed capacity.
  layout.per_block.push_back(
      {BCWorkspace::gpufan_bytes(g.num_vertices()), "gpufan.locals+predecessor_n2"});
  BlockDriver driver(g, config, layout);

  const std::uint64_t width = config.device.device_threads();

  driver.run([&](BlockDriver::RootTask& task) {
    BCWorkspace& ws = task.ws;
    gpusim::BlockContext& ctx = task.ctx;
    ws.init_root(task.root, ctx);

    std::uint64_t frontier = 1;
    std::uint32_t depth = 0;
    {
      SimSpan stage(task.trace, ctx, "shortest-path", trace::kPhase);
      for (;; ++depth) {
        const std::uint64_t before = ctx.cycles();
        const BCWorkspace::LevelStats level =
            ws.ep_forward_level(ctx, depth, /*maintain_queue=*/false, width);
        ctx.charge_grid_sync();  // level boundary = kernel relaunch
        if (task.stats) {
          task.stats->iterations.push_back({depth, frontier, level.edge_frontier,
                                            ctx.cycles() - before, Mode::EdgeParallel});
        }
        trace_level(task.trace, ctx, depth, frontier, level.edge_frontier,
                    Mode::EdgeParallel, ctx.cycles() - before);
        if (level.discovered == 0) break;
        frontier = level.discovered;
      }
    }
    const std::uint32_t max_depth = depth;
    if (task.stats) task.stats->max_depth = max_depth;
    task.ep_levels += max_depth + 1;

    {
      SimSpan stage(task.trace, ctx, "dependency", trace::kPhase);
      for (std::uint32_t dep = max_depth; dep-- > 1;) {
        ws.ep_backward_level(ctx, dep, width);
        ctx.charge_grid_sync();
      }
    }

    ws.accumulate_bc(task.bc, task.root, /*use_queue=*/false, ctx);
  });

  return driver.finish();
}

}  // namespace hbc::kernels
