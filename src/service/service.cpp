#include "service/service.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "util/timer.hpp"

namespace hbc::service {

namespace {

using Clock = std::chrono::steady_clock;

std::string make_key(std::uint64_t fingerprint, const core::Options& options) {
  return fingerprint_prefix(fingerprint) + core::options_signature(options);
}

}  // namespace

const char* to_string(QueryStatus status) noexcept {
  switch (status) {
    case QueryStatus::Ok: return "ok";
    case QueryStatus::QueueFull: return "queue-full";
    case QueryStatus::DeadlineExceeded: return "deadline-exceeded";
    case QueryStatus::GraphNotFound: return "graph-not-found";
    case QueryStatus::ServiceStopped: return "service-stopped";
    case QueryStatus::Failed: return "failed";
  }
  return "?";
}

BcService::BcService(ServiceConfig config)
    : cfg_(std::move(config)),
      cache_(cfg_.cache_bytes),
      queue_(cfg_.admission),
      workers_(cfg_.workers != 0
                   ? cfg_.workers
                   : std::max<std::size_t>(1, std::thread::hardware_concurrency())),
      pool_(std::make_unique<util::ThreadPool>(workers_)) {
  for (std::size_t i = 0; i < workers_; ++i) {
    pool_->submit([this] { worker_loop(); });
  }
}

BcService::~BcService() { stop(); }

void BcService::load_graph(const std::string& id, graph::CSRGraph g) {
  load_graph(id, std::make_shared<const graph::CSRGraph>(std::move(g)));
}

void BcService::load_graph(const std::string& id,
                           std::shared_ptr<const graph::CSRGraph> g) {
  if (!g) throw std::invalid_argument("load_graph: null graph");
  GraphEntry entry{std::move(g), 0};
  entry.fingerprint = graph_fingerprint(*entry.graph);  // O(n+m), outside the lock
  std::lock_guard<std::mutex> lock(mu_);
  graphs_[id] = std::move(entry);
}

bool BcService::evict_graph(const std::string& id) {
  std::uint64_t fingerprint = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = graphs_.find(id);
    if (it == graphs_.end()) return false;
    fingerprint = it->second.fingerprint;
    graphs_.erase(it);
    // Another id registered over the same structure keeps the cache warm.
    for (const auto& [other_id, entry] : graphs_) {
      if (entry.fingerprint == fingerprint) return true;
    }
  }
  const std::string prefix = fingerprint_prefix(fingerprint);
  cache_.erase_if([&prefix](const std::string& key) {
    return key.compare(0, prefix.size(), prefix) == 0;
  });
  return true;
}

std::vector<std::string> BcService::graph_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(graphs_.size());
  for (const auto& [id, entry] : graphs_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::shared_ptr<const graph::CSRGraph> BcService::graph(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = graphs_.find(id);
  return it == graphs_.end() ? nullptr : it->second.graph;
}

Ticket BcService::ready_ticket(std::uint64_t id, Response response) {
  std::promise<Response> promise;
  Ticket ticket;
  ticket.id = id;
  ticket.cache_hit = response.from_cache;
  ticket.shed = response.shed;
  promise.set_value(std::move(response));
  ticket.future = promise.get_future().share();
  return ticket;
}

Ticket BcService::submit(Request request) {
  metrics_.on_submitted();
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const Clock::time_point submitted = Clock::now();
  util::Timer turnaround;

  std::shared_ptr<const graph::CSRGraph> g;
  std::uint64_t fingerprint = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      Response r;
      r.status = QueryStatus::ServiceStopped;
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    const auto it = graphs_.find(request.graph_id);
    if (it == graphs_.end()) {
      metrics_.on_graph_not_found();
      Response r;
      r.status = QueryStatus::GraphNotFound;
      r.error = "no graph registered as '" + request.graph_id + "'";
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    g = it->second.graph;
    fingerprint = it->second.fingerprint;

    std::string key = make_key(fingerprint, request.options);
    if (auto cached = cache_.get(key)) {
      Response r;
      r.status = QueryStatus::Ok;
      r.result = std::shared_ptr<const core::BCResult>(cached, &cached->result);
      r.from_cache = true;
      r.total_ms = turnaround.elapsed_ms();
      metrics_.on_cache_hit(r.total_ms);
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    if (const auto inflight = inflight_.find(key); inflight != inflight_.end()) {
      metrics_.on_coalesced();
      Ticket t;
      t.future = inflight->second->future;
      t.id = id;
      t.top_k = request.top_k;
      t.coalesced = true;
      t.shed = inflight->second->shed;
      return t;
    }
  }

  // Admission (blocking for Block policy) happens OUTSIDE mu_ so a waiting
  // submitter never wedges workers that need the lock to publish results.
  const Clock::time_point deadline = request.timeout.count() > 0
                                         ? submitted + request.timeout
                                         : Clock::time_point::max();
  const Admit admit = queue_.admit(request.options, deadline);
  switch (admit) {
    case Admit::RejectedFull: {
      metrics_.on_rejected_full();
      Response r;
      r.status = QueryStatus::QueueFull;
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    case Admit::RejectedDeadline: {
      metrics_.on_rejected_deadline();
      Response r;
      r.status = QueryStatus::DeadlineExceeded;
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    case Admit::RejectedClosed: {
      Response r;
      r.status = QueryStatus::ServiceStopped;
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    case Admit::Admitted:
    case Admit::Shed:
      break;
  }
  const bool shed = admit == Admit::Shed;
  if (shed) metrics_.on_shed();

  // The shed downgrade may have rewritten the options, so the key is
  // final only now; re-check cache and in-flight under the lock before
  // becoming the leader (also closes the submit/submit race above).
  const std::string key = make_key(fingerprint, request.options);
  std::shared_ptr<Inflight> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      queue_.cancel();
      Response r;
      r.status = QueryStatus::ServiceStopped;
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    if (auto cached = cache_.get(key)) {
      queue_.cancel();
      Response r;
      r.status = QueryStatus::Ok;
      r.result = std::shared_ptr<const core::BCResult>(cached, &cached->result);
      r.from_cache = true;
      r.shed = shed;
      r.total_ms = turnaround.elapsed_ms();
      metrics_.on_cache_hit(r.total_ms);
      auto t = ready_ticket(id, std::move(r));
      t.top_k = request.top_k;
      return t;
    }
    if (const auto inflight = inflight_.find(key); inflight != inflight_.end()) {
      queue_.cancel();
      metrics_.on_coalesced();
      Ticket t;
      t.future = inflight->second->future;
      t.id = id;
      t.top_k = request.top_k;
      t.coalesced = true;
      t.shed = inflight->second->shed;
      return t;
    }
    entry = std::make_shared<Inflight>();
    entry->future = entry->promise.get_future().share();
    entry->key = key;
    entry->shed = shed;
    inflight_[key] = entry;
    metrics_.on_cache_miss();

    // Push while still holding mu_: stop() flips stopped_ under the same
    // lock before draining, so a job is either visible to that drain or
    // the submit above already bailed with ServiceStopped — a leader can
    // never enqueue into a queue nobody will ever pop again.
    Job job;
    job.entry = entry;
    job.graph = std::move(g);
    job.options = std::move(request.options);
    job.submitted = submitted;
    job.deadline = deadline;
    queue_.push(std::move(job));
  }

  Ticket t;
  t.future = entry->future;
  t.id = id;
  t.top_k = request.top_k;
  t.shed = shed;
  return t;
}

Response BcService::wait(const Ticket& ticket) const {
  Response r = ticket.future.get();
  r.coalesced = ticket.coalesced;
  if (ticket.cache_hit) r.from_cache = true;
  if (ticket.top_k > 0 && r.result) {
    r.top = core::top_k(r.result->scores, ticket.top_k);
  }
  return r;
}

Response BcService::query(Request request) {
  const Ticket ticket = submit(std::move(request));
  return wait(ticket);
}

core::BCResult BcService::run_compute(const graph::CSRGraph& g, const core::Options& o) {
  // Apply the service's per-request thread budget to GPU-model runs. The
  // cache key was computed from the request's options at submit time —
  // that stays correct because options_signature excludes cpu_threads for
  // GPU-model strategies and BlockDriver results are thread-invariant.
  if (cfg_.compute_threads != 0 && core::uses_gpu_model(o.strategy) &&
      o.cpu_threads != cfg_.compute_threads) {
    core::Options budgeted = o;
    budgeted.cpu_threads = cfg_.compute_threads;
    return cfg_.compute_fn ? cfg_.compute_fn(g, budgeted) : core::compute(g, budgeted);
  }
  return cfg_.compute_fn ? cfg_.compute_fn(g, o) : core::compute(g, o);
}

void BcService::worker_loop() {
  for (;;) {
    std::optional<Job> job = queue_.pop();
    if (!job) return;
    const std::shared_ptr<Inflight>& entry = job->entry;

    Response resp;
    resp.shed = entry->shed;

    if (Clock::now() > job->deadline) {
      metrics_.on_deadline_dropped();
      resp.status = QueryStatus::DeadlineExceeded;
    } else {
      util::Timer timer;
      try {
        core::BCResult computed = run_compute(*job->graph, job->options);
        resp.compute_ms = timer.elapsed_ms();

        auto cached = std::make_shared<CachedResult>();
        cached->result = std::move(computed);
        cached->bytes = estimate_result_bytes(cached->result);
        cache_.put(entry->key, cached);

        resp.status = QueryStatus::Ok;
        resp.result = std::shared_ptr<const core::BCResult>(cached, &cached->result);
        resp.total_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - job->submitted)
                .count();
        metrics_.on_computed(resp.compute_ms, resp.total_ms);
      } catch (const std::exception& e) {
        metrics_.on_error();
        resp.status = QueryStatus::Failed;
        resp.error = e.what();
      } catch (...) {
        metrics_.on_error();
        resp.status = QueryStatus::Failed;
        resp.error = "unknown exception in compute";
      }
    }

    // Unregister before completing: once the promise is set the result is
    // in the cache (or failed), so later twins must go through the cache,
    // not attach to a dead entry.
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = inflight_.find(entry->key);
      if (it != inflight_.end() && it->second == entry) inflight_.erase(it);
    }
    entry->promise.set_value(std::move(resp));
  }
}

void BcService::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  queue_.close();
  pool_.reset();  // workers drain the queue, then join

  // A submitter that was admitted before close() may have pushed after the
  // workers drained; answer anything left so no future is abandoned.
  while (std::optional<Job> job = queue_.pop()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = inflight_.find(job->entry->key);
      if (it != inflight_.end() && it->second == job->entry) inflight_.erase(it);
    }
    Response r;
    r.status = QueryStatus::ServiceStopped;
    job->entry->promise.set_value(std::move(r));
  }
}

std::size_t BcService::worker_count() const noexcept { return workers_; }

MetricsSnapshot BcService::metrics() const {
  MetricsSnapshot s = metrics_.snapshot();
  s.cache_evictions = cache_.evictions();
  s.cache_entries = cache_.size();
  s.cache_bytes = cache_.bytes();
  s.cache_budget_bytes = cache_.budget_bytes();
  s.queue_depth = queue_.depth();
  s.queue_peak_depth = queue_.peak_depth();
  s.workers = workers_;
  return s;
}

}  // namespace hbc::service
