#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace hbc::graph::gen {

// R-MAT edge sampling (Chakrabarti et al.), the generator behind the
// Graph500 kron_g500 instances. Each edge picks one quadrant per scale
// level with probabilities (a, b, c, d). Vertex ids are left unpermuted:
// the paper's observation that kron graphs carry many isolated vertices
// (inflating TEPS, §V.D) emerges naturally.
CSRGraph kronecker(const KroneckerParams& params) {
  const double d = 1.0 - params.a - params.b - params.c;
  if (params.a < 0 || params.b < 0 || params.c < 0 || d < 0) {
    throw std::invalid_argument("kronecker: probabilities must be in [0,1] and sum <= 1");
  }
  const std::uint64_t n64 = std::uint64_t{1} << params.scale;
  const VertexId n = static_cast<VertexId>(n64);
  const std::uint64_t target_edges = static_cast<std::uint64_t>(params.edge_factor) * n64;

  util::Xoshiro256 rng(params.seed);
  GraphBuilder builder(n);

  for (std::uint64_t e = 0; e < target_edges; ++e) {
    std::uint64_t u = 0, v = 0;
    for (std::uint32_t level = 0; level < params.scale; ++level) {
      const double p = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (p < params.a) {
        // quadrant (0,0)
      } else if (p < params.a + params.b) {
        v |= 1;
      } else if (p < params.a + params.b + params.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    builder.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return builder.build();
}

}  // namespace hbc::graph::gen
