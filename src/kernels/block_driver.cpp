#include "kernels/block_driver.hpp"

#include <algorithm>
#include <numeric>
#include <thread>
#include <utility>

#include "util/thread_pool.hpp"

namespace hbc::kernels {

using graph::CSRGraph;
using graph::VertexId;

namespace {

std::vector<VertexId> resolve_roots(const CSRGraph& g, const RunConfig& config) {
  if (!config.roots.empty()) return config.roots;
  std::vector<VertexId> roots(g.num_vertices());
  std::iota(roots.begin(), roots.end(), VertexId{0});
  return roots;
}

}  // namespace

BlockDriver::BlockDriver(const CSRGraph& g, const RunConfig& config,
                         const DriverLayout& layout)
    : g_(&g), config_(&config), device_(config.device) {
  // Grid size precedence: a layout-forced count (GPU-FAN's grid mode) wins,
  // then an explicit RunConfig override (the distributed shard path), then
  // the device SM count.
  num_blocks_ = layout.num_blocks != 0   ? layout.num_blocks
                : config.grid_blocks != 0 ? config.grid_blocks
                                          : config.device.num_sms;
  num_blocks_ = std::max<std::uint32_t>(num_blocks_, 1);

  // Device-memory layout: the replicated graph arrays, then each block's
  // local structures — the same ledger order as the serial drivers, so
  // high-water marks (and OOM behaviour) are unchanged. Graph arrays are
  // charged at the storage policy's *decoded* sizes: the simulated upload
  // decompresses, so the ledger is identical across backings.
  auto& mem = device_.memory();
  mem.allocate(g.storage()->decoded_row_bytes(), "csr.row_offsets");
  mem.allocate(g.storage()->decoded_adjacency_bytes(), "csr.col_indices");
  if (layout.needs_edge_sources) {
    mem.allocate(g.storage()->decoded_adjacency_bytes(), "csr.edge_sources");
  }
  mem.allocate(static_cast<std::uint64_t>(g.num_vertices()) * sizeof(double),
               "bc.global");
  for (std::uint32_t b = 0; b < num_blocks_; ++b) {
    for (const PerBlockAllocation& alloc : layout.per_block) {
      mem.allocate(alloc.bytes, alloc.label);
    }
  }
  device_.begin_run(num_blocks_);

  roots_ = resolve_roots(g, config);

  workspaces_.reserve(num_blocks_);
  partial_bc_.reserve(num_blocks_);
  for (std::uint32_t b = 0; b < num_blocks_; ++b) {
    workspaces_.push_back(std::make_unique<BCWorkspace>(g));
    partial_bc_.emplace_back(g.num_vertices(), 0.0);
  }
  we_levels_.assign(num_blocks_, 0);
  ep_levels_.assign(num_blocks_, 0);
  if (config.collect_per_root_stats) per_root_.resize(roots_.size());
  if (config.collect_root_cycles) per_root_cycles_.assign(roots_.size(), 0);
  root_done_.assign(roots_.size(), 0);
  deferred_.resize(num_blocks_);
  block_reports_.resize(num_blocks_);

  // Attempt budget: a root gets max_root_attempts launches in total. The
  // last one is reserved for the serial recovery sweep (the "reassignment"
  // lane); the rest happen in-block, back to back.
  max_attempts_ = std::max<std::uint32_t>(config.max_root_attempts, 1);
  in_block_budget_ = std::max<std::uint32_t>(max_attempts_ - 1, 1);

  const std::size_t requested =
      config.cpu_threads != 0
          ? config.cpu_threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  host_threads_ = std::clamp<std::size_t>(requested, 1, num_blocks_);

  // Trace capture: one driver sink (the run span) plus one sink per block,
  // registered here, on the driver thread, in ascending block order — the
  // registration order is the export order, and block events are stamped
  // from the block's cycle ledger, so a capture is bitwise-identical at
  // every host-thread count. Note the args deliberately exclude
  // host_threads: it is the one knob allowed to differ between runs that
  // must produce identical traces.
  run_label_ = layout.label;
  if (trace::Tracer* tracer = config.tracer) {
    driver_sink_ = tracer->make_sink("driver", trace::kSimDevicePid, num_blocks_);
    block_sinks_.reserve(num_blocks_);
    for (std::uint32_t b = 0; b < num_blocks_; ++b) {
      block_sinks_.push_back(tracer->make_sink("block " + std::to_string(b),
                                               trace::kSimDevicePid, b));
      device_.set_block_trace(b, block_sinks_.back().get());
    }
    driver_sink_->begin(run_label_, trace::kRun, 0,
                        {{"blocks", num_blocks_},
                         {"roots", static_cast<std::uint64_t>(roots_.size())}});
  }
}

BlockDriver::~BlockDriver() = default;

std::uint64_t BlockDriver::sim_ns(std::uint64_t cycles) const noexcept {
  return static_cast<std::uint64_t>(
      device_.config().seconds_from_cycles(static_cast<double>(cycles)) * 1e9);
}

void BlockDriver::launch_root(std::uint32_t block, gpusim::BlockContext& ctx,
                              std::size_t i, std::uint32_t plan_attempt,
                              const RootFn& fn) {
  const auto root32 = static_cast<std::uint32_t>(roots_[i]);
  if (const gpusim::FaultPlan* plan = config_->fault_plan.get()) {
    // Launch-stage faults fail before any work is done or charged.
    if (const auto lf = plan->launch_fault(root32, plan_attempt)) {
      throw gpusim::DeviceFault(lf->kind, root32, block, lf->transient);
    }
    // Execution-stage faults trip from inside the charge paths once the
    // block ledger advances `after_cycles` past this point.
    if (const auto ef = plan->execution_fault(root32, plan_attempt)) {
      device_.arm_fault(block, ef->kind, root32, ef->transient, ef->after_cycles);
    }
  }
  RootTask task{*workspaces_[block],
                ctx,
                roots_[i],
                i,
                block,
                std::span<double>(partial_bc_[block]),
                we_levels_[block],
                ep_levels_[block],
                nullptr,
                ctx.trace()};
  if (config_->collect_per_root_stats) {
    // Reset the sink each launch so a retried root doesn't duplicate
    // iteration records from the aborted attempt.
    per_root_[i] = PerRootStats{};
    per_root_[i].root = roots_[i];
    task.stats = &per_root_[i];
  }
  const std::uint64_t root_start_cycles = ctx.cycles();
  try {
    // The launch span covers one attempt; SimSpan closes it during unwind
    // when a fault trips mid-kernel, so spans stay balanced in the trace.
    SimSpan launch(task.trace, ctx, "launch", trace::kRoot,
                   {{"root", std::uint64_t{root32}},
                    {"attempt", std::uint64_t{plan_attempt}}});
    fn(task);
  } catch (...) {
    // A tripped arm self-disarms; an untripped one must not leak into the
    // next root (or the phase-boundary charges).
    device_.disarm_fault(block);
    throw;
  }
  device_.disarm_fault(block);
  if (config_->collect_root_cycles) {
    // Cycles of the completing attempt; aborted attempts' cycles stay in
    // the block ledger (wasted device time) but not in the per-root view.
    per_root_cycles_[i] = ctx.cycles() - root_start_cycles;
  }
}

void BlockDriver::mark_completed(std::size_t i, gpusim::BlockContext& ctx) {
  root_done_[i] = 1;
  ++ctx.counters().roots_processed;
}

void BlockDriver::process_block(std::uint32_t block, std::size_t begin,
                                std::size_t end, const RootFn& fn) {
  gpusim::BlockContext ctx = device_.block(block);
  trace::Sink* sink = ctx.trace();
  gpusim::FaultReport& rep = block_reports_[block];
  const std::uint32_t epoch_base = config_->fault_retry_epoch * max_attempts_;
  SimSpan phase_span(sink, ctx, "phase", trace::kRun,
                     {{"first_root", static_cast<std::uint64_t>(begin)},
                      {"end_root", static_cast<std::uint64_t>(end)}});
  // This block owns every global index ≡ block (mod B) — the serial
  // round-robin deal, so the schedule is identical for any thread count.
  const std::size_t phase = begin % num_blocks_;
  std::size_t i = begin + (block + num_blocks_ - phase) % num_blocks_;
  for (; i < end; i += num_blocks_) {
    // Root boundary: the only cancellation point. An inert token is one
    // pointer test, so fault-free runs pay (almost) nothing.
    config_->cancel.check();
    SimSpan root_span(sink, ctx, "root", trace::kRoot,
                      {{"root", static_cast<std::uint64_t>(roots_[i])},
                       {"index", static_cast<std::uint64_t>(i)}});
    std::uint32_t attempt = 0;
    while (true) {
      try {
        launch_root(block, ctx, i, epoch_base + attempt, fn);
        mark_completed(i, ctx);
        break;
      } catch (const gpusim::DeviceFault& f) {
        ++rep.faults_injected;
        ++attempt;
        if (sink && sink->wants(trace::kFault)) {
          sink->instant("fault", trace::kFault, ctx.sim_ns(),
                        {{"kind", gpusim::to_string(f.kind())},
                         {"root", std::uint64_t{f.root()}},
                         {"transient", f.transient() ? std::uint64_t{1}
                                                     : std::uint64_t{0}}});
        }
        // Retry transient faults back to back while the in-block budget
        // lasts; park everything else for the phase-end recovery sweep
        // (persistent faults would fail identically here anyway).
        if (f.transient() && attempt < in_block_budget_) {
          ++rep.retries;
          if (sink && sink->wants(trace::kFault)) {
            sink->instant("retry", trace::kFault, ctx.sim_ns(),
                          {{"root", std::uint64_t{f.root()}},
                           {"attempt", std::uint64_t{attempt}}});
          }
          continue;
        }
        deferred_[block].push_back(
            DeferredRoot{i, attempt, f.kind(), f.transient()});
        if (sink && sink->wants(trace::kFault)) {
          sink->instant("deferred", trace::kFault, ctx.sim_ns(),
                        {{"root", std::uint64_t{f.root()}},
                         {"attempts", std::uint64_t{attempt}}});
        }
        break;
      }
    }
  }
}

void BlockDriver::run_phase(std::size_t count, const RootFn& fn) {
  const std::size_t begin = next_index_;
  const std::size_t end =
      count == npos ? roots_.size() : std::min(roots_.size(), begin + count);
  next_index_ = end;
  if (begin >= end) return;

  if (host_threads_ <= 1) {
    for (std::uint32_t b = 0; b < num_blocks_; ++b) {
      process_block(b, begin, end, fn);
    }
  } else {
    // One task per simulated block; blocks share no mutable state, so the
    // pool may interleave them freely. parallel_for blocks until all are
    // done — the phase barrier every strategy's serial loop had
    // implicitly. Pool tasks must not throw (the pool terminates), so
    // each block captures its exception and the driver thread rethrows
    // the lowest block's after the join — a deterministic choice.
    std::vector<std::exception_ptr> errors(num_blocks_);
    util::ThreadPool pool(host_threads_);
    pool.parallel_for(num_blocks_, [&](std::size_t b) {
      try {
        process_block(static_cast<std::uint32_t>(b), begin, end, fn);
      } catch (...) {
        errors[b] = std::current_exception();
      }
    });
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }
  recovery_sweep(fn);
}

void BlockDriver::recovery_sweep(const RootFn& fn) {
  // Merge the phase's per-block fault accounting in block order.
  for (std::uint32_t b = 0; b < num_blocks_; ++b) {
    report_ += block_reports_[b];
    block_reports_[b] = gpusim::FaultReport{};
  }
  std::vector<DeferredRoot> parked;
  for (std::uint32_t b = 0; b < num_blocks_; ++b) {
    parked.insert(parked.end(), deferred_[b].begin(), deferred_[b].end());
    deferred_[b].clear();
  }
  if (parked.empty()) return;
  // Serial, ascending-root-index order on the driver thread: deterministic
  // no matter which host thread deferred each root. Each rescue executes
  // with the root's OWNING block context and accumulates into that block's
  // partial vector — the right block, but after the block's other roots,
  // so a rescued run matches a clean one up to FP re-association (and is
  // bitwise-reproducible for the same plan at any thread count).
  std::sort(parked.begin(), parked.end(),
            [](const DeferredRoot& a, const DeferredRoot& b) {
              return a.index < b.index;
            });
  const std::uint32_t epoch_base = config_->fault_retry_epoch * max_attempts_;
  for (const DeferredRoot& d : parked) {
    config_->cancel.check();
    std::uint32_t attempt = d.attempts;
    gpusim::FaultKind last_kind = d.last_kind;
    bool last_transient = d.last_transient;
    bool completed = false;
    const auto block = static_cast<std::uint32_t>(d.index % num_blocks_);
    // The sweep runs on the driver thread after the phase barrier, so
    // writing the owning block's sink here is still single-writer; the
    // block ledger keeps growing, so timestamps stay monotonic per sink.
    gpusim::BlockContext ctx = device_.block(block);
    trace::Sink* sink = ctx.trace();
    SimSpan rescue_span(sink, ctx, "rescue", trace::kFault,
                        {{"root", static_cast<std::uint64_t>(roots_[d.index])},
                         {"prior_attempts", std::uint64_t{d.attempts}}});
    while (last_transient && attempt < max_attempts_) {
      ++report_.retries;
      try {
        launch_root(block, ctx, d.index, epoch_base + attempt, fn);
        mark_completed(d.index, ctx);
        ++report_.rescued_roots;
        completed = true;
        break;
      } catch (const gpusim::DeviceFault& f) {
        ++report_.faults_injected;
        ++attempt;
        last_kind = f.kind();
        last_transient = f.transient();
        if (sink && sink->wants(trace::kFault)) {
          sink->instant("fault", trace::kFault, ctx.sim_ns(),
                        {{"kind", gpusim::to_string(f.kind())},
                         {"root", std::uint64_t{f.root()}},
                         {"transient", f.transient() ? std::uint64_t{1}
                                                     : std::uint64_t{0}}});
        }
      }
    }
    if (sink && sink->wants(trace::kFault)) {
      if (completed) {
        sink->instant("rescued", trace::kFault, ctx.sim_ns(),
                      {{"root", static_cast<std::uint64_t>(roots_[d.index])}});
      } else {
        sink->instant("root-failed", trace::kFault, ctx.sim_ns(),
                      {{"root", static_cast<std::uint64_t>(roots_[d.index])},
                       {"kind", gpusim::to_string(last_kind)},
                       {"attempts", std::uint64_t{attempt}}});
      }
    }
    if (!completed) {
      report_.failed_roots.push_back(gpusim::RootFailure{
          static_cast<std::uint32_t>(roots_[d.index]), last_kind, attempt,
          last_transient});
    }
  }
  std::sort(report_.failed_roots.begin(), report_.failed_roots.end(),
            [](const gpusim::RootFailure& a, const gpusim::RootFailure& b) {
              return a.root < b.root;
            });
}

RunResult BlockDriver::finish() {
  RunResult result;
  result.bc.assign(g_->num_vertices(), 0.0);
  // Fixed ascending block order: the per-vertex sum is associated the same
  // way for every host-thread count, keeping scores bitwise-deterministic.
  for (std::uint32_t b = 0; b < num_blocks_; ++b) {
    const std::vector<double>& part = partial_bc_[b];
    for (std::size_t v = 0; v < part.size(); ++v) result.bc[v] += part[v];
    result.metrics.we_levels += we_levels_[b];
    result.metrics.ep_levels += ep_levels_[b];
  }
  if (config_->collect_per_root_stats) result.per_root = std::move(per_root_);
  if (config_->collect_root_cycles) {
    result.metrics.per_root_cycles = std::move(per_root_cycles_);
  }
  result.metrics.counters = device_.counters();
  result.metrics.elapsed_cycles = device_.elapsed_cycles();
  result.metrics.sim_seconds = device_.elapsed_seconds();
  result.metrics.wall_seconds = wall_.elapsed_seconds();
  result.metrics.device_memory_high_water = device_.memory().high_water_mark();
  if (driver_sink_) {
    // Run span ends when the slowest block does (device time semantics).
    driver_sink_->end(run_label_, trace::kRun, sim_ns(result.metrics.elapsed_cycles));
  }
  result.faults = std::move(report_);
  report_ = gpusim::FaultReport{};
  return result;
}

}  // namespace hbc::kernels
