#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace hbc::graph::gen {

// Road-network proxy: carve a randomized-DFS spanning tree through a grid
// (classic maze carving — every cell reachable, degree <= 4), then add a
// small fraction of the remaining grid edges as loops. The result matches
// the structural profile of luxembourg.osm: average degree ~2.1 and a
// diameter that dwarfs sqrt(n).
CSRGraph road(const RoadParams& params) {
  const double n_target = std::ldexp(1.0, static_cast<int>(params.scale));
  const std::uint32_t side =
      std::max<std::uint32_t>(2, static_cast<std::uint32_t>(std::floor(std::sqrt(n_target))));
  const VertexId n = static_cast<VertexId>(side) * side;
  util::Xoshiro256 rng(params.seed);
  GraphBuilder builder(n);

  auto id = [side](std::uint32_t row, std::uint32_t col) {
    return static_cast<VertexId>(row) * side + col;
  };

  // Iterative randomized DFS over grid cells.
  std::vector<bool> visited(n, false);
  std::vector<VertexId> stack;
  stack.push_back(0);
  visited[0] = true;
  constexpr int kDr[4] = {1, -1, 0, 0};
  constexpr int kDc[4] = {0, 0, 1, -1};
  while (!stack.empty()) {
    const VertexId v = stack.back();
    const std::uint32_t row = v / side;
    const std::uint32_t col = v % side;

    // Collect unvisited grid neighbours.
    VertexId candidates[4];
    int count = 0;
    for (int dir = 0; dir < 4; ++dir) {
      const std::int64_t r2 = static_cast<std::int64_t>(row) + kDr[dir];
      const std::int64_t c2 = static_cast<std::int64_t>(col) + kDc[dir];
      if (r2 < 0 || c2 < 0 || r2 >= side || c2 >= side) continue;
      const VertexId w = id(static_cast<std::uint32_t>(r2), static_cast<std::uint32_t>(c2));
      if (!visited[w]) candidates[count++] = w;
    }
    if (count == 0) {
      stack.pop_back();
      continue;
    }
    const VertexId w = candidates[rng.next_below(static_cast<std::uint64_t>(count))];
    visited[w] = true;
    builder.add_edge(v, w);
    stack.push_back(w);
  }

  // Sprinkle extra grid edges to create the occasional loop (junctions).
  for (std::uint32_t row = 0; row < side; ++row) {
    for (std::uint32_t col = 0; col < side; ++col) {
      if (col + 1 < side && rng.next_bool(params.extra_edge_fraction)) {
        builder.add_edge(id(row, col), id(row, col + 1));
      }
      if (row + 1 < side && rng.next_bool(params.extra_edge_fraction)) {
        builder.add_edge(id(row, col), id(row + 1, col));
      }
    }
  }
  return builder.build();
}

}  // namespace hbc::graph::gen
