#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace hbc::graph::gen {

namespace {
/// Largest grid side s with s*s <= 2^scale.
std::uint32_t grid_side(std::uint32_t scale) {
  const double n = std::ldexp(1.0, static_cast<int>(scale));
  auto side = static_cast<std::uint32_t>(std::floor(std::sqrt(n)));
  return std::max<std::uint32_t>(side, 2);
}
}  // namespace

// Triangulated grid: lattice edges plus one diagonal per cell, with the
// diagonal orientation drawn at random (the jitter). Interior degree is
// 6 on average — the signature of a planar Delaunay triangulation.
CSRGraph delaunay_mesh(const MeshParams& params) {
  const std::uint32_t side = grid_side(params.scale);
  const VertexId n = static_cast<VertexId>(side) * side;
  util::Xoshiro256 rng(params.seed);
  GraphBuilder builder(n);

  auto id = [side](std::uint32_t row, std::uint32_t col) {
    return static_cast<VertexId>(row) * side + col;
  };

  for (std::uint32_t row = 0; row < side; ++row) {
    for (std::uint32_t col = 0; col < side; ++col) {
      if (col + 1 < side) builder.add_edge(id(row, col), id(row, col + 1));
      if (row + 1 < side) builder.add_edge(id(row, col), id(row + 1, col));
      if (row + 1 < side && col + 1 < side) {
        if (rng.next_bool(0.5)) {
          builder.add_edge(id(row, col), id(row + 1, col + 1));
        } else {
          builder.add_edge(id(row, col + 1), id(row + 1, col));
        }
      }
    }
  }
  return builder.build();
}

// 2-D stencil mesh with configurable halo on a rows x cols strip whose
// aspect ratio mirrors the elongated af_shell9 sheet. halo=2 links each
// interior vertex to the 24 cells of its 5x5 neighbourhood, approximating
// the high-but-uniform degree of FEM meshes.
CSRGraph mesh2d(const Mesh2dParams& params) {
  const double n_target = std::ldexp(1.0, static_cast<int>(params.scale));
  const std::uint32_t aspect = std::max<std::uint32_t>(1, params.aspect);
  const std::uint32_t cols = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(std::floor(std::sqrt(n_target / aspect))));
  const std::uint32_t rows = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(std::floor(n_target / cols)));
  const VertexId n = static_cast<VertexId>(rows) * cols;
  const std::int64_t halo = params.halo;
  GraphBuilder builder(n);

  auto id = [cols](std::uint32_t row, std::uint32_t col) {
    return static_cast<VertexId>(row) * cols + col;
  };

  for (std::uint32_t row = 0; row < rows; ++row) {
    for (std::uint32_t col = 0; col < cols; ++col) {
      for (std::int64_t dr = 0; dr <= halo; ++dr) {
        for (std::int64_t dc = -halo; dc <= halo; ++dc) {
          if (dr == 0 && dc <= 0) continue;  // canonical direction only
          const std::int64_t r2 = row + dr;
          const std::int64_t c2 = col + dc;
          if (r2 < 0 || c2 < 0 || r2 >= rows || c2 >= cols) continue;
          builder.add_edge(id(row, col),
                           id(static_cast<std::uint32_t>(r2), static_cast<std::uint32_t>(c2)));
        }
      }
    }
  }
  return builder.build();
}

}  // namespace hbc::graph::gen
