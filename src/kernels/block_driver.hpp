#pragma once

// kernels::BlockDriver — the shared run loop behind every GPU-model BC
// strategy.
//
// The paper's coarse-grained design (Algorithm 1) gives each simulated
// thread block its own root and its own O(n) local workspace; blocks share
// nothing but the read-only graph and the global BC accumulator. A
// strategy therefore reduces to a *per-root functor* (forward stage +
// dependency stage over a BCWorkspace and BlockContext); everything else —
// root resolution, device-memory layout, root→block scheduling, workspace
// pooling, per-root stats/cycle collection, and metrics finalization — is
// identical across strategies and lives here.
//
// Because blocks are independent, the driver executes them on real host
// threads (util::ThreadPool), one task per block. Determinism is preserved
// by construction, for every thread count:
//
//   * roots are dealt round-robin: global root index i → block i mod B,
//     exactly the serial schedule, so each block processes the same roots
//     in the same order regardless of which host thread runs it;
//   * each block owns a private Counters/cycle ledger (gpusim::Device) and
//     a private partial BC vector; nothing mutable is shared;
//   * finish() reduces the partials and ledgers in fixed ascending block
//     order, so the floating-point association — hence the bit pattern of
//     every score — and the simulated-cycle totals are independent of the
//     host thread count. Threading changes wall_seconds only.
//
// Resilience (docs/resilience.md): when RunConfig carries a FaultPlan,
// each root launch may raise a gpusim::DeviceFault. The driver treats the
// root as the unit of recovery — a completed-root ledger records what is
// already accumulated, transient faults are retried in-block, and roots
// that exhaust their in-block budget are deferred to a serial recovery
// sweep at the end of the phase. In-block retries relaunch before the
// block moves on, so a run recovered in-block is bitwise-identical to a
// fault-free run. The sweep runs on the driver thread but charges the
// root's *owning* block context and accumulates into that block's partial
// vector: a rescued root's value lands on the right block, but AFTER the
// block's other roots, so sweep rescues equal the fault-free scores only
// up to floating-point re-association — while remaining bitwise-
// deterministic for a given plan at every host-thread count (the
// determinism the cache and the tests actually rely on). Roots that fail
// every attempt are reported in RunResult::faults instead of aborting.
// RunConfig::cancel is polled at every root boundary (including the
// sweep), so a deadline or stop() takes effect within one root.
//
// docs/driver.md walks through the block→thread mapping in detail.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "graph/csr.hpp"
#include "kernels/bc_state.hpp"
#include "util/timer.hpp"

namespace hbc::kernels {

/// One device-memory allocation replicated for every simulated block
/// (each block's local structures live in global memory on the ledger).
struct PerBlockAllocation {
  std::uint64_t bytes = 0;
  std::string label;
};

/// What a strategy asks the driver to lay out before the run starts.
struct DriverLayout {
  /// Strategy label for the trace's run span (must be a string literal or
  /// otherwise outlive the Tracer — event names are never copied).
  const char* label = "run";
  /// Also keep the per-edge source lookup on the device (edge-parallel
  /// scans need it).
  bool needs_edge_sources = false;
  /// Local structures allocated once per simulated block. Allocation may
  /// throw gpusim::DeviceOutOfMemory (GPU-FAN's O(n^2) cliff) from the
  /// driver constructor.
  std::vector<PerBlockAllocation> per_block;
  /// Simulated block count. 0 = one block per SM (the Jia et al. mapping
  /// the paper adopts); GPU-FAN overrides this to 1 grid-wide block.
  std::uint32_t num_blocks = 0;
};

class BlockDriver {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Everything a per-root functor may touch. All mutable references are
  /// private to the executing block, so the functor needs no locking.
  struct RootTask {
    BCWorkspace& ws;               // this block's workspace, reused per root
    gpusim::BlockContext& ctx;     // this block's cycle/counter ledger
    graph::VertexId root;          // the root to process
    std::size_t index;             // global root index (position in roots())
    std::uint32_t block_id;        // owning simulated block
    std::span<double> bc;          // this block's partial BC accumulator
    std::uint64_t& we_levels;      // block-local forward-level tallies
    std::uint64_t& ep_levels;
    /// Per-root stats sink; nullptr unless collect_per_root_stats is set.
    /// `root` and, by the functor, `max_depth`/`iterations` are filled.
    PerRootStats* stats;
    /// This block's trace sink (same as ctx.trace()); nullptr when tracing
    /// is off. Functors emit stage spans / level instants through it with
    /// simulated timestamps (SimSpan, ctx.sim_ns()).
    trace::Sink* trace;
  };

  using RootFn = std::function<void(RootTask&)>;

  /// Resolves roots, builds the device (graph arrays + per-block locals on
  /// the memory ledger, in layout order), sizes the per-block workspaces
  /// and partial BC vectors, and picks the host-thread count
  /// (clamp(config.cpu_threads or hardware concurrency, 1, num_blocks)).
  BlockDriver(const graph::CSRGraph& g, const RunConfig& config,
              const DriverLayout& layout);
  ~BlockDriver();

  BlockDriver(const BlockDriver&) = delete;
  BlockDriver& operator=(const BlockDriver&) = delete;

  std::uint32_t num_blocks() const noexcept { return num_blocks_; }
  std::size_t host_threads() const noexcept { return host_threads_; }
  std::span<const graph::VertexId> roots() const noexcept { return roots_; }
  /// Roots consumed by run()/run_phase() so far.
  std::size_t processed_roots() const noexcept { return next_index_; }
  /// The simulated device (phase-boundary charges, e.g. sampling's sort).
  /// Touch only between run phases — never while a phase is executing.
  gpusim::Device& device() noexcept { return device_; }

  /// Process the next `count` roots (npos = all remaining) with `fn`,
  /// executing blocks concurrently on the host threads. Returns when every
  /// root of the phase is done (host threads joined at the phase barrier)
  /// — including the recovery sweep for fault-deferred roots. Throws
  /// util::Cancelled if RunConfig::cancel fires (within one root boundary
  /// per block).
  void run_phase(std::size_t count, const RootFn& fn);

  /// Process every remaining root.
  void run(const RootFn& fn) { run_phase(npos, fn); }

  /// Completed-root ledger: true once root index `i` (position in
  /// roots()) has been accumulated into its block's partial BC vector.
  /// Call between phases only (worker threads write it during a phase).
  bool root_completed(std::size_t i) const { return root_done_.at(i) != 0; }
  /// Roots whose contribution is accumulated (= roots_processed counter).
  std::size_t completed_roots() const noexcept {
    return device_.counters().roots_processed;
  }
  /// Fault accounting so far (merged at phase boundaries).
  const gpusim::FaultReport& fault_report() const noexcept { return report_; }

  /// Reduce per-block partials in fixed block order and finalize metrics
  /// (counters, elapsed/sim/wall time, memory high-water, per-root data).
  RunResult finish();

 private:
  /// A root that exhausted its in-block attempts, parked for the sweep.
  struct DeferredRoot {
    std::size_t index;          // global root index
    std::uint32_t attempts;     // launches consumed so far
    gpusim::FaultKind last_kind;
    bool last_transient;
  };

  /// Simulated nanoseconds for a cycle count (trace timestamps).
  std::uint64_t sim_ns(std::uint64_t cycles) const noexcept;

  void process_block(std::uint32_t block, std::size_t begin, std::size_t end,
                     const RootFn& fn);
  /// One launch of root index `i` on `block`: inject/arm plan faults for
  /// `plan_attempt`, run `fn`, disarm. Throws gpusim::DeviceFault when the
  /// launch fails or an armed fault trips mid-kernel.
  void launch_root(std::uint32_t block, gpusim::BlockContext& ctx, std::size_t i,
                   std::uint32_t plan_attempt, const RootFn& fn);
  void mark_completed(std::size_t i, gpusim::BlockContext& ctx);
  /// Serially retry the phase's deferred roots in ascending root order,
  /// charging each root's owning block (run after the phase barrier).
  void recovery_sweep(const RootFn& fn);

  const graph::CSRGraph* g_;
  const RunConfig* config_;
  util::Timer wall_;
  gpusim::Device device_;
  std::uint32_t num_blocks_ = 1;
  std::size_t host_threads_ = 1;
  std::uint32_t max_attempts_ = 3;    // total launches per root
  std::uint32_t in_block_budget_ = 2; // launches before deferring to sweep
  std::vector<graph::VertexId> roots_;
  std::size_t next_index_ = 0;
  std::vector<std::unique_ptr<BCWorkspace>> workspaces_;  // one per block
  std::vector<std::vector<double>> partial_bc_;           // one per block
  std::vector<std::uint64_t> we_levels_;                  // one per block
  std::vector<std::uint64_t> ep_levels_;                  // one per block
  std::vector<PerRootStats> per_root_;          // root-indexed, if enabled
  std::vector<std::uint64_t> per_root_cycles_;  // root-indexed, if enabled
  std::vector<std::uint8_t> root_done_;         // root-indexed ledger
  std::vector<std::vector<DeferredRoot>> deferred_;     // one list per block
  std::vector<gpusim::FaultReport> block_reports_;      // one per block
  gpusim::FaultReport report_;  // merged in block order at phase end

  // Trace capture (all null/empty when RunConfig::tracer is null). The
  // driver sink carries the run span; per-block sinks are registered in
  // ascending block order so export order is deterministic.
  const char* run_label_ = "run";
  std::shared_ptr<trace::Sink> driver_sink_;
  std::vector<std::shared_ptr<trace::Sink>> block_sinks_;
};

}  // namespace hbc::kernels
