file(REMOVE_RECURSE
  "libhbc_kernels.a"
)
