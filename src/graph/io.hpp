#pragma once

// Readers for the file formats behind Table II's datasets so the real
// graphs can be dropped into the harness when available:
//   * METIS / DIMACS-10 ".graph" (af_shell9, delaunay, luxembourg, rgg…)
//   * Matrix Market coordinate pattern (UF Sparse Matrix Collection)
//   * SNAP whitespace edge lists with '#' comments (loc-gowalla, amazon)
// plus matching writers used by tests for round-trip verification.
//
// All readers produce symmetrized simple graphs (the paper treats every
// input as undirected) and tolerate isolated vertices — a limitation the
// paper calls out in the Jia et al. reference implementation.

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/csr.hpp"

namespace hbc::graph::io {

/// Thrown on malformed input with a line-number-bearing message.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Auto-detect by extension: .graph/.metis -> METIS, .mtx -> MatrixMarket,
/// anything else -> SNAP edge list.
CSRGraph read_auto(const std::string& path);

CSRGraph read_metis(std::istream& in);
CSRGraph read_metis_file(const std::string& path);

CSRGraph read_matrix_market(std::istream& in);
CSRGraph read_matrix_market_file(const std::string& path);

/// SNAP-style "u v" lines, 0- or 1-indexed with arbitrary (sparse) ids;
/// ids are remapped densely in first-seen order.
CSRGraph read_edge_list(std::istream& in);
CSRGraph read_edge_list_file(const std::string& path);

void write_metis(const CSRGraph& g, std::ostream& out);
void write_edge_list(const CSRGraph& g, std::ostream& out);

/// Coordinate pattern MatrixMarket; symmetric banner for undirected
/// graphs (lower-triangular entries only, per the format spec).
void write_matrix_market(const CSRGraph& g, std::ostream& out);

/// Binary CSR container (".hbc"): magic + version + counts followed by
/// the raw row-offset and column arrays (little-endian, as written).
/// Loading a multi-million-edge graph this way is an fread, not a parse —
/// the practical difference between seconds and minutes on the Table II
/// datasets. read_auto dispatches on the ".hbc" extension.
void write_binary(const CSRGraph& g, std::ostream& out);
CSRGraph read_binary(std::istream& in);
CSRGraph read_binary_file(const std::string& path);
void write_binary_file(const CSRGraph& g, const std::string& path);

/// How open_mapped treats the file's self-descriptions. The defaults
/// trust nothing: structure is validated and the embedded fingerprint is
/// recomputed from the mapped data and compared. Disable only for files
/// this process just wrote.
struct OpenOptions {
  bool validate = true;            ///< structural validation (rows/cols/stream)
  bool verify_fingerprint = true;  ///< recompute and compare to the header's
};

/// Write `g` as a v2 ".hbcg" container: 128-byte header (magic, version,
/// flags, counts, embedded structural fingerprint) followed by 64-byte-
/// aligned row-offset and adjacency sections. With `compress` the
/// adjacency is delta/varint coded (conventionally ".hbcgz") plus an aux
/// per-vertex byte-offset section. Layout table in docs/storage.md.
void save_binary_v2(const CSRGraph& g, const std::string& path,
                    bool compress = false);

/// mmap an ".hbcg"/".hbcgz" file and wrap it zero-copy: the returned
/// graph's arrays point straight into the page cache, so every process
/// opening the same file shares one physical copy. Corrupt or truncated
/// files throw storage::FormatError (typed, never UB).
CSRGraph open_mapped(const std::string& path, const OpenOptions& options = {});

}  // namespace hbc::graph::io
