#pragma once

// Shared plumbing for the reproduction benches: fixed-width table
// printing, environment-variable knobs, and the root-set conventions.
//
// Every bench accepts two environment variables so the default quick run
// (used by `for b in build/bench/*; do $b; done`) stays minutes-scale on
// a laptop while larger sweeps remain one knob away:
//   HBC_BENCH_SCALE  — generator scale (log2 #vertices), default per bench
//   HBC_BENCH_ROOTS  — BC roots processed per measurement
//
// Simulated times come from the gpusim cycle model; TEPS follows the
// paper's Equation 4 with the processed-roots extrapolation (the paper
// itself notes per-root time is uniform for single-component graphs).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace hbc::bench {

inline std::uint32_t env_u32(const char* name, std::uint32_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::uint32_t>(value);
}

/// k roots spread uniformly across the id space (stride n/k). Keeps every
/// method comparable on identical roots while avoiding the id-0 bias of
/// synthetic generators (vertex 0 is the seed hub in preferential-
/// attachment models).
inline std::vector<graph::VertexId> first_roots(const graph::CSRGraph& g,
                                                std::uint32_t k) {
  const std::uint32_t n = g.num_vertices();
  const std::uint32_t take = std::min<std::uint32_t>(k, n);
  std::vector<graph::VertexId> roots(take);
  for (std::uint32_t i = 0; i < take; ++i) {
    roots[i] = static_cast<graph::VertexId>(
        (static_cast<std::uint64_t>(i) * n) / take);
  }
  return roots;
}

/// Map a paper root id onto this graph: wrap modulo n, then advance to
/// the next non-isolated vertex (kron-style graphs have isolated ids the
/// paper's real datasets never used as roots).
inline graph::VertexId paper_root(const graph::CSRGraph& g, graph::VertexId id) {
  const graph::VertexId n = g.num_vertices();
  graph::VertexId root = id % n;
  for (graph::VertexId step = 0; step < n && g.degree(root) == 0; ++step) {
    root = (root + 1) % n;
  }
  return root;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

inline void print_header(const std::string& title, const std::string& subtitle = {}) {
  print_rule();
  std::printf("%s\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  print_rule();
}

}  // namespace hbc::bench
