#pragma once

// Read-only memory-mapped file with RAII lifetime.
//
// The storage layer maps on-disk .hbcg graphs with MAP_SHARED so every
// process serving the same file shares one physical copy through the OS
// page cache — the mechanism that lets an hbc-serve worker fleet hold a
// bigger-than-RAM graph without per-worker duplication (docs/storage.md).
//
// The mapping is immutable for its whole lifetime; storages hold the file
// via shared_ptr<const MmapFile> and hand out spans into it, so a graph
// snapshot can outlive the object that opened it.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace hbc::util {

class MmapFile {
 public:
  MmapFile() = default;

  /// Map `path` read-only. Throws std::runtime_error with a descriptive
  /// message if the file cannot be opened, stat'ed, or mapped. An empty
  /// file maps successfully with size() == 0 and data() == nullptr.
  explicit MmapFile(const std::string& path);

  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;

  bool valid() const noexcept { return data_ != nullptr || size_ == 0; }
  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }

  /// Advise the kernel that the mapping will be read sequentially /
  /// with random access. Best-effort: a failed or unsupported madvise
  /// is silently ignored (purely a readahead hint).
  void advise_sequential() const noexcept;
  void advise_random() const noexcept;

 private:
  void reset() noexcept;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
  bool heap_fallback_ = false;  // non-POSIX builds read into a heap buffer
};

}  // namespace hbc::util
