// Public facade: strategy dispatch, approximation scaling, normalization,
// top-k, and TEPS accounting.

#include <gtest/gtest.h>

#include <set>

#include "core/bc.hpp"
#include "core/report.hpp"
#include "core/teps.hpp"
#include "cpu/brandes.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace hbc;
using core::Options;
using core::Strategy;
using graph::CSRGraph;
using graph::VertexId;

TEST(Compute, AllStrategiesAgreeOnFigure1) {
  const CSRGraph g = graph::gen::figure1_graph();
  const auto oracle = cpu::brandes(g).bc;
  for (const auto strategy :
       {Strategy::CpuSerial, Strategy::CpuParallel, Strategy::CpuFineGrained,
        Strategy::VertexParallel,
        Strategy::EdgeParallel, Strategy::GpuFan, Strategy::WorkEfficient,
        Strategy::Hybrid, Strategy::Sampling, Strategy::DirectionOptimized}) {
    Options opt;
    opt.strategy = strategy;
    const auto r = core::compute(g, opt);
    ASSERT_EQ(r.scores.size(), oracle.size());
    for (std::size_t i = 0; i < oracle.size(); ++i) {
      EXPECT_NEAR(r.scores[i], oracle[i], 1e-9) << core::to_string(strategy);
    }
    EXPECT_EQ(r.roots_processed, g.num_vertices());
    EXPECT_FALSE(r.approximate);
    EXPECT_GT(r.teps, 0.0);
  }
}

TEST(Compute, HalveAndNormalizeOptions) {
  const CSRGraph g = graph::gen::figure1_graph();
  Options raw;
  raw.strategy = Strategy::CpuSerial;
  const auto base = core::compute(g, raw);

  Options halved = raw;
  halved.halve_undirected = true;
  const auto h = core::compute(g, halved);
  for (std::size_t i = 0; i < base.scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(h.scores[i], base.scores[i] / 2.0);
  }

  Options norm = raw;
  norm.normalize = true;
  const auto n = core::compute(g, norm);
  const double denom = (9.0 - 1.0) * (9.0 - 2.0);
  for (std::size_t i = 0; i < base.scores.size(); ++i) {
    EXPECT_NEAR(n.scores[i], base.scores[i] / denom, 1e-12);
  }
}

TEST(Compute, ApproximationIsScaledAndUnbiasedOnAverage) {
  const CSRGraph g = graph::gen::small_world({.num_vertices = 400, .k = 4, .seed = 2});
  Options exact_opt;
  exact_opt.strategy = Strategy::CpuSerial;
  const auto exact = core::compute(g, exact_opt);

  Options opt;
  opt.strategy = Strategy::WorkEfficient;
  opt.sample_roots = 100;

  // Average the estimator over several seeds; it should approach exact.
  std::vector<double> avg(g.num_vertices(), 0.0);
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    opt.seed = 1000 + t;
    const auto r = core::compute(g, opt);
    EXPECT_TRUE(r.approximate);
    EXPECT_EQ(r.roots_processed, 100u);
    for (std::size_t i = 0; i < avg.size(); ++i) avg[i] += r.scores[i] / trials;
  }
  double total_exact = 0, total_err = 0;
  for (std::size_t i = 0; i < avg.size(); ++i) {
    total_exact += exact.scores[i];
    total_err += std::abs(avg[i] - exact.scores[i]);
  }
  EXPECT_LT(total_err / total_exact, 0.25);
}

TEST(Compute, ExplicitRootsTakePrecedenceOverSampling) {
  const CSRGraph g = graph::gen::figure1_graph();
  Options opt;
  opt.strategy = Strategy::CpuSerial;
  opt.roots = {3};
  opt.sample_roots = 5;  // ignored because roots is set
  const auto r = core::compute(g, opt);
  EXPECT_EQ(r.roots_processed, 1u);
  // Explicit-root partial sums are NOT scaled.
  const auto partial = cpu::brandes(g, {.sources = {3}}).bc;
  for (std::size_t i = 0; i < partial.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.scores[i], partial[i]);
  }
}

TEST(SampleRoots, DistinctAndInRange) {
  const auto roots = core::sample_roots(100, 30, 7);
  ASSERT_EQ(roots.size(), 30u);
  std::set<VertexId> unique(roots.begin(), roots.end());
  EXPECT_EQ(unique.size(), roots.size());
  for (auto r : roots) EXPECT_LT(r, 100u);
}

TEST(SampleRoots, ClampsToN) {
  EXPECT_EQ(core::sample_roots(5, 100, 1).size(), 5u);
}

TEST(SampleRoots, DeterministicInSeed) {
  EXPECT_EQ(core::sample_roots(1000, 10, 3), core::sample_roots(1000, 10, 3));
  EXPECT_NE(core::sample_roots(1000, 10, 3), core::sample_roots(1000, 10, 4));
}

TEST(TopK, OrdersByScoreThenId) {
  const std::vector<double> scores{1.0, 5.0, 5.0, 0.0, 3.0};
  const auto top = core::top_k(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 1u);  // tie with 2, smaller id first
  EXPECT_EQ(top[1].first, 2u);
  EXPECT_EQ(top[2].first, 4u);
}

TEST(TopK, KLargerThanNReturnsAll) {
  const std::vector<double> scores{1.0, 2.0};
  EXPECT_EQ(core::top_k(scores, 10).size(), 2u);
}

TEST(Normalized, TinyGraphsAreZero) {
  const auto out = core::normalized(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.0);
}

TEST(StrategyNames, RoundTrip) {
  for (const auto s : {Strategy::CpuSerial, Strategy::CpuParallel,
                       Strategy::CpuFineGrained,
                       Strategy::VertexParallel, Strategy::EdgeParallel,
                       Strategy::GpuFan, Strategy::WorkEfficient, Strategy::Hybrid,
                       Strategy::Sampling, Strategy::DirectionOptimized}) {
    EXPECT_EQ(core::strategy_from_string(core::to_string(s)), s);
  }
  EXPECT_THROW(core::strategy_from_string("bogus"), std::invalid_argument);
  // Every alias spelling the doc comment promises.
  EXPECT_EQ(core::strategy_from_string("cpu"), Strategy::CpuSerial);
  EXPECT_EQ(core::strategy_from_string("cpu-fine"), Strategy::CpuFineGrained);
  EXPECT_EQ(core::strategy_from_string("vertex"), Strategy::VertexParallel);
  EXPECT_EQ(core::strategy_from_string("edge"), Strategy::EdgeParallel);
  EXPECT_EQ(core::strategy_from_string("gpufan"), Strategy::GpuFan);
  EXPECT_EQ(core::strategy_from_string("we"), Strategy::WorkEfficient);
  EXPECT_EQ(core::strategy_from_string("diropt"), Strategy::DirectionOptimized);
}

TEST(Teps, MatchesEquationFour) {
  const CSRGraph g = graph::gen::figure1_graph();  // m = 10, n = 9
  // Full run: TEPS = m*n/t.
  EXPECT_DOUBLE_EQ(core::teps_bc(g, 9, 2.0), 10.0 * 9 / 2.0);
  // Partial run extrapolates linearly in processed roots.
  EXPECT_DOUBLE_EQ(core::teps_bc(g, 3, 2.0), 10.0 * 3 / 2.0);
  EXPECT_EQ(core::teps_bc(g, 0, 2.0), 0.0);
  EXPECT_EQ(core::teps_bc(g, 9, 0.0), 0.0);
}

TEST(Teps, AdjustedScalesByConnectedFraction) {
  // 4 vertices, 1 isolated: adjustment factor 3/4 (§V.D's kron note).
  const CSRGraph g = graph::build_csr(4, std::vector<graph::Edge>{{0, 1}, {1, 2}});
  const double nominal = core::teps_bc(g, 4, 1.0);
  EXPECT_DOUBLE_EQ(core::teps_bc_adjusted(g, 4, 1.0), nominal * 0.75);
}

TEST(Teps, UnitHelpers) {
  EXPECT_DOUBLE_EQ(core::as_mteps(3.5e6), 3.5);
  EXPECT_DOUBLE_EQ(core::as_gteps(2.4e9), 2.4);
}

TEST(Compute, CpuParallelUsesRequestedThreads) {
  const CSRGraph g = graph::gen::scale_free({.num_vertices = 128, .attach = 2, .seed = 1});
  Options opt;
  opt.strategy = Strategy::CpuParallel;
  opt.cpu_threads = 3;
  const auto r = core::compute(g, opt);
  const auto oracle = cpu::brandes(g).bc;
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_NEAR(r.scores[i], oracle[i], 1e-9);
  }
}

TEST(Compute, KernelMetricsArePopulatedForGpuStrategies) {
  const CSRGraph g = graph::gen::small_world({.num_vertices = 256, .k = 3, .seed = 1});
  Options opt;
  opt.strategy = Strategy::Sampling;
  const auto r = core::compute(g, opt);
  EXPECT_GT(r.kernel_metrics.counters.edges_traversed, 0u);
  EXPECT_GT(r.kernel_metrics.elapsed_cycles, 0u);
  EXPECT_GT(r.time_seconds, 0.0);
}

TEST(Report, SummaryMentionsStrategyAndRoots) {
  const CSRGraph g = graph::gen::figure1_graph();
  Options opt;
  opt.strategy = Strategy::WorkEfficient;
  const auto r = core::compute(g, opt);
  const std::string s = core::format_summary(r);
  EXPECT_NE(s.find("work-efficient"), std::string::npos);
  EXPECT_NE(s.find("9 roots"), std::string::npos);
  EXPECT_NE(s.find("MTEPS"), std::string::npos);
}

TEST(Report, FullReportIncludesCountersForGpuModel) {
  const CSRGraph g = graph::gen::small_world({.num_vertices = 128, .k = 3, .seed = 1});
  Options opt;
  opt.strategy = Strategy::Sampling;
  const auto r = core::compute(g, opt);
  const std::string s = core::format_report(g, r, {.top_k = 3});
  EXPECT_NE(s.find("traversed"), std::string::npos);
  EXPECT_NE(s.find("device mem"), std::string::npos);
  EXPECT_NE(s.find("sampling   median depth"), std::string::npos);
  EXPECT_NE(s.find("top 3 vertices"), std::string::npos);
}

TEST(Report, CpuReportOmitsDeviceSections) {
  const CSRGraph g = graph::gen::figure1_graph();
  Options opt;
  opt.strategy = Strategy::CpuSerial;
  const auto r = core::compute(g, opt);
  const std::string s = core::format_report(g, r);
  EXPECT_EQ(s.find("device mem"), std::string::npos);
  EXPECT_NE(s.find("wall clock"), std::string::npos);
}

TEST(RootValidation, OutOfRangeRootThrows) {
  const CSRGraph g = graph::gen::figure1_graph();
  Options opt;
  opt.strategy = Strategy::CpuSerial;
  opt.roots = {0, g.num_vertices()};  // one past the end
  EXPECT_THROW(core::compute(g, opt), std::invalid_argument);
  opt.roots = {static_cast<VertexId>(g.num_vertices() + 100)};
  EXPECT_THROW(core::compute(g, opt), std::invalid_argument);
}

TEST(RootValidation, DuplicateRootThrows) {
  const CSRGraph g = graph::gen::figure1_graph();
  for (const Strategy s : {Strategy::CpuSerial, Strategy::WorkEfficient}) {
    Options opt;
    opt.strategy = s;
    opt.roots = {2, 5, 2};
    EXPECT_THROW(core::compute(g, opt), std::invalid_argument) << core::to_string(s);
  }
}

TEST(RootValidation, ValidSubsetStillComputes) {
  const CSRGraph g = graph::gen::figure1_graph();
  Options opt;
  opt.strategy = Strategy::WorkEfficient;
  opt.roots = {5, 0, 3};  // unordered but distinct and in range: fine
  const auto r = core::compute(g, opt);
  EXPECT_EQ(r.roots_processed, 3u);
  EXPECT_TRUE(r.approximate);
}

TEST(RootValidation, RejectionDoesNotCountAsInvocation) {
  const CSRGraph g = graph::gen::figure1_graph();
  const auto before = core::compute_invocations();
  Options opt;
  opt.roots = {0, 0};
  EXPECT_THROW(core::compute(g, opt), std::invalid_argument);
  EXPECT_EQ(core::compute_invocations(), before);
}

TEST(Strategy, UsesGpuModelPartition) {
  EXPECT_FALSE(core::uses_gpu_model(Strategy::CpuSerial));
  EXPECT_FALSE(core::uses_gpu_model(Strategy::CpuParallel));
  EXPECT_FALSE(core::uses_gpu_model(Strategy::CpuFineGrained));
  EXPECT_TRUE(core::uses_gpu_model(Strategy::VertexParallel));
  EXPECT_TRUE(core::uses_gpu_model(Strategy::WorkEfficient));
  EXPECT_TRUE(core::uses_gpu_model(Strategy::Hybrid));
  EXPECT_TRUE(core::uses_gpu_model(Strategy::Sampling));
  EXPECT_TRUE(core::uses_gpu_model(Strategy::DirectionOptimized));
}

TEST(Report, ApproximateFlagShown) {
  const CSRGraph g = graph::gen::small_world({.num_vertices = 128, .k = 3, .seed = 1});
  core::Options opt;
  opt.strategy = Strategy::WorkEfficient;
  opt.sample_roots = 16;
  const auto r = core::compute(g, opt);
  EXPECT_NE(core::format_summary(r).find("[approximate]"), std::string::npos);
  EXPECT_NE(core::format_report(g, r).find("(approximate)"), std::string::npos);
}

}  // namespace
