# Empty dependencies file for test_brandes.
# This may be replaced when dependencies are built.
