#include "kernels/detail.hpp"
#include "kernels/kernels.hpp"

namespace hbc::kernels {

using graph::CSRGraph;
using graph::VertexId;

// GPU-FAN (Shi & Zhang): fine-grained parallelism only. Every thread of
// every block cooperates on a single root at a time, so per-level
// synchronization is grid-wide (a kernel relaunch) rather than a block
// barrier, and there is exactly one set of local structures — including
// the O(n^2) predecessor list whose allocation is what kills this
// approach at scale (Figure 5's dotted lines).
RunResult run_gpufan(const CSRGraph& g, const RunConfig& config) {
  util::Timer wall;
  gpusim::Device device(config.device);

  detail::allocate_graph(device, g, /*needs_edge_sources=*/true);
  // Throws gpusim::DeviceOutOfMemory when n^2 entries exceed capacity.
  device.memory().allocate(BCWorkspace::gpufan_bytes(g.num_vertices()),
                           "gpufan.locals+predecessor_n2");

  // One logical "grid block": rounds span every device thread.
  device.begin_run(1);
  const std::uint64_t width = config.device.device_threads();

  const std::vector<VertexId> roots = detail::resolve_roots(g, config);
  RunResult result;
  result.bc.assign(g.num_vertices(), 0.0);

  BCWorkspace ws(g);
  for (const VertexId root : roots) {
    auto ctx = device.block(0);
    const std::uint64_t root_start_cycles = ctx.cycles();

    PerRootStats stats;
    stats.root = root;

    ws.init_root(root, ctx);

    std::uint64_t frontier = 1;
    std::uint32_t depth = 0;
    for (;; ++depth) {
      const std::uint64_t before = ctx.cycles();
      const BCWorkspace::LevelStats level =
          ws.ep_forward_level(ctx, depth, /*maintain_queue=*/false, width);
      ctx.charge_grid_sync();  // level boundary = kernel relaunch
      if (config.collect_per_root_stats) {
        stats.iterations.push_back({depth, frontier, level.edge_frontier,
                                    ctx.cycles() - before, Mode::EdgeParallel});
      }
      if (level.discovered == 0) break;
      frontier = level.discovered;
    }
    const std::uint32_t max_depth = depth;
    stats.max_depth = max_depth;
    result.metrics.ep_levels += max_depth + 1;

    for (std::uint32_t dep = max_depth; dep-- > 1;) {
      ws.ep_backward_level(ctx, dep, width);
      ctx.charge_grid_sync();
    }

    ws.accumulate_bc(result.bc, root, /*use_queue=*/false, ctx);
    ++device.counters().roots_processed;
    if (config.collect_root_cycles) {
      result.metrics.per_root_cycles.push_back(ctx.cycles() - root_start_cycles);
    }
    if (config.collect_per_root_stats) result.per_root.push_back(std::move(stats));
  }

  detail::finalize_metrics(result, device, wall);
  return result;
}

}  // namespace hbc::kernels
