#pragma once

// Public entry points for the six GPU-model BC kernels:
//
//   run_vertex_parallel  — Jia et al. vertex-parallel baseline (§III.A)
//   run_edge_parallel    — Jia et al. edge-parallel baseline (§III.A),
//                          the best prior GPU method the paper compares to
//   run_gpufan           — Shi & Zhang GPU-FAN model (§III.B): edge-
//                          parallel, fine-grained only, O(n^2) predecessor
//   run_work_efficient   — the paper's Algorithms 1–3
//   run_hybrid           — Algorithm 4 (per-iteration strategy switch)
//   run_sampling         — Algorithm 5 (on-line structure probe)
//   run_direction_optimized — extension: Beamer top-down/bottom-up
//                          switching applied to BC (related work, §VI)
//
// Every kernel produces a bitwise-deterministic BC vector identical (up to
// floating-point association) to cpu::brandes over the same root set.

#include "kernels/bc_state.hpp"

namespace hbc::kernels {

enum class Strategy {
  VertexParallel,
  EdgeParallel,
  GpuFan,
  WorkEfficient,
  Hybrid,
  Sampling,
  DirectionOptimized,
};

const char* to_string(Strategy strategy) noexcept;

RunResult run_vertex_parallel(const graph::CSRGraph& g, const RunConfig& config);
RunResult run_edge_parallel(const graph::CSRGraph& g, const RunConfig& config);
RunResult run_gpufan(const graph::CSRGraph& g, const RunConfig& config);
RunResult run_work_efficient(const graph::CSRGraph& g, const RunConfig& config);
RunResult run_hybrid(const graph::CSRGraph& g, const RunConfig& config);
RunResult run_sampling(const graph::CSRGraph& g, const RunConfig& config);
RunResult run_direction_optimized(const graph::CSRGraph& g, const RunConfig& config);

/// Dispatch by strategy enum.
RunResult run_strategy(Strategy strategy, const graph::CSRGraph& g,
                       const RunConfig& config);

}  // namespace hbc::kernels
