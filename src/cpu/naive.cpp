#include "cpu/naive.hpp"

#include "graph/types.hpp"

namespace hbc::cpu {

using graph::CSRGraph;
using graph::kInfDistance;
using graph::VertexId;

PathCounts count_paths(const CSRGraph& g, VertexId s) {
  const VertexId n = g.num_vertices();
  PathCounts r;
  r.distance.assign(n, kInfDistance);
  r.sigma.assign(n, 0.0);
  r.distance[s] = 0;
  r.sigma[s] = 1.0;

  std::vector<VertexId> queue{s};
  std::size_t head = 0;
  while (head < queue.size()) {
    const VertexId v = queue[head++];
    for (VertexId w : g.neighbors(v)) {
      if (r.distance[w] == kInfDistance) {
        r.distance[w] = r.distance[v] + 1;
        queue.push_back(w);
      }
      if (r.distance[w] == r.distance[v] + 1) {
        r.sigma[w] += r.sigma[v];
      }
    }
  }
  return r;
}

std::vector<double> naive_bc(const CSRGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<PathCounts> rows;
  rows.reserve(n);
  for (VertexId s = 0; s < n; ++s) rows.push_back(count_paths(g, s));

  std::vector<double> bc(n, 0.0);
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) {
      if (t == s) continue;
      const auto dst = rows[s].distance[t];
      if (dst == kInfDistance) continue;
      const double total = rows[s].sigma[t];
      for (VertexId v = 0; v < n; ++v) {
        if (v == s || v == t) continue;
        if (rows[s].distance[v] == kInfDistance) continue;
        if (rows[s].distance[v] + rows[v].distance[t] == dst) {
          bc[v] += rows[s].sigma[v] * rows[v].sigma[t] / total;
        }
      }
    }
  }
  return bc;
}

}  // namespace hbc::cpu
