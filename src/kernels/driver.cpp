#include "kernels/kernels.hpp"

#include <stdexcept>

namespace hbc::kernels {

const char* to_string(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::VertexParallel: return "vertex-parallel";
    case Strategy::EdgeParallel: return "edge-parallel";
    case Strategy::GpuFan: return "gpu-fan";
    case Strategy::WorkEfficient: return "work-efficient";
    case Strategy::Hybrid: return "hybrid";
    case Strategy::Sampling: return "sampling";
    case Strategy::DirectionOptimized: return "direction-optimized";
  }
  return "?";
}

RunResult run_strategy(Strategy strategy, const graph::CSRGraph& g,
                       const RunConfig& config) {
  switch (strategy) {
    case Strategy::VertexParallel: return run_vertex_parallel(g, config);
    case Strategy::EdgeParallel: return run_edge_parallel(g, config);
    case Strategy::GpuFan: return run_gpufan(g, config);
    case Strategy::WorkEfficient: return run_work_efficient(g, config);
    case Strategy::Hybrid: return run_hybrid(g, config);
    case Strategy::Sampling: return run_sampling(g, config);
    case Strategy::DirectionOptimized: return run_direction_optimized(g, config);
  }
  throw std::invalid_argument("unknown strategy");
}

}  // namespace hbc::kernels
