#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace hbc::graph::gen {

// Kumar et al. linear copying model: page v picks a random earlier
// "prototype" page; each of its out_links either copies the corresponding
// prototype link (prob 1 - random_p) or points at a uniform earlier page.
// Copying concentrates in-links on early pages (heavy-tailed hubs) while
// keeping local clusters — the qualitative shape of web crawls such as
// cnr-2000.
CSRGraph web_crawl(const WebCrawlParams& params) {
  const VertexId n = params.num_vertices;
  const std::uint32_t k = params.out_links;
  if (n < k + 2) {
    throw std::invalid_argument("web_crawl: need num_vertices > out_links + 1");
  }
  util::Xoshiro256 rng(params.seed);
  GraphBuilder builder(n);

  // links[v] holds v's out-link targets so later pages can copy them.
  std::vector<std::vector<VertexId>> links(n);

  // Bootstrap: first k+1 pages form a clique.
  for (VertexId u = 0; u <= k; ++u) {
    for (VertexId v = 0; v < u; ++v) {
      builder.add_edge(u, v);
      links[u].push_back(v);
    }
  }

  for (VertexId v = k + 1; v < n; ++v) {
    const VertexId prototype = static_cast<VertexId>(rng.next_below(v));
    links[v].reserve(k);
    for (std::uint32_t i = 0; i < k; ++i) {
      VertexId target;
      if (!links[prototype].empty() && i < links[prototype].size() &&
          !rng.next_bool(params.random_p)) {
        target = links[prototype][i];
      } else {
        target = static_cast<VertexId>(rng.next_below(v));
      }
      if (target == v) target = prototype;
      builder.add_edge(v, target);
      links[v].push_back(target);
    }
  }
  return builder.build();
}

}  // namespace hbc::graph::gen
