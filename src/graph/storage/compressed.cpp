#include "graph/storage/compressed.hpp"

#include <algorithm>
#include <string>

namespace hbc::graph::storage {

CompressedStorage::CompressedStorage(std::shared_ptr<const util::MmapFile> file,
                                     const FileHeader& header, bool validate)
    : Storage(header.undirected(), Residency::kCompressedMapped),
      file_(std::move(file)) {
  const std::uint8_t* base = file_->data();
  const auto n1 = static_cast<std::size_t>(header.num_vertices + 1);
  rows_ = {reinterpret_cast<const EdgeOffset*>(base + header.row_section), n1};
  byte_offsets_ = {reinterpret_cast<const EdgeOffset*>(base + header.aux_section), n1};
  encoded_ = {base + header.adj_section, static_cast<std::size_t>(header.adj_bytes)};
  m_ = static_cast<EdgeOffset>(header.num_edges);

  if (validate) validate_stream("hbcg '" + file_->path() + "'");
}

std::shared_ptr<const CompressedStorage> CompressedStorage::compress(
    std::span<const EdgeOffset> row_offsets, std::span<const VertexId> col_indices,
    bool undirected) {
  auto s = std::shared_ptr<CompressedStorage>(
      new CompressedStorage(undirected, Residency::kCompressedHeap));
  s->rows_store_.assign(row_offsets.begin(), row_offsets.end());
  const auto n = static_cast<VertexId>(
      row_offsets.empty() ? 0 : row_offsets.size() - 1);
  s->aux_store_.reserve(row_offsets.size());
  s->encoded_store_.reserve(col_indices.size());  // ~1 byte/edge on real graphs
  s->aux_store_.push_back(0);
  for (VertexId v = 0; v < n; ++v) {
    encode_adjacency(s->encoded_store_, v,
                     col_indices.subspan(row_offsets[v],
                                         row_offsets[v + 1] - row_offsets[v]));
    s->aux_store_.push_back(s->encoded_store_.size());
  }
  s->rows_ = s->rows_store_;
  s->byte_offsets_ = s->aux_store_;
  s->encoded_ = s->encoded_store_;
  s->m_ = static_cast<EdgeOffset>(col_indices.size());
  return s;
}

void CompressedStorage::validate_stream(const std::string& context) const {
  const auto fail = [&](const std::string& what) -> void {
    throw FormatError(context + ": " + what);
  };
  if (rows_.empty()) fail("row_offsets must have at least one entry");
  if (rows_.front() != 0) fail("row_offsets must start at 0");
  if (rows_.back() != m_) fail("row_offsets must end at the edge count");
  if (!std::is_sorted(rows_.begin(), rows_.end())) {
    fail("row_offsets must be non-decreasing");
  }
  if (byte_offsets_.size() != rows_.size()) fail("aux section size mismatch");
  if (byte_offsets_.front() != 0) fail("adjacency byte offsets must start at 0");
  if (byte_offsets_.back() != encoded_.size()) {
    fail("adjacency byte offsets must end at the encoded size");
  }
  if (!std::is_sorted(byte_offsets_.begin(), byte_offsets_.end())) {
    fail("adjacency byte offsets must be non-decreasing");
  }

  const VertexId n = num_vertices();
  std::vector<VertexId> scratch;
  for (VertexId v = 0; v < n; ++v) {
    const EdgeOffset deg = degree(v);
    scratch.resize(static_cast<std::size_t>(deg));
    const std::uint8_t* begin = encoded_.data() + byte_offsets_[v];
    const std::uint8_t* end = encoded_.data() + byte_offsets_[v + 1];
    const std::uint8_t* got =
        decode_adjacency(begin, end, v, deg, n, scratch.data());
    if (got == nullptr) {
      fail("vertex " + std::to_string(v) +
           ": truncated, overlong, or out-of-range neighbor encoding");
    }
    if (got != end) {
      fail("vertex " + std::to_string(v) + ": trailing bytes after neighbor list");
    }
  }
}

std::span<const VertexId> CompressedStorage::col_indices() const {
  std::call_once(materialize_once_, [this] {
    materialized_cols_.resize(static_cast<std::size_t>(m_));
    const VertexId n = num_vertices();
    for (VertexId v = 0; v < n; ++v) {
      VertexId* out = materialized_cols_.data() + rows_[v];
      for (const VertexId u : neighbors(v)) *out++ = u;
    }
    materialized_bytes_.store(materialized_cols_.size() * sizeof(VertexId),
                              std::memory_order_release);
  });
  return materialized_cols_;
}

std::size_t CompressedStorage::resident_bytes() const noexcept {
  return rows_store_.size() * sizeof(EdgeOffset) +
         aux_store_.size() * sizeof(EdgeOffset) + encoded_store_.size() +
         edge_sources_resident_bytes() +
         materialized_bytes_.load(std::memory_order_acquire);
}

std::uint64_t CompressedStorage::compute_fingerprint() const {
  // Hash the *decoded* neighbor stream in storage order so the value is
  // byte-identical to hashing a raw backing's column array.
  std::uint64_t h = fingerprint_prefix();
  const VertexId n = num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : neighbors(v)) {
      fnv_mix(h, &u, sizeof(u));
    }
  }
  return h;
}

}  // namespace hbc::graph::storage
