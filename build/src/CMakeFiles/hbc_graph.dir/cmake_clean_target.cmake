file(REMOVE_RECURSE
  "libhbc_graph.a"
)
