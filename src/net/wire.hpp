#pragma once

// hbc::net wire protocol — the length-prefixed, versioned binary frame
// codec spoken between the coordinator and its workers (docs/distributed.md
// has the full frame-layout table and message walkthrough).
//
// Every frame is a fixed 20-byte little-endian header followed by a typed
// payload:
//
//   offset  size  field
//   0       4     magic        "HBCN" (0x48 0x42 0x43 0x4E on the wire)
//   4       2     version      kProtocolVersion; mismatch is a typed error
//   6       2     type         MsgType; unknown values are a typed error
//   8       8     request_id   propagated end-to-end so per-process trace
//                              captures stitch into one timeline
//   16      4     payload_len  <= kMaxPayload (oversize is a typed error)
//
// Decoding is defensive by construction: extract_frame never reads past
// the supplied buffer (NeedMore for incomplete input), every payload field
// read is bounds-checked, array lengths are validated against the bytes
// actually present before any allocation, and enum fields are range-checked
// (BadValue). Malformed input yields a DecodeStatus — never an exception,
// never an out-of-bounds read (tests/test_net_codec.cpp fuzzes this under
// ASan in CI).
//
// Doubles travel as raw IEEE-754 bit patterns (u64), so a partial BC
// vector arrives at the coordinator bit-exact — the property the fixed-
// order distributed reduction depends on.

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace hbc::net::wire {

/// One edge mutation on the wire (mirrors dyn::EdgeUpdate).
struct WireUpdate {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  std::uint8_t insert = 1;
};

// Bounds-checked little-endian primitives shared by the frame codec and
// the coordinator's snapshot manifest (net/snapshot.cpp). The writer never
// fails; the reader records the first out-of-bounds access and turns every
// later read into a no-op, so decoders can read a whole message straight
// through and check ok() once.

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v) {
    out_->push_back(static_cast<std::uint8_t>(v));
    out_->push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_->insert(out_->end(), s.begin(), s.end());
  }
  void u32s(const std::vector<std::uint32_t>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (std::uint32_t x : v) u32(x);
  }
  void f64s(const std::vector<double>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (double x : v) f64(x);
  }
  void updates(const std::vector<WireUpdate>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const WireUpdate& e : v) {
      u32(e.u);
      u32(e.v);
      u8(e.insert);
    }
  }

 private:
  std::vector<std::uint8_t>* out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> in) : in_(in) {}

  bool ok() const noexcept { return !failed_; }
  bool at_end() const noexcept { return pos_ == in_.size(); }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return in_[pos_++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(in_[pos_] | (in_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint32_t len = u32();
    // Validate against the bytes actually present BEFORE allocating, so a
    // hostile length prefix cannot demand memory the frame doesn't carry.
    if (!need(len)) return {};
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  std::vector<std::uint32_t> u32s() {
    const std::uint32_t count = u32();
    if (!need(static_cast<std::size_t>(count) * 4)) return {};
    std::vector<std::uint32_t> v(count);
    for (std::uint32_t i = 0; i < count; ++i) v[i] = u32();
    return v;
  }
  std::vector<double> f64s() {
    const std::uint32_t count = u32();
    if (!need(static_cast<std::size_t>(count) * 8)) return {};
    std::vector<double> v(count);
    for (std::uint32_t i = 0; i < count; ++i) v[i] = f64();
    return v;
  }
  std::vector<WireUpdate> updates() {
    const std::uint32_t count = u32();
    if (!need(static_cast<std::size_t>(count) * 9)) return {};
    std::vector<WireUpdate> v(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      v[i].u = u32();
      v[i].v = u32();
      v[i].insert = u8();
    }
    return v;
  }

 private:
  bool need(std::size_t n) {
    if (failed_ || n > in_.size() - pos_) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

inline constexpr std::uint32_t kMagic = 0x4E434248u;  // "HBCN" little-endian
/// v1: the original fleet protocol. v2 appends accuracy-budget fields to
/// SubmitShard and estimate fields to ShardResult (required in a v2
/// frame, forbidden in a v1 frame — the header's version byte decides);
/// a v1 frame decodes under v2 with the fields at their defaults, so
/// peers negotiate min(theirs, ours) at Hello and the coordinator keeps
/// v1 workers on exact-only queries.
inline constexpr std::uint16_t kProtocolVersion = 2;
inline constexpr std::uint16_t kMinProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 20;
/// Payload cap: a hostile length prefix can demand at most 64 MiB.
inline constexpr std::uint32_t kMaxPayload = 1u << 26;

enum class MsgType : std::uint16_t {
  Hello = 1,         // worker -> coordinator: join the fleet
  HelloAck = 2,      // coordinator -> worker: slot assignment
  LoadGraph = 3,     // coordinator -> worker: load a named graph
  GraphLoaded = 4,   // worker -> coordinator: load outcome + fingerprint
  SubmitShard = 5,   // coordinator -> worker: compute a root shard / query
  ShardResult = 6,   // worker -> coordinator: partial or final BC vector
  Heartbeat = 7,     // worker -> coordinator: liveness + load
  HeartbeatAck = 8,  // coordinator -> worker
  Mutate = 9,        // coordinator -> worker: apply an edge-update batch
  MutateDone = 10,   // worker -> coordinator: new fingerprint
  Drain = 11,        // coordinator -> worker: finish in-flight, then leave
  Goodbye = 12,      // worker -> coordinator: clean departure
  Error = 13,        // either direction: request-scoped failure
  Quarantine = 14,   // coordinator -> worker: health-state transition notice
};

const char* to_string(MsgType type) noexcept;

enum class DecodeStatus : std::uint8_t {
  Ok = 0,
  NeedMore,       // incomplete frame — not an error, wait for more bytes
  BadMagic,       // stream corruption / not our protocol
  BadVersion,     // peer speaks a different protocol revision
  UnknownType,    // type field outside the MsgType range
  Oversize,       // length prefix exceeds kMaxPayload
  Truncated,      // payload ended mid-field
  TrailingBytes,  // payload longer than the message it encodes
  BadValue,       // enum/range-checked field out of domain
};

const char* to_string(DecodeStatus status) noexcept;

/// A decoded frame: type + request id + raw payload bytes. `version` is
/// the header version the peer stamped (1..kProtocolVersion) — versioned
/// decoders use it to decide whether appended fields may be present.
struct Frame {
  MsgType type = MsgType::Error;
  std::uint16_t version = kProtocolVersion;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

/// Append one whole frame (header + payload) to `out`.
void append_frame(std::vector<std::uint8_t>& out, MsgType type,
                  std::uint64_t request_id, std::span<const std::uint8_t> payload,
                  std::uint16_t version = kProtocolVersion);

/// Try to extract one frame from the head of `in`. Ok sets `frame` and
/// `consumed` (header + payload bytes to drop from the stream); NeedMore
/// means the buffer holds a valid prefix of a frame; every other status is
/// a protocol error at the head of the stream (consumed is 0 — the caller
/// should poison the connection, not resynchronize).
DecodeStatus extract_frame(std::span<const std::uint8_t> in, Frame& frame,
                           std::size_t& consumed);

// --- messages ------------------------------------------------------------

struct HelloMsg {
  std::uint16_t protocol = kProtocolVersion;
  std::string worker_name;
  /// Concurrent shard computations the worker is provisioned for
  /// (its service worker-pool size) — a load-balance hint.
  std::uint32_t shard_slots = 1;
};

struct HelloAckMsg {
  std::uint32_t worker_slot = 0;
  std::string coordinator_name;
};

struct LoadGraphMsg {
  std::string graph_id;
  /// How the worker materializes the graph: a path or "gen:family:scale
  /// [:seed]" spec, resolved by WorkerConfig::graph_loader. May be empty
  /// when the deployment pre-arranges graphs out of band.
  std::string spec;
  /// Expected fingerprint of the freshly loaded (epoch-0) graph; the
  /// worker refuses on mismatch, so coordinator and worker can never
  /// disagree on the cross-process cache key.
  std::uint64_t fingerprint = 0;
  /// Update history to replay after loading (late-joining worker catching
  /// up with a mutated graph). Empty for never-mutated graphs.
  std::vector<WireUpdate> updates;
  /// Expected fingerprint after replaying `updates` (== fingerprint when
  /// there are none).
  std::uint64_t fingerprint_after = 0;
};

struct GraphLoadedMsg {
  std::string graph_id;
  std::uint8_t ok = 1;
  std::uint64_t fingerprint = 0;  // actual fingerprint after any replay
  std::string error;
};

/// Shard execution mode.
enum class ShardMode : std::uint8_t {
  /// Compute the RAW per-block partial BC vector for the given roots as a
  /// single simulated block (grid_blocks=1): no sampling scale-up, no
  /// halving, no normalization — the coordinator folds partials in block
  /// order and finalizes, reproducing a standalone run bit for bit.
  Partial = 0,
  /// Run the whole query on one worker with full core::compute semantics
  /// (CPU engines and the sampling kernel, whose probe phase depends on
  /// the complete root list, are not block-shardable).
  Whole = 1,
};

struct SubmitShardMsg {
  std::string graph_id;
  std::uint64_t fingerprint = 0;  // expected current graph fingerprint
  std::uint32_t shard_index = 0;  // block id in the standalone grid
  ShardMode mode = ShardMode::Partial;
  std::uint8_t strategy = 0;  // core::Strategy, range-checked on decode
  std::uint8_t halve_undirected = 0;  // Whole mode only
  std::uint8_t normalize = 0;         // Whole mode only
  std::uint32_t grid_blocks = 0;      // worker-side grid override (1 = Partial)
  std::uint32_t sample_roots = 0;     // Whole mode only
  std::uint64_t seed = 0;
  std::uint32_t cpu_threads = 0;
  std::uint32_t max_root_attempts = 3;
  std::uint32_t device_num_sms = 0;  // 0 = worker default device
  std::uint32_t hybrid_alpha = 0;
  std::uint32_t hybrid_beta = 0;
  std::uint32_t sampling_n_samps = 0;
  double sampling_gamma = 0.0;
  std::uint32_t sampling_min_frontier = 0;
  std::uint32_t deadline_ms = 0;  // remaining budget; 0 = none
  /// Partial: exactly this shard's roots (ascending standalone order).
  /// Whole: the query's explicit roots (may be empty = all / sampled).
  std::vector<graph::VertexId> roots;

  // --- v2 append: accuracy budget (absent on v1 frames; decode leaves the
  // defaults, i.e. an inactive budget = exact query). Whole mode only.
  std::uint8_t has_budget = 0;
  double accuracy_target = 0.0;  // must be finite, in [0, 1]
  std::uint32_t budget_max_roots = 0;
  std::uint8_t allow_refinement = 0;
};

struct ShardResultMsg {
  std::uint32_t shard_index = 0;
  std::uint8_t ok = 1;
  /// Whole mode: the worker's service degraded the result (substituted
  /// strategy / partial roots). Partial-mode shards are never accepted
  /// degraded — the coordinator retries them instead.
  std::uint8_t degraded = 0;
  std::string error;
  std::uint64_t roots_processed = 0;
  double compute_ms = 0.0;
  /// Raw partial (Partial) or finalized (Whole) scores, bit-exact.
  std::vector<double> scores;

  // --- v2 append: what a budgeted (Whole) query actually delivered
  // (mirrors service::Estimate; absent on v1 frames and exact results).
  std::uint8_t has_estimate = 0;
  std::uint64_t est_roots_used = 0;
  double est_stderr = 0.0;
  std::uint32_t est_rung = 0;
  std::uint8_t est_refining = 0;
};

struct HeartbeatMsg {
  std::uint64_t seq = 0;
  std::uint32_t inflight = 0;
};

struct HeartbeatAckMsg {
  std::uint64_t seq = 0;
};

struct MutateMsg {
  std::string graph_id;
  std::vector<WireUpdate> updates;
  /// Fingerprint the coordinator observed after applying the batch
  /// locally; the worker's MutateDone must agree.
  std::uint64_t fingerprint_after = 0;
};

struct MutateDoneMsg {
  std::string graph_id;
  std::uint8_t ok = 1;
  std::uint64_t fingerprint = 0;
  std::string error;
};

struct DrainMsg {};

struct GoodbyeMsg {
  std::string reason;
};

struct ErrorMsg {
  std::uint32_t code = 0;  // service::QueryStatus value when request-scoped
  std::string message;
};

/// Worker liveness as the coordinator's failure detector sees it
/// (net::Coordinator; docs/resilience.md has the state machine).
enum class HealthState : std::uint8_t {
  Healthy = 0,
  /// Missed the heartbeat deadline: dispatched shards were proactively
  /// reassigned, no new work until it proves itself.
  Quarantined = 1,
  /// Heard from again after quarantine; earning readmission.
  Probation = 2,
};

const char* to_string(HealthState state) noexcept;

/// Coordinator -> worker: your detector state changed (informational —
/// the worker notes it; the coordinator's dispatch gate is authoritative).
struct QuarantineMsg {
  /// The worker's new state. `Healthy` here means readmitted.
  HealthState state = HealthState::Quarantined;
  std::string reason;
};

// Each encode_* returns a complete frame (header + payload) ready to queue
// on a connection; each decode_* validates and fills the message from a
// frame of the matching type (BadValue if the frame type disagrees).

std::vector<std::uint8_t> encode(const HelloMsg& m, std::uint64_t request_id);
std::vector<std::uint8_t> encode(const HelloAckMsg& m, std::uint64_t request_id);
std::vector<std::uint8_t> encode(const LoadGraphMsg& m, std::uint64_t request_id);
std::vector<std::uint8_t> encode(const GraphLoadedMsg& m, std::uint64_t request_id);
/// Versioned encodes: at version 1 the v2-appended fields are dropped
/// from the wire image (the budget/estimate simply does not travel —
/// callers negotiate down before dispatching budgeted work). Default is
/// the current protocol.
std::vector<std::uint8_t> encode(const SubmitShardMsg& m, std::uint64_t request_id,
                                 std::uint16_t version = kProtocolVersion);
std::vector<std::uint8_t> encode(const ShardResultMsg& m, std::uint64_t request_id,
                                 std::uint16_t version = kProtocolVersion);
std::vector<std::uint8_t> encode(const HeartbeatMsg& m, std::uint64_t request_id);
std::vector<std::uint8_t> encode(const HeartbeatAckMsg& m, std::uint64_t request_id);
std::vector<std::uint8_t> encode(const MutateMsg& m, std::uint64_t request_id);
std::vector<std::uint8_t> encode(const MutateDoneMsg& m, std::uint64_t request_id);
std::vector<std::uint8_t> encode(const DrainMsg& m, std::uint64_t request_id);
std::vector<std::uint8_t> encode(const GoodbyeMsg& m, std::uint64_t request_id);
std::vector<std::uint8_t> encode(const ErrorMsg& m, std::uint64_t request_id);
std::vector<std::uint8_t> encode(const QuarantineMsg& m, std::uint64_t request_id);

DecodeStatus decode(const Frame& f, HelloMsg& out);
DecodeStatus decode(const Frame& f, HelloAckMsg& out);
DecodeStatus decode(const Frame& f, LoadGraphMsg& out);
DecodeStatus decode(const Frame& f, GraphLoadedMsg& out);
DecodeStatus decode(const Frame& f, SubmitShardMsg& out);
DecodeStatus decode(const Frame& f, ShardResultMsg& out);
DecodeStatus decode(const Frame& f, HeartbeatMsg& out);
DecodeStatus decode(const Frame& f, HeartbeatAckMsg& out);
DecodeStatus decode(const Frame& f, MutateMsg& out);
DecodeStatus decode(const Frame& f, MutateDoneMsg& out);
DecodeStatus decode(const Frame& f, DrainMsg& out);
DecodeStatus decode(const Frame& f, GoodbyeMsg& out);
DecodeStatus decode(const Frame& f, ErrorMsg& out);
DecodeStatus decode(const Frame& f, QuarantineMsg& out);

}  // namespace hbc::net::wire
