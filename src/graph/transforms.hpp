#pragma once

// Graph preprocessing transforms used before BC runs on real datasets:
//
//   * largest_component — restrict to the biggest connected component
//     (the paper's TEPS discussion in §V.D revolves around graphs whose
//     vertices "mostly belong to one large connected component");
//   * bfs_relabel — renumber vertices in BFS visit order, improving the
//     locality of frontier-driven access (a standard trick for the
//     scattered reads the work-efficient kernel performs);
//   * degree_sort_relabel — renumber by descending degree, the layout the
//     edge-parallel kernels prefer (hubs share cache lines early);
//   * induced_subgraph — keep an arbitrary vertex subset.
//
// Every transform returns the new graph plus the old-id mapping so scores
// can be projected back.

#include <vector>

#include "graph/csr.hpp"

namespace hbc::graph {

struct RelabeledGraph {
  CSRGraph graph;
  /// new_to_old[new_id] == old_id. Vertices dropped by a subgraph
  /// transform simply do not appear.
  std::vector<VertexId> new_to_old;

  /// Project per-new-vertex scores back onto the original id space
  /// (missing vertices get 0).
  std::vector<double> project_back(std::vector<double> scores,
                                   VertexId original_n) const;
};

/// Induced subgraph on `keep` (old ids; duplicates ignored, order kept).
RelabeledGraph induced_subgraph(const CSRGraph& g, const std::vector<VertexId>& keep);

/// The largest connected component as its own graph.
RelabeledGraph largest_component(const CSRGraph& g);

/// Renumber in BFS order from `source` (unreached vertices keep relative
/// order after the reached ones).
RelabeledGraph bfs_relabel(const CSRGraph& g, VertexId source = 0);

/// Renumber by non-increasing degree; ties by old id.
RelabeledGraph degree_sort_relabel(const CSRGraph& g);

}  // namespace hbc::graph
