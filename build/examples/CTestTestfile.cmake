# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_community_detection "/root/repo/build/examples/community_detection")
set_tests_properties(example_community_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_power_grid "/root/repo/build/examples/power_grid")
set_tests_properties(example_power_grid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_brain_network "/root/repo/build/examples/brain_network")
set_tests_properties(example_brain_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_gpu_scaling "/root/repo/build/examples/multi_gpu_scaling")
set_tests_properties(example_multi_gpu_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
