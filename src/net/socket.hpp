#pragma once

// hbc::net transport — thin, dependency-free POSIX socket layer under the
// wire codec: endpoint parsing (Unix-domain by default, TCP optional),
// RAII fds, nonblocking accept/connect, a poll() wrapper, and Conn — a
// buffered frame pump (per-connection read/write byte buffers with
// streaming frame extraction) that both the coordinator's event loop and
// the worker loop are built on.
//
// Error model: setup failures (parse, bind, listen, connect) throw
// NetError with the syscall, endpoint, and errno text — the tools catch it
// and exit nonzero with that one clear line instead of a raw exception.
// Steady-state I/O failures are returned as Conn::Io statuses so event
// loops can treat a dead peer as data, not control flow.

#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <poll.h>

#include "net/chaos.hpp"
#include "net/wire.hpp"

namespace hbc::net {

/// Transport setup failure with full context, e.g.
///   "bind(unix:/run/hbc.sock): Permission denied".
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Endpoint {
  enum class Kind : std::uint8_t { Unix, Tcp };
  Kind kind = Kind::Unix;
  std::string path;  // Unix
  std::string host;  // TCP
  std::uint16_t port = 0;

  /// "unix:/path/to.sock" or "tcp:host:port". Throws NetError on anything
  /// else (including a Unix path longer than sockaddr_un can hold).
  static Endpoint parse(const std::string& spec);

  std::string str() const;
  bool valid() const noexcept { return kind == Kind::Tcp ? !host.empty() : !path.empty(); }
};

/// RAII file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;
  /// Release ownership without closing.
  int release() noexcept {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Bind + listen on `ep` (a stale Unix socket file is unlinked first so
/// coordinator restarts don't need manual cleanup). Nonblocking. Throws
/// NetError.
Socket listen_on(const Endpoint& ep, int backlog = 64);

/// Blocking connect, then switched to nonblocking for the pump. Throws
/// NetError (callers implementing reconnect-with-backoff catch it).
Socket connect_to(const Endpoint& ep);

/// Accept one pending connection (nonblocking listener). Returns an
/// invalid Socket when none is pending; throws NetError on real failure.
Socket accept_on(const Socket& listener);

/// poll() with EINTR retry. Returns the number of ready fds (0 = timeout).
int poll_wait(std::vector<pollfd>& fds, int timeout_ms);

/// One buffered, nonblocking connection: bytes in, frames out.
class Conn {
 public:
  Conn(Socket sock, std::string peer) : sock_(std::move(sock)), peer_(std::move(peer)) {}

  int fd() const noexcept { return sock_.fd(); }
  const std::string& peer() const noexcept { return peer_; }
  bool open() const noexcept { return sock_.valid(); }
  void close() noexcept { sock_.close(); }

  enum class Io : std::uint8_t {
    Ok,      // made progress (or nothing to do)
    Closed,  // orderly EOF from the peer
    Failed,  // socket error; the connection is dead
  };

  /// Drain the socket into the read buffer (until EAGAIN).
  Io pump_read();
  /// Flush as much of the write buffer as the socket accepts.
  Io pump_write();
  bool wants_write() const noexcept { return out_pos_ < out_.size(); }
  std::size_t pending_bytes() const noexcept { return out_.size() - out_pos_; }

  /// Queue one encoded frame for writing (pump_write sends it). When a
  /// ChaosInjector is armed the frame is routed through it first; inert
  /// connections pay one null-pointer test.
  void send(const std::vector<std::uint8_t>& frame_bytes);

  /// Extract the next complete frame from the read buffer. Ok consumes it;
  /// NeedMore means wait for more bytes; anything else is a protocol error
  /// at the head of the stream — the connection should be dropped (the
  /// status is sticky: once poisoned, always poisoned).
  wire::DecodeStatus next_frame(wire::Frame& frame);

  // --- chaos injection (net/chaos.hpp) ------------------------------------

  /// Route every subsequent send through a seeded fault injector.
  /// `stream_id` keys the plan's hash so each connection gets its own
  /// deterministic fate stream. Null plan disarms.
  void arm_chaos(std::shared_ptr<const ChaosPlan> plan, std::uint64_t stream_id);

  /// Move chaos-delayed frames whose hold time has passed into the write
  /// buffer. Event loops call this once per pass; a no-op when unarmed.
  void pump_chaos();

  /// Frames still held by the injector (the loop should keep pumping).
  bool chaos_pending() const noexcept { return chaos_ && chaos_->holding(); }

  // --- slow-writer (slow-loris) detection ---------------------------------

  /// Cull a peer that keeps a frame incomplete longer than `deadline`
  /// (e.g. dribbling one byte per poll tick, which would otherwise pin a
  /// connection slot forever). 0 disables (the default).
  void set_frame_deadline(std::chrono::milliseconds deadline) noexcept {
    frame_deadline_ = deadline;
  }

  /// True when a partial frame has been stuck at the head of the read
  /// buffer past the deadline. Event loops treat this like a dead peer.
  bool frame_overdue() const noexcept {
    return frame_deadline_.count() > 0 && partial_ &&
           std::chrono::steady_clock::now() - partial_since_ > frame_deadline_;
  }

  /// frame_overdue(), escalated: throws NetError naming the peer and the
  /// deadline. For callers that prefer the transport's typed error to a
  /// silent cull.
  void enforce_frame_deadline() const;

 private:
  Socket sock_;
  std::string peer_;
  std::vector<std::uint8_t> in_;
  std::size_t in_pos_ = 0;  // consumed prefix, compacted lazily
  std::vector<std::uint8_t> out_;
  std::size_t out_pos_ = 0;
  wire::DecodeStatus poisoned_ = wire::DecodeStatus::Ok;
  std::unique_ptr<ChaosInjector> chaos_;  // null = inert
  std::chrono::milliseconds frame_deadline_{0};
  bool partial_ = false;  // head-of-buffer frame incomplete since partial_since_
  std::chrono::steady_clock::time_point partial_since_{};
};

}  // namespace hbc::net
