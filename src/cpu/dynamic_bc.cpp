#include "cpu/dynamic_bc.hpp"

#include <algorithm>
#include <stdexcept>

#include "cpu/brandes.hpp"
#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/types.hpp"

namespace hbc::cpu {

using graph::CSRGraph;
using graph::kInfDistance;
using graph::VertexId;

DynamicBC::DynamicBC(CSRGraph initial) : graph_(std::move(initial)) {
  if (!graph_.undirected()) {
    throw std::invalid_argument(
        "DynamicBC: directed graphs are not supported — the affected-source "
        "level test relies on d(s,u) == d(u,s) symmetry");
  }
  bc_ = brandes(graph_).bc;
}

CSRGraph DynamicBC::with_edge(const CSRGraph& g, VertexId u, VertexId v, bool present) {
  graph::EdgeList edges;
  edges.reserve(g.num_directed_edges() / 2 + 1);
  for (VertexId a = 0; a < g.num_vertices(); ++a) {
    for (VertexId b : g.neighbors(a)) {
      if (a < b && !(a == std::min(u, v) && b == std::max(u, v))) {
        edges.push_back({a, b});
      }
    }
  }
  if (present) edges.push_back({std::min(u, v), std::max(u, v)});
  return graph::build_csr(g.num_vertices(), edges);
}

bool DynamicBC::insert_edge(VertexId u, VertexId v) {
  if (u >= graph_.num_vertices() || v >= graph_.num_vertices()) {
    throw std::out_of_range("DynamicBC::insert_edge: vertex out of range");
  }
  if (u == v) return false;
  const auto nbrs = graph_.neighbors(u);
  if (std::binary_search(nbrs.begin(), nbrs.end(), v)) return false;

  CSRGraph after = with_edge(graph_, u, v, /*present=*/true);
  apply_update(u, v, graph_, after);
  graph_ = std::move(after);
  return true;
}

bool DynamicBC::remove_edge(VertexId u, VertexId v) {
  if (u >= graph_.num_vertices() || v >= graph_.num_vertices()) {
    throw std::out_of_range("DynamicBC::remove_edge: vertex out of range");
  }
  if (u == v) return false;
  const auto nbrs = graph_.neighbors(u);
  if (!std::binary_search(nbrs.begin(), nbrs.end(), v)) return false;

  CSRGraph after = with_edge(graph_, u, v, /*present=*/false);
  apply_update(u, v, graph_, after);
  graph_ = std::move(after);
  return true;
}

void DynamicBC::apply_update(VertexId u, VertexId v, const CSRGraph& before,
                             const CSRGraph& after) {
  // Affected-source test on the PRE-update graph: a source s whose BFS
  // places u and v on the same level (or leaves both unreachable) has no
  // shortest path using {u,v} before the update and gains/loses none
  // after it; its dependency vector is untouched.
  //
  // Why pre-update distances suffice for insertion too: if
  // d_old(s,u) == d_old(s,v) = L, the new edge connects two level-L
  // vertices. Any hypothetical new shortest path through it would need
  // d_new(s,u) + 1 <= d_new(s,v) (or symmetric); but the insertion can
  // only decrease distances via the edge itself, so d_new == d_old here
  // and the level-equality persists.
  const auto from_u = graph::bfs(before, u);
  const auto from_v = graph::bfs(before, v);

  ++stats_.updates;
  const VertexId n = before.num_vertices();
  for (VertexId s = 0; s < n; ++s) {
    // Undirected graphs: d(s, u) == d(u, s).
    const auto du = from_u.distance[s];
    const auto dv = from_v.distance[s];
    if (du == dv) {  // includes both-unreachable (inf == inf)
      ++stats_.sources_skipped;
      continue;
    }
    ++stats_.sources_recomputed;
    const auto old_delta = single_source_dependencies(before, s);
    const auto new_delta = single_source_dependencies(after, s);
    for (VertexId w = 0; w < n; ++w) {
      if (w == s) continue;
      bc_[w] += new_delta[w] - old_delta[w];
    }
  }
}

}  // namespace hbc::cpu
