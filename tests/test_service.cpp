// hbc::service tests: cache identity and eviction, in-flight coalescing,
// admission policies (block / reject / shed) and deadlines, the graph
// registry, latency metrics, and the supporting cache-key primitives.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "core/bc.hpp"
#include "graph/generators.hpp"
#include "service/admission.hpp"
#include "service/cache.hpp"
#include "service/metrics.hpp"
#include "service/service.hpp"
#include "util/stats.hpp"

namespace {

using namespace hbc;
using namespace hbc::service;

graph::CSRGraph test_graph(std::uint64_t seed = 1) {
  return graph::gen::small_world({.num_vertices = 256, .k = 3, .seed = seed});
}

core::Options exact_cpu_options() {
  core::Options o;
  o.strategy = core::Strategy::CpuSerial;
  return o;
}

/// Gate that lets a test hold every compute call until released, so
/// "concurrent identical requests" deterministically overlap.
struct ComputeGate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> calls{0};

  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }

  core::BCResult run(const graph::CSRGraph& g, const core::Options& o) {
    calls.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return open; });
    lock.unlock();
    return core::compute(g, o);
  }
};

// ---------------------------------------------------------------------------
// Cache-key primitives.

TEST(ServiceCacheKey, FingerprintDistinguishesStructures) {
  const auto a = test_graph(1);
  const auto b = test_graph(2);
  EXPECT_EQ(graph_fingerprint(a), graph_fingerprint(test_graph(1)));
  EXPECT_NE(graph_fingerprint(a), graph_fingerprint(b));
}

TEST(ServiceCacheKey, OptionsSignatureCanonicalization) {
  core::Options a = exact_cpu_options();
  core::Options b = exact_cpu_options();
  EXPECT_EQ(core::options_signature(a), core::options_signature(b));

  b.sample_roots = 8;
  EXPECT_NE(core::options_signature(a), core::options_signature(b));

  // cpu_threads is score-affecting only for the CPU-parallel engines.
  core::Options serial1 = exact_cpu_options(), serial2 = exact_cpu_options();
  serial1.cpu_threads = 1;
  serial2.cpu_threads = 4;
  EXPECT_EQ(core::options_signature(serial1), core::options_signature(serial2));
  serial1.strategy = serial2.strategy = core::Strategy::CpuParallel;
  EXPECT_NE(core::options_signature(serial1), core::options_signature(serial2));

  // Root order changes float association, so it must change the key.
  core::Options r1 = exact_cpu_options(), r2 = exact_cpu_options();
  r1.roots = {1, 2, 3};
  r2.roots = {3, 2, 1};
  EXPECT_NE(core::options_signature(r1), core::options_signature(r2));
}

TEST(ServiceCacheKey, ShedDowngradeMakesRequestsApproximate) {
  core::Options exact = exact_cpu_options();
  const core::Options shed = shed_downgrade(exact, 32);
  EXPECT_EQ(shed.strategy, core::Strategy::Sampling);
  EXPECT_EQ(shed.sample_roots, 32u);
  EXPECT_TRUE(shed.roots.empty());

  // Already-cheaper requests are untouched.
  core::Options tiny = exact_cpu_options();
  tiny.sample_roots = 4;
  EXPECT_EQ(core::options_signature(shed_downgrade(tiny, 32)),
            core::options_signature(tiny));
}

// ---------------------------------------------------------------------------
// ResultCache.

std::shared_ptr<const CachedResult> make_entry(std::size_t score_count) {
  auto e = std::make_shared<CachedResult>();
  e->result.scores.assign(score_count, 1.0);
  e->bytes = estimate_result_bytes(e->result);
  return e;
}

TEST(ResultCacheTest, LruEvictionRespectsByteBudget) {
  // Each entry charges ~ sizeof(BCResult) + 100 doubles; budget fits 3.
  const std::size_t per_entry = estimate_result_bytes(make_entry(100)->result);
  ResultCache cache(3 * per_entry + per_entry / 2);

  cache.put("a", make_entry(100));
  cache.put("b", make_entry(100));
  cache.put("c", make_entry(100));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_LE(cache.bytes(), cache.budget_bytes());

  ASSERT_TRUE(cache.get("a"));  // promote "a"; "b" is now LRU
  cache.put("d", make_entry(100));
  EXPECT_LE(cache.bytes(), cache.budget_bytes());
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.get("a"));
  EXPECT_FALSE(cache.get("b"));
  EXPECT_TRUE(cache.get("c"));
  EXPECT_TRUE(cache.get("d"));
}

TEST(ResultCacheTest, OversizedEntryIsNotCached) {
  ResultCache cache(64);  // smaller than any real entry
  cache.put("huge", make_entry(1000));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ResultCacheTest, EraseIfDropsByPredicate) {
  ResultCache cache(1 << 20);
  cache.put("aa|x", make_entry(10));
  cache.put("aa|y", make_entry(10));
  cache.put("bb|z", make_entry(10));
  EXPECT_EQ(cache.erase_if([](const std::string& k) { return k.rfind("aa|", 0) == 0; }),
            2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.get("bb|z"));
}

// ---------------------------------------------------------------------------
// Service: cache identity, coalescing, policies, registry, metrics.

TEST(BcServiceTest, CacheHitIsBitIdenticalToFreshCompute) {
  ServiceConfig cfg;
  cfg.workers = 2;
  BcService svc(cfg);
  const auto g = test_graph();
  svc.load_graph("g", g);

  Request req{.graph_id = "g", .options = exact_cpu_options(), .top_k = 5};
  const Response cold = svc.query(req);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.from_cache);

  const Response warm = svc.query(req);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.from_cache);

  const core::BCResult fresh = core::compute(g, req.options);
  ASSERT_EQ(warm.result->scores.size(), fresh.scores.size());
  for (std::size_t v = 0; v < fresh.scores.size(); ++v) {
    // Bitwise equality, not EXPECT_DOUBLE_EQ: the cache must return the
    // exact object a fresh deterministic compute produces.
    EXPECT_EQ(std::memcmp(&warm.result->scores[v], &fresh.scores[v], sizeof(double)), 0)
        << "score mismatch at vertex " << v;
  }
  EXPECT_EQ(warm.top.size(), 5u);
  EXPECT_EQ(warm.top, core::top_k(fresh.scores, 5));

  // Both service computations (1) and the fresh one hit the core counter;
  // the warm query must not have.
  EXPECT_GE(core::compute_invocations(), 2u);
}

TEST(BcServiceTest, CacheHitsAreBitIdenticalAcrossThreadCounts) {
  // GPU-model strategies thread through kernels::BlockDriver, but the
  // thread count never changes a bit of the result — so it is excluded
  // from the cache key and a hit computed at one thread count must serve
  // a request made at another, bit-for-bit.
  core::Options one = exact_cpu_options();
  one.strategy = core::Strategy::Hybrid;
  one.cpu_threads = 1;
  core::Options eight = one;
  eight.cpu_threads = 8;
  EXPECT_EQ(core::options_signature(one), core::options_signature(eight));

  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.compute_threads = 2;  // service's own per-request budget
  BcService svc(cfg);
  const auto g = test_graph();
  svc.load_graph("g", g);

  const auto invocations_before = core::compute_invocations();
  const Response cold = svc.query({.graph_id = "g", .options = one});
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.from_cache);

  const Response warm = svc.query({.graph_id = "g", .options = eight});
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(core::compute_invocations(), invocations_before + 1);

  // The cached scores match a fresh compute at BOTH thread counts.
  for (const core::Options& o : {one, eight}) {
    const core::BCResult fresh = core::compute(g, o);
    ASSERT_EQ(warm.result->scores.size(), fresh.scores.size());
    EXPECT_EQ(std::memcmp(warm.result->scores.data(), fresh.scores.data(),
                          fresh.scores.size() * sizeof(double)),
              0)
        << "cpu_threads=" << o.cpu_threads;
  }
}

TEST(BcServiceTest, IdenticalConcurrentRequestsCoalesceToOneCompute) {
  auto gate = std::make_shared<ComputeGate>();
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.compute_fn = [gate](const graph::CSRGraph& g, const core::Options& o) {
    return gate->run(g, o);
  };
  BcService svc(cfg);
  svc.load_graph("g", test_graph());

  const Request req{.graph_id = "g", .options = exact_cpu_options()};
  constexpr int kTwins = 8;
  std::vector<Ticket> tickets;
  for (int i = 0; i < kTwins; ++i) tickets.push_back(svc.submit(req));
  // The leader is blocked inside compute_fn; everyone else must have
  // attached to it rather than queued behind it.
  int coalesced = 0;
  for (const auto& t : tickets) coalesced += t.coalesced ? 1 : 0;
  EXPECT_EQ(coalesced, kTwins - 1);

  gate->release();
  for (const auto& t : tickets) {
    const Response r = svc.wait(t);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.result);
  }
  EXPECT_EQ(gate->calls.load(), 1);

  const MetricsSnapshot m = svc.metrics();
  EXPECT_EQ(m.computed, 1u);
  EXPECT_EQ(m.coalesced, static_cast<std::uint64_t>(kTwins - 1));
}

TEST(BcServiceTest, RejectPolicyReturnsQueueFull) {
  auto gate = std::make_shared<ComputeGate>();
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.admission = {.max_queue_depth = 2, .policy = AdmissionPolicy::Reject};
  cfg.compute_fn = [gate](const graph::CSRGraph& g, const core::Options& o) {
    return gate->run(g, o);
  };
  BcService svc(cfg);
  svc.load_graph("g", test_graph());

  // Distinct requests (different seeds) so nothing coalesces. The worker
  // blocks on the first; the queue bound then caps the rest.
  auto request_with_seed = [](std::uint64_t seed) {
    Request r{.graph_id = "g", .options = exact_cpu_options()};
    r.options.sample_roots = 16;
    r.options.seed = seed;
    return r;
  };
  std::vector<Ticket> tickets;
  std::vector<Response> rejected;
  for (std::uint64_t s = 0; s < 8; ++s) {
    Ticket t = svc.submit(request_with_seed(s));
    if (t.future.wait_for(std::chrono::seconds(0)) == std::future_status::ready &&
        svc.wait(t).status == QueryStatus::QueueFull) {
      rejected.push_back(svc.wait(t));
    } else {
      tickets.push_back(std::move(t));
    }
  }
  EXPECT_FALSE(rejected.empty());
  EXPECT_GE(svc.metrics().rejected_full, rejected.size());

  gate->release();
  for (const auto& t : tickets) EXPECT_TRUE(svc.wait(t).ok());
}

TEST(BcServiceTest, ShedPolicyDowngradesUnderLoad) {
  auto gate = std::make_shared<ComputeGate>();
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.admission = {.max_queue_depth = 1,
                   .policy = AdmissionPolicy::Shed,
                   .shed_sample_roots = 8};
  cfg.compute_fn = [gate](const graph::CSRGraph& g, const core::Options& o) {
    return gate->run(g, o);
  };
  BcService svc(cfg);
  svc.load_graph("g", test_graph());

  auto request_with_seed = [](std::uint64_t seed) {
    Request r{.graph_id = "g", .options = exact_cpu_options()};
    r.options.seed = seed;  // distinct exact requests
    return r;
  };
  std::vector<Ticket> tickets;
  for (std::uint64_t s = 0; s < 6; ++s) tickets.push_back(svc.submit(request_with_seed(s)));
  gate->release();

  bool any_shed = false;
  for (const auto& t : tickets) {
    const Response r = svc.wait(t);
    ASSERT_TRUE(r.ok()) << to_string(r.status);
    if (t.shed) {
      any_shed = true;
      EXPECT_TRUE(r.shed);
      // The shed computation really was the downgraded approximation.
      EXPECT_TRUE(r.result->approximate);
      EXPECT_EQ(r.result->strategy, core::Strategy::Sampling);
    }
  }
  EXPECT_TRUE(any_shed);
  EXPECT_GT(svc.metrics().shed, 0u);
}

TEST(BcServiceTest, DeadlineExpiresWhileQueued) {
  auto gate = std::make_shared<ComputeGate>();
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.compute_fn = [gate](const graph::CSRGraph& g, const core::Options& o) {
    return gate->run(g, o);
  };
  BcService svc(cfg);
  svc.load_graph("g", test_graph());

  Request blocker{.graph_id = "g", .options = exact_cpu_options()};
  Ticket first = svc.submit(blocker);  // occupies the only worker

  Request hurried{.graph_id = "g", .options = exact_cpu_options()};
  hurried.options.seed = 99;
  hurried.options.sample_roots = 16;
  hurried.timeout = std::chrono::milliseconds(30);
  Ticket doomed = svc.submit(hurried);

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  gate->release();

  EXPECT_TRUE(svc.wait(first).ok());
  EXPECT_EQ(svc.wait(doomed).status, QueryStatus::DeadlineExceeded);
  EXPECT_EQ(svc.metrics().deadline_dropped, 1u);
}

TEST(BcServiceTest, GraphRegistryLoadEvictAndUnknown) {
  ServiceConfig cfg;
  cfg.workers = 1;
  BcService svc(cfg);
  svc.load_graph("a", test_graph(1));
  svc.load_graph("b", test_graph(2));
  EXPECT_EQ(svc.graph_ids(), (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(svc.graph("a"));

  Request req{.graph_id = "a", .options = exact_cpu_options()};
  ASSERT_TRUE(svc.query(req).ok());
  EXPECT_EQ(svc.metrics().cache_entries, 1u);

  EXPECT_TRUE(svc.evict_graph("a"));
  EXPECT_FALSE(svc.evict_graph("a"));
  EXPECT_EQ(svc.metrics().cache_entries, 0u);  // cached results dropped too

  EXPECT_EQ(svc.query(req).status, QueryStatus::GraphNotFound);
  Request unknown;
  unknown.graph_id = "nope";
  EXPECT_EQ(svc.query(unknown).status, QueryStatus::GraphNotFound);
}

TEST(BcServiceTest, StopIsIdempotentAndRefusesNewWork) {
  ServiceConfig cfg;
  cfg.workers = 1;
  BcService svc(cfg);
  svc.load_graph("g", test_graph());
  ASSERT_TRUE(svc.query({.graph_id = "g", .options = exact_cpu_options()}).ok());
  svc.stop();
  svc.stop();
  EXPECT_EQ(svc.query({.graph_id = "g", .options = exact_cpu_options()}).status,
            QueryStatus::ServiceStopped);
}

TEST(BcServiceTest, MixedWorkloadProducesMeaningfulMetrics) {
  ServiceConfig cfg;
  cfg.workers = 2;
  BcService svc(cfg);
  svc.load_graph("g", test_graph());

  // 4 distinct queries, then 12 repeats drawn from the same set -> ~75%
  // request-level hit rate once the cache is warm.
  std::vector<Request> distinct;
  for (std::uint64_t s = 0; s < 4; ++s) {
    Request r{.graph_id = "g", .options = exact_cpu_options()};
    r.options.sample_roots = 16;
    r.options.seed = s;
    distinct.push_back(r);
  }
  for (const auto& r : distinct) ASSERT_TRUE(svc.query(r).ok());
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(svc.query(distinct[i % 4]).ok());

  const MetricsSnapshot m = svc.metrics();
  EXPECT_EQ(m.submitted, 16u);
  EXPECT_EQ(m.completed, 16u);
  EXPECT_EQ(m.computed, 4u);
  EXPECT_EQ(m.cache_hits, 12u);
  EXPECT_GT(m.cache_hit_rate(), 0.5);
  EXPECT_GT(m.latency_p50_ms, 0.0);
  EXPECT_GE(m.latency_p99_ms, m.latency_p50_ms);
  EXPECT_GT(m.qps, 0.0);

  const std::string report = svc.metrics_report();
  EXPECT_NE(report.find("hit_rate=75.0%"), std::string::npos) << report;
  EXPECT_NE(report.find("p99="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics primitives.

TEST(ServiceMetricsTest, HistogramQuantilesBracketTheData) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i) * 0.1);  // 0.1..100ms
  EXPECT_EQ(h.count(), 1000u);
  const double p50 = h.quantile(0.50);
  const double p99 = h.quantile(0.99);
  // Log-bucketed estimates: within one bucket ratio (~35%) of truth.
  EXPECT_NEAR(p50, 50.0, 20.0);
  EXPECT_NEAR(p99, 99.0, 35.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(h.quantile(1.0), h.max_ms() + 1e-9);
  EXPECT_GE(h.quantile(0.0), h.min_ms() - 1e-9);
}

TEST(ServiceMetricsTest, PercentileInterpolatesLinearly) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(hbc::util::percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(hbc::util::percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(hbc::util::percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(hbc::util::percentile({}, 50), 0.0);
}

}  // namespace
