// hbc::dyn — epoch-versioned mutable graphs and batched incremental BC.
//
// Pins the subsystem's contracts: epoch snapshots stay immutable under
// concurrent readers (this binary runs in the CI TSan job), a batch of
// updates produces exactly the scores of applying the same updates one
// edge at a time (cpu::DynamicBC is the reference), the churn threshold
// degrades to a full recompute, the service invalidates or patches cached
// results across mutations, and refreshed scores are bitwise-identical at
// every thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cpu/brandes.hpp"
#include "cpu/dynamic_bc.hpp"
#include "dyn/incremental_bc.hpp"
#include "dyn/versioned_graph.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "service/service.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace {

using namespace hbc;
using graph::CSRGraph;
using graph::Edge;
using graph::VertexId;

void expect_scores_near(const std::vector<double>& got, const std::vector<double>& want,
                        double rel = 1e-7) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v) {
    EXPECT_NEAR(got[v], want[v], rel * std::max(1.0, std::abs(want[v])))
        << "vertex " << v;
  }
}

dyn::IncrementalConfig inc_cfg(std::size_t threads, double churn_threshold = 0.25) {
  dyn::IncrementalConfig cfg;
  cfg.threads = threads;
  cfg.churn_threshold = churn_threshold;
  return cfg;
}

service::ServiceConfig one_worker() {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  return cfg;
}

bool has_edge(const CSRGraph& g, VertexId u, VertexId v) {
  const auto nbrs = g.neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

/// A mixed batch of updates valid against `g`: `removes` existing edges
/// and `inserts` currently-absent pairs, all touching distinct edges (so
/// batch commit == any sequential application order).
dyn::UpdateBatch mixed_batch(const CSRGraph& g, std::size_t inserts, std::size_t removes,
                             std::uint64_t seed) {
  dyn::UpdateBatch batch;
  util::Xoshiro256 rng(seed);
  const VertexId n = g.num_vertices();
  std::vector<std::pair<VertexId, VertexId>> used;
  const auto fresh = [&](VertexId u, VertexId v) {
    const auto key = std::minmax(u, v);
    if (std::find(used.begin(), used.end(),
                  std::make_pair(key.first, key.second)) != used.end()) {
      return false;
    }
    used.emplace_back(key.first, key.second);
    return true;
  };
  while (batch.size() < inserts) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    if (u == v || has_edge(g, u, v) || !fresh(u, v)) continue;
    batch.insert(u, v);
  }
  while (batch.size() < inserts + removes) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto nbrs = g.neighbors(u);
    if (nbrs.empty()) continue;
    const auto v = nbrs[rng.next_below(nbrs.size())];
    if (!fresh(u, v)) continue;
    batch.remove(u, v);
  }
  return batch;
}

// ---------------------------------------------------------------- epochs

TEST(VersionedGraph, CommitAdvancesEpochAndFingerprint) {
  dyn::VersionedGraph vg(graph::build_csr(4, std::vector<Edge>{{0, 1}, {1, 2}}));
  const dyn::Epoch e0 = vg.current();
  EXPECT_EQ(e0.id, 0u);
  EXPECT_EQ(e0.fingerprint, e0.graph->fingerprint());

  const dyn::CommitResult cr = vg.apply(dyn::UpdateBatch{}.insert(2, 3));
  EXPECT_EQ(cr.before.id, 0u);
  EXPECT_EQ(cr.after.id, 1u);
  EXPECT_NE(cr.after.fingerprint, e0.fingerprint);
  ASSERT_EQ(cr.applied.size(), 1u);
  EXPECT_EQ(cr.applied[0], (dyn::EdgeUpdate{2, 3, true}));
  EXPECT_TRUE(has_edge(*vg.current().graph, 2, 3));
  // The old epoch is untouched by the commit.
  EXPECT_FALSE(has_edge(*e0.graph, 2, 3));
}

TEST(VersionedGraph, LastOpWinsAndNoopsDrop) {
  dyn::VersionedGraph vg(graph::build_csr(4, std::vector<Edge>{{0, 1}, {1, 2}}));
  dyn::UpdateBatch batch;
  batch.insert(2, 3).remove(2, 3);  // cancels out -> no-op pair
  batch.insert(0, 1);               // already present -> no-op
  batch.remove(0, 3);               // absent -> no-op
  batch.insert(1, 1);               // self loop -> no-op
  batch.remove(1, 2).insert(1, 2).remove(1, 2);  // last op wins: remove
  const dyn::CommitResult cr = vg.apply(batch);
  ASSERT_EQ(cr.applied.size(), 1u);
  EXPECT_EQ(cr.applied[0], (dyn::EdgeUpdate{1, 2, false}));
  EXPECT_EQ(cr.noops, batch.size() - 1);
  EXPECT_FALSE(has_edge(*vg.current().graph, 1, 2));

  // An all-no-op batch keeps the epoch (no rebuild, same snapshot).
  const dyn::CommitResult noop = vg.apply(dyn::UpdateBatch{}.insert(0, 1));
  EXPECT_TRUE(noop.applied.empty());
  EXPECT_EQ(noop.after.id, cr.after.id);
  EXPECT_EQ(vg.epoch_id(), 1u);
}

TEST(VersionedGraph, OutOfRangeLeavesGraphUntouched) {
  dyn::VersionedGraph vg(graph::build_csr(3, std::vector<Edge>{{0, 1}}));
  EXPECT_THROW(vg.apply(dyn::UpdateBatch{}.insert(0, 2).insert(0, 7)),
               std::out_of_range);
  EXPECT_EQ(vg.epoch_id(), 0u);
  EXPECT_FALSE(has_edge(*vg.current().graph, 0, 2));
}

TEST(VersionedGraph, StaleStageThrowsOnCommit) {
  dyn::VersionedGraph vg(graph::build_csr(4, std::vector<Edge>{{0, 1}}));
  const dyn::CommitResult staged = vg.stage(dyn::UpdateBatch{}.insert(1, 2));
  vg.apply(dyn::UpdateBatch{}.insert(2, 3));  // another commit lands first
  EXPECT_THROW(vg.commit(staged), std::logic_error);
  EXPECT_EQ(vg.epoch_id(), 1u);
}

TEST(VersionedGraph, RejectsDirectedGraphs) {
  const CSRGraph directed = graph::build_csr(
      3, std::vector<Edge>{{0, 1}, {1, 2}}, {.symmetrize = false});
  EXPECT_THROW(dyn::VersionedGraph{directed}, std::invalid_argument);
}

TEST(VersionedGraph, EpochIsolationUnderConcurrentReaders) {
  // Readers continuously snapshot while a writer commits batches; each
  // snapshot must be internally consistent (fingerprint matches its own
  // graph) no matter when it was taken. TSan guards the memory model.
  dyn::VersionedGraph vg(
      graph::gen::small_world({.num_vertices = 64, .k = 2, .rewire_p = 0.0, .seed = 5}));
  const dyn::Epoch genesis = vg.current();
  const std::uint64_t genesis_edges = genesis.graph->num_undirected_edges();

  std::atomic<bool> stop{false};
  std::atomic<int> inconsistencies{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const dyn::Epoch e = vg.current();
        if (e.fingerprint != e.graph->fingerprint()) inconsistencies.fetch_add(1);
        if (e.id == 0 && e.graph->num_undirected_edges() != genesis_edges) {
          inconsistencies.fetch_add(1);
        }
      }
    });
  }
  for (VertexId i = 0; i + 1 < 16; ++i) {
    vg.apply(dyn::UpdateBatch{}.insert(i, static_cast<VertexId>(i + 33)));
  }
  stop.store(true);
  for (auto& r : readers) r.join();

  EXPECT_EQ(inconsistencies.load(), 0);
  EXPECT_GT(vg.epoch_id(), 0u);
  // A reader that held the genesis epoch across every commit still sees
  // the original structure.
  EXPECT_EQ(genesis.graph->num_undirected_edges(), genesis_edges);
  EXPECT_EQ(genesis.graph->fingerprint(), genesis.fingerprint);
}

// ------------------------------------------------------- incremental BC

TEST(IncrementalBC, BatchMatchesSequentialSingleEdgeUpdates) {
  const CSRGraph g = graph::gen::small_world({.num_vertices = 60, .k = 2, .seed = 3});
  const dyn::UpdateBatch batch = mixed_batch(g, 5, 3, 11);

  // Reference: the same updates applied one edge at a time.
  cpu::DynamicBC sequential(g);
  for (const dyn::EdgeUpdate& e : batch.edges) {
    const bool changed =
        e.insert ? sequential.insert_edge(e.u, e.v) : sequential.remove_edge(e.u, e.v);
    ASSERT_TRUE(changed);  // mixed_batch only emits effective updates
  }

  dyn::IncrementalBC engine(g, inc_cfg(2));
  const dyn::BatchStats stats = engine.apply(batch);
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.applied_updates, batch.size());
  EXPECT_EQ(stats.noop_updates, 0u);
  EXPECT_EQ(engine.graph().num_undirected_edges(),
            sequential.graph().num_undirected_edges());

  expect_scores_near(engine.scores(), sequential.scores());
  expect_scores_near(engine.scores(), cpu::brandes(engine.graph()).bc);
}

TEST(IncrementalBC, RepeatedBatchesTrackFromScratchRecompute) {
  CSRGraph g = graph::gen::small_world({.num_vertices = 50, .k = 3, .seed = 9});
  dyn::IncrementalBC engine(g, inc_cfg(2, /*churn_threshold=*/1.0));
  for (std::uint64_t round = 1; round <= 3; ++round) {
    const dyn::UpdateBatch batch =
        mixed_batch(engine.graph(), 3, 2, /*seed=*/100 + round);
    const dyn::BatchStats stats = engine.apply(batch);
    EXPECT_EQ(stats.epoch, round);
    EXPECT_FALSE(stats.full_recompute);  // threshold 1.0 never falls back
    expect_scores_near(engine.scores(), cpu::brandes(engine.graph()).bc);
  }
  EXPECT_EQ(engine.totals().batches, 3u);
  EXPECT_EQ(engine.totals().applied_updates, 15u);
}

TEST(IncrementalBC, LevelTestPrunesUnaffectedSources) {
  // Star + chord (the cpu::DynamicBC pruning scenario, batched): only the
  // chord endpoints are affected; the hub and other leaves are skipped.
  const CSRGraph g = graph::build_csr(
      5, std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  // 2 of 5 sources are affected (40%) — above the default churn
  // threshold on a graph this tiny, so disable the fallback to observe
  // the pruning itself.
  dyn::IncrementalBC engine(g, inc_cfg(0, /*churn_threshold=*/1.0));
  const dyn::BatchStats stats = engine.apply(dyn::UpdateBatch{}.insert(1, 2));
  EXPECT_EQ(stats.affected_sources, 2u);
  EXPECT_EQ(stats.sources_recomputed, 2u);
  EXPECT_EQ(stats.sources_skipped, 3u);
  EXPECT_FALSE(stats.full_recompute);
  expect_scores_near(engine.scores(), cpu::brandes(engine.graph()).bc);
}

TEST(IncrementalBC, ChurnThresholdTriggersFullRecompute) {
  const CSRGraph g = graph::gen::small_world({.num_vertices = 40, .k = 2, .seed = 7});
  // threshold 0: any nonzero affected set falls back to a full recompute.
  dyn::IncrementalBC engine(g, inc_cfg(0, /*churn_threshold=*/0.0));
  const dyn::UpdateBatch batch = mixed_batch(g, 2, 1, 21);
  const dyn::BatchStats stats = engine.apply(batch);
  EXPECT_TRUE(stats.full_recompute);
  EXPECT_EQ(stats.sources_recomputed, 40u);
  EXPECT_EQ(stats.sources_skipped, 0u);
  EXPECT_EQ(engine.totals().full_recomputes, 1u);
  expect_scores_near(engine.scores(), cpu::brandes(engine.graph()).bc);
}

TEST(IncrementalBC, CancelLeavesScoresAndEpochUntouched) {
  const CSRGraph g = graph::gen::small_world({.num_vertices = 40, .k = 2, .seed = 13});
  util::CancelSource source;
  dyn::IncrementalConfig cfg;
  cfg.cancel = source.token();
  dyn::IncrementalBC engine(g, cfg);  // builds epoch-0 scores uncancelled
  const std::vector<double> before = engine.scores();

  source.cancel();
  EXPECT_THROW(engine.apply(mixed_batch(g, 3, 1, 31)), util::Cancelled);
  EXPECT_EQ(engine.epoch().id, 0u);
  EXPECT_EQ(engine.scores(), before);  // bitwise untouched
}

TEST(IncrementalBC, InvalidConfigThrows) {
  const CSRGraph g = graph::build_csr(3, std::vector<Edge>{{0, 1}, {1, 2}});
  EXPECT_THROW(dyn::IncrementalBC(g, inc_cfg(0, /*churn_threshold=*/1.5)),
               std::invalid_argument);
  dyn::IncrementalConfig no_stripes;
  no_stripes.reduce_stripes = 0;
  EXPECT_THROW(dyn::IncrementalBC(g, no_stripes), std::invalid_argument);
  EXPECT_THROW(
      dyn::IncrementalBC(graph::build_csr(3, std::vector<Edge>{{0, 1}},
                                          {.symmetrize = false})),
      std::invalid_argument);
}

TEST(IncrementalBC, BitwiseDeterminismAcrossThreadCounts) {
  // Same graph, same batch, different thread counts: epoch-0 scores and
  // post-batch scores must be bit-identical — the fixed-stripe reduction
  // order is the contract, not a tolerance.
  const CSRGraph g = graph::gen::small_world({.num_vertices = 120, .k = 3, .seed = 17});
  const dyn::UpdateBatch batch = mixed_batch(g, 4, 2, 41);

  std::vector<std::vector<double>> initial, updated;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    dyn::IncrementalBC engine(g, inc_cfg(threads));
    initial.push_back(engine.scores());
    engine.apply(batch);
    updated.push_back(engine.scores());
  }
  for (std::size_t i = 1; i < initial.size(); ++i) {
    ASSERT_EQ(initial[0].size(), initial[i].size());
    EXPECT_EQ(0, std::memcmp(initial[0].data(), initial[i].data(),
                             initial[0].size() * sizeof(double)))
        << "epoch-0 scores differ at thread count " << i;
    EXPECT_EQ(0, std::memcmp(updated[0].data(), updated[i].data(),
                             updated[0].size() * sizeof(double)))
        << "post-batch scores differ at thread count " << i;
  }

  // The churn fallback reuses the same striped path, so it inherits the
  // guarantee too.
  std::vector<std::vector<double>> fallback;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    dyn::IncrementalBC engine(g, inc_cfg(threads, /*churn_threshold=*/0.0));
    engine.apply(batch);
    fallback.push_back(engine.scores());
  }
  EXPECT_EQ(0, std::memcmp(fallback[0].data(), fallback[1].data(),
                           fallback[0].size() * sizeof(double)));
}

// ------------------------------------------------------------- service

core::Options exact_cpu_options() {
  core::Options opt;
  opt.strategy = core::Strategy::CpuSerial;
  return opt;
}

TEST(ServiceMutation, MutationInvalidatesOldCacheEntries) {
  service::BcService svc(one_worker());
  const CSRGraph g = graph::gen::small_world(
      {.num_vertices = 48, .k = 2, .rewire_p = 0.0, .seed = 23});
  svc.load_graph("g", g);

  const service::Response first = svc.query({.graph_id = "g", .options = exact_cpu_options()});
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.from_cache);
  const service::Response hit = svc.query({.graph_id = "g", .options = exact_cpu_options()});
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.from_cache);

  const service::MutationResult mr =
      svc.mutate_graph("g", dyn::UpdateBatch{}.insert(0, 24));
  EXPECT_EQ(mr.epoch, 1u);
  EXPECT_EQ(mr.applied, 1u);
  EXPECT_NE(mr.fingerprint_before, mr.fingerprint_after);
  EXPECT_EQ(mr.cache_invalidated, 1u);
  EXPECT_EQ(svc.graph_epoch("g"), 1u);

  // Post-mutation query recomputes on the new epoch — never the old scores.
  const service::Response after = svc.query({.graph_id = "g", .options = exact_cpu_options()});
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.from_cache);
  const auto fresh = cpu::brandes(*svc.graph("g")).bc;
  expect_scores_near(after.result->scores, fresh);

  const service::MetricsSnapshot m = svc.metrics();
  EXPECT_EQ(m.mutations, 1u);
  EXPECT_EQ(m.mutation_updates, 1u);
  EXPECT_EQ(m.refresh_invalidated, 1u);
  EXPECT_EQ(m.refresh_patched, 0u);
}

TEST(ServiceMutation, RefresherPatchesExactEntriesAcrossEpochs) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.refresh.enabled = true;
  cfg.refresh.budget_entries = 4;
  service::BcService svc(cfg);
  const CSRGraph g = graph::gen::small_world(
      {.num_vertices = 48, .k = 2, .rewire_p = 0.0, .seed = 29});
  svc.load_graph("g", g);

  ASSERT_TRUE(svc.query({.graph_id = "g", .options = exact_cpu_options()}).ok());

  const service::MutationResult mr =
      svc.mutate_graph("g", dyn::UpdateBatch{}.insert(1, 25).remove(0, 1));
  EXPECT_EQ(mr.cache_refresh_queued, 1u);
  EXPECT_EQ(mr.cache_invalidated, 0u);
  svc.drain_refreshes();

  // The patched entry now answers queries against the NEW epoch from the
  // cache, with scores matching a from-scratch run on the mutated graph.
  const service::Response patched =
      svc.query({.graph_id = "g", .options = exact_cpu_options()});
  ASSERT_TRUE(patched.ok());
  EXPECT_TRUE(patched.from_cache);
  expect_scores_near(patched.result->scores, cpu::brandes(*svc.graph("g")).bc);

  const service::MetricsSnapshot m = svc.metrics();
  EXPECT_EQ(m.refresh_patched, 1u);
  EXPECT_EQ(m.mutations, 1u);
  EXPECT_GT(m.affected_fraction_max, 0.0);
  EXPECT_LE(m.affected_fraction_max, 1.0);
}

TEST(ServiceMutation, NonRefreshableEntriesAreInvalidatedNotPatched) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.refresh.enabled = true;
  service::BcService svc(cfg);
  svc.load_graph("g", graph::gen::small_world(
                          {.num_vertices = 40, .k = 2, .rewire_p = 0.0, .seed = 31}));

  // A normalized result is cached but NOT refreshable (scores rescaled).
  core::Options normalized = exact_cpu_options();
  normalized.normalize = true;
  ASSERT_TRUE(svc.query({.graph_id = "g", .options = normalized}).ok());

  const service::MutationResult mr =
      svc.mutate_graph("g", dyn::UpdateBatch{}.insert(0, 20));
  EXPECT_EQ(mr.cache_refresh_queued, 1u);
  svc.drain_refreshes();

  const service::MetricsSnapshot m = svc.metrics();
  EXPECT_EQ(m.refresh_patched, 0u);
  EXPECT_EQ(m.refresh_invalidated, 1u);

  // And the recomputed answer on the new epoch is correct.
  const service::Response after = svc.query({.graph_id = "g", .options = normalized});
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.from_cache);
}

TEST(ServiceMutation, InFlightQueriesKeepTheirSnapshot) {
  // A query submitted before a mutation computes on the old epoch even if
  // the mutation commits first — snapshot isolation end to end. We can't
  // force that interleaving deterministically from outside, so pin it via
  // the compute hook: the mutation happens while compute is in progress.
  service::ServiceConfig cfg;
  cfg.workers = 1;
  std::atomic<bool> mutate_now{false};
  std::atomic<bool> mutated{false};
  cfg.compute_fn = [&](const CSRGraph& g, const core::Options& o) {
    mutate_now.store(true);
    while (!mutated.load()) std::this_thread::yield();
    return core::compute(g, o);
  };
  service::BcService svc(cfg);
  const CSRGraph g = graph::gen::small_world(
      {.num_vertices = 32, .k = 2, .rewire_p = 0.0, .seed = 37});
  svc.load_graph("g", g);
  const auto old_scores = cpu::brandes(g).bc;

  const service::Ticket t = svc.submit({.graph_id = "g", .options = exact_cpu_options()});
  while (!mutate_now.load()) std::this_thread::yield();
  svc.mutate_graph("g", dyn::UpdateBatch{}.insert(0, 16));
  mutated.store(true);

  const service::Response r = svc.wait(t);
  ASSERT_TRUE(r.ok());
  expect_scores_near(r.result->scores, old_scores);  // old-epoch compute

  // But a FRESH query sees the new epoch, not the stale cached entry:
  // the old result was keyed by the old fingerprint.
  const service::Response fresh = svc.query({.graph_id = "g", .options = exact_cpu_options()});
  ASSERT_TRUE(fresh.ok());
  expect_scores_near(fresh.result->scores, cpu::brandes(*svc.graph("g")).bc);
}

TEST(ServiceMutation, RejectsUnknownAndDirectedGraphs) {
  service::BcService svc(one_worker());
  EXPECT_THROW(svc.mutate_graph("nope", dyn::UpdateBatch{}.insert(0, 1)),
               std::invalid_argument);

  svc.load_graph("directed", graph::build_csr(3, std::vector<Edge>{{0, 1}},
                                              {.symmetrize = false}));
  EXPECT_THROW(svc.mutate_graph("directed", dyn::UpdateBatch{}.insert(1, 2)),
               std::invalid_argument);

  svc.load_graph("g", graph::build_csr(3, std::vector<Edge>{{0, 1}}));
  EXPECT_THROW(svc.mutate_graph("g", dyn::UpdateBatch{}.insert(0, 9)),
               std::out_of_range);
  EXPECT_EQ(svc.graph_epoch("g"), 0u);

  svc.stop();
  EXPECT_THROW(svc.mutate_graph("g", dyn::UpdateBatch{}.insert(1, 2)),
               std::runtime_error);
}

}  // namespace
