file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_bc.dir/test_dynamic_bc.cpp.o"
  "CMakeFiles/test_dynamic_bc.dir/test_dynamic_bc.cpp.o.d"
  "test_dynamic_bc"
  "test_dynamic_bc.pdb"
  "test_dynamic_bc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_bc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
