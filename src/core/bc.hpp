#pragma once

// Public API of the library: one call computing betweenness centrality
// with any of the paper's strategies (plus CPU baselines), approximation
// by root sampling, score normalization, and top-k extraction.
//
// Quickstart:
//
//   auto g = hbc::graph::gen::small_world({.num_vertices = 1 << 14});
//   hbc::core::Options opt;
//   opt.strategy = hbc::core::Strategy::Sampling;   // Algorithm 5
//   hbc::core::BCResult r = hbc::core::compute(g, opt);
//   for (auto [v, score] : hbc::core::top_k(r.scores, 10)) { ... }

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/config.hpp"
#include "gpusim/faults.hpp"
#include "graph/csr.hpp"
#include "kernels/kernels.hpp"
#include "trace/trace.hpp"
#include "util/cancel.hpp"

namespace hbc::core {

enum class Strategy {
  CpuSerial,       // Brandes oracle (single thread)
  CpuParallel,     // coarse-grained threaded Brandes (one source/thread)
  CpuFineGrained,  // fine-grained threaded Brandes (threads share a source)
  VertexParallel,  // Jia et al. baseline (GPU model)
  EdgeParallel,    // Jia et al. baseline (GPU model)
  GpuFan,          // Shi & Zhang baseline (GPU model)
  WorkEfficient,   // paper Algorithms 1–3 (GPU model)
  Hybrid,          // paper Algorithm 4
  Sampling,        // paper Algorithm 5 (the paper's best overall)
  DirectionOptimized,  // extension: Beamer-style top-down/bottom-up BC
};

const char* to_string(Strategy strategy) noexcept;

/// Parse a strategy name; round-trips with to_string for every Strategy.
/// Accepted spellings (canonical first): "cpu-serial"/"cpu",
/// "cpu-parallel", "cpu-fine-grained"/"cpu-fine", "vertex-parallel"/
/// "vertex", "edge-parallel"/"edge", "gpu-fan"/"gpufan",
/// "work-efficient"/"we", "hybrid", "sampling",
/// "direction-optimized"/"diropt". Throws std::invalid_argument on
/// anything else.
Strategy strategy_from_string(const std::string& name);

/// True for the strategies that run on the simulated GPU (everything but
/// the three CPU engines). GPU-model strategies are bitwise-deterministic
/// in `Options::cpu_threads`; the CPU engines are not.
bool uses_gpu_model(Strategy strategy) noexcept;

struct Options {
  Strategy strategy = Strategy::Sampling;

  /// Explicit root set. Empty = exact BC (all vertices as sources).
  /// compute() validates the list: a root >= n or a duplicate root (which
  /// would silently double-count its sigma/delta contributions) throws
  /// std::invalid_argument. Order is significant — it fixes the
  /// floating-point association of the accumulation.
  std::vector<graph::VertexId> roots;

  /// Approximate BC with k sampled roots (Bader et al. style): when > 0
  /// and `roots` is empty, k roots are drawn uniformly without
  /// replacement using `seed`, and scores are scaled by n/k so they
  /// estimate the exact values.
  std::uint32_t sample_roots = 0;
  std::uint64_t seed = 42;

  /// Divide each score by 2 (undirected double-count correction, Fig 1).
  bool halve_undirected = false;
  /// Normalize by (n-1)(n-2) after any halving (§II.B).
  bool normalize = false;

  gpusim::DeviceConfig device = gpusim::gtx_titan();
  kernels::HybridParams hybrid;
  kernels::SamplingParams sampling;
  /// Host worker threads. For the CPU-parallel engines this partitions
  /// roots across threads (and changes the bit pattern of the merged
  /// scores). For GPU-model strategies it sets how many simulated blocks
  /// kernels::BlockDriver executes concurrently — scores, counters, and
  /// simulated-cycle metrics are bitwise-identical for every value.
  /// 0 = hardware concurrency.
  std::size_t cpu_threads = 0;

  /// GPU-model strategies only: override the simulated grid size (number
  /// of blocks). 0 = strategy default (device.num_sms; GPU-FAN forces 1).
  /// Changing the block count changes how roots deal round-robin onto
  /// blocks and therefore the floating-point association of the reduction,
  /// so a nonzero value fragments options_signature. hbc::net shards a
  /// query at block granularity with grid_blocks=1 sub-runs and reduces
  /// the partials in block order, reproducing the default grid bitwise.
  std::uint32_t grid_blocks = 0;

  bool collect_per_root_stats = false;

  /// Resilience knobs (docs/resilience.md), grouped so the public surface
  /// stays one nested struct per concern instead of a flat parameter pile.
  struct Resilience {
    /// Deterministic fault injection into the simulated device (GPU-model
    /// strategies only; CPU engines run no simulated device and ignore
    /// it). nullptr = fault-free.
    std::shared_ptr<const gpusim::FaultPlan> fault_plan;
    /// Cooperative cancellation: every engine (GPU-model and CPU) polls
    /// this token at root boundaries and throws util::Cancelled, so a
    /// deadline or a manual cancel takes effect within one root rather
    /// than at run end. Default-constructed = never cancels.
    util::CancelToken cancel;
    /// Launches a root may consume before it is reported as failed (first
    /// try + retries + the recovery-sweep attempt). Minimum 1.
    std::uint32_t max_root_attempts = 3;
    /// Attempt-index offset for FaultPlan queries; bump per whole-run
    /// retry so transient faults deterministically clear (see RunConfig).
    std::uint32_t fault_retry_epoch = 0;
  };
  Resilience resilience;

  /// Trace capture (docs/tracing.md). Diagnostics only: never part of
  /// options_signature, never changes scores.
  struct TraceOptions {
    /// Destination tracer; nullptr = tracing off (the default — engines
    /// then pay one pointer test per would-be event). Non-owning: the
    /// Tracer must outlive the compute() call.
    trace::Tracer* tracer = nullptr;
  };
  TraceOptions trace;
};

struct BCResult {
  std::vector<double> scores;
  Strategy strategy = Strategy::Sampling;
  std::uint64_t roots_processed = 0;
  bool approximate = false;

  /// Simulated device seconds (GPU-model strategies) or measured wall
  /// seconds (CPU strategies).
  double time_seconds = 0.0;
  double wall_seconds = 0.0;
  /// TEPS_BC = m * n / t extrapolated from the processed root count
  /// (exactly the paper's Equation 4 when all roots are processed).
  double teps = 0.0;

  /// Populated for GPU-model strategies.
  kernels::RunMetrics kernel_metrics;
  std::vector<kernels::PerRootStats> per_root;

  /// Fault-injection accounting (GPU-model strategies with a fault_plan).
  /// complete() == false means some roots' contributions are missing from
  /// `scores` — the result is partial, not exact; callers decide whether
  /// to retry, degrade, or surface the failure.
  gpusim::FaultReport faults;
};

BCResult compute(const graph::CSRGraph& g, const Options& options = {});

/// Scores scaled by 1/((n-1)(n-2)); n < 3 leaves scores at zero scale.
std::vector<double> normalized(std::span<const double> scores);

/// Largest-first (vertex, score) pairs; ties broken by smaller vertex id.
std::vector<std::pair<graph::VertexId, double>> top_k(std::span<const double> scores,
                                                      std::size_t k);

/// Draw k distinct roots uniformly from [0, n).
std::vector<graph::VertexId> sample_roots(graph::VertexId n, std::uint32_t k,
                                          std::uint64_t seed);

/// Stable, canonical serialization of every Options field that can change
/// the scores (or reported metrics) compute() produces for a fixed graph.
/// Two Options with equal signatures yield identical BCResults on the same
/// machine, so the string is usable as a cache key component (hbc::service
/// keys its result cache on graph fingerprint + this signature).
///
/// Canonicalization rules:
///  * `roots` is serialized verbatim, NOT sorted: root order changes the
///    floating-point association of the per-root accumulation, so two
///    permutations of the same root set are distinct cache entries.
///  * `cpu_threads` is included only for the CPU-parallel strategies — it
///    changes how roots partition across threads and therefore the bit
///    pattern of the merged scores. For GPU-model strategies it is
///    EXCLUDED even though kernels::BlockDriver now threads them: the
///    driver's fixed-block-order reduction makes scores and simulated
///    metrics bitwise-identical for every thread count, so thread count
///    must not fragment the cache (a hit computed at any thread count is
///    bit-identical to a fresh compute at any other).
///  * `collect_per_root_stats` is excluded: it only adds diagnostics.
std::string options_signature(const Options& options);

/// Monotone process-wide count of core::compute() invocations (all
/// threads). The serving layer's tests assert request coalescing and cache
/// hits by differencing this counter around a workload.
std::uint64_t compute_invocations() noexcept;

}  // namespace hbc::core
