#include "net/chaos.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace hbc::net {

namespace {

// splitmix64 finalizer — the same stand-alone mixer gpusim::FaultPlan
// uses. One evaluation per (seed, spec, stream, ordinal) tuple; no
// sequential state, so fates are independent of event-loop interleaving.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double unit_hash(std::uint64_t seed, std::uint64_t spec, std::uint64_t stream,
                 std::uint64_t ordinal) noexcept {
  const std::uint64_t h =
      mix64(seed ^ mix64(spec + 1) ^ mix64(stream ^ 0x9d3cu) ^ mix64(ordinal ^ 0x51e5u));
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
}

}  // namespace

const char* to_string(ChaosKind kind) noexcept {
  switch (kind) {
    case ChaosKind::Drop: return "drop";
    case ChaosKind::Delay: return "delay";
    case ChaosKind::Duplicate: return "dup";
    case ChaosKind::Truncate: return "trunc";
    case ChaosKind::Flip: return "flip";
    case ChaosKind::Partition: return "partition";
  }
  return "unknown";
}

void ChaosPlan::add(ChaosSpec spec) {
  if (spec.rate < 0.0 || spec.rate > 1.0)
    throw std::invalid_argument("ChaosSpec rate must be in [0, 1]");
  if (spec.delay_ms.count() < 0)
    throw std::invalid_argument("ChaosSpec delay must be >= 0 ms");
  std::sort(spec.frames.begin(), spec.frames.end());
  spec.frames.erase(std::unique(spec.frames.begin(), spec.frames.end()),
                    spec.frames.end());
  specs_.push_back(std::move(spec));
}

bool ChaosPlan::spec_hits(std::size_t spec_index, std::uint64_t stream_id,
                          std::uint64_t ordinal) const noexcept {
  const ChaosSpec& s = specs_[spec_index];
  if (s.kind == ChaosKind::Partition) {
    return ordinal >= s.after && (s.window == 0 || ordinal < s.after + s.window);
  }
  if (std::binary_search(s.frames.begin(), s.frames.end(), ordinal)) return true;
  return s.rate > 0.0 && unit_hash(seed_, spec_index, stream_id, ordinal) < s.rate;
}

std::optional<ChaosPlan::Fate> ChaosPlan::fate(std::uint64_t stream_id,
                                               std::uint64_t ordinal) const noexcept {
  if (specs_.empty()) return std::nullopt;
  counters_.frames.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (!spec_hits(i, stream_id, ordinal)) continue;
    const ChaosSpec& s = specs_[i];
    switch (s.kind) {
      case ChaosKind::Drop:
        counters_.dropped.fetch_add(1, std::memory_order_relaxed);
        break;
      case ChaosKind::Delay:
        counters_.delayed.fetch_add(1, std::memory_order_relaxed);
        break;
      case ChaosKind::Duplicate:
        counters_.duplicated.fetch_add(1, std::memory_order_relaxed);
        break;
      case ChaosKind::Truncate:
        counters_.truncated.fetch_add(1, std::memory_order_relaxed);
        break;
      case ChaosKind::Flip:
        counters_.flipped.fetch_add(1, std::memory_order_relaxed);
        break;
      case ChaosKind::Partition:
        counters_.partitioned.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    return Fate{s.kind, s.delay_ms};
  }
  return std::nullopt;
}

ChaosStats ChaosPlan::stats() const noexcept {
  ChaosStats out;
  out.frames = counters_.frames.load(std::memory_order_relaxed);
  out.dropped = counters_.dropped.load(std::memory_order_relaxed);
  out.delayed = counters_.delayed.load(std::memory_order_relaxed);
  out.duplicated = counters_.duplicated.load(std::memory_order_relaxed);
  out.truncated = counters_.truncated.load(std::memory_order_relaxed);
  out.flipped = counters_.flipped.load(std::memory_order_relaxed);
  out.partitioned = counters_.partitioned.load(std::memory_order_relaxed);
  return out;
}

std::string ChaosPlan::signature() const {
  std::string out = "seed=" + std::to_string(seed_);
  for (const ChaosSpec& s : specs_) {
    out += ';';
    out += to_string(s.kind);
    if (s.kind == ChaosKind::Partition) {
      out += ",after=" + std::to_string(s.after);
      if (s.window != 0) out += ",for=" + std::to_string(s.window);
      continue;
    }
    if (s.rate > 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), ",rate=%.17g", s.rate);
      out += buf;
    }
    if (!s.frames.empty()) {
      out += ",frames=";
      for (std::size_t i = 0; i < s.frames.size(); ++i) {
        if (i) out += ':';
        out += std::to_string(s.frames[i]);
      }
    }
    if (s.kind == ChaosKind::Delay && s.delay_ms != std::chrono::milliseconds{20}) {
      out += ",ms=" + std::to_string(s.delay_ms.count());
    }
  }
  return out;
}

namespace {

[[noreturn]] void bad_spec(std::string_view what, std::string_view token) {
  throw std::invalid_argument("bad chaos spec: " + std::string(what) + " in '" +
                              std::string(token) + "'");
}

std::uint64_t parse_u64(std::string_view text, std::string_view token) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size())
    bad_spec("expected integer", token);
  return value;
}

double parse_rate(std::string_view text, std::string_view token) {
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || !(value >= 0.0) || value > 1.0)
    bad_spec("rate must be a number in [0, 1]", token);
  return value;
}

}  // namespace

ChaosPlan ChaosPlan::parse(const std::string& spec) {
  ChaosPlan plan;
  std::string_view rest = spec;
  bool any = false;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    std::string_view clause = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (clause.empty()) continue;

    if (clause.rfind("seed=", 0) == 0) {
      plan.seed_ = parse_u64(clause.substr(5), clause);
      continue;
    }

    ChaosSpec s;
    std::size_t comma = clause.find(',');
    const std::string_view kind = clause.substr(0, comma);
    if (kind == "drop") s.kind = ChaosKind::Drop;
    else if (kind == "delay") s.kind = ChaosKind::Delay;
    else if (kind == "dup") s.kind = ChaosKind::Duplicate;
    else if (kind == "trunc") s.kind = ChaosKind::Truncate;
    else if (kind == "flip") s.kind = ChaosKind::Flip;
    else if (kind == "partition") s.kind = ChaosKind::Partition;
    else bad_spec("unknown chaos kind", kind);

    bool has_window = false;
    std::string_view opts = comma == std::string_view::npos
                                ? std::string_view{}
                                : clause.substr(comma + 1);
    while (!opts.empty()) {
      comma = opts.find(',');
      const std::string_view opt = opts.substr(0, comma);
      opts = comma == std::string_view::npos ? std::string_view{}
                                             : opts.substr(comma + 1);
      if (opt.rfind("rate=", 0) == 0) s.rate = parse_rate(opt.substr(5), opt);
      else if (opt.rfind("ms=", 0) == 0)
        s.delay_ms = std::chrono::milliseconds(parse_u64(opt.substr(3), opt));
      else if (opt.rfind("after=", 0) == 0) {
        s.after = parse_u64(opt.substr(6), opt);
        has_window = true;
      } else if (opt.rfind("for=", 0) == 0) {
        s.window = parse_u64(opt.substr(4), opt);
        has_window = true;
      } else if (opt.rfind("frames=", 0) == 0) {
        std::string_view list = opt.substr(7);
        if (list.empty()) bad_spec("empty frames list", opt);
        while (!list.empty()) {
          const std::size_t colon = list.find(':');
          s.frames.push_back(parse_u64(list.substr(0, colon), opt));
          list = colon == std::string_view::npos ? std::string_view{}
                                                 : list.substr(colon + 1);
        }
      } else {
        bad_spec("unknown option", opt);
      }
    }
    if (s.kind == ChaosKind::Partition) {
      if (!has_window) bad_spec("partition needs after= (and usually for=)", clause);
      if (s.rate != 0.0 || !s.frames.empty())
        bad_spec("partition takes a window, not rate/frames", clause);
    } else if (s.rate == 0.0 && s.frames.empty()) {
      bad_spec("spec targets nothing (need rate= or frames=)", clause);
    }
    plan.add(std::move(s));
    any = true;
  }
  if (!any)
    throw std::invalid_argument("chaos spec has no chaos clauses: '" + spec + "'");
  return plan;
}

std::shared_ptr<const ChaosPlan> ChaosPlan::parse_shared(const std::string& spec) {
  return std::make_shared<const ChaosPlan>(parse(spec));
}

// --- injector ------------------------------------------------------------

void ChaosInjector::hold(std::chrono::steady_clock::time_point release,
                         std::vector<std::uint8_t> bytes) {
  // Keep stream order: a frame queued behind a held one may not release
  // earlier than its predecessor.
  if (!held_.empty() && release < held_.back().release) {
    release = held_.back().release;
  }
  held_.push_back(Held{release, std::move(bytes)});
}

void ChaosInjector::on_send(std::span<const std::uint8_t> frame,
                            std::vector<std::uint8_t>& out) {
  const std::uint64_t ordinal = ordinal_++;
  const std::optional<ChaosPlan::Fate> fate =
      plan_ ? plan_->fate(stream_, ordinal) : std::nullopt;

  // Fast path: untargeted frame with nothing held in front of it. This is
  // every frame of an armed-but-never-firing plan, so it must cost the
  // same as an unarmed connection apart from the fate hash above — no
  // intermediate copy, no clock read.
  if (!fate && held_.empty()) {
    out.insert(out.end(), frame.begin(), frame.end());
    return;
  }

  const auto now = std::chrono::steady_clock::now();
  std::vector<std::uint8_t> bytes(frame.begin(), frame.end());
  auto emit = [&](std::vector<std::uint8_t> b,
                  std::chrono::steady_clock::time_point release) {
    if (!held_.empty() || release > now) {
      hold(release, std::move(b));
    } else {
      out.insert(out.end(), b.begin(), b.end());
    }
  };

  if (!fate) {
    emit(std::move(bytes), now);
    return;
  }
  switch (fate->kind) {
    case ChaosKind::Drop:
    case ChaosKind::Partition:
      return;  // the frame never leaves
    case ChaosKind::Delay:
      emit(std::move(bytes), now + fate->delay);
      return;
    case ChaosKind::Duplicate: {
      std::vector<std::uint8_t> copy = bytes;
      emit(std::move(bytes), now);
      emit(std::move(copy), now);
      return;
    }
    case ChaosKind::Truncate: {
      // A strict prefix, hash-chosen; the remainder of the stream is now
      // misframed, so the receiver surfaces a typed DecodeStatus and
      // drops the connection.
      if (bytes.size() > 1) {
        const std::uint64_t keep =
            1 + mix64(plan_->seed() ^ stream_ ^ ordinal) % (bytes.size() - 1);
        bytes.resize(keep);
      }
      emit(std::move(bytes), now);
      return;
    }
    case ChaosKind::Flip: {
      // Invert one bit of the magic/version region (first 6 header
      // bytes): always a typed BadMagic/BadVersion at the receiver, never
      // a silently altered payload.
      const std::size_t span = std::min<std::size_t>(bytes.size(), 6);
      if (span > 0) {
        const std::uint64_t bit =
            mix64(plan_->seed() ^ stream_ ^ (ordinal * 0x2545F4914F6CDD1Dull)) %
            (span * 8);
        bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      emit(std::move(bytes), now);
      return;
    }
  }
}

void ChaosInjector::release_due(std::vector<std::uint8_t>& out) {
  if (held_.empty()) return;  // keep the idle pump loop clock-free
  const auto now = std::chrono::steady_clock::now();
  while (!held_.empty() && held_.front().release <= now) {
    out.insert(out.end(), held_.front().bytes.begin(), held_.front().bytes.end());
    held_.pop_front();
  }
}

}  // namespace hbc::net
