#pragma once

// Fine-grained multithreaded Brandes: threads cooperate INSIDE each
// source's traversal (level-synchronous frontier splitting), the CPU
// analogue of GPU-FAN's all-SMs-on-one-root mapping and of the Cray XMT
// implementation of Madduri et al. [26] — the work the paper borrows the
// successor-based dependency stage from.
//
// Contrast with cpu::parallel_brandes (coarse-grained: one source per
// thread, the paper's one-root-per-SM mapping). Fine-grained parallelism
// pays synchronization per BFS level but needs only one working set, so
// it is the right shape when memory is tight or sources are few — the
// same trade GPU-FAN makes on the device.

#include <cstddef>
#include <vector>

#include "cpu/brandes.hpp"
#include "graph/csr.hpp"

namespace hbc::cpu {

struct FineGrainedOptions {
  std::vector<graph::VertexId> sources;  // empty = all vertices
  std::size_t num_threads = 0;           // 0 = hardware concurrency
  /// Polled before each source; throws util::Cancelled within one root.
  util::CancelToken cancel;
};

/// Exact BC with intra-source parallelism. Deterministic: per-level
/// frontier splits are static and sigma/delta updates are made exactly
/// once per edge by the owning thread (successor form).
BrandesResult fine_grained_brandes(const graph::CSRGraph& g,
                                   const FineGrainedOptions& options = {});

}  // namespace hbc::cpu
