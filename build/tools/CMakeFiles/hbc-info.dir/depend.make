# Empty dependencies file for hbc-info.
# This may be replaced when dependencies are built.
