file(REMOVE_RECURSE
  "CMakeFiles/hbc_cpu.dir/cpu/approx.cpp.o"
  "CMakeFiles/hbc_cpu.dir/cpu/approx.cpp.o.d"
  "CMakeFiles/hbc_cpu.dir/cpu/brandes.cpp.o"
  "CMakeFiles/hbc_cpu.dir/cpu/brandes.cpp.o.d"
  "CMakeFiles/hbc_cpu.dir/cpu/dynamic_bc.cpp.o"
  "CMakeFiles/hbc_cpu.dir/cpu/dynamic_bc.cpp.o.d"
  "CMakeFiles/hbc_cpu.dir/cpu/edge_bc.cpp.o"
  "CMakeFiles/hbc_cpu.dir/cpu/edge_bc.cpp.o.d"
  "CMakeFiles/hbc_cpu.dir/cpu/fine_grained.cpp.o"
  "CMakeFiles/hbc_cpu.dir/cpu/fine_grained.cpp.o.d"
  "CMakeFiles/hbc_cpu.dir/cpu/naive.cpp.o"
  "CMakeFiles/hbc_cpu.dir/cpu/naive.cpp.o.d"
  "CMakeFiles/hbc_cpu.dir/cpu/parallel_brandes.cpp.o"
  "CMakeFiles/hbc_cpu.dir/cpu/parallel_brandes.cpp.o.d"
  "CMakeFiles/hbc_cpu.dir/cpu/weighted_brandes.cpp.o"
  "CMakeFiles/hbc_cpu.dir/cpu/weighted_brandes.cpp.o.d"
  "libhbc_cpu.a"
  "libhbc_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbc_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
