// Fault injection and graceful degradation (docs/resilience.md):
//
//   * gpusim::FaultPlan — grammar round-trip, deterministic seeded
//     targeting, transient clearing;
//   * kernels::BlockDriver — the {kind} × {transient, persistent} ×
//     {work-efficient, hybrid, sampling} matrix: transient faults recover
//     to BITWISE-identical scores at any host-thread count, persistent
//     faults surface as FaultReport::failed_roots;
//   * cooperative cancellation — pre-cancelled tokens stop both the
//     GPU-model driver and every CPU engine at a root boundary;
//   * hbc::service — whole-run retry clears stubborn transients, the
//     degradation ladder serves substitutes marked degraded, degraded
//     results never enter the cache, bad requests map to BadRequest,
//     deadlines cancel mid-compute, and stop() cancels in-flight work.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/bc.hpp"
#include "gpusim/faults.hpp"
#include "graph/generators.hpp"
#include "kernels/kernels.hpp"
#include "service/service.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace {

using namespace hbc;
using gpusim::FaultKind;
using gpusim::FaultPlan;
using gpusim::FaultSpec;

graph::CSRGraph driver_graph() {
  return graph::gen::small_world({.num_vertices = 300, .k = 4, .seed = 5});
}

kernels::RunConfig driver_config() {
  kernels::RunConfig config;
  config.device = gpusim::gtx_titan();
  config.hybrid.alpha = 24;
  config.hybrid.beta = 16;
  config.sampling.n_samps = 16;
  config.sampling.min_frontier = 16;
  config.cpu_threads = 3;
  return config;
}

std::shared_ptr<const FaultPlan> one_spec_plan(std::uint64_t seed, FaultSpec spec) {
  FaultPlan plan(seed);
  plan.add(std::move(spec));
  return std::make_shared<const FaultPlan>(std::move(plan));
}

void expect_bitwise_equal(const std::vector<double>& a, const std::vector<double>& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0) << what;
  }
}

// ---------------------------------------------------------------------------
// FaultPlan: grammar, determinism, transient clearing.

TEST(FaultPlanTest, SignatureRoundTripsThroughParse) {
  const std::string spec =
      "seed=9;launch,rate=0.05;timeout,roots=3:17,persistent,after=20000;"
      "ecc,rate=0.25,attempts=2";
  const FaultPlan plan = FaultPlan::parse(spec);
  EXPECT_EQ(plan.seed(), 9u);
  ASSERT_EQ(plan.specs().size(), 3u);
  const FaultPlan reparsed = FaultPlan::parse(plan.signature());
  EXPECT_EQ(reparsed.signature(), plan.signature());
}

TEST(FaultPlanTest, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse(""), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("meltdown,rate=0.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("launch,rate=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("launch"), std::invalid_argument);  // targets nothing
  EXPECT_THROW(FaultPlan::parse("seed=1"), std::invalid_argument);  // no fault clause
  EXPECT_THROW(FaultPlan::parse("launch,roots=1:x"), std::invalid_argument);
}

TEST(FaultPlanTest, SeededTargetingIsDeterministicAndProportionate) {
  const auto plan = one_spec_plan(7, {.kind = FaultKind::KernelLaunch, .rate = 0.1});
  const auto again = one_spec_plan(7, {.kind = FaultKind::KernelLaunch, .rate = 0.1});
  int hits = 0;
  for (std::uint32_t r = 0; r < 300; ++r) {
    EXPECT_EQ(plan->targets_root(r), again->targets_root(r)) << "root " << r;
    hits += plan->targets_root(r) ? 1 : 0;
  }
  // 10% nominal over 300 roots; the hash keeps it in a loose band.
  EXPECT_GE(hits, 15);   // >= 5% — the acceptance floor
  EXPECT_LE(hits, 60);   // <= 20%
  const auto reseeded = one_spec_plan(8, {.kind = FaultKind::KernelLaunch, .rate = 0.1});
  bool any_difference = false;
  for (std::uint32_t r = 0; r < 300 && !any_difference; ++r) {
    any_difference = plan->targets_root(r) != reseeded->targets_root(r);
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlanTest, TransientFaultsClearAfterFailAttempts) {
  const auto plan = one_spec_plan(
      1, {.kind = FaultKind::KernelLaunch, .roots = {42}, .fail_attempts = 2});
  EXPECT_TRUE(plan->launch_fault(42, 0).has_value());
  EXPECT_TRUE(plan->launch_fault(42, 1).has_value());
  EXPECT_FALSE(plan->launch_fault(42, 2).has_value());  // cleared
  EXPECT_FALSE(plan->launch_fault(41, 0).has_value());  // untargeted
  const auto persistent = one_spec_plan(
      1, {.kind = FaultKind::KernelLaunch, .transient = false, .roots = {42}});
  EXPECT_TRUE(persistent->launch_fault(42, 10).has_value());  // never clears
}

// ---------------------------------------------------------------------------
// BlockDriver: the recovery matrix.

struct MatrixKind {
  FaultKind kind;
  const char* name;
  std::uint64_t after_cycles;  // execution-stage kinds need a small budget
};

constexpr MatrixKind kMatrixKinds[] = {
    {FaultKind::KernelLaunch, "launch", 0},
    {FaultKind::DeviceAlloc, "alloc", 0},
    {FaultKind::EccError, "ecc", 500},
    {FaultKind::Timeout, "timeout", 800},
};

constexpr kernels::Strategy kMatrixStrategies[] = {
    kernels::Strategy::WorkEfficient,
    kernels::Strategy::Hybrid,
    kernels::Strategy::Sampling,
};

TEST(DriverResilienceTest, TransientFaultsRecoverBitwiseIdentical) {
  const auto g = driver_graph();
  for (const kernels::Strategy strategy : kMatrixStrategies) {
    kernels::RunConfig clean = driver_config();
    const kernels::RunResult baseline = kernels::run_strategy(strategy, g, clean);
    ASSERT_TRUE(baseline.faults.clean());

    for (const MatrixKind& mk : kMatrixKinds) {
      const std::string what =
          std::string(kernels::to_string(strategy)) + "/" + mk.name;
      kernels::RunConfig faulty = driver_config();
      faulty.fault_plan = one_spec_plan(
          7, {.kind = mk.kind, .rate = 0.1, .after_cycles = mk.after_cycles});
      const kernels::RunResult r = kernels::run_strategy(strategy, g, faulty);

      // >= 5% of the 300 roots faulted, every one recovered, and the
      // scores are indistinguishable from the fault-free run.
      EXPECT_GE(r.faults.faults_injected, 15u) << what;
      EXPECT_GE(r.faults.retries, 1u) << what;
      EXPECT_TRUE(r.faults.complete()) << what;
      expect_bitwise_equal(r.bc, baseline.bc, what);
    }
  }
}

TEST(DriverResilienceTest, RecoverySweepRescuesRootsThatExhaustInBlockRetries) {
  // fail_attempts=2 with the default budget (3 attempts: 2 in-block + 1
  // sweep) forces every targeted root through the reassignment lane.
  const auto g = driver_graph();
  kernels::RunConfig clean = driver_config();
  const kernels::RunResult baseline =
      kernels::run_strategy(kernels::Strategy::WorkEfficient, g, clean);

  kernels::RunConfig faulty = driver_config();
  faulty.fault_plan = one_spec_plan(
      7, {.kind = FaultKind::KernelLaunch, .rate = 0.1, .fail_attempts = 2});
  const kernels::RunResult r =
      kernels::run_strategy(kernels::Strategy::WorkEfficient, g, faulty);
  EXPECT_GE(r.faults.rescued_roots, 1u);
  EXPECT_TRUE(r.faults.complete());
  // A rescued root's delta joins its block's partial AFTER the block's
  // other roots, so sweep rescues match the clean run up to FP
  // re-association, not bitwise (in-block retries ARE bitwise — see
  // TransientFaultsRecoverBitwiseIdentical). Reproducibility across
  // thread counts is covered by RecoveryIsIdenticalAcrossHostThreadCounts.
  ASSERT_EQ(r.bc.size(), baseline.bc.size());
  for (std::size_t v = 0; v < r.bc.size(); ++v) {
    EXPECT_NEAR(r.bc[v], baseline.bc[v], 1e-9 * (1.0 + std::abs(baseline.bc[v])))
        << "vertex " << v;
  }
}

TEST(DriverResilienceTest, RecoveryIsIdenticalAcrossHostThreadCounts) {
  const auto g = driver_graph();
  kernels::RunConfig base = driver_config();
  base.fault_plan = one_spec_plan(
      7, {.kind = FaultKind::EccError, .rate = 0.1, .fail_attempts = 2,
          .after_cycles = 500});

  base.cpu_threads = 1;
  const kernels::RunResult serial =
      kernels::run_strategy(kernels::Strategy::Hybrid, g, base);
  ASSERT_TRUE(serial.faults.complete());
  ASSERT_GE(serial.faults.faults_injected, 1u);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{5}}) {
    kernels::RunConfig cfg = base;
    cfg.cpu_threads = threads;
    const kernels::RunResult r =
        kernels::run_strategy(kernels::Strategy::Hybrid, g, cfg);
    const std::string what = "threads=" + std::to_string(threads);
    expect_bitwise_equal(r.bc, serial.bc, what);
    EXPECT_EQ(r.faults.faults_injected, serial.faults.faults_injected) << what;
    EXPECT_EQ(r.faults.retries, serial.faults.retries) << what;
    EXPECT_EQ(r.faults.rescued_roots, serial.faults.rescued_roots) << what;
  }
}

TEST(DriverResilienceTest, PersistentFaultsSurfaceAsFailedRoots) {
  const auto g = driver_graph();
  kernels::RunConfig clean = driver_config();
  const kernels::RunResult baseline =
      kernels::run_strategy(kernels::Strategy::WorkEfficient, g, clean);

  kernels::RunConfig faulty = driver_config();
  const auto plan = one_spec_plan(
      7, {.kind = FaultKind::DeviceAlloc, .transient = false, .rate = 0.1});
  faulty.fault_plan = plan;
  const kernels::RunResult r =
      kernels::run_strategy(kernels::Strategy::WorkEfficient, g, faulty);

  ASSERT_FALSE(r.faults.complete());
  EXPECT_FALSE(r.faults.all_failures_transient());
  std::uint32_t previous = 0;
  for (const gpusim::RootFailure& f : r.faults.failed_roots) {
    EXPECT_TRUE(plan->targets_root(f.root));
    EXPECT_EQ(f.kind, FaultKind::DeviceAlloc);
    EXPECT_FALSE(f.transient);
    EXPECT_GE(f.attempts, 1u);
    if (&f != r.faults.failed_roots.data()) {
      EXPECT_GT(f.root, previous);
    }
    previous = f.root;
  }
  // The failed roots' contributions are genuinely missing.
  EXPECT_NE(std::memcmp(r.bc.data(), baseline.bc.data(),
                        baseline.bc.size() * sizeof(double)),
            0);
  EXPECT_EQ(r.metrics.counters.roots_processed +
                static_cast<std::uint64_t>(r.faults.failed_roots.size()),
            static_cast<std::uint64_t>(g.num_vertices()));
}

// ---------------------------------------------------------------------------
// Cooperative cancellation: driver and CPU engines.

TEST(CancelTest, PreCancelledTokenStopsEveryEngine) {
  const auto g = graph::gen::small_world({.num_vertices = 128, .k = 3, .seed = 1});
  util::CancelSource src;
  src.cancel();

  kernels::RunConfig kc = driver_config();
  kc.cancel = src.token();
  EXPECT_THROW(kernels::run_strategy(kernels::Strategy::WorkEfficient, g, kc),
               util::Cancelled);

  for (const core::Strategy s : {core::Strategy::CpuSerial, core::Strategy::CpuParallel,
                                 core::Strategy::CpuFineGrained}) {
    core::Options o;
    o.strategy = s;
    o.resilience.cancel = src.token();
    EXPECT_THROW(core::compute(g, o), util::Cancelled) << core::to_string(s);
  }
}

TEST(CancelTest, DeadlineSourceLatchesAndStampsTimeToCancel) {
  util::CancelSource src = util::CancelSource::with_timeout(std::chrono::milliseconds(1));
  const util::CancelToken token = src.token();
  EXPECT_TRUE(token.can_cancel());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(token.state(), util::CancelReason::Deadline);
  EXPECT_GT(src.ms_since_cancel(), 0.0);
  EXPECT_THROW(token.check(), util::Cancelled);
}

// ---------------------------------------------------------------------------
// hbc::service: retry, ladder, cache hygiene, cancellation.

graph::CSRGraph service_graph() {
  return graph::gen::small_world({.num_vertices = 256, .k = 3, .seed = 1});
}

graph::CSRGraph slow_graph() {
  // Big enough that a full exact run takes far longer than the test
  // deadlines below, so cancellation always lands mid-compute.
  return graph::gen::small_world({.num_vertices = 4000, .k = 6, .seed = 2});
}

core::Options gpu_options(core::Strategy strategy = core::Strategy::WorkEfficient) {
  core::Options o;
  o.strategy = strategy;
  o.hybrid.alpha = 24;
  o.hybrid.beta = 16;
  o.sampling.n_samps = 16;
  o.sampling.min_frontier = 16;
  return o;
}

TEST(ServiceResilienceTest, TransientFaultsRecoverAndTheResultIsCached) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  service::BcService svc(cfg);
  const auto g = service_graph();
  svc.load_graph("g", g);

  core::Options opts = gpu_options();
  opts.resilience.fault_plan =
      one_spec_plan(3, {.kind = FaultKind::KernelLaunch, .rate = 0.1});
  const service::Response r = svc.query({.graph_id = "g", .options = opts});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.degraded);
  EXPECT_TRUE(r.result->faults.complete());
  EXPECT_GE(svc.metrics().device_faults, 1u);
  EXPECT_EQ(svc.metrics().degraded, 0u);

  // Fully recovered == bitwise-identical to a fault-free run.
  core::Options clean = gpu_options();
  const core::BCResult fresh = core::compute(g, clean);
  expect_bitwise_equal(r.result->scores, fresh.scores, "recovered vs clean");

  const service::Response warm = svc.query({.graph_id = "g", .options = opts});
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.from_cache);  // complete recoveries are cacheable
}

TEST(ServiceResilienceTest, WholeRunRetryClearsStubbornTransientFaults) {
  // fail_attempts=3 exhausts the driver's whole budget (2 in-block + 1
  // sweep) at epoch 0; the service's retry bumps the epoch, which shifts
  // the plan's attempt indices past fail_attempts — deterministic clear.
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_compute_retries = 2;
  cfg.retry_backoff = std::chrono::milliseconds(1);
  service::BcService svc(cfg);
  const auto g = service_graph();
  svc.load_graph("g", g);

  core::Options opts = gpu_options();
  opts.resilience.fault_plan = one_spec_plan(
      3, {.kind = FaultKind::KernelLaunch, .rate = 0.1, .fail_attempts = 3});
  const service::Response r = svc.query({.graph_id = "g", .options = opts});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.degraded);
  EXPECT_GE(svc.metrics().compute_retries, 1u);

  const core::BCResult fresh = core::compute(g, gpu_options());
  expect_bitwise_equal(r.result->scores, fresh.scores, "retried vs clean");
}

TEST(ServiceResilienceTest, PersistentFaultsDescendTheLadderToCpuExact) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  service::BcService svc(cfg);
  svc.load_graph("g", service_graph());

  core::Options opts = gpu_options(core::Strategy::Hybrid);
  opts.resilience.fault_plan = one_spec_plan(
      11, {.kind = FaultKind::DeviceAlloc, .transient = false, .rate = 0.2});
  const service::Response r = svc.query({.graph_id = "g", .options = opts});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.degraded);
  EXPECT_FALSE(r.from_cache);
  // The substitute is the exact CPU rung, not the requested strategy.
  EXPECT_EQ(r.result->strategy, core::Strategy::CpuParallel);
  const service::MetricsSnapshot m = svc.metrics();
  EXPECT_GE(m.fallbacks, 1u);
  EXPECT_GE(m.degraded, 1u);
}

TEST(ServiceResilienceTest, DegradedResultsAreNeverCached) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  service::BcService svc(cfg);
  svc.load_graph("g", service_graph());

  core::Options opts = gpu_options(core::Strategy::Hybrid);
  opts.resilience.fault_plan = one_spec_plan(
      11, {.kind = FaultKind::DeviceAlloc, .transient = false, .rate = 0.2});
  const service::Request req{.graph_id = "g", .options = opts};

  const service::Response first = svc.query(req);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.degraded);
  EXPECT_EQ(svc.metrics().cache_entries, 0u);

  // An identical request recomputes — it must get a fresh shot at the
  // real answer, not the substitute.
  const service::Response second = svc.query(req);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.degraded);
  EXPECT_FALSE(second.from_cache);
  EXPECT_EQ(svc.metrics().computed, 2u);
}

TEST(ServiceResilienceTest, LadderDisabledServesThePartialResult) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.enable_fallback = false;
  service::BcService svc(cfg);
  svc.load_graph("g", service_graph());

  core::Options opts = gpu_options();
  opts.resilience.fault_plan = one_spec_plan(
      11, {.kind = FaultKind::Timeout, .transient = false, .rate = 0.1,
           .after_cycles = 500});
  const service::Response r = svc.query({.graph_id = "g", .options = opts});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.degraded);
  // Same strategy, but with the failed roots' contributions missing and
  // itemized in the report.
  EXPECT_EQ(r.result->strategy, core::Strategy::WorkEfficient);
  EXPECT_FALSE(r.result->faults.failed_roots.empty());
  EXPECT_EQ(svc.metrics().fallbacks, 0u);
  EXPECT_EQ(svc.metrics().cache_entries, 0u);
}

TEST(ServiceResilienceTest, InvalidRootsMapToBadRequest) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  service::BcService svc(cfg);
  svc.load_graph("g", service_graph());
  core::Options opts;
  opts.strategy = core::Strategy::CpuSerial;
  opts.roots = {9999};  // out of range for 256 vertices
  const service::Response r = svc.query({.graph_id = "g", .options = opts});
  EXPECT_EQ(r.status, service::QueryStatus::BadRequest);
  EXPECT_FALSE(r.error.empty());
  EXPECT_STREQ(service::to_string(r.status), "bad-request");
}

TEST(ServiceResilienceTest, DeadlineCancelsMidCompute) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  service::BcService svc(cfg);
  svc.load_graph("slow", slow_graph());

  core::Options opts;
  opts.strategy = core::Strategy::CpuSerial;  // checks cancel once per root
  service::Request req{.graph_id = "slow", .options = opts};
  req.timeout = std::chrono::milliseconds(50);

  util::Timer timer;
  const service::Response r = svc.query(req);
  EXPECT_EQ(r.status, service::QueryStatus::DeadlineExceeded);
  // Cancellation took effect within a root boundary, not after the full
  // multi-hundred-ms run.
  EXPECT_LT(timer.elapsed_ms(), 2000.0);

  const service::MetricsSnapshot m = svc.metrics();
  EXPECT_GE(m.cancellations, 1u);
  EXPECT_GE(m.time_to_cancel_max_ms, 0.0);
  EXPECT_LT(m.time_to_cancel_max_ms, 1000.0);
}

TEST(ServiceResilienceTest, StopCancelsInflightAndDrainsTheQueue) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  auto svc = std::make_unique<service::BcService>(cfg);
  svc->load_graph("slow", slow_graph());

  core::Options opts;
  opts.strategy = core::Strategy::CpuSerial;
  service::Ticket inflight = svc->submit({.graph_id = "slow", .options = opts});
  // Let the only worker actually start computing, then queue one more.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  core::Options queued = opts;
  queued.seed = 99;
  queued.sample_roots = 100;
  service::Ticket parked = svc->submit({.graph_id = "slow", .options = queued});

  util::Timer timer;
  svc->stop();
  // stop() joined the workers, so the in-flight run was cancelled at a
  // root boundary rather than running to completion (~seconds).
  EXPECT_LT(timer.elapsed_ms(), 2000.0);

  EXPECT_EQ(svc->wait(inflight).status, service::QueryStatus::ServiceStopped);
  EXPECT_EQ(svc->wait(parked).status, service::QueryStatus::ServiceStopped);
  EXPECT_GE(svc->metrics().cancellations, 1u);
}

}  // namespace
