#pragma once

// Dynamic betweenness centrality: maintain exact BC scores across edge
// insertions and deletions without full recomputation. The paper's
// reference [27] (McLaughlin & Bader, IPDPSW'14) studies exactly this
// workload class ("Revisiting Edge and Node Parallelism for Dynamic GPU
// Graph Analytics"); the technique here is the standard affected-source
// decomposition:
//
//   For an update touching edge {u, v}, a source s can only change any
//   shortest-path structure if its BFS levels of u and v differ, i.e.
//   |d_s(u) - d_s(v)| >= 1 — otherwise {u,v} is a same-level edge that
//   lies on no shortest path before or after the update. Distances from
//   s to u and to v for all s are two BFS runs (from u and from v, using
//   undirected symmetry), so the affected-source set costs O(n + m) to
//   find. Each affected source's old dependency contribution is
//   subtracted and its new one added (two single-source Brandes stages).
//
// Worst case this degenerates to a full recomputation (inserting a
// bridge affects every source); on incremental social-network updates the
// affected fraction is typically small — the update_stats() counters let
// callers observe the ratio.
//
// Undirected graphs ONLY. The affected-source test reads d(s, u) for all
// s off a single BFS *from* u, which is d(u, s) — equal to d(s, u) only
// under undirected symmetry. On a directed graph that substitution is
// wrong (reverse-reachability differs from forward), so the pruning
// would silently skip genuinely affected sources and corrupt the
// maintained scores. The constructor therefore rejects directed graphs
// with std::invalid_argument instead of producing wrong answers; use a
// full recompute per update for directed dynamic graphs. The batched
// engine (dyn::IncrementalBC) inherits the same restriction.

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace hbc::cpu {

class DynamicBC {
 public:
  /// Builds initial scores with a full Brandes sweep (O(mn)). Throws
  /// std::invalid_argument if `initial` is directed (see header comment).
  explicit DynamicBC(graph::CSRGraph initial);

  const graph::CSRGraph& graph() const noexcept { return graph_; }
  const std::vector<double>& scores() const noexcept { return bc_; }

  /// Insert undirected edge {u, v}. Returns false (no-op) if the edge
  /// already exists or u == v; throws std::out_of_range on bad ids.
  bool insert_edge(graph::VertexId u, graph::VertexId v);

  /// Remove undirected edge {u, v}. Returns false if absent.
  bool remove_edge(graph::VertexId u, graph::VertexId v);

  struct UpdateStats {
    std::uint64_t updates = 0;
    std::uint64_t sources_recomputed = 0;  // across all updates
    std::uint64_t sources_skipped = 0;     // pruned by the level test
  };
  const UpdateStats& update_stats() const noexcept { return stats_; }

 private:
  void apply_update(graph::VertexId u, graph::VertexId v,
                    const graph::CSRGraph& before, const graph::CSRGraph& after);
  static graph::CSRGraph with_edge(const graph::CSRGraph& g, graph::VertexId u,
                                   graph::VertexId v, bool present);

  graph::CSRGraph graph_;
  std::vector<double> bc_;
  UpdateStats stats_;
};

}  // namespace hbc::cpu
