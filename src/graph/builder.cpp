#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/prefix_sum.hpp"

namespace hbc::graph {

GraphBuilder::GraphBuilder(VertexId num_vertices, BuildOptions options)
    : num_vertices_(num_vertices), options_(options) {}

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  if (u >= num_vertices_ || v >= num_vertices_) {
    throw std::out_of_range("GraphBuilder::add_edge: endpoint out of range");
  }
  edges_.push_back({u, v});
}

void GraphBuilder::add_edges(std::span<const Edge> edges) {
  edges_.reserve(edges_.size() + edges.size());
  for (const Edge& e : edges) add_edge(e.u, e.v);
}

CSRGraph GraphBuilder::build() {
  EdgeList edges = std::move(edges_);
  edges_.clear();

  if (options_.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.u == e.v; });
  }
  if (options_.symmetrize) {
    const std::size_t original = edges.size();
    edges.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
      edges.push_back({edges[i].v, edges[i].u});
    }
  }
  if (options_.dedup || options_.sort_neighbors) {
    std::sort(edges.begin(), edges.end());
  }
  if (options_.dedup) {
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  std::vector<EdgeOffset> counts(num_vertices_, 0);
  for (const Edge& e : edges) ++counts[e.u];
  std::vector<EdgeOffset> offsets =
      util::offsets_from_counts(std::span<const EdgeOffset>(counts));

  std::vector<VertexId> cols(edges.size());
  // Edges are sorted by (u, v) when dedup/sort is on, so a single linear
  // placement preserves sorted adjacency; otherwise use a cursor copy.
  std::vector<EdgeOffset> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges) {
    cols[cursor[e.u]++] = e.v;
  }

  return CSRGraph(std::move(offsets), std::move(cols), options_.symmetrize);
}

CSRGraph build_csr(VertexId num_vertices, std::span<const Edge> edges, BuildOptions options) {
  GraphBuilder b(num_vertices, options);
  b.add_edges(edges);
  return b.build();
}

}  // namespace hbc::graph
