#pragma once

// hbc.hpp — the library's single public entry point.
//
//   #include "hbc.hpp"
//
//   auto g = hbc::graph::gen::scale_free({.num_vertices = 1 << 14});
//   hbc::core::Options opt;
//   opt.strategy = hbc::core::Strategy::Hybrid;     // paper Algorithm 4
//   hbc::core::BCResult r = hbc::core::compute(g, opt);
//   for (auto [v, score] : hbc::core::top_k(r.scores, 10)) { ... }
//
// Applications and examples include this one header instead of reaching
// into the per-module headers; the module layout underneath (core/,
// graph/, kernels/, gpusim/, service/, trace/, cpu/, dist/, util/) is an
// implementation detail that may be rearranged between releases.
//
// What you get, by namespace:
//   hbc::core     compute(), Options, BCResult, top_k, strategy names
//   hbc::graph    CSRGraph, builders, generators, file I/O, transforms
//   hbc::kernels  the paper's GPU-model engines and their knobs
//   hbc::gpusim   the simulated device: DeviceConfig, FaultPlan, memory
//   hbc::service  BcService — concurrent query serving with caching
//   hbc::net      sharded multi-process serving: Coordinator, Worker, wire
//   hbc::dyn      epoch-versioned mutable graphs + batched incremental BC
//   hbc::trace    Tracer/Sink span capture + Chrome JSON export
//   hbc::cpu      Brandes baselines, weighted/approx/edge variants
//   hbc::dist     multi-device scaling model
//   hbc::util     cancellation, RNG, timers, stats

// Graph construction, generation, and I/O — including the storage-policy
// layer (heap / mmap'd .hbcg / varint-compressed; docs/storage.md).
#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/storage/compressed.hpp"
#include "graph/storage/heap.hpp"
#include "graph/storage/mmap_csr.hpp"
#include "graph/storage/storage.hpp"
#include "graph/transforms.hpp"
#include "graph/types.hpp"

// The one-call public API and its reporting helpers.
#include "core/approx.hpp"
#include "core/bc.hpp"
#include "core/report.hpp"
#include "core/teps.hpp"

// GPU-model engines and the simulated device they run on.
#include "gpusim/config.hpp"
#include "gpusim/device.hpp"
#include "gpusim/faults.hpp"
#include "gpusim/memory.hpp"
#include "kernels/kernels.hpp"
#include "kernels/weighted.hpp"

// CPU reference and specialty engines.
#include "cpu/approx.hpp"
#include "cpu/brandes.hpp"
#include "cpu/dynamic_bc.hpp"
#include "cpu/edge_bc.hpp"
#include "cpu/fine_grained.hpp"
#include "cpu/parallel_brandes.hpp"
#include "cpu/weighted_brandes.hpp"

// Dynamic graphs: versioned mutation + batched incremental BC.
#include "dyn/incremental_bc.hpp"
#include "dyn/versioned_graph.hpp"

// Serving, scaling, and observability layers.
#include "dist/cluster.hpp"
#include "net/chaos.hpp"
#include "net/coordinator.hpp"
#include "net/snapshot.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "net/worker.hpp"
#include "service/progressive.hpp"
#include "service/service.hpp"
#include "trace/check.hpp"
#include "trace/trace.hpp"

// Cross-cutting utilities that appear in public signatures.
#include "util/backoff.hpp"
#include "util/cancel.hpp"
#include "util/mmap_file.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
