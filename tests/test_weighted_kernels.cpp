// Weighted GPU-model kernels (Bellman-Ford edge-parallel vs Davidson
// near-far): correctness against the Dijkstra oracle, engine agreement,
// and the work-efficiency trade-off the paper projects onto SSSP (§VI).

#include <gtest/gtest.h>

#include <cmath>

#include "cpu/weighted_brandes.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "kernels/weighted.hpp"

namespace {

using namespace hbc;
using graph::CSRGraph;
using kernels::WeightedConfig;
using kernels::WeightedStrategy;

std::vector<graph::VertexId> bench_roots(const CSRGraph& g, std::uint32_t k) {
  std::vector<graph::VertexId> roots(std::min<std::uint32_t>(k, g.num_vertices()));
  for (std::uint32_t i = 0; i < roots.size(); ++i) {
    roots[i] = static_cast<graph::VertexId>(
        (static_cast<std::uint64_t>(i) * g.num_vertices()) / roots.size());
  }
  return roots;
}

WeightedConfig make_config(WeightedStrategy strategy) {
  WeightedConfig c;
  c.base.device = gpusim::gtx_titan();
  c.strategy = strategy;
  return c;
}

void expect_matches_oracle(const CSRGraph& g, const cpu::WeightArray& w,
                           WeightedStrategy strategy, double tol = 1e-7) {
  const auto oracle = cpu::weighted_brandes(g, w).bc;
  const auto r = kernels::run_weighted_bc(g, w, make_config(strategy));
  ASSERT_EQ(r.bc.size(), oracle.size());
  for (std::size_t v = 0; v < oracle.size(); ++v) {
    EXPECT_NEAR(r.bc[v], oracle[v], tol * std::max(1.0, oracle[v]))
        << kernels::to_string(strategy) << " vertex " << v;
  }
}

class WeightedKernelOracle
    : public testing::TestWithParam<std::tuple<const char*, WeightedStrategy>> {};

TEST_P(WeightedKernelOracle, MatchesDijkstraBrandes) {
  const auto& [family, strategy] = GetParam();
  const CSRGraph g = graph::gen::family_by_name(family).make(8, 3);
  const auto w = cpu::random_symmetric_weights(g, 1.0, 5.0, 17);
  expect_matches_oracle(g, w, strategy);
}

INSTANTIATE_TEST_SUITE_P(
    Families, WeightedKernelOracle,
    testing::Combine(testing::Values("road", "smallworld", "kron", "delaunay",
                                     "scalefree"),
                     testing::Values(WeightedStrategy::BellmanFordEdgeParallel,
                                     WeightedStrategy::NearFarWorkEfficient)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             (std::get<1>(info.param) == WeightedStrategy::BellmanFordEdgeParallel
                  ? "bellman_ford"
                  : "near_far");
    });

TEST(WeightedKernels, UnitWeightsMatchUnweightedBC) {
  const CSRGraph g = graph::gen::small_world({.num_vertices = 200, .k = 3, .seed = 2});
  const cpu::WeightArray w(g.num_directed_edges(), 1.0);
  expect_matches_oracle(g, w, WeightedStrategy::NearFarWorkEfficient);
}

TEST(WeightedKernels, EnginesAgreeBitForBit) {
  const CSRGraph g = graph::gen::scale_free({.num_vertices = 150, .attach = 2, .seed = 6});
  const auto w = cpu::random_symmetric_weights(g, 0.5, 3.0, 4);
  const auto bf = kernels::run_weighted_bc(
      g, w, make_config(WeightedStrategy::BellmanFordEdgeParallel));
  const auto nf = kernels::run_weighted_bc(
      g, w, make_config(WeightedStrategy::NearFarWorkEfficient));
  ASSERT_EQ(bf.bc.size(), nf.bc.size());
  for (std::size_t v = 0; v < bf.bc.size(); ++v) {
    EXPECT_NEAR(bf.bc[v], nf.bc[v], 1e-9 * std::max(1.0, bf.bc[v]));
  }
}

TEST(WeightedKernels, NearFarDoesLessWorkOnHighDiameter) {
  // Bellman-Ford scans all m edges per round and a road network needs
  // many rounds; near-far touches only active vertices — the §VI
  // trade-off carries over from the unweighted story.
  // Needs enough edges per Bellman-Ford round for the scan cost to
  // dominate the per-phase overheads (same scale effect as the BC
  // kernels; see EXPERIMENTS.md caveat 1).
  const CSRGraph g = graph::gen::road({.scale = 14, .seed = 1});
  const auto w = cpu::random_symmetric_weights(g, 1.0, 2.0, 9);
  WeightedConfig c = make_config(WeightedStrategy::BellmanFordEdgeParallel);
  c.base.roots = {0, 100};
  const auto bf = kernels::run_weighted_bc(g, w, c);
  c.strategy = WeightedStrategy::NearFarWorkEfficient;
  const auto nf = kernels::run_weighted_bc(g, w, c);
  EXPECT_LT(nf.metrics.counters.edges_inspected,
            bf.metrics.counters.edges_inspected / 4);
  EXPECT_LT(nf.metrics.sim_seconds, bf.metrics.sim_seconds);
}

TEST(WeightedKernels, RootSubset) {
  const CSRGraph g = graph::gen::figure1_graph();
  const cpu::WeightArray w(g.num_directed_edges(), 2.0);
  WeightedConfig c = make_config(WeightedStrategy::NearFarWorkEfficient);
  c.base.roots = {3, 4};
  const auto r = kernels::run_weighted_bc(g, w, c);
  const auto oracle = cpu::weighted_brandes(g, w, {.sources = {3, 4}}).bc;
  for (std::size_t v = 0; v < oracle.size(); ++v) {
    EXPECT_NEAR(r.bc[v], oracle[v], 1e-9 * std::max(1.0, oracle[v]));
  }
  EXPECT_EQ(r.metrics.counters.roots_processed, 2u);
}

TEST(WeightedKernels, RejectsBadWeights) {
  const CSRGraph g = graph::gen::figure1_graph();
  const WeightedConfig c = make_config(WeightedStrategy::NearFarWorkEfficient);
  cpu::WeightArray wrong_size(3, 1.0);
  EXPECT_THROW(kernels::run_weighted_bc(g, wrong_size, c), std::invalid_argument);
  cpu::WeightArray with_zero(g.num_directed_edges(), 1.0);
  with_zero[1] = 0.0;
  EXPECT_THROW(kernels::run_weighted_bc(g, with_zero, c), std::invalid_argument);
}

TEST(WeightedKernels, DisconnectedGraphHandled) {
  const CSRGraph g = graph::build_csr(
      5, std::vector<graph::Edge>{{0, 1}, {1, 2}});
  const cpu::WeightArray w(g.num_directed_edges(), 1.5);
  for (const auto strategy : {WeightedStrategy::BellmanFordEdgeParallel,
                              WeightedStrategy::NearFarWorkEfficient}) {
    expect_matches_oracle(g, w, strategy);
  }
}

TEST(WeightedKernels, CustomDeltaStillCorrect) {
  const CSRGraph g = graph::gen::small_world({.num_vertices = 120, .k = 3, .seed = 8});
  const auto w = cpu::random_symmetric_weights(g, 1.0, 10.0, 2);
  const auto oracle = cpu::weighted_brandes(g, w).bc;
  for (double delta : {0.5, 2.0, 50.0}) {
    WeightedConfig c = make_config(WeightedStrategy::NearFarWorkEfficient);
    c.near_far_delta = delta;
    const auto r = kernels::run_weighted_bc(g, w, c);
    for (std::size_t v = 0; v < oracle.size(); ++v) {
      EXPECT_NEAR(r.bc[v], oracle[v], 1e-7 * std::max(1.0, oracle[v]))
          << "delta " << delta;
    }
  }
}

TEST(WeightedSampling, ChoosesBellmanFordOnSmallWorld) {
  const CSRGraph g = graph::gen::small_world({.num_vertices = 1 << 12, .k = 5, .seed = 1});
  const auto w = cpu::random_symmetric_weights(g, 1.0, 3.0, 5);
  WeightedConfig c = make_config(WeightedStrategy::Sampling);
  c.base.roots = bench_roots(g, 32);
  c.base.sampling.n_samps = 8;
  const auto r = kernels::run_weighted_bc(g, w, c);
  EXPECT_TRUE(r.sampling_chose_bellman_ford);
  EXPECT_GT(r.sampling_median_phases, 0.0);
}

TEST(WeightedSampling, ChoosesNearFarOnRoad) {
  const CSRGraph g = graph::gen::road({.scale = 12, .seed = 1});
  const auto w = cpu::random_symmetric_weights(g, 1.0, 3.0, 5);
  WeightedConfig c = make_config(WeightedStrategy::Sampling);
  c.base.roots = bench_roots(g, 16);
  c.base.sampling.n_samps = 4;
  const auto r = kernels::run_weighted_bc(g, w, c);
  EXPECT_FALSE(r.sampling_chose_bellman_ford);
}

TEST(WeightedSampling, MatchesOracle) {
  const CSRGraph g = graph::gen::scale_free({.num_vertices = 200, .attach = 2, .seed = 9});
  const auto w = cpu::random_symmetric_weights(g, 1.0, 2.0, 11);
  WeightedConfig c = make_config(WeightedStrategy::Sampling);
  c.base.sampling.n_samps = 16;
  const auto r = kernels::run_weighted_bc(g, w, c);
  const auto oracle = cpu::weighted_brandes(g, w).bc;
  for (std::size_t v = 0; v < oracle.size(); ++v) {
    EXPECT_NEAR(r.bc[v], oracle[v], 1e-7 * std::max(1.0, oracle[v]));
  }
}

TEST(WeightedKernels, ReportsSsspRounds) {
  const CSRGraph g = graph::gen::road({.scale = 10, .seed = 1});
  const auto w = cpu::random_symmetric_weights(g, 1.0, 2.0, 3);
  WeightedConfig c = make_config(WeightedStrategy::BellmanFordEdgeParallel);
  c.base.roots = {0};
  const auto r = kernels::run_weighted_bc(g, w, c);
  // Bellman-Ford needs at least (hop diameter from root) rounds.
  EXPECT_GT(r.sssp_rounds, 10u);
}

}  // namespace
