#include "graph/storage/mmap_csr.hpp"

namespace hbc::graph::storage {

MappedStorage::MappedStorage(std::shared_ptr<const util::MmapFile> file,
                             const FileHeader& header, bool validate)
    : Storage(header.undirected(), Residency::kMapped), file_(std::move(file)) {
  // FileHeader::parse already bounds-checked every section against the
  // file size and kSectionAlign keeps both arrays suitably aligned for
  // their element types.
  const std::uint8_t* base = file_->data();
  rows_ = {reinterpret_cast<const EdgeOffset*>(base + header.row_section),
           static_cast<std::size_t>(header.num_vertices + 1)};
  cols_ = {reinterpret_cast<const VertexId*>(base + header.adj_section),
           static_cast<std::size_t>(header.num_edges)};
  m_ = static_cast<EdgeOffset>(header.num_edges);

  if (validate) {
    validate_csr(rows_, cols_, "hbcg '" + file_->path() + "'",
                 /*as_format_error=*/true);
  }
}

std::uint64_t MappedStorage::compute_fingerprint() const {
  std::uint64_t h = fingerprint_prefix();
  fnv_mix(h, cols_.data(), cols_.size() * sizeof(VertexId));
  return h;
}

}  // namespace hbc::graph::storage
