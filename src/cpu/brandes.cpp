#include "cpu/brandes.hpp"

#include <algorithm>

#include "graph/types.hpp"

namespace hbc::cpu {

using graph::CSRGraph;
using graph::kInfDistance;
using graph::VertexId;

void brandes_single_source(const CSRGraph& g, VertexId s, std::span<double> bc,
                           BrandesResult* stats) {
  const VertexId n = g.num_vertices();

  // Per-source working set; allocation cost is irrelevant for the oracle
  // (kernels manage reuse explicitly — see kernels/bc_state.hpp).
  std::vector<std::uint32_t> d(n, kInfDistance);
  std::vector<double> sigma(n, 0.0);
  std::vector<double> delta(n, 0.0);
  std::vector<VertexId> order;  // BFS visit order (the stack S)
  order.reserve(n);

  d[s] = 0;
  sigma[s] = 1.0;
  order.push_back(s);

  // Forward: BFS with path counting.
  std::size_t head = 0;
  std::uint64_t traversed = 0;
  while (head < order.size()) {
    const VertexId v = order[head++];
    const std::uint32_t dv = d[v];
    for (VertexId w : g.neighbors(v)) {
      ++traversed;
      if (d[w] == kInfDistance) {
        d[w] = dv + 1;
        order.push_back(w);
      }
      if (d[w] == dv + 1) {
        sigma[w] += sigma[v];
      }
    }
  }

  // Backward: successor-form dependency accumulation in reverse BFS order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const VertexId w = *it;
    const std::uint32_t dw = d[w];
    double dsw = 0.0;
    for (VertexId v : g.neighbors(w)) {
      if (d[v] == dw + 1) {
        dsw += (sigma[w] / sigma[v]) * (1.0 + delta[v]);
      }
    }
    delta[w] = dsw;
    if (w != s) bc[w] += dsw;
  }

  if (stats != nullptr) {
    stats->edges_traversed += traversed;
    const std::uint32_t depth = order.empty() ? 0 : d[order.back()];
    stats->max_depth_seen = std::max(stats->max_depth_seen, depth);
  }
}

std::vector<double> single_source_dependencies(const CSRGraph& g, VertexId s) {
  const VertexId n = g.num_vertices();
  std::vector<std::uint32_t> d(n, kInfDistance);
  std::vector<double> sigma(n, 0.0);
  std::vector<double> delta(n, 0.0);
  std::vector<VertexId> order;
  order.reserve(n);

  d[s] = 0;
  sigma[s] = 1.0;
  order.push_back(s);
  std::size_t head = 0;
  while (head < order.size()) {
    const VertexId v = order[head++];
    for (VertexId w : g.neighbors(v)) {
      if (d[w] == kInfDistance) {
        d[w] = d[v] + 1;
        order.push_back(w);
      }
      if (d[w] == d[v] + 1) sigma[w] += sigma[v];
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const VertexId w = *it;
    double dsw = 0.0;
    for (VertexId v : g.neighbors(w)) {
      if (d[v] == d[w] + 1) dsw += (sigma[w] / sigma[v]) * (1.0 + delta[v]);
    }
    delta[w] = dsw;
  }
  return delta;
}

BrandesResult brandes(const CSRGraph& g, const BrandesOptions& options) {
  const VertexId n = g.num_vertices();
  BrandesResult result;
  result.bc.assign(n, 0.0);

  if (options.sources.empty()) {
    for (VertexId s = 0; s < n; ++s) {
      options.cancel.check();
      brandes_single_source(g, s, result.bc, &result);
      ++result.roots_processed;
    }
  } else {
    for (VertexId s : options.sources) {
      if (s >= n) continue;
      options.cancel.check();
      brandes_single_source(g, s, result.bc, &result);
      ++result.roots_processed;
    }
  }
  return result;
}

}  // namespace hbc::cpu
