#pragma once

// Edge betweenness centrality (Brandes's edge variant): the score of edge
// (u,v) is the sum over sources s of sigma_su / sigma_sv * (1 + delta_s(v))
// for v one level deeper than u. Powers the Girvan–Newman community-
// detection example — one of the application domains the paper's
// introduction motivates (community detection [35]).

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace hbc::cpu {

struct EdgeBCResult {
  /// Score per *directed* CSR edge slot; for an undirected graph both
  /// directions of an edge receive the same value.
  std::vector<double> edge_bc;
  /// Vertex BC computed as a by-product (same convention as brandes()).
  std::vector<double> vertex_bc;
};

EdgeBCResult edge_betweenness(const graph::CSRGraph& g,
                              const std::vector<graph::VertexId>& sources = {});

/// Index of the directed edge slot (u -> v); returns
/// graph::kInfDistance-like sentinel (num_directed_edges) when absent.
graph::EdgeOffset find_edge_slot(const graph::CSRGraph& g, graph::VertexId u,
                                 graph::VertexId v);

}  // namespace hbc::cpu
