#include "service/admission.hpp"

#include <algorithm>
#include <stdexcept>

namespace hbc::service {

const char* to_string(AdmissionPolicy policy) noexcept {
  switch (policy) {
    case AdmissionPolicy::Block: return "block";
    case AdmissionPolicy::Reject: return "reject";
    case AdmissionPolicy::Shed: return "shed";
  }
  return "?";
}

AdmissionPolicy admission_policy_from_string(const std::string& name) {
  if (name == "block") return AdmissionPolicy::Block;
  if (name == "reject") return AdmissionPolicy::Reject;
  if (name == "shed") return AdmissionPolicy::Shed;
  throw std::invalid_argument("unknown admission policy: " + name);
}

core::Options shed_downgrade(core::Options options, std::uint32_t shed_sample_roots) {
  shed_sample_roots = std::max<std::uint32_t>(1, shed_sample_roots);

  // Already cheaper than the shed target? Leave it alone (an explicit tiny
  // root set or a smaller sample both cost less than the downgrade).
  if (!options.roots.empty() && options.roots.size() <= shed_sample_roots) {
    return options;
  }
  if (options.roots.empty() && options.sample_roots > 0 &&
      options.sample_roots <= shed_sample_roots) {
    return options;
  }

  options.roots.clear();
  options.sample_roots = shed_sample_roots;
  options.strategy = core::Strategy::Sampling;  // the paper's cheapest engine
  return options;
}

}  // namespace hbc::service
