# Empty dependencies file for bench_fig2_workdist.
# This may be replaced when dependencies are built.
