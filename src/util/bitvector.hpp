#pragma once

// Compact bit vector. The paper notes Jia et al. store the predecessor
// relation as an O(m) boolean array; our reimplementation of that baseline
// uses this type so the modelled memory footprint matches (1 bit/edge here
// vs 1 byte in std::vector<bool>-free code elsewhere; the gpusim memory
// model charges the byte count the kernel declares, see kernels/*).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hbc::util {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t n, bool value = false)
      : size_(n), words_((n + 63) / 64, value ? ~std::uint64_t{0} : 0) {
    trim();
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i) noexcept { words_[i >> 6] |= (std::uint64_t{1} << (i & 63)); }
  void clear(std::size_t i) noexcept { words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }

  void assign(std::size_t n, bool value) {
    size_ = n;
    words_.assign((n + 63) / 64, value ? ~std::uint64_t{0} : 0);
    trim();
  }

  void reset() noexcept {
    for (auto& w : words_) w = 0;
  }

  std::size_t count() const noexcept {
    std::size_t total = 0;
    for (auto w : words_) total += static_cast<std::size_t>(__builtin_popcountll(w));
    return total;
  }

  /// Bytes of backing storage — what a device allocation would charge.
  std::size_t byte_size() const noexcept { return words_.size() * sizeof(std::uint64_t); }

 private:
  void trim() noexcept {
    const std::size_t rem = size_ & 63;
    if (rem != 0 && !words_.empty()) words_.back() &= (std::uint64_t{1} << rem) - 1;
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace hbc::util
