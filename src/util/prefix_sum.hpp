#pragma once

// Scan primitives. CSR construction uses the exclusive scan; the
// work-efficient kernel discussion in the paper (Merrill-style cooperative
// queue insertion) is modelled with these as well.

#include <cstddef>
#include <span>
#include <vector>

namespace hbc::util {

/// In-place exclusive prefix sum; returns the total (sum of all inputs).
template <typename T>
T exclusive_scan_inplace(std::span<T> xs) noexcept {
  T running{};
  for (auto& x : xs) {
    const T value = x;
    x = running;
    running += value;
  }
  return running;
}

/// Out-of-place exclusive scan with an extra trailing total element, i.e.
/// the classic CSR row-offsets shape: out.size() == xs.size() + 1.
template <typename T>
std::vector<T> offsets_from_counts(std::span<const T> counts) {
  std::vector<T> out(counts.size() + 1);
  T running{};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] = running;
    running += counts[i];
  }
  out[counts.size()] = running;
  return out;
}

/// In-place inclusive prefix sum; returns the total.
template <typename T>
T inclusive_scan_inplace(std::span<T> xs) noexcept {
  T running{};
  for (auto& x : xs) {
    running += x;
    x = running;
  }
  return running;
}

}  // namespace hbc::util
