#pragma once

// Storage-policy layer for CSR graphs (ROADMAP item 2).
//
// A Storage owns one immutable CSR structure and tells you *where it
// lives*: heap vectors, a read-only mmap of an on-disk .hbcg file used
// zero-copy in place, or a delta/varint-compressed adjacency decoded
// per vertex. CSRGraph is a thin facade over shared_ptr<const Storage>,
// so traversal code is written once and every backing produces
// bitwise-identical BC scores (iteration order is preserved exactly —
// see varint.hpp).
//
// Invariants common to every backing:
//  - row_offsets are ALWAYS resident uncompressed ((n+1) EdgeOffsets):
//    degree() and the per-block layout accounting stay O(1) regardless
//    of how the adjacency is stored.
//  - fingerprint() is the same 64-bit FNV-1a structural hash for the
//    same graph in any backing (compressed backings hash the *decoded*
//    neighbor stream), so the service result cache and the net fleet's
//    per-worker verification are backing-agnostic.
//  - col_indices() always works: compressed backings materialize a heap
//    copy on first call (thread-safe, once). That is the simulated
//    device-upload path the gpusim kernels take; the CPU engines stream
//    instead via CompressedStorage::neighbors().
//
// .hbcg v2 on-disk layout (all integers little-endian) — full byte
// table in docs/storage.md:
//
//   [0,128)              header (see FileHeader)
//   row_section          (n+1) x u64 row offsets, 64-byte aligned
//   aux_section          (n+1) x u64 per-vertex byte offsets into the
//                        adjacency payload (compressed files only)
//   adj_section          m x u32 column indices (raw), or adj_bytes of
//                        varint-coded deltas (compressed)

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace hbc::graph::storage {

// ---------------------------------------------------------------------------
// Residency: where the adjacency bytes actually live.

enum class Residency : std::uint8_t {
  kHeap,              ///< plain vectors (the original backing)
  kMapped,            ///< raw CSR mmap'd from a .hbcg, used in place
  kCompressedHeap,    ///< varint adjacency in a heap buffer
  kCompressedMapped,  ///< varint adjacency mmap'd from a .hbcgz
};

const char* to_string(Residency r) noexcept;

constexpr bool is_mapped(Residency r) noexcept {
  return r == Residency::kMapped || r == Residency::kCompressedMapped;
}
constexpr bool is_compressed(Residency r) noexcept {
  return r == Residency::kCompressedHeap || r == Residency::kCompressedMapped;
}

// ---------------------------------------------------------------------------
// Typed error for anything wrong with an on-disk graph file. Corrupt or
// truncated input must surface as this — never as UB or a raw crash —
// matching the net::wire decode discipline.

class FormatError : public std::runtime_error {
 public:
  explicit FormatError(const std::string& what) : std::runtime_error(what) {}
};

// ---------------------------------------------------------------------------
// .hbcg v2 header.

inline constexpr std::uint8_t kMagicV2[8] = {'H', 'B', 'C', 'G', 'R', 'P', 'H', '2'};
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::uint32_t kFlagCompressed = 1u << 0;
inline constexpr std::uint32_t kFlagUndirected = 1u << 1;
inline constexpr std::uint32_t kKnownFlags = kFlagCompressed | kFlagUndirected;
inline constexpr std::size_t kHeaderBytes = 128;
inline constexpr std::size_t kSectionAlign = 64;

struct FileHeader {
  std::uint32_t flags = 0;
  std::uint64_t num_vertices = 0;  ///< n
  std::uint64_t num_edges = 0;     ///< directed adjacency slots (column count)
  std::uint64_t fingerprint = 0;   ///< structural fingerprint of the graph
  std::uint64_t row_section = 0;   ///< byte offset of the row-offset array
  std::uint64_t aux_section = 0;   ///< byte offset of per-vertex adjacency
                                   ///  byte offsets (compressed only, else 0)
  std::uint64_t adj_section = 0;   ///< byte offset of the adjacency payload
  std::uint64_t adj_bytes = 0;     ///< payload size: m*4 raw, encoded bytes
                                   ///  for compressed

  bool compressed() const noexcept { return (flags & kFlagCompressed) != 0; }
  bool undirected() const noexcept { return (flags & kFlagUndirected) != 0; }

  /// Write the 128-byte header (reserved tail zeroed).
  void serialize(std::uint8_t out[kHeaderBytes]) const noexcept;

  /// Parse and validate a header against a file of `file_size` bytes:
  /// magic, version, unknown flags, section alignment, and that every
  /// section lies inside the file. Throws FormatError naming `path`.
  static FileHeader parse(const std::uint8_t* data, std::size_t file_size,
                          const std::string& path);
};

// ---------------------------------------------------------------------------
// Storage: the policy base every backing implements.

class Storage {
 public:
  virtual ~Storage() = default;

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(rows_.empty() ? 0 : rows_.size() - 1);
  }
  EdgeOffset num_edges() const noexcept { return m_; }
  bool undirected() const noexcept { return undirected_; }
  Residency residency() const noexcept { return residency_; }

  /// Uncompressed row offsets — resident in every backing.
  std::span<const EdgeOffset> row_offsets() const noexcept { return rows_; }

  EdgeOffset degree(VertexId v) const noexcept { return rows_[v + 1] - rows_[v]; }

  /// Full adjacency array. Compressed backings materialize a heap copy
  /// on the first call (thread-safe, exactly once) — this is the
  /// simulated-device upload path. Streaming consumers should use
  /// CompressedStorage::neighbors() instead.
  virtual std::span<const VertexId> col_indices() const = 0;

  /// Source vertex per directed edge slot, built lazily from the row
  /// offsets on first use (thread-safe, exactly once). Only the
  /// edge-parallel family pays for it.
  std::span<const VertexId> edge_sources() const;

  /// Structural fingerprint — identical across backings for the same
  /// graph. Computed once and cached.
  std::uint64_t fingerprint() const;

  /// Heap bytes this storage has actually allocated right now
  /// (including lazily built edge_sources / materialized columns).
  virtual std::size_t resident_bytes() const noexcept = 0;

  /// Bytes referenced through an mmap (0 for heap backings).
  virtual std::size_t mapped_bytes() const noexcept { return 0; }

  /// Size of the adjacency representation as stored: m*4 for raw
  /// backings, the encoded byte count for compressed ones.
  virtual std::size_t adjacency_bytes() const noexcept = 0;

  /// On-disk file size backing this storage (0 when not file-backed).
  virtual std::size_t file_bytes() const noexcept { return 0; }

  /// Decoded sizes — what the arrays cost once resident/uploaded. The
  /// BlockDriver layout accounting charges these so simulated-device
  /// metrics are identical across backings.
  std::size_t decoded_row_bytes() const noexcept {
    return rows_.size() * sizeof(EdgeOffset);
  }
  std::size_t decoded_adjacency_bytes() const noexcept {
    return static_cast<std::size_t>(m_) * sizeof(VertexId);
  }

 protected:
  Storage(bool undirected, Residency residency)
      : undirected_(undirected), residency_(residency) {}

  /// Hash n, m, undirected, then the row-offset bytes — the common
  /// prefix of every backing's fingerprint. Subclasses append the
  /// decoded adjacency bytes.
  std::uint64_t fingerprint_prefix() const noexcept;
  static void fnv_mix(std::uint64_t& h, const void* data, std::size_t len) noexcept;

  virtual std::uint64_t compute_fingerprint() const = 0;

  /// Safe to read concurrently with a lazy edge_sources() build
  /// (published atomically after the build completes).
  std::size_t edge_sources_resident_bytes() const noexcept {
    return edge_sources_bytes_.load(std::memory_order_acquire);
  }

  /// Subclasses set this once their row storage is pinned.
  std::span<const EdgeOffset> rows_;
  EdgeOffset m_ = 0;
  bool undirected_ = true;
  Residency residency_ = Residency::kHeap;

 private:
  mutable std::once_flag edge_sources_once_;
  mutable std::vector<VertexId> edge_sources_;
  mutable std::atomic<std::size_t> edge_sources_bytes_{0};
  mutable std::once_flag fingerprint_once_;
  mutable std::uint64_t fingerprint_ = 0;
};

/// Validate prebuilt CSR arrays (shared by the heap constructor and the
/// file openers). `context` prefixes the error message; `as_format_error`
/// selects FormatError (file paths) vs std::invalid_argument (API misuse).
void validate_csr(std::span<const EdgeOffset> rows, std::span<const VertexId> cols,
                  const std::string& context, bool as_format_error);

}  // namespace hbc::graph::storage
