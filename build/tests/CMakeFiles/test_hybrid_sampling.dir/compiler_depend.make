# Empty compiler generated dependencies file for test_hybrid_sampling.
# This may be replaced when dependencies are built.
