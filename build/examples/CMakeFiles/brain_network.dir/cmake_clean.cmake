file(REMOVE_RECURSE
  "CMakeFiles/brain_network.dir/brain_network.cpp.o"
  "CMakeFiles/brain_network.dir/brain_network.cpp.o.d"
  "brain_network"
  "brain_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brain_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
