#pragma once

// Shared per-root state and the level-synchronous building blocks from
// which every GPU-model BC kernel is composed:
//
//   * BCWorkspace holds the paper's per-block local variables
//     (Algorithm 1): d, sigma, delta, Q_curr, Q_next, S and ends. One
//     workspace per simulated thread block, reused across that block's
//     roots — exactly the data-structure reuse a real implementation
//     relies on.
//   * we_forward_level / finish_level implement Algorithm 2 (queue-based
//     shortest-path iteration with CAS dedup);
//   * we_backward_level implements Algorithm 3 (successor / neighbor-
//     traversal dependency accumulation — no predecessor array, no
//     atomics);
//   * ep_* / vp_* implement the Jia et al. edge-parallel and
//     vertex-parallel O(n^2 + m) level-check iterations (§III.A),
//     reused by the hybrid (Algorithm 4) and sampling (Algorithm 5)
//     kernels for their edge-parallel phases.
//
// Every method performs the real computation on host memory AND charges
// the simulated device through the BlockContext (see gpusim/device.hpp).

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/faults.hpp"
#include "graph/csr.hpp"
#include "util/bitvector.hpp"
#include "util/cancel.hpp"

namespace hbc::kernels {

/// Per-iteration parallelization mode (the hybrid's decision variable).
/// BottomUp is the direction-optimizing extension (Beamer et al., §VI of
/// the paper's related work): unvisited vertices search backwards for
/// frontier parents instead of the frontier expanding forwards.
enum class Mode : std::uint8_t { WorkEfficient, EdgeParallel, VertexParallel, BottomUp };

const char* to_string(Mode mode) noexcept;

/// Algorithm 4 thresholds. Defaults are the paper's tuned values.
struct HybridParams {
  std::uint32_t alpha = 768;  // frontier-change threshold
  std::uint32_t beta = 512;   // next-frontier size threshold
};

/// Algorithm 5 parameters. Defaults are the paper's tuned values.
struct SamplingParams {
  std::uint32_t n_samps = 512;    // roots probed work-efficiently
  double gamma = 4.0;             // median-depth multiplier vs log2(n)
  std::uint32_t min_frontier = 512;  // EP guard: frontier must be >= this
};

struct RunConfig {
  /// Roots to process (empty = every vertex; a strict subset is the
  /// paper's approximation/multi-GPU mechanism).
  std::vector<graph::VertexId> roots;
  /// Work-efficient kernel only: keep the O(m)-bit predecessor bitmap of
  /// Green & Bader instead of the paper's pure neighbor-traversal
  /// dependency stage. §IV.A frames this exact trade: the paper removes
  /// the predecessor structure to cut local storage from O(m) to O(n),
  /// "at the cost of additional computation". The flag lets the ablation
  /// bench measure both sides of that trade.
  bool use_predecessor_bitmap = false;
  gpusim::DeviceConfig device;
  HybridParams hybrid;
  SamplingParams sampling;
  /// Record per-iteration frontier sizes and simulated times for each
  /// processed root (Figure 3 / Table I). Costly; keep the root set small.
  bool collect_per_root_stats = false;
  /// Record just the simulated cycles of each processed root (cheap).
  /// Lets the cluster model evaluate many node counts from one kernel run
  /// (Figure 6 / Table IV).
  bool collect_root_cycles = false;
  /// Host threads that execute simulated blocks concurrently (the
  /// coarse-grained block→thread mapping of kernels::BlockDriver).
  /// 0 = hardware concurrency; always clamped to the block count. The BC
  /// vector, operation counters, and simulated-cycle metrics are bitwise
  /// identical for every value — threading changes wall_seconds only.
  std::size_t cpu_threads = 0;
  /// Override for the simulated grid size (number of blocks). 0 = the
  /// strategy default (device.num_sms, or a layout-forced count such as
  /// GPU-FAN's single block). The distributed layer (hbc::net) uses
  /// grid_blocks=1 to compute one block's shard of a larger run: because
  /// BlockDriver deals root i to block i % num_blocks and reduces partials
  /// in ascending block order, a B-way sharded run reassembled at the
  /// coordinator is bitwise-identical to a local B-block run.
  std::uint32_t grid_blocks = 0;
  /// Deterministic fault injection (nullptr = fault-free). Shared and
  /// immutable so concurrent runs can reference one plan.
  std::shared_ptr<const gpusim::FaultPlan> fault_plan;
  /// Cooperative cancellation, polled by the driver at every root
  /// boundary. Default-constructed = never cancels (one pointer test).
  util::CancelToken cancel;
  /// Total launches a root may consume (first try + in-block retries +
  /// the recovery-sweep attempt) before it lands in FaultReport. Min 1.
  std::uint32_t max_root_attempts = 3;
  /// Offset applied to the attempt index in FaultPlan queries. A whole-run
  /// retry at epoch+1 sees fresh attempt numbers, so transient faults
  /// (which clear after `fail_attempts` launches) deterministically stop
  /// firing — the service's backoff path relies on this.
  std::uint32_t fault_retry_epoch = 0;
  /// Trace capture (nullptr = off; docs/tracing.md). The driver registers
  /// one sink per simulated block and stamps every event from the block's
  /// cycle ledger, so captures are bitwise-identical at every host-thread
  /// count. Non-owning: the Tracer must outlive the run.
  trace::Tracer* tracer = nullptr;
};

/// RAII span on a block's sink with simulated-cycle timestamps: begins at
/// the ledger's current sim_ns, ends (exception-safely — a DeviceFault
/// unwinding mid-stage closes the span at the trip point) at destruction.
/// Null sink or masked category = two pointer-sized tests, nothing else.
class SimSpan {
 public:
  SimSpan(trace::Sink* sink, gpusim::BlockContext& ctx, const char* name,
          trace::Category category, std::initializer_list<trace::Arg> args = {})
      : sink_(sink && sink->wants(category) ? sink : nullptr),
        ctx_(&ctx),
        name_(name),
        category_(category) {
    if (sink_) sink_->begin(name_, category_, ctx_->sim_ns(), args);
  }
  ~SimSpan() {
    if (sink_) sink_->end(name_, category_, ctx_->sim_ns());
  }

  SimSpan(const SimSpan&) = delete;
  SimSpan& operator=(const SimSpan&) = delete;

 private:
  trace::Sink* sink_;
  gpusim::BlockContext* ctx_;
  const char* name_;
  trace::Category category_;
};

/// Per-level frontier instant (kLevel), emitted AFTER the level completes
/// so the sink's append order stays timestamp-ordered even when kCharge
/// events interleave. Every forward-stage loop calls this once per level.
inline void trace_level(trace::Sink* sink, gpusim::BlockContext& ctx,
                        std::uint32_t depth, std::uint64_t vertex_frontier,
                        std::uint64_t edge_frontier, Mode mode, std::uint64_t cycles) {
  if (sink && sink->wants(trace::kLevel)) {
    sink->instant("level", trace::kLevel, ctx.sim_ns(),
                  {{"depth", std::uint64_t{depth}},
                   {"vertices", vertex_frontier},
                   {"edges", edge_frontier},
                   {"mode", to_string(mode)},
                   {"cycles", cycles}});
  }
}

/// One forward-stage BFS level of one root.
struct IterationRecord {
  std::uint32_t depth = 0;
  std::uint64_t vertex_frontier = 0;  // |Q_curr| processed this level
  std::uint64_t edge_frontier = 0;    // out-edges incident to the frontier
  std::uint64_t cycles = 0;           // simulated cycles for this level
  Mode mode = Mode::WorkEfficient;
};

struct PerRootStats {
  graph::VertexId root = 0;
  std::uint32_t max_depth = 0;
  std::vector<IterationRecord> iterations;
};

struct RunMetrics {
  gpusim::Counters counters;
  std::uint64_t elapsed_cycles = 0;
  double sim_seconds = 0.0;   // modelled device time
  double wall_seconds = 0.0;  // host execution time of the simulation
  std::uint64_t device_memory_high_water = 0;
  std::uint64_t we_levels = 0;  // forward levels run work-efficiently
  std::uint64_t ep_levels = 0;  // forward levels run edge-parallel
  /// Sampling-kernel outcome (meaningful for Strategy::Sampling only).
  bool sampling_chose_edge_parallel = false;
  double sampling_median_depth = 0.0;
  /// Simulated cycles per processed root, in processing order (only when
  /// RunConfig::collect_root_cycles is set).
  std::vector<std::uint64_t> per_root_cycles;
};

struct RunResult {
  std::vector<double> bc;
  RunMetrics metrics;
  std::vector<PerRootStats> per_root;  // populated when requested
  /// Fault-injection accounting. faults.complete() == true means every
  /// root's contribution is present (scores exact); failed roots are
  /// missing from `bc` and listed in faults.failed_roots.
  gpusim::FaultReport faults;
};

/// Per-block working set (Algorithm 1's local variables).
class BCWorkspace {
 public:
  explicit BCWorkspace(const graph::CSRGraph& g);

  /// Device bytes one block's local structures occupy: the O(n) layout of
  /// the work-efficient approach (d, sigma, delta, two queues, S, ends).
  static std::uint64_t work_efficient_bytes(graph::VertexId n);

  /// The Jia et al. layout adds the O(m) boolean predecessor map.
  static std::uint64_t jia_bytes(graph::VertexId n, graph::EdgeOffset directed_edges);

  /// GPU-FAN keeps an O(n^2) predecessor list (4-byte entries) — the
  /// scalability cliff demonstrated in Figure 5.
  static std::uint64_t gpufan_bytes(graph::VertexId n);

  /// Algorithm 1: reset d/sigma/delta, seed the queues and S with s.
  /// Charged as one parallel initialisation round over n elements.
  void init_root(graph::VertexId s, gpusim::BlockContext& ctx);

  struct LevelStats {
    std::uint64_t vertex_frontier = 0;
    std::uint64_t edge_frontier = 0;
    std::uint64_t discovered = 0;  // vertices inserted into the next level
  };

  /// Algorithm 2 body: expand Q_curr into Q_next (queue-driven). With
  /// mark_predecessors, edges on shortest paths are recorded in the O(m)
  /// bitmap for the predecessor-driven dependency stage.
  LevelStats we_forward_level(gpusim::BlockContext& ctx,
                              bool mark_predecessors = false);

  /// Jia et al. edge-parallel level: scan every directed edge, process
  /// those whose source sits at `depth`. With maintain_queue the
  /// discovered vertices are also appended to Q_next so hybrid/sampling
  /// bookkeeping (frontier sizes, S, ends) stays intact.
  /// `width` widens the round to more threads (GPU-FAN grid mode).
  LevelStats ep_forward_level(gpusim::BlockContext& ctx, std::uint32_t depth,
                              bool maintain_queue, std::uint64_t width = 0);

  /// Jia et al. vertex-parallel level: one thread per vertex, threads
  /// whose vertex sits at `depth` traverse all its edges (load-imbalanced).
  LevelStats vp_forward_level(gpusim::BlockContext& ctx, std::uint32_t depth);

  /// Direction-optimizing bottom-up level: one thread per UNVISITED
  /// vertex scans its full adjacency for parents at `depth`; sigma is the
  /// sum over all such parents (no early exit — path counting needs every
  /// parent, unlike plain BFS bottom-up). Discovered vertices are
  /// appended to Q_next so the S/ends bookkeeping and the Beamer switch
  /// heuristic keep working.
  LevelStats bu_forward_level(gpusim::BlockContext& ctx, std::uint32_t depth);

  /// Algorithm 2 lines 14–24: publish Q_next as the new Q_curr, append it
  /// to S and push a new `ends` entry.
  void finish_level(gpusim::BlockContext& ctx);

  /// Algorithm 3 body for one depth (S-slice driven, successor checks).
  void we_backward_level(gpusim::BlockContext& ctx, std::uint32_t depth);

  /// Predecessor-bitmap dependency level: walks the same S-slice but
  /// consults the bitmap (1-bit streaming read) instead of fetching d[v]
  /// for every neighbor — less scattered traffic, O(m) bits more storage.
  void we_backward_level_pred(gpusim::BlockContext& ctx, std::uint32_t depth);

  /// Bytes of the optional predecessor bitmap for the memory ledger.
  static std::uint64_t predecessor_bitmap_bytes(graph::EdgeOffset directed_edges) {
    return (directed_edges + 7) / 8;
  }

  /// Edge-parallel dependency level: scan all edges; updates the
  /// dependency of edge sources atomically (the paper notes edge-parallel
  /// successor accumulation cannot avoid atomics).
  void ep_backward_level(gpusim::BlockContext& ctx, std::uint32_t depth,
                         std::uint64_t width = 0);

  /// Vertex-parallel dependency level (level check over all vertices).
  void vp_backward_level(gpusim::BlockContext& ctx, std::uint32_t depth);

  /// Add delta into the global BC accumulator (skipping the root).
  /// Queue-less kernels scan all n vertices; queue-based kernels walk S.
  void accumulate_bc(std::span<double> bc, graph::VertexId root, bool use_queue,
                     gpusim::BlockContext& ctx);

  // --- state inspection used by drivers and tests ---
  std::uint64_t q_curr_len() const noexcept { return q_curr_len_; }
  std::uint64_t q_next_len() const noexcept { return q_next_len_; }
  std::uint32_t current_depth() const noexcept { return depth_; }
  /// Deepest level that holds at least one vertex.
  std::uint32_t max_depth() const noexcept;
  std::span<const std::uint32_t> distances() const noexcept { return d_; }
  std::span<const double> sigmas() const noexcept { return sigma_; }
  std::span<const double> deltas() const noexcept { return delta_; }
  std::span<const graph::VertexId> stack() const noexcept {
    return {s_.data(), s_len_};
  }
  /// Contents of Q_next (valid between a forward level and finish_level).
  std::span<const graph::VertexId> next_queue() const noexcept {
    return {q_next_.data(), q_next_len_};
  }
  std::span<const std::uint64_t> ends() const noexcept {
    return {ends_.data(), ends_len_};
  }

 private:
  const graph::CSRGraph* g_;
  std::vector<std::uint32_t> d_;
  std::vector<double> sigma_;
  std::vector<double> delta_;
  util::BitVector successor_marks_;  // lazily sized; per directed edge
  std::vector<graph::VertexId> q_curr_;
  std::vector<graph::VertexId> q_next_;
  std::vector<graph::VertexId> s_;
  std::vector<std::uint64_t> ends_;
  std::uint64_t q_curr_len_ = 0;
  std::uint64_t q_next_len_ = 0;
  std::uint64_t s_len_ = 0;
  std::uint64_t ends_len_ = 0;
  std::uint32_t depth_ = 0;  // depth of the level currently in Q_curr
};

}  // namespace hbc::kernels
